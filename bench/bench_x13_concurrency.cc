// Experiment X13 — read latency under concurrent appends (extension, not
// in the paper; DESIGN.md §14):
//
//   1. Quiet baseline: p50/p99 latency of a fixed SMA-graded range query
//      over the seeded region, single reader, no writers.
//   2. Concurrent: the same query from R reader sessions while A appender
//      sessions stream inserts through the group-commit window. The
//      predicate never covers the appended rows, so the answer is constant
//      — what moves is only the latency, and the headline number is how
//      far the streaming writers push the read p99. Bucket-granular
//      latching plus snapshot reads should keep the two distributions
//      close; a global writer lock on the read path would not.
//   3. Latch economics: shared/exclusive acquire and contention counters
//      from the bucket-latch table, and the append throughput sustained
//      while the readers hammered — the governor's view of the same run.
//
// Emits BENCH_x13_concurrency.json. All state lives in mkdtemp directories
// under /tmp, removed before exit.

#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "db/database.h"
#include "db/session.h"
#include "storage/latch.h"
#include "util/stopwatch.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/smadb_bench_XXXXXX";
  const char* d = ::mkdtemp(tmpl);
  if (d == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return d;
}

storage::Schema BenchSchema() {
  return storage::Schema({
      storage::Field::Int64("k"),
      storage::Field::Date("d"),
      storage::Field::Decimal("v"),
      storage::Field::String("grp", 1),
      storage::Field::String("tag", 4),
  });
}

void FillRow(storage::TupleBuffer* buf, int64_t i, int32_t day) {
  buf->SetInt64(0, i);
  buf->SetDate(1, util::Date(day));
  buf->SetDecimal(2, util::Decimal(i * 3));
  const char grp = static_cast<char>('A' + (i % 3));
  buf->SetString(3, std::string_view(&grp, 1));
  buf->SetString(4, "MAIL");
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * (v->size() - 1) + 0.5);
  return (*v)[std::min(idx, v->size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int64_t n_seed = smoke ? 4000 : 40000;
  const int64_t n_append_per_writer = smoke ? 3000 : 30000;
  const int n_readers = smoke ? 2 : 4;
  const int n_appenders = smoke ? 1 : 2;
  const int quiet_queries = smoke ? 150 : 1000;

  bench::PrintHeader(util::Format("X13: reads under concurrent appends%s",
                                  smoke ? " (smoke)" : ""));

  const std::string dir = MakeTempDir();
  std::unique_ptr<db::Database> db = [&] {
    db::DatabaseOptions options;
    options.storage_backend = storage::BackendKind::kFile;
    options.storage_path = dir;
    options.wal_sync_interval = 8;  // group commit: the realistic setting
    options.enable_metrics = false;
    return Check(db::Database::Open(std::move(options)));
  }();
  storage::Table* table = Check(db->CreateTable("t", BenchSchema()));
  {
    storage::TupleBuffer buf(&table->schema());
    for (int64_t i = 0; i < n_seed; ++i) {
      FillRow(&buf, i, static_cast<int32_t>(i / 8));
      Check(db->Insert("t", buf));
    }
  }
  Check(db->Execute("define sma mn select min(d) from t"));
  Check(db->Execute("define sma mx select max(d) from t"));
  Check(db->SyncWal());

  // The probe: an SMA-graded range over the seeded region only (appenders
  // write day >= 100000), so its answer is invariant for the whole run.
  const std::string probe =
      "select sum(k), count(*) from t where d <= '2100-01-01'";
  const int64_t want_count =
      Check(db->Query(probe)).rows[0].AsRef().GetInt64(1);
  if (want_count != n_seed) {
    std::fprintf(stderr, "probe does not cover the seed (%lld != %lld)\n",
                 static_cast<long long>(want_count),
                 static_cast<long long>(n_seed));
    return 1;
  }

  // ---- 1. quiet baseline --------------------------------------------------
  std::vector<double> quiet_ms;
  {
    std::unique_ptr<db::Session> s = db->CreateSession();
    for (int i = 0; i < quiet_queries; ++i) {
      util::Stopwatch watch;
      Check(s->Query(probe));
      quiet_ms.push_back(watch.ElapsedSeconds() * 1e3);
    }
  }
  const double quiet_p50 = Percentile(&quiet_ms, 0.50);
  const double quiet_p99 = Percentile(&quiet_ms, 0.99);
  std::printf("quiet:      %4zu reads   p50 %.3f ms   p99 %.3f ms\n",
              quiet_ms.size(), quiet_p50, quiet_p99);

  // ---- 2. reads while appends stream --------------------------------------
  const storage::LatchStats latch_before = table->latches()->stats();
  std::atomic<int> writers_running{n_appenders};
  std::atomic<bool> read_failed{false};
  std::vector<std::vector<double>> per_reader(n_readers);
  double append_seconds = 0.0;

  {
    util::Stopwatch append_watch;
    std::vector<std::thread> threads;
    for (int a = 0; a < n_appenders; ++a) {
      threads.emplace_back([&, a] {
        std::unique_ptr<db::Session> s = db->CreateSession();
        storage::TupleBuffer buf(&table->schema());
        for (int64_t i = 0; i < n_append_per_writer; ++i) {
          FillRow(&buf, n_seed + a * n_append_per_writer + i,
                  static_cast<int32_t>(100000 + i / 8));
          Check(s->Insert("t", buf));
        }
        writers_running.fetch_sub(1);
      });
    }
    for (int r = 0; r < n_readers; ++r) {
      threads.emplace_back([&, r] {
        std::unique_ptr<db::Session> s = db->CreateSession();
        while (writers_running.load(std::memory_order_acquire) > 0) {
          util::Stopwatch watch;
          auto res = s->Query(probe);
          per_reader[r].push_back(watch.ElapsedSeconds() * 1e3);
          if (!res.ok() ||
              res->rows[0].AsRef().GetInt64(1) != want_count) {
            read_failed.store(true);
            return;
          }
        }
      });
    }
    for (int a = 0; a < n_appenders; ++a) {
      threads[a].join();
      if (append_seconds == 0.0) {
        append_seconds = append_watch.ElapsedSeconds();
      }
    }
    for (size_t i = n_appenders; i < threads.size(); ++i) threads[i].join();
  }
  if (read_failed.load()) {
    std::fprintf(stderr, "a concurrent read failed or drifted\n");
    return 1;
  }

  std::vector<double> busy_ms;
  for (auto& v : per_reader) {
    busy_ms.insert(busy_ms.end(), v.begin(), v.end());
  }
  const double busy_p50 = Percentile(&busy_ms, 0.50);
  const double busy_p99 = Percentile(&busy_ms, 0.99);
  const int64_t appended =
      static_cast<int64_t>(n_appenders) * n_append_per_writer;
  const storage::LatchStats latch_after = table->latches()->stats();
  std::printf("concurrent: %4zu reads   p50 %.3f ms   p99 %.3f ms\n",
              busy_ms.size(), busy_p50, busy_p99);
  std::printf("appends:    %lld rows in %.3f s  (%.0f rows/s)\n",
              static_cast<long long>(appended), append_seconds,
              appended / append_seconds);
  std::printf("latches:    %llu shared, %llu exclusive, %llu contended\n",
              static_cast<unsigned long long>(latch_after.shared_acquires -
                                              latch_before.shared_acquires),
              static_cast<unsigned long long>(
                  latch_after.exclusive_acquires -
                  latch_before.exclusive_acquires),
              static_cast<unsigned long long>(latch_after.contended -
                                              latch_before.contended));

  report.Add("seed_rows", static_cast<double>(n_seed));
  report.Add("readers", static_cast<double>(n_readers));
  report.Add("appenders", static_cast<double>(n_appenders));
  report.Add("read_quiet_p50_ms", quiet_p50);
  report.Add("read_quiet_p99_ms", quiet_p99);
  report.Add("read_concurrent_p50_ms", busy_p50);
  report.Add("read_concurrent_p99_ms", busy_p99);
  report.Add("concurrent_reads", static_cast<double>(busy_ms.size()));
  report.Add("append_rows_per_s", appended / append_seconds);
  report.Add("latch_contended",
             static_cast<double>(latch_after.contended -
                                 latch_before.contended));

  Check(db->Close());
  db.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
