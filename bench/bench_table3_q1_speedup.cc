// Experiment T3 — paper §2.4 Query 1 response time (the headline result):
//
//   Query 1 without SMAs (cold & warm): 128 s
//   with SMAs (cold):                   4.9 s
//   with SMAs (warm):                   1.9 s
//
// "Processing Query 1 with SMAs becomes two orders of magnitude faster!"
//
// Setup mirrors the paper's optimal case: LINEITEM sorted on l_shipdate.
// Cold = buffer pool dropped before the run; warm = SMA files resident
// from the previous run. We report wall-clock, page I/O, and modeled
// 1997-disk seconds (the paper's regime was I/O-bound).

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

struct RunStats {
  double wall = 0;
  double modeled = 0;
  uint64_t reads = 0;
  std::string result;
};

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.1);
  // Pool sized like the paper's: 8 MB against 1 GB of data, i.e. the base
  // relation does not fit, but the SMA complement does. LINEITEM is about
  // 215k pages per unit of scale factor.
  const size_t pool_pages = std::max<size_t>(
      2048, static_cast<size_t>(sf * 215000.0 / 100.0) * 2);
  bench::BenchDb db(pool_pages);

  bench::PrintHeader(
      util::Format("T3: Query 1 with and without SMAs (paper §2.4), SF %.3f",
                   sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  std::printf("LINEITEM %u pages; SMAs %llu pages\n", lineitem->num_pages(),
              static_cast<unsigned long long>(smas.TotalPages()));

  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));
  plan::Planner planner(&smas);

  auto run = [&](plan::PlanKind kind, bool cold) -> RunStats {
    if (cold) Check(db.pool.DropAll());
    const storage::IoStats base = db.disk.stats();
    auto op = Check(planner.Build(q1, kind));
    util::Stopwatch watch;
    plan::QueryResult r = Check(plan::RunToCompletion(op.get()));
    RunStats stats;
    stats.wall = watch.ElapsedSeconds();
    stats.modeled = db.ModeledSeconds(base);
    stats.reads = (db.disk.stats() - base).page_reads;
    stats.result = r.ToString();
    return stats;
  };

  std::printf("\n%-28s %10s %14s %12s\n", "plan", "wall", "modeled disk",
              "page reads");
  const RunStats scan_cold = run(plan::PlanKind::kScanAggr, /*cold=*/true);
  std::printf("%-28s %9.3fs %13.2fs %12llu\n",
              "without SMAs (cold)", scan_cold.wall, scan_cold.modeled,
              static_cast<unsigned long long>(scan_cold.reads));
  const RunStats scan_warm = run(plan::PlanKind::kScanAggr, /*cold=*/false);
  std::printf("%-28s %9.3fs %13.2fs %12llu\n",
              "without SMAs (warm)", scan_warm.wall, scan_warm.modeled,
              static_cast<unsigned long long>(scan_warm.reads));
  const RunStats sma_cold = run(plan::PlanKind::kSmaGAggr, /*cold=*/true);
  std::printf("%-28s %9.3fs %13.2fs %12llu\n", "with SMAs (cold)",
              sma_cold.wall, sma_cold.modeled,
              static_cast<unsigned long long>(sma_cold.reads));
  const RunStats sma_warm = run(plan::PlanKind::kSmaGAggr, /*cold=*/false);
  std::printf("%-28s %9.3fs %13.2fs %12llu\n", "with SMAs (warm)",
              sma_warm.wall, sma_warm.modeled,
              static_cast<unsigned long long>(sma_warm.reads));

  if (scan_cold.result != sma_cold.result ||
      scan_cold.result != sma_warm.result) {
    std::fprintf(stderr, "RESULT MISMATCH between plans!\n");
    return 1;
  }
  std::printf("\nall plans return identical results; Q1 output:\n%s",
              scan_cold.result.c_str());

  const double modeled_speedup =
      scan_cold.modeled / std::max(1e-9, sma_cold.modeled);
  report.Add("scale_factor", sf);
  report.Add("modeled_speedup_cold", modeled_speedup);
  report.Add("wall_speedup_cold",
             scan_cold.wall / std::max(1e-9, sma_cold.wall));
  const double warm_ratio = sma_cold.modeled / std::max(1e-9, sma_warm.wall);
  (void)warm_ratio;
  std::printf("\nmodeled-disk speedup (cold): %.0fx"
              "   wall-clock speedup: %.1fx\n",
              modeled_speedup,
              scan_cold.wall / std::max(1e-9, sma_cold.wall));

  bench::PrintPaperNote(util::Format(
      "paper: 128s scan vs 4.9s cold / 1.9s warm SMA = 26-67x ('two orders "
      "of magnitude'). measured on the modeled 1997 disk: %.0fx cold, with "
      "the same cold>warm ordering (%0.2fs vs %0.2fs modeled) because warm "
      "runs keep the SMA-files buffer-resident",
      modeled_speedup, sma_cold.modeled, sma_warm.modeled));
  return 0;
}
