// Experiment X4 — SMAs inside join pipelines (the flexibility argument of
// §2.3 taken to multi-table queries): TPC-D Q3 (3-way join + grouping) and
// Q4 (EXISTS as the §4 semi-join), each with and without selection SMAs on
// the date-restricted leaves.

#include "bench/bench_util.h"
#include "tpch/loader.h"
#include "workloads/q3.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

uint64_t Drain(exec::Operator* op) {
  Check(op->Init());
  storage::TupleRef row;
  uint64_t n = 0;
  bool more = Check(op->Next(&row));
  while (more) {
    ++n;
    more = Check(op->Next(&row));
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(262144);

  bench::PrintHeader(util::Format(
      "X4: SMA pruning inside join pipelines (Q3, Q4), SF %.3f", sf));

  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orows;
  std::vector<tpch::LineItemRow> lrows;
  gen.GenOrdersAndLineItems(&orows, &lrows);
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kDiagonal;
  load.lag_stddev_days = 10.0;
  storage::Table* orders = Check(tpch::LoadOrders(&db.catalog, orows, load));
  storage::Table* lineitem =
      Check(tpch::LoadLineItem(&db.catalog, lrows, load));
  storage::Table* customer =
      Check(tpch::LoadCustomers(&db.catalog, gen.GenCustomers()));

  sma::SmaSet orders_smas(orders);
  sma::SmaSet lineitem_smas(lineitem);
  Check(workloads::BuildQ3Smas(orders, &orders_smas, lineitem,
                               &lineitem_smas));

  struct Row {
    const char* name;
    double with_s, without_s;
    uint64_t with_reads, without_reads;
  };
  std::vector<Row> rows;

  auto measure = [&](auto&& make_plan) {
    Check(db.pool.DropAll());
    db.disk.ResetAccessPositions();
    const storage::IoStats base = db.disk.stats();
    auto plan = make_plan();
    (void)Drain(plan.get());
    const storage::IoStats used = db.disk.stats() - base;
    return std::make_pair(used.ModeledSeconds(db.model), used.page_reads);
  };

  // Q3.
  {
    workloads::Q3Tables with{customer, orders, lineitem, &orders_smas,
                             &lineitem_smas};
    workloads::Q3Tables without{customer, orders, lineitem, nullptr,
                                nullptr};
    auto [ws, wr] =
        measure([&] { return *workloads::MakeQ3Plan(with); });
    auto [ns, nr] =
        measure([&] { return *workloads::MakeQ3Plan(without); });
    rows.push_back({"Q3 (3-way join)", ws, ns, wr, nr});
  }
  // Q4.
  {
    auto [ws, wr] = measure([&] {
      return *workloads::MakeQ4Plan(orders, lineitem, &orders_smas);
    });
    auto [ns, nr] = measure([&] {
      return *workloads::MakeQ4Plan(orders, lineitem, nullptr);
    });
    rows.push_back({"Q4 (EXISTS semi-join)", ws, ns, wr, nr});
  }

  std::printf("\n%-24s %14s %14s %10s\n", "query", "with SMAs",
              "without SMAs", "saving");
  for (const Row& r : rows) {
    std::printf("%-24s %12.2fs  %12.2fs  %8.1fx   (%llu vs %llu pages)\n",
                r.name, r.with_s, r.without_s,
                r.without_s / std::max(1e-9, r.with_s),
                static_cast<unsigned long long>(r.with_reads),
                static_cast<unsigned long long>(r.without_reads));
  }

  bench::PrintPaperNote(
      "SMAs keep paying inside join pipelines: Q3's date-restricted ORDERS "
      "and LINEITEM leaves and Q4's date-graded semi-join skip the "
      "disqualified buckets of the fact tables, which dominate the join "
      "input cost — the versatility §2.3 claims over the data cube");
  return 0;
}
