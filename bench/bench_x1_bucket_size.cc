// Experiment X1 — paper §4 bucket-size trade-off:
//
//   "If the bucket size is small, then the SMA-files will become very large
//    and more I/O for SMAs is the consequence. If the bucket sizes are
//    large, then — due to imperfect clustering — many ambivalent buckets
//    occur and for these the original relation must be accessed."
//
// Sweep bucket size (pages per bucket) x clustering quality and report the
// total modeled I/O of a Q6-style range aggregation: SMA-file pages +
// fetched bucket pages. The optimum moves with clustering quality.

#include "bench/bench_util.h"
#include "exec/sma_scan.h"
#include "sma/builder.h"
#include "sma/grade.h"
#include "tpch/loader.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);

  bench::PrintHeader(util::Format(
      "X1: bucket-size trade-off (paper §4), SF %.3f", sf));

  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);

  const util::Date lo = util::Date::FromYmd(1995, 1, 1);
  const util::Date hi = util::Date::FromYmd(1995, 7, 1);
  std::printf("predicate: l_shipdate in [%s, %s)\n\n", lo.ToString().c_str(),
              hi.ToString().c_str());

  for (double lag : {5.0, 30.0, 90.0}) {
    std::printf("clustering: diagonal with %g-day entry lag\n", lag);
    std::printf("  %-14s %10s %12s %12s %14s\n", "bucket_pages", "sma_pages",
                "fetch_pages", "total_pages", "modeled time");
    double best_time = 1e100;
    uint32_t best_bp = 0;
    for (uint32_t bp : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      bench::BenchDb db(262144);
      tpch::LoadOptions load;
      load.mode = tpch::ClusterMode::kDiagonal;
      load.lag_stddev_days = lag;
      load.bucket_pages = bp;
      storage::Table* t =
          Check(tpch::LoadLineItem(&db.catalog, lineitems, load, "li"));
      sma::SmaSet smas(t);
      const expr::ExprPtr shipdate =
          Check(expr::Column(&t->schema(), "l_shipdate"));
      Check(smas.Add(
          Check(sma::BuildSma(t, sma::SmaSpec::Min("min", shipdate)))));
      Check(smas.Add(
          Check(sma::BuildSma(t, sma::SmaSpec::Max("max", shipdate)))));

      expr::PredicatePtr pred = expr::Predicate::And(
          Check(expr::Predicate::AtomConst(&t->schema(), "l_shipdate",
                                           expr::CmpOp::kGe,
                                           util::Value::MakeDate(lo))),
          Check(expr::Predicate::AtomConst(&t->schema(), "l_shipdate",
                                           expr::CmpOp::kLt,
                                           util::Value::MakeDate(hi))));

      // Run the SMA-pruned scan cold and measure real modeled I/O.
      Check(db.pool.DropAll());
      const storage::IoStats base = db.disk.stats();
      exec::SmaScan scan(t, pred, &smas);
      Check(scan.Init());
      storage::TupleRef row;
      uint64_t rows = 0;
      while (Check(scan.Next(&row))) ++rows;
      const storage::IoStats used = db.disk.stats() - base;
      const double modeled = used.ModeledSeconds(db.model);
      const uint64_t sma_pages = smas.TotalPages();
      const uint64_t fetch_pages = used.page_reads - sma_pages;
      std::printf("  %-14u %10llu %12llu %12llu %12.2fs\n", bp,
                  static_cast<unsigned long long>(sma_pages),
                  static_cast<unsigned long long>(fetch_pages),
                  static_cast<unsigned long long>(used.page_reads), modeled);
      if (modeled < best_time) {
        best_time = modeled;
        best_bp = bp;
      }
    }
    std::printf("  -> best bucket size at this clustering: %u page(s)\n\n",
                best_bp);
  }

  bench::PrintPaperNote(
      "shape holds: small buckets pay SMA-file I/O, large buckets pay "
      "ambivalent-bucket I/O; the optimum grows as clustering degrades, "
      "which is exactly the trade-off §4 describes (and why it suggests "
      "hierarchical SMAs instead of ever-larger buckets)");
  return 0;
}
