// Shared scaffolding for the paper-reproduction benchmark binaries.
//
// Each binary reproduces one table or figure of the paper (see DESIGN.md's
// experiment index), prints the measured rows in the paper's layout, and
// closes with a "paper vs measured" note. Absolute numbers are expected to
// differ (simulated 1997 disk vs the authors' Sparc/Barracuda testbed, and
// laptop scale factors); the *shape* — who wins, by what rough factor,
// where crossovers fall — is the reproduction target.

#ifndef SMADB_BENCH_BENCH_UTIL_H_
#define SMADB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "storage/catalog.h"
#include "storage/disk.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace smadb::bench {

inline void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "benchmark error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// Scale factor from argv[1] (default `def`); clamped to something sane.
inline double ScaleFromArgs(int argc, char** argv, double def) {
  if (argc > 1) {
    const double sf = std::atof(argv[1]);
    if (sf > 0 && sf <= 2.0) return sf;
    std::fprintf(stderr, "usage: %s [scale_factor in (0, 2]]\n", argv[0]);
    std::exit(2);
  }
  return def;
}

/// One database instance per benchmark (64 MB buffer pool by default —
/// large relative to laptop-scale data, as the paper's 8 MB was to 1 GB).
struct BenchDb {
  explicit BenchDb(size_t pool_pages = 16384)
      : pool(&disk, pool_pages), catalog(&pool) {}
  /// Full-options variant (e.g. X7 toggles checksum verification).
  explicit BenchDb(storage::BufferPoolOptions options)
      : pool(&disk, options), catalog(&pool) {}

  storage::SimulatedDisk disk;
  storage::BufferPool pool;
  storage::Catalog catalog;

  /// Simulated seconds the 1997 disk model assigns to the I/O recorded
  /// since `base`.
  double ModeledSeconds(const storage::IoStats& base) const {
    return (disk.stats() - base).ModeledSeconds(model);
  }

  storage::DiskModel model;  // paper-era disk: 8 ms seek, 9 MB/s
};

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Machine-readable summary every bench binary emits alongside its printed
/// tables: headline numbers accumulate via Add(), and the destructor writes
/// `BENCH_<name>.json` into the working directory (the artifact CI uploads).
/// Total wall time since construction is always included.
class JsonReporter {
 public:
  /// `argv0` is used as-is after stripping directories and a trailing
  /// "bench_" prefix, so `JsonReporter report(argv[0]);` names the file
  /// after the binary.
  explicit JsonReporter(std::string argv0) {
    const size_t slash = argv0.find_last_of('/');
    name_ = slash == std::string::npos ? std::move(argv0)
                                       : argv0.substr(slash + 1);
    if (name_.rfind("bench_", 0) == 0) name_ = name_.substr(6);
  }
  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;
  ~JsonReporter() { Write(); }

  void Add(const std::string& key, double value) {
    entries_.emplace_back(key, util::Format("%.6g", value));
  }
  void Add(const std::string& key, const std::string& value) {
    entries_.emplace_back(key, "\"" + value + "\"");  // no escaping needed
  }

  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    std::fprintf(f, "  \"wall_seconds\": %.3f", watch_.ElapsedSeconds());
    for (const auto& [key, value] : entries_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
  }

 private:
  std::string name_;
  util::Stopwatch watch_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline void PrintPaperNote(const std::string& note) {
  std::printf("\npaper-vs-measured: %s\n", note.c_str());
}

}  // namespace smadb::bench

#endif  // SMADB_BENCH_BENCH_UTIL_H_
