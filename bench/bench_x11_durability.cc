// Experiment X11 — the price of durability (extension, not in the paper):
//
//   1. WAL append throughput: inserts through the durable path with the
//      sync policy set to manual (staging + buffered flush only), in rows/s
//      and logged MB/s.
//   2. Commit latency vs the group-commit window: average acknowledged-
//      insert latency at wal_sync_interval 1 (fdatasync per commit), 8, and
//      64. The window is the paper-era trade: latency for tail-loss bound.
//   3. Recovery time vs WAL length: crash after N committed inserts, time
//      Open()'s replay for growing N.
//   4. Reopen vs rebuild for SMAs: restoring SMAs from the checkpoint
//      manifest + their surviving SMA-files (clean reopen) against
//      re-materializing them from base data (Rebuild after staleness) —
//      the recovery-debt question `show storage` reports on.
//
// Emits BENCH_x11_durability.json with the headline numbers. All state
// lives in mkdtemp directories under /tmp, removed before exit.

#include <stdlib.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "db/database.h"
#include "storage/wal.h"
#include "util/stopwatch.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/smadb_bench_XXXXXX";
  const char* d = ::mkdtemp(tmpl);
  if (d == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return d;
}

storage::Schema BenchSchema() {
  return storage::Schema({
      storage::Field::Int64("k"),
      storage::Field::Date("d"),
      storage::Field::Decimal("v"),
      storage::Field::String("grp", 1),
      storage::Field::String("tag", 4),
  });
}

void FillRow(storage::TupleBuffer* buf, int64_t i) {
  buf->SetInt64(0, i);
  buf->SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
  buf->SetDecimal(2, util::Decimal(i * 3));
  const char grp = static_cast<char>('A' + (i % 3));
  buf->SetString(3, std::string_view(&grp, 1));
  buf->SetString(4, "MAIL");
}

std::unique_ptr<db::Database> OpenAt(const std::string& dir,
                                     size_t wal_sync_interval) {
  db::DatabaseOptions options;
  options.storage_backend = storage::BackendKind::kFile;
  options.storage_path = dir;
  options.wal_sync_interval = wal_sync_interval;
  options.enable_metrics = false;
  return Check(db::Database::Open(std::move(options)));
}

void InsertRows(db::Database* db, int64_t from, int64_t to) {
  storage::Table* t = Check(db->GetTable("t"));
  storage::TupleBuffer buf(&t->schema());
  for (int64_t i = from; i < to; ++i) {
    FillRow(&buf, i);
    Check(db->Insert("t", buf));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int64_t n_append = smoke ? 2000 : 50000;
  const int64_t n_commit = smoke ? 200 : 2000;
  const std::vector<int64_t> recovery_ns =
      smoke ? std::vector<int64_t>{500, 2000}
            : std::vector<int64_t>{5000, 20000, 50000};
  const int64_t n_sma = smoke ? 2000 : 20000;
  std::vector<std::string> tmpdirs;

  bench::PrintHeader(util::Format("X11: durability costs%s",
                                  smoke ? " (smoke)" : ""));

  // ---- 1. WAL append throughput (manual sync: staging only) ---------------
  {
    const std::string dir = tmpdirs.emplace_back(MakeTempDir());
    auto db = OpenAt(dir, /*wal_sync_interval=*/0);
    Check(db->CreateTable("t", BenchSchema()));
    util::Stopwatch watch;
    InsertRows(db.get(), 0, n_append);
    Check(db->SyncWal());  // one barrier closes the run
    const double s = watch.ElapsedSeconds();
    const double mb = static_cast<double>(db->wal()->stats().appended_bytes) /
                      (1024.0 * 1024.0);
    std::printf("WAL append: %lld rows in %.3f s  (%.0f rows/s, %.2f MB/s)\n",
                static_cast<long long>(n_append), s, n_append / s, mb / s);
    report.Add("append_rows", static_cast<double>(n_append));
    report.Add("append_rows_per_s", n_append / s);
    report.Add("append_mb_per_s", mb / s);
  }

  // ---- 2. commit latency vs group-commit window ---------------------------
  for (const size_t interval : {size_t{1}, size_t{8}, size_t{64}}) {
    const std::string dir = tmpdirs.emplace_back(MakeTempDir());
    auto db = OpenAt(dir, interval);
    Check(db->CreateTable("t", BenchSchema()));
    util::Stopwatch watch;
    InsertRows(db.get(), 0, n_commit);
    Check(db->SyncWal());
    const double us = watch.ElapsedSeconds() * 1e6 / n_commit;
    std::printf("commit latency, sync every %2zu: %8.1f us/insert\n",
                interval, us);
    report.Add(util::Format("commit_us_interval_%zu", interval), us);
  }

  // ---- 3. recovery time vs WAL length -------------------------------------
  for (const int64_t n : recovery_ns) {
    const std::string dir = tmpdirs.emplace_back(MakeTempDir());
    {
      auto db = OpenAt(dir, /*wal_sync_interval=*/0);
      Check(db->CreateTable("t", BenchSchema()));
      InsertRows(db.get(), 0, n);
      Check(db->SyncWal());
      Check(db->CrashForTesting());
    }
    util::Stopwatch watch;
    auto db = OpenAt(dir, 1);
    const double ms = watch.ElapsedSeconds() * 1e3;
    std::printf("recovery: %6lld-record WAL replayed in %8.2f ms "
                "(%.1f us/record)\n",
                static_cast<long long>(db->durability().replayed_records), ms,
                ms * 1e3 / static_cast<double>(n));
    report.Add(util::Format("recovery_ms_%lld", static_cast<long long>(n)),
               ms);
  }

  // ---- 4. SMA cost at reopen: manifest restore vs rebuild -----------------
  {
    const std::string dir = tmpdirs.emplace_back(MakeTempDir());
    {
      auto db = OpenAt(dir, /*wal_sync_interval=*/0);
      Check(db->CreateTable("t", BenchSchema()));
      InsertRows(db.get(), 0, n_sma);
      Check(db->Execute("define sma mn select min(d) from t"));
      Check(db->Execute("define sma mx select max(d) from t"));
      Check(db->Close());
    }
    util::Stopwatch reopen_watch;
    auto db = OpenAt(dir, 1);
    const double reopen_ms = reopen_watch.ElapsedSeconds() * 1e3;
    if (db->durability().stale_smas != 0) {
      std::fprintf(stderr, "FAIL: clean reopen restored stale SMAs\n");
      return 1;
    }
    // One append straight into the table (bypassing the maintainer, like a
    // replayed WAL record does) makes both SMAs stale; Rebuild then pays
    // the full from-base-data re-materialization.
    storage::Table* table = Check(db->GetTable("t"));
    storage::TupleBuffer buf(&table->schema());
    FillRow(&buf, n_sma);
    Check(table->Append(buf));
    sma::SmaMaintainer* maintainer = Check(db->Maintainer("t"));
    util::Stopwatch rebuild_watch;
    Check(maintainer->Rebuild());
    const double rebuild_ms = rebuild_watch.ElapsedSeconds() * 1e3;
    std::printf("SMA reopen (manifest restore) %8.2f ms vs "
                "rebuild from base %8.2f ms  (%.0fx)\n",
                reopen_ms, rebuild_ms, rebuild_ms / std::max(1e-9, reopen_ms));
    report.Add("sma_reopen_ms", reopen_ms);
    report.Add("sma_rebuild_ms", rebuild_ms);
  }

  bench::PrintPaperNote(
      "not in the paper (AODB's measurement rig was a read-only warehouse "
      "load). The durable stack prices the paper's assumption: group commit "
      "amortizes the fsync to near the staging cost, replay stays "
      "microseconds per record, and restoring SMAs from the checkpoint "
      "manifest is far cheaper than re-materializing them — which is why "
      "the manifest carries them at all.");

  for (const std::string& dir : tmpdirs) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  return 0;
}
