// Micro-benchmarks (google-benchmark): grade() throughput, SMA-file cursor
// scans, predicate evaluation — the primitives the operators are built on.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "expr/predicate.h"
#include "sma/builder.h"
#include "sma/grade.h"
#include "storage/catalog.h"
#include "tpch/loader.h"

namespace {

using namespace smadb;  // NOLINT

// Shared fixture data (built once).
struct MicroEnv {
  storage::SimulatedDisk disk;
  storage::BufferPool pool{&disk, 16384};
  storage::Catalog catalog{&pool};
  storage::Table* lineitem = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  expr::PredicatePtr pred;

  MicroEnv() {
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    auto table =
        tpch::GenerateAndLoadLineItem(&catalog, {0.005, 7}, load);
    lineitem = *table;
    smas = std::make_unique<sma::SmaSet>(lineitem);
    const expr::ExprPtr shipdate =
        *expr::Column(&lineitem->schema(), "l_shipdate");
    (void)smas->Add(
        *sma::BuildSma(lineitem, sma::SmaSpec::Min("min", shipdate)));
    (void)smas->Add(
        *sma::BuildSma(lineitem, sma::SmaSpec::Max("max", shipdate)));
    pred = *expr::Predicate::AtomConst(
        &lineitem->schema(), "l_shipdate", expr::CmpOp::kLe,
        util::Value::MakeDate(util::Date::FromYmd(1995, 6, 17)));
  }
};

MicroEnv* Env() {
  static MicroEnv env;
  return &env;
}

void BM_GradeBucketStream(benchmark::State& state) {
  MicroEnv* env = Env();
  for (auto _ : state) {
    auto grader = sma::BucketGrader::Create(env->pred, env->smas.get());
    uint64_t counts[3] = {0, 0, 0};
    for (uint64_t b = 0; b < env->lineitem->num_buckets(); ++b) {
      auto g = grader->GradeBucket(b);
      ++counts[static_cast<int>(*g)];
    }
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env->lineitem->num_buckets()));
}
BENCHMARK(BM_GradeBucketStream);

void BM_SmaFileCursorScan(benchmark::State& state) {
  MicroEnv* env = Env();
  const sma::Sma* min_sma = *env->smas->Find("min");
  for (auto _ : state) {
    sma::SmaFile::Cursor cur = min_sma->group_file(0)->NewCursor();
    int64_t acc = 0;
    for (uint64_t i = 0; i < min_sma->group_file(0)->num_entries(); ++i) {
      acc += *cur.Get(i);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(min_sma->group_file(0)->num_entries()));
}
BENCHMARK(BM_SmaFileCursorScan);

void BM_PredicateEvalPerTuple(benchmark::State& state) {
  MicroEnv* env = Env();
  for (auto _ : state) {
    uint64_t matches = 0;
    for (uint32_t b = 0; b < env->lineitem->num_buckets(); ++b) {
      (void)env->lineitem->ForEachTupleInBucket(
          b, [&](const storage::TupleRef& t, storage::Rid) {
            matches += env->pred->Eval(t);
          });
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(env->lineitem->num_tuples()));
}
BENCHMARK(BM_PredicateEvalPerTuple);

}  // namespace

// Expanded BENCHMARK_MAIN so the run leaves a BENCH_micro.json marker like
// every other bench binary (google-benchmark prints its own tables).
int main(int argc, char** argv) {
  smadb::bench::JsonReporter report(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
