// Experiment X8 — vectorized batch execution vs tuple-at-a-time.
//
// Not in the paper (its engine is tuple-at-a-time): this extension measures
// what batch-at-a-time execution buys on the paper's own workloads.
//
//   1. Query 1 over a 100%-ambivalent scan (GAggr over TableScan, serial):
//      the pure CPU comparison — every tuple is fetched and folded in both
//      modes, so the difference is per-tuple interpretation overhead
//      (virtual Next() calls, Value boxing, per-row group lookup) vs fused
//      column kernels. Target: >= 1.5x warm wall-clock, identical rows.
//   2. Batch-size sweep 64..4096 on the same query: where the sweet spot
//      between per-batch overhead and cache residency lies.
//   3. Fig. 5-style ambivalence sweep: SMA_GAggr with forced ambivalent
//      fractions, row vs batch. SMA pruning and vectorization compose —
//      batches only accelerate the buckets that must be investigated, so
//      the gain grows with x.
//
// `--smoke` (first argument) runs a tiny scale with correctness assertions
// only (CI mode): every mode must produce bit-identical Q1 rows; exits
// non-zero on any mismatch.

#include <cstring>

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "util/stopwatch.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

// Warm best-of-3 wall clock for one operator build; result out-param.
double TimeRun(plan::Planner* planner, const plan::AggQuery& q,
               plan::PlanKind kind, std::string* result, int iters) {
  double best = 1e99;
  for (int i = 0; i <= iters; ++i) {  // iteration 0 warms the pool
    auto op = Check(planner->Build(q, kind, /*dop=*/1));
    util::Stopwatch watch;
    plan::QueryResult r = Check(plan::RunToCompletion(op.get()));
    const double wall = watch.ElapsedSeconds();
    if (i > 0 && wall < best) best = wall;
    *result = r.ToString();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double sf =
      smoke ? 0.01 : bench::ScaleFromArgs(argc, argv, 0.05);
  const int iters = smoke ? 1 : 3;
  bench::BenchDb db(65536);  // warm: everything resident, CPU-bound

  bench::PrintHeader(util::Format(
      "X8: vectorized batch execution vs tuple-at-a-time, SF %.3f%s", sf,
      smoke ? " (smoke)" : ""));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));
  std::printf("LINEITEM %u pages, %u buckets\n", lineitem->num_pages(),
              lineitem->num_buckets());

  plan::PlannerOptions row_options;
  row_options.batch_size = 0;
  row_options.degree_of_parallelism = 1;
  plan::Planner row_planner(&smas, row_options);

  // --- 1. Q1, 100%-ambivalent scan: row vs batch ------------------------
  std::string row_result;
  const double row_wall =
      TimeRun(&row_planner, q1, plan::PlanKind::kScanAggr, &row_result,
              iters);

  std::printf("\nQ1 over full scan (GAggr o TableScan, serial, warm)\n");
  std::printf("%-12s %10s %10s\n", "mode", "wall", "speedup");
  std::printf("%-12s %9.3fs %9.2fx\n", "row", row_wall, 1.0);

  double batch_wall = 0;
  {
    plan::PlannerOptions options = row_options;
    options.batch_size = exec::kDefaultBatchSize;
    plan::Planner planner(&smas, options);
    std::string result;
    batch_wall =
        TimeRun(&planner, q1, plan::PlanKind::kScanAggr, &result, iters);
    if (result != row_result) {
      std::fprintf(stderr, "RESULT MISMATCH: batch vs row on Q1 scan\n");
      return 1;
    }
    std::printf("%-12s %9.3fs %9.2fx\n", "batch=1024", batch_wall,
                row_wall / batch_wall);
  }

  // --- 2. batch-size sweep ---------------------------------------------
  std::printf("\nbatch-size sweep (same query)\n");
  std::printf("%-12s %10s %10s\n", "batch_size", "wall", "speedup");
  for (size_t bs : {size_t{64}, size_t{256}, size_t{1024}, size_t{4096}}) {
    plan::PlannerOptions options = row_options;
    options.batch_size = bs;
    plan::Planner planner(&smas, options);
    std::string result;
    const double wall =
        TimeRun(&planner, q1, plan::PlanKind::kScanAggr, &result, iters);
    if (result != row_result) {
      std::fprintf(stderr, "RESULT MISMATCH at batch_size %zu\n", bs);
      return 1;
    }
    std::printf("%-12zu %9.3fs %9.2fx\n", bs, wall, row_wall / wall);
  }

  // --- 3. Fig. 5-style ambivalence sweep, row vs batch ------------------
  std::printf("\nSMA_GAggr with forced ambivalence, row vs batch (warm)\n");
  std::printf("%8s %12s %12s %10s\n", "x", "row", "batch", "speedup");
  for (double x : {0.0, 0.25, 0.5, 1.0}) {
    double walls[2] = {0, 0};
    std::string results[2];
    for (int mode = 0; mode < 2; ++mode) {
      exec::SmaGAggrOptions options;
      options.force_ambivalent_fraction = x;
      options.batch_size = mode == 0 ? 0 : exec::kDefaultBatchSize;
      double best = 1e99;
      for (int i = 0; i <= iters; ++i) {
        auto op = Check(exec::SmaGAggr::Make(q1.table, q1.pred, q1.group_by,
                                             q1.aggs, &smas, options));
        util::Stopwatch watch;
        plan::QueryResult r = Check(plan::RunToCompletion(op.get()));
        const double wall = watch.ElapsedSeconds();
        if (i > 0 && wall < best) best = wall;
        results[mode] = r.ToString();
      }
      walls[mode] = best;
    }
    if (results[0] != results[1]) {
      std::fprintf(stderr, "RESULT MISMATCH at x=%.2f\n", x);
      return 1;
    }
    std::printf("%7.0f%% %11.3fs %11.3fs %9.2fx\n", x * 100.0, walls[0],
                walls[1], walls[0] / walls[1]);
  }

  if (smoke) {
    std::printf("\nSMOKE OK: all modes returned identical Q1 rows\n");
    return 0;
  }

  if (row_wall / batch_wall < 1.5) {
    std::printf("\nWARNING: batch speedup %.2fx below the 1.5x target\n",
                row_wall / batch_wall);
  }
  bench::PrintPaperNote(
      "not in the paper (its engine is tuple-at-a-time). Extension: "
      "batch-at-a-time execution removes per-tuple virtual dispatch, Value "
      "boxing, and per-row group lookups; expected >=1.5x warm wall-clock "
      "on the 100%-ambivalent Q1 scan with bit-identical rows. With SMAs "
      "the two optimizations compose: pruning removes I/O and grading work, "
      "vectorization accelerates whatever must still be investigated.");
  return 0;
}
