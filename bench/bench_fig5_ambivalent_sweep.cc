// Experiment F5 — paper Figure 5: "Runtime dependent on percentage of
// buckets to be processed".
//
// Two curves:
//   1. Query 1 without SMAs — flat (a full scan reads everything anyway).
//   2. Query 1 with SMAs (warm) — rises with the fraction of buckets that
//      must be investigated.
// Paper findings: break-even at ~25% of the buckets; even when SMAs are
// applied erroneously (100% must be processed), the overhead over the plain
// scan stays small (<2%).
//
// We control the investigated fraction with SmaGAggrOptions::
// force_ambivalent_fraction (demoted buckets are re-checked tuple-by-tuple,
// so results remain correct at every x). Runtime is modeled 1997-disk
// seconds: skip-sequential bucket fetches pay a short seek, which is what
// creates the crossover.

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(65536);

  bench::PrintHeader(util::Format(
      "F5: runtime vs fraction of buckets processed (paper Fig. 5), SF %.3f",
      sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));

  // Reference: Query 1 without SMAs (cold).
  Check(db.pool.DropAll());
  storage::IoStats base = db.disk.stats();
  {
    plan::Planner planner(&smas);
    auto op = Check(planner.Build(q1, plan::PlanKind::kScanAggr));
    (void)Check(plan::RunToCompletion(op.get()));
  }
  const double scan_seconds = db.ModeledSeconds(base);
  std::printf("Query 1 without SMAs: %.2f modeled disk seconds (flat line)\n",
              scan_seconds);

  std::printf("\n%8s %16s %16s %10s\n", "x", "SMA runtime", "scan runtime",
              "SMA/scan");
  std::string reference_result;
  double breakeven = -1.0;
  double overhead_at_full = 0.0;
  for (double x :
       {0.0, 0.025, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 1.0}) {
    exec::SmaGAggrOptions options;
    options.force_ambivalent_fraction = x;
    auto op = Check(exec::SmaGAggr::Make(q1.table, q1.pred, q1.group_by,
                                         q1.aggs, &smas, options));
    Check(db.pool.DropAll());
    base = db.disk.stats();
    plan::QueryResult result = Check(plan::RunToCompletion(op.get()));
    const double seconds = db.ModeledSeconds(base);
    // Correctness across the sweep.
    if (reference_result.empty()) {
      reference_result = result.ToString();
    } else if (result.ToString() != reference_result) {
      std::fprintf(stderr, "RESULT CHANGED at x=%.2f!\n", x);
      return 1;
    }
    const double ratio = seconds / scan_seconds;
    std::printf("%7.1f%% %15.2fs %15.2fs %9.2fx\n", x * 100.0, seconds,
                scan_seconds, ratio);
    if (breakeven < 0 && seconds >= scan_seconds && x <= 0.5) breakeven = x;
    if (x == 1.0) overhead_at_full = ratio - 1.0;
  }

  if (breakeven > 0) {
    std::printf("\nbreak-even at ~%.0f%% of buckets (paper: ~25%%)\n",
                breakeven * 100.0);
  } else {
    std::printf("\nno break-even below 50%% under this disk model\n");
  }
  std::printf("erroneous-application overhead at 100%%: %.1f%% "
              "(paper: <2%%)\n",
              overhead_at_full * 100.0);

  bench::PrintPaperNote(
      "shape holds: the SMA curve starts near zero, rises linearly with the "
      "investigated fraction, crosses the flat scan line at a few tens of "
      "percent, and the penalty for applying SMAs erroneously stays small "
      "because grading reads only the tiny SMA-files");
  return 0;
}
