// Ablation A1 — does the planner's break-even guard matter?
//
// DESIGN.md §5 calls out the cost-model guard as an ablation-worthy
// decision: the paper's Fig. 5 shows SMA plans lose beyond ~25% ambivalent
// buckets, so a planner that always forces SMA plans should do measurably
// worse on badly clustered data while the guarded planner matches the best
// plan everywhere.
//
// Sweep clustering quality (diagonal entry lag); at each point run
//   a) forced SMA_GAggr, b) forced scan, c) the guarded planner's choice
// and report modeled disk seconds + the planner's pick.

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.02);

  bench::PrintHeader(util::Format(
      "A1: planner break-even guard ablation, SF %.3f", sf));

  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);

  std::printf("workload: Q6-style one-year range aggregate over LINEITEM\n");
  std::printf("\n%-14s %12s %12s %12s   %-18s %8s\n", "entry lag",
              "forced SMA", "forced scan", "planner", "planner picked",
              "regret");
  for (double lag : {2.0, 20.0, 60.0, 150.0, 400.0, 1200.0}) {
    bench::BenchDb db(262144);
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    load.lag_stddev_days = lag;
    storage::Table* t =
        Check(tpch::LoadLineItem(&db.catalog, lineitems, load, "li"));
    sma::SmaSet smas(t);
    Check(workloads::BuildQ1Smas(t, &smas));
    Check(workloads::BuildQ6Smas(t, &smas));
    plan::AggQuery q6 = Check(workloads::MakeQ6Query(t, 1994, 6, 24));
    // Use only the date atoms so the SMA plan can fully qualify buckets:
    // this isolates the clustering effect.
    q6.pred = Check(expr::Predicate::AtomConst(
        &t->schema(), "l_shipdate", expr::CmpOp::kLt,
        util::Value::MakeDate(util::Date::FromYmd(1995, 1, 1))));

    auto run = [&](plan::PlanKind kind) -> double {
      plan::Planner planner(&smas);
      auto op = Check(planner.Build(q6, kind));
      Check(db.pool.DropAll());
      db.disk.ResetAccessPositions();
      const storage::IoStats base = db.disk.stats();
      (void)Check(plan::RunToCompletion(op.get()));
      return db.ModeledSeconds(base);
    };

    const double forced_sma = run(plan::PlanKind::kSmaGAggr);
    const double forced_scan = run(plan::PlanKind::kScanAggr);

    plan::Planner planner(&smas);
    const plan::PlanChoice choice = Check(planner.Choose(q6));
    const double planner_time = run(choice.kind);
    const double best = std::min(forced_sma, forced_scan);
    const double regret = (planner_time - best) / best * 100.0;

    std::printf("%10.0f d %11.2fs %11.2fs %11.2fs   %-18s %7.1f%%\n", lag,
                forced_sma, forced_scan, planner_time,
                std::string(PlanKindToString(choice.kind)).c_str(), regret);
  }

  bench::PrintPaperNote(
      "the guard behaves as Fig. 5 predicts: on clustered data the planner "
      "rides the SMA plan's order-of-magnitude win, and once clustering "
      "degrades it falls back to the scan. The paper's 25% threshold is "
      "deliberately conservative — near the crossover the forced-SMA plan "
      "can still edge out the scan (ambivalent buckets cluster together, "
      "so their fetches are cheaper than the model's worst case), which is "
      "the safe side of the trade given the <2% erroneous-application "
      "overhead");
  return 0;
}
