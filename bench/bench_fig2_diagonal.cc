// Experiment F2 — paper Figure 2: the "diagonal data distribution" of
// time-of-creation clustering, and why it makes SMAs effective.
//
// The paper's figure is qualitative (order tuples plotted by introduction
// date vs order date, all points right of and near the diagonal). We
// reproduce it quantitatively: ORDERS is loaded in entry order (orderdate +
// normally distributed data-entry lag) and we report
//   * the per-bucket [min, max] orderdate span (tightness of the diagonal),
//   * the ambivalent-bucket fraction of a one-month predicate as the entry
//     lag grows (blurrier diagonal -> more ambivalence),
//   * an ASCII rendition of the diagonal itself.

#include <algorithm>

#include "bench/bench_util.h"
#include "sma/builder.h"
#include "sma/grade.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);

  bench::PrintHeader(util::Format(
      "F2: diagonal data distribution / TOC clustering (paper Fig. 2), "
      "SF %.3f", sf));

  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);

  // ASCII diagonal: bucket index (introduction order) vs orderdate decile.
  {
    bench::BenchDb db(65536);
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    load.lag_stddev_days = 15.0;
    storage::Table* t =
        Check(tpch::LoadOrders(&db.catalog, orders, load, "orders"));
    const int rows = 18, cols = 60;
    std::vector<std::string> grid(rows, std::string(cols, ' '));
    const double total_days = tpch::kEndDate - tpch::kStartDate;
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      const int x = static_cast<int>(static_cast<double>(b) /
                                     t->num_buckets() * cols);
      Check(t->ForEachTupleInBucket(
          b, [&](const storage::TupleRef& tup, storage::Rid) {
            const double frac =
                (tup.GetDate(tpch::orders::kOrderDate) - tpch::kStartDate) /
                total_days;
            const int y =
                rows - 1 -
                std::clamp(static_cast<int>(frac * rows), 0, rows - 1);
            grid[static_cast<size_t>(y)][static_cast<size_t>(
                std::clamp(x, 0, cols - 1))] = '*';
          }));
    }
    std::printf("\norderdate (y) vs position in warehouse (x):\n");
    for (const std::string& line : grid) std::printf("|%s\n", line.c_str());
    std::printf("+%s\n", std::string(cols, '-').c_str());

    // Per-bucket span statistics.
    sma::SmaSet smas(t);
    const expr::ExprPtr od =
        Check(expr::Column(&t->schema(), "o_orderdate"));
    Check(smas.Add(Check(sma::BuildSma(t, sma::SmaSpec::Min("min", od)))));
    Check(smas.Add(Check(sma::BuildSma(t, sma::SmaSpec::Max("max", od)))));
    const sma::Sma* mn = *smas.Find("min");
    const sma::Sma* mx = *smas.Find("max");
    double total_span = 0;
    for (uint64_t b = 0; b < mn->num_buckets(); ++b) {
      total_span += static_cast<double>(Check(mx->group_file(0)->Get(b)) -
                                        Check(mn->group_file(0)->Get(b)));
    }
    std::printf("\nmean per-bucket orderdate span: %.1f days "
                "(7-year calendar = 2556 days)\n",
                total_span / static_cast<double>(mn->num_buckets()));
  }

  // Lag sweep: ambivalence of a one-month predicate vs entry lag.
  std::printf("\n%-18s %12s %12s %12s %10s\n", "entry lag stddev",
              "qualifying", "disqualif.", "ambivalent", "fetch%");
  for (double lag : {0.0, 5.0, 15.0, 30.0, 60.0, 120.0}) {
    bench::BenchDb db(65536);
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    load.lag_stddev_days = lag;
    storage::Table* t = Check(
        tpch::LoadOrders(&db.catalog, orders, load, "orders"));
    sma::SmaSet smas(t);
    const expr::ExprPtr od =
        Check(expr::Column(&t->schema(), "o_orderdate"));
    Check(smas.Add(Check(sma::BuildSma(t, sma::SmaSpec::Min("min", od)))));
    Check(smas.Add(Check(sma::BuildSma(t, sma::SmaSpec::Max("max", od)))));

    expr::PredicatePtr pred = expr::Predicate::And(
        Check(expr::Predicate::AtomConst(
            &t->schema(), "o_orderdate", expr::CmpOp::kGe,
            util::Value::MakeDate(util::Date::FromYmd(1995, 6, 1)))),
        Check(expr::Predicate::AtomConst(
            &t->schema(), "o_orderdate", expr::CmpOp::kLt,
            util::Value::MakeDate(util::Date::FromYmd(1995, 7, 1)))));
    auto grader = sma::BucketGrader::Create(pred, &smas);
    uint64_t q = 0, d = 0, a = 0;
    for (uint64_t b = 0; b < t->num_buckets(); ++b) {
      switch (Check(grader->GradeBucket(b))) {
        case sma::Grade::kQualifies:
          ++q;
          break;
        case sma::Grade::kDisqualifies:
          ++d;
          break;
        case sma::Grade::kAmbivalent:
          ++a;
          break;
      }
    }
    std::printf("%15.0f d %12llu %12llu %12llu %9.2f%%\n", lag,
                static_cast<unsigned long long>(q),
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(a),
                100.0 * static_cast<double>(q + a) /
                    static_cast<double>(std::max<uint64_t>(1, q + d + a)));
  }

  bench::PrintPaperNote(
      "the diagonal is visible and tight; realistic entry lags (days to a "
      "few weeks, the paper's normal-distribution argument) keep a "
      "one-month predicate's fetch fraction in single-digit percent, i.e. "
      "imperfect TOC clustering is 'imperfect but still exploitable'");
  return 0;
}
