// Experiment T2 — paper §2.4 storage comparison against the materialized
// data cube:
//
//   one date dimension:    479.25 KB   (2556^1 x 4 x 48 B)
//   two date dimensions:   1196.25 MB  (2556^2 x 4 x 48 B)
//   three date dimensions: 2985.95 GB  (2556^3 x 4 x 48 B)
//   vs SMAs for all three dates: 51.12 MB total.
//
// The cube formula is analytic (as in the paper); we also build a *real*
// cube at bench scale to show the measured footprint and the flexibility
// difference.

#include "baseline/datacube.h"
#include "bench/bench_util.h"
#include "sma/builder.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.02);

  bench::PrintHeader("T2: SMA vs data-cube storage (paper §2.4)");

  // --- Analytic sizing, exactly the paper's formula. ---------------------
  baseline::CubeSizing sizing;  // 4 flag combos x 2556-day dates x 48 B
  std::printf("analytic data-cube sizes (2556-day date dimensions, 4 flag\n"
              "combinations, 6 aggregates x 8 B = 48 B per entry):\n");
  for (int dims = 1; dims <= 3; ++dims) {
    std::printf("  %d date dim%s: %14s   (paper: %s)\n", dims,
                dims == 1 ? " " : "s",
                util::HumanBytes(sizing.SizeBytes(dims)).c_str(),
                dims == 1   ? "479.25 KB"
                : dims == 2 ? "1196.25 MB"
                            : "2985.95 GB");
  }

  // --- SMA side: the Fig. 4 set + two more date SMA pairs. ----------------
  bench::BenchDb db(65536);
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  const uint64_t q1_bytes = smas.TotalSizeBytes();

  // "Adding SMAs for the two missing dates would require an additional
  // 17.34 MB" — min/max for commitdate and receiptdate.
  for (const char* col : {"l_commitdate", "l_receiptdate"}) {
    const expr::ExprPtr c = Check(expr::Column(&lineitem->schema(), col));
    Check(smas.Add(Check(sma::BuildSma(
        lineitem, sma::SmaSpec::Min(std::string("min_") + col, c)))));
    Check(smas.Add(Check(sma::BuildSma(
        lineitem, sma::SmaSpec::Max(std::string("max_") + col, c)))));
  }
  const uint64_t all_bytes = smas.TotalSizeBytes();
  std::printf("\nSMA footprint at SF %.3f (LINEITEM = %s):\n", sf,
              util::HumanBytes(static_cast<double>(lineitem->SizeBytes()))
                  .c_str());
  std::printf("  8 Q1 SMAs:               %12s\n",
              util::HumanBytes(static_cast<double>(q1_bytes)).c_str());
  std::printf("  + 2 more date min/max:   %12s  (paper: 51.12 MB total "
              "at SF 1)\n",
              util::HumanBytes(static_cast<double>(all_bytes)).c_str());
  const double scaled_to_sf1 = static_cast<double>(all_bytes) / sf;
  std::printf("  linear projection to SF1: %11s\n",
              util::HumanBytes(scaled_to_sf1).c_str());
  std::printf("  3-date cube / SMAs(SF1) = %.0fx\n",
              sizing.SizeBytes(3) / scaled_to_sf1);

  // --- A real (small) cube, to measure and to show inflexibility. --------
  const storage::Schema* schema = &lineitem->schema();
  const expr::ExprPtr qty = Check(expr::Column(schema, "l_quantity"));
  auto cube = Check(baseline::DataCube::Build(
      lineitem,
      {tpch::lineitem::kReturnFlag, tpch::lineitem::kLineStatus,
       tpch::lineitem::kShipDate},
      {exec::AggSpec::Sum(qty, "sum_qty"), exec::AggSpec::Count("n")}));
  std::printf("\nmaterialized cube over (returnflag, linestatus, shipdate):\n");
  std::printf("  cells: %zu, measured bytes: %s\n", cube->num_cells(),
              util::HumanBytes(
                  static_cast<double>(cube->MaterializedSizeBytes()))
                  .c_str());
  // Inflexibility: restrict a non-dimension column.
  const util::Status applicable =
      cube->CheckApplicable(tpch::lineitem::kCommitDate);
  std::printf("  query restricting l_commitdate? %s\n",
              applicable.ok() ? "applicable (unexpected!)"
                              : applicable.ToString().c_str());

  bench::PrintPaperNote(
      "shape holds: cube cost explodes exponentially with date dimensions "
      "(479 KB -> 1.2 GB -> 3 TB) while SMAs stay linear (~51 MB at SF 1, "
      "~4-7% of the relation), and the cube cannot serve predicates on "
      "non-dimension columns at any size");
  return 0;
}
