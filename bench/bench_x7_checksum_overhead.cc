// Experiment X7 — checksum overhead on the headline query (extension, not
// in the paper):
//
// Every buffer-pool miss verifies the fetched page against the disk's
// out-of-band CRC-32C (DESIGN.md "Fault model & degradation ladder"). The
// check is pure CPU — one crc32 pass over 4 KiB per miss — so the paper's
// I/O-bound results cannot move, but the *wall-clock* cost on a warm-CPU
// laptop run is worth pinning down. This binary runs Table-3's Q1 cold
// (every page read verified) with verification on and off and reports the
// relative overhead. Expectation: < 3 % on the scan plan, noise on the SMA
// plan (which reads ~1000x fewer pages).

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

struct ModeStats {
  double scan_wall = 0;
  double scan_modeled = 0;
  double sma_wall = 0;
  uint64_t scan_reads = 0;
  uint64_t pages_verified = 0;
  std::string result;
};

ModeStats RunMode(double sf, size_t pool_pages, bool verify) {
  bench::BenchDb db(storage::BufferPoolOptions{.capacity_pages = pool_pages,
                                               .verify_checksums = verify});
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));
  plan::Planner planner(&smas);

  // Cold runs (pool dropped) so every page read goes through verification;
  // min-of-5 to shed scheduler noise. The modeled-disk seconds and page
  // reads are per-run (identical across reps by construction).
  ModeStats stats;
  auto cold_run = [&](plan::PlanKind kind, std::string* result,
                      bool record_io) {
    double best = 1e100;
    for (int rep = 0; rep < 5; ++rep) {
      Check(db.pool.DropAll());
      const storage::IoStats base = db.disk.stats();
      auto op = Check(planner.Build(q1, kind));
      util::Stopwatch watch;
      plan::QueryResult r = Check(plan::RunToCompletion(op.get()));
      best = std::min(best, watch.ElapsedSeconds());
      *result = r.ToString();
      if (record_io) {
        stats.scan_modeled = db.ModeledSeconds(base);
        stats.scan_reads = (db.disk.stats() - base).page_reads;
      }
    }
    return best;
  };

  stats.scan_wall =
      cold_run(plan::PlanKind::kScanAggr, &stats.result, /*record_io=*/true);
  std::string sma_result;
  stats.sma_wall =
      cold_run(plan::PlanKind::kSmaGAggr, &sma_result, /*record_io=*/false);
  if (stats.result != sma_result) {
    std::fprintf(stderr, "RESULT MISMATCH between plans!\n");
    std::exit(1);
  }
  stats.pages_verified = verify ? db.pool.stats().misses : 0;
  if (db.pool.stats().checksum_failures != 0) {
    std::fprintf(stderr, "unexpected checksum failures on clean data!\n");
    std::exit(1);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  const size_t pool_pages = std::max<size_t>(
      2048, static_cast<size_t>(sf * 215000.0 / 100.0) * 2);

  bench::PrintHeader(util::Format(
      "X7: CRC-32C verification overhead on Q1 (cold), SF %.3f", sf));

  const ModeStats off = RunMode(sf, pool_pages, /*verify=*/false);
  const ModeStats on = RunMode(sf, pool_pages, /*verify=*/true);
  if (on.result != off.result) {
    std::fprintf(stderr, "RESULT MISMATCH between modes!\n");
    return 1;
  }

  auto pct = [](double with, double without) {
    return 100.0 * (with - without) / std::max(1e-9, without);
  };
  std::printf("\n%-26s %14s %14s %10s\n", "plan (cold)", "verify off",
              "verify on", "overhead");
  std::printf("%-26s %13.3fs %13.3fs %+9.2f%%\n", "without SMAs (scan)",
              off.scan_wall, on.scan_wall, pct(on.scan_wall, off.scan_wall));
  std::printf("%-26s %13.3fs %13.3fs %+9.2f%%\n", "with SMAs (SMA_GAggr)",
              off.sma_wall, on.sma_wall, pct(on.sma_wall, off.sma_wall));
  std::printf("%-26s %13.2fs %13.2fs %+9.2f%%\n",
              "scan, modeled 1997 disk", off.scan_modeled, on.scan_modeled,
              pct(on.scan_modeled, off.scan_modeled));
  std::printf("\nscan page reads: %llu (off) vs %llu (on); "
              "pages verified: %llu; checksum failures: 0\n",
              static_cast<unsigned long long>(off.scan_reads),
              static_cast<unsigned long long>(on.scan_reads),
              static_cast<unsigned long long>(on.pages_verified));

  bench::PrintPaperNote(util::Format(
      "not in the paper. verification is one hardware-CRC pass (~16 GB/s, "
      "~256 ns/page) per buffer-pool miss: %+.1f%% wall on the scan plan "
      "against this RAM-speed simulated disk (the adversarial case), "
      "%+.2f%% on the modeled 1997 disk the paper's numbers live on — the "
      "check costs no I/O, so any disk slower than DRAM hides it (< 3%% "
      "budget met on the modeled metric)",
      pct(on.scan_wall, off.scan_wall),
      pct(on.scan_modeled, off.scan_modeled)));
  return 0;
}
