// Experiment T1 — paper §2.4 creation-time & size table:
//
//   sma file      count max  min  qty   dis   ext   extdis extdistax
//   creation time 117s  116s 103s 104s  100s  101s  95s    99s
//   size          736p  184p 184p 1468p 1468p 1468p 1468p  1468p
//
// Paper layout invariants this must reproduce at any scale factor:
//   * min = max size (one 4-byte entry per bucket),
//   * count = 4 x min (four groups of 4-byte counts),
//   * every grouped sum = 8 x min (four groups of 8-byte sums),
//   * total SMA footprint ≈ 4% of LINEITEM,
//   * per-SMA creation times roughly equal (each is one sequential scan).

#include "bench/bench_util.h"
#include "sma/builder.h"
#include "sma/sma_set.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(65536);

  bench::PrintHeader(util::Format(
      "T1: creation time & size of the 8 Q1 SMAs (paper §2.4), SF %.3f", sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  util::Stopwatch gen_watch;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  std::printf("LINEITEM: %s tuples, %u pages (%s) [generated in %.1fs]\n",
              util::WithThousands(
                  static_cast<long long>(lineitem->num_tuples()))
                  .c_str(),
              lineitem->num_pages(),
              util::HumanBytes(static_cast<double>(lineitem->SizeBytes()))
                  .c_str(),
              gen_watch.ElapsedSeconds());

  sma::SmaSet smas(lineitem);
  std::vector<sma::SmaSpec> specs =
      Check(workloads::MakeQ1SmaSpecs(lineitem));

  std::printf("\n%-10s %14s %14s %10s %8s %10s\n", "sma", "wall time",
              "modeled disk", "pages", "files", "bytes");
  uint64_t min_pages = 0;
  double total_build_modeled = 0;
  for (sma::SmaSpec& spec : specs) {
    const std::string name = spec.name;
    Check(db.pool.DropAll());
    const storage::IoStats base = db.disk.stats();
    util::Stopwatch watch;
    auto sma = Check(sma::BuildSma(lineitem, std::move(spec)));
    Check(db.pool.FlushAll());
    const double wall = watch.ElapsedSeconds();
    const double modeled = db.ModeledSeconds(base);
    total_build_modeled += modeled;
    if (name == "min") min_pages = sma->TotalPages();
    std::printf("%-10s %12.3fs %12.1fs %9llup %8zu %10llu\n", name.c_str(),
                wall, modeled,
                static_cast<unsigned long long>(sma->TotalPages()),
                sma->num_groups(),
                static_cast<unsigned long long>(sma->SizeBytes()));
    Check(smas.Add(std::move(sma)));
  }

  const uint64_t total_pages = smas.TotalPages();
  const double pct = 100.0 * static_cast<double>(total_pages) /
                     static_cast<double>(lineitem->num_pages());
  std::printf("\ntotal: %llu pages = %s (%.2f%% of LINEITEM)\n",
              static_cast<unsigned long long>(total_pages),
              util::HumanBytes(static_cast<double>(total_pages) * 4096.0)
                  .c_str(),
              pct);
  std::printf("all 8 SMAs built in %.1f modeled disk seconds\n",
              total_build_modeled);

  // Layout-invariant checks against the paper's table.
  const sma::Sma* min_sma = *smas.Find("min");
  const sma::Sma* max_sma = *smas.Find("max");
  const sma::Sma* count_sma = *smas.Find("count");
  const sma::Sma* qty_sma = *smas.Find("qty");
  std::printf("\nlayout ratios (paper: max=min, count=4xmin, sums=8xmin):\n");
  std::printf("  max/min   = %.2f (paper 1.00: 184p/184p)\n",
              static_cast<double>(max_sma->TotalPages()) /
                  static_cast<double>(min_sma->TotalPages()));
  std::printf("  count/min = %.2f (paper 4.00: 736p/184p)\n",
              static_cast<double>(count_sma->TotalPages()) /
                  static_cast<double>(min_sma->TotalPages()));
  std::printf("  qty/min   = %.2f (paper 7.98: 1468p/184p)\n",
              static_cast<double>(qty_sma->TotalPages()) /
                  static_cast<double>(min_sma->TotalPages()));
  (void)min_pages;

  bench::PrintPaperNote(util::Format(
      "paper (SF 1): 8444 SMA pages = 33.8 MB = ~4%% of a 733 MB LINEITEM, "
      "each SMA built in ~100s on a 1997 disk. measured: %.2f%%, with the "
      "same 1:1:4:8 min:max:count:sum size ratios%s",
      pct,
      sf < 0.5 ? " (percentage is higher at small SF because every SMA-file "
                 "occupies at least one page)"
               : ""));
  return 0;
}
