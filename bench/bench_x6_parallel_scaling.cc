// Experiment X6 — morsel-parallel scaling on the Table-3 Q1 workload.
//
// The paper's engine is single-threaded; this extension runs the same
// Query 1 (LINEITEM sorted on l_shipdate, Fig. 4 SMAs) warm at degrees of
// parallelism 1, 2, 4, and 8 and reports the wall-clock speedup over the
// serial engine. Buckets are the morsels; workers claim them through an
// atomic counter and merge per-worker partial aggregates at the end, so
// every DOP returns bit-identical results (verified below).
//
// Wall-clock scaling requires real cores: on an N-core host the expected
// warm speedup at DOP 4 is ~2x or better (the workload is CPU-bound once
// the pool is warm); on a single-core host all DOPs collapse to roughly
// serial time, which the printed hardware_concurrency makes visible.

#include <algorithm>
#include <thread>

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(/*pool_pages=*/65536);  // warm: everything resident

  bench::PrintHeader(util::Format(
      "X6: parallel scaling of Q1 (Table-3 workload, warm), SF %.3f", sf));
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  std::printf("LINEITEM %u pages, %u buckets\n", lineitem->num_pages(),
              lineitem->num_buckets());

  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));
  plan::Planner planner(&smas);

  const size_t dops[] = {1, 2, 4, 8};
  // The scan-aggregate plan carries the parallel work (every bucket is
  // fetched and folded); SMA_GAggr is also swept to show that the pruned
  // plan keeps its lead at every DOP.
  for (const plan::PlanKind kind :
       {plan::PlanKind::kScanAggr, plan::PlanKind::kSmaGAggr}) {
    std::printf("\n%s\n%-8s %10s %10s %10s\n",
                std::string(plan::PlanKindToString(kind)).c_str(), "dop",
                "wall", "speedup", "rows");
    std::string reference;
    double serial_wall = 0;
    for (const size_t dop : dops) {
      auto op = Check(planner.Build(q1, kind, dop));
      // Warm the pool (and the pool's frame table) once per operator.
      Check(op->Init());
      util::Stopwatch watch;
      plan::QueryResult r = Check(plan::RunToCompletion(op.get()));
      const double wall = watch.ElapsedSeconds();
      if (dop == 1) {
        reference = r.ToString();
        serial_wall = wall;
      } else if (r.ToString() != reference) {
        std::fprintf(stderr, "RESULT MISMATCH at dop %zu!\n", dop);
        return 1;
      }
      std::printf("%-8zu %9.3fs %9.2fx %10zu\n", dop, wall,
                  serial_wall / std::max(1e-9, wall), r.rows.size());
    }
  }

  bench::PrintPaperNote(
      "not in the paper (its engine is single-threaded). Extension: bucket-"
      "granular morsel parallelism; DOP 1 runs the paper's serial code path "
      "and every DOP returns identical Q1 rows. Expected >=2x wall-clock at "
      "DOP 4 on >=4 real cores; single-core hosts show ~1x across the "
      "sweep.");
  return 0;
}
