// Experiment X9 — governor responsiveness and overhead (extension, not in
// the paper):
//
// The governor (DESIGN.md §10) promises two things that can be measured:
//   1. *Responsiveness*: a cancel (or deadline) lands at the next
//      bucket/batch checkpoint, so cancellation latency is bounded by one
//      work unit, not by query length. Reported as p50/p99 over repeated
//      cancel-mid-scan runs of Q1, and as deadline overshoot for
//      `set timeout_ms`-style deadlines.
//   2. *Near-zero cost when idle*: with generous limits the checkpoints are
//      one relaxed atomic load (+ a clock read when a deadline is armed)
//      per 512 rows / per batch, and the memory tracker charges at bucket
//      granularity. Warm Q1 wall-clock overhead target: < 2 %.
//
// `--smoke` (first argument) runs a tiny scale with correctness assertions
// for CI; any other argument is the TPC-H scale factor.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "util/query_context.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

double PercentileMs(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double sf = smoke ? 0.01 : bench::ScaleFromArgs(argc, argv, 0.05);
  const int cancel_reps = smoke ? 5 : 25;
  const int warm_reps = smoke ? 3 : 15;

  bench::PrintHeader(util::Format(
      "X9: governor cancellation latency and tracker overhead, SF %.3f%s",
      sf, smoke ? " (smoke)" : ""));

  bench::BenchDb db;
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));
  plan::Planner planner(&smas);

  // ---- 1. cancellation latency: cancel mid-scan, time Cancel -> return ---
  std::vector<double> latencies_ms;
  int finished_first = 0;
  for (int rep = 0; rep < cancel_reps; ++rep) {
    auto token = std::make_shared<util::CancelToken>();
    util::QueryContext ctx(nullptr, 0, token);
    auto op = Check(planner.Build(q1, plan::PlanKind::kScanAggr, 4));
    op->BindContext(&ctx);
    util::Status run_status;
    std::atomic<bool> done{false};
    std::thread runner([&] {
      run_status = plan::RunToCompletion(op.get(), &ctx).status();
      done.store(true, std::memory_order_release);
    });
    // Let the scan get going, then cancel and time the drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(smoke ? 1 : 3));
    util::Stopwatch watch;
    token->Cancel();
    runner.join();
    const double ms = watch.ElapsedSeconds() * 1e3;
    if (run_status.code() == util::StatusCode::kCancelled) {
      latencies_ms.push_back(ms);
    } else if (run_status.ok()) {
      ++finished_first;  // tiny scale: the query beat the cancel — fine
    } else {
      std::fprintf(stderr, "unexpected status: %s\n",
                   run_status.ToString().c_str());
      return 1;
    }
  }
  std::printf("\ncancel-mid-scan (Q1 scan plan, dop 4, %d reps):\n",
              cancel_reps);
  std::printf("  cancelled=%zu finished-before-cancel=%d\n",
              latencies_ms.size(), finished_first);
  if (!latencies_ms.empty()) {
    std::printf("  latency p50=%.2f ms  p99=%.2f ms  max=%.2f ms\n",
                PercentileMs(latencies_ms, 0.50),
                PercentileMs(latencies_ms, 0.99),
                *std::max_element(latencies_ms.begin(), latencies_ms.end()));
    if (PercentileMs(latencies_ms, 0.99) > 1000.0) {
      std::fprintf(stderr, "cancellation latency p99 above 1s!\n");
      return 1;
    }
  }

  // ---- 2. deadline overshoot: `set timeout_ms` analogue ------------------
  {
    const int64_t timeout_ms = smoke ? 5 : 20;
    util::QueryContext ctx;
    ctx.cancel()->SetTimeout(std::chrono::milliseconds(timeout_ms));
    auto op = Check(planner.Build(q1, plan::PlanKind::kScanAggr, 4));
    op->BindContext(&ctx);
    util::Stopwatch watch;
    auto run = plan::RunToCompletion(op.get(), &ctx);
    const double wall_ms = watch.ElapsedSeconds() * 1e3;
    if (run.ok()) {
      std::printf("\ndeadline %lld ms: query finished first (%.2f ms)\n",
                  static_cast<long long>(timeout_ms), wall_ms);
    } else if (run.status().code() == util::StatusCode::kDeadlineExceeded) {
      std::printf("\ndeadline %lld ms: tripped, overshoot %.2f ms\n",
                  static_cast<long long>(timeout_ms),
                  wall_ms - static_cast<double>(timeout_ms));
      if (wall_ms > 1000.0) {
        std::fprintf(stderr, "deadline trip took over 1s!\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "unexpected status: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
  }

  // ---- 3. tracker overhead on warm Q1 ------------------------------------
  // Warm the pool once, then min-of-N with and without a governor. The
  // governed runs arm a (distant) deadline and a generous memory budget so
  // every checkpoint and charge takes its real path.
  std::string governed_result, ungoverned_result;
  auto warm_best = [&](bool governed, std::string* result) {
    double best = 1e100;
    for (int rep = 0; rep < warm_reps + 1; ++rep) {
      util::QueryContext ctx(nullptr, size_t{1} << 30);
      ctx.cancel()->SetTimeout(std::chrono::hours(1));
      auto op = Check(planner.Build(q1, plan::PlanKind::kScanAggr, 1));
      if (governed) op->BindContext(&ctx);
      util::Stopwatch watch;
      plan::QueryResult r = Check(plan::RunToCompletion(
          op.get(), governed ? &ctx : nullptr));
      if (rep > 0) best = std::min(best, watch.ElapsedSeconds());  // rep 0 warms
      *result = r.ToString();
    }
    return best;
  };
  const double base_s = warm_best(false, &ungoverned_result);
  const double gov_s = warm_best(true, &governed_result);
  if (governed_result != ungoverned_result) {
    std::fprintf(stderr, "RESULT MISMATCH governed vs ungoverned!\n");
    return 1;
  }
  const double overhead_pct =
      100.0 * (gov_s - base_s) / std::max(1e-9, base_s);
  report.Add("scale_factor", sf);
  report.Add("ungoverned_warm_q1_ms", base_s * 1e3);
  report.Add("governed_warm_q1_ms", gov_s * 1e3);
  report.Add("governor_overhead_pct", overhead_pct);
  std::printf("\nwarm Q1 (scan plan, serial, min of %d):\n", warm_reps);
  std::printf("  ungoverned %9.3f ms\n  governed   %9.3f ms  (%+.2f%%)\n",
              base_s * 1e3, gov_s * 1e3, overhead_pct);
  if (!smoke && overhead_pct > 2.0) {
    std::printf("  NOTE: overhead above the 2%% target on this run "
                "(laptop noise? re-run with a larger SF)\n");
  }

  bench::PrintPaperNote(
      "not in the paper. The paper's premise is predictable latency; the "
      "governor extends that promise to adversarial load: cancellation "
      "latency is bounded by one bucket/batch work unit (p99 well under a "
      "second regardless of query length), deadlines overshoot by at most "
      "one checkpoint interval, and the governed hot path costs a relaxed "
      "atomic load per 512 rows — under the 2% warm-Q1 budget.");
  return 0;
}
