// Experiment T4 — paper §2.4 comparison against a traditional index:
//
//   "In comparison, a B+ tree on shipdate (though of no use for Query 1)
//    consumes about 230 MB. Its creation time is far beyond the 15 minutes
//    needed to create all SMAs."
//
// We build both over the same LINEITEM and compare footprint and creation
// cost, then demonstrate the "of no use" claim: driving Query 1's 95%+
// selectivity through index lookups costs orders of magnitude more I/O than
// the scan it is supposed to beat.

#include "baseline/bptree.h"
#include "bench/bench_util.h"
#include "planner/planner.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(65536);

  bench::PrintHeader(util::Format(
      "T4: B+-tree on l_shipdate vs the 8 SMAs (paper §2.4), SF %.3f", sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  std::printf("LINEITEM: %s (%u pages)\n",
              util::HumanBytes(static_cast<double>(lineitem->SizeBytes()))
                  .c_str(),
              lineitem->num_pages());

  // --- All eight SMAs. -----------------------------------------------------
  Check(db.pool.DropAll());
  storage::IoStats base = db.disk.stats();
  util::Stopwatch sma_watch;
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  Check(db.pool.FlushAll());
  const double sma_wall = sma_watch.ElapsedSeconds();
  const double sma_modeled = db.ModeledSeconds(base);

  // --- B+-tree on shipdate. ------------------------------------------------
  Check(db.pool.DropAll());
  base = db.disk.stats();
  util::Stopwatch bt_watch;
  auto tree = Check(baseline::BPlusTree::BuildForColumn(
      lineitem, tpch::lineitem::kShipDate, "shipdate"));
  Check(db.pool.FlushAll());
  const double bt_wall = bt_watch.ElapsedSeconds();
  const double bt_modeled = db.ModeledSeconds(base);

  std::printf("\n%-22s %14s %14s %14s\n", "structure", "size",
              "wall build", "modeled build");
  std::printf("%-22s %14s %13.2fs %13.2fs\n", "all 8 SMAs (26 files)",
              util::HumanBytes(static_cast<double>(smas.TotalSizeBytes()))
                  .c_str(),
              sma_wall, sma_modeled);
  std::printf("%-22s %14s %13.2fs %13.2fs\n", "B+-tree(l_shipdate)",
              util::HumanBytes(static_cast<double>(tree->SizeBytes()))
                  .c_str(),
              bt_wall, bt_modeled);
  std::printf("\nB+-tree / SMA size ratio: %.1fx   (paper: 230 MB / 33.8 MB "
              "= 6.8x)\n",
              static_cast<double>(tree->SizeBytes()) /
                  static_cast<double>(smas.TotalSizeBytes()));

  // --- "though of no use for Query 1": index-driven Q1 I/O. ----------------
  // A realistic warehouse is appended in order-entry order, so a shipdate
  // B+-tree is non-clustered; use such a copy for the access-path duel.
  tpch::LoadOptions toc_load;
  toc_load.mode = tpch::ClusterMode::kOrderKey;
  storage::Table* lineitem_toc =
      Check(tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401},
                                          toc_load, nullptr, "lineitem_toc"));
  auto toc_tree = Check(baseline::BPlusTree::BuildForColumn(
      lineitem_toc, tpch::lineitem::kShipDate, "shipdate_toc"));

  const plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem_toc, 90));
  // Cutoff date of Q1's predicate.
  const int64_t cutoff = q1.pred->constant();

  Check(db.pool.DropAll());
  base = db.disk.stats();
  const auto rids = Check(toc_tree->RangeLookup(INT64_MIN + 1, cutoff));
  // Fetch every qualifying tuple through the index, in key order —
  // non-clustered access turns this into scattered page reads.
  uint64_t fetched = 0;
  for (const storage::Rid rid : rids) {
    auto guard = Check(lineitem_toc->FetchPage(rid.page_no));
    ++fetched;
  }
  const double index_q1_modeled = db.ModeledSeconds(base);

  Check(db.pool.DropAll());
  base = db.disk.stats();
  {
    sma::SmaSet no_smas(lineitem_toc);
    plan::Planner planner(&no_smas);
    auto op = Check(planner.Build(q1, plan::PlanKind::kScanAggr));
    (void)Check(plan::RunToCompletion(op.get()));
  }
  const double scan_q1_modeled = db.ModeledSeconds(base);

  std::printf("\nQuery 1 via index lookups: %.1f modeled s for %llu tuple "
              "fetches\n",
              index_q1_modeled, static_cast<unsigned long long>(fetched));
  std::printf("Query 1 via plain scan:    %.1f modeled s\n",
              scan_q1_modeled);
  std::printf("index plan is %.1fx slower than the scan it should beat\n",
              index_q1_modeled / std::max(1e-9, scan_q1_modeled));

  bench::PrintPaperNote(util::Format(
      "shape holds: the B+-tree costs %.1fx the SMA complement to store, "
      "takes longer to build, and is useless for Q1 (its 95%%+ selectivity "
      "makes index-driven access slower than scanning — 'the only effect of "
      "using an index is to turn sequential I/O into random I/O')",
      static_cast<double>(tree->SizeBytes()) /
          static_cast<double>(smas.TotalSizeBytes())));
  return 0;
}
