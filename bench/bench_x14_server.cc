// Experiment X14 — serving-layer latency and shedding under client load
// (extension, not in the paper; DESIGN.md §15):
//
//   1. Per-concurrency sweep: C clients hammer the server over loopback
//      with the same SMA-graded aggregate, each on its own connection.
//      Reported: end-to-end (send → `OK`) p50/p99 per concurrency level.
//      At C=1 this is the protocol's floor; at C=8 the bounded worker pool
//      is saturated and the numbers show queueing, not collapse.
//   2. Saturation: 64 clients against max_connections=32. The extra 32 must
//      be shed at accept with `ERR busy` — the headline is that the served
//      half keeps its latency while the overflow fails fast (never hangs),
//      and the process memory stays bounded (bounded buffers, no queues).
//
// Emits BENCH_x14_server.json. The server runs in-process on an ephemeral
// loopback port; all state is in-memory.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "db/database.h"
#include "net/server.h"
#include "util/stopwatch.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

storage::Schema BenchSchema() {
  return storage::Schema({
      storage::Field::Int64("k"),
      storage::Field::Date("d"),
      storage::Field::Decimal("v"),
      storage::Field::String("grp", 1),
      storage::Field::String("tag", 4),
  });
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * (v->size() - 1) + 0.5);
  return (*v)[std::min(idx, v->size() - 1)];
}

/// Minimal blocking protocol client (mirrors what smadb_cli does).
class Client {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  ~Client() { Close(); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  bool Send(const std::string& line) {
    const std::string out = line + "\n";
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until the `OK`/`ERR` terminator; returns it ("" on EOF).
  std::string ReadResponse() {
    char chunk[8192];
    for (;;) {
      size_t nl;
      while ((nl = buf_.find('\n')) != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (line == "OK" || line.rfind("ERR", 0) == 0) return line;
      }
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct SweepResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double requests_per_s = 0.0;
};

/// `clients` connections each issue `per_client` queries; per-request
/// end-to-end latencies are pooled across clients.
SweepResult RunSweep(uint16_t port, int clients, int per_client,
                     const std::string& sql) {
  std::vector<std::vector<double>> per_thread(clients);
  std::atomic<bool> failed{false};
  util::Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Client c;
      if (!c.Connect(port)) {
        failed.store(true);
        return;
      }
      for (int i = 0; i < per_client; ++i) {
        util::Stopwatch watch;
        if (!c.Send(sql) || c.ReadResponse() != "OK") {
          failed.store(true);
          return;
        }
        per_thread[t].push_back(watch.ElapsedSeconds() * 1e3);
      }
      c.Send("quit");
    });
  }
  for (std::thread& t : threads) t.join();
  if (failed.load()) {
    std::fprintf(stderr, "a sweep client failed\n");
    std::exit(1);
  }
  std::vector<double> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  SweepResult r;
  r.p50_ms = Percentile(&all, 0.50);
  r.p99_ms = Percentile(&all, 0.99);
  r.requests_per_s = all.size() / wall.ElapsedSeconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int64_t n_rows = smoke ? 4000 : 40000;
  const int per_client_1 = smoke ? 40 : 400;
  const int per_client_8 = smoke ? 10 : 100;
  const int saturation_clients = smoke ? 16 : 64;
  const size_t saturation_cap = smoke ? 8 : 32;

  bench::PrintHeader(util::Format("X14: serving layer under client load%s",
                                  smoke ? " (smoke)" : ""));

  db::Database db;
  storage::Table* table = Check(db.CreateTable("t", BenchSchema()));
  {
    storage::TupleBuffer buf(&table->schema());
    for (int64_t i = 0; i < n_rows; ++i) {
      buf.SetInt64(0, i);
      buf.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
      buf.SetDecimal(2, util::Decimal(i * 3));
      const char grp = static_cast<char>('A' + (i % 3));
      buf.SetString(3, std::string_view(&grp, 1));
      buf.SetString(4, "MAIL");
      Check(db.Insert("t", buf));
    }
  }
  Check(db.Execute("define sma mn select min(d) from t"));
  Check(db.Execute("define sma mx select max(d) from t"));

  const std::string sql =
      "select grp, sum(v) as total, count(*) as n from t group by grp";

  // ---- 1. latency sweep at 1 and 8 clients --------------------------------
  net::ServerOptions options;
  options.port = 0;
  options.worker_threads = 4;
  options.max_connections = saturation_cap;
  options.checkpoint_on_drain = false;
  net::Server server(&db, options);
  Check(server.Start());

  const SweepResult c1 = RunSweep(server.port(), 1, per_client_1, sql);
  std::printf("c=1:  p50 %.3f ms   p99 %.3f ms   %.0f req/s\n", c1.p50_ms,
              c1.p99_ms, c1.requests_per_s);
  const SweepResult c8 = RunSweep(server.port(), 8, per_client_8, sql);
  std::printf("c=8:  p50 %.3f ms   p99 %.3f ms   %.0f req/s\n", c8.p50_ms,
              c8.p99_ms, c8.requests_per_s);

  // ---- 2. saturation: 2x the connection cap -------------------------------
  // Every client connects at once and tries one query. Exactly the ones
  // over the cap must be shed with a typed `ERR busy` — fail fast, never
  // hang — while the admitted ones are served normally.
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> anomalies{0};
  std::vector<std::vector<double>> served_ms(saturation_clients);
  {
    std::vector<std::thread> threads;
    threads.reserve(saturation_clients);
    for (int t = 0; t < saturation_clients; ++t) {
      threads.emplace_back([&, t] {
        Client c;
        if (!c.Connect(server.port())) {
          ++anomalies;
          return;
        }
        util::Stopwatch watch;
        if (!c.Send(sql)) {
          ++anomalies;
          return;
        }
        const std::string r = c.ReadResponse();
        if (r == "OK") {
          served_ms[t].push_back(watch.ElapsedSeconds() * 1e3);
          ++served;
          c.Send("quit");
        } else if (r == "ERR busy") {
          ++shed;
        } else {
          ++anomalies;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  std::vector<double> sat_all;
  for (auto& v : served_ms) sat_all.insert(sat_all.end(), v.begin(), v.end());
  const double sat_p99 = Percentile(&sat_all, 0.99);
  const double shed_rate =
      static_cast<double>(shed.load()) / saturation_clients;
  std::printf(
      "c=%d (cap %zu): served %d, shed %d (%.0f%%), anomalies %d, "
      "served p99 %.3f ms\n",
      saturation_clients, saturation_cap, served.load(), shed.load(),
      shed_rate * 100.0, anomalies.load(), sat_p99);
  if (served.load() == 0 || shed.load() == 0 || anomalies.load() != 0) {
    std::fprintf(stderr,
                 "saturation stage must both serve and shed, cleanly\n");
    return 1;
  }
  const net::Server::Stats stats = server.stats();
  std::printf("server: %llu conns, %llu requests, %llu shed\n",
              static_cast<unsigned long long>(stats.connections_total),
              static_cast<unsigned long long>(stats.requests_total),
              static_cast<unsigned long long>(stats.shed));

  Check(server.Shutdown());

  report.Add("rows", static_cast<double>(n_rows));
  report.Add("c1_p50_ms", c1.p50_ms);
  report.Add("c1_p99_ms", c1.p99_ms);
  report.Add("c1_requests_per_s", c1.requests_per_s);
  report.Add("c8_p50_ms", c8.p50_ms);
  report.Add("c8_p99_ms", c8.p99_ms);
  report.Add("c8_requests_per_s", c8.requests_per_s);
  report.Add("saturation_clients", static_cast<double>(saturation_clients));
  report.Add("saturation_served", static_cast<double>(served.load()));
  report.Add("saturation_shed", static_cast<double>(shed.load()));
  report.Add("saturation_shed_rate", shed_rate);
  report.Add("saturation_served_p99_ms", sat_p99);
  return 0;
}
