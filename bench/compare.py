#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json reports (bench_util.h JsonReporter output).

Usage:
    bench/compare.py BASELINE CURRENT [--threshold PCT] [--strict]
    bench/compare.py BASELINE CURRENT --fail-on-regression PCT

BASELINE and CURRENT are directories holding BENCH_*.json files (or single
.json files). Reports are matched by their "bench" name, metrics by key.
For every numeric metric present on both sides the relative delta is
printed; deltas beyond the threshold (default 10%) in the *worse* direction
are flagged as regressions.

Direction is inferred from the key: *_ms / *_us / *_s / *_seconds are
lower-is-better; *_per_s / *_speedup / *x are higher-is-better; anything
else is reported without judgement.

The comparison is informational: the exit code is 0 unless --strict (or its
one-flag spelling --fail-on-regression PCT, which also sets the threshold)
is given, in which case flagged regressions fail the run. Blocking use in CI
should pick a generous PCT — bench numbers from shared runners are noisy,
and the tier-1 gates live in the test suite, not here.
"""

import argparse
import glob
import json
import os
import sys

HIGHER_IS_BETTER = ("_per_s", "_speedup", "_throughput")
LOWER_IS_BETTER = ("_ms", "_us", "_ns", "_seconds", "_latency")
SKIP_KEYS = {"bench", "gate"}


def load_reports(path):
    """Returns {bench_name: {key: value}} for a directory or a single file."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
    else:
        files = [path]
    reports = {}
    for f in files:
        try:
            with open(f) as fp:
                data = json.load(fp)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping {f}: {e}", file=sys.stderr)
            continue
        reports[data.get("bench", os.path.basename(f))] = data
    return reports


def direction(key):
    """-1 = lower is better, +1 = higher is better, 0 = unjudged.

    Substring (not suffix) matching, since parameterized keys carry their
    unit mid-name (commit_us_interval_8, recovery_ms_5000). Rates are
    checked first so "..._per_s" is not mistaken for a seconds metric.
    """
    if any(s in key for s in HIGHER_IS_BETTER):
        return +1
    if any(s in key for s in LOWER_IS_BETTER) or key.endswith("_s"):
        return -1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression flag threshold in percent (default 10)")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when regressions are flagged")
    ap.add_argument("--fail-on-regression", type=float, metavar="PCT",
                    default=None,
                    help="blocking mode: shorthand for --threshold PCT "
                         "--strict")
    args = ap.parse_args()
    if args.fail_on_regression is not None:
        args.threshold = args.fail_on_regression
        args.strict = True

    base = load_reports(args.baseline)
    curr = load_reports(args.current)
    if not base or not curr:
        print("nothing to compare (no parsable BENCH_*.json on one side)")
        return 0

    regressions = []
    for name in sorted(set(base) & set(curr)):
        b, c = base[name], curr[name]
        keys = [k for k in c
                if k in b and k not in SKIP_KEYS
                and isinstance(b[k], (int, float))
                and isinstance(c[k], (int, float))]
        if not keys:
            continue
        print(f"\n{name}:")
        for k in keys:
            bv, cv = float(b[k]), float(c[k])
            delta = 100.0 * (cv - bv) / bv if bv else float("inf")
            d = direction(k)
            worse = (d == -1 and delta > args.threshold) or \
                    (d == +1 and delta < -args.threshold)
            mark = "  << REGRESSION" if worse else ""
            print(f"  {k:40s} {bv:12.4g} -> {cv:12.4g}  ({delta:+7.2f}%)"
                  f"{mark}")
            if worse:
                regressions.append((name, k, delta))

    only_base = sorted(set(base) - set(curr))
    only_curr = sorted(set(curr) - set(base))
    if only_base:
        print(f"\nonly in baseline: {', '.join(only_base)}")
    if only_curr:
        print(f"\nonly in current:  {', '.join(only_curr)}")

    if regressions:
        print(f"\n{len(regressions)} metric(s) flagged beyond "
              f"{args.threshold:.0f}% (informational"
              f"{'' if not args.strict else ', strict: failing'})")
        return 1 if args.strict else 0
    print("\nno regressions flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
