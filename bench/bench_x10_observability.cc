// Experiment X10 — observability overhead (extension, not in the paper):
//
//   1. metrics-on vs metrics-off warm Q1 through the full Database path
//      (registry counters, latency histogram, trace spans per query).
//      Gate: overhead must stay <= 3% — observability must not tax the
//      engine the paper made fast. In --smoke mode (CI) the gate also
//      requires an absolute regression > 0.1 ms, so microsecond-scale
//      jitter on a tiny smoke dataset cannot flake the build.
//   2. idle-instrument cost: a registered-but-unread counter's Add() and
//      an empty registry snapshot, in ns — both should be ~free.
//   3. one `explain analyze` Q1 as a living example of the profile report.
//
// Emits BENCH_x10_observability.json with the headline numbers.

#include <algorithm>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "db/database.h"
#include "obs/metrics.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

namespace {

constexpr const char* kQ1 =
    "select sum(l_quantity), sum(l_extendedprice), "
    "sum(l_extendedprice * (1.00 - l_discount)), "
    "avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*) "
    "from lineitem where l_shipdate <= '1998-09-02' "
    "group by l_returnflag, l_linestatus";

// A Database with lineitem loaded shipdate-sorted and the paper's Q1 SMAs.
db::Database* MakeDb(double sf, bool metrics) {
  db::DatabaseOptions options;
  options.pool_pages = 16384;  // warm runs stay fully resident
  options.enable_metrics = metrics;
  auto* db = new db::Database(options);
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(db->catalog(), {sf, 19980401}, load));
  Check(workloads::BuildQ1Smas(lineitem, Check(db->Smas("lineitem"))));
  return db;
}

// Warm min-of-N seconds for Q1 (rep 0 warms the pool, then best of `reps`).
double WarmBest(db::Database* db, int reps, size_t* rows_out) {
  double best = 1e9;
  for (int rep = 0; rep <= reps; ++rep) {
    util::Stopwatch watch;
    auto result = Check(db->Query(kQ1));
    const double s = watch.ElapsedSeconds();
    if (rep > 0) best = std::min(best, s);
    *rows_out = result.rows.size();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double sf = smoke ? 0.01 : bench::ScaleFromArgs(argc, argv, 0.05);
  const int reps = smoke ? 31 : 15;

  bench::PrintHeader(util::Format(
      "X10: observability overhead on warm Q1, SF %.3f%s", sf,
      smoke ? " (smoke)" : ""));

  // ---- 1. metrics-on vs metrics-off warm Q1 ------------------------------
  db::Database* db_off = MakeDb(sf, /*metrics=*/false);
  db::Database* db_on = MakeDb(sf, /*metrics=*/true);
  size_t rows_off = 0, rows_on = 0;
  const double off_s = WarmBest(db_off, reps, &rows_off);
  const double on_s = WarmBest(db_on, reps, &rows_on);
  if (rows_off != rows_on) {
    std::fprintf(stderr, "RESULT MISMATCH metrics-on vs metrics-off!\n");
    return 1;
  }
  const double overhead_pct = 100.0 * (on_s - off_s) / std::max(1e-9, off_s);
  std::printf("warm Q1 (min of %d):\n", reps);
  std::printf("  metrics off %9.3f ms\n  metrics on  %9.3f ms  (%+.2f%%)\n",
              off_s * 1e3, on_s * 1e3, overhead_pct);
  report.Add("scale_factor", sf);
  report.Add("metrics_off_warm_q1_ms", off_s * 1e3);
  report.Add("metrics_on_warm_q1_ms", on_s * 1e3);
  report.Add("metrics_overhead_pct", overhead_pct);

  // ---- 2. idle instrument cost -------------------------------------------
  obs::MetricsRegistry idle;
  obs::Counter* counter = idle.GetCounter("bench_idle", "idle counter");
  constexpr int kAdds = 1'000'000;
  util::Stopwatch add_watch;
  for (int i = 0; i < kAdds; ++i) counter->Inc();
  const double add_ns = add_watch.ElapsedSeconds() * 1e9 / kAdds;
  util::Stopwatch snap_watch;
  const size_t snap_size = idle.Snapshot().size();
  const double snap_us = snap_watch.ElapsedSeconds() * 1e6;
  std::printf("\nidle instruments: counter add %.1f ns/op, "
              "snapshot (%zu metrics) %.1f us\n",
              add_ns, snap_size, snap_us);
  report.Add("counter_add_ns", add_ns);
  report.Add("snapshot_us", snap_us);

  // ---- 3. explain analyze, as a living example ---------------------------
  auto analyzed = Check(db_on->Query(std::string("explain analyze ") + kQ1));
  std::printf("\nexplain analyze %s:\n", kQ1);
  for (const auto& row : analyzed.rows) {
    std::printf("  %s\n", row.AsRef().GetValue(0).AsString().c_str());
  }

  const bool gate_failed =
      overhead_pct > 3.0 && (on_s - off_s) > 100e-6;  // noise floor 0.1 ms
  if (gate_failed) {
    std::fprintf(stderr,
                 "FAIL: metrics-on overhead %.2f%% exceeds the 3%% gate\n",
                 overhead_pct);
  }
  report.Add("gate", gate_failed ? std::string("fail") : std::string("pass"));

  bench::PrintPaperNote(
      "not in the paper. The registry (sharded counters, one histogram "
      "observation and a handful of trace spans per query) prices "
      "observability at well under the 3% gate; per-operator profiling is "
      "opt-in via `explain analyze` and costs nothing when off.");

  delete db_on;
  delete db_off;
  return gate_failed ? 1 : 0;
}
