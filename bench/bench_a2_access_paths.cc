// Ablation A2 — access-path crossover: SMA scan vs projection index vs
// B+-tree vs full scan across the selectivity axis.
//
// The paper's introduction argues that traditional indexes collapse beyond
// ~10% selectivity ("the only effect of using an index is to turn
// sequential I/O into random I/O") while SMAs keep working where indexes
// fail AND where scans waste work. This bench measures all four paths on
// the same count(*) range query and charts the modeled-disk seconds.

#include "baseline/bptree.h"
#include "baseline/projection_index.h"
#include "bench/bench_util.h"
#include "exec/sma_scan.h"
#include "sma/builder.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(262144);

  bench::PrintHeader(util::Format(
      "A2: access-path comparison across selectivity, SF %.3f", sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kDiagonal;
  load.lag_stddev_days = 10.0;
  storage::Table* t = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));
  const size_t col = tpch::lineitem::kShipDate;

  sma::SmaSet smas(t);
  const expr::ExprPtr shipdate =
      Check(expr::Column(&t->schema(), "l_shipdate"));
  Check(smas.Add(Check(sma::BuildSma(t, sma::SmaSpec::Min("min", shipdate)))));
  Check(smas.Add(Check(sma::BuildSma(t, sma::SmaSpec::Max("max", shipdate)))));
  auto proj = Check(baseline::ProjectionIndex::Build(t, col));
  auto tree = Check(baseline::BPlusTree::BuildForColumn(t, col, "shipdate"));

  std::printf("LINEITEM %u pages; SMA %llup, projection %up, B+-tree %up\n",
              t->num_pages(),
              static_cast<unsigned long long>(smas.TotalPages()),
              proj->num_pages(), tree->num_pages());

  std::printf("\ncount(*) where l_shipdate <= c  —  modeled disk seconds:\n");
  std::printf("%12s %8s %10s %10s %12s %10s\n", "cutoff", "sel%",
              "full scan", "SMA scan", "projection", "B+-tree");

  const util::Date start = util::Date::FromYmd(1992, 1, 1);
  for (int pct : {0, 1, 5, 10, 25, 50, 75, 100}) {
    const util::Date c = start.AddDays(pct * 2556 / 100);
    const expr::PredicatePtr pred = Check(expr::Predicate::AtomConst(
        &t->schema(), "l_shipdate", expr::CmpOp::kLe,
        util::Value::MakeDate(c)));

    // Full scan.
    Check(db.pool.DropAll());
    storage::IoStats base = db.disk.stats();
    uint64_t count_scan = 0;
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      Check(t->ForEachTupleInBucket(
          b, [&](const storage::TupleRef& tup, storage::Rid) {
            count_scan += pred->Eval(tup);
          }));
    }
    const double scan_s = db.ModeledSeconds(base);

    // SMA scan.
    Check(db.pool.DropAll());
    base = db.disk.stats();
    uint64_t count_sma = 0;
    {
      exec::SmaScan scan(t, pred, &smas);
      Check(scan.Init());
      storage::TupleRef row;
      while (Check(scan.Next(&row))) ++count_sma;
    }
    const double sma_s = db.ModeledSeconds(base);

    // Projection index (scan the narrow value file).
    Check(db.pool.DropAll());
    base = db.disk.stats();
    const uint64_t count_proj =
        Check(proj->CountMatching(expr::CmpOp::kLe, c.days()));
    const double proj_s = db.ModeledSeconds(base);

    // B+-tree: count via leaf-range walk, then *fetch* each qualifying
    // tuple (the non-clustered index plan a real system would run when the
    // query needs more than the key).
    Check(db.pool.DropAll());
    base = db.disk.stats();
    const auto rids = Check(tree->RangeLookup(INT64_MIN + 1, c.days()));
    for (const storage::Rid rid : rids) {
      auto guard = Check(t->FetchPage(rid.page_no));
    }
    const double tree_s = db.ModeledSeconds(base);

    if (count_scan != count_sma || count_scan != count_proj ||
        count_scan != rids.size()) {
      std::fprintf(stderr, "COUNT MISMATCH at %d%%\n", pct);
      return 1;
    }
    std::printf("%12s %7d%% %9.2fs %9.2fs %11.2fs %9.2fs\n",
                c.ToString().c_str(), pct, scan_s, sma_s, proj_s, tree_s);
  }

  bench::PrintPaperNote(
      "shape holds: the B+-tree wins only at near-zero selectivity and "
      "collapses once a noticeable fraction qualifies; the projection "
      "index is flat but always pays its full (narrow) scan; the SMA scan "
      "tracks the best of both — near-zero cost at low selectivity, "
      "scan-like cost at high selectivity — which is the paper's core "
      "positioning of SMAs between scans and traditional indexes");
  return 0;
}
