// Experiment X2 — paper §4 hierarchical SMAs:
//
//   "If a second level bucket qualifies or disqualifies, the first level
//    SMA-file need not to be accessed, which saves some I/O. ... the second
//    level SMA is useful for rather high and rather low selectivities."
//
// Sweep the predicate cutoff (selectivity 0..1) and compare first-level
// SMA pages read by flat grading vs two-level grading, verifying both
// produce identical grades.

#include "bench/bench_util.h"
#include "sma/builder.h"
#include "sma/hierarchical.h"
#include "tpch/loader.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.25);
  bench::BenchDb db(262144);

  bench::PrintHeader(util::Format(
      "X2: hierarchical (two-level) SMAs (paper §4), SF %.3f", sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kDiagonal;
  load.lag_stddev_days = 10.0;
  storage::Table* lineitem = Check(
      tpch::GenerateAndLoadLineItem(&db.catalog, {sf, 19980401}, load));

  sma::SmaSet smas(lineitem);
  const expr::ExprPtr shipdate =
      Check(expr::Column(&lineitem->schema(), "l_shipdate"));
  Check(smas.Add(
      Check(sma::BuildSma(lineitem, sma::SmaSpec::Min("min", shipdate)))));
  Check(smas.Add(
      Check(sma::BuildSma(lineitem, sma::SmaSpec::Max("max", shipdate)))));
  const sma::Sma* min_sma = *smas.Find("min");
  const sma::Sma* max_sma = *smas.Find("max");
  auto hier = Check(sma::HierarchicalMinMax::Build(min_sma, max_sma));

  std::printf("buckets: %llu; L1 SMA pages: %u+%u; L2 SMA pages: %u+%u\n",
              static_cast<unsigned long long>(hier->num_buckets()),
              min_sma->group_file(0)->num_pages(),
              max_sma->group_file(0)->num_pages(),
              hier->level2_min()->num_pages(),
              hier->level2_max()->num_pages());

  std::printf("\npredicate l_shipdate <= c, sweeping c across the calendar:\n");
  std::printf("%12s %14s %16s %16s %10s\n", "cutoff", "selectivity",
              "flat L1 pages", "hier L1 pages", "saved");
  const util::Date start = util::Date::FromYmd(1992, 1, 1);
  for (int pct : {0, 5, 25, 50, 75, 95, 100}) {
    const util::Date c = start.AddDays(pct * 2556 / 100);
    std::vector<sma::Grade> flat, hier_grades;
    uint64_t flat_pages = 0, hier_pages = 0;
    Check(hier->GradeAllFlat(expr::CmpOp::kLe, c.days(), &flat, &flat_pages));
    Check(hier->GradeAll(expr::CmpOp::kLe, c.days(), &hier_grades,
                         &hier_pages));
    if (flat != hier_grades) {
      std::fprintf(stderr, "GRADES DIVERGE at %s!\n", c.ToString().c_str());
      return 1;
    }
    std::printf("%12s %13d%% %16llu %16llu %9.0f%%\n", c.ToString().c_str(),
                pct, static_cast<unsigned long long>(flat_pages),
                static_cast<unsigned long long>(hier_pages),
                100.0 * (1.0 - static_cast<double>(hier_pages) /
                                   static_cast<double>(
                                       std::max<uint64_t>(1, flat_pages))));
  }

  bench::PrintPaperNote(
      "shape holds: at extreme selectivities the second level settles "
      "almost every first-level page without reading it (large savings); "
      "mid-range cutoffs on imperfectly clustered data need the fine grain, "
      "so savings shrink — 'useful for rather high and rather low "
      "selectivities', and the L2 files are tiny");
  return 0;
}
