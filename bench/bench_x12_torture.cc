// Experiment X12 — crash-recovery torture sweep (robustness, not a paper
// figure): every durable-path failpoint x crash-on-hit-k x the scripted
// workload from tests/recovery_oracle.h, each case checked against the
// recovery oracle (recovered state == shadow model at the flushed LSN).
//
// Reports sweep size, how many cases actually crashed, and recovery-time
// statistics over the crashed cases. Any oracle violation prints the case
// and fails the binary — this is a correctness gate that happens to emit
// timings, not a pure benchmark.
//
// Emits BENCH_x12_torture.json. All state lives in mkdtemp directories
// under /tmp, removed as each case finishes.

#include <stdlib.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tests/recovery_oracle.h"
#include "util/fault.h"

using namespace smadb;  // NOLINT

namespace {

std::string MakeTempDir() {
  char tmpl[] = "/tmp/smadb_bench_XXXXXX";
  const char* d = ::mkdtemp(tmpl);
  if (d == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int max_k = smoke ? 2 : 6;
  const std::vector<size_t> intervals =
      smoke ? std::vector<size_t>{1} : std::vector<size_t>{1, 4};

  bench::PrintHeader(
      util::Format("X12: crash-recovery torture sweep%s",
                   smoke ? " (smoke)" : ""));

  size_t cases = 0;
  size_t crashes = 0;
  size_t failures = 0;
  double recover_ms_sum = 0.0;
  double recover_ms_max = 0.0;
  uint64_t replayed_sum = 0;

  for (const size_t interval : intervals) {
    for (const std::string& point : smadb::testing::TortureFailpoints()) {
      for (int k = 1; k <= max_k; ++k) {
        const std::string dir = MakeTempDir();
        const smadb::testing::TortureResult r =
            smadb::testing::RunTortureCase(dir, point, k, interval);
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
        ++cases;
        if (!r.error.empty()) {
          ++failures;
          std::fprintf(stderr,
                       "ORACLE FAIL: failpoint=%s k=%d interval=%zu "
                       "crashed=%d step=%d flushed=%llu: %s\n",
                       point.c_str(), k, interval, r.crashed ? 1 : 0,
                       r.step_reached,
                       static_cast<unsigned long long>(r.flushed_lsn),
                       r.error.c_str());
          continue;
        }
        if (r.crashed) {
          ++crashes;
          recover_ms_sum += r.recover_ms;
          recover_ms_max = std::max(recover_ms_max, r.recover_ms);
          replayed_sum += r.replayed;
        }
      }
    }
  }
  util::fault::DisarmAll();

  const double mean_ms = crashes == 0 ? 0.0 : recover_ms_sum / crashes;
  std::printf("sweep: %zu cases (%zu failpoints x k<=%d x %zu intervals)\n",
              cases, smadb::testing::TortureFailpoints().size(), max_k,
              intervals.size());
  std::printf("crashed: %zu cases; every recovery matched the oracle\n",
              crashes);
  std::printf("recovery: mean %.2f ms, max %.2f ms, %llu records replayed\n",
              mean_ms, recover_ms_max,
              static_cast<unsigned long long>(replayed_sum));
  report.Add("cases", static_cast<double>(cases));
  report.Add("crashes", static_cast<double>(crashes));
  report.Add("oracle_failures", static_cast<double>(failures));
  report.Add("recover_ms_mean", mean_ms);
  report.Add("recover_ms_max", recover_ms_max);
  report.Add("replayed_records", static_cast<double>(replayed_sum));

  bench::PrintPaperNote(
      "not in the paper. The sweep prices what the durable stack promises: "
      "a simulated power loss at every point on the commit and checkpoint "
      "paths recovers to exactly the flushed WAL prefix — no lost synced "
      "commit, no resurrected unsynced suffix, SMA trust consistent — and "
      "recovery stays milliseconds even when the crash lands inside "
      "checkpoint truncation.");

  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu oracle violation(s)\n", failures);
    return 1;
  }
  return 0;
}
