// Experiment X5 — maintenance cost (paper §2.1):
//
//   "due to the direct correspondence between SMA-file entries and buckets
//    ... SMA-files are easy to update. The algorithms behind are simple and
//    very efficient. At most one additional page access is needed for an
//    updated tuple. ... bulkloading a SMA-file requires only simple
//    algorithms and is very efficient."
//
// Measures page I/O per operation with the full Fig. 4 SMA complement
// (8 SMAs, 26 SMA-files) registered:
//   * appends through the maintainer vs appends to a bare table,
//   * in-place updates (bucket recompute path),
//   * deletes (bucket recompute path),
// and compares incremental maintenance against rebuild-from-scratch.

#include "bench/bench_util.h"
#include "sma/maintenance.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.02);
  bench::BenchDb db(262144);

  bench::PrintHeader(util::Format(
      "X5: SMA maintenance cost (paper §2.1), SF %.3f", sf));

  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);
  // Hold back the last 10% of rows for the maintained-append measurement.
  const size_t held_back = lineitems.size() / 10;
  std::vector<tpch::LineItemRow> tail(lineitems.end() - held_back,
                                      lineitems.end());
  lineitems.erase(lineitems.end() - static_cast<ptrdiff_t>(held_back),
                  lineitems.end());

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* t =
      Check(tpch::LoadLineItem(&db.catalog, lineitems, load, "li"));
  sma::SmaSet smas(t);
  Check(workloads::BuildQ1Smas(t, &smas));
  sma::SmaMaintainer maintainer(t, &smas);
  std::printf("base: %s rows, 8 SMAs / 26 SMA-files registered\n",
              util::WithThousands(static_cast<long long>(t->num_tuples()))
                  .c_str());

  // §2.1 counts *page accesses*; with a warm buffer pool those are logical
  // touches (pool hits + misses), plus the dirty pages flushed at the end.
  const auto ops_cost = [&](auto&& body, uint64_t n) {
    Check(db.pool.FlushAll());
    db.pool.ResetStats();
    const storage::IoStats disk_base = db.disk.stats();
    util::Stopwatch watch;
    body();
    const double wall = watch.ElapsedMicros() / static_cast<double>(n);
    const double touches =
        static_cast<double>(db.pool.stats().hits + db.pool.stats().misses) /
        static_cast<double>(n);
    Check(db.pool.FlushAll());
    const storage::IoStats used = db.disk.stats() - disk_base;
    const double flushed = static_cast<double>(used.page_writes +
                                               used.page_reads) /
                           static_cast<double>(n);
    return std::make_tuple(touches, flushed, wall);
  };

  std::printf("\n%-34s %14s %14s %12s\n", "operation", "page touches/op",
              "disk pages/op", "wall us/op");

  // Maintained appends (warm pool: the paper's steady-state insert).
  {
    auto [touches, flushed, wall] = ops_cost(
        [&] {
          for (const auto& row : tail) {
            Check(maintainer.Insert(tpch::LineItemTuple(&t->schema(), row)));
          }
        },
        tail.size());
    std::printf("%-34s %14.3f %14.2f %12.3f\n",
                "append (8 SMAs maintained)", touches, flushed, wall);
  }
  // Bare appends for comparison.
  {
    storage::Table* bare = Check(
        tpch::LoadLineItem(&db.catalog, {}, {}, "li_bare"));
    auto [touches, flushed, wall] = ops_cost(
        [&] {
          for (const auto& row : tail) {
            Check(bare->Append(tpch::LineItemTuple(&bare->schema(), row)));
          }
        },
        tail.size());
    std::printf("%-34s %14.3f %14.2f %12.3f\n", "append (no SMAs)", touches,
                flushed, wall);
  }
  // In-place updates of an aggregated column (forces bucket recompute).
  {
    util::Rng rng(5);
    constexpr int kOps = 2000;
    auto [touches, flushed, wall] = ops_cost(
        [&] {
          for (int i = 0; i < kOps; ++i) {
            const uint32_t page =
                static_cast<uint32_t>(rng.Uniform(0, t->num_pages() - 1));
            Check(maintainer.UpdateColumn(
                storage::Rid{page, 0}, tpch::lineitem::kQuantity,
                util::Value::MakeDecimal(
                    util::Decimal(rng.Uniform(1, 50) * 100))));
          }
        },
        kOps);
    std::printf("%-34s %14.3f %14.2f %12.3f\n",
                "update l_quantity (recompute)", touches, flushed, wall);
  }
  // Deletes.
  {
    util::Rng rng(9);
    constexpr int kOps = 2000;
    uint64_t done = 0;
    auto [touches, flushed, wall] = ops_cost(
        [&] {
          while (done < kOps) {
            const uint32_t page =
                static_cast<uint32_t>(rng.Uniform(0, t->num_pages() - 1));
            const uint16_t slot =
                static_cast<uint16_t>(rng.Uniform(1, 20));
            if (maintainer.Delete(storage::Rid{page, slot}).ok()) ++done;
          }
        },
        kOps);
    std::printf("%-34s %14.3f %14.2f %12.3f\n", "delete (recompute)", touches,
                flushed, wall);
  }
  // Rebuild-from-scratch, for scale (whole-table totals, not per-op).
  {
    auto [touches, flushed, wall] = ops_cost(
        [&] {
          sma::SmaSet fresh(t);
          std::vector<sma::SmaSpec> specs =
              Check(workloads::MakeQ1SmaSpecs(t));
          for (sma::SmaSpec& spec : specs) {
            spec.name = "rb_" + spec.name;
            Check(fresh.Add(Check(sma::BuildSma(t, std::move(spec)))));
          }
        },
        1);
    std::printf("%-34s %14.0f %14.0f %12.0f\n",
                "full rebuild of all 8 SMAs (total)", touches, flushed,
                wall);
  }

  bench::PrintPaperNote(
      "shape holds: maintained appends cost single-digit extra page touches "
      "per tuple (the affected SMA entries live on the warm tail pages of "
      "each SMA-file — §2.1's 'at most one additional page access' per "
      "file), updates/deletes stay bounded by one bucket + one SMA page per "
      "group file, and all of it is orders of magnitude below rebuilding");
  return 0;
}
