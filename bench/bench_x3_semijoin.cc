// Experiment X3 — paper §4 semi-join SMAs:
//
//   "select R.* from R, S where R.A θ S.B — if we can associate a minimax
//    value of the S.B values with each bucket of R, SMAs can be used to
//    decrease the input to the semi-join."
//
// R = LINEITEM (shipdate-clustered), S = orders restricted to a window of
// the calendar. Sweep the width of S's window and report how much of R the
// reducer can drop before the join runs, plus the modeled I/O of the
// reduced vs unreduced semi-join input.

#include "bench/bench_util.h"
#include "sma/builder.h"
#include "sma/semijoin.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"

using namespace smadb;  // NOLINT
using bench::Check;

int main(int argc, char** argv) {
  bench::JsonReporter report(argv[0]);
  const double sf = bench::ScaleFromArgs(argc, argv, 0.05);
  bench::BenchDb db(262144);

  bench::PrintHeader(util::Format(
      "X3: semi-join SMAs (paper §4), SF %.3f", sf));

  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  std::vector<tpch::OrderRow> all_orders;
  storage::Table* lineitem = Check(tpch::GenerateAndLoadLineItem(
      &db.catalog, {sf, 19980401}, load, &all_orders));
  sma::SmaSet r_smas(lineitem);
  const expr::ExprPtr shipdate =
      Check(expr::Column(&lineitem->schema(), "l_shipdate"));
  Check(r_smas.Add(
      Check(sma::BuildSma(lineitem, sma::SmaSpec::Min("min", shipdate)))));
  Check(r_smas.Add(
      Check(sma::BuildSma(lineitem, sma::SmaSpec::Max("max", shipdate)))));
  const size_t r_col = tpch::lineitem::kShipDate;
  const size_t s_col = tpch::orders::kOrderDate;

  std::printf("R = LINEITEM, %u buckets; predicate: "
              "R.l_shipdate = S.o_orderdate\n",
              lineitem->num_buckets());
  std::printf("\n%-22s %10s %14s %14s %12s\n", "S window (orderdate)",
              "S rows", "candidates", "all-match", "R dropped");

  int widx = 0;
  for (int window_months : {1, 3, 12, 36, 84}) {
    std::vector<tpch::OrderRow> orders = all_orders;
    const util::Date lo = util::Date::FromYmd(1994, 1, 1);
    const util::Date hi = lo.AddDays(window_months * 30);
    std::erase_if(orders, [&](const tpch::OrderRow& o) {
      return o.orderdate < lo || o.orderdate >= hi;
    });
    storage::Table* s = Check(tpch::LoadOrders(
        &db.catalog, orders, {}, "orders_w" + std::to_string(widx++)));

    auto red = Check(sma::ReduceSemiJoin(&r_smas, r_col, expr::CmpOp::kEq, s,
                                         s_col, nullptr));
    const uint64_t total = lineitem->num_buckets();
    const uint64_t cand = red.candidates.Count();
    std::printf("%-22s %10llu %8llu/%llu %14llu %11.1f%%\n",
                util::Format("%d month(s)", window_months).c_str(),
                static_cast<unsigned long long>(s->num_tuples()),
                static_cast<unsigned long long>(cand),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(red.all_match.Count()),
                100.0 * (1.0 - static_cast<double>(cand) /
                                   static_cast<double>(total)));
  }

  // Modeled I/O of feeding the semi-join: unreduced vs reduced (1-year S).
  {
    std::vector<tpch::OrderRow> orders = all_orders;
    const util::Date lo = util::Date::FromYmd(1994, 1, 1);
    const util::Date hi = util::Date::FromYmd(1995, 1, 1);
    std::erase_if(orders, [&](const tpch::OrderRow& o) {
      return o.orderdate < lo || o.orderdate >= hi;
    });
    storage::Table* s =
        Check(tpch::LoadOrders(&db.catalog, orders, {}, "orders_io"));
    auto red = Check(sma::ReduceSemiJoin(&r_smas, r_col, expr::CmpOp::kEq, s,
                                         s_col, nullptr));

    // Unreduced: read every R bucket.
    Check(db.pool.DropAll());
    storage::IoStats base = db.disk.stats();
    uint64_t rows = 0;
    for (uint32_t b = 0; b < lineitem->num_buckets(); ++b) {
      Check(lineitem->ForEachTupleInBucket(
          b, [&](const storage::TupleRef&, storage::Rid) { ++rows; }));
    }
    const double full = db.ModeledSeconds(base);

    // Reduced: only candidate buckets.
    Check(db.pool.DropAll());
    base = db.disk.stats();
    uint64_t reduced_rows = 0;
    for (uint32_t b = 0; b < lineitem->num_buckets(); ++b) {
      if (!red.candidates.Get(b)) continue;
      Check(lineitem->ForEachTupleInBucket(
          b, [&](const storage::TupleRef&, storage::Rid) {
            ++reduced_rows;
          }));
    }
    const double reduced = db.ModeledSeconds(base);
    std::printf("\nsemi-join input with S = one year of orders:\n");
    std::printf("  unreduced: %llu tuples, %.2f modeled s\n",
                static_cast<unsigned long long>(rows), full);
    std::printf("  reduced:   %llu tuples, %.2f modeled s (%.1fx less I/O)\n",
                static_cast<unsigned long long>(reduced_rows), reduced,
                full / std::max(1e-9, reduced));
  }

  bench::PrintPaperNote(
      "shape holds: the narrower S's value range, the more of R the minimax "
      "reducer eliminates before the join; with a wide S (covering R's full "
      "range) nothing can be dropped — exactly the behaviour §4 sketches");
  return 0;
}
