// TPC-D Query 3 end to end: a 3-way join with grouping, where the
// date-restricted ORDERS and LINEITEM scans are SMA-pruned — SMAs keep
// helping inside join pipelines ("they are much more flexible than data
// cubes", paper §2.3).
//
// Usage: tpcd_q3 [scale_factor]   (default 0.02)

#include <cstdio>
#include <cstdlib>

#include "storage/catalog.h"
#include "tpch/loader.h"
#include "util/stopwatch.h"
#include "workloads/q3.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

std::string DrainToText(exec::Operator* op, uint64_t* rows_out) {
  Check(op->Init());
  std::string out;
  storage::TupleRef row;
  uint64_t n = 0;
  while (Check(op->Next(&row))) {
    ++n;
    for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
      if (c > 0) out += " | ";
      out += row.GetValue(c).ToString();
    }
    out += '\n';
  }
  *rows_out = n;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.02;

  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 65536);
  storage::Catalog catalog(&pool);

  std::printf("generating TPC-D tables at SF %.3f ...\n", sf);
  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders_rows;
  std::vector<tpch::LineItemRow> lineitem_rows;
  gen.GenOrdersAndLineItems(&orders_rows, &lineitem_rows);

  // Orders and lineitems arrive in (roughly) date order in a warehouse —
  // load both under diagonal clustering so SMAs have something to exploit.
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kDiagonal;
  load.lag_stddev_days = 10.0;
  storage::Table* orders =
      Check(tpch::LoadOrders(&catalog, orders_rows, load));
  storage::Table* lineitem =
      Check(tpch::LoadLineItem(&catalog, lineitem_rows, load));
  storage::Table* customer =
      Check(tpch::LoadCustomers(&catalog, gen.GenCustomers()));
  std::printf("  customer %llu, orders %llu, lineitem %llu tuples\n",
              static_cast<unsigned long long>(customer->num_tuples()),
              static_cast<unsigned long long>(orders->num_tuples()),
              static_cast<unsigned long long>(lineitem->num_tuples()));

  sma::SmaSet orders_smas(orders);
  sma::SmaSet lineitem_smas(lineitem);
  Check(workloads::BuildQ3Smas(orders, &orders_smas, lineitem,
                               &lineitem_smas));

  workloads::Q3Tables with_smas{customer, orders, lineitem, &orders_smas,
                                &lineitem_smas};
  workloads::Q3Tables without_smas{customer, orders, lineitem, nullptr,
                                   nullptr};

  // Without SMAs.
  Check(pool.DropAll());
  disk.ResetStats();
  util::Stopwatch w1;
  auto plain = Check(workloads::MakeQ3Plan(without_smas));
  uint64_t rows_plain = 0;
  const std::string result_plain = DrainToText(plain.get(), &rows_plain);
  const double t_plain = w1.ElapsedSeconds();
  const uint64_t reads_plain = disk.stats().page_reads;

  // With SMAs.
  Check(pool.DropAll());
  disk.ResetStats();
  util::Stopwatch w2;
  auto pruned = Check(workloads::MakeQ3Plan(with_smas));
  uint64_t rows_pruned = 0;
  const std::string result_pruned = DrainToText(pruned.get(), &rows_pruned);
  const double t_pruned = w2.ElapsedSeconds();
  const uint64_t reads_pruned = disk.stats().page_reads;

  if (result_plain != result_pruned) {
    std::fprintf(stderr, "RESULT MISMATCH!\n%s\nvs\n%s\n",
                 result_plain.c_str(), result_pruned.c_str());
    return 1;
  }

  std::printf("\nQ3 top-%llu (l_orderkey | o_orderdate | o_shippriority | "
              "revenue):\n%s",
              static_cast<unsigned long long>(rows_plain),
              result_plain.c_str());
  std::printf("\nplain scans : %.3fs, %llu page reads\n", t_plain,
              static_cast<unsigned long long>(reads_plain));
  std::printf("SMA-pruned  : %.3fs, %llu page reads (%.1fx fewer)\n",
              t_pruned, static_cast<unsigned long long>(reads_pruned),
              static_cast<double>(reads_plain) /
                  static_cast<double>(std::max<uint64_t>(1, reads_pruned)));
  return 0;
}
