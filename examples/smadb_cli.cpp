// The client half of the smadb_server example: a line-oriented shell that
// speaks the server's text protocol. Run several of these at once — each
// gets its own server-side Session, so `set dop = 1` in one window never
// touches the others while `set max_concurrent_queries = 2` governs all.
//
//   $ smadb_cli [port]
//   smadb> select region, sum(amount), count(*) from sales group by region
//   ...result table...
//   smadb> ping
//   OK
//
// Robustness: connection failures (initial connect, `ERR busy` shed, a
// drained or crashed server) are retried with jittered exponential backoff
// before giving up. Exit status is 0 when every statement succeeded, 1 when
// any statement came back `ERR ...`, and 2 when the server was unreachable.
//
// Probe modes against the telemetry plane (DESIGN.md §16) — these talk to
// the HTTP port (default SQL port + 1), print the body, and exit without
// entering the shell:
//   smadb_cli --health [http_port]   GET /healthz; exit 0 healthy,
//                                    1 unhealthy (503), 2 unreachable
//   smadb_cli --metrics [http_port]  GET /metrics; exit 0 on HTTP 200
//
// Usage: smadb_cli [port]   (default 7878, connects to 127.0.0.1)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "util/rng.h"

namespace {

constexpr int kMaxConnectAttempts = 5;

/// One reconnect schedule for the process: 100 ms doubling to 1.6 s, each
/// delay jittered by ±50% so a herd of scripted clients restarting against
/// a recovering server doesn't stampede it.
class Backoff {
 public:
  Backoff() : rng_(static_cast<uint64_t>(::getpid()) * 2654435761u + 1) {}

  int DelayMs(int attempt) {
    const int base = 100 << (attempt < 4 ? attempt : 4);
    const double jitter = 0.5 + rng_.NextDouble();  // [0.5, 1.5)
    return static_cast<int>(base * jitter);
  }

 private:
  smadb::util::Rng rng_;
};

Backoff g_backoff;

bool SendLine(int fd, const std::string& line) {
  const std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// One connect attempt; -1 on failure.
int TryConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Connects with jittered exponential backoff; -1 after the attempts run
/// out. A connection the server immediately sheds with `ERR busy` counts
/// as a failed attempt and is retried like any other.
int ConnectWithBackoff(int port, std::string* recv_buf) {
  for (int attempt = 0; attempt < kMaxConnectAttempts; ++attempt) {
    if (attempt > 0) {
      const int delay = g_backoff.DelayMs(attempt - 1);
      std::fprintf(stderr, "smadb_cli: retrying in %d ms...\n", delay);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    const int fd = TryConnect(port);
    if (fd < 0) {
      std::fprintf(stderr,
                   "smadb_cli: cannot reach smadb_server on 127.0.0.1:%d\n",
                   port);
      continue;
    }
    // Peek for an immediate shed (`ERR busy`) so the backoff — not the
    // user's next statement — absorbs an overloaded server. The brief poll
    // gives the shed line time to arrive; a healthy server sends nothing
    // on connect, so this costs at most 50 ms once per (re)connect.
    char probe[64];
    pollfd p{fd, POLLIN, 0};
    (void)::poll(&p, 1, 50);
    const ssize_t n = ::recv(fd, probe, sizeof(probe), MSG_DONTWAIT);
    if (n > 0 && std::strncmp(probe, "ERR busy", 8) == 0) {
      std::fprintf(stderr, "smadb_cli: server busy (connection shed)\n");
      ::close(fd);
      continue;
    }
    if (n > 0) recv_buf->assign(probe, static_cast<size_t>(n));
    return fd;
  }
  return -1;
}

/// Prints response lines until the `OK` / `ERR ...` terminator. Returns
/// the terminator line, or "" when the server hung up first.
std::string DrainResponse(int fd, std::string* buf) {
  char chunk[4096];
  for (;;) {
    size_t nl;
    while ((nl = buf->find('\n')) != std::string::npos) {
      const std::string line = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      std::printf("%s\n", line.c_str());
      if (line == "OK" || line.rfind("ERR", 0) == 0) return line;
    }
    ssize_t n;
    do {
      n = ::recv(fd, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return "";  // server hung up
    buf->append(chunk, static_cast<size_t>(n));
  }
}

/// Minimal HTTP GET against the telemetry endpoint: one request, read to
/// EOF (the server closes after every response). Returns the status code,
/// or -1 when the server was unreachable / the response was malformed.
int HttpGet(int port, const char* path, std::string* body) {
  const int fd = TryConnect(port);
  if (fd < 0) return -1;
  const std::string req = std::string("GET ") + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (!SendLine(fd, req)) {  // trailing extra '\n' is ignored by the server
    ::close(fd);
    return -1;
  }
  std::string resp;
  char chunk[4096];
  for (;;) {
    ssize_t n;
    do {
      n = ::recv(fd, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      ::close(fd);
      return -1;
    }
    if (n == 0) break;
    resp.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  // "HTTP/1.1 <code> ..." then headers then a blank line then the body.
  if (resp.rfind("HTTP/1.", 0) != 0) return -1;
  const size_t sp = resp.find(' ');
  if (sp == std::string::npos) return -1;
  const int code = std::atoi(resp.c_str() + sp + 1);
  size_t hdr_end = resp.find("\r\n\r\n");
  size_t body_at = hdr_end + 4;
  if (hdr_end == std::string::npos) {
    hdr_end = resp.find("\n\n");
    body_at = hdr_end + 2;
  }
  if (hdr_end != std::string::npos) body->assign(resp, body_at);
  return code > 0 ? code : -1;
}

/// `--health` / `--metrics`: probe the HTTP endpoint and exit.
int RunProbe(const char* mode, int http_port) {
  const bool health = std::strcmp(mode, "--health") == 0;
  std::string body;
  const int code = HttpGet(http_port, health ? "/healthz" : "/metrics", &body);
  if (code < 0) {
    std::fprintf(stderr,
                 "smadb_cli: telemetry endpoint unreachable on "
                 "127.0.0.1:%d\n",
                 http_port);
    return 2;
  }
  std::fputs(body.c_str(), stdout);
  return code == 200 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--health") == 0 ||
                   std::strcmp(argv[1], "--metrics") == 0)) {
    const int http_port = argc > 2 ? std::atoi(argv[2]) : 7879;
    return RunProbe(argv[1], http_port);
  }
  const int port = argc > 1 ? std::atoi(argv[1]) : 7878;

  std::string recv_buf;
  int fd = ConnectWithBackoff(port, &recv_buf);
  if (fd < 0) {
    std::fprintf(stderr, "smadb_cli: giving up after %d attempts\n",
                 kMaxConnectAttempts);
    return 2;
  }

  bool err_seen = false;
  char line[65536];
  for (;;) {
    std::printf("smadb> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string stmt(line);
    while (!stmt.empty() &&
           (stmt.back() == '\n' || stmt.back() == '\r' ||
            stmt.back() == ' ')) {
      stmt.pop_back();
    }
    if (stmt.empty()) continue;

    // Reconnect (with backoff) if the previous round lost the connection.
    if (fd < 0) {
      recv_buf.clear();
      fd = ConnectWithBackoff(port, &recv_buf);
      if (fd < 0) {
        std::fprintf(stderr, "smadb_cli: server unavailable, giving up\n");
        return 2;
      }
      std::fprintf(stderr, "smadb_cli: reconnected (fresh session — "
                           "session-scoped `set`s were reset)\n");
    }

    if (!SendLine(fd, stmt)) {
      std::fprintf(stderr, "smadb_cli: connection lost; statement NOT sent "
                           "-- retry it after reconnect\n");
      ::close(fd);
      fd = -1;
      continue;
    }
    if (stmt == "quit") break;

    const std::string terminator = DrainResponse(fd, &recv_buf);
    if (terminator.empty()) {
      std::fprintf(stderr, "smadb_cli: server closed the connection "
                           "(crashed or draining)\n");
      ::close(fd);
      fd = -1;
      continue;
    }
    if (terminator.rfind("ERR", 0) == 0) {
      err_seen = true;
      if (terminator == "ERR server draining") {
        std::fprintf(stderr, "smadb_cli: server is draining; it will close "
                             "this connection\n");
        ::close(fd);
        fd = -1;
      }
    }
  }
  if (fd >= 0) ::close(fd);
  return err_seen ? 1 : 0;
}
