// The client half of the smadb_server example: a line-oriented shell that
// speaks the server's text protocol. Run several of these at once — each
// gets its own server-side Session, so `set dop = 1` in one window never
// touches the others while `set max_concurrent_queries = 2` governs all.
//
//   $ smadb_cli [port]
//   smadb> select region, sum(amount), count(*) from sales group by region
//   ...result table...
//   smadb> set timeout_ms = 50
//   OK
//
// Usage: smadb_cli [port]   (default 7878, connects to 127.0.0.1)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

bool SendLine(int fd, const std::string& line) {
  const std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Prints response lines until the `OK` / `ERR ...` terminator.
bool DrainResponse(int fd, std::string* buf) {
  char chunk[4096];
  for (;;) {
    size_t nl;
    while ((nl = buf->find('\n')) != std::string::npos) {
      const std::string line = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      std::printf("%s\n", line.c_str());
      if (line == "OK" || line.rfind("ERR ", 0) == 0) return true;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;  // server hung up
    buf->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 7878;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "cannot reach smadb_server on 127.0.0.1:%d -- "
                         "is it running?\n", port);
    return 1;
  }

  std::string recv_buf;
  char line[4096];
  for (;;) {
    std::printf("smadb> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string stmt(line);
    while (!stmt.empty() &&
           (stmt.back() == '\n' || stmt.back() == '\r' ||
            stmt.back() == ' ')) {
      stmt.pop_back();
    }
    if (stmt.empty()) continue;
    if (!SendLine(fd, stmt)) break;
    if (stmt == "quit") break;
    if (!DrainResponse(fd, &recv_buf)) {
      std::fprintf(stderr, "server closed the connection\n");
      break;
    }
  }
  ::close(fd);
  return 0;
}
