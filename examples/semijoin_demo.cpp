// Semi-join SMA demo (paper §4): use the minimax of S.B to shrink the input
// of  select R.* from R, S where R.A <= S.B.
//
// R = lineitem clustered on shipdate, S = a small "late orders" table whose
// o_orderdate range covers only a slice of the calendar. The reducer proves
// most R buckets can contain no join partner without reading them.
//
// Usage: semijoin_demo [scale_factor]   (default 0.01)

#include <cstdio>
#include <cstdlib>

#include "sma/builder.h"
#include "sma/semijoin.h"
#include "storage/catalog.h"
#include "tpch/loader.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 8192);
  storage::Catalog catalog(&pool);

  // R: lineitem, shipdate-clustered, with min/max SMAs on l_shipdate.
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;
  storage::Table* lineitem =
      Check(tpch::GenerateAndLoadLineItem(&catalog, {sf, 7}, load));
  sma::SmaSet r_smas(lineitem);
  const expr::ExprPtr shipdate =
      Check(expr::Column(&lineitem->schema(), "l_shipdate"));
  Check(r_smas.Add(
      Check(sma::BuildSma(lineitem, sma::SmaSpec::Min("min", shipdate)))));
  Check(r_smas.Add(
      Check(sma::BuildSma(lineitem, sma::SmaSpec::Max("max", shipdate)))));

  // S: orders from a narrow window (1997 only).
  tpch::Dbgen gen({sf / 4, 99});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> ignored;
  gen.GenOrdersAndLineItems(&orders, &ignored);
  std::erase_if(orders, [](const tpch::OrderRow& o) {
    return o.orderdate.year() != 1997;
  });
  storage::Table* late_orders =
      Check(tpch::LoadOrders(&catalog, orders, {}, "late_orders"));
  std::printf("R = lineitem: %u buckets; S = late_orders: %llu tuples "
              "(orderdates within 1997)\n",
              lineitem->num_buckets(),
              static_cast<unsigned long long>(late_orders->num_tuples()));

  // Reduce: R.l_shipdate <= S.o_orderdate.
  const size_t r_col =
      Check(lineitem->schema().FieldIndex("l_shipdate"));
  const size_t s_col =
      Check(late_orders->schema().FieldIndex("o_orderdate"));
  sma::SemiJoinReduction red =
      Check(sma::ReduceSemiJoin(&r_smas, r_col, expr::CmpOp::kLe, late_orders,
                                s_col, /*s_smas=*/nullptr));

  const uint64_t total = lineitem->num_buckets();
  const uint64_t candidates = red.candidates.Count();
  std::printf("\nsemi-join R.l_shipdate <= S.o_orderdate\n");
  std::printf("  S.B range           : [%s, %s]\n",
              util::Date(static_cast<int32_t>(*red.s_min)).ToString().c_str(),
              util::Date(static_cast<int32_t>(*red.s_max)).ToString().c_str());
  std::printf("  candidate buckets   : %llu / %llu (%.1f%%)\n",
              static_cast<unsigned long long>(candidates),
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(candidates) /
                  static_cast<double>(total));
  std::printf("  proven all-matching : %llu (tuple-level probe skippable)\n",
              static_cast<unsigned long long>(red.all_match.Count()));

  // Verify the reduction is sound: every tuple in a pruned bucket really
  // has no join partner.
  uint64_t pruned_violations = 0;
  for (uint32_t b = 0; b < total; ++b) {
    if (red.candidates.Get(b)) continue;
    Check(lineitem->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& t, storage::Rid) {
          if (t.GetRawInt(r_col) <= *red.s_max) ++pruned_violations;
        }));
  }
  std::printf("\nsoundness check: %llu pruned tuples with a partner "
              "(expect 0)\n",
              static_cast<unsigned long long>(pruned_violations));
  return pruned_violations == 0 ? 0 : 1;
}
