// Clustering explorer: how physical clustering quality drives SMA
// effectiveness (paper §2.2, Fig. 2's "diagonal data distribution").
//
// Loads the same LINEITEM rows under four clustering modes and reports, for
// a sliding one-month shipdate predicate, how the buckets partition into
// qualifying / disqualifying / ambivalent under each mode.
//
// Usage: clustering_explorer [scale_factor]   (default 0.01)

#include <cstdio>
#include <cstdlib>

#include "expr/predicate.h"
#include "sma/builder.h"
#include "sma/grade.h"
#include "storage/catalog.h"
#include "tpch/loader.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

const char* ModeName(tpch::ClusterMode m) {
  switch (m) {
    case tpch::ClusterMode::kOrderKey:
      return "orderkey (dbgen order)";
    case tpch::ClusterMode::kShipdateSorted:
      return "sorted on shipdate";
    case tpch::ClusterMode::kDiagonal:
      return "diagonal (TOC, Fig. 2)";
    case tpch::ClusterMode::kShuffled:
      return "shuffled";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 8192);
  storage::Catalog catalog(&pool);

  // Generate once, load four times under different clusterings.
  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);
  std::printf("%zu lineitems; probing predicate: one month of shipdates\n\n",
              lineitems.size());

  const util::Date lo = util::Date::FromYmd(1995, 6, 1);
  const util::Date hi = util::Date::FromYmd(1995, 7, 1);

  std::printf("%-26s %12s %12s %12s %10s\n", "clustering", "qualifying",
              "disqualif.", "ambivalent", "fetch%");
  for (tpch::ClusterMode mode :
       {tpch::ClusterMode::kShipdateSorted, tpch::ClusterMode::kDiagonal,
        tpch::ClusterMode::kOrderKey, tpch::ClusterMode::kShuffled}) {
    tpch::LoadOptions load;
    load.mode = mode;
    load.lag_stddev_days = 15.0;
    storage::Table* table = Check(tpch::LoadLineItem(
        &catalog, lineitems, load,
        "lineitem_" + std::to_string(static_cast<int>(mode))));

    sma::SmaSet smas(table);
    const expr::ExprPtr shipdate =
        Check(expr::Column(&table->schema(), "l_shipdate"));
    Check(smas.Add(
        Check(sma::BuildSma(table, sma::SmaSpec::Min("min", shipdate)))));
    Check(smas.Add(
        Check(sma::BuildSma(table, sma::SmaSpec::Max("max", shipdate)))));

    expr::PredicatePtr pred = expr::Predicate::And(
        Check(expr::Predicate::AtomConst(&table->schema(), "l_shipdate",
                                         expr::CmpOp::kGe,
                                         util::Value::MakeDate(lo))),
        Check(expr::Predicate::AtomConst(&table->schema(), "l_shipdate",
                                         expr::CmpOp::kLt,
                                         util::Value::MakeDate(hi))));

    auto grader = sma::BucketGrader::Create(pred, &smas);
    uint64_t q = 0, d = 0, a = 0;
    for (uint64_t b = 0; b < table->num_buckets(); ++b) {
      switch (Check(grader->GradeBucket(b))) {
        case sma::Grade::kQualifies:
          ++q;
          break;
        case sma::Grade::kDisqualifies:
          ++d;
          break;
        case sma::Grade::kAmbivalent:
          ++a;
          break;
      }
    }
    std::printf("%-26s %12llu %12llu %12llu %9.1f%%\n", ModeName(mode),
                static_cast<unsigned long long>(q),
                static_cast<unsigned long long>(d),
                static_cast<unsigned long long>(a),
                100.0 * static_cast<double>(q + a) /
                    static_cast<double>(std::max<uint64_t>(1, q + d + a)));
  }

  std::printf(
      "\nreading: sorted data isolates the predicate to a few buckets;\n"
      "the diagonal (time-of-creation) clustering stays close to it, while\n"
      "uncorrelated physical orders leave every bucket ambivalent.\n");
  return 0;
}
