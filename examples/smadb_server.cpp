// The smadb network server: a thin main over net::Server (DESIGN.md §15).
//
// One shared Database, one Session per TCP connection, a poll-driven I/O
// thread feeding a bounded worker pool — no detached threads, bounded
// buffers, read/idle and write deadlines, a connection cap that sheds with
// `ERR busy`, and graceful drain on SIGTERM/SIGINT (stop accepting, finish
// or cancel in-flight requests, checkpoint, exit 0).
//
// Protocol (newline-delimited text, one statement per line):
//   - lines starting with `select`, `explain`, `show`, `scrub`, or a
//     `trace <hex>` prefix run as queries; the result table is written
//     back line by line;
//   - every other line (define sma ..., set ..., kill query <id>) runs
//     as a statement;
//   - `ping` answers `OK`; `health` reports read-only/draining/session
//     state; each request ends with a line `OK` or `ERR <message>`;
//   - `quit` (or EOF) closes the connection.
//
// Telemetry plane (DESIGN.md §16): a second HTTP listener on --http-port
// serves GET /metrics, /healthz, /statusz, /debug/queries, /debug/trace.
// Every query request carries a trace id (minted here or supplied by the
// client as `trace <hex> select ...`) that links the request log line, the
// trace spans, and the profile.
//
// `set dop = 2` and friends scope to the issuing connection's session;
// `set max_concurrent_queries = N` and other global knobs change the
// shared engine — try it from two `smadb_cli` windows at once.
//
// Usage: smadb_server [port] [--http-port N] [--rows N] [--slow-query-ms N]
//   port            SQL port (default 7878; 0 = ephemeral, printed)
//   --http-port N   telemetry port (default port+1; 0 = ephemeral, printed)
//   --rows N        demo table size (default 50000; bigger = longer scans,
//                   which is how the CI smoke test gets a query worth
//                   killing)
//   --slow-query-ms N  arm the WARN slow-query log at N milliseconds
//   -q              quiet: connection lifecycle at DEBUG instead of INFO

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "db/database.h"
#include "net/server.h"
#include "storage/table.h"
#include "util/rng.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// The demo dataset: the quickstart's sales table, so a fresh client has
/// something to query (and SMAs to define) immediately.
void SeedSales(db::Database* db, int64_t rows) {
  storage::Schema schema({
      storage::Field::Int64("id"),
      storage::Field::Date("saledate"),
      storage::Field::Decimal("amount"),
      storage::Field::String("region", 8),
  });
  storage::Table* sales = Check(db->CreateTable("sales", schema));
  util::Rng rng(1);
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  storage::TupleBuffer row(&sales->schema());
  for (int64_t i = 0; i < rows; ++i) {
    row.SetInt64(0, i);
    row.SetDate(1, util::Date::FromYmd(1996, 1, 1)
                       .AddDays(static_cast<int32_t>(i / 150)));
    row.SetDecimal(2, util::Decimal(rng.Uniform(100, 500000)));
    row.SetString(3, kRegions[rng.Uniform(0, 3)]);
    Check(db->Insert("sales", row));
  }
  Check(db->Execute("define sma mindate select min(saledate) from sales"));
  Check(db->Execute("define sma maxdate select max(saledate) from sales"));
}

// SIGTERM/SIGINT request a drain; the handler must stay async-signal-safe,
// which net::Server::RequestShutdown is (one atomic store + a pipe write).
net::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  int port = 7878;
  int http_port = -1;  // default: port + 1
  int64_t rows = 50'000;
  int64_t slow_query_ms = 0;
  bool verbose = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--http-port") == 0 && i + 1 < argc) {
      http_port = std::atoi(argv[++i]);
    } else if (std::strcmp(arg, "--rows") == 0 && i + 1 < argc) {
      rows = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "--slow-query-ms") == 0 && i + 1 < argc) {
      slow_query_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(arg, "-q") == 0) {
      verbose = false;
    } else if (arg[0] != '-') {
      port = std::atoi(arg);
    } else {
      std::fprintf(stderr,
                   "usage: smadb_server [port] [--http-port N] [--rows N] "
                   "[--slow-query-ms N] [-q]\n");
      return 2;
    }
  }

  db::DatabaseOptions db_options;
  db_options.slow_query_ms = slow_query_ms;
  db::Database database(db_options);
  SeedSales(&database, rows);

  net::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.http_port = static_cast<uint16_t>(
      http_port >= 0 ? http_port : (port == 0 ? 0 : port + 1));
  options.verbose = verbose;
  net::Server server(&database, options);
  g_server = &server;

  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  Check(server.Start());
  std::printf("smadb_server: %lld sales rows ready on %s:%u\n",
              static_cast<long long>(rows), options.host.c_str(),
              server.port());
  std::printf("telemetry: http://%s:%u/metrics (/healthz /statusz "
              "/debug/queries /debug/trace)\n",
              options.host.c_str(), server.http_port());
  std::printf("connect with: smadb_cli %u   (SIGTERM/Ctrl-C drains)\n",
              server.port());
  std::fflush(stdout);  // CI smoke greps these lines through a pipe

  server.Wait();  // until a signal requests the drain
  std::printf("smadb_server: draining...\n");
  Check(server.Shutdown());  // joins every thread, checkpoints via Close()
  std::printf("smadb_server: drained, checkpointed, bye\n");
  return 0;
}
