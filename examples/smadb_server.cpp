// A minimal multi-session database server over the Session API
// (DESIGN.md §14): one shared Database, one Session per TCP connection,
// each connection served by its own thread. This is the smallest program
// that exercises what the session layer promises — N independent clients
// with private knobs, concurrent queries over one engine.
//
// Protocol (newline-delimited text, one statement per line):
//   - lines starting with `select` or `explain` run as queries; the result
//     table is written back line by line;
//   - every other line (define sma ..., set ..., scrub, show storage) runs
//     as a statement;
//   - each request ends with a line `OK` or `ERR <message>`;
//   - `quit` (or EOF) closes the connection.
//
// `set dop = 2` and friends scope to the issuing connection's session;
// `set max_concurrent_queries = N` and other global knobs change the
// shared engine — try it from two `smadb_cli` windows at once.
//
// Usage: smadb_server [port]   (default 7878, listens on 127.0.0.1)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "db/database.h"
#include "db/session.h"
#include "util/rng.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// The demo dataset: the quickstart's sales table, so a fresh client has
/// something to query (and SMAs to define) immediately.
void SeedSales(db::Database* db) {
  storage::Schema schema({
      storage::Field::Int64("id"),
      storage::Field::Date("saledate"),
      storage::Field::Decimal("amount"),
      storage::Field::String("region", 8),
  });
  storage::Table* sales = Check(db->CreateTable("sales", schema));
  util::Rng rng(1);
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  storage::TupleBuffer row(&sales->schema());
  for (int64_t i = 0; i < 50'000; ++i) {
    row.SetInt64(0, i);
    row.SetDate(1, util::Date::FromYmd(1996, 1, 1)
                       .AddDays(static_cast<int32_t>(i / 150)));
    row.SetDecimal(2, util::Decimal(rng.Uniform(100, 500000)));
    row.SetString(3, kRegions[rng.Uniform(0, 3)]);
    Check(db->Insert("sales", row));
  }
  Check(db->Execute("define sma mindate select min(saledate) from sales"));
  Check(db->Execute("define sma maxdate select max(saledate) from sales"));
}

void SendLine(int fd, const std::string& line) {
  std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off, 0);
    if (n <= 0) return;  // client went away; the read side will notice
    off += static_cast<size_t>(n);
  }
}

bool IsQuery(const std::string& line) {
  return line.rfind("select", 0) == 0 || line.rfind("explain", 0) == 0;
}

/// One connection: a private Session for its whole lifetime, so per-client
/// `set` statements stick across requests.
void Serve(db::Database* db, int fd) {
  std::unique_ptr<db::Session> session = db->CreateSession();
  std::fprintf(stderr, "[session %llu] connected (%zu active)\n",
               static_cast<unsigned long long>(session->id()),
               db->sessions_active());
  std::string buf;
  char chunk[4096];
  for (;;) {
    const size_t nl = buf.find('\n');
    if (nl == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // EOF or error: hang up
      buf.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line == "quit") break;

    if (IsQuery(line)) {
      auto result = session->Query(line);
      if (result.ok()) {
        SendLine(fd, result->ToString());
        SendLine(fd, "OK");
      } else {
        SendLine(fd, "ERR " + result.status().ToString());
      }
    } else {
      const util::Status st = session->Execute(line);
      SendLine(fd, st.ok() ? "OK" : "ERR " + st.ToString());
    }
  }
  std::fprintf(stderr, "[session %llu] closed\n",
               static_cast<unsigned long long>(session->id()));
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 7878;

  db::Database database;
  SeedSales(&database);

  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 16) < 0) {
    std::perror("bind/listen");
    return 1;
  }
  std::printf("smadb_server: 50000 sales rows ready on 127.0.0.1:%d\n",
              port);
  std::printf("connect with: smadb_cli %d\n", port);

  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) continue;
    std::thread(Serve, &database, fd).detach();
  }
}
