// The smadb network server: a thin main over net::Server (DESIGN.md §15).
//
// One shared Database, one Session per TCP connection, a poll-driven I/O
// thread feeding a bounded worker pool — no detached threads, bounded
// buffers, read/idle and write deadlines, a connection cap that sheds with
// `ERR busy`, and graceful drain on SIGTERM/SIGINT (stop accepting, finish
// or cancel in-flight requests, checkpoint, exit 0).
//
// Protocol (newline-delimited text, one statement per line):
//   - lines starting with `select` or `explain` run as queries; the result
//     table is written back line by line;
//   - every other line (define sma ..., set ..., scrub, show storage) runs
//     as a statement;
//   - `ping` answers `OK`; `health` reports read-only/draining/session
//     state; each request ends with a line `OK` or `ERR <message>`;
//   - `quit` (or EOF) closes the connection.
//
// `set dop = 2` and friends scope to the issuing connection's session;
// `set max_concurrent_queries = N` and other global knobs change the
// shared engine — try it from two `smadb_cli` windows at once.
//
// Usage: smadb_server [port]   (default 7878, listens on 127.0.0.1)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "db/database.h"
#include "net/server.h"
#include "storage/table.h"
#include "util/rng.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

/// The demo dataset: the quickstart's sales table, so a fresh client has
/// something to query (and SMAs to define) immediately.
void SeedSales(db::Database* db) {
  storage::Schema schema({
      storage::Field::Int64("id"),
      storage::Field::Date("saledate"),
      storage::Field::Decimal("amount"),
      storage::Field::String("region", 8),
  });
  storage::Table* sales = Check(db->CreateTable("sales", schema));
  util::Rng rng(1);
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  storage::TupleBuffer row(&sales->schema());
  for (int64_t i = 0; i < 50'000; ++i) {
    row.SetInt64(0, i);
    row.SetDate(1, util::Date::FromYmd(1996, 1, 1)
                       .AddDays(static_cast<int32_t>(i / 150)));
    row.SetDecimal(2, util::Decimal(rng.Uniform(100, 500000)));
    row.SetString(3, kRegions[rng.Uniform(0, 3)]);
    Check(db->Insert("sales", row));
  }
  Check(db->Execute("define sma mindate select min(saledate) from sales"));
  Check(db->Execute("define sma maxdate select max(saledate) from sales"));
}

// SIGTERM/SIGINT request a drain; the handler must stay async-signal-safe,
// which net::Server::RequestShutdown is (one atomic store + a pipe write).
net::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

}  // namespace

int main(int argc, char** argv) {
  const int port = argc > 1 ? std::atoi(argv[1]) : 7878;

  db::Database database;
  SeedSales(&database);

  net::ServerOptions options;
  options.port = static_cast<uint16_t>(port);
  options.verbose = true;
  net::Server server(&database, options);
  g_server = &server;

  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  Check(server.Start());
  std::printf("smadb_server: 50000 sales rows ready on %s:%u\n",
              options.host.c_str(), server.port());
  std::printf("connect with: smadb_cli %u   (SIGTERM/Ctrl-C drains)\n",
              server.port());

  server.Wait();  // until a signal requests the drain
  std::printf("smadb_server: draining...\n");
  Check(server.Shutdown());  // joins every thread, checkpoints via Close()
  std::printf("smadb_server: drained, checkpointed, bye\n");
  return 0;
}
