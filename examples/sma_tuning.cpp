// SMA tuning walkthrough (paper §4): bucket size and hierarchical SMAs.
//
// Shows the trade-off the paper describes — small buckets make SMA-files
// large (more SMA I/O), large buckets make more tuples ambivalent — and how
// a second-level SMA recovers most of the SMA-file I/O.
//
// Usage: sma_tuning [scale_factor]   (default 0.01)

#include <cstdio>
#include <cstdlib>

#include "sma/builder.h"
#include "sma/hierarchical.h"
#include "storage/catalog.h"
#include "tpch/loader.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 16384);
  storage::Catalog catalog(&pool);

  tpch::Dbgen gen({sf, 19980401});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lineitems;
  gen.GenOrdersAndLineItems(&orders, &lineitems);

  const util::Date lo = util::Date::FromYmd(1995, 3, 1);
  const util::Date hi = util::Date::FromYmd(1995, 9, 1);

  std::printf("predicate: shipdate in [%s, %s); diagonal clustering\n\n",
              lo.ToString().c_str(), hi.ToString().c_str());
  std::printf("%-14s %10s %12s %14s %14s\n", "bucket_pages", "sma_pages",
              "ambiv.buckets", "ambiv.tuples", "fetch pages");

  for (uint32_t bucket_pages : {1u, 2u, 4u, 8u, 16u, 32u}) {
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    load.lag_stddev_days = 20.0;
    load.bucket_pages = bucket_pages;
    storage::Table* table = Check(tpch::LoadLineItem(
        &catalog, lineitems, load, "li_bp" + std::to_string(bucket_pages)));

    sma::SmaSet smas(table);
    const expr::ExprPtr shipdate =
        Check(expr::Column(&table->schema(), "l_shipdate"));
    Check(smas.Add(
        Check(sma::BuildSma(table, sma::SmaSpec::Min("min", shipdate)))));
    Check(smas.Add(
        Check(sma::BuildSma(table, sma::SmaSpec::Max("max", shipdate)))));

    expr::PredicatePtr pred = expr::Predicate::And(
        Check(expr::Predicate::AtomConst(&table->schema(), "l_shipdate",
                                         expr::CmpOp::kGe,
                                         util::Value::MakeDate(lo))),
        Check(expr::Predicate::AtomConst(&table->schema(), "l_shipdate",
                                         expr::CmpOp::kLt,
                                         util::Value::MakeDate(hi))));
    auto grader = sma::BucketGrader::Create(pred, &smas);
    uint64_t ambiv_buckets = 0, fetch_pages = 0, ambiv_tuples = 0;
    for (uint64_t b = 0; b < table->num_buckets(); ++b) {
      const sma::Grade g = Check(grader->GradeBucket(b));
      if (g == sma::Grade::kDisqualifies) continue;
      const auto [first, end] =
          table->BucketPageRange(static_cast<uint32_t>(b));
      fetch_pages += end - first;
      if (g == sma::Grade::kAmbivalent) {
        ++ambiv_buckets;
        ambiv_tuples +=
            static_cast<uint64_t>(end - first) * table->tuples_per_page();
      }
    }
    std::printf("%-14u %10llu %12llu %14llu %14llu\n", bucket_pages,
                static_cast<unsigned long long>(smas.TotalPages()),
                static_cast<unsigned long long>(ambiv_buckets),
                static_cast<unsigned long long>(ambiv_tuples),
                static_cast<unsigned long long>(fetch_pages));
  }

  // Hierarchical SMA on the bucket_pages=1 table.
  std::printf("\nhierarchical (two-level) SMA, bucket_pages=1:\n");
  {
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    load.lag_stddev_days = 20.0;
    storage::Table* table =
        Check(tpch::LoadLineItem(&catalog, lineitems, load, "li_hier"));
    sma::SmaSet smas(table);
    const expr::ExprPtr shipdate =
        Check(expr::Column(&table->schema(), "l_shipdate"));
    Check(smas.Add(
        Check(sma::BuildSma(table, sma::SmaSpec::Min("min", shipdate)))));
    Check(smas.Add(
        Check(sma::BuildSma(table, sma::SmaSpec::Max("max", shipdate)))));
    auto h = Check(sma::HierarchicalMinMax::Build(
        Check(smas.Find("min")), Check(smas.Find("max"))));

    std::vector<sma::Grade> flat, hier;
    uint64_t flat_pages = 0, hier_pages = 0;
    Check(h->GradeAllFlat(expr::CmpOp::kLe, lo.days(), &flat, &flat_pages));
    Check(h->GradeAll(expr::CmpOp::kLe, lo.days(), &hier, &hier_pages));
    if (flat != hier) {
      std::fprintf(stderr, "hierarchical grades diverge from flat!\n");
      return 1;
    }
    std::printf("  L1 pages read: flat=%llu, hierarchical=%llu "
                "(L2 size: %u + %u pages)\n",
                static_cast<unsigned long long>(flat_pages),
                static_cast<unsigned long long>(hier_pages),
                h->level2_min()->num_pages(), h->level2_max()->num_pages());
  }
  return 0;
}
