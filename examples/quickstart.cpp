// Quickstart: create a table, define SMAs, and watch a selection query skip
// most of the data.
//
// Mirrors the paper's running example (§2.2): a count(*) query restricted on
// a date column over an (approximately) date-clustered relation.

#include <cstdio>

#include "exec/sma_scan.h"
#include "exec/table_scan.h"
#include "expr/predicate.h"
#include "sma/builder.h"
#include "sma/sma_set.h"
#include "storage/catalog.h"
#include "util/date.h"
#include "util/rng.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  // --- 1. A database: simulated disk + buffer pool + catalog. -------------
  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, /*capacity_pages=*/2048);
  storage::Catalog catalog(&pool);

  // --- 2. A shipments table, appended in (roughly) shipdate order. --------
  storage::Schema schema({
      storage::Field::Int64("id"),
      storage::Field::Date("shipdate"),
      storage::Field::Decimal("amount"),
  });
  storage::Table* shipments =
      Check(catalog.CreateTable("shipments", schema, {}));

  const util::Date start = util::Date::FromYmd(1997, 1, 1);
  util::Rng rng(42);
  storage::TupleBuffer t(&shipments->schema());
  for (int64_t i = 0; i < 200'000; ++i) {
    t.SetInt64(0, i);
    // Time-of-creation clustering: dates advance with row position, with a
    // little jitter (the paper's "imperfect but still exploitable").
    t.SetDate(1, start.AddDays(static_cast<int32_t>(i / 1000 +
                                                    rng.Uniform(0, 3))));
    t.SetDecimal(2, util::Decimal(rng.Uniform(100, 99999)));
    Check(shipments->Append(t));
  }
  std::printf("loaded %llu tuples on %u pages (%u buckets)\n",
              static_cast<unsigned long long>(shipments->num_tuples()),
              shipments->num_pages(), shipments->num_buckets());

  // --- 3. Define SMAs:  define sma min select min(shipdate) ... ----------
  sma::SmaSet smas(shipments);
  const expr::ExprPtr shipdate = Check(expr::Column(&schema, "shipdate"));
  Check(smas.Add(
      Check(sma::BuildSma(shipments, sma::SmaSpec::Min("min", shipdate)))));
  Check(smas.Add(
      Check(sma::BuildSma(shipments, sma::SmaSpec::Max("max", shipdate)))));
  Check(smas.Add(
      Check(sma::BuildSma(shipments, sma::SmaSpec::Count("count")))));
  std::printf("built 3 SMAs occupying %llu pages (%.2f%% of the table)\n",
              static_cast<unsigned long long>(smas.TotalPages()),
              100.0 * static_cast<double>(smas.TotalPages()) /
                  shipments->num_pages());

  // --- 4. Query: count shipments of one week. -----------------------------
  const util::Date lo = util::Date::FromYmd(1997, 5, 1);
  const util::Date hi = util::Date::FromYmd(1997, 5, 7);
  expr::PredicatePtr pred = expr::Predicate::And(
      Check(expr::Predicate::AtomConst(&schema, "shipdate", expr::CmpOp::kGe,
                                       util::Value::MakeDate(lo))),
      Check(expr::Predicate::AtomConst(&schema, "shipdate", expr::CmpOp::kLe,
                                       util::Value::MakeDate(hi))));

  // Plain scan (cold: nothing cached).
  Check(pool.DropAll());
  disk.ResetStats();
  uint64_t count_scan = 0;
  {
    exec::TableScan scan(shipments, pred);
    Check(scan.Init());
    storage::TupleRef row;
    while (Check(scan.Next(&row))) ++count_scan;
  }
  Check(pool.DropAll());
  const uint64_t scan_reads = disk.stats().page_reads;

  // SMA scan.
  disk.ResetStats();
  uint64_t count_sma = 0;
  exec::SmaScan sma_scan(shipments, pred, &smas);
  Check(sma_scan.Init());
  {
    storage::TupleRef row;
    while (Check(sma_scan.Next(&row))) ++count_sma;
  }
  const uint64_t sma_reads = disk.stats().page_reads;

  std::printf("\nselect count(*) where shipdate in [%s, %s]\n",
              lo.ToString().c_str(), hi.ToString().c_str());
  std::printf("  plain scan : count=%llu, %llu page reads\n",
              static_cast<unsigned long long>(count_scan),
              static_cast<unsigned long long>(scan_reads));
  std::printf("  SMA scan   : count=%llu, %llu page reads "
              "(%llu buckets skipped, %llu ambivalent)\n",
              static_cast<unsigned long long>(count_sma),
              static_cast<unsigned long long>(sma_reads),
              static_cast<unsigned long long>(
                  sma_scan.stats().disqualifying_buckets),
              static_cast<unsigned long long>(
                  sma_scan.stats().ambivalent_buckets));
  if (count_scan != count_sma) {
    std::fprintf(stderr, "MISMATCH!\n");
    return 1;
  }
  std::printf("\nsame answer, %.1fx fewer page reads\n",
              static_cast<double>(scan_reads) /
                  static_cast<double>(std::max<uint64_t>(1, sma_reads)));
  return 0;
}
