// The text-first API: define SMAs with the paper's `define sma` statements
// and run SQL-ish queries through the cost-based planner.
//
// Usage: sql_quickstart

#include <cstdio>

#include "db/database.h"
#include "util/rng.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main() {
  db::Database database;

  // A sales table, appended in date order (time-of-creation clustering).
  storage::Schema schema({
      storage::Field::Int64("id"),
      storage::Field::Date("saledate"),
      storage::Field::Decimal("amount"),
      storage::Field::String("region", 8),
  });
  storage::Table* sales = Check(database.CreateTable("sales", schema));

  util::Rng rng(1);
  static const char* kRegions[] = {"NORTH", "SOUTH", "EAST", "WEST"};
  storage::TupleBuffer row(&sales->schema());
  for (int64_t i = 0; i < 100'000; ++i) {
    row.SetInt64(0, i);
    row.SetDate(1, util::Date::FromYmd(1996, 1, 1)
                       .AddDays(static_cast<int32_t>(i / 150 +
                                                     rng.Uniform(0, 2))));
    row.SetDecimal(2, util::Decimal(rng.Uniform(100, 500000)));
    row.SetString(3, kRegions[rng.Uniform(0, 3)]);
    Check(database.Insert("sales", row));
  }
  std::printf("loaded %llu rows into 'sales'\n",
              static_cast<unsigned long long>(sales->num_tuples()));

  // SMAs, in the paper's own syntax.
  for (const char* stmt : {
           "define sma mindate select min(saledate) from sales",
           "define sma maxdate select max(saledate) from sales",
           "define sma amount select sum(amount) from sales group by region",
           "define sma n      select count(*)    from sales group by region",
       }) {
    Check(database.Execute(stmt));
    std::printf("ok: %s\n", stmt);
  }

  // A restricted grouped aggregation; the planner decides how to run it.
  const char* query =
      "select region, sum(amount) as revenue, count(*) as n, "
      "avg(amount) as mean from sales "
      "where saledate >= '1996-06-01' and saledate < '1996-07-01' "
      "group by region";
  std::printf("\n%s\n\n", query);
  plan::QueryResult result = Check(database.Query(query));
  std::printf("%s", result.ToString().c_str());
  std::printf("\nplan: %s — %s\n",
              std::string(PlanKindToString(result.plan.kind)).c_str(),
              result.plan.explanation.c_str());
  std::printf("bucket census: %llu qualify / %llu disqualify / "
              "%llu ambivalent\n",
              static_cast<unsigned long long>(result.plan.qualifying),
              static_cast<unsigned long long>(result.plan.disqualifying),
              static_cast<unsigned long long>(result.plan.ambivalent));

  // An unrestricted aggregate never touches the base table at all: the
  // grouped SMAs answer it outright.
  plan::QueryResult all = Check(database.Query(
      "select count(*) from sales where saledate >= '1990-01-01'"));
  std::printf("\nunrestricted aggregate plan: %s (count=%s)\n",
              std::string(PlanKindToString(all.plan.kind)).c_str(),
              all.rows[0].AsRef().GetValue(0).ToString().c_str());

  // A predicate on a column without SMAs leaves every bucket ambivalent —
  // the planner falls back to the plain scan on its own.
  plan::QueryResult nosma = Check(database.Query(
      "select count(*) from sales where amount >= 4000"));
  std::printf("no-SMA-column query plan:    %s (count=%s)\n",
              std::string(PlanKindToString(nosma.plan.kind)).c_str(),
              nosma.rows[0].AsRef().GetValue(0).ToString().c_str());
  return 0;
}
