// TPC-D Query 1 end to end: generate LINEITEM, build the paper's eight
// SMAs (Fig. 4), and run Q1 three ways — plain scan, SMA-pruned scan, and
// SMA_GAggr — verifying all three agree and reporting work saved.
//
// Usage: tpcd_q1 [scale_factor]   (default 0.02)

#include <cstdio>
#include <cstdlib>

#include "planner/planner.h"
#include "storage/catalog.h"
#include "tpch/loader.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "workloads/q1.h"

using namespace smadb;  // NOLINT: example brevity

namespace {

void Check(const util::Status& s) {
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Check(util::Result<T> r) {
  Check(r.status());
  return std::move(r).value();
}

}  // namespace

int main(int argc, char** argv) {
  const double sf = argc > 1 ? std::atof(argv[1]) : 0.02;

  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 4096);
  storage::Catalog catalog(&pool);

  std::printf("generating TPC-D LINEITEM at SF %.3f ...\n", sf);
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kShipdateSorted;  // the paper's optimal case
  storage::Table* lineitem =
      Check(tpch::GenerateAndLoadLineItem(&catalog, {sf, 19980401}, load));
  std::printf("  %s tuples, %u pages (%s)\n",
              util::WithThousands(
                  static_cast<long long>(lineitem->num_tuples()))
                  .c_str(),
              lineitem->num_pages(),
              util::HumanBytes(static_cast<double>(lineitem->SizeBytes()))
                  .c_str());

  std::printf("building the 8 SMAs of paper Fig. 4 ...\n");
  util::Stopwatch build_watch;
  sma::SmaSet smas(lineitem);
  Check(workloads::BuildQ1Smas(lineitem, &smas));
  std::printf("  %zu SMAs, %llu SMA-files, %llu pages (%s, %.2f%% of table) "
              "in %.2fs\n",
              smas.size(),
              static_cast<unsigned long long>([&] {
                uint64_t files = 0;
                for (const sma::Sma* s : smas.all()) files += s->num_groups();
                return files;
              }()),
              static_cast<unsigned long long>(smas.TotalPages()),
              util::HumanBytes(static_cast<double>(smas.TotalSizeBytes()))
                  .c_str(),
              100.0 * static_cast<double>(smas.TotalPages()) /
                  lineitem->num_pages(),
              build_watch.ElapsedSeconds());

  plan::AggQuery q1 = Check(workloads::MakeQ1Query(lineitem, 90));

  struct RunResult {
    plan::QueryResult result;
    double seconds;
    uint64_t page_reads;
  };
  auto run = [&](plan::PlanKind kind) -> RunResult {
    Check(pool.DropAll());
    disk.ResetStats();
    plan::Planner planner(&smas);
    auto op = Check(planner.Build(q1, kind));
    util::Stopwatch watch;
    plan::QueryResult r = Check(plan::RunToCompletion(op.get()));
    return RunResult{std::move(r), watch.ElapsedSeconds(),
                     disk.stats().page_reads};
  };

  std::printf("\nQuery 1 (delta = 90 days):\n");
  RunResult scan = run(plan::PlanKind::kScanAggr);
  std::printf("  GAggr(TableScan): %7.3fs  %8llu page reads\n", scan.seconds,
              static_cast<unsigned long long>(scan.page_reads));
  RunResult smascan = run(plan::PlanKind::kSmaScanAggr);
  std::printf("  GAggr(SMA_Scan) : %7.3fs  %8llu page reads\n",
              smascan.seconds,
              static_cast<unsigned long long>(smascan.page_reads));
  RunResult smag = run(plan::PlanKind::kSmaGAggr);
  std::printf("  SMA_GAggr       : %7.3fs  %8llu page reads\n", smag.seconds,
              static_cast<unsigned long long>(smag.page_reads));

  // All three must agree.
  const std::string a = scan.result.ToString();
  if (a != smascan.result.ToString() || a != smag.result.ToString()) {
    std::fprintf(stderr, "RESULT MISMATCH between plans!\n%s\nvs\n%s\nvs\n%s",
                 a.c_str(), smascan.result.ToString().c_str(),
                 smag.result.ToString().c_str());
    return 1;
  }
  std::printf("\nall plans agree; result:\n%s", a.c_str());
  std::printf("\nspeedup: %.0fx fewer page reads, %.1fx faster wall-clock\n",
              static_cast<double>(scan.page_reads) /
                  static_cast<double>(std::max<uint64_t>(1, smag.page_reads)),
              scan.seconds / std::max(1e-9, smag.seconds));

  // Let the planner decide on its own.
  plan::Planner planner(&smas);
  plan::PlanChoice choice = Check(planner.Choose(q1));
  std::printf("planner picks: %s — %s\n",
              std::string(PlanKindToString(choice.kind)).c_str(),
              choice.explanation.c_str());
  return 0;
}
