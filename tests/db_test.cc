// Tests for the Database facade and its SQL dialect.

#include <gtest/gtest.h>

#include "db/database.h"
#include "db/sql.h"
#include <algorithm>

#include "expr/parser.h"
#include "tests/test_util.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"
#include "util/string_util.h"

namespace smadb::db {
namespace {

using testing::ExpectOk;
using testing::SyntheticSchema;
using testing::Unwrap;
using util::Value;

// ---------------------------------------------------------------- ParseQuery

struct SqlTest : ::testing::Test {
  SqlTest() : schema(SyntheticSchema()) {}
  storage::Schema schema;
};

TEST_F(SqlTest, ExtractTableName) {
  EXPECT_EQ(Unwrap(ExtractTableName("select * from t where k = 1")), "t");
  EXPECT_EQ(Unwrap(ExtractTableName("select count(*) from lineitem")),
            "lineitem");
  EXPECT_FALSE(ExtractTableName("select 1").ok());
}

TEST_F(SqlTest, ParsesSelectStar) {
  auto q = Unwrap(ParseQuery(&schema, "select * from t"));
  EXPECT_TRUE(q.select_star);
  EXPECT_EQ(q.table, "t");
  EXPECT_EQ(q.pred->kind(), expr::Predicate::Kind::kTrue);
}

TEST_F(SqlTest, ParsesSelectStarWithWhere) {
  auto q = Unwrap(
      ParseQuery(&schema, "select * from t where d <= '1970-02-01'"));
  EXPECT_TRUE(q.select_star);
  EXPECT_NE(q.pred->kind(), expr::Predicate::Kind::kTrue);
}

TEST_F(SqlTest, ParsesAggregatesWithAliases) {
  auto q = Unwrap(ParseQuery(
      &schema,
      "select sum(v) as total, count(*), avg(v), min(d) as first_day "
      "from t where k >= 10 group by grp"));
  EXPECT_FALSE(q.select_star);
  ASSERT_EQ(q.aggs.size(), 4u);
  EXPECT_EQ(q.aggs[0].name, "total");
  EXPECT_EQ(q.aggs[0].kind, exec::AggKind::kSum);
  EXPECT_EQ(q.aggs[1].kind, exec::AggKind::kCount);
  EXPECT_EQ(q.aggs[2].kind, exec::AggKind::kAvg);
  EXPECT_EQ(q.aggs[3].name, "first_day");
  EXPECT_EQ(q.group_by, (std::vector<size_t>{3}));
}

TEST_F(SqlTest, ParsesExpressionAggregate) {
  auto q = Unwrap(ParseQuery(
      &schema, "select sum(v * (1.00 - v)) from t group by grp, tag"));
  EXPECT_EQ(q.aggs[0].arg->ToString(), "(v * (1.00 - v))");
  EXPECT_EQ(q.group_by, (std::vector<size_t>{3, 4}));
}

TEST_F(SqlTest, GroupColumnsInSelectList) {
  auto q = Unwrap(ParseQuery(
      &schema, "select grp, count(*) from t group by grp"));
  EXPECT_EQ(q.selected_columns, (std::vector<size_t>{3}));
  // Bare column not in group by: rejected.
  EXPECT_FALSE(
      ParseQuery(&schema, "select tag, count(*) from t group by grp").ok());
}

TEST_F(SqlTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery(&schema, "selekt * from t").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select * from").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select from t").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select * from t where").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select * from t group by grp").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select k from t").ok());  // no aggregate
  EXPECT_FALSE(ParseQuery(&schema, "select count(k) from t").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select sum() from t").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select * from t, s").ok());
  EXPECT_FALSE(ParseQuery(&schema, "select * from t extra").ok());
  EXPECT_FALSE(
      ParseQuery(&schema, "select sum(v) from t group by zz").ok());
}

// ------------------------------------------------------------------ Database

struct DatabaseTest : ::testing::Test {
  DatabaseTest() {
    table = Unwrap(db.CreateTable("t", SyntheticSchema()));
    storage::TupleBuffer buf(&table->schema());
    util::Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
      buf.SetInt64(0, i);
      buf.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
      buf.SetDecimal(2, util::Decimal(i));
      const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 2)), 0};
      buf.SetString(3, grp);
      buf.SetString(4, "MAIL");
      ExpectOk(db.Insert("t", buf));
    }
  }

  Database db;
  storage::Table* table = nullptr;
};

TEST_F(DatabaseTest, DefineSmaAndQueryUsesThem) {
  ExpectOk(db.Execute("define sma mn select min(d) from t"));
  ExpectOk(db.Execute("define sma mx select max(d) from t"));
  ExpectOk(db.Execute(
      "define sma sums select sum(v) from t group by grp"));
  ExpectOk(db.Execute(
      "define sma cnts select count(*) from t group by grp"));
  EXPECT_EQ(Unwrap(db.Smas("t"))->size(), 4u);

  auto result = Unwrap(db.Query(
      "select grp, sum(v) as total, count(*) as n, avg(v) as mean "
      "from t where d <= '1970-01-31' group by grp"));
  // Selective predicate on clustered data + full SMA complement -> the
  // planner picks SMA_GAggr.
  EXPECT_EQ(result.plan.kind, plan::PlanKind::kSmaGAggr);
  EXPECT_EQ(result.rows.size(), 3u);  // groups A, B, C

  // Cross-check against a plain scan: drop the SMAs by querying a twin
  // database without them.
  Database twin;
  storage::Table* twin_table =
      Unwrap(twin.CreateTable("t", SyntheticSchema()));
  (void)twin_table;
  // (Re-insert identical rows.)
  storage::TupleBuffer buf(&table->schema());
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    ExpectOk(table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& t, storage::Rid) {
          for (size_t c = 0; c < table->schema().num_fields(); ++c) {
            buf.SetValue(c, t.GetValue(c));
          }
          ExpectOk(twin.Insert("t", buf));
        }));
  }
  auto twin_result = Unwrap(twin.Query(
      "select grp, sum(v) as total, count(*) as n, avg(v) as mean "
      "from t where d <= '1970-01-31' group by grp"));
  EXPECT_EQ(twin_result.plan.kind, plan::PlanKind::kScanAggr);
  EXPECT_EQ(result.ToString(), twin_result.ToString());
}

TEST_F(DatabaseTest, SelectStarQuery) {
  ExpectOk(db.Execute("define sma mn select min(d) from t"));
  ExpectOk(db.Execute("define sma mx select max(d) from t"));
  auto result =
      Unwrap(db.Query("select * from t where d < '1970-01-03'"));
  EXPECT_EQ(result.plan.kind, plan::PlanKind::kSmaScan);
  EXPECT_EQ(result.rows.size(), 16u);  // d in {0, 1}: 8 rows each
  EXPECT_EQ(result.schema->num_fields(), table->schema().num_fields());
}

TEST_F(DatabaseTest, GlobalAggregateWithoutGroupBy) {
  auto result = Unwrap(db.Query("select count(*) from t"));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].AsRef().GetInt64(0), 2000);
}

TEST_F(DatabaseTest, MutationsStayConsistentWithSmas) {
  ExpectOk(db.Execute("define sma mn select min(d) from t"));
  ExpectOk(db.Execute("define sma mx select max(d) from t"));
  ExpectOk(db.Execute("define sma n select count(*) from t group by grp"));

  // Update a date, delete a tuple, insert a new one.
  ExpectOk(db.Update("t", storage::Rid{0, 0}, 1,
                     Value::MakeDate(util::Date(500))));
  ExpectOk(db.Delete("t", storage::Rid{0, 1}));
  storage::TupleBuffer buf(&table->schema());
  buf.SetInt64(0, 99999);
  buf.SetDate(1, util::Date(0));
  buf.SetDecimal(2, util::Decimal(5));
  buf.SetString(3, "A");
  buf.SetString(4, "MAIL");
  ExpectOk(db.Insert("t", buf));

  // SMA-backed count equals scan-backed count.
  auto via_sma = Unwrap(db.Query("select count(*) from t"));
  EXPECT_EQ(via_sma.rows[0].AsRef().GetInt64(0), 2000);  // -1 +1

  for (const sma::Sma* sma : Unwrap(db.Smas("t"))->all()) {
    testing::ExpectSmaEqualsRebuild(table, *sma);
  }
}

TEST_F(DatabaseTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(db.Query("select * from missing").ok());
  EXPECT_FALSE(db.Execute("drop table t").ok());
  EXPECT_FALSE(db.Execute("define sma x select min(d) from missing").ok());
  EXPECT_FALSE(db.Insert("missing", storage::TupleBuffer(&table->schema()))
                   .ok());
}

TEST_F(DatabaseTest, StringPredicateQuery) {
  ExpectOk(db.Execute("define sma n select count(*) from t group by grp"));
  auto result = Unwrap(db.Query(
      "select count(*) as n from t where grp = 'A'"));
  ASSERT_EQ(result.rows.size(), 1u);
  const int64_t via_query = result.rows[0].AsRef().GetInt64(0);
  int64_t expected = 0;
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    ExpectOk(table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& t, storage::Rid) {
          expected += t.GetString(3) == "A";
        }));
  }
  EXPECT_EQ(via_query, expected);
}

// -------------------------------------------- Q1 through the text stack --

// The paper's whole Fig. 4 + Query 1 flow expressed purely as text: eight
// `define sma` statements and one SQL query. The SMA-built result must
// equal the plain-scan result of a twin database without SMAs.
TEST(DatabaseQ1Test, Fig4AndQuery1AsText) {
  tpch::Dbgen gen({0.002, 42});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lis;
  gen.GenOrdersAndLineItems(&orders, &lis);
  std::stable_sort(lis.begin(), lis.end(),
                   [](const tpch::LineItemRow& a, const tpch::LineItemRow& b) {
                     return a.shipdate < b.shipdate;
                   });

  Database with_smas;
  Database without_smas;
  for (Database* d : {&with_smas, &without_smas}) {
    storage::Table* t =
        Unwrap(d->CreateTable("lineitem", tpch::LineItemSchema()));
    for (const auto& row : lis) {
      ExpectOk(d->Insert("lineitem",
                         tpch::LineItemTuple(&t->schema(), row)));
    }
  }

  // Fig. 4, verbatim modulo attribute names.
  for (const char* stmt : {
           "define sma max select max(l_shipdate) from lineitem",
           "define sma min select min(l_shipdate) from lineitem",
           "define sma count select count(*) from lineitem "
           "group by l_returnflag, l_linestatus",
           "define sma qty select sum(l_quantity) from lineitem "
           "group by l_returnflag, l_linestatus",
           "define sma dis select sum(l_discount) from lineitem "
           "group by l_returnflag, l_linestatus",
           "define sma ext select sum(l_extendedprice) from lineitem "
           "group by l_returnflag, l_linestatus",
           "define sma extdis select sum(l_extendedprice * "
           "(1.00 - l_discount)) from lineitem "
           "group by l_returnflag, l_linestatus",
           "define sma extdistax select sum(l_extendedprice * "
           "(1.00 - l_discount) * (1.00 + l_tax)) from lineitem "
           "group by l_returnflag, l_linestatus",
       }) {
    ExpectOk(with_smas.Execute(stmt));
  }

  const char* q1 =
      "select l_returnflag, l_linestatus, "
      "sum(l_quantity) as sum_qty, "
      "sum(l_extendedprice) as sum_base_price, "
      "sum(l_extendedprice * (1.00 - l_discount)) as sum_disc_price, "
      "sum(l_extendedprice * (1.00 - l_discount) * (1.00 + l_tax)) "
      "as sum_charge, "
      "avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, "
      "avg(l_discount) as avg_disc, count(*) as count_order "
      "from lineitem where l_shipdate <= date '1998-09-02' "
      "group by l_returnflag, l_linestatus";

  auto a = Unwrap(with_smas.Query(q1));
  auto b = Unwrap(without_smas.Query(q1));
  EXPECT_EQ(a.plan.kind, plan::PlanKind::kSmaGAggr);
  EXPECT_EQ(b.plan.kind, plan::PlanKind::kScanAggr);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_EQ(a.rows.size(), 4u);  // A|F, N|F, N|O, R|F
}

// ------------------------------------------------- randomized end-to-end --

// Fuzz-style property: random predicates (ranges, equalities, strings,
// and/or trees) through the full Database → planner → operator stack must
// match a brute-force evaluation, with and without SMAs.
TEST(DatabaseFuzzTest, RandomQueriesMatchBruteForce) {
  Database with_smas;
  Database without_smas;
  storage::Table* t1 =
      Unwrap(with_smas.CreateTable("t", SyntheticSchema()));
  storage::Table* t2 =
      Unwrap(without_smas.CreateTable("t", SyntheticSchema()));

  util::Rng data_rng(8);
  storage::TupleBuffer buf(&t1->schema());
  std::vector<std::tuple<int32_t, int64_t, std::string>> rows;  // d, v, grp
  for (int i = 0; i < 3000; ++i) {
    const int32_t d = static_cast<int32_t>(i / 10 + data_rng.Uniform(-2, 2));
    const int64_t v = data_rng.Uniform(-1000, 1000);
    const char grp[2] = {static_cast<char>('A' + data_rng.Uniform(0, 3)), 0};
    buf.SetInt64(0, i);
    buf.SetDate(1, util::Date(d));
    buf.SetDecimal(2, util::Decimal(v));
    buf.SetString(3, grp);
    buf.SetString(4, "MAIL");
    ExpectOk(with_smas.Insert("t", buf));
    ExpectOk(without_smas.Insert("t", buf));
    rows.emplace_back(d, v, grp);
  }
  for (const char* stmt : {
           "define sma mn select min(d) from t",
           "define sma mx select max(d) from t",
           "define sma vmn select min(v) from t",
           "define sma vmx select max(v) from t",
           "define sma cnt select count(*) from t group by grp",
           "define sma sums select sum(v) from t group by grp",
       }) {
    ExpectOk(with_smas.Execute(stmt));
  }

  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    // Random predicate text from a small grammar.
    auto atom = [&]() -> std::string {
      static const char* kOps[] = {"=", "!=", "<", "<=", ">", ">="};
      const char* op = kOps[rng.Uniform(0, 5)];
      switch (rng.Uniform(0, 2)) {
        case 0:
          return util::Format("d %s '%s'", op,
                              util::Date(static_cast<int32_t>(
                                             rng.Uniform(0, 320)))
                                  .ToString()
                                  .c_str());
        case 1:
          return util::Format("v %s %lld.%02lld", op,
                              static_cast<long long>(rng.Uniform(-10, 10)),
                              static_cast<long long>(rng.Uniform(0, 99)));
        default: {
          const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 4)),
                               0};
          return util::Format("grp %s '%s'",
                              rng.NextBool(0.5) ? "=" : "!=", grp);
        }
      }
    };
    std::string pred = atom();
    if (rng.NextBool(0.6)) {
      pred = "(" + pred + (rng.NextBool(0.5) ? " and " : " or ") + atom() +
             ")";
    }
    if (rng.NextBool(0.3)) {
      pred += rng.NextBool(0.5) ? " and " : " or ";
      pred += atom();
    }
    const std::string sql = "select sum(v) as s, count(*) as n from t "
                            "where " + pred + " group by grp";
    auto a = with_smas.Query(sql);
    auto b = without_smas.Query(sql);
    ASSERT_TRUE(a.ok()) << sql << " -> " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << " -> " << b.status().ToString();
    EXPECT_EQ(a->ToString(), b->ToString()) << sql;

    // Brute-force the count as an independent oracle.
    const expr::PredicatePtr parsed =
        Unwrap(expr::ParsePredicate(&t1->schema(), pred));
    int64_t expected = 0;
    for (uint32_t bkt = 0; bkt < t2->num_buckets(); ++bkt) {
      ExpectOk(t2->ForEachTupleInBucket(
          bkt, [&](const storage::TupleRef& tup, storage::Rid) {
            expected += parsed->Eval(tup);
          }));
    }
    int64_t got = 0;
    for (const auto& row : a->rows) {
      got += row.AsRef().GetInt64(2);  // grp | s | n
    }
    EXPECT_EQ(got, expected) << sql;
  }
}

}  // namespace
}  // namespace smadb::db
