// Shared test scaffolding: a small in-memory database fixture, synthetic
// tables with controllable clustering, and brute-force reference
// implementations the SMA machinery is checked against.

#ifndef SMADB_TESTS_TEST_UTIL_H_
#define SMADB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <stdlib.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "sma/builder.h"
#include "sma/grade.h"
#include "sma/sma_set.h"
#include "storage/catalog.h"
#include "storage/file_disk.h"
#include "util/rng.h"

namespace smadb::testing {

/// Unwraps a Result in a test; aborts the test binary on error (there is no
/// value to continue with, so failing soft would be undefined behaviour).
template <typename T>
T Unwrap(util::Result<T> r) {
  if (!r.ok()) {
    ADD_FAILURE() << "Unwrap of failed Result: " << r.status().ToString();
    std::abort();
  }
  return std::move(r).value();
}

inline void ExpectOk(const util::Status& s) {
  EXPECT_TRUE(s.ok()) << s.ToString();
}

/// RAII temp directory (mkdtemp; removed recursively on destruction). The
/// scaffolding for file-backend fixtures and the durability suite.
struct ScopedTempDir {
  ScopedTempDir() {
    char tmpl[] = "/tmp/smadb_test_XXXXXX";
    const char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    path = d != nullptr ? d : "";
  }
  ~ScopedTempDir() {
    if (!path.empty()) {
      std::error_code ec;  // best-effort; never throw from a destructor
      std::filesystem::remove_all(path, ec);
    }
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  std::string path;
};

/// Storage + pool + catalog test fixture. Defaults to the simulated backend;
/// pass BackendKind::kFile to run the identical test against real files in a
/// scoped temp directory (the fault matrix does both).
struct TestDb {
  explicit TestDb(size_t pool_pages = 4096,
                  storage::BackendKind kind = storage::BackendKind::kSimulated)
      : backend(MakeBackend(kind, tmpdir.path)),
        disk(*backend),
        pool(backend.get(), pool_pages),
        catalog(&pool) {}

  static std::unique_ptr<storage::DiskBackend> MakeBackend(
      storage::BackendKind kind, const std::string& dir) {
    if (kind == storage::BackendKind::kFile) {
      return Unwrap(storage::FileDiskManager::Open(dir + "/pages"));
    }
    return std::make_unique<storage::SimulatedDisk>();
  }

  ScopedTempDir tmpdir;  // must outlive (so: precede) the backend
  std::unique_ptr<storage::DiskBackend> backend;
  storage::DiskBackend& disk;
  storage::BufferPool pool;
  storage::Catalog catalog;
};

/// Schema used by most synthetic tests:
///   (k int64, d date, v decimal, grp char(1), tag char(4))
inline storage::Schema SyntheticSchema() {
  return storage::Schema({
      storage::Field::Int64("k"),
      storage::Field::Date("d"),
      storage::Field::Decimal("v"),
      storage::Field::String("grp", 1),
      storage::Field::String("tag", 4),
  });
}

enum class Layout {
  kClustered,   // d strictly increases with position
  kNoisy,       // d increases with jitter (diagonal clustering)
  kRandom,      // d uniform random
};

/// Populates `n` rows into a fresh synthetic table.
/// d spans ~[0, n/8] days; v = k*3 cents; grp in {A,B,C}; tag in 4 values.
inline storage::Table* MakeSyntheticTable(TestDb* db, int64_t n, Layout layout,
                                          uint64_t seed = 11,
                                          uint32_t bucket_pages = 1,
                                          const std::string& name = "t") {
  storage::Table* table =
      Unwrap(db->catalog.CreateTable(name, SyntheticSchema(),
                                     storage::TableOptions{bucket_pages}));
  util::Rng rng(seed);
  static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
  storage::TupleBuffer t(&table->schema());
  for (int64_t i = 0; i < n; ++i) {
    int32_t day;
    switch (layout) {
      case Layout::kClustered:
        day = static_cast<int32_t>(i / 8);
        break;
      case Layout::kNoisy:
        day = static_cast<int32_t>(i / 8 + rng.Uniform(-2, 2));
        break;
      case Layout::kRandom:
      default:
        day = static_cast<int32_t>(rng.Uniform(0, n / 8));
        break;
    }
    t.SetInt64(0, i);
    t.SetDate(1, util::Date(day));
    t.SetDecimal(2, util::Decimal(i * 3));
    const char grp = static_cast<char>('A' + rng.Uniform(0, 2));
    t.SetString(3, std::string_view(&grp, 1));
    t.SetString(4, kTags[rng.Uniform(0, 3)]);
    ExpectOk(table->Append(t));
  }
  return table;
}

/// Brute-force reference: does every / any / no tuple of `bucket` satisfy
/// `pred`? Returns {all, any}.
inline std::pair<bool, bool> BucketTruth(storage::Table* table,
                                         uint32_t bucket,
                                         const expr::Predicate& pred) {
  bool all = true, any = false;
  EXPECT_TRUE(table
                  ->ForEachTupleInBucket(
                      bucket,
                      [&](const storage::TupleRef& t, storage::Rid) {
                        const bool sat = pred.Eval(t);
                        all &= sat;
                        any |= sat;
                      })
                  .ok());
  return {all, any};
}

/// Soundness check of one grade against brute force: qualifying buckets
/// must be all-satisfying, disqualifying buckets must be none-satisfying.
inline void ExpectGradeSound(storage::Table* table, uint32_t bucket,
                             const expr::Predicate& pred, sma::Grade grade) {
  const auto [all, any] = BucketTruth(table, bucket, pred);
  switch (grade) {
    case sma::Grade::kQualifies:
      EXPECT_TRUE(all) << "bucket " << bucket
                       << " graded qualifies but has non-matching tuples";
      break;
    case sma::Grade::kDisqualifies:
      EXPECT_FALSE(any) << "bucket " << bucket
                        << " graded disqualifies but has matching tuples";
      break;
    case sma::Grade::kAmbivalent:
      break;  // always sound
  }
}

/// Compares a maintained SMA against a fresh bulk rebuild over the table's
/// current contents. Groups the maintainer created but whose tuples have
/// since disappeared (moved or deleted) won't be rediscovered by a rebuild;
/// such groups must hold only identity entries.
inline void ExpectSmaEqualsRebuild(storage::Table* table,
                                   const sma::Sma& maintained) {
  sma::SmaSpec spec = maintained.spec();
  spec.name += "_rebuild";
  auto rebuilt_r = sma::BuildSma(table, std::move(spec));
  ASSERT_TRUE(rebuilt_r.ok()) << rebuilt_r.status().ToString();
  const auto& rebuilt = *rebuilt_r;
  ASSERT_EQ(maintained.num_buckets(), rebuilt->num_buckets());
  ASSERT_LE(rebuilt->num_groups(), maintained.num_groups())
      << maintained.spec().name;
  for (size_t g = 0; g < maintained.num_groups(); ++g) {
    const int64_t rg = rebuilt->FindGroup(maintained.group_key(g));
    for (uint64_t b = 0; b < maintained.num_buckets(); ++b) {
      const int64_t got = Unwrap(maintained.group_file(g)->Get(b));
      const int64_t want =
          rg >= 0 ? Unwrap(rebuilt->group_file(static_cast<size_t>(rg))
                               ->Get(b))
                  : maintained.IdentityEntry();
      EXPECT_EQ(got, want) << maintained.spec().name << " group " << g
                           << " bucket " << b;
    }
  }
}

/// Builds and registers min/max SMAs on column `col_name` of `table`.
inline void AddMinMaxSmas(storage::Table* table, sma::SmaSet* smas,
                          const std::string& col_name,
                          const std::string& prefix = "") {
  const expr::ExprPtr col =
      Unwrap(expr::Column(&table->schema(), col_name));
  ExpectOk(smas->Add(Unwrap(
      sma::BuildSma(table, sma::SmaSpec::Min(prefix + "min_" + col_name,
                                             col)))));
  ExpectOk(smas->Add(Unwrap(
      sma::BuildSma(table, sma::SmaSpec::Max(prefix + "max_" + col_name,
                                             col)))));
}

}  // namespace smadb::testing

#endif  // SMADB_TESTS_TEST_UTIL_H_
