// Tests for Filter, HashJoin, and the SMA-reduced semi-join operator.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "exec/filter.h"
#include "exec/gaggr.h"
#include "exec/join.h"
#include "exec/table_scan.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace smadb::exec {
namespace {

using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using storage::Rid;
using storage::TupleBuffer;
using storage::TupleRef;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

std::vector<std::string> Drain(Operator* op) {
  ExpectOk(op->Init());
  std::vector<std::string> rows;
  TupleRef t;
  while (true) {
    auto has = op->Next(&t);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    std::string row;
    for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
      row += t.GetValue(c).ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---------------------------------------------------------------- Filter --

TEST(FilterTest, FiltersChildOutput) {
  TestDb db;
  storage::Table* t =
      MakeSyntheticTable(&db, 500, testing::Layout::kRandom);
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "k", CmpOp::kLt, Value::Int64(100)));
  auto filtered = std::make_unique<Filter>(
      std::make_unique<TableScan>(t, Predicate::True()), pred);
  EXPECT_EQ(Drain(filtered.get()).size(), 100u);
}

TEST(FilterTest, StringPredicate) {
  TestDb db;
  storage::Table* t =
      MakeSyntheticTable(&db, 600, testing::Layout::kRandom);
  const PredicatePtr pred = Unwrap(
      Predicate::AtomString(&t->schema(), "grp", CmpOp::kEq, "A"));
  auto filtered = std::make_unique<Filter>(
      std::make_unique<TableScan>(t, Predicate::True()), pred);
  size_t expected = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectOk(t->ForEachTupleInBucket(b, [&](const TupleRef& tup, Rid) {
      expected += tup.GetString(3) == "A";
    }));
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(Drain(filtered.get()).size(), expected);
}

// -------------------------------------------------------------- HashJoin --

struct JoinFixture : ::testing::Test {
  JoinFixture() : db(8192) {
    // Parent table: (k, d, v, grp, tag); child joins on k % 50.
    parent = MakeSyntheticTable(&db, 50, testing::Layout::kClustered, 3, 1,
                                "parent");
    child = Unwrap(
        db.catalog.CreateTable("child", testing::SyntheticSchema(), {}));
    util::Rng rng(17);
    TupleBuffer t(&child->schema());
    for (int i = 0; i < 400; ++i) {
      const int64_t fk = rng.Uniform(0, 69);  // 0..49 match, 50..69 dangle
      t.SetInt64(0, fk);
      t.SetDate(1, util::Date(static_cast<int32_t>(i)));
      t.SetDecimal(2, util::Decimal(i));
      t.SetString(3, "C");
      t.SetString(4, "MAIL");
      ExpectOk(child->Append(t));
      fk_counts[fk] += 1;
    }
  }

  TestDb db;
  storage::Table* parent = nullptr;
  storage::Table* child = nullptr;
  std::map<int64_t, int> fk_counts;
};

TEST_F(JoinFixture, InnerJoinCardinalityAndContent) {
  auto join = Unwrap(HashJoin::Make(
      std::make_unique<TableScan>(child, Predicate::True()), 0,
      std::make_unique<TableScan>(parent, Predicate::True()), 0));
  // Output schema is the concatenation.
  EXPECT_EQ(join->output_schema().num_fields(),
            child->schema().num_fields() + parent->schema().num_fields());

  size_t expected = 0;
  for (const auto& [fk, n] : fk_counts) {
    if (fk < 50) expected += static_cast<size_t>(n);
  }
  ExpectOk(join->Init());
  TupleRef row;
  size_t rows = 0;
  while (*join->Next(&row)) {
    ++rows;
    // Join keys agree on both sides.
    EXPECT_EQ(row.GetInt64(0), row.GetInt64(5));
  }
  EXPECT_EQ(rows, expected);
}

TEST_F(JoinFixture, DuplicateBuildKeysProduceCrossProduct) {
  // Join child with itself on the fk column: each row matches
  // fk_counts[fk] rows.
  auto join = Unwrap(HashJoin::Make(
      std::make_unique<TableScan>(child, Predicate::True()), 0,
      std::make_unique<TableScan>(child, Predicate::True()), 0));
  size_t expected = 0;
  for (const auto& [fk, n] : fk_counts) {
    expected += static_cast<size_t>(n) * static_cast<size_t>(n);
  }
  EXPECT_EQ(Drain(join.get()).size(), expected);
}

TEST_F(JoinFixture, JoinFeedsAggregation) {
  // count joined rows per parent grp — exercises GAggr over a join.
  auto join = Unwrap(HashJoin::Make(
      std::make_unique<TableScan>(child, Predicate::True()), 0,
      std::make_unique<TableScan>(parent, Predicate::True()), 0));
  const size_t grp_col = child->schema().num_fields() + 3;
  auto aggr = Unwrap(GAggr::Make(std::move(join), {grp_col},
                                 {AggSpec::Count("n")}));
  ExpectOk(aggr->Init());
  TupleRef row;
  int64_t total = 0;
  while (*aggr->Next(&row)) total += row.GetInt64(1);
  size_t expected = 0;
  for (const auto& [fk, n] : fk_counts) {
    if (fk < 50) expected += static_cast<size_t>(n);
  }
  EXPECT_EQ(static_cast<size_t>(total), expected);
}

TEST_F(JoinFixture, RejectsNonIntegralKeys) {
  EXPECT_FALSE(HashJoin::Make(
                   std::make_unique<TableScan>(child, Predicate::True()), 3,
                   std::make_unique<TableScan>(parent, Predicate::True()), 3)
                   .ok());
  EXPECT_FALSE(HashJoin::Make(
                   std::make_unique<TableScan>(child, Predicate::True()), 99,
                   std::make_unique<TableScan>(parent, Predicate::True()), 0)
                   .ok());
}

// ------------------------------------------------------------ SmaSemiJoin --

struct SemiJoinOpFixture : ::testing::Test {
  SemiJoinOpFixture() : db(16384) {
    r = MakeSyntheticTable(&db, 4000, testing::Layout::kClustered, 3, 1, "r");
    r_smas = std::make_unique<sma::SmaSet>(r);
    AddMinMaxSmas(r, r_smas.get(), "d");
    s = Unwrap(db.catalog.CreateTable("s", testing::SyntheticSchema(), {}));
    util::Rng rng(5);
    TupleBuffer t(&s->schema());
    for (int i = 0; i < 200; ++i) {
      t.SetInt64(0, i);
      t.SetDate(1, util::Date(static_cast<int32_t>(rng.Uniform(200, 260))));
      t.SetDecimal(2, util::Decimal(1));
      t.SetString(3, "A");
      t.SetString(4, "MAIL");
      ExpectOk(s->Append(t));
    }
  }

  // Brute-force reference semi-join.
  std::vector<std::string> Reference(CmpOp op) {
    std::set<int64_t> s_vals;
    for (uint32_t b = 0; b < s->num_buckets(); ++b) {
      EXPECT_TRUE(s->ForEachTupleInBucket(b, [&](const TupleRef& t, Rid) {
                     s_vals.insert(t.GetRawInt(1));
                   }).ok());
    }
    std::vector<std::string> out;
    for (uint32_t b = 0; b < r->num_buckets(); ++b) {
      EXPECT_TRUE(r->ForEachTupleInBucket(b, [&](const TupleRef& t, Rid) {
                     const int64_t a = t.GetRawInt(1);
                     bool match = false;
                     for (int64_t v : s_vals) {
                       if (expr::CompareInt(a, op, v)) {
                         match = true;
                         break;
                       }
                     }
                     if (!match) return;
                     std::string row;
                     for (size_t c = 0; c < r->schema().num_fields(); ++c) {
                       row += t.GetValue(c).ToString();
                       row += '|';
                     }
                     out.push_back(std::move(row));
                   }).ok());
    }
    return out;
  }

  TestDb db;
  storage::Table* r = nullptr;
  storage::Table* s = nullptr;
  std::unique_ptr<sma::SmaSet> r_smas;
};

TEST_F(SemiJoinOpFixture, MatchesBruteForceForAllOps) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLe, CmpOp::kLt, CmpOp::kGe,
                   CmpOp::kGt}) {
    auto join =
        Unwrap(SmaSemiJoin::Make(r, 1, op, s, 1, r_smas.get()));
    EXPECT_EQ(Drain(join.get()), Reference(op))
        << "op " << static_cast<int>(op);
  }
}

TEST_F(SemiJoinOpFixture, PrunesBucketsWithSmas) {
  auto join = Unwrap(SmaSemiJoin::Make(r, 1, CmpOp::kEq, s, 1, r_smas.get()));
  (void)Drain(join.get());
  EXPECT_GT(join->buckets_pruned(), 0u);
}

TEST_F(SemiJoinOpFixture, WorksWithoutSmas) {
  auto with = Unwrap(SmaSemiJoin::Make(r, 1, CmpOp::kEq, s, 1, r_smas.get()));
  auto without = Unwrap(SmaSemiJoin::Make(r, 1, CmpOp::kEq, s, 1, nullptr));
  EXPECT_EQ(Drain(with.get()), Drain(without.get()));
  EXPECT_EQ(without->buckets_pruned(), 0u);
}

TEST_F(SemiJoinOpFixture, AllMatchBucketsSkipProbing) {
  auto join = Unwrap(SmaSemiJoin::Make(r, 1, CmpOp::kLe, s, 1, r_smas.get()));
  (void)Drain(join.get());
  // Low-d buckets are provably all-matching for d <= max(S).
  EXPECT_GT(join->buckets_unprobed(), 0u);
}

TEST_F(SemiJoinOpFixture, RSidePredicateFiltersAndPrunes) {
  // R restricted to d >= 150: combined with the semi-join reduction, both
  // prunings apply and results match filter-then-probe brute force.
  const expr::PredicatePtr r_pred = Unwrap(expr::Predicate::AtomConst(
      &r->schema(), "d", CmpOp::kGe, Value::MakeDate(util::Date(150))));
  auto join = Unwrap(SmaSemiJoin::Make(r, 1, CmpOp::kEq, s, 1, r_smas.get(),
                                       nullptr, r_pred));
  std::vector<std::string> expected;
  for (const std::string& row : Reference(CmpOp::kEq)) {
    // Reference rows serialize d at field index 1.
    const auto fields = util::Split(row, '|');
    const auto d = util::Date::Parse(fields[1]);
    ASSERT_TRUE(d.ok());
    if (d->days() >= 150) expected.push_back(row);
  }
  EXPECT_EQ(Drain(join.get()), expected);
  EXPECT_GT(join->buckets_pruned(), 0u);
}

TEST_F(SemiJoinOpFixture, SSidePredicateShrinksPartnerSet) {
  // Only S tuples with even id count as partners; the filtered minimax
  // must drive the reduction (soundness of all_match depends on it).
  const expr::PredicatePtr s_pred = Unwrap(expr::Predicate::AtomConst(
      &s->schema(), "v", CmpOp::kLe,
      Value::MakeDecimal(util::Decimal(100))));
  for (CmpOp op : {CmpOp::kEq, CmpOp::kLe, CmpOp::kGe}) {
    auto join = Unwrap(SmaSemiJoin::Make(r, 1, op, s, 1, r_smas.get(),
                                         nullptr, nullptr, s_pred));
    // Brute force against the filtered S.
    std::set<int64_t> s_vals;
    for (uint32_t b = 0; b < s->num_buckets(); ++b) {
      ExpectOk(s->ForEachTupleInBucket(b, [&](const TupleRef& t, Rid) {
        if (s_pred->Eval(t)) s_vals.insert(t.GetRawInt(1));
      }));
    }
    std::vector<std::string> expected;
    for (uint32_t b = 0; b < r->num_buckets(); ++b) {
      ExpectOk(r->ForEachTupleInBucket(b, [&](const TupleRef& t, Rid) {
        const int64_t a = t.GetRawInt(1);
        bool match = false;
        for (int64_t v : s_vals) {
          if (expr::CompareInt(a, op, v)) {
            match = true;
            break;
          }
        }
        if (!match) return;
        std::string row;
        for (size_t c = 0; c < r->schema().num_fields(); ++c) {
          row += t.GetValue(c).ToString();
          row += '|';
        }
        expected.push_back(std::move(row));
      }));
    }
    EXPECT_EQ(Drain(join.get()), expected) << static_cast<int>(op);
  }
}

TEST_F(SemiJoinOpFixture, EmptySYieldsNothing) {
  storage::Table* empty = Unwrap(
      db.catalog.CreateTable("s_empty", testing::SyntheticSchema(), {}));
  for (CmpOp op : {CmpOp::kEq, CmpOp::kLe, CmpOp::kNe}) {
    auto join = Unwrap(SmaSemiJoin::Make(r, 1, op, empty, 1, r_smas.get()));
    EXPECT_TRUE(Drain(join.get()).empty());
  }
}

}  // namespace
}  // namespace smadb::exec
