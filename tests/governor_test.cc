// Governor tests: the query-lifecycle contract of DESIGN.md §10.
//
// The contract under test: a governed query either finishes, returns a typed
// error (kCancelled, kDeadlineExceeded, kResourceExhausted naming the
// offending component), or returns an explicitly `degraded` partial answer —
// never a hang, never a silent wrong answer. Generous limits must be
// bit-identical to the ungoverned engine.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "db/admission.h"
#include "db/database.h"
#include "exec/join.h"
#include "exec/sort.h"
#include "planner/planner.h"
#include "tests/test_util.h"
#include "util/fault.h"
#include "util/query_context.h"
#include "util/thread_pool.h"

namespace smadb {
namespace {

using db::AdmissionController;
using exec::AggSpec;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using plan::AggQuery;
using plan::PlanChoice;
using plan::PlanKind;
using plan::Planner;
using plan::PlannerOptions;
using plan::QueryResult;
using plan::RunToCompletion;
using plan::SelectQuery;
using sma::SmaSpec;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::CancelToken;
using util::MemoryTracker;
using util::QueryContext;
using util::Status;
using util::StatusCode;
using util::ThreadPool;
using util::Value;

struct GovernorTest : ::testing::Test {
  ~GovernorTest() override { util::fault::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// CancelToken.

TEST_F(GovernorTest, CancelTripsTheTokenAtTheNamedCheckpoint) {
  CancelToken token;
  ExpectOk(token.Check("TableScan"));
  EXPECT_FALSE(token.ShouldStop());
  token.Cancel();
  EXPECT_TRUE(token.ShouldStop());
  const Status s = token.Check("TableScan");
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_NE(s.message().find("TableScan"), std::string::npos);
}

TEST_F(GovernorTest, ExpiredDeadlineIsDeadlineExceeded) {
  CancelToken token;
  token.SetTimeout(std::chrono::milliseconds(0));  // trips immediately
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.deadline_expired());
  const Status s = token.Check("GAggr");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(s.message().find("GAggr"), std::string::npos);

  // Lifting the deadline (the degraded-run grace period) clears it...
  token.ClearDeadline();
  ExpectOk(token.Check("GAggr"));
  // ...but a user cancel stays in force through ClearDeadline.
  token.Cancel();
  token.ClearDeadline();
  EXPECT_EQ(token.Check("GAggr").code(), StatusCode::kCancelled);
}

TEST_F(GovernorTest, FutureDeadlineDoesNotTrip) {
  CancelToken token;
  token.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.ShouldStop());
  ExpectOk(token.Check("anywhere"));
}

TEST_F(GovernorTest, CancelFailpointDeliversCancelAtExactSite) {
  CancelToken token;
  util::fault::Arm("governor.cancel", {.count = 1, .file_filter = "GAggr"});
  ExpectOk(token.Check("TableScan"));  // filter mismatch: not delivered
  EXPECT_EQ(token.Check("GAggr").code(), StatusCode::kCancelled);
  // The injected cancel is a real cancel: it persists.
  EXPECT_EQ(token.Check("TableScan").code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// MemoryTracker.

TEST_F(GovernorTest, ChargeWithinLimitThenRejectNamingComponent) {
  MemoryTracker t("query", 1000);
  ExpectOk(t.TryCharge(600, "GroupTable"));
  EXPECT_EQ(t.used(), 600u);
  const Status s = t.TryCharge(500, "GroupTable");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("GroupTable"), std::string::npos);
  EXPECT_NE(s.message().find("query"), std::string::npos);
  EXPECT_EQ(t.used(), 600u) << "rejected charge must not stick";
  t.Release(600, "GroupTable");
  EXPECT_EQ(t.used(), 0u);
  EXPECT_EQ(t.peak(), 600u);
}

TEST_F(GovernorTest, HierarchicalChargeFlowsToParentAndRollsBack) {
  MemoryTracker global("global", 1000);
  MemoryTracker query("query", 0, &global);  // bounded only by the parent
  ExpectOk(query.TryCharge(800, "Sort"));
  EXPECT_EQ(global.used(), 800u);
  // Parent rejection must roll the child back too.
  const Status s = query.TryCharge(300, "Sort");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(query.used(), 800u);
  EXPECT_EQ(global.used(), 800u);
  query.ReleaseAll();
  EXPECT_EQ(query.used(), 0u);
  EXPECT_EQ(global.used(), 0u) << "ReleaseAll must return the parent's share";
}

TEST_F(GovernorTest, BreakdownNamesEveryComponent) {
  MemoryTracker t("query", 0);
  ExpectOk(t.TryCharge(2048, "GroupTable"));
  ExpectOk(t.TryCharge(4096, "ColumnBatch"));
  const std::string b = t.Breakdown();
  EXPECT_NE(b.find("GroupTable"), std::string::npos) << b;
  EXPECT_NE(b.find("ColumnBatch"), std::string::npos) << b;
}

TEST_F(GovernorTest, ChargeFailpointTargetsOneComponent) {
  MemoryTracker t("query", 0);  // unlimited: only the failpoint can reject
  util::fault::Arm("governor.charge", {.file_filter = "GroupTable"});
  ExpectOk(t.TryCharge(64, "ColumnBatch"));
  const Status s = t.TryCharge(64, "GroupTable");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(t.used(), 64u) << "injected rejection must not charge";
}

// ---------------------------------------------------------------------------
// ParallelFor cancellation: no new morsel after the token trips, clean drain.

TEST_F(GovernorTest, ParallelForStopsClaimingAfterCancelAndDrainsCleanly) {
  ThreadPool pool(3);
  CancelToken token;
  std::atomic<uint64_t> calls{0};
  const uint64_t kEnd = 1 << 20;
  const Status s = pool.ParallelFor(
      0, kEnd, /*dop=*/4,
      [&](size_t, uint64_t) {
        if (calls.fetch_add(1) == 256) token.Cancel();
        return Status::OK();
      },
      &token);
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s.ToString();
  const uint64_t at_return = calls.load();
  EXPECT_LT(at_return, kEnd) << "cancel must stop the loop early";
  // Clean drain: by the time ParallelFor returns, every worker has exited
  // fn. No straggler may touch caller state afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(calls.load(), at_return) << "worker ran fn after ParallelFor";
}

TEST_F(GovernorTest, ParallelForWithExpiredDeadlineClaimsNothing) {
  ThreadPool pool(3);
  CancelToken token;
  token.SetTimeout(std::chrono::milliseconds(0));
  std::atomic<uint64_t> calls{0};
  const Status s = pool.ParallelFor(
      0, 1024, /*dop=*/4,
      [&](size_t, uint64_t) {
        calls.fetch_add(1);
        return Status::OK();
      },
      &token);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  EXPECT_EQ(calls.load(), 0u) << "no morsel may be scheduled post-expiry";
}

TEST_F(GovernorTest, ParallelForCompletedRangeIgnoresLateCancel) {
  ThreadPool pool(3);
  CancelToken token;
  std::atomic<uint64_t> calls{0};
  ExpectOk(pool.ParallelFor(
      0, 1000, /*dop=*/4,
      [&](size_t, uint64_t) {
        calls.fetch_add(1);
        return Status::OK();
      },
      &token));
  EXPECT_EQ(calls.load(), 1000u);
}

TEST_F(GovernorTest, ParallelForSerialPathObservesToken) {
  ThreadPool pool(0);
  CancelToken token;
  uint64_t calls = 0;
  const Status s = pool.ParallelFor(
      0, 1000, /*dop=*/1,
      [&](size_t, uint64_t) {
        if (++calls == 10) token.Cancel();
        return Status::OK();
      },
      &token);
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(calls, 10u);
}

// ---------------------------------------------------------------------------
// Deadline expiry through every operator / plan shape.

struct GovernorPlanTest : GovernorTest {
  void Setup(testing::Layout layout, const std::string& name) {
    table = MakeSyntheticTable(&db, 4000, layout, /*seed=*/11,
                               /*bucket_pages=*/1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, SmaSpec::Count("cnt", {3})))));
    query.table = table;
    query.group_by = {3};
    query.aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt")};
  }

  PredicatePtr DatePred(CmpOp op, int32_t day) {
    return Unwrap(Predicate::AtomConst(&table->schema(), "d", op,
                                       Value::MakeDate(util::Date(day))));
  }

  /// A context whose deadline already expired when the query starts.
  static void Expire(QueryContext* ctx) {
    ctx->cancel()->SetTimeout(std::chrono::milliseconds(0));
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  AggQuery query;
};

TEST_F(GovernorPlanTest, ExpiredDeadlineFailsEveryPlanShape) {
  Setup(testing::Layout::kClustered, "g1");
  query.pred = DatePred(CmpOp::kLe, 40);
  for (const size_t batch_size : {size_t{0}, exec::kDefaultBatchSize}) {
    for (const size_t dop : {size_t{1}, size_t{4}}) {
      PlannerOptions options;
      options.batch_size = batch_size;
      Planner planner(smas.get(), options);
      for (PlanKind kind : {PlanKind::kScanAggr, PlanKind::kSmaScanAggr,
                            PlanKind::kSmaGAggr}) {
        auto op = Unwrap(planner.Build(query, kind, dop));
        QueryContext ctx;
        Expire(&ctx);
        op->BindContext(&ctx);
        const auto run = RunToCompletion(op.get(), &ctx);
        ASSERT_FALSE(run.ok())
            << plan::PlanKindToString(kind) << " bs=" << batch_size;
        EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
            << plan::PlanKindToString(kind) << " bs=" << batch_size
            << " dop=" << dop << ": " << run.status().ToString();
      }
    }
  }
}

TEST_F(GovernorPlanTest, ExpiredDeadlineFailsSelectionPlans) {
  Setup(testing::Layout::kClustered, "g2");
  SelectQuery sel;
  sel.table = table;
  sel.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  QueryContext ctx;
  Expire(&ctx);
  const auto run = planner.ExecuteSelect(sel, &ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(GovernorPlanTest, ExpiredDeadlineFailsSortAndJoin) {
  Setup(testing::Layout::kClustered, "g3");
  {
    auto scan = std::make_unique<exec::TableScan>(table, Predicate::True());
    auto sort = Unwrap(exec::Sort::Make(std::move(scan), {{0, false}}));
    QueryContext ctx;
    Expire(&ctx);
    sort->BindContext(&ctx);
    EXPECT_EQ(sort->Init().code(), StatusCode::kDeadlineExceeded);
  }
  {
    auto left = std::make_unique<exec::TableScan>(table, Predicate::True());
    auto right = std::make_unique<exec::TableScan>(table, Predicate::True());
    auto join = Unwrap(
        exec::HashJoin::Make(std::move(left), 0, std::move(right), 0));
    QueryContext ctx;
    Expire(&ctx);
    join->BindContext(&ctx);
    EXPECT_EQ(join->Init().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST_F(GovernorPlanTest, UserCancelSurfacesAsCancelled) {
  Setup(testing::Layout::kClustered, "g4");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  QueryContext ctx;
  ctx.cancel()->Cancel();
  const auto run = planner.Execute(query, &ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// Memory budgets: the failing component is named; the ladder recovers when
// a cheaper mode exists.

TEST_F(GovernorPlanTest, GroupTableBudgetExhaustionNamesGroupTable) {
  Setup(testing::Layout::kClustered, "g5");
  // Group by the unique key: the GroupTable grows with every row.
  query.group_by = {0};
  query.pred = Predicate::True();
  PlannerOptions options;
  options.batch_size = 0;  // row mode: no ColumnBatch to charge first
  Planner planner(/*smas=*/nullptr, options);
  auto op = Unwrap(planner.Build(query, PlanKind::kScanAggr, 1));
  QueryContext ctx(/*global_memory=*/nullptr, /*memory_limit=*/32 * 1024);
  op->BindContext(&ctx);
  const auto run = RunToCompletion(op.get(), &ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(run.status().message().find("GroupTable"), std::string::npos)
      << run.status().ToString();
}

TEST_F(GovernorPlanTest, ColumnBatchBudgetExhaustionNamesColumnBatch) {
  Setup(testing::Layout::kClustered, "g6");
  query.pred = Predicate::True();
  Planner planner(/*smas=*/nullptr);  // vectorized by default
  auto op = Unwrap(planner.Build(query, PlanKind::kScanAggr, 1));
  QueryContext ctx(/*global_memory=*/nullptr, /*memory_limit=*/512);
  op->BindContext(&ctx);
  const auto run = RunToCompletion(op.get(), &ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(run.status().message().find("ColumnBatch"), std::string::npos)
      << run.status().ToString();
}

TEST_F(GovernorPlanTest, LadderDemotesVectorizedToRowModeAndRecovers) {
  Setup(testing::Layout::kClustered, "g7");
  query.pred = DatePred(CmpOp::kLe, 40);
  // Reference: ungoverned row-mode answer.
  PlannerOptions row;
  row.batch_size = 0;
  const QueryResult want =
      Unwrap(Planner(smas.get(), row).Execute(query));
  // Budget too small for a column batch but fine for 3 groups of rows.
  Planner planner(smas.get());
  QueryContext ctx(/*global_memory=*/nullptr, /*memory_limit=*/6 * 1024);
  const QueryResult got = Unwrap(planner.Execute(query, &ctx));
  EXPECT_EQ(got.ToString(), want.ToString());
  EXPECT_FALSE(got.plan.degraded) << "row mode is exact, not degraded";
  EXPECT_NE(got.plan.explanation.find("row mode"), std::string::npos)
      << got.plan.explanation;
}

TEST_F(GovernorPlanTest, BottomRungAnswersFromSmasAloneMarkedDegraded) {
  Setup(testing::Layout::kClustered, "g8");
  query.pred = DatePred(CmpOp::kLe, 40);
  PlannerOptions options;
  options.batch_size = 0;  // skip rung 2 so rung 3 is exercised directly
  Planner planner(smas.get(), options);
  // Confirm the plan is SMA_GAggr, then make every GroupTable charge of the
  // first run fail; the degraded rerun (failpoint spent) succeeds.
  ASSERT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);
  util::fault::Arm("governor.charge",
                   {.count = 1, .file_filter = "GroupTable"});
  QueryContext ctx;
  const QueryResult got = Unwrap(planner.Execute(query, &ctx));
  EXPECT_TRUE(got.plan.degraded);
  EXPECT_EQ(got.plan.kind, PlanKind::kSmaGAggr);
  EXPECT_NE(got.plan.explanation.find("partial:"), std::string::npos)
      << got.plan.explanation;
  EXPECT_NE(got.plan.explanation.find("SMA-only"), std::string::npos)
      << got.plan.explanation;
  EXPECT_FALSE(got.rows.empty()) << "qualifying buckets still answer";
}

TEST_F(GovernorPlanTest, AllowDegradedOffPropagatesTheTypedError) {
  Setup(testing::Layout::kClustered, "g9");
  query.pred = DatePred(CmpOp::kLe, 40);
  PlannerOptions options;
  options.batch_size = 0;
  options.allow_degraded = false;
  Planner planner(smas.get(), options);
  util::fault::Arm("governor.charge", {.file_filter = "GroupTable"});
  QueryContext ctx;
  const auto run = planner.Execute(query, &ctx);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GovernorPlanTest, GenerousLimitsAreBitIdenticalToUngoverned) {
  Setup(testing::Layout::kNoisy, "g10");
  query.pred = DatePred(CmpOp::kLe, 120);
  for (const size_t batch_size : {size_t{0}, exec::kDefaultBatchSize}) {
    PlannerOptions options;
    options.batch_size = batch_size;
    Planner planner(smas.get(), options);
    const QueryResult want = Unwrap(planner.Execute(query));
    QueryContext ctx(/*global_memory=*/nullptr,
                     /*memory_limit=*/size_t{1} << 30);
    ctx.cancel()->SetTimeout(std::chrono::hours(1));
    const QueryResult got = Unwrap(planner.Execute(query, &ctx));
    EXPECT_EQ(got.ToString(), want.ToString()) << "bs=" << batch_size;
    EXPECT_FALSE(got.plan.degraded);
  }
}

// ---------------------------------------------------------------------------
// AdmissionController.

TEST_F(GovernorTest, AdmissionOffIsInert) {
  AdmissionController admission;  // max_concurrent = 0: disabled
  for (int i = 0; i < 8; ++i) {
    auto slot = Unwrap(admission.Admit());
  }
  EXPECT_EQ(admission.running(), 0u);
  EXPECT_EQ(admission.admitted_total(), 0u);
}

TEST_F(GovernorTest, AdmissionBoundedWaitTimesOut) {
  AdmissionController admission(
      {.max_concurrent = 1,
       .max_queued = 4,
       .max_wait = std::chrono::milliseconds(60),
       .wait_quantum = std::chrono::milliseconds(1)});
  auto held = Unwrap(admission.Admit());
  EXPECT_EQ(admission.running(), 1u);
  const auto t0 = std::chrono::steady_clock::now();
  const auto second = admission.Admit();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().message().find("timed out"), std::string::npos);
  EXPECT_LT(elapsed, std::chrono::seconds(2)) << "bounded wait must bound";
  EXPECT_EQ(admission.timed_out_total(), 1u);
  held.Release();
  auto third = Unwrap(admission.Admit());  // slot is reusable after release
  EXPECT_EQ(admission.running(), 1u);
}

TEST_F(GovernorTest, AdmissionFullQueueShedsImmediately) {
  AdmissionController admission({.max_concurrent = 1, .max_queued = 0});
  auto held = Unwrap(admission.Admit());
  const auto t0 = std::chrono::steady_clock::now();
  const auto shed = admission.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(shed.status().message().find("load shed"), std::string::npos);
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::seconds(1));
  EXPECT_EQ(admission.shed_total(), 1u);
}

TEST_F(GovernorTest, AdmissionIsFifoByArrival) {
  AdmissionController admission(
      {.max_concurrent = 1,
       .max_queued = 4,
       .max_wait = std::chrono::seconds(10),
       .wait_quantum = std::chrono::milliseconds(1)});
  auto held = Unwrap(admission.Admit());

  std::vector<int> order;
  std::mutex order_mu;
  auto contender = [&](int id) {
    auto slot = Unwrap(admission.Admit());
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(id);
  };
  std::thread t1(contender, 1);
  while (admission.queued() < 1) std::this_thread::yield();
  std::thread t2(contender, 2);
  while (admission.queued() < 2) std::this_thread::yield();

  held.Release();  // head of the queue (t1) must win the freed slot
  t1.join();
  t2.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(admission.admitted_total(), 3u);
  EXPECT_EQ(admission.running(), 0u);
  EXPECT_EQ(admission.queued(), 0u);
}

TEST_F(GovernorTest, AdmissionSessionReentryCannotSelfDeadlock) {
  AdmissionController admission(
      {.max_concurrent = 1,
       .max_queued = 4,
       .max_wait = std::chrono::milliseconds(150),
       .wait_quantum = std::chrono::milliseconds(1)});
  auto first = Unwrap(admission.Admit(/*session_id=*/7));
  EXPECT_EQ(admission.running(), 1u);

  // The same session holds the only slot: a second Admit must be granted
  // immediately (re-entrant), not queued behind itself until timeout.
  const auto t0 = std::chrono::steady_clock::now();
  auto second = Unwrap(admission.Admit(7));
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(100));
  EXPECT_EQ(admission.running(), 1u) << "one session = one running slot";

  // A different session still honors the cap.
  const auto other = admission.Admit(9);
  ASSERT_FALSE(other.ok());
  EXPECT_EQ(other.status().code(), StatusCode::kResourceExhausted);

  // The slot frees only when the session's last grant releases.
  second.Release();
  EXPECT_EQ(admission.running(), 1u);
  first.Release();
  EXPECT_EQ(admission.running(), 0u);
  auto after = Unwrap(admission.Admit(9));
  EXPECT_EQ(admission.running(), 1u);
}

TEST_F(GovernorTest, AdmissionSessionReentryDoesNotStarveTheQueue) {
  AdmissionController admission(
      {.max_concurrent = 1,
       .max_queued = 4,
       .max_wait = std::chrono::seconds(10),
       .wait_quantum = std::chrono::milliseconds(1)});
  auto held = Unwrap(admission.Admit(/*session_id=*/7));

  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&] {
    auto slot = Unwrap(admission.Admit(/*session_id=*/9));
    waiter_admitted.store(true);
  });
  while (admission.queued() < 1) std::this_thread::yield();

  // Session 7 re-enters and releases repeatedly while 9 waits; re-entrant
  // grants ride the held slot, so they neither jump the queue nor free it.
  for (int i = 0; i < 16; ++i) {
    auto again = Unwrap(admission.Admit(7));
    EXPECT_FALSE(waiter_admitted.load());
  }
  EXPECT_EQ(admission.queued(), 1u);

  held.Release();  // last grant gone: the queued session wins the slot
  waiter.join();
  EXPECT_TRUE(waiter_admitted.load());
  EXPECT_EQ(admission.running(), 0u);
}

// ---------------------------------------------------------------------------
// Database facade: knobs, per-query governor, explain.

struct GovernorDbTest : GovernorTest {
  explicit GovernorDbTest(int64_t rows = 4000,
                          testing::Layout layout = testing::Layout::kRandom) {
    table = Unwrap(database.CreateTable("t", testing::SyntheticSchema()));
    storage::TupleBuffer buf(&table->schema());
    util::Rng rng(7);
    static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
    for (int64_t i = 0; i < rows; ++i) {
      const int32_t day =
          layout == testing::Layout::kClustered
              ? static_cast<int32_t>(i / 8)
              : static_cast<int32_t>(rng.Uniform(0, rows / 8));
      buf.SetInt64(0, i);
      buf.SetDate(1, util::Date(day));
      buf.SetDecimal(2, util::Decimal(i * 3));
      const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 2)), 0};
      buf.SetString(3, grp);
      buf.SetString(4, kTags[rng.Uniform(0, 3)]);
      ExpectOk(database.Insert("t", buf));
    }
  }

  db::Database database;
  storage::Table* table = nullptr;
};

TEST_F(GovernorDbTest, SessionKnobsParseAndApply) {
  ExpectOk(database.Execute("set timeout_ms = 50"));
  EXPECT_EQ(database.timeout_ms(), 50);
  ExpectOk(database.Execute("set memory_limit = 1048576"));
  EXPECT_EQ(database.query_memory_limit(), 1048576u);
  ExpectOk(database.Execute("set max_concurrent_queries = 3"));
  EXPECT_EQ(database.max_concurrent_queries(), 3u);
  ExpectOk(database.Execute("set allow_degraded = 0"));
  EXPECT_FALSE(database.options().planner.allow_degraded);
  ExpectOk(database.Execute("set allow_degraded = 1"));
  EXPECT_TRUE(database.options().planner.allow_degraded);
  EXPECT_EQ(database.Execute("set no_such_knob = 1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(database.Execute("set timeout_ms = banana").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GovernorDbTest, GovernedQueryMatchesUngovernedBitForBit) {
  const std::string sql =
      "select grp, sum(v) as total, count(*) as n from t group by grp";
  const QueryResult want = Unwrap(database.Query(sql));
  ExpectOk(database.Execute("set timeout_ms = 3600000"));
  ExpectOk(database.Execute("set memory_limit = 1073741824"));
  ExpectOk(database.Execute("set max_concurrent_queries = 4"));
  const QueryResult got = Unwrap(database.Query(sql));
  EXPECT_EQ(got.ToString(), want.ToString());
  EXPECT_FALSE(got.plan.degraded);
  EXPECT_NE(got.plan.explanation.find("governor:"), std::string::npos)
      << got.plan.explanation;
}

TEST_F(GovernorDbTest, ExpiredExternalDeadlineFailsFastOnFullScan) {
  // The acceptance shape: an all-ambivalent full scan at dop >= 4 under an
  // expired deadline returns kDeadlineExceeded well under a second.
  ExpectOk(database.Execute("set dop = 4"));
  auto token = std::make_shared<CancelToken>();
  token->SetTimeout(std::chrono::milliseconds(0));
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = database.Query(
      "select grp, sum(v) as total from t group by grp", token);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
      << run.status().ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST_F(GovernorDbTest, ExternalCancelTokenCancelsTheQuery) {
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  const auto run = database.Query("select sum(v) as s from t", token);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled);
}

TEST_F(GovernorDbTest, SessionTimeoutKnobGovernsQueries) {
  // timeout_ms arms a deadline per query; 0 disarms it again.
  ExpectOk(database.Execute("set timeout_ms = 1"));
  // A deadline this tight on a 4000-row scan may or may not expire on a
  // fast machine — both outcomes are within contract; what is not allowed
  // is any other error or a hang.
  const auto run = database.Query("select sum(v) as s from t");
  if (!run.ok()) {
    EXPECT_EQ(run.status().code(), StatusCode::kDeadlineExceeded)
        << run.status().ToString();
  }
  ExpectOk(database.Execute("set timeout_ms = 0"));
  const QueryResult ok = Unwrap(database.Query("select sum(v) as s from t"));
  EXPECT_EQ(ok.rows.size(), 1u);
}

TEST_F(GovernorDbTest, AdmissionShedsWhenSaturated) {
  ExpectOk(database.Execute("set max_concurrent_queries = 1"));
  // Hold the only slot directly; the query must be rejected, not hung.
  database.admission()->SetMaxQueued(0);
  auto held = Unwrap(database.admission()->Admit());
  const auto t0 = std::chrono::steady_clock::now();
  const auto run = database.Query("select count(*) as n from t");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(run.status().message().find("load shed"), std::string::npos);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(1));
  held.Release();
  auto ok = Unwrap(database.Query("select count(*) as n from t"));
  EXPECT_EQ(ok.rows.size(), 1u);
}

TEST_F(GovernorDbTest, ExplainReportsPlanAndGovernor) {
  ExpectOk(database.Execute("set timeout_ms = 60000"));
  ExpectOk(database.Execute("set memory_limit = 1048576"));
  const QueryResult result = Unwrap(
      database.Query("explain select grp, sum(v) as s from t group by grp"));
  ASSERT_FALSE(result.rows.empty());
  ASSERT_EQ(result.schema->num_fields(), 1u);
  EXPECT_EQ(result.schema->field(0).name, "explain");
  const std::string text = result.ToString();
  EXPECT_NE(text.find("plan: "), std::string::npos) << text;
  EXPECT_NE(text.find("buckets: "), std::string::npos) << text;
  EXPECT_NE(text.find("dop: "), std::string::npos) << text;
  EXPECT_NE(text.find("governor:"), std::string::npos) << text;
  EXPECT_NE(text.find("deadline=60000ms"), std::string::npos) << text;
  EXPECT_NE(text.find("memory_limit=1.0 MB"), std::string::npos) << text;
}

TEST_F(GovernorDbTest, ExplainOfDegradedQueryShowsTheMarker) {
  // Clustered twin database so the plan is SMA_GAggr, then starve the
  // GroupTable of the first (exact) run: explain shows the degraded rung.
  db::DatabaseOptions options;
  options.planner.batch_size = 0;
  db::Database clustered(options);
  storage::Table* t = Unwrap(
      clustered.CreateTable("t", testing::SyntheticSchema()));
  storage::TupleBuffer buf(&t->schema());
  for (int64_t i = 0; i < 4000; ++i) {
    buf.SetInt64(0, i);
    buf.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
    buf.SetDecimal(2, util::Decimal(i * 3));
    const char grp[2] = {static_cast<char>('A' + (i % 3)), 0};
    buf.SetString(3, grp);
    buf.SetString(4, "MAIL");
    ExpectOk(clustered.Insert("t", buf));
  }
  ExpectOk(clustered.Execute("define sma mn select min(d) from t"));
  ExpectOk(clustered.Execute("define sma mx select max(d) from t"));
  ExpectOk(clustered.Execute(
      "define sma sums select sum(v) from t group by grp"));
  ExpectOk(clustered.Execute(
      "define sma cnts select count(*) from t group by grp"));
  util::fault::Arm("governor.charge",
                   {.count = 1, .file_filter = "GroupTable"});
  const QueryResult result = Unwrap(clustered.Query(
      "explain select grp, sum(v) as s, count(*) as n from t "
      "where d <= '1970-02-10' group by grp"));
  const std::string text = result.ToString();
  EXPECT_TRUE(result.plan.degraded) << text;
  EXPECT_NE(text.find("degraded"), std::string::npos) << text;
  EXPECT_NE(text.find("partial:"), std::string::npos) << text;
}

}  // namespace
}  // namespace smadb
