// Morsel-parallel execution tests:
//
//   * ThreadPool        — ParallelFor coverage, inline dop=1, error
//                         propagation, shared-pool identity.
//   * BufferPool        — many threads fetching/evicting through one pool
//                         smaller than the working set.
//   * DOP equivalence   — the property the refactor rests on: for random
//                         predicates over a generated LINEITEM sample,
//                         every plan produces identical rows and an
//                         identical bucket census at DOP 1, 2, and 8.
//   * Planner/Database  — per-plan DOP choice, `set dop = n`.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "db/database.h"
#include "exec/parallel_aggr.h"
#include "exec/sma_gaggr.h"
#include "planner/planner.h"
#include "tests/test_util.h"
#include "tpch/loader.h"
#include "util/thread_pool.h"
#include "workloads/q1.h"

namespace smadb {
namespace {

using exec::ParallelScanAggr;
using exec::SmaGAggr;
using exec::SmaScanStats;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using storage::TupleRef;
using testing::ExpectOk;
using testing::TestDb;
using testing::Unwrap;
using util::Status;
using util::ThreadPool;
using util::Value;

// ------------------------------------------------------------ ThreadPool --

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr uint64_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  ExpectOk(pool.ParallelFor(0, kN, 8, [&](size_t w, uint64_t i) {
    EXPECT_LT(w, 8u);
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }));
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, DopOneRunsInlineOnTheCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  uint64_t count = 0;
  ExpectOk(pool.ParallelFor(10, 20, 1, [&](size_t w, uint64_t i) {
    EXPECT_EQ(w, 0u);
    EXPECT_GE(i, 10u);
    EXPECT_LT(i, 20u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;
    return Status::OK();
  }));
  EXPECT_EQ(count, 10u);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  ExpectOk(pool.ParallelFor(5, 5, 4, [&](size_t, uint64_t) {
    ADD_FAILURE() << "called on empty range";
    return Status::OK();
  }));
}

TEST(ThreadPoolTest, FirstErrorIsPropagated) {
  ThreadPool pool(4);
  const Status s = pool.ParallelFor(0, 1000, 4, [&](size_t, uint64_t i) {
    if (i == 137) return Status::Internal("morsel 137 failed");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("morsel 137 failed"), std::string::npos);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1u);
}

// ------------------------------------------------ concurrent BufferPool --

TEST(BufferPoolConcurrencyTest, ParallelScansThroughTinyPoolSeeEveryTuple) {
  // A pool far smaller than the table: constant concurrent eviction.
  TestDb db(32);
  constexpr int64_t kRows = 20000;
  storage::Table* t = testing::MakeSyntheticTable(&db, kRows,
                                                  testing::Layout::kRandom,
                                                  /*seed=*/3);
  ASSERT_GT(t->num_pages(), 32u) << "table must not fit in the pool";
  db.pool.ResetStats();

  ThreadPool pool(8);
  std::atomic<int64_t> tuples{0};
  std::atomic<int64_t> key_sum{0};
  ExpectOk(pool.ParallelFor(0, t->num_buckets(), 8, [&](size_t, uint64_t b) {
    int64_t local_tuples = 0;
    int64_t local_sum = 0;
    SMADB_RETURN_NOT_OK(t->ForEachTupleInBucket(
        static_cast<uint32_t>(b), [&](const TupleRef& tup, storage::Rid) {
          ++local_tuples;
          local_sum += tup.GetValue(0).AsInt64();
        }));
    tuples.fetch_add(local_tuples, std::memory_order_relaxed);
    key_sum.fetch_add(local_sum, std::memory_order_relaxed);
    return Status::OK();
  }));

  EXPECT_EQ(tuples.load(), kRows);
  EXPECT_EQ(key_sum.load(), kRows * (kRows - 1) / 2);  // keys are 0..n-1
  const storage::PoolStats stats = db.pool.stats();
  EXPECT_GT(stats.evictions, 0u) << "pool never evicted: not under pressure";
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(t->num_pages()));
}

TEST(BufferPoolConcurrencyTest, RepeatedParallelReadsStayConsistent) {
  TestDb db(64);
  storage::Table* t = testing::MakeSyntheticTable(&db, 2000,
                                                  testing::Layout::kClustered,
                                                  /*seed=*/17);
  ThreadPool pool(8);
  for (int round = 0; round < 4; ++round) {
    std::atomic<int64_t> tuples{0};
    ExpectOk(pool.ParallelFor(0, t->num_buckets(), 8,
                              [&](size_t, uint64_t b) {
                                int64_t local = 0;
                                SMADB_RETURN_NOT_OK(t->ForEachTupleInBucket(
                                    static_cast<uint32_t>(b),
                                    [&](const TupleRef&, storage::Rid) {
                                      ++local;
                                    }));
                                tuples.fetch_add(local);
                                return Status::OK();
                              }));
    ASSERT_EQ(tuples.load(), 2000) << "round " << round;
  }
}

// ---------------------------------------------------- DOP equivalence ----

std::vector<std::string> DrainSorted(exec::Operator* op) {
  ExpectOk(op->Init());
  std::vector<std::string> rows;
  TupleRef t;
  while (true) {
    auto has = op->Next(&t);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!has.ok() || !*has) break;
    std::string row;
    for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
      row += t.GetValue(c).ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SameCensus(const SmaScanStats& a, const SmaScanStats& b) {
  return a.qualifying_buckets == b.qualifying_buckets &&
         a.disqualifying_buckets == b.disqualifying_buckets &&
         a.ambivalent_buckets == b.ambivalent_buckets;
}

/// LINEITEM sample (~6k rows, diagonal clustering) with the Fig. 4 SMAs.
struct LineItemFixture {
  TestDb db{16384};
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;

  LineItemFixture() {
    tpch::DbgenOptions gen;
    gen.scale_factor = 0.001;
    tpch::LoadOptions load;
    load.mode = tpch::ClusterMode::kDiagonal;
    load.bucket_pages = 2;
    table = Unwrap(tpch::GenerateAndLoadLineItem(&db.catalog, gen, load));
    smas = std::make_unique<sma::SmaSet>(table);
    ExpectOk(workloads::BuildQ1Smas(table, smas.get()));
  }
};

TEST(DopEquivalenceTest, RandomPredicatesSameRowsAndCensusAcrossDop) {
  LineItemFixture fx;
  plan::AggQuery query = Unwrap(workloads::MakeQ1Query(fx.table));

  // Random shipdate predicates spanning never / sometimes / always true.
  util::Rng rng(0xD0B);
  const CmpOp ops[] = {CmpOp::kLe, CmpOp::kGt, CmpOp::kLt, CmpOp::kGe};
  for (int trial = 0; trial < 6; ++trial) {
    const int32_t day =
        tpch::kStartDate.days() +
        static_cast<int32_t>(rng.Uniform(-30, 2600));
    const CmpOp op = ops[rng.Uniform(0, 3)];
    query.pred = Unwrap(Predicate::AtomConst(
        &fx.table->schema(), "l_shipdate", op,
        Value::MakeDate(util::Date(day))));

    // SMA_GAggr at DOP 1 (the pre-refactor serial engine) is the reference.
    exec::SmaGAggrOptions serial_opts;
    auto reference = Unwrap(SmaGAggr::Make(fx.table, query.pred,
                                           query.group_by, query.aggs,
                                           fx.smas.get(), serial_opts));
    const std::vector<std::string> want_rows = DrainSorted(reference.get());
    const SmaScanStats want_census = reference->stats();

    for (size_t dop : {size_t{1}, size_t{2}, size_t{8}}) {
      exec::SmaGAggrOptions opts;
      opts.degree_of_parallelism = dop;
      auto gaggr = Unwrap(SmaGAggr::Make(fx.table, query.pred,
                                         query.group_by, query.aggs,
                                         fx.smas.get(), opts));
      EXPECT_EQ(DrainSorted(gaggr.get()), want_rows)
          << "SMA_GAggr trial " << trial << " dop " << dop;
      EXPECT_TRUE(SameCensus(gaggr->stats(), want_census))
          << "SMA_GAggr census trial " << trial << " dop " << dop;

      auto scan_aggr = Unwrap(ParallelScanAggr::Make(
          fx.table, query.pred, query.group_by, query.aggs, fx.smas.get(), dop));
      EXPECT_EQ(DrainSorted(scan_aggr.get()), want_rows)
          << "ParallelScanAggr trial " << trial << " dop " << dop;
      EXPECT_TRUE(SameCensus(scan_aggr->stats(), want_census))
          << "ParallelScanAggr census trial " << trial << " dop " << dop;

      // Without SMAs: full parallel scan, same rows (census all-ambivalent).
      auto full = Unwrap(ParallelScanAggr::Make(
          fx.table, query.pred, query.group_by, query.aggs,
          /*smas=*/nullptr, dop));
      EXPECT_EQ(DrainSorted(full.get()), want_rows)
          << "full-scan trial " << trial << " dop " << dop;
      EXPECT_EQ(full->stats().ambivalent_buckets, fx.table->num_buckets());
    }
  }
}

TEST(DopEquivalenceTest, PlannerBuildMatchesAcrossKindsAndDop) {
  LineItemFixture fx;
  plan::Planner planner(fx.smas.get());
  plan::AggQuery query = Unwrap(workloads::MakeQ1Query(fx.table));

  auto reference =
      Unwrap(planner.Build(query, plan::PlanKind::kScanAggr, /*dop=*/1));
  const std::vector<std::string> want = DrainSorted(reference.get());

  for (plan::PlanKind kind :
       {plan::PlanKind::kScanAggr, plan::PlanKind::kSmaScanAggr,
        plan::PlanKind::kSmaGAggr}) {
    for (size_t dop : {size_t{1}, size_t{2}, size_t{8}}) {
      auto op = Unwrap(planner.Build(query, kind, dop));
      EXPECT_EQ(DrainSorted(op.get()), want)
          << plan::PlanKindToString(kind) << " dop " << dop;
    }
  }
}

// ------------------------------------------------------ planner & db -----

TEST(PlannerDopTest, ChoiceReportsDopAndTinyTablesStaySerial) {
  TestDb db(4096);
  // 16 rows → one bucket: must stay serial whatever was requested.
  storage::Table* tiny = testing::MakeSyntheticTable(
      &db, 16, testing::Layout::kClustered, /*seed=*/5, /*bucket_pages=*/1,
      "tiny");
  sma::SmaSet smas(tiny);
  testing::AddMinMaxSmas(tiny, &smas, "d");

  plan::PlannerOptions options;
  options.degree_of_parallelism = 8;
  plan::Planner planner(&smas, options);

  plan::AggQuery query;
  query.table = tiny;
  query.pred = Predicate::True();
  query.aggs.push_back(exec::AggSpec::Count("n"));
  const plan::PlanChoice choice = Unwrap(planner.Choose(query));
  EXPECT_EQ(choice.dop, 1u) << choice.explanation;
  EXPECT_NE(choice.explanation.find("dop=1"), std::string::npos)
      << choice.explanation;
}

TEST(PlannerDopTest, LargeScanGetsRequestedDop) {
  LineItemFixture fx;
  plan::PlannerOptions options;
  options.degree_of_parallelism = 4;
  plan::Planner planner(nullptr, options);  // no SMAs → full scan

  plan::AggQuery query = Unwrap(workloads::MakeQ1Query(fx.table));
  const plan::PlanChoice choice = Unwrap(planner.Choose(query));
  EXPECT_EQ(choice.kind, plan::PlanKind::kScanAggr);
  EXPECT_EQ(choice.dop, 4u) << choice.explanation;

  // And execution at that DOP equals the serial result.
  plan::PlannerOptions serial;
  serial.degree_of_parallelism = 1;
  plan::Planner serial_planner(nullptr, serial);
  const plan::QueryResult parallel_result =
      Unwrap(planner.Execute(query));
  const plan::QueryResult serial_result =
      Unwrap(serial_planner.Execute(query));
  ASSERT_EQ(parallel_result.rows.size(), serial_result.rows.size());
  EXPECT_EQ(parallel_result.ToString(), serial_result.ToString());
}

TEST(PlannerDopTest, ExecuteSelectMirrorsExecute) {
  TestDb db(4096);
  storage::Table* t = testing::MakeSyntheticTable(
      &db, 4000, testing::Layout::kClustered, /*seed=*/23);
  sma::SmaSet smas(t);
  testing::AddMinMaxSmas(t, &smas, "d");
  plan::Planner planner(&smas);

  plan::SelectQuery query;
  query.table = t;
  query.pred = Unwrap(Predicate::AtomConst(&t->schema(), "d", CmpOp::kLe,
                                           Value::MakeDate(util::Date(30))));
  const plan::QueryResult result = Unwrap(planner.ExecuteSelect(query));
  EXPECT_EQ(result.plan.kind, plan::PlanKind::kSmaScan);
  EXPECT_FALSE(result.plan.explanation.empty());

  // Same rows as Choose + BuildSelect + RunToCompletion by hand.
  auto op = Unwrap(planner.BuildSelect(query, result.plan.kind));
  const plan::QueryResult manual = Unwrap(plan::RunToCompletion(op.get()));
  EXPECT_EQ(result.ToString(), manual.ToString());
}

TEST(DatabaseDopTest, SetDopStatementControlsSessionParallelism) {
  db::Database database;
  ExpectOk(database
               .CreateTable("t", testing::SyntheticSchema())
               .status());
  storage::TupleBuffer tuple(
      &Unwrap(database.GetTable("t"))->schema());
  for (int64_t i = 0; i < 500; ++i) {
    tuple.SetInt64(0, i);
    tuple.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
    tuple.SetDecimal(2, util::Decimal(i * 3));
    tuple.SetString(3, i % 2 == 0 ? "A" : "B");
    tuple.SetString(4, "MAIL");
    ExpectOk(database.Insert("t", tuple));
  }

  const std::string sql =
      "select grp, count(*), sum(v) from t where d <= '1970-01-31' "
      "group by grp";
  const plan::QueryResult serial = Unwrap(database.Query(sql));

  ExpectOk(database.Execute("set dop = 8"));
  EXPECT_EQ(database.degree_of_parallelism(), 8u);
  const plan::QueryResult parallel = Unwrap(database.Query(sql));
  EXPECT_EQ(serial.ToString(), parallel.ToString());

  ExpectOk(database.Execute("set dop = 0"));  // back to auto
  EXPECT_EQ(database.degree_of_parallelism(), 0u);

  EXPECT_FALSE(database.Execute("set dop = -1").ok());
  EXPECT_FALSE(database.Execute("set fanout = 2").ok());
}

}  // namespace
}  // namespace smadb
