// End-to-end integration: TPC-D Query 1 and Query 6 across clusterings and
// plans, the Fig. 4 SMA complement, and maintained mutation consistency.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "planner/planner.h"
#include "sma/maintenance.h"
#include "tests/test_util.h"
#include "tpch/loader.h"
#include "workloads/q1.h"
#include "workloads/q3.h"

namespace smadb {
namespace {

using plan::AggQuery;
using plan::Planner;
using plan::PlanKind;
using plan::QueryResult;
using plan::RunToCompletion;
using testing::ExpectOk;
using testing::TestDb;
using testing::Unwrap;

struct Q1Integration : ::testing::Test {
  Q1Integration() : db(32768) {}

  storage::Table* Load(tpch::ClusterMode mode, const std::string& name) {
    tpch::LoadOptions load;
    load.mode = mode;
    return Unwrap(tpch::GenerateAndLoadLineItem(&db.catalog, {0.004, 42},
                                                load, nullptr, name));
  }

  std::string Run(sma::SmaSet* smas, const AggQuery& q, PlanKind kind) {
    Planner planner(smas);
    auto op = Unwrap(planner.Build(q, kind));
    return Unwrap(RunToCompletion(op.get())).ToString();
  }

  TestDb db;
};

TEST_F(Q1Integration, Fig4SmaComplementHas26Files) {
  storage::Table* t = Load(tpch::ClusterMode::kShipdateSorted, "li");
  sma::SmaSet smas(t);
  ExpectOk(workloads::BuildQ1Smas(t, &smas));
  EXPECT_EQ(smas.size(), 8u);  // 8 SMA definitions (Fig. 4)
  uint64_t files = 0;
  for (const sma::Sma* s : smas.all()) files += s->num_groups();
  EXPECT_EQ(files, 26u);  // 2 ungrouped + 6 grouped x 4 groups (§2.3)
  // Space: SMAs are a small fraction of the base data even at tiny scale.
  EXPECT_LT(smas.TotalSizeBytes(), t->SizeBytes() / 5);
}

TEST_F(Q1Integration, AllPlansAgreeOnAllClusterings) {
  int i = 0;
  for (tpch::ClusterMode mode :
       {tpch::ClusterMode::kShipdateSorted, tpch::ClusterMode::kDiagonal,
        tpch::ClusterMode::kOrderKey}) {
    storage::Table* t = Load(mode, "li" + std::to_string(i++));
    sma::SmaSet smas(t);
    ExpectOk(workloads::BuildQ1Smas(t, &smas));
    const AggQuery q1 = Unwrap(workloads::MakeQ1Query(t, 90));
    const std::string scan = Run(&smas, q1, PlanKind::kScanAggr);
    EXPECT_EQ(scan, Run(&smas, q1, PlanKind::kSmaScanAggr));
    EXPECT_EQ(scan, Run(&smas, q1, PlanKind::kSmaGAggr));
    EXPECT_NE(scan.find("A | F"), std::string::npos);
    EXPECT_NE(scan.find("N | O"), std::string::npos);
  }
}

TEST_F(Q1Integration, DeltaSweepAgreesAndShrinks) {
  storage::Table* t = Load(tpch::ClusterMode::kShipdateSorted, "li_delta");
  sma::SmaSet smas(t);
  ExpectOk(workloads::BuildQ1Smas(t, &smas));
  int64_t prev_count = INT64_MAX;
  for (int delta : {60, 90, 400, 1200}) {
    const AggQuery q1 = Unwrap(workloads::MakeQ1Query(t, delta));
    const std::string scan = Run(&smas, q1, PlanKind::kScanAggr);
    EXPECT_EQ(scan, Run(&smas, q1, PlanKind::kSmaGAggr)) << delta;
    // Larger delta = earlier cutoff = fewer qualifying rows.
    Planner planner(&smas);
    auto op = Unwrap(planner.Build(q1, PlanKind::kScanAggr));
    QueryResult r = Unwrap(RunToCompletion(op.get()));
    int64_t total = 0;
    const size_t count_col = r.schema->num_fields() - 1;
    for (const auto& row : r.rows) {
      total += row.AsRef().GetInt64(count_col);
    }
    EXPECT_LE(total, prev_count);
    prev_count = total;
  }
}

TEST_F(Q1Integration, PlannerPicksSmaGAggrForQ1) {
  storage::Table* t = Load(tpch::ClusterMode::kShipdateSorted, "li_plan");
  sma::SmaSet smas(t);
  ExpectOk(workloads::BuildQ1Smas(t, &smas));
  Planner planner(&smas);
  const AggQuery q1 = Unwrap(workloads::MakeQ1Query(t, 90));
  EXPECT_EQ(Unwrap(planner.Choose(q1)).kind, PlanKind::kSmaGAggr);
}

TEST_F(Q1Integration, Q6AgreesAcrossPlansAndPrunes) {
  storage::Table* t = Load(tpch::ClusterMode::kShipdateSorted, "li_q6");
  sma::SmaSet smas(t);
  ExpectOk(workloads::BuildQ1Smas(t, &smas));
  ExpectOk(workloads::BuildQ6Smas(t, &smas));
  const AggQuery q6 = Unwrap(workloads::MakeQ6Query(t, 1994, 6, 24));
  const std::string scan = Run(&smas, q6, PlanKind::kScanAggr);
  EXPECT_EQ(scan, Run(&smas, q6, PlanKind::kSmaScanAggr));
  EXPECT_EQ(scan, Run(&smas, q6, PlanKind::kSmaGAggr));

  // Q6's one-year range on sorted data prunes ~6/7 of the buckets.
  Planner planner(&smas);
  const plan::PlanChoice choice = Unwrap(planner.Choose(q6));
  EXPECT_GT(choice.disqualifying, choice.total_buckets() / 2);
}

TEST_F(Q1Integration, MaintainedInsertsKeepQ1Consistent) {
  storage::Table* t = Load(tpch::ClusterMode::kShipdateSorted, "li_maint");
  sma::SmaSet smas(t);
  ExpectOk(workloads::BuildQ1Smas(t, &smas));
  sma::SmaMaintainer maintainer(t, &smas);

  // Append a fresh batch of lineitems through the maintainer.
  tpch::Dbgen gen({0.0005, 1234});
  std::vector<tpch::OrderRow> orders;
  std::vector<tpch::LineItemRow> lis;
  gen.GenOrdersAndLineItems(&orders, &lis);
  for (const auto& row : lis) {
    ExpectOk(
        maintainer.Insert(tpch::LineItemTuple(&t->schema(), row)));
  }

  const AggQuery q1 = Unwrap(workloads::MakeQ1Query(t, 90));
  const std::string scan = Run(&smas, q1, PlanKind::kScanAggr);
  EXPECT_EQ(scan, Run(&smas, q1, PlanKind::kSmaGAggr));
}

TEST_F(Q1Integration, Q3JoinPipelineAgreesWithAndWithoutSmas) {
  tpch::Dbgen gen({0.004, 42});
  std::vector<tpch::OrderRow> orows;
  std::vector<tpch::LineItemRow> lrows;
  gen.GenOrdersAndLineItems(&orows, &lrows);
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kDiagonal;
  storage::Table* orders = Unwrap(tpch::LoadOrders(&db.catalog, orows, load));
  storage::Table* lineitem =
      Unwrap(tpch::LoadLineItem(&db.catalog, lrows, load));
  storage::Table* customer =
      Unwrap(tpch::LoadCustomers(&db.catalog, gen.GenCustomers()));

  sma::SmaSet orders_smas(orders);
  sma::SmaSet lineitem_smas(lineitem);
  ExpectOk(workloads::BuildQ3Smas(orders, &orders_smas, lineitem,
                                  &lineitem_smas));

  auto drain = [](exec::Operator* op) {
    ExpectOk(op->Init());
    std::string out;
    storage::TupleRef row;
    while (true) {
      auto has = op->Next(&row);
      EXPECT_TRUE(has.ok());
      if (!*has) break;
      for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
        out += row.GetValue(c).ToString();
        out += '|';
      }
      out += '\n';
    }
    return out;
  };

  workloads::Q3Tables with{customer, orders, lineitem, &orders_smas,
                           &lineitem_smas};
  workloads::Q3Tables without{customer, orders, lineitem, nullptr, nullptr};
  auto plan_with = Unwrap(workloads::MakeQ3Plan(with));
  auto plan_without = Unwrap(workloads::MakeQ3Plan(without));
  const std::string a = drain(plan_with.get());
  EXPECT_EQ(a, drain(plan_without.get()));
  EXPECT_FALSE(a.empty());

  // A different segment / cutoff also agrees.
  auto plan_auto = Unwrap(
      workloads::MakeQ3Plan(with, "MACHINERY", "1996-06-01", 5));
  auto plan_auto_ref = Unwrap(
      workloads::MakeQ3Plan(without, "MACHINERY", "1996-06-01", 5));
  EXPECT_EQ(drain(plan_auto.get()), drain(plan_auto_ref.get()));
}

TEST_F(Q1Integration, Q4ExistsSemiJoinMatchesBruteForce) {
  tpch::Dbgen gen({0.004, 42});
  std::vector<tpch::OrderRow> orows;
  std::vector<tpch::LineItemRow> lrows;
  gen.GenOrdersAndLineItems(&orows, &lrows);
  tpch::LoadOptions load;
  load.mode = tpch::ClusterMode::kDiagonal;
  storage::Table* orders = Unwrap(tpch::LoadOrders(&db.catalog, orows, load));
  storage::Table* lineitem =
      Unwrap(tpch::LoadLineItem(&db.catalog, lrows, load));
  sma::SmaSet orders_smas(orders);
  sma::SmaSet lineitem_smas(lineitem);
  ExpectOk(workloads::BuildQ3Smas(orders, &orders_smas, lineitem,
                                  &lineitem_smas));

  auto plan = Unwrap(
      workloads::MakeQ4Plan(orders, lineitem, &orders_smas, "1993-07-01"));
  ExpectOk(plan->Init());
  std::map<std::string, int64_t> got;
  storage::TupleRef row;
  while (*plan->Next(&row)) {
    got[std::string(row.GetString(0))] = row.GetInt64(1);
  }

  // Brute force.
  const util::Date lo = util::Date::FromYmd(1993, 7, 1);
  const util::Date hi = lo.AddDays(91);
  std::set<int64_t> late_orders;  // orderkeys with commit < receipt
  for (const auto& li : lrows) {
    if (li.commitdate < li.receiptdate) late_orders.insert(li.orderkey);
  }
  std::map<std::string, int64_t> want;
  for (const auto& o : orows) {
    if (o.orderdate >= lo && o.orderdate < hi &&
        late_orders.count(o.orderkey) > 0) {
      ++want[o.orderpriority];
    }
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(got.size(), 5u);  // all five priorities occur at this scale
}

TEST_F(Q1Integration, ColdVsWarmPageReads) {
  storage::Table* t = Load(tpch::ClusterMode::kShipdateSorted, "li_cold");
  sma::SmaSet smas(t);
  ExpectOk(workloads::BuildQ1Smas(t, &smas));
  const AggQuery q1 = Unwrap(workloads::MakeQ1Query(t, 90));
  Planner planner(&smas);

  // Cold: everything faulted from disk.
  ExpectOk(db.pool.DropAll());
  db.disk.ResetStats();
  auto op = Unwrap(planner.Build(q1, PlanKind::kSmaGAggr));
  (void)Unwrap(RunToCompletion(op.get()));
  const uint64_t cold_reads = db.disk.stats().page_reads;

  // Warm: SMA files resident from the cold run.
  db.disk.ResetStats();
  auto op2 = Unwrap(planner.Build(q1, PlanKind::kSmaGAggr));
  (void)Unwrap(RunToCompletion(op2.get()));
  const uint64_t warm_reads = db.disk.stats().page_reads;

  EXPECT_GT(cold_reads, 0u);
  EXPECT_LT(warm_reads, cold_reads / 2);  // paper: 4.9 s cold vs 1.9 s warm
  // And both are tiny next to the table itself.
  EXPECT_LT(cold_reads, t->num_pages() / 4);
}

}  // namespace
}  // namespace smadb
