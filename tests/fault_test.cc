// Fault-injection tests: the robustness contract of the storage stack and
// the planner's degradation ladder.
//
// The contract under test: with faults armed, every query either returns
// exactly the fault-free result or a typed error (kIOError, kCorruption,
// kResourceExhausted) — never silently-wrong rows. Corrupt or stale SMAs
// demote plans to sequential scans (visible in the plan explanation) instead
// of failing the query, and SmaMaintainer::Rebuild() repairs them.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "planner/planner.h"
#include "sma/maintenance.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace smadb::plan {
namespace {

using exec::AggSpec;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using sma::SmaSpec;
using storage::BackendKind;
using storage::BufferPool;
using storage::BufferPoolOptions;
using storage::FileId;
using storage::PageGuard;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::FaultKind;
using util::FaultSpec;
using util::Status;
using util::StatusCode;
using util::Value;

// ---------------------------------------------------------------------------
// FaultInjector unit behaviour.

struct FaultInjectorTest : ::testing::Test {
  ~FaultInjectorTest() override { util::fault::DisarmAll(); }
};

TEST_F(FaultInjectorTest, CountAndSkipAreExact) {
  util::fault::Arm("t.point", {.count = 2, .skip = 1});
  EXPECT_FALSE(util::fault::Hit("t.point").has_value());  // skipped
  EXPECT_EQ(util::fault::Hit("t.point"), FaultKind::kPermanent);
  EXPECT_EQ(util::fault::Hit("t.point"), FaultKind::kPermanent);
  EXPECT_FALSE(util::fault::Hit("t.point").has_value());  // count spent
  EXPECT_EQ(util::fault::Triggered("t.point"), 2u);
}

TEST_F(FaultInjectorTest, FileFilterSelectsContext) {
  util::fault::Arm("t.point", {.file_filter = "sma."});
  EXPECT_FALSE(util::fault::Hit("t.point", "tbl.orders").has_value());
  EXPECT_TRUE(util::fault::Hit("t.point", "sma.orders.min").has_value());
  EXPECT_EQ(util::fault::Triggered("t.point"), 1u);
}

TEST_F(FaultInjectorTest, UnarmedPointsNeverFire) {
  EXPECT_FALSE(util::fault::Hit("t.other").has_value());
  util::fault::Arm("t.point", {});
  EXPECT_FALSE(util::fault::Hit("t.other").has_value());
}

TEST_F(FaultInjectorTest, ProbabilityScheduleIsSeedDeterministic) {
  auto schedule = [&] {
    util::fault::Seed(0xfeedu);
    util::fault::Arm("t.point", {.probability = 0.5});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(util::fault::Hit("t.point").has_value());
    }
    util::fault::DisarmAll();
    return fired;
  };
  const std::vector<bool> a = schedule();
  const std::vector<bool> b = schedule();
  EXPECT_EQ(a, b);
  // And p = 0.5 actually flips both ways.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

// ---------------------------------------------------------------------------
// Buffer-pool robustness: retry, checksum verification, frame exhaustion.
// Parameterized over the backend: the failpoints live in DiskBackend, so the
// identical matrix must hold against the simulated disk and real files.

struct PoolFaultTest : ::testing::TestWithParam<BackendKind> {
  PoolFaultTest() : db(64, GetParam()) {}
  ~PoolFaultTest() override { util::fault::DisarmAll(); }

  // One file with one non-zero flushed page, nothing cached.
  void SetUp() override {
    file = Unwrap(db.disk.CreateFile("tbl.pf"));
    uint32_t page_no = 0;
    PageGuard guard = Unwrap(db.pool.NewPage(file, &page_no));
    guard.MutablePage()->WriteAt<uint64_t>(0, 0xabcdef01u);
    guard.Release();
    ExpectOk(db.pool.FlushAll());
    ExpectOk(db.pool.DropAll());
    db.pool.ResetStats();
  }

  TestDb db;
  FileId file = 0;
};

INSTANTIATE_TEST_SUITE_P(Backends, PoolFaultTest,
                         ::testing::Values(BackendKind::kSimulated,
                                           BackendKind::kFile),
                         [](const auto& info) {
                           return std::string(
                               storage::BackendKindToString(info.param));
                         });

TEST_P(PoolFaultTest, TransientReadErrorsAreAbsorbedByRetry) {
  util::fault::Arm("disk.read", {.count = 2, .kind = FaultKind::kTransient});
  PageGuard guard = Unwrap(db.pool.Fetch(file, 0));
  EXPECT_EQ(guard.page()->ReadAt<uint64_t>(0), 0xabcdef01u);
  EXPECT_EQ(db.pool.stats().read_retries, 2u);
}

TEST_P(PoolFaultTest, PermanentReadErrorSurfacesTypedWithContext) {
  util::fault::Arm("disk.read", {.kind = FaultKind::kPermanent});
  auto r = db.pool.Fetch(file, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_NE(r.status().message().find("tbl.pf"), std::string::npos);
  EXPECT_NE(r.status().message().find("page 0"), std::string::npos);
  // The bounded retry budget was spent before giving up.
  EXPECT_EQ(db.pool.stats().read_retries,
            static_cast<uint64_t>(db.pool.options().max_read_retries));
}

TEST_P(PoolFaultTest, ReadBitFlipIsCaughtByChecksumAndIsTransient) {
  util::fault::Arm("disk.page_bitflip", {.count = 1});
  auto r = db.pool.Fetch(file, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().message().find("checksum mismatch"), std::string::npos);
  EXPECT_NE(r.status().message().find("tbl.pf"), std::string::npos);
  EXPECT_EQ(db.pool.stats().checksum_failures, 1u);
  // The stored page was never harmed: the next read succeeds.
  PageGuard guard = Unwrap(db.pool.Fetch(file, 0));
  EXPECT_EQ(guard.page()->ReadAt<uint64_t>(0), 0xabcdef01u);
}

TEST_P(PoolFaultTest, WriteBitFlipIsCaughtOnNextVerifiedRead) {
  // Dirty the page again and flush it through an armed write failpoint: the
  // intended bytes get checksummed, the stored bytes get flipped.
  {
    PageGuard guard = Unwrap(db.pool.Fetch(file, 0));
    guard.MutablePage()->WriteAt<uint64_t>(0, 0x1234u);
  }
  util::fault::Arm("disk.write", {.count = 1, .kind = FaultKind::kBitFlip});
  ExpectOk(db.pool.FlushAll());
  ExpectOk(db.pool.DropAll());
  auto r = db.pool.Fetch(file, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_P(PoolFaultTest, VerificationOffDeliversFlippedBitsSilently) {
  // What checksums buy: an unverified pool hands the flip to the query.
  BufferPool raw(&db.disk, BufferPoolOptions{.capacity_pages = 8,
                                             .verify_checksums = false});
  util::fault::Arm("disk.page_bitflip", {.count = 1});
  PageGuard guard = Unwrap(raw.Fetch(file, 0));
  EXPECT_NE(guard.page()->ReadAt<uint64_t>(0), 0xabcdef01u);
  EXPECT_EQ(raw.stats().checksum_failures, 0u);
}

TEST_P(PoolFaultTest, AllFramesPinnedFailsTypedAfterBoundedWait) {
  BufferPool tiny(&db.disk,
                  BufferPoolOptions{.capacity_pages = 2,
                                    .pinned_wait_rounds = 2,
                                    .pinned_wait_quantum =
                                        std::chrono::milliseconds(1)});
  uint32_t page_no = 0;
  FileId f2 = Unwrap(db.disk.CreateFile("tbl.pf2"));
  PageGuard a = Unwrap(tiny.NewPage(f2, &page_no));
  PageGuard b = Unwrap(tiny.NewPage(f2, &page_no));
  auto r = tiny.Fetch(file, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("pinned"), std::string::npos);
  auto n = tiny.NewPage(f2, &page_no);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kResourceExhausted);
}

TEST_P(PoolFaultTest, UnpinUnblocksAWaitingFetch) {
  BufferPool tiny(&db.disk,
                  BufferPoolOptions{.capacity_pages = 2,
                                    .pinned_wait_rounds = 1000,
                                    .pinned_wait_quantum =
                                        std::chrono::milliseconds(1)});
  uint32_t page_no = 0;
  FileId f2 = Unwrap(db.disk.CreateFile("tbl.pf2"));
  PageGuard a = Unwrap(tiny.NewPage(f2, &page_no));
  PageGuard b = Unwrap(tiny.NewPage(f2, &page_no));
  Status fetched = Status::Internal("not run");
  std::thread waiter([&] {
    auto r = tiny.Fetch(file, 0);
    fetched = r.ok() ? Status::OK() : r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  b.Release();  // frees a frame; the waiter's Fetch must complete
  waiter.join();
  ExpectOk(fetched);
}

// ---------------------------------------------------------------------------
// Query-level fault matrix and the degradation ladder.

struct FaultQueryTest : ::testing::TestWithParam<BackendKind> {
  FaultQueryTest() : db(16384, GetParam()) {}
  ~FaultQueryTest() override { util::fault::DisarmAll(); }

  void Setup(testing::Layout layout, const std::string& name) {
    table = MakeSyntheticTable(&db, 4000, layout, 13, 1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, SmaSpec::Count("cnt", {3})))));
    query.table = table;
    query.group_by = {3};
    query.aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt")};
  }

  PredicatePtr DatePred(CmpOp op, int32_t day) {
    return Unwrap(Predicate::AtomConst(&table->schema(), "d", op,
                                       Value::MakeDate(util::Date(day))));
  }

  // Fault-free reference answer (sequential scan, serial).
  std::string Reference(const Planner& planner) {
    auto op = Unwrap(planner.Build(query, PlanKind::kScanAggr, 1));
    return Unwrap(RunToCompletion(op.get())).ToString();
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  AggQuery query;
};

INSTANTIATE_TEST_SUITE_P(Backends, FaultQueryTest,
                         ::testing::Values(BackendKind::kSimulated,
                                           BackendKind::kFile),
                         [](const auto& info) {
                           return std::string(
                               storage::BackendKindToString(info.param));
                         });

// The central matrix: fault kind x access path x DOP. Every run must either
// reproduce the fault-free rows exactly or fail with the scenario's typed
// error — silently-wrong rows fail the test.
TEST_P(FaultQueryTest, FaultMatrixCorrectRowsOrTypedError) {
  Setup(testing::Layout::kNoisy, "fm");
  query.pred = DatePred(CmpOp::kLe, 120);
  Planner planner(smas.get());
  const std::string expected = Reference(planner);

  struct Scenario {
    const char* label;
    const char* point;
    FaultSpec spec;
    StatusCode allowed;
  };
  const Scenario scenarios[] = {
      {"transient-read", "disk.read",
       {.probability = 0.3, .kind = FaultKind::kTransient},
       StatusCode::kIOError},
      {"permanent-read", "disk.read",
       {.probability = 0.3, .kind = FaultKind::kPermanent},
       StatusCode::kIOError},
      {"bitflip-read", "disk.page_bitflip",
       {.probability = 0.25, .kind = FaultKind::kBitFlip},
       StatusCode::kCorruption},
  };
  const PlanKind kinds[] = {PlanKind::kScanAggr, PlanKind::kSmaScanAggr,
                            PlanKind::kSmaGAggr};
  uint64_t seed = 1;
  for (const Scenario& s : scenarios) {
    for (PlanKind kind : kinds) {
      for (size_t dop : {size_t{1}, size_t{4}}) {
        SCOPED_TRACE(::testing::Message()
                     << s.label << " / " << PlanKindToString(kind)
                     << " / dop=" << dop);
        util::fault::DisarmAll();
        ExpectOk(db.pool.DropAll());  // cold: every page read hits the disk
        util::fault::Seed(seed++);
        util::fault::Arm(s.point, s.spec);
        auto op = Unwrap(planner.Build(query, kind, dop));
        auto run = RunToCompletion(op.get());
        util::fault::DisarmAll();
        if (run.ok()) {
          EXPECT_EQ(run->ToString(), expected);
        } else {
          EXPECT_EQ(run.status().code(), s.allowed)
              << run.status().ToString();
        }
      }
    }
  }
}

// Mid-scan base-table errors must surface as typed statuses through every
// access path (serial and parallel), with the failing file in the message.
TEST_P(FaultQueryTest, MidScanErrorsPropagateThroughAllAccessPaths) {
  Setup(testing::Layout::kNoisy, "mp");
  query.pred = DatePred(CmpOp::kLe, 120);
  Planner planner(smas.get());
  // The SMA plans must actually touch base data for a mid-scan fault.
  const PlanChoice census = Unwrap(planner.Choose(query));
  ASSERT_GT(census.ambivalent, 0u);

  struct Case {
    PlanKind kind;
    size_t dop;
    int64_t skip;  // base-page reads to let through before failing
  };
  const Case cases[] = {
      {PlanKind::kScanAggr, 1, 2},    {PlanKind::kScanAggr, 4, 2},
      {PlanKind::kSmaScanAggr, 1, 2}, {PlanKind::kSmaScanAggr, 4, 2},
      {PlanKind::kSmaGAggr, 1, 0},    {PlanKind::kSmaGAggr, 4, 0},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(::testing::Message() << PlanKindToString(c.kind)
                                      << " dop=" << c.dop);
    util::fault::DisarmAll();
    ExpectOk(db.pool.DropAll());
    util::fault::Arm("disk.read", {.kind = FaultKind::kPermanent,
                                   .skip = c.skip,
                                   .file_filter = "tbl."});
    auto op = Unwrap(planner.Build(query, c.kind, c.dop));
    auto run = RunToCompletion(op.get());
    util::fault::DisarmAll();
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(), StatusCode::kIOError)
        << run.status().ToString();
    EXPECT_NE(run.status().message().find("tbl.mp"), std::string::npos)
        << run.status().ToString();
  }

  // Same contract on the pure-selection path (SmaScan).
  SelectQuery sel;
  sel.table = table;
  sel.pred = query.pred;
  ExpectOk(db.pool.DropAll());
  util::fault::Arm("disk.read", {.kind = FaultKind::kPermanent,
                                 .skip = 2,
                                 .file_filter = "tbl."});
  auto op = Unwrap(planner.BuildSelect(sel, PlanKind::kSmaScan));
  auto run = RunToCompletion(op.get());
  util::fault::DisarmAll();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kIOError);
}

// Tentpole scenario: a corrupt SMA-file page demotes the plan (recorded in
// the explanation), the query still answers correctly from base data, the
// bad SMA is condemned, and the next Rebuild() restores SMA plans.
TEST_P(FaultQueryTest, CorruptSmaFileDemotesThenRebuildRestores) {
  Setup(testing::Layout::kClustered, "dm");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const std::string expected = Reference(planner);
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);

  // Push the SMA pages to disk, then flip a stored bit in the min SMA-file
  // (without restamping its checksum — silent on-disk corruption).
  ExpectOk(db.pool.FlushAll());
  ExpectOk(db.pool.DropAll());
  const FileId sma_file = Unwrap(db.disk.FindFile("sma.dm.min_d"));
  ExpectOk(db.disk.CorruptPageForTesting(sma_file, 0, 12345));

  // Grading hits the corruption -> the planner demotes instead of failing.
  const PlanChoice demoted = Unwrap(planner.Choose(query));
  EXPECT_EQ(demoted.kind, PlanKind::kScanAggr);
  EXPECT_NE(demoted.explanation.find("demoted"), std::string::npos)
      << demoted.explanation;

  // The query still answers, correctly, from base data.
  const QueryResult result = Unwrap(planner.Execute(query));
  EXPECT_EQ(result.ToString(), expected);
  EXPECT_EQ(result.plan.kind, PlanKind::kScanAggr);
  EXPECT_NE(result.plan.explanation.find("demoted"), std::string::npos);

  // The corruption condemned exactly the owning SMA.
  const sma::Sma* min_sma = Unwrap(smas->Find("min_d"));
  EXPECT_FALSE(min_sma->trusted());
  EXPECT_TRUE(Unwrap(smas->Find("max_d"))->trusted());

  // Maintenance hook: Rebuild() re-materializes the condemned SMA.
  sma::SmaMaintainer maintainer(table, smas.get());
  ExpectOk(maintainer.Rebuild());
  EXPECT_TRUE(min_sma->trusted());
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);
  EXPECT_EQ(Unwrap(planner.Execute(query)).ToString(), expected);
}

// A table mutated behind the maintainer's back makes every SMA stale; the
// planner demotes until Rebuild() catches the SMAs up.
TEST_P(FaultQueryTest, StaleSmasDemoteUntilRebuilt) {
  Setup(testing::Layout::kClustered, "st");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);

  // Append directly to the table, bypassing SMA maintenance.
  storage::TupleBuffer t(&table->schema());
  t.SetInt64(0, 999999);
  t.SetDate(1, util::Date(1));
  t.SetDecimal(2, util::Decimal(700));
  t.SetString(3, "A");
  t.SetString(4, "MAIL");
  ExpectOk(table->Append(t));

  const PlanChoice demoted = Unwrap(planner.Choose(query));
  EXPECT_EQ(demoted.kind, PlanKind::kScanAggr);
  EXPECT_NE(demoted.explanation.find("stale"), std::string::npos)
      << demoted.explanation;

  // The demoted plan sees the new tuple (it scans base data).
  const std::string expected = Reference(planner);
  EXPECT_EQ(Unwrap(planner.Execute(query)).ToString(), expected);

  // Rebuild() refreshes the stale SMAs; the SMA plan agrees with the scan.
  sma::SmaMaintainer maintainer(table, smas.get());
  ExpectOk(maintainer.Rebuild());
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);
  EXPECT_EQ(Unwrap(planner.Execute(query)).ToString(), expected);
}

// Verify() catches a semantically-wrong entry that checksums cannot (the
// write went through the pool, so the page checksum is valid).
TEST_P(FaultQueryTest, VerifyCatchesSemanticCorruption) {
  Setup(testing::Layout::kClustered, "vf");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const std::string expected = Reference(planner);

  sma::Sma* min_sma = Unwrap(smas->Find("min_d"));
  ASSERT_EQ(min_sma->num_groups(), 1u);
  // Entry 0 claims the bucket's min date is day 999 — plausible, wrong.
  ExpectOk(min_sma->group_file(0)->Set(0, 999));
  // Checksums are happy; queries would mis-grade bucket 0. Verify() is the
  // countermeasure:
  const Status v = min_sma->Verify();
  EXPECT_EQ(v.code(), StatusCode::kCorruption) << v.ToString();
  EXPECT_FALSE(min_sma->trusted());

  // The distrust flag demotes plans...
  const PlanChoice demoted = Unwrap(planner.Choose(query));
  EXPECT_EQ(demoted.kind, PlanKind::kScanAggr);
  EXPECT_NE(demoted.explanation.find("distrusted"), std::string::npos);
  EXPECT_EQ(Unwrap(planner.Execute(query)).ToString(), expected);

  // ...VerifyAll counts the casualty, and Rebuild() repairs it.
  sma::SmaMaintainer maintainer(table, smas.get());
  EXPECT_EQ(Unwrap(maintainer.VerifyAll()), 1u);
  ExpectOk(maintainer.Rebuild());
  EXPECT_TRUE(min_sma->trusted());
  EXPECT_EQ(Unwrap(maintainer.VerifyAll()), 0u);
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);
  EXPECT_EQ(Unwrap(planner.Execute(query)).ToString(), expected);
}

// Execute()'s runtime rung: the SMA plan passes planning (grading reads
// only the pristine min/max SMAs), dies mid-run on a corrupt *aggregate*
// SMA-file, and the query transparently reruns as a sequential scan —
// condemning the corrupt SMA for the next Rebuild().
TEST_P(FaultQueryTest, ExecuteFallsBackWhenSmaPlanDiesMidRun) {
  Setup(testing::Layout::kClustered, "fb");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const std::string expected = Reference(planner);
  ASSERT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kSmaGAggr);

  // Corrupt a stored page of sum_v's first group file. Grading never reads
  // it, so Choose() still picks kSmaGAggr; the run does, and fails.
  ExpectOk(db.pool.FlushAll());
  ExpectOk(db.pool.DropAll());
  const FileId sum_file = Unwrap(db.disk.FindFile("sma.fb.sum_v.g0"));
  ExpectOk(db.disk.CorruptPageForTesting(sum_file, 0, 7));

  const QueryResult result = Unwrap(planner.Execute(query));
  EXPECT_EQ(result.ToString(), expected);
  EXPECT_EQ(result.plan.kind, PlanKind::kScanAggr);
  EXPECT_NE(result.plan.explanation.find("demoted"), std::string::npos)
      << result.plan.explanation;
  EXPECT_FALSE(Unwrap(smas->Find("sum_v"))->trusted());
}

// Governor x fault interaction: a user cancel that lands while the storage
// layer is absorbing transient read faults must not race the retry loop —
// the bounded retries complete (stats prove they ran), and the query then
// stops with kCancelled at its next checkpoint. Order matters: retry first,
// cancel second, never a torn page surfacing as a different error.
TEST_P(FaultQueryTest, CancelDuringTransientRetryFinishesRetryThenCancels) {
  Setup(testing::Layout::kNoisy, "cr");
  query.pred = DatePred(CmpOp::kLe, 120);
  Planner planner(smas.get());
  ExpectOk(db.pool.FlushAll());
  ExpectOk(db.pool.DropAll());
  db.pool.ResetStats();
  // Two transient base-page read faults, absorbed early in the scan...
  util::fault::Arm("disk.read", {.count = 2,
                                 .kind = FaultKind::kTransient,
                                 .file_filter = "tbl."});
  // ...and a cancel delivered at a checkpoint a few batches later.
  util::fault::Arm("governor.cancel", {.count = 1, .skip = 4});
  util::QueryContext ctx;
  auto op = Unwrap(planner.Build(query, PlanKind::kScanAggr, 1));
  op->BindContext(&ctx);
  auto run = RunToCompletion(op.get(), &ctx);
  util::fault::DisarmAll();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCancelled)
      << run.status().ToString();
  EXPECT_EQ(db.pool.stats().read_retries, 2u)
      << "the transient faults must be retried away before the cancel lands";
}

// Governor x fault: the memory budget gives out during the parallel merge
// phase (component "GroupTable.merge") — after the workers finished their
// partials. The failure is still the typed kResourceExhausted naming the
// merge component; no partial merge escapes as a result.
TEST_P(FaultQueryTest, BudgetExhaustedMidMergeFailsTypedNamingComponent) {
  Setup(testing::Layout::kNoisy, "bm");
  query.pred = DatePred(CmpOp::kLe, 120);
  query.group_by = {0};  // unique key: every worker's partial must merge
  Planner planner(smas.get());
  util::fault::Arm("governor.charge", {.file_filter = "GroupTable.merge"});
  util::QueryContext ctx;
  auto op = Unwrap(planner.Build(query, PlanKind::kScanAggr, 4));
  op->BindContext(&ctx);
  auto run = RunToCompletion(op.get(), &ctx);
  util::fault::DisarmAll();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().ToString();
  EXPECT_NE(run.status().message().find("GroupTable.merge"),
            std::string::npos)
      << run.status().ToString();
}

// SMADB_DCHECK: violated tuple-accessor invariants fail stop with a
// diagnostic (instead of undefined behaviour) even in release builds.
TEST(DcheckDeathTest, TupleTypeConfusionFailsStop) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const storage::Schema schema = testing::SyntheticSchema();
  storage::TupleBuffer t(&schema);
  // Column 0 is int64; the int32 setter violates the typed precondition.
  EXPECT_DEATH(t.SetInt32(0, 7), "DCHECK failed");
  EXPECT_DEATH(t.AsRef().GetInt32(0), "DCHECK failed");
}

}  // namespace
}  // namespace smadb::plan
