// Parameterized property suites (TEST_P sweeps) over the system's core
// invariants:
//
//   * grade soundness     — for every (layout × operator × bucket size),
//                           qualifying buckets contain only matches and
//                           disqualifying buckets none.
//   * scan equivalence    — SMA_Scan returns exactly TableScan's tuples.
//   * aggregate equality  — SMA_GAggr equals GAggr bit-for-bit.
//   * maintenance         — maintained SMAs equal freshly rebuilt ones
//                           under randomized mutation mixes.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "exec/gaggr.h"
#include "exec/sma_gaggr.h"
#include "exec/sma_scan.h"
#include "exec/table_scan.h"
#include "sma/maintenance.h"
#include "tests/test_util.h"

namespace smadb {
namespace {

using exec::AggSpec;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using sma::SmaSpec;
using storage::TupleRef;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::Layout;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

constexpr int64_t kRows = 2000;

std::string LayoutName(Layout l) {
  switch (l) {
    case Layout::kClustered:
      return "Clustered";
    case Layout::kNoisy:
      return "Noisy";
    case Layout::kRandom:
      return "Random";
  }
  return "?";
}

std::string OpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "Eq";
    case CmpOp::kNe:
      return "Ne";
    case CmpOp::kLt:
      return "Lt";
    case CmpOp::kLe:
      return "Le";
    case CmpOp::kGt:
      return "Gt";
    case CmpOp::kGe:
      return "Ge";
  }
  return "?";
}

std::vector<std::string> Drain(exec::Operator* op) {
  ExpectOk(op->Init());
  std::vector<std::string> rows;
  TupleRef t;
  while (true) {
    auto has = op->Next(&t);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    std::string row;
    for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
      row += t.GetValue(c).ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ------------------------------------------------- grade soundness sweep --

using GradeParam = std::tuple<Layout, CmpOp, uint32_t /*bucket_pages*/>;

class GradeSoundnessP : public ::testing::TestWithParam<GradeParam> {};

TEST_P(GradeSoundnessP, AllBucketsSoundAcrossConstants) {
  const auto [layout, op, bucket_pages] = GetParam();
  TestDb db(16384);
  storage::Table* t =
      MakeSyntheticTable(&db, kRows, layout, /*seed=*/101, bucket_pages);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");

  // Constants spanning below / inside / above the data range (d in
  // [~-2, kRows/8 + 2]).
  for (int32_t c : {-10, 0, 25, 125, 249, 400}) {
    const PredicatePtr pred = Unwrap(Predicate::AtomConst(
        &t->schema(), "d", op, Value::MakeDate(util::Date(c))));
    auto grader = sma::BucketGrader::Create(pred, &smas);
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      testing::ExpectGradeSound(t, b, *pred, Unwrap(grader->GradeBucket(b)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GradeSoundnessP,
    ::testing::Combine(::testing::Values(Layout::kClustered, Layout::kNoisy,
                                         Layout::kRandom),
                       ::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<GradeParam>& info) {
      return LayoutName(std::get<0>(info.param)) +
             OpName(std::get<1>(info.param)) + "Bp" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------- scan equivalence sweep --

using ScanParam = std::tuple<Layout, CmpOp, uint32_t>;

class SmaScanEquivalenceP : public ::testing::TestWithParam<ScanParam> {};

TEST_P(SmaScanEquivalenceP, ReturnsExactlyTheTableScanTuples) {
  const auto [layout, op, bucket_pages] = GetParam();
  TestDb db(16384);
  storage::Table* t =
      MakeSyntheticTable(&db, kRows, layout, /*seed=*/7, bucket_pages);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  for (int32_t c : {-10, 60, 125, 300}) {
    const PredicatePtr pred = Unwrap(Predicate::AtomConst(
        &t->schema(), "d", op, Value::MakeDate(util::Date(c))));
    exec::TableScan plain(t, pred);
    exec::SmaScan pruned(t, pred, &smas);
    EXPECT_EQ(Drain(&plain), Drain(&pruned)) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmaScanEquivalenceP,
    ::testing::Combine(::testing::Values(Layout::kClustered, Layout::kNoisy,
                                         Layout::kRandom),
                       ::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<ScanParam>& info) {
      return LayoutName(std::get<0>(info.param)) +
             OpName(std::get<1>(info.param)) + "Bp" +
             std::to_string(std::get<2>(info.param));
    });

// ----------------------------------------- aggregate equivalence sweep --

using AggrParam = std::tuple<Layout, CmpOp>;

class SmaGAggrEquivalenceP : public ::testing::TestWithParam<AggrParam> {};

TEST_P(SmaGAggrEquivalenceP, MatchesGAggrExactly) {
  const auto [layout, op] = GetParam();
  TestDb db(16384);
  storage::Table* t = MakeSyntheticTable(&db, kRows, layout, /*seed=*/77);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Sum("s", v, {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Count("c", {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Min("mn", v, {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Max("mx", v, {3})))));
  const std::vector<AggSpec> aggs = {
      AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt"), AggSpec::Avg(v, "avg"),
      AggSpec::Min(v, "min_v"), AggSpec::Max(v, "max_v")};

  for (int32_t c : {-10, 60, 125, 300}) {
    const PredicatePtr pred = Unwrap(Predicate::AtomConst(
        &t->schema(), "d", op, Value::MakeDate(util::Date(c))));
    auto scan = std::make_unique<exec::TableScan>(t, pred);
    auto ref = Unwrap(exec::GAggr::Make(std::move(scan), {3}, aggs));
    auto smag = Unwrap(exec::SmaGAggr::Make(t, pred, {3}, aggs, &smas));
    EXPECT_EQ(Drain(ref.get()), Drain(smag.get())) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SmaGAggrEquivalenceP,
    ::testing::Combine(::testing::Values(Layout::kClustered, Layout::kNoisy,
                                         Layout::kRandom),
                       ::testing::Values(CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                         CmpOp::kLe, CmpOp::kGt, CmpOp::kGe)),
    [](const ::testing::TestParamInfo<AggrParam>& info) {
      return LayoutName(std::get<0>(info.param)) +
             OpName(std::get<1>(info.param));
    });

// ----------------------------------------------- forced-ambivalence sweep --

class ForcedAmbivalenceP : public ::testing::TestWithParam<double> {};

TEST_P(ForcedAmbivalenceP, DemotionNeverChangesResults) {
  const double fraction = GetParam();
  TestDb db(16384);
  storage::Table* t =
      MakeSyntheticTable(&db, kRows, Layout::kClustered, /*seed=*/5);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Sum("s", v, {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Count("c", {3})))));
  const std::vector<AggSpec> aggs = {AggSpec::Sum(v, "sum_v"),
                                     AggSpec::Count("cnt")};
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(125))));

  auto plain = Unwrap(exec::SmaGAggr::Make(t, pred, {3}, aggs, &smas));
  exec::SmaGAggrOptions options;
  options.force_ambivalent_fraction = fraction;
  auto forced =
      Unwrap(exec::SmaGAggr::Make(t, pred, {3}, aggs, &smas, options));
  EXPECT_EQ(Drain(plain.get()), Drain(forced.get()));
  if (fraction == 1.0) {
    EXPECT_EQ(forced->stats().ambivalent_buckets, t->num_buckets());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ForcedAmbivalenceP,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "Pct" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

// ------------------------------------------------- maintenance seeds sweep --

class MaintenanceSeedP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaintenanceSeedP, MaintainedEqualsRebuilt) {
  const uint64_t seed = GetParam();
  TestDb db(8192);
  storage::Table* t = Unwrap(
      db.catalog.CreateTable("m", testing::SyntheticSchema(), {}));
  sma::SmaSet smas(t);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Min("mn", d)))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Max("mx", d)))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Sum("s", v, {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Count("c", {3})))));
  sma::SmaMaintainer maintainer(t, &smas);

  util::Rng rng(seed);
  storage::TupleBuffer buf(&t->schema());
  for (int step = 0; step < 800; ++step) {
    if (t->num_tuples() == 0 || rng.NextBool(0.75)) {
      buf.SetInt64(0, step);
      buf.SetDate(1, util::Date(static_cast<int32_t>(rng.Uniform(0, 200))));
      buf.SetDecimal(2, util::Decimal(rng.Uniform(-100, 1000)));
      const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 3)), 0};
      buf.SetString(3, grp);
      buf.SetString(4, "MAIL");
      ExpectOk(maintainer.Insert(buf));
    } else {
      const uint32_t page =
          static_cast<uint32_t>(rng.Uniform(0, t->num_pages() - 1));
      auto guard = Unwrap(t->FetchPage(page));
      const uint16_t count = storage::Table::PageTupleCount(*guard.page());
      guard.Release();
      if (count == 0) continue;
      const storage::Rid rid{
          page, static_cast<uint16_t>(rng.Uniform(0, count - 1))};
      {
        auto g2 = Unwrap(t->FetchPage(page));
        if (storage::Table::PageSlotDeleted(*g2.page(), rid.slot)) continue;
      }
      if (rng.NextBool(0.3)) {
        ExpectOk(maintainer.Delete(rid));
        continue;
      }
      const size_t col = rng.NextBool(0.5) ? 1 : 2;
      const Value val =
          col == 1 ? Value::MakeDate(
                         util::Date(static_cast<int32_t>(rng.Uniform(0, 200))))
                   : Value::MakeDecimal(
                         util::Decimal(rng.Uniform(-100, 1000)));
      ExpectOk(maintainer.UpdateColumn(rid, col, val));
    }
  }

  // Every SMA equals a fresh rebuild over the final state.
  for (const sma::Sma* sma : smas.all()) {
    testing::ExpectSmaEqualsRebuild(t, *sma);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceSeedP,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace smadb
