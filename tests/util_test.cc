// Unit tests for smadb::util — Status/Result, Date, Decimal, Rng,
// BitVector, string helpers.

#include <gtest/gtest.h>

#include <cstring>

#include "util/bitvector.h"
#include "util/crc32c.h"
#include "util/date.h"
#include "util/decimal.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/value.h"

namespace smadb::util {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("widget 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "widget 7");
  EXPECT_EQ(s.ToString(), "Not found: widget 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Status FailingHelper() { return Status::Corruption("bad page"); }

Status UsesReturnNotOk() {
  SMADB_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kCorruption);
}

Result<int> GiveSeven() { return 7; }

Status UsesAssignOrReturn(int* out) {
  SMADB_ASSIGN_OR_RETURN(int v, GiveSeven());
  *out = v;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

// ------------------------------------------------------------------ Date --

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(Date().days(), 0);
  EXPECT_EQ(Date().ToString(), "1970-01-01");
}

TEST(DateTest, FromYmdKnownValues) {
  EXPECT_EQ(Date::FromYmd(1970, 1, 2).days(), 1);
  EXPECT_EQ(Date::FromYmd(1969, 12, 31).days(), -1);
  // TPC-D calendar anchors.
  EXPECT_EQ(Date::FromYmd(1992, 1, 1).ToString(), "1992-01-01");
  EXPECT_EQ(Date::FromYmd(1998, 12, 31).ToString(), "1998-12-31");
}

TEST(DateTest, ParseValid) {
  auto d = Date::Parse("1995-06-17");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->year(), 1995);
  EXPECT_EQ(d->month(), 6);
  EXPECT_EQ(d->day(), 17);
}

TEST(DateTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Date::Parse("1995/06/17").ok());
  EXPECT_FALSE(Date::Parse("95-06-17").ok());
  EXPECT_FALSE(Date::Parse("1995-13-01").ok());
  EXPECT_FALSE(Date::Parse("1995-02-30").ok());
  EXPECT_FALSE(Date::Parse("1995-00-10").ok());
  EXPECT_FALSE(Date::Parse("1995-01-00").ok());
  EXPECT_FALSE(Date::Parse("abcd-ef-gh").ok());
  EXPECT_FALSE(Date::Parse("").ok());
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(Date::Parse("1996-02-29").ok());   // leap
  EXPECT_FALSE(Date::Parse("1900-02-29").ok());  // century, not leap
  EXPECT_TRUE(Date::Parse("2000-02-29").ok());   // 400-year rule
}

TEST(DateTest, ArithmeticAndOrdering) {
  const Date a = Date::FromYmd(1997, 4, 30);
  EXPECT_EQ(a.AddDays(1).ToString(), "1997-05-01");
  EXPECT_EQ(a.AddDays(365) - a, 365);
  EXPECT_LT(a, a.AddDays(1));
  EXPECT_GT(a, a.AddDays(-1));
}

// Property: ToYmd(FromYmd) round-trips across a whole multi-year span.
TEST(DateTest, RoundTripProperty) {
  const Date start = Date::FromYmd(1992, 1, 1);
  for (int i = 0; i < 2556; ++i) {  // the TPC-D 7-year window
    const Date d = start.AddDays(i);
    int y, m, day;
    d.ToYmd(&y, &m, &day);
    EXPECT_EQ(Date::FromYmd(y, m, day).days(), d.days());
    // And parsing the formatted form returns the same date.
    auto parsed = Date::Parse(d.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->days(), d.days());
  }
}

// --------------------------------------------------------------- Decimal --

TEST(DecimalTest, Construction) {
  EXPECT_EQ(Decimal::FromUnscaled(12, 34).cents(), 1234);
  EXPECT_EQ(Decimal::FromUnscaled(-3, 7).cents(), -307);
  EXPECT_EQ(Decimal::FromCents(5).ToString(), "0.05");
  EXPECT_EQ(Decimal::FromCents(-307).ToString(), "-3.07");
}

TEST(DecimalTest, ExactAddSub) {
  Decimal a = Decimal::FromUnscaled(0, 10);  // 0.10
  Decimal sum(0);
  for (int i = 0; i < 1000; ++i) sum += a;
  EXPECT_EQ(sum.cents(), 100 * 1000 / 10);  // exactly 100.00
  EXPECT_EQ((sum - sum).cents(), 0);
}

TEST(DecimalTest, MultiplicationRounds) {
  // 1.05 * 1.05 = 1.1025 -> 1.10 (half away from zero on the .25)
  EXPECT_EQ((Decimal(105) * Decimal(105)).cents(), 110);
  // 0.15 * 0.15 = 0.0225 -> 0.02
  EXPECT_EQ((Decimal(15) * Decimal(15)).cents(), 2);
  // negative: -1.05 * 1.05 = -1.1025 -> -1.10
  EXPECT_EQ((Decimal(-105) * Decimal(105)).cents(), -110);
  // price * (1 - discount): 100.00 * 0.94 = 94.00 exactly
  EXPECT_EQ((Decimal(10000) * (Decimal(100) - Decimal(6))).cents(), 9400);
}

TEST(DecimalTest, IntScaling) {
  EXPECT_EQ((Decimal(950) * int64_t{3}).cents(), 2850);
}

TEST(DecimalTest, Ordering) {
  EXPECT_LT(Decimal(-1), Decimal(0));
  EXPECT_LT(Decimal(99), Decimal(100));
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 16; ++i) diffs += a.Next() != b.Next();
  EXPECT_GT(diffs, 0);
}

TEST(RngTest, UniformStaysInRangeAndHitsEndpoints) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.Uniform(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ------------------------------------------------------------- BitVector --

TEST(BitVectorTest, SetGetCount) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_EQ(v.Count(), 0u);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(129));
  EXPECT_FALSE(v.Get(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Set(64, false);
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, InitiallyAllSetRespectsSize) {
  BitVector v(70, true);
  EXPECT_EQ(v.Count(), 70u);
}

TEST(BitVectorTest, AndOr) {
  BitVector a(10), b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  BitVector both = a;
  both.And(b);
  EXPECT_EQ(both.Count(), 1u);
  EXPECT_TRUE(both.Get(2));
  BitVector either = a;
  either.Or(b);
  EXPECT_EQ(either.Count(), 3u);
}

// ----------------------------------------------------------- string_util --

TEST(StringUtilTest, Format) {
  EXPECT_EQ(Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(Format("%s", ""), "");
}

TEST(StringUtilTest, SplitJoin) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StringUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(1234567), "1,234,567");
  EXPECT_EQ(WithThousands(-1234567), "-1,234,567");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(4096), "4.00 KB");
  EXPECT_EQ(HumanBytes(33.776 * 1024 * 1024), "33.78 MB");
}

TEST(StringUtilTest, ToUpperAscii) {
  EXPECT_EQ(ToUpperAscii("RaIl 7x"), "RAIL 7X");
}

// ----------------------------------------------------------------- Value --

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int32(-5).AsInt32(), -5);
  EXPECT_EQ(Value::Int64(1LL << 40).AsInt64(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::MakeDouble(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::MakeDecimal(Decimal(307)).AsDecimal().cents(), 307);
  EXPECT_EQ(Value::MakeDate(Date::FromYmd(1997, 1, 1)).AsDate().year(), 1997);
  EXPECT_EQ(Value::String("RAIL").AsString(), "RAIL");
}

TEST(ValueTest, CompareWithinFamilies) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_EQ(Value::String("AB"), Value::String("AB"));
  EXPECT_LT(Value::String("A"), Value::String("B"));
  EXPECT_GT(Value::MakeDate(Date::FromYmd(1998, 1, 1)),
            Value::MakeDate(Date::FromYmd(1997, 1, 1)));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::MakeDecimal(Decimal(-307)).ToString(), "-3.07");
  EXPECT_EQ(Value::MakeDate(Date::FromYmd(1997, 4, 30)).ToString(),
            "1997-04-30");
}

TEST(ValueTest, RawIntMatchesFamily) {
  EXPECT_EQ(Value::MakeDate(Date(123)).RawInt(), 123);
  EXPECT_EQ(Value::MakeDecimal(Decimal(456)).RawInt(), 456);
  EXPECT_EQ(Value::Int32(-9).RawInt(), -9);
}

// ---------------------------------------------------------------- Crc32c --

// Reference bit-at-a-time CRC-32C; the production code (sliced tables, and
// the interleaved SSE4.2 page path on x86) must agree with it exactly.
uint32_t ReferenceCrc32c(const uint8_t* p, size_t n, uint32_t seed) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
    }
  }
  return ~crc;
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) appendix B.4 test patterns.
  const uint8_t zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  uint8_t ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(Crc32c(ones, sizeof(ones)), 0x62A8AB43u);
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32cTest, AllPathsMatchReferenceAcrossLengths) {
  // 4096 exercises the dedicated page path; the others the streaming path
  // including non-multiple-of-8 tails.
  Rng rng(99);
  std::vector<uint8_t> buf(5000);
  for (uint8_t& byte : buf) {
    byte = static_cast<uint8_t>(rng.Uniform(0, 255));
  }
  for (const size_t n : {0u, 1u, 7u, 8u, 9u, 255u, 4095u, 4096u, 4097u}) {
    EXPECT_EQ(Crc32c(buf.data(), n), ReferenceCrc32c(buf.data(), n, 0))
        << "length " << n;
  }
}

TEST(Crc32cTest, SeedChainsIncrementally) {
  Rng rng(7);
  std::vector<uint8_t> buf(4096);
  for (uint8_t& byte : buf) {
    byte = static_cast<uint8_t>(rng.Uniform(0, 255));
  }
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  const uint32_t first = Crc32c(buf.data(), 1000);
  EXPECT_EQ(Crc32c(buf.data() + 1000, buf.size() - 1000, first), whole);
}

TEST(Crc32cTest, SingleBitFlipAlwaysDetected) {
  std::vector<uint8_t> page(4096, 0x5A);
  const uint32_t clean = Crc32c(page.data(), page.size());
  for (const size_t bit : {0u, 77u, 4095u * 8u, 12345u, 32767u}) {
    page[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32c(page.data(), page.size()), clean) << "bit " << bit;
    page[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(Crc32c(page.data(), page.size()), clean);
}

}  // namespace
}  // namespace smadb::util
