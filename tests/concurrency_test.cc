// Concurrency matrix (DESIGN.md §14): reader sessions x appender sessions
// x online scrub x checkpoint, all against one shared Database. Every test
// here is an invariant that must hold under arbitrary interleavings, so the
// whole suite runs under ThreadSanitizer in CI (label `concurrency`):
//
//   - snapshot consistency: a scan never observes a half-applied append
//     (sum/count agree with *some* prefix of the insert order);
//   - SMA soundness online: a fixed-range query whose rows the appenders
//     never touch returns the exact pre-computed answer throughout;
//   - scrub and checkpoint are safe to run while readers and appenders
//     stream (the §13 scrubber latches buckets, the checkpointer holds the
//     writer lock);
//   - session `set` statements scope to the issuing session;
//   - session-aware admission never self-deadlocks a session.
//
// Thread counts and durations are deliberately small: TSan slows execution
// ~10x and CI runners are modest; the interleavings, not the volume, are
// what these tests hunt.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "db/session.h"
#include "tests/test_util.h"
#include "util/status.h"

namespace smadb::testing {
namespace {

using db::Database;
using db::DatabaseOptions;
using db::Session;

// Every appended row carries k = 7 and v = 21, so any snapshot-consistent
// scan must report sum(k) == 7 * count and sum(v) == 21 * count. A torn
// append (tuple visible before its bytes, or a count published before the
// page write) breaks the ratio.
constexpr int64_t kK = 7;
constexpr int64_t kV = 21;

void FillRow(storage::TupleBuffer* buf, int32_t day) {
  buf->SetInt64(0, kK);
  buf->SetDate(1, util::Date(day));
  buf->SetDecimal(2, util::Decimal(kV));
  buf->SetString(3, "A");
  buf->SetString(4, "MAIL");
}

/// Seeds `n` rows with days in [0, n/8] — the "cold" region appenders never
/// touch (they write day >= 5000).
void SeedRows(Database* db, int64_t n) {
  storage::Table* t = Unwrap(db->GetTable("t"));
  storage::TupleBuffer buf(&t->schema());
  for (int64_t i = 0; i < n; ++i) {
    FillRow(&buf, static_cast<int32_t>(i / 8));
    ExpectOk(db->Insert("t", buf));
  }
}

struct ConcurrencyTest : ::testing::Test {
  ConcurrencyTest() {
    table = Unwrap(database.CreateTable("t", SyntheticSchema()));
    SeedRows(&database, kSeedRows);
    ExpectOk(database.Execute("define sma mn select min(d) from t"));
    ExpectOk(database.Execute("define sma mx select max(d) from t"));
  }

  static constexpr int64_t kSeedRows = 2000;

  Database database;
  storage::Table* table = nullptr;
};

// ---------------------------------------------------------------------------
// Snapshot consistency: readers x appenders.

TEST_F(ConcurrencyTest, ReadersHoldSnapshotConsistencyWhileAppendersStream) {
  constexpr int kReaders = 2;
  constexpr int kAppenders = 2;
  constexpr int64_t kPerAppender = 600;

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kReaders);

  std::vector<std::thread> threads;
  for (int a = 0; a < kAppenders; ++a) {
    threads.emplace_back([this, a] {
      std::unique_ptr<Session> s = database.CreateSession();
      storage::TupleBuffer buf(&table->schema());
      for (int64_t i = 0; i < kPerAppender; ++i) {
        FillRow(&buf, static_cast<int32_t>(5000 + a * 1000 + i / 8));
        ExpectOk(s->Insert("t", buf));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([this, &stop, &failures, &errors, r] {
      std::unique_ptr<Session> s = database.CreateSession();
      int64_t last_count = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto res = s->Query("select sum(k), count(*) from t");
        if (!res.ok()) {
          errors[r] = res.status().ToString();
          ++failures;
          return;
        }
        const auto row = res->rows[0].AsRef();
        const int64_t sum_k = row.GetInt64(0);
        const int64_t count = row.GetInt64(1);
        if (sum_k != kK * count || count < last_count ||
            count < kSeedRows ||
            count > kSeedRows + kAppenders * kPerAppender) {
          errors[r] = "inconsistent snapshot: sum(k)=" +
                      std::to_string(sum_k) +
                      " count=" + std::to_string(count);
          ++failures;
          return;
        }
        last_count = count;  // appends only: visible count is monotonic
      }
    });
  }
  for (int i = 0; i < kAppenders; ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kAppenders; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(failures.load(), 0) << errors[0] << " " << errors[1];
  auto final_res = Unwrap(database.Query("select count(*) from t"));
  EXPECT_EQ(final_res.rows[0].AsRef().GetInt64(0),
            kSeedRows + kAppenders * kPerAppender);
}

TEST_F(ConcurrencyTest, FixedRangeAnswersStayExactUnderAppends) {
  // The seeded region (day <= ~250) is disjoint from everything the
  // appenders write (day >= 5000), so this SMA-graded range query has one
  // correct answer for the whole run — any drift means a boundary bucket
  // was graded from a stale or torn SMA entry.
  const std::string q =
      "select sum(k), count(*) from t where d <= '1971-01-01'";
  auto expected = Unwrap(database.Query(q));
  const int64_t want_sum = expected.rows[0].AsRef().GetInt64(0);
  const int64_t want_count = expected.rows[0].AsRef().GetInt64(1);
  ASSERT_EQ(want_count, kSeedRows);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread appender([this] {
    std::unique_ptr<Session> s = database.CreateSession();
    storage::TupleBuffer buf(&table->schema());
    for (int64_t i = 0; i < 1200; ++i) {
      FillRow(&buf, static_cast<int32_t>(5000 + i / 8));
      ExpectOk(s->Insert("t", buf));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([this, &stop, &failures, &q, want_sum, want_count] {
      std::unique_ptr<Session> s = database.CreateSession();
      while (!stop.load(std::memory_order_relaxed)) {
        auto res = s->Query(q);
        if (!res.ok() ||
            res->rows[0].AsRef().GetInt64(0) != want_sum ||
            res->rows[0].AsRef().GetInt64(1) != want_count) {
          ++failures;
          return;
        }
      }
    });
  }
  appender.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// The full matrix: readers x appenders x scrub x checkpoint, file-backed.

TEST(ConcurrencyMatrixTest, ScrubAndCheckpointRaceReadersAndAppenders) {
  ScopedTempDir dir;
  DatabaseOptions options;
  options.storage_backend = storage::BackendKind::kFile;
  options.storage_path = dir.path;
  options.wal_sync_interval = 8;  // group commit in play
  std::unique_ptr<Database> db = Unwrap(Database::Open(std::move(options)));
  storage::Table* table = Unwrap(db->CreateTable("t", SyntheticSchema()));
  SeedRows(db.get(), 800);
  ExpectOk(db->Execute("define sma mn select min(d) from t"));
  ExpectOk(db->Execute("define sma mx select max(d) from t"));

  constexpr int64_t kAppends = 800;
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread appender([&] {
    std::unique_ptr<Session> s = db->CreateSession();
    storage::TupleBuffer buf(&table->schema());
    for (int64_t i = 0; i < kAppends; ++i) {
      FillRow(&buf, static_cast<int32_t>(5000 + i / 8));
      ExpectOk(s->Insert("t", buf));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::unique_ptr<Session> s = db->CreateSession();
      while (!stop.load(std::memory_order_relaxed)) {
        auto res = s->Query("select sum(k), count(*) from t");
        if (!res.ok() || res->rows[0].AsRef().GetInt64(0) !=
                             kK * res->rows[0].AsRef().GetInt64(1)) {
          ++failures;
          return;
        }
      }
    });
  }
  std::thread scrubber([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto report = db->Scrub();
      if (!report.ok() || report->corrupt_pages != 0) {
        ++failures;
        return;
      }
    }
  });
  std::thread checkpointer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!db->Checkpoint().ok()) {
        ++failures;
        return;
      }
    }
  });

  appender.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  scrubber.join();
  checkpointer.join();
  EXPECT_EQ(failures.load(), 0);

  // Clean close then reopen: every acknowledged append must survive.
  ExpectOk(db->Close());
  db.reset();
  DatabaseOptions reopen;
  reopen.storage_backend = storage::BackendKind::kFile;
  reopen.storage_path = dir.path;
  std::unique_ptr<Database> back = Unwrap(Database::Open(std::move(reopen)));
  auto res = Unwrap(back->Query("select sum(k), count(*) from t"));
  EXPECT_EQ(res.rows[0].AsRef().GetInt64(1), 800 + kAppends);
  EXPECT_EQ(res.rows[0].AsRef().GetInt64(0), kK * (800 + kAppends));
}

// ---------------------------------------------------------------------------
// Session scoping and lifecycle.

TEST_F(ConcurrencyTest, SessionSetScopesToTheIssuingSession) {
  std::unique_ptr<Session> s1 = database.CreateSession();
  std::unique_ptr<Session> s2 = database.CreateSession();

  ExpectOk(s1->Execute("set dop = 1"));
  ExpectOk(s1->Execute("set timeout_ms = 1234"));
  ExpectOk(s1->Execute("set memory_limit = 1048576"));
  ExpectOk(s1->Execute("set allow_degraded = 0"));
  EXPECT_EQ(s1->knobs().dop, 1u);
  EXPECT_EQ(s1->knobs().timeout_ms, 1234);
  EXPECT_EQ(s1->knobs().query_memory_limit, 1048576u);
  EXPECT_FALSE(s1->knobs().allow_degraded);

  // Neither the sibling session nor the database defaults moved.
  EXPECT_NE(s2->knobs().timeout_ms, 1234);
  EXPECT_TRUE(s2->knobs().allow_degraded);
  EXPECT_NE(database.timeout_ms(), 1234);
  EXPECT_TRUE(database.options().planner.allow_degraded);

  // Queries still run under the session's private knobs.
  auto res = Unwrap(s1->Query("select count(*) from t"));
  EXPECT_EQ(res.rows[0].AsRef().GetInt64(0), kSeedRows);

  // Global knobs forward through the session to the shared engine.
  ExpectOk(s1->Execute("set max_concurrent_queries = 3"));
  EXPECT_EQ(database.max_concurrent_queries(), 3u);

  // Malformed `set`s surface the Database's diagnostics unchanged.
  EXPECT_EQ(s1->Execute("set no_such_knob = 1").code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(ConcurrencyTest, SessionsActiveGaugeTracksLifetimes) {
  EXPECT_EQ(database.sessions_active(), 0u);
  {
    std::unique_ptr<Session> a = database.CreateSession();
    std::unique_ptr<Session> b = database.CreateSession();
    EXPECT_EQ(database.sessions_active(), 2u);
    EXPECT_NE(a->id(), b->id());
  }
  EXPECT_EQ(database.sessions_active(), 0u);
}

TEST_F(ConcurrencyTest, SessionRunsQueriesUnderAdmissionWithoutSelfDeadlock) {
  // cap = 1: a second query from the same session while the cap is consumed
  // by that session must be re-entrantly admitted, not queued behind itself.
  ExpectOk(database.Execute("set max_concurrent_queries = 1"));
  std::unique_ptr<Session> s = database.CreateSession();
  for (int i = 0; i < 4; ++i) {
    auto res = Unwrap(s->Query("select count(*) from t"));
    EXPECT_EQ(res.rows[0].AsRef().GetInt64(0), kSeedRows);
  }
}

TEST_F(ConcurrencyTest, ConcurrentSessionsMixQueriesAndKnobChanges) {
  // `set` storms from one session must never corrupt queries running in
  // others: each query snapshots its knobs at admission.
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread tuner([this, &stop] {
    std::unique_ptr<Session> s = database.CreateSession();
    size_t dop = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      ExpectOk(s->Execute("set dop = " + std::to_string(dop)));
      ExpectOk(s->Execute("set batch_size = " +
                          std::to_string(256 << (dop % 3))));
      dop = dop % 4 + 1;
      auto res = s->Query("select sum(k), count(*) from t");
      if (!res.ok()) return;
    }
  });
  std::vector<std::thread> workers;
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([this, &stop, &failures] {
      std::unique_ptr<Session> s = database.CreateSession();
      for (int i = 0; i < 30 && !stop.load(std::memory_order_relaxed); ++i) {
        auto res = s->Query("select sum(k), count(*) from t");
        if (!res.ok() || res->rows[0].AsRef().GetInt64(0) !=
                             kK * res->rows[0].AsRef().GetInt64(1)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true, std::memory_order_relaxed);
  tuner.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace smadb::testing
