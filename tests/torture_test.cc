// Crash-recovery torture sweep (DESIGN.md §13): every durable-path
// failpoint x crash-on-hit-k x the scripted workload, each case checked
// against the recovery oracle in tests/recovery_oracle.h.
//
// The smoke sweep (k in 1..4, per-commit syncing) runs on every PR in about
// a minute. The full sweep (k in 1..8 x sync intervals {1, 4}) is gated on
// SMADB_TORTURE_FULL=1 and wired into ctest's `nightly` configuration.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "tests/recovery_oracle.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace smadb::testing {
namespace {

struct TortureTest : ::testing::Test {
  ~TortureTest() override { util::fault::DisarmAll(); }

  /// One case in a fresh directory; asserts the oracle held.
  TortureResult RunCase(const std::string& point, int k,
                        size_t wal_sync_interval = 1) {
    ScopedTempDir dir;
    TortureResult r = RunTortureCase(dir.path, point, k, wal_sync_interval);
    EXPECT_TRUE(r.error.empty())
        << "failpoint=" << point << " k=" << k
        << " interval=" << wal_sync_interval << " crashed=" << r.crashed
        << " step=" << r.step_reached << " flushed=" << r.flushed_lsn
        << ": " << r.error;
    return r;
  }
};

// Every failpoint x k in 1..4: some cases crash mid-workload, some never
// reach hit k and complete cleanly — the oracle covers both outcomes.
TEST_F(TortureTest, SmokeSweepEveryDurableFailpoint) {
  size_t crashes = 0;
  for (const std::string& point : TortureFailpoints()) {
    for (int k = 1; k <= 4; ++k) {
      const TortureResult r = RunCase(point, k);
      crashes += r.crashed ? 1 : 0;
    }
  }
  // The sweep is vacuous unless a healthy share of cases actually crash
  // (wal.append / wal.sync alone crash at every k in 1..4).
  EXPECT_GE(crashes, 8u);
}

// Same case twice => byte-identical outcome: the harness is deterministic
// under a fixed seed, so any sweep failure is replayable in isolation.
TEST_F(TortureTest, CasesAreDeterministic) {
  for (const std::string& point :
       {std::string("wal.sync"), std::string("disk.write"),
        std::string("manifest.rename")}) {
    const TortureResult a = RunCase(point, 2);
    const TortureResult b = RunCase(point, 2);
    EXPECT_EQ(a.crashed, b.crashed) << point;
    EXPECT_EQ(a.step_reached, b.step_reached) << point;
    EXPECT_EQ(a.flushed_lsn, b.flushed_lsn) << point;
    EXPECT_EQ(a.synced_lsn, b.synced_lsn) << point;
    EXPECT_EQ(a.replayed, b.replayed) << point;
  }
}

// Group commit widens the lossable window; the oracle's flushed-prefix
// contract is interval-independent.
TEST_F(TortureTest, GroupCommitIntervalsHoldTheSameContract) {
  for (const size_t interval : {size_t{4}, size_t{64}}) {
    RunCase("wal.sync", 2, interval);
    RunCase("disk.write", 1, interval);
  }
}

// The full sweep: k in 1..8 x sync intervals {1, 4} over every failpoint.
// ~4x the smoke cost; nightly / manual (SMADB_TORTURE_FULL=1).
TEST_F(TortureTest, FullSweep) {
  if (std::getenv("SMADB_TORTURE_FULL") == nullptr) {
    GTEST_SKIP() << "set SMADB_TORTURE_FULL=1 (or ctest -C nightly) to run";
  }
  for (const size_t interval : {size_t{1}, size_t{4}}) {
    for (const std::string& point : TortureFailpoints()) {
      for (int k = 1; k <= 8; ++k) {
        RunCase(point, k, interval);
      }
    }
  }
}

}  // namespace
}  // namespace smadb::testing
