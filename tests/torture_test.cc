// Crash-recovery torture sweep (DESIGN.md §13): every durable-path
// failpoint x crash-on-hit-k x the scripted workload, each case checked
// against the recovery oracle in tests/recovery_oracle.h.
//
// The smoke sweep (k in 1..4, per-commit syncing) runs on every PR in about
// a minute. The full sweep (k in 1..8 x sync intervals {1, 4}) is gated on
// SMADB_TORTURE_FULL=1 and wired into ctest's `nightly` configuration.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "db/session.h"

#include "tests/recovery_oracle.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace smadb::testing {
namespace {

struct TortureTest : ::testing::Test {
  ~TortureTest() override { util::fault::DisarmAll(); }

  /// One case in a fresh directory; asserts the oracle held.
  TortureResult RunCase(const std::string& point, int k,
                        size_t wal_sync_interval = 1) {
    ScopedTempDir dir;
    TortureResult r = RunTortureCase(dir.path, point, k, wal_sync_interval);
    EXPECT_TRUE(r.error.empty())
        << "failpoint=" << point << " k=" << k
        << " interval=" << wal_sync_interval << " crashed=" << r.crashed
        << " step=" << r.step_reached << " flushed=" << r.flushed_lsn
        << ": " << r.error;
    return r;
  }
};

// Every failpoint x k in 1..4: some cases crash mid-workload, some never
// reach hit k and complete cleanly — the oracle covers both outcomes.
TEST_F(TortureTest, SmokeSweepEveryDurableFailpoint) {
  size_t crashes = 0;
  for (const std::string& point : TortureFailpoints()) {
    for (int k = 1; k <= 4; ++k) {
      const TortureResult r = RunCase(point, k);
      crashes += r.crashed ? 1 : 0;
    }
  }
  // The sweep is vacuous unless a healthy share of cases actually crash
  // (wal.append / wal.sync alone crash at every k in 1..4).
  EXPECT_GE(crashes, 8u);
}

// Same case twice => byte-identical outcome: the harness is deterministic
// under a fixed seed, so any sweep failure is replayable in isolation.
TEST_F(TortureTest, CasesAreDeterministic) {
  for (const std::string& point :
       {std::string("wal.sync"), std::string("disk.write"),
        std::string("manifest.rename")}) {
    const TortureResult a = RunCase(point, 2);
    const TortureResult b = RunCase(point, 2);
    EXPECT_EQ(a.crashed, b.crashed) << point;
    EXPECT_EQ(a.step_reached, b.step_reached) << point;
    EXPECT_EQ(a.flushed_lsn, b.flushed_lsn) << point;
    EXPECT_EQ(a.synced_lsn, b.synced_lsn) << point;
    EXPECT_EQ(a.replayed, b.replayed) << point;
  }
}

// Group commit widens the lossable window; the oracle's flushed-prefix
// contract is interval-independent.
TEST_F(TortureTest, GroupCommitIntervalsHoldTheSameContract) {
  for (const size_t interval : {size_t{4}, size_t{64}}) {
    RunCase("wal.sync", 2, interval);
    RunCase("disk.write", 1, interval);
  }
}

// The full sweep: k in 1..8 x sync intervals {1, 4} over every failpoint.
// ~4x the smoke cost; nightly / manual (SMADB_TORTURE_FULL=1).
TEST_F(TortureTest, FullSweep) {
  if (std::getenv("SMADB_TORTURE_FULL") == nullptr) {
    GTEST_SKIP() << "set SMADB_TORTURE_FULL=1 (or ctest -C nightly) to run";
  }
  for (const size_t interval : {size_t{1}, size_t{4}}) {
    for (const std::string& point : TortureFailpoints()) {
      for (int k = 1; k <= 8; ++k) {
        RunCase(point, k, interval);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrent writers (DESIGN.md §14): three sessions stream disjoint key
// ranges through the group-commit window while the main thread issues sync
// barriers; a kill-point is armed on `wal.sync`, so the crash lands in the
// middle of a group commit with writers in flight.
//
// The scripted shadow model above can't cover this — concurrent inserts
// interleave LSNs nondeterministically — so the oracle is the per-writer
// shape of the flushed prefix instead:
//
//   1. prefix: each writer's recovered keys are exactly [0, n_w) of its
//      insert order — WAL replay applies records in LSN order and each
//      writer's records are themselves ordered, so a gap or reordering
//      means replay dropped or reshuffled a flushed record;
//   2. floor: n_w >= every count acknowledged before a sync barrier that
//      returned OK (acknowledged-durable rows survive);
//   3. ceiling: n_w <= acknowledged + 1 (only the one in-flight insert per
//      writer may additionally survive, when its record made the flushed
//      prefix but its acknowledgement never came back).

TEST_F(TortureTest, ConcurrentWritersHoldTheFlushedLsnOracle) {
  constexpr int kWriters = 3;
  constexpr int64_t kPerWriter = 300;
  constexpr int64_t kStride = 1'000'000;  // writer w owns [w*kStride, ...)

  for (int k : {1, 2, 4}) {  // which wal.sync hit becomes the kill-point
    ScopedTempDir dir;
    util::fault::Seed(0xD15EA5E);
    std::array<std::atomic<int64_t>, kWriters> acked{};
    std::array<int64_t, kWriters> synced_floor{};

    {
      db::DatabaseOptions options;
      options.storage_backend = storage::BackendKind::kFile;
      options.storage_path = dir.path;
      options.wal_sync_interval = 8;  // a real group-commit window
      auto opened = db::Database::Open(std::move(options));
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      db::Database* db = opened->get();
      auto created = db->CreateTable("t", oracle_internal::OracleSchema());
      ASSERT_TRUE(created.ok());
      ASSERT_TRUE(db->Execute("define sma mn select min(d) from t").ok());
      ASSERT_TRUE(db->Execute("define sma mx select max(d) from t").ok());
      ASSERT_TRUE(db->SyncWal().ok());  // schema durable before the storm

      util::fault::Arm("wal.sync", {.count = 1,
                                    .kind = util::FaultKind::kCrash,
                                    .skip = k - 1});

      std::atomic<int> active{kWriters};
      std::vector<std::thread> writers;
      for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
          auto session = db->CreateSession();
          storage::TupleBuffer buf(&(*created)->schema());
          for (int64_t i = 0; i < kPerWriter; ++i) {
            oracle_internal::FillRow(&buf, w * kStride + i);
            if (!session->Insert("t", buf).ok()) break;
            acked[w].fetch_add(1, std::memory_order_release);
          }
          active.fetch_sub(1, std::memory_order_release);
        });
      }

      // Sync barriers record durable floors: rows acknowledged before an
      // OK barrier are in the flushed prefix, whatever the crash does next.
      while (active.load(std::memory_order_acquire) > 0 &&
             !util::fault::CrashFired()) {
        std::array<int64_t, kWriters> snap;
        for (int w = 0; w < kWriters; ++w) {
          snap[w] = acked[w].load(std::memory_order_acquire);
        }
        if (db->SyncWal().ok()) synced_floor = snap;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (auto& t : writers) t.join();

      ASSERT_TRUE(util::fault::CrashFired())
          << "k=" << k << ": the wal.sync kill-point never fired";
      ASSERT_TRUE(db->CrashForTesting().ok());
      util::fault::DisarmAll();
    }

    auto reopened = [&] {
      db::DatabaseOptions options;
      options.storage_backend = storage::BackendKind::kFile;
      options.storage_path = dir.path;
      return db::Database::Open(std::move(options));
    }();
    ASSERT_TRUE(reopened.ok())
        << "k=" << k << ": " << reopened.status().ToString();
    storage::Table* table = *(*reopened)->GetTable("t");

    // Quiescent single-threaded walk, in physical (== replay LSN) order.
    std::array<std::vector<int64_t>, kWriters> recovered;
    const uint32_t buckets =
        table->num_pages() == 0
            ? 0
            : table->BucketOfPage(table->num_pages() - 1) + 1;
    for (uint32_t b = 0; b < buckets; ++b) {
      ASSERT_TRUE(table
                      ->ForEachTupleInBucket(
                          b,
                          [&](storage::TupleRef t, storage::Rid) {
                            const int64_t key = t.GetInt64(0);
                            const int64_t w = key / kStride;
                            ASSERT_LT(w, kWriters) << "phantom key " << key;
                            recovered[w].push_back(key % kStride);
                          })
                      .ok());
    }
    for (int w = 0; w < kWriters; ++w) {
      const int64_t n = static_cast<int64_t>(recovered[w].size());
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(recovered[w][i], i)
            << "k=" << k << " writer " << w
            << ": recovered keys are not a prefix of the insert order";
      }
      EXPECT_GE(n, synced_floor[w])
          << "k=" << k << " writer " << w << ": acknowledged-durable rows "
          << "lost (acked " << acked[w].load() << ")";
      EXPECT_LE(n, acked[w].load() + 1)
          << "k=" << k << " writer " << w
          << ": more rows recovered than were ever inserted";
    }
  }
}

}  // namespace
}  // namespace smadb::testing
