// Unit tests for smadb::storage — simulated disk, buffer pool, schema,
// tuples, bucketed table, catalog.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "util/rng.h"

namespace smadb::storage {
namespace {

using util::TypeId;
using util::Value;

// ------------------------------------------------------------------ Disk --

TEST(DiskTest, CreateFindAllocate) {
  SimulatedDisk disk;
  auto f = disk.CreateFile("a");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(disk.CreateFile("a").status().code() ==
              util::StatusCode::kAlreadyExists);
  auto found = disk.FindFile("a");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *f);
  EXPECT_FALSE(disk.FindFile("b").ok());
  auto p0 = disk.AllocatePage(*f);
  auto p1 = disk.AllocatePage(*f);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(*disk.NumPages(*f), 2u);
}

TEST(DiskTest, ReadWriteRoundTrip) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  ASSERT_TRUE(disk.AllocatePage(f).ok());
  Page w;
  w.Zero();
  w.WriteAt<uint64_t>(16, 0xDEADBEEFull);
  ASSERT_TRUE(disk.WritePage(f, 0, w).ok());
  Page r;
  ASSERT_TRUE(disk.ReadPage(f, 0, &r).ok());
  EXPECT_EQ(r.ReadAt<uint64_t>(16), 0xDEADBEEFull);
}

TEST(DiskTest, BoundsChecking) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  Page p;
  EXPECT_FALSE(disk.ReadPage(f, 0, &p).ok());
  EXPECT_FALSE(disk.ReadPage(f + 1, 0, &p).ok());
  EXPECT_FALSE(disk.WritePage(f, 5, p).ok());
}

TEST(DiskTest, SequentialVsRandomClassification) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  disk.ResetStats();
  Page p;
  // First read of a fresh file is a short forward skip ("near"), then
  // pages 1 and 2 stream sequentially.
  ASSERT_TRUE(disk.ReadPage(f, 0, &p).ok());
  ASSERT_TRUE(disk.ReadPage(f, 1, &p).ok());
  ASSERT_TRUE(disk.ReadPage(f, 2, &p).ok());
  // Jump backwards: random.
  ASSERT_TRUE(disk.ReadPage(f, 0, &p).ok());
  // Short forward skip within the near window: near.
  ASSERT_TRUE(disk.ReadPage(f, 5, &p).ok());
  EXPECT_EQ(disk.stats().page_reads, 5u);
  EXPECT_EQ(disk.stats().sequential_reads, 2u);
  EXPECT_EQ(disk.stats().near_reads, 2u);
  EXPECT_EQ(disk.stats().random_reads, 1u);
}

TEST(DiskTest, NearWindowBoundary) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 3000; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  Page p;
  ASSERT_TRUE(disk.ReadPage(f, 0, &p).ok());
  disk.ResetStats();
  // Exactly at the window: near; beyond it: random (full seek).
  ASSERT_TRUE(disk.ReadPage(
                  f, static_cast<uint32_t>(kNearSeekWindowPages), &p)
                  .ok());
  EXPECT_EQ(disk.stats().near_reads, 1u);
  ASSERT_TRUE(disk.ReadPage(
                  f,
                  static_cast<uint32_t>(2 * kNearSeekWindowPages + 1), &p)
                  .ok());
  EXPECT_EQ(disk.stats().random_reads, 1u);
}

TEST(DiskTest, ModeledSecondsScalesWithAccessPattern) {
  DiskModel model;  // 8 ms full seek, 1.5 ms short seek, 9 MB/s
  IoStats seq;
  seq.sequential_reads = 1000;
  IoStats near;
  near.near_reads = 1000;
  IoStats rnd;
  rnd.random_reads = 1000;
  EXPECT_GT(near.ModeledSeconds(model), seq.ModeledSeconds(model) * 3);
  EXPECT_GT(rnd.ModeledSeconds(model), near.ModeledSeconds(model) * 3);
}

TEST(DiskTest, TruncateResets) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  ASSERT_TRUE(disk.AllocatePage(f).ok());
  ASSERT_TRUE(disk.TruncateFile(f).ok());
  EXPECT_EQ(*disk.NumPages(f), 0u);
}

TEST(DiskTest, RemoveFileTombstonesAndReusesId) {
  SimulatedDisk disk;
  FileId a = *disk.CreateFile("a");
  FileId b = *disk.CreateFile("b");
  ASSERT_TRUE(disk.AllocatePage(a).ok());
  ASSERT_TRUE(disk.RemoveFile(a).ok());
  // The name is free, the id is dead until reassigned.
  EXPECT_EQ(disk.FindFile("a").status().code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(disk.AllocatePage(a).ok());
  EXPECT_FALSE(disk.RemoveFile(a).ok());  // double remove
  EXPECT_EQ(*disk.FindFile("b"), b);
  // CreateFile reuses the lowest tombstoned id, and rejects empty names
  // (empty marks the tombstone).
  EXPECT_FALSE(disk.CreateFile("").ok());
  FileId c = *disk.CreateFile("c");
  EXPECT_EQ(c, a);
  EXPECT_EQ(*disk.NumPages(c), 0u);
  EXPECT_EQ(disk.NumFiles(), 2u);
}

// ----------------------------------------------------------- BufferPool --

TEST(BufferPoolTest, FetchCachesPages) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 4);
  {
    auto g = pool.Fetch(f, 0);
    ASSERT_TRUE(g.ok());
  }
  {
    auto g = pool.Fetch(f, 0);
    ASSERT_TRUE(g.ok());
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(disk.stats().page_reads, 1u);
}

TEST(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 2);
  {
    auto g = pool.Fetch(f, 0);
    ASSERT_TRUE(g.ok());
    g->MutablePage()->WriteAt<uint32_t>(0, 77);
  }
  // Evict page 0 by touching two others.
  { ASSERT_TRUE(pool.Fetch(f, 1).ok()); }
  { ASSERT_TRUE(pool.Fetch(f, 2).ok()); }
  Page p;
  ASSERT_TRUE(disk.ReadPage(f, 0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 77u);
}

TEST(BufferPoolTest, LruEvictsOldest) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 2);
  { ASSERT_TRUE(pool.Fetch(f, 0).ok()); }
  { ASSERT_TRUE(pool.Fetch(f, 1).ok()); }
  { ASSERT_TRUE(pool.Fetch(f, 0).ok()); }  // 0 now MRU
  { ASSERT_TRUE(pool.Fetch(f, 2).ok()); }  // evicts 1
  pool.ResetStats();
  { ASSERT_TRUE(pool.Fetch(f, 0).ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);  // 0 still cached
  { ASSERT_TRUE(pool.Fetch(f, 1).ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);  // 1 was evicted
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 2);
  auto pinned = pool.Fetch(f, 0);
  ASSERT_TRUE(pinned.ok());
  pinned->MutablePage()->WriteAt<uint32_t>(8, 5);
  { ASSERT_TRUE(pool.Fetch(f, 1).ok()); }
  { ASSERT_TRUE(pool.Fetch(f, 2).ok()); }
  { ASSERT_TRUE(pool.Fetch(f, 3).ok()); }
  // The pinned frame was never evicted or corrupted.
  EXPECT_EQ(pinned->page()->ReadAt<uint32_t>(8), 5u);
}

TEST(BufferPoolTest, PoolExhaustionReported) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 2);
  auto g0 = pool.Fetch(f, 0);
  auto g1 = pool.Fetch(f, 1);
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  auto g2 = pool.Fetch(f, 2);
  EXPECT_FALSE(g2.ok());  // everything pinned
}

TEST(BufferPoolTest, GuardMoveAssignReleasesTheOldPin) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 2);
  PageGuard g0 = std::move(pool.Fetch(f, 0)).value();
  PageGuard g1 = std::move(pool.Fetch(f, 1)).value();
  ASSERT_FALSE(pool.Fetch(f, 2).ok());  // both frames pinned

  // Adopting g1's pin must first drop g0's; page 0 becomes evictable.
  g0 = std::move(g1);
  ASSERT_TRUE(g0.valid());
  EXPECT_FALSE(g1.valid());
  EXPECT_TRUE(pool.Fetch(f, 2).ok());
}

TEST(BufferPoolTest, GuardSelfMoveAssignKeepsThePin) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 1);
  PageGuard g = std::move(pool.Fetch(f, 0)).value();
  const Page* before = g.page();

  PageGuard& self = g;  // via reference: the check must be dynamic
  g = std::move(self);
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.page(), before);
  // Still pinned: the only frame cannot be reused...
  EXPECT_FALSE(pool.Fetch(f, 1).ok());
  // ...until the guard is released exactly once.
  g.Release();
  EXPECT_TRUE(pool.Fetch(f, 1).ok());
}

TEST(BufferPoolTest, DropAllSimulatesColdStart) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 4);
  { ASSERT_TRUE(pool.Fetch(f, 0).ok()); }
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.num_cached(), 0u);
  disk.ResetStats();
  { ASSERT_TRUE(pool.Fetch(f, 0).ok()); }
  EXPECT_EQ(disk.stats().page_reads, 1u);  // re-faulted from disk
}

TEST(BufferPoolTest, DropFileIsSelective) {
  SimulatedDisk disk;
  FileId a = *disk.CreateFile("a");
  FileId b = *disk.CreateFile("b");
  ASSERT_TRUE(disk.AllocatePage(a).ok());
  ASSERT_TRUE(disk.AllocatePage(b).ok());
  BufferPool pool(&disk, 4);
  { ASSERT_TRUE(pool.Fetch(a, 0).ok()); }
  { ASSERT_TRUE(pool.Fetch(b, 0).ok()); }
  ASSERT_TRUE(pool.DropFile(a).ok());
  pool.ResetStats();
  { ASSERT_TRUE(pool.Fetch(b, 0).ok()); }
  EXPECT_EQ(pool.stats().hits, 1u);
  { ASSERT_TRUE(pool.Fetch(a, 0).ok()); }
  EXPECT_EQ(pool.stats().misses, 1u);
}

// Randomized stress: the pool must behave exactly like the raw disk under
// an arbitrary mix of reads, writes, and cold drops.
TEST(BufferPoolTest, RandomizedOpsMatchShadowDisk) {
  SimulatedDisk disk;
  FileId f = *disk.CreateFile("a");
  constexpr int kPages = 64;
  for (int i = 0; i < kPages; ++i) ASSERT_TRUE(disk.AllocatePage(f).ok());
  BufferPool pool(&disk, 8);  // far smaller than the file: constant churn

  std::vector<uint32_t> shadow(kPages, 0);  // expected word at offset 8
  util::Rng rng(1234);
  for (int step = 0; step < 5000; ++step) {
    const uint32_t page = static_cast<uint32_t>(rng.Uniform(0, kPages - 1));
    switch (rng.Uniform(0, 9)) {
      case 0: {  // cold drop
        ASSERT_TRUE(pool.DropAll().ok());
        break;
      }
      case 1:
      case 2:
      case 3: {  // write
        auto g = pool.Fetch(f, page);
        ASSERT_TRUE(g.ok());
        const uint32_t v = static_cast<uint32_t>(rng.Next());
        g->MutablePage()->WriteAt<uint32_t>(8, v);
        shadow[page] = v;
        break;
      }
      default: {  // read
        auto g = pool.Fetch(f, page);
        ASSERT_TRUE(g.ok());
        ASSERT_EQ(g->page()->ReadAt<uint32_t>(8), shadow[page])
            << "page " << page << " step " << step;
        break;
      }
    }
  }
  // After a final flush the raw disk agrees everywhere.
  ASSERT_TRUE(pool.FlushAll().ok());
  Page p;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(disk.ReadPage(f, static_cast<uint32_t>(i), &p).ok());
    EXPECT_EQ(p.ReadAt<uint32_t>(8), shadow[static_cast<size_t>(i)]);
  }
}

// ---------------------------------------------------------------- Schema --

Schema TestSchema() {
  return Schema({Field::Int64("id"), Field::Date("d"),
                 Field::Decimal("amount"), Field::String("tag", 8)});
}

TEST(SchemaTest, OffsetsAndWidths) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 12u);
  EXPECT_EQ(s.offset(3), 20u);
  EXPECT_EQ(s.tuple_size(), 28u);
}

TEST(SchemaTest, FieldIndexLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.FieldIndex("amount"), 2u);
  EXPECT_FALSE(s.FieldIndex("missing").ok());
}

TEST(SchemaTest, Equals) {
  EXPECT_TRUE(TestSchema().Equals(TestSchema()));
  Schema other({Field::Int64("id")});
  EXPECT_FALSE(TestSchema().Equals(other));
}

// ----------------------------------------------------------------- Tuple --

TEST(TupleTest, RoundTripAllTypes) {
  Schema s({Field::Int32("a"), Field::Int64("b"), Field::Double("c"),
            Field::Decimal("d"), Field::Date("e"), Field::String("f", 10)});
  TupleBuffer t(&s);
  t.SetInt32(0, -7);
  t.SetInt64(1, 1LL << 40);
  t.SetDouble(2, 3.25);
  t.SetDecimal(3, util::Decimal(1234));
  t.SetDate(4, util::Date::FromYmd(1997, 4, 30));
  t.SetString(5, "MAIL");
  TupleRef r = t.AsRef();
  EXPECT_EQ(r.GetInt32(0), -7);
  EXPECT_EQ(r.GetInt64(1), 1LL << 40);
  EXPECT_DOUBLE_EQ(r.GetDouble(2), 3.25);
  EXPECT_EQ(r.GetDecimal(3).cents(), 1234);
  EXPECT_EQ(r.GetDate(4).ToString(), "1997-04-30");
  EXPECT_EQ(r.GetString(5), "MAIL");
}

TEST(TupleTest, StringShorterThanCapacityAndOverwrite) {
  Schema s({Field::String("f", 10)});
  TupleBuffer t(&s);
  t.SetString(0, "LONGERTAG");
  t.SetString(0, "AB");  // overwrite must clear the old tail
  EXPECT_EQ(t.AsRef().GetString(0), "AB");
}

TEST(TupleTest, GetValueAndSetValueAgree) {
  Schema s = TestSchema();
  TupleBuffer a(&s);
  a.SetInt64(0, 9);
  a.SetDate(1, util::Date(42));
  a.SetDecimal(2, util::Decimal(7));
  a.SetString(3, "x");
  TupleBuffer b(&s);
  for (size_t c = 0; c < s.num_fields(); ++c) {
    b.SetValue(c, a.AsRef().GetValue(c));
  }
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), s.tuple_size()));
}

TEST(TupleTest, GetRawIntUniformRepresentation) {
  Schema s = TestSchema();
  TupleBuffer t(&s);
  t.SetInt64(0, -5);
  t.SetDate(1, util::Date(100));
  t.SetDecimal(2, util::Decimal(307));
  EXPECT_EQ(t.AsRef().GetRawInt(0), -5);
  EXPECT_EQ(t.AsRef().GetRawInt(1), 100);
  EXPECT_EQ(t.AsRef().GetRawInt(2), 307);
}

// ----------------------------------------------------------------- Table --

struct TableFixture : ::testing::Test {
  TableFixture() : pool(&disk, 512), catalog(&pool) {}

  Table* MakeTable(uint32_t bucket_pages = 1) {
    auto t = catalog.CreateTable("t" + std::to_string(++counter), TestSchema(),
                                 TableOptions{bucket_pages});
    EXPECT_TRUE(t.ok());
    return *t;
  }

  void Fill(Table* t, int64_t n) {
    TupleBuffer buf(&t->schema());
    for (int64_t i = 0; i < n; ++i) {
      buf.SetInt64(0, i);
      buf.SetDate(1, util::Date(static_cast<int32_t>(i / 10)));
      buf.SetDecimal(2, util::Decimal(i * 3));
      buf.SetString(3, i % 2 == 0 ? "even" : "odd");
      ASSERT_TRUE(t->Append(buf).ok());
    }
  }

  SimulatedDisk disk;
  BufferPool pool;
  Catalog catalog;
  int counter = 0;
};

TEST_F(TableFixture, AppendCountsTuplesAndPages) {
  Table* t = MakeTable();
  const uint32_t per_page = t->tuples_per_page();
  ASSERT_GT(per_page, 0u);
  Fill(t, per_page + 1);
  EXPECT_EQ(t->num_tuples(), per_page + 1);
  EXPECT_EQ(t->num_pages(), 2u);
  EXPECT_EQ(t->num_buckets(), 2u);
}

TEST_F(TableFixture, RidsAreDense) {
  Table* t = MakeTable();
  TupleBuffer buf(&t->schema());
  buf.SetInt64(0, 1);
  buf.SetString(3, "x");
  Rid r0, r1;
  ASSERT_TRUE(t->Append(buf, &r0).ok());
  ASSERT_TRUE(t->Append(buf, &r1).ok());
  EXPECT_EQ(r0, (Rid{0, 0}));
  EXPECT_EQ(r1, (Rid{0, 1}));
}

TEST_F(TableFixture, ForEachTupleInBucketSeesEverythingOnce) {
  Table* t = MakeTable(/*bucket_pages=*/2);
  Fill(t, 1000);
  int64_t seen = 0;
  int64_t sum = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ASSERT_TRUE(t->ForEachTupleInBucket(b, [&](const TupleRef& tup, Rid) {
                     ++seen;
                     sum += tup.GetInt64(0);
                   }).ok());
  }
  EXPECT_EQ(seen, 1000);
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST_F(TableFixture, BucketPageRangeRespectsPartialTail) {
  Table* t = MakeTable(/*bucket_pages=*/4);
  Fill(t, static_cast<int64_t>(t->tuples_per_page()) * 5);  // 5 pages
  EXPECT_EQ(t->num_buckets(), 2u);
  auto [f0, e0] = t->BucketPageRange(0);
  auto [f1, e1] = t->BucketPageRange(1);
  EXPECT_EQ(f0, 0u);
  EXPECT_EQ(e0, 4u);
  EXPECT_EQ(f1, 4u);
  EXPECT_EQ(e1, 5u);  // partial bucket
}

TEST_F(TableFixture, ReadAndUpdateTuple) {
  Table* t = MakeTable();
  Fill(t, 10);
  auto row = t->ReadTuple(Rid{0, 3});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->AsRef().GetInt64(0), 3);
  ASSERT_TRUE(t->UpdateColumn(Rid{0, 3}, 0, Value::Int64(99)).ok());
  EXPECT_EQ(t->ReadTuple(Rid{0, 3})->AsRef().GetInt64(0), 99);
  // Neighbouring columns untouched.
  EXPECT_EQ(t->ReadTuple(Rid{0, 3})->AsRef().GetString(3), "odd");
}

TEST_F(TableFixture, UpdateOutOfRangeFails) {
  Table* t = MakeTable();
  Fill(t, 5);
  EXPECT_FALSE(t->UpdateColumn(Rid{9, 0}, 0, Value::Int64(0)).ok());
  EXPECT_FALSE(t->UpdateColumn(Rid{0, 200}, 0, Value::Int64(0)).ok());
  EXPECT_FALSE(t->UpdateColumn(Rid{0, 0}, 99, Value::Int64(0)).ok());
}

TEST_F(TableFixture, DeleteTombstonesTuple) {
  Table* t = MakeTable();
  Fill(t, 20);
  EXPECT_EQ(t->num_live_tuples(), 20u);
  ASSERT_TRUE(t->DeleteTuple(Rid{0, 5}).ok());
  EXPECT_EQ(t->num_live_tuples(), 19u);
  EXPECT_EQ(t->num_deleted(), 1u);
  // Deleted tuples become invisible to point reads and updates.
  EXPECT_EQ(t->ReadTuple(Rid{0, 5}).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_EQ(t->UpdateColumn(Rid{0, 5}, 0, Value::Int64(1)).code(),
            util::StatusCode::kNotFound);
  // Double delete rejected; neighbours unaffected.
  EXPECT_EQ(t->DeleteTuple(Rid{0, 5}).code(), util::StatusCode::kNotFound);
  EXPECT_TRUE(t->ReadTuple(Rid{0, 4}).ok());
  EXPECT_TRUE(t->ReadTuple(Rid{0, 6}).ok());
}

TEST_F(TableFixture, IterationSkipsDeleted) {
  Table* t = MakeTable();
  Fill(t, 50);
  for (uint16_t s : {0, 7, 49}) {
    ASSERT_TRUE(t->DeleteTuple(Rid{0, s}).ok());
  }
  int64_t seen = 0;
  ASSERT_TRUE(t->ForEachTupleInBucket(0, [&](const TupleRef& tup, Rid rid) {
                   ++seen;
                   EXPECT_NE(rid.slot, 0);
                   EXPECT_NE(rid.slot, 7);
                   EXPECT_NE(rid.slot, 49);
                   EXPECT_NE(tup.GetInt64(0), 7);
                 }).ok());
  EXPECT_EQ(seen, 47);
}

TEST_F(TableFixture, AppendAfterDeleteKeepsSlotRetired) {
  // Tombstoned slots are never reused — Rids and SMA positional
  // correspondence stay stable.
  Table* t = MakeTable();
  Fill(t, 3);
  ASSERT_TRUE(t->DeleteTuple(Rid{0, 2}).ok());
  TupleBuffer buf(&t->schema());
  buf.SetInt64(0, 99);
  buf.SetString(3, "x");
  Rid rid;
  ASSERT_TRUE(t->Append(buf, &rid).ok());
  EXPECT_EQ(rid, (Rid{0, 3}));
  EXPECT_EQ(t->ReadTuple(Rid{0, 2}).status().code(),
            util::StatusCode::kNotFound);
}

TEST_F(TableFixture, VacuumSqueezesTombstones) {
  Table* t = MakeTable();
  Fill(t, 40);
  for (uint16_t s : {3, 4, 5, 39}) {
    ASSERT_TRUE(t->DeleteTuple(Rid{0, s}).ok());
  }
  ASSERT_TRUE(t->Vacuum().ok());
  EXPECT_EQ(t->num_tuples(), 36u);
  EXPECT_EQ(t->num_deleted(), 0u);
  // Survivors are dense, in order, with no tombstones left.
  std::vector<int64_t> keys;
  ASSERT_TRUE(t->ForEachTupleInBucket(0, [&](const TupleRef& tup, Rid rid) {
                   EXPECT_EQ(rid.slot, keys.size());
                   keys.push_back(tup.GetInt64(0));
                 }).ok());
  ASSERT_EQ(keys.size(), 36u);
  for (int64_t k : {3, 4, 5, 39}) {
    EXPECT_EQ(std::count(keys.begin(), keys.end(), k), 0);
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Idempotent.
  ASSERT_TRUE(t->Vacuum().ok());
  EXPECT_EQ(t->num_tuples(), 36u);
}

TEST_F(TableFixture, VacuumFreesTailSlotsForAppend) {
  Table* t = MakeTable();
  Fill(t, 5);
  ASSERT_TRUE(t->DeleteTuple(Rid{0, 4}).ok());
  ASSERT_TRUE(t->Vacuum().ok());
  TupleBuffer buf(&t->schema());
  buf.SetInt64(0, 777);
  buf.SetString(3, "x");
  Rid rid;
  ASSERT_TRUE(t->Append(buf, &rid).ok());
  EXPECT_EQ(rid, (Rid{0, 4}));  // the freed tail slot is reused
  EXPECT_EQ(t->num_pages(), 1u);
}

TEST_F(TableFixture, CapacityAccountsForBitmap) {
  Table* t = MakeTable();
  // header + bitmap + slots must fit the page.
  EXPECT_LE(kPageHeaderSize + (t->tuples_per_page() + 7) / 8 +
                t->tuples_per_page() * t->schema().tuple_size(),
            kPageSize);
  // And the capacity is maximal: one more tuple would not fit.
  EXPECT_GT(kPageHeaderSize + (t->tuples_per_page() + 8) / 8 +
                (t->tuples_per_page() + 1) * t->schema().tuple_size(),
            kPageSize);
}

TEST_F(TableFixture, RejectsWrongSchemaAppend) {
  Table* t = MakeTable();
  Schema other({Field::Int64("z")});
  TupleBuffer buf(&other);
  EXPECT_FALSE(t->Append(buf).ok());
}

// --------------------------------------------------------------- Catalog --

TEST(CatalogTest, CreateGetDuplicate) {
  SimulatedDisk disk;
  BufferPool pool(&disk, 64);
  Catalog catalog(&pool);
  auto t = catalog.CreateTable("orders", Schema({Field::Int64("k")}), {});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(catalog.GetTable("orders").ok());
  EXPECT_FALSE(catalog.GetTable("nope").ok());
  EXPECT_EQ(catalog
                .CreateTable("orders", Schema({Field::Int64("k")}), {})
                .status()
                .code(),
            util::StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Tables().size(), 1u);
}

}  // namespace
}  // namespace smadb::storage
