// Unit tests for smadb::expr — expression trees and predicates.

#include <gtest/gtest.h>

#include "expr/expr.h"
#include "expr/predicate.h"
#include "tests/test_util.h"

namespace smadb::expr {
namespace {

using storage::Schema;
using storage::TupleBuffer;
using testing::SyntheticSchema;
using testing::Unwrap;
using util::Date;
using util::Decimal;
using util::TypeId;
using util::Value;

struct ExprTest : ::testing::Test {
  ExprTest() : schema(SyntheticSchema()), tuple(&schema) {
    tuple.SetInt64(0, 7);
    tuple.SetDate(1, Date(100));
    tuple.SetDecimal(2, Decimal(250));  // 2.50
    tuple.SetString(3, "B");
    tuple.SetString(4, "RAIL");
  }

  Schema schema;
  TupleBuffer tuple;
};

TEST_F(ExprTest, ColumnEval) {
  const ExprPtr k = Unwrap(Column(&schema, "k"));
  EXPECT_EQ(k->type(), TypeId::kInt64);
  EXPECT_EQ(k->EvalInt(tuple.AsRef()), 7);
  EXPECT_EQ(k->ToString(), "k");
  EXPECT_TRUE(k->ReferencesColumn(0));
  EXPECT_FALSE(k->ReferencesColumn(1));
}

TEST_F(ExprTest, UnknownColumnFails) {
  EXPECT_FALSE(Column(&schema, "nope").ok());
}

TEST_F(ExprTest, LiteralEval) {
  const ExprPtr lit = Literal(Value::MakeDecimal(Decimal(100)));
  EXPECT_EQ(lit->type(), TypeId::kDecimal);
  EXPECT_EQ(lit->EvalInt(tuple.AsRef()), 100);
  EXPECT_EQ(lit->ToString(), "1.00");
}

TEST_F(ExprTest, IntegerArithmetic) {
  const ExprPtr k = Unwrap(Column(&schema, "k"));
  const ExprPtr e =
      Unwrap(Arith(ArithOp::kAdd, k, Literal(Value::Int64(3))));
  EXPECT_EQ(e->type(), TypeId::kInt64);
  EXPECT_EQ(e->EvalInt(tuple.AsRef()), 10);
  const ExprPtr m =
      Unwrap(Arith(ArithOp::kMul, k, Literal(Value::Int64(-2))));
  EXPECT_EQ(m->EvalInt(tuple.AsRef()), -14);
}

TEST_F(ExprTest, DecimalArithmeticMatchesDecimalClass) {
  const ExprPtr v = Unwrap(Column(&schema, "v"));  // 2.50
  // (1 - v) = -1.50
  const ExprPtr one_minus = Unwrap(OneMinus(v));
  EXPECT_EQ(one_minus->type(), TypeId::kDecimal);
  EXPECT_EQ(one_minus->EvalInt(tuple.AsRef()), -150);
  // v * (1 + v) = 2.50 * 3.50 = 8.75
  const ExprPtr prod =
      Unwrap(Arith(ArithOp::kMul, v, Unwrap(OnePlus(v))));
  EXPECT_EQ(prod->EvalInt(tuple.AsRef()),
            (Decimal(250) * Decimal(350)).cents());
  EXPECT_EQ(prod->EvalInt(tuple.AsRef()), 875);
}

TEST_F(ExprTest, MixedIntDecimalPromotes) {
  const ExprPtr k = Unwrap(Column(&schema, "k"));  // 7
  const ExprPtr v = Unwrap(Column(&schema, "v"));  // 2.50
  const ExprPtr sum = Unwrap(Arith(ArithOp::kAdd, k, v));
  EXPECT_EQ(sum->type(), TypeId::kDecimal);
  EXPECT_EQ(sum->EvalInt(tuple.AsRef()), 950);  // 9.50 in cents
}

TEST_F(ExprTest, ArithRejectsStrings) {
  const ExprPtr tag = Unwrap(Column(&schema, "tag"));
  const ExprPtr k = Unwrap(Column(&schema, "k"));
  EXPECT_FALSE(Arith(ArithOp::kAdd, tag, k).ok());
}

TEST_F(ExprTest, ToStringIsCanonical) {
  const ExprPtr v = Unwrap(Column(&schema, "v"));
  const ExprPtr e = Unwrap(Arith(ArithOp::kMul, v, Unwrap(OneMinus(v))));
  EXPECT_EQ(e->ToString(), "(v * (1.00 - v))");
  // Two independently built copies print identically (signature matching).
  const ExprPtr e2 = Unwrap(
      Arith(ArithOp::kMul, Unwrap(Column(&schema, "v")),
            Unwrap(OneMinus(Unwrap(Column(&schema, "v"))))));
  EXPECT_EQ(e->ToString(), e2->ToString());
}

TEST_F(ExprTest, ReferencesColumnThroughTree) {
  const ExprPtr v = Unwrap(Column(&schema, "v"));
  const ExprPtr e = Unwrap(Arith(ArithOp::kMul, v, Unwrap(OneMinus(v))));
  EXPECT_TRUE(e->ReferencesColumn(2));
  EXPECT_FALSE(e->ReferencesColumn(0));
}

// -------------------------------------------------------------- Predicate --

TEST_F(ExprTest, TruePredicate) {
  EXPECT_TRUE(Predicate::True()->Eval(tuple.AsRef()));
  EXPECT_EQ(Predicate::True()->ToString(), "true");
}

TEST_F(ExprTest, AtomConstAllOps) {
  auto make = [&](CmpOp op, int64_t c) {
    return Unwrap(
        Predicate::AtomConst(&schema, "k", op, Value::Int64(c)));
  };
  // k == 7 in the fixture tuple.
  EXPECT_TRUE(make(CmpOp::kEq, 7)->Eval(tuple.AsRef()));
  EXPECT_FALSE(make(CmpOp::kEq, 8)->Eval(tuple.AsRef()));
  EXPECT_TRUE(make(CmpOp::kNe, 8)->Eval(tuple.AsRef()));
  EXPECT_TRUE(make(CmpOp::kLt, 8)->Eval(tuple.AsRef()));
  EXPECT_FALSE(make(CmpOp::kLt, 7)->Eval(tuple.AsRef()));
  EXPECT_TRUE(make(CmpOp::kLe, 7)->Eval(tuple.AsRef()));
  EXPECT_TRUE(make(CmpOp::kGt, 6)->Eval(tuple.AsRef()));
  EXPECT_TRUE(make(CmpOp::kGe, 7)->Eval(tuple.AsRef()));
  EXPECT_FALSE(make(CmpOp::kGe, 8)->Eval(tuple.AsRef()));
}

TEST_F(ExprTest, AtomConstDateComparison) {
  auto p = Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                       Value::MakeDate(Date(100))));
  EXPECT_TRUE(p->Eval(tuple.AsRef()));
  auto q = Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLt,
                                       Value::MakeDate(Date(100))));
  EXPECT_FALSE(q->Eval(tuple.AsRef()));
}

TEST_F(ExprTest, AtomConstTypeChecking) {
  // Date constant against a decimal column: rejected.
  EXPECT_FALSE(Predicate::AtomConst(&schema, "v", CmpOp::kEq,
                                    Value::MakeDate(Date(1)))
                   .ok());
  // String columns cannot be graded; rejected.
  EXPECT_FALSE(
      Predicate::AtomConst(&schema, "tag", CmpOp::kEq, Value::String("x"))
          .ok());
  // Unknown column.
  EXPECT_FALSE(
      Predicate::AtomConst(&schema, "zz", CmpOp::kEq, Value::Int64(0)).ok());
}

TEST_F(ExprTest, AtomTwoCols) {
  // Compare k (int64) with itself via a second int64 column — synthesize a
  // schema with two comparable columns.
  Schema s({storage::Field::Int64("a"), storage::Field::Int64("b")});
  TupleBuffer t(&s);
  t.SetInt64(0, 3);
  t.SetInt64(1, 5);
  auto le = Unwrap(Predicate::AtomTwoCols(&s, "a", CmpOp::kLe, "b"));
  EXPECT_TRUE(le->Eval(t.AsRef()));
  auto gt = Unwrap(Predicate::AtomTwoCols(&s, "a", CmpOp::kGt, "b"));
  EXPECT_FALSE(gt->Eval(t.AsRef()));
  // Type mismatch rejected.
  EXPECT_FALSE(
      Predicate::AtomTwoCols(&schema, "k", CmpOp::kLe, "d").ok());
}

TEST_F(ExprTest, BooleanCombinations) {
  auto lo = Unwrap(
      Predicate::AtomConst(&schema, "k", CmpOp::kGe, Value::Int64(5)));
  auto hi = Unwrap(
      Predicate::AtomConst(&schema, "k", CmpOp::kLe, Value::Int64(9)));
  auto out = Unwrap(
      Predicate::AtomConst(&schema, "k", CmpOp::kGt, Value::Int64(100)));
  EXPECT_TRUE(Predicate::And(lo, hi)->Eval(tuple.AsRef()));
  EXPECT_FALSE(Predicate::And(lo, out)->Eval(tuple.AsRef()));
  EXPECT_TRUE(Predicate::Or(out, hi)->Eval(tuple.AsRef()));
  EXPECT_FALSE(Predicate::Or(out, out)->Eval(tuple.AsRef()));
}

TEST_F(ExprTest, PredicateToString) {
  auto p = Unwrap(
      Predicate::AtomConst(&schema, "k", CmpOp::kLe, Value::Int64(9)));
  EXPECT_EQ(p->ToString(&schema), "k <= 9");
  EXPECT_EQ(Predicate::And(p, Predicate::True())->ToString(&schema),
            "(k <= 9 and true)");
}

TEST(CmpOpTest, CompareIntTotalCoverage) {
  EXPECT_TRUE(CompareInt(1, CmpOp::kLt, 2));
  EXPECT_TRUE(CompareInt(2, CmpOp::kLe, 2));
  EXPECT_TRUE(CompareInt(3, CmpOp::kGt, 2));
  EXPECT_TRUE(CompareInt(2, CmpOp::kGe, 2));
  EXPECT_TRUE(CompareInt(2, CmpOp::kEq, 2));
  EXPECT_TRUE(CompareInt(1, CmpOp::kNe, 2));
  EXPECT_FALSE(CompareInt(2, CmpOp::kNe, 2));
}

}  // namespace
}  // namespace smadb::expr
