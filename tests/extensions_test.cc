// Tests for the §4 extensions: hierarchical (two-level) SMAs and semi-join
// SMA reduction.

#include <gtest/gtest.h>

#include "sma/builder.h"
#include "sma/hierarchical.h"
#include "sma/semijoin.h"
#include "tests/test_util.h"

namespace smadb::sma {
namespace {

using expr::CmpOp;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;

// ---------------------------------------------------------- Hierarchical --

struct HierarchicalTest : ::testing::Test {
  HierarchicalTest() : db(32768) {}

  void Setup(int64_t rows, testing::Layout layout) {
    table = MakeSyntheticTable(&db, rows, layout);
    smas = std::make_unique<SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    min_sma = smas->FindMinMax(AggFunc::kMin, 1);
    max_sma = smas->FindMinMax(AggFunc::kMax, 1);
    hier = Unwrap(HierarchicalMinMax::Build(min_sma, max_sma));
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::unique_ptr<SmaSet> smas;
  const Sma* min_sma = nullptr;
  const Sma* max_sma = nullptr;
  std::unique_ptr<HierarchicalMinMax> hier;
};

TEST_F(HierarchicalTest, RejectsWrongInputs) {
  Setup(500, testing::Layout::kClustered);
  EXPECT_FALSE(HierarchicalMinMax::Build(min_sma, min_sma).ok());
  EXPECT_FALSE(HierarchicalMinMax::Build(nullptr, max_sma).ok());
  const expr::ExprPtr d = Unwrap(expr::Column(&table->schema(), "d"));
  auto grouped = Unwrap(BuildSma(table, SmaSpec::Min("g", d, {3})));
  EXPECT_FALSE(HierarchicalMinMax::Build(grouped.get(), max_sma).ok());
}

TEST_F(HierarchicalTest, GradesIdenticalToFlatAcrossSweep) {
  // Enough rows for several L1 pages (1024 buckets each → need >> 170k
  // rows with 163 tuples/page; use noisy layout for mixed grades).
  Setup(400'000, testing::Layout::kNoisy);
  ASSERT_GT(min_sma->group_file(0)->num_pages(), 1u);
  for (CmpOp op : {CmpOp::kLe, CmpOp::kLt, CmpOp::kGe, CmpOp::kGt, CmpOp::kEq,
                   CmpOp::kNe}) {
    for (int64_t c : {-5L, 100L, 25000L, 50000L, 70000L}) {
      std::vector<Grade> flat, hierarchical;
      uint64_t flat_pages = 0, hier_pages = 0;
      ExpectOk(hier->GradeAllFlat(op, c, &flat, &flat_pages));
      ExpectOk(hier->GradeAll(op, c, &hierarchical, &hier_pages));
      EXPECT_EQ(flat, hierarchical)
          << "op " << static_cast<int>(op) << " c=" << c;
      EXPECT_LE(hier_pages, flat_pages);
    }
  }
}

TEST_F(HierarchicalTest, SavesL1PagesAtExtremeSelectivities) {
  Setup(400'000, testing::Layout::kClustered);
  // Very low cut-off: nearly everything disqualifies at level 2 already.
  std::vector<Grade> grades;
  uint64_t flat_pages = 0, hier_pages = 0;
  ExpectOk(hier->GradeAllFlat(CmpOp::kLe, 10, &grades, &flat_pages));
  ExpectOk(hier->GradeAll(CmpOp::kLe, 10, &grades, &hier_pages));
  EXPECT_LT(hier_pages, flat_pages / 2)
      << "second level should settle most first-level pages";
}

TEST_F(HierarchicalTest, Level2IsTiny) {
  Setup(400'000, testing::Layout::kClustered);
  // §4: "second level SMA-files will be very small".
  EXPECT_LE(hier->level2_min()->num_pages(), 1u);
  EXPECT_LE(hier->level2_max()->num_pages(), 1u);
}

TEST_F(HierarchicalTest, EmptyTable) {
  storage::Table* empty = Unwrap(
      db.catalog.CreateTable("e", testing::SyntheticSchema(), {}));
  SmaSet smas2(empty);
  AddMinMaxSmas(empty, &smas2, "d");
  auto h = Unwrap(HierarchicalMinMax::Build(
      smas2.FindMinMax(AggFunc::kMin, 1), smas2.FindMinMax(AggFunc::kMax, 1)));
  std::vector<Grade> grades;
  uint64_t pages = 0;
  ExpectOk(h->GradeAll(CmpOp::kLe, 5, &grades, &pages));
  EXPECT_TRUE(grades.empty());
}

// --------------------------------------------------------------- SemiJoin --

struct SemiJoinTest : ::testing::Test {
  SemiJoinTest() : db(16384) {}

  // R: clustered synthetic table with min/max on d.
  // S: second table whose d values span [s_lo, s_hi].
  void Setup(int32_t s_lo, int32_t s_hi) {
    r = MakeSyntheticTable(&db, 4000, testing::Layout::kClustered, 3, 1, "r");
    r_smas = std::make_unique<SmaSet>(r);
    AddMinMaxSmas(r, r_smas.get(), "d");

    s = Unwrap(db.catalog.CreateTable("s", testing::SyntheticSchema(), {}));
    util::Rng rng(5);
    storage::TupleBuffer t(&s->schema());
    for (int i = 0; i < 300; ++i) {
      t.SetInt64(0, i);
      t.SetDate(1, util::Date(static_cast<int32_t>(
                       rng.Uniform(s_lo, s_hi))));
      t.SetDecimal(2, util::Decimal(i));
      t.SetString(3, "A");
      t.SetString(4, "MAIL");
      ExpectOk(s->Append(t));
    }
  }

  // Brute-force: does tuple value a have a partner in S under op?
  bool Matches(int64_t a, CmpOp op) {
    bool any = false;
    for (uint32_t b = 0; b < s->num_buckets(); ++b) {
      EXPECT_TRUE(
          s->ForEachTupleInBucket(b, [&](const storage::TupleRef& tup,
                                         storage::Rid) {
             any |= expr::CompareInt(a, op, tup.GetRawInt(1));
           }).ok());
    }
    return any;
  }

  void VerifyReduction(const SemiJoinReduction& red, CmpOp op) {
    for (uint32_t b = 0; b < r->num_buckets(); ++b) {
      bool bucket_any = false, bucket_all = true;
      ExpectOk(r->ForEachTupleInBucket(
          b, [&](const storage::TupleRef& tup, storage::Rid) {
            const bool m = Matches(tup.GetRawInt(1), op);
            bucket_any |= m;
            bucket_all &= m;
          }));
      if (!red.candidates.Get(b)) {
        EXPECT_FALSE(bucket_any)
            << "pruned bucket " << b << " contains a matching tuple";
      }
      if (red.all_match.Get(b)) {
        EXPECT_TRUE(bucket_all)
            << "bucket " << b << " marked all-match but is not";
      }
    }
  }

  TestDb db;
  storage::Table* r = nullptr;
  storage::Table* s = nullptr;
  std::unique_ptr<SmaSet> r_smas;
};

TEST_F(SemiJoinTest, ColumnMinMaxViaScanAndViaSma) {
  Setup(100, 200);
  auto scanned = Unwrap(ColumnMinMax(s, 1, nullptr));
  ASSERT_TRUE(scanned.first.has_value());
  EXPECT_GE(*scanned.first, 100);
  EXPECT_LE(*scanned.second, 200);

  SmaSet s_smas(s);
  AddMinMaxSmas(s, &s_smas, "d");
  auto via_sma = Unwrap(ColumnMinMax(s, 1, &s_smas));
  EXPECT_EQ(via_sma.first, scanned.first);
  EXPECT_EQ(via_sma.second, scanned.second);
}

TEST_F(SemiJoinTest, ReductionSoundForAllOps) {
  // S in a narrow middle window; R spans [0, 500].
  Setup(200, 260);
  for (CmpOp op : {CmpOp::kLe, CmpOp::kLt, CmpOp::kGe, CmpOp::kGt, CmpOp::kEq,
                   CmpOp::kNe}) {
    auto red =
        Unwrap(ReduceSemiJoin(r_smas.get(), 1, op, s, 1, nullptr));
    VerifyReduction(red, op);
  }
}

TEST_F(SemiJoinTest, ActuallyPrunesForRangeOps) {
  Setup(200, 260);
  auto red = Unwrap(ReduceSemiJoin(r_smas.get(), 1, CmpOp::kLe, s, 1,
                                   nullptr));
  // R tuples with d > 260 can never satisfy d <= S.d.
  EXPECT_LT(red.candidates.Count(), r->num_buckets());
  EXPECT_GT(red.all_match.Count(), 0u);
}

TEST_F(SemiJoinTest, EqualityPruning) {
  Setup(200, 260);
  auto red =
      Unwrap(ReduceSemiJoin(r_smas.get(), 1, CmpOp::kEq, s, 1, nullptr));
  // Buckets entirely below 200 or above 260 are pruned.
  EXPECT_LT(red.candidates.Count(), r->num_buckets() / 2);
  VerifyReduction(red, CmpOp::kEq);
}

TEST_F(SemiJoinTest, EmptySPrunesEverything) {
  Setup(200, 260);
  storage::Table* empty = Unwrap(
      db.catalog.CreateTable("s_empty", testing::SyntheticSchema(), {}));
  auto red = Unwrap(
      ReduceSemiJoin(r_smas.get(), 1, CmpOp::kLe, empty, 1, nullptr));
  EXPECT_EQ(red.candidates.Count(), 0u);
}

TEST_F(SemiJoinTest, NoRSmasMeansNoPruning) {
  Setup(200, 260);
  SmaSet no_smas(r);
  auto red = Unwrap(ReduceSemiJoin(&no_smas, 1, CmpOp::kLe, s, 1, nullptr));
  EXPECT_EQ(red.candidates.Count(), r->num_buckets());
}

TEST_F(SemiJoinTest, NeWithMultiValuedSQualifiesEverything) {
  Setup(200, 260);  // S has many distinct values
  auto red =
      Unwrap(ReduceSemiJoin(r_smas.get(), 1, CmpOp::kNe, s, 1, nullptr));
  EXPECT_EQ(red.candidates.Count(), r->num_buckets());
  EXPECT_EQ(red.all_match.Count(), r->num_buckets());
}

}  // namespace
}  // namespace smadb::sma
