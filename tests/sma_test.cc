// Unit tests for the SMA core: SMA-files, specs, bulk build, group
// handling, and the SmaSet registry.

#include <gtest/gtest.h>

#include <map>

#include "sma/builder.h"
#include "sma/sma.h"
#include "sma/sma_file.h"
#include "sma/sma_set.h"
#include "tests/test_util.h"

namespace smadb::sma {
namespace {

using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::SyntheticSchema;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

// --------------------------------------------------------------- SmaFile --

TEST(SmaFileTest, RejectsBadWidth) {
  TestDb db;
  EXPECT_FALSE(SmaFile::Create(&db.pool, "f", 3).ok());
  EXPECT_FALSE(SmaFile::Create(&db.pool, "f", 16).ok());
}

TEST(SmaFileTest, AppendGetRoundTrip) {
  TestDb db;
  auto f = Unwrap(SmaFile::Create(&db.pool, "f", 8));
  for (int64_t i = 0; i < 3000; ++i) ExpectOk(f->Append(i * i - 7));
  EXPECT_EQ(f->num_entries(), 3000u);
  for (int64_t i = 0; i < 3000; i += 97) {
    EXPECT_EQ(Unwrap(f->Get(static_cast<uint64_t>(i))), i * i - 7);
  }
  EXPECT_FALSE(f->Get(3000).ok());
}

TEST(SmaFileTest, PackingMatchesPaperDensity) {
  // 4-byte entries: 1024 per 4K page (the 1/1000th size claim of §2.1);
  // 8-byte entries: 512 per page.
  TestDb db;
  auto narrow = Unwrap(SmaFile::Create(&db.pool, "n", 4));
  auto wide = Unwrap(SmaFile::Create(&db.pool, "w", 8));
  EXPECT_EQ(narrow->entries_per_page(), 1024u);
  EXPECT_EQ(wide->entries_per_page(), 512u);
  for (int i = 0; i < 1024; ++i) ExpectOk(narrow->Append(i));
  EXPECT_EQ(narrow->num_pages(), 1u);
  ExpectOk(narrow->Append(-1));
  EXPECT_EQ(narrow->num_pages(), 2u);
}

TEST(SmaFileTest, NarrowEntriesKeepSign) {
  TestDb db;
  auto f = Unwrap(SmaFile::Create(&db.pool, "f", 4));
  ExpectOk(f->Append(-123456));
  ExpectOk(f->Append(INT32_MAX));
  ExpectOk(f->Append(INT32_MIN));
  EXPECT_EQ(Unwrap(f->Get(0)), -123456);
  EXPECT_EQ(Unwrap(f->Get(1)), INT32_MAX);
  EXPECT_EQ(Unwrap(f->Get(2)), INT32_MIN);
}

TEST(SmaFileTest, SetInPlace) {
  TestDb db;
  auto f = Unwrap(SmaFile::Create(&db.pool, "f", 8));
  for (int i = 0; i < 10; ++i) ExpectOk(f->Append(i));
  ExpectOk(f->Set(5, 999));
  EXPECT_EQ(Unwrap(f->Get(5)), 999);
  EXPECT_EQ(Unwrap(f->Get(4)), 4);
  EXPECT_EQ(Unwrap(f->Get(6)), 6);
  EXPECT_FALSE(f->Set(10, 0).ok());
}

TEST(SmaFileTest, CursorSequentialAndJump) {
  TestDb db;
  auto f = Unwrap(SmaFile::Create(&db.pool, "f", 4));
  for (int64_t i = 0; i < 5000; ++i) ExpectOk(f->Append(i));
  SmaFile::Cursor cur = f->NewCursor();
  for (uint64_t i = 0; i < 5000; ++i) EXPECT_EQ(Unwrap(cur.Get(i)), (int64_t)i);
  // Jumping backwards still works (cursor refetches).
  EXPECT_EQ(Unwrap(cur.Get(0)), 0);
  EXPECT_EQ(Unwrap(cur.Get(4999)), 4999);
}

// --------------------------------------------------------------- SmaSpec --

TEST(SmaSpecTest, ValidationRules) {
  const storage::Schema schema = SyntheticSchema();
  const expr::ExprPtr d = Unwrap(expr::Column(&schema, "d"));
  EXPECT_TRUE(SmaSpec::Min("m", d).Validate(schema).ok());
  EXPECT_TRUE(SmaSpec::Count("c").Validate(schema).ok());
  // count with an argument / sum without one: invalid.
  SmaSpec bad_count = SmaSpec::Count("c");
  bad_count.arg = d;
  EXPECT_FALSE(bad_count.Validate(schema).ok());
  SmaSpec bad_sum = SmaSpec::Sum("s", d);
  bad_sum.arg = nullptr;
  EXPECT_FALSE(bad_sum.Validate(schema).ok());
  // Unnamed.
  EXPECT_FALSE(SmaSpec::Min("", d).Validate(schema).ok());
  // Group column out of range.
  SmaSpec bad_group = SmaSpec::Count("c", {99});
  EXPECT_FALSE(bad_group.Validate(schema).ok());
}

TEST(SmaSpecTest, EntryWidthFollowsPaper) {
  const storage::Schema schema = SyntheticSchema();
  const expr::ExprPtr d = Unwrap(expr::Column(&schema, "d"));  // date
  const expr::ExprPtr v = Unwrap(expr::Column(&schema, "v"));  // decimal
  EXPECT_EQ(SmaSpec::Min("m", d).EntryWidth(), 4u);   // dates: 4 bytes
  EXPECT_EQ(SmaSpec::Max("m", d).EntryWidth(), 4u);
  EXPECT_EQ(SmaSpec::Count("c").EntryWidth(), 4u);    // counts: 4 bytes
  EXPECT_EQ(SmaSpec::Min("m", v).EntryWidth(), 8u);   // money: 8 bytes
  EXPECT_EQ(SmaSpec::Sum("s", d).EntryWidth(), 8u);   // all sums: 8 bytes
  EXPECT_EQ(SmaSpec::Sum("s", v).EntryWidth(), 8u);
}

TEST(SmaSpecTest, SignatureForm) {
  const storage::Schema schema = SyntheticSchema();
  const expr::ExprPtr v = Unwrap(expr::Column(&schema, "v"));
  EXPECT_EQ(SmaSpec::Sum("s", v, {3, 4}).Signature(schema),
            "sum(v) group by grp,tag");
  EXPECT_EQ(SmaSpec::Count("c").Signature(schema), "count(*)");
}

// -------------------------------------------------------- Build & verify --

struct SmaBuildTest : ::testing::Test {
  SmaBuildTest() : db(8192) {}
  TestDb db;
};

TEST_F(SmaBuildTest, UngroupedMinMaxMatchBruteForce) {
  storage::Table* t =
      MakeSyntheticTable(&db, 5000, testing::Layout::kNoisy);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  auto min_sma = Unwrap(BuildSma(t, SmaSpec::Min("min_d", d)));
  auto max_sma = Unwrap(BuildSma(t, SmaSpec::Max("max_d", d)));
  ASSERT_EQ(min_sma->num_buckets(), t->num_buckets());
  ASSERT_EQ(min_sma->num_groups(), 1u);

  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    int64_t mn = INT64_MAX, mx = INT64_MIN;
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, storage::Rid) {
          mn = std::min(mn, tup.GetRawInt(1));
          mx = std::max(mx, tup.GetRawInt(1));
        }));
    EXPECT_EQ(Unwrap(min_sma->group_file(0)->Get(b)), mn);
    EXPECT_EQ(Unwrap(max_sma->group_file(0)->Get(b)), mx);
  }
}

TEST_F(SmaBuildTest, GroupedSumCountMatchBruteForce) {
  storage::Table* t =
      MakeSyntheticTable(&db, 4000, testing::Layout::kRandom);
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  auto sum_sma = Unwrap(BuildSma(t, SmaSpec::Sum("sum_v", v, {3})));
  auto count_sma = Unwrap(BuildSma(t, SmaSpec::Count("cnt", {3})));
  // Three groups A, B, C must have been discovered.
  ASSERT_EQ(sum_sma->num_groups(), 3u);
  ASSERT_EQ(count_sma->num_groups(), 3u);

  // Every group file covers every bucket positionally.
  for (size_t g = 0; g < sum_sma->num_groups(); ++g) {
    ASSERT_EQ(sum_sma->group_file(g)->num_entries(), t->num_buckets());
  }

  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    std::map<std::string, std::pair<int64_t, int64_t>> ref;  // grp -> sum,cnt
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, storage::Rid) {
          auto& [sum, cnt] = ref[std::string(tup.GetString(3))];
          sum += tup.GetRawInt(2);
          ++cnt;
        }));
    for (size_t g = 0; g < sum_sma->num_groups(); ++g) {
      const std::string key = sum_sma->group_key(g)[0].AsString();
      const auto it = ref.find(key);
      const int64_t expect_sum = it == ref.end() ? 0 : it->second.first;
      EXPECT_EQ(Unwrap(sum_sma->group_file(g)->Get(b)), expect_sum);
    }
    for (size_t g = 0; g < count_sma->num_groups(); ++g) {
      const std::string key = count_sma->group_key(g)[0].AsString();
      const auto it = ref.find(key);
      const int64_t expect_cnt = it == ref.end() ? 0 : it->second.second;
      EXPECT_EQ(Unwrap(count_sma->group_file(g)->Get(b)), expect_cnt);
    }
  }
}

TEST_F(SmaBuildTest, GroupedMinMaxUsesUndefinedSentinel) {
  storage::Table* t =
      MakeSyntheticTable(&db, 600, testing::Layout::kClustered);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  auto sma = Unwrap(BuildSma(t, SmaSpec::Min("min_d_g", d, {3})));
  bool saw_undefined = false;
  for (size_t g = 0; g < sma->num_groups(); ++g) {
    for (uint64_t b = 0; b < sma->num_buckets(); ++b) {
      const int64_t e = Unwrap(sma->group_file(g)->Get(b));
      if (sma->IsUndefined(e)) {
        saw_undefined = true;
        // Brute force: the group really is absent from the bucket.
        const std::string key = sma->group_key(g)[0].AsString();
        bool present = false;
        ExpectOk(t->ForEachTupleInBucket(
            static_cast<uint32_t>(b),
            [&](const storage::TupleRef& tup, storage::Rid) {
              present |= tup.GetString(3) == key;
            }));
        EXPECT_FALSE(present);
      }
    }
  }
  // With 3 groups and ~100 tuples/bucket this table has no absent groups,
  // so force one: a table with a rare group.
  (void)saw_undefined;
}

TEST_F(SmaBuildTest, BucketExtremeSkipsUndefined) {
  storage::Table* t =
      MakeSyntheticTable(&db, 2000, testing::Layout::kClustered);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  auto grouped_min = Unwrap(BuildSma(t, SmaSpec::Min("gmin", d, {3})));
  auto flat_min = Unwrap(BuildSma(t, SmaSpec::Min("fmin", d)));
  for (uint64_t b = 0; b < t->num_buckets(); ++b) {
    auto grouped = Unwrap(grouped_min->BucketExtreme(b));
    auto flat = Unwrap(flat_min->BucketExtreme(b));
    ASSERT_TRUE(grouped.has_value());
    ASSERT_TRUE(flat.has_value());
    // Min over groups == ungrouped min.
    EXPECT_EQ(*grouped, *flat);
  }
}

TEST_F(SmaBuildTest, SumOfExpressionMatchesScan) {
  storage::Table* t =
      MakeSyntheticTable(&db, 3000, testing::Layout::kRandom);
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  const expr::ExprPtr e =
      Unwrap(expr::Arith(expr::ArithOp::kMul, v, Unwrap(expr::OneMinus(v))));
  auto sma = Unwrap(BuildSma(t, SmaSpec::Sum("s", e)));
  int64_t total_sma = 0, total_scan = 0;
  for (uint64_t b = 0; b < sma->num_buckets(); ++b) {
    total_sma += Unwrap(sma->group_file(0)->Get(b));
  }
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, storage::Rid) {
          total_scan += e->EvalInt(tup);
        }));
  }
  EXPECT_EQ(total_sma, total_scan);  // exact, not approximately
}

TEST_F(SmaBuildTest, RecomputeBucketRepairsEntries) {
  storage::Table* t =
      MakeSyntheticTable(&db, 500, testing::Layout::kClustered);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  auto sma = Unwrap(BuildSma(t, SmaSpec::Max("max_d", d)));
  const int64_t before = Unwrap(sma->group_file(0)->Get(0));
  // Shrink the max of bucket 0 by rewriting every tuple's date to 0, then
  // recompute.
  const uint16_t n = [&] {
    uint16_t count = 0;
    EXPECT_TRUE(t->ForEachTupleInBucket(0, [&](const storage::TupleRef&,
                                               storage::Rid) { ++count; })
                    .ok());
    return count;
  }();
  for (uint16_t s = 0; s < n; ++s) {
    ExpectOk(t->UpdateColumn(storage::Rid{0, s}, 1,
                             Value::MakeDate(util::Date(0))));
  }
  ExpectOk(RecomputeBucket(t, sma.get(), 0));
  EXPECT_EQ(Unwrap(sma->group_file(0)->Get(0)), 0);
  EXPECT_NE(before, 0);
}

// ---------------------------------------------------------------- SmaSet --

TEST_F(SmaBuildTest, SmaSetDiscovery) {
  storage::Table* t =
      MakeSyntheticTable(&db, 1000, testing::Layout::kClustered);
  SmaSet smas(t);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Min("min_d", d)))));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Max("max_d", d, {3})))));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Sum("sum_v", v, {3})))));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Count("cnt_d", {1})))));

  // Rebuilding under an existing name collides on the SMA-file itself.
  EXPECT_EQ(BuildSma(t, SmaSpec::Min("min_d", d)).status().code(),
            util::StatusCode::kAlreadyExists);

  // Min/max discovery by column ordinal (d is column 1).
  EXPECT_EQ(smas.FindMinMax(AggFunc::kMin, 1), *smas.Find("min_d"));
  EXPECT_EQ(smas.FindMinMax(AggFunc::kMax, 1), *smas.Find("max_d"));
  EXPECT_EQ(smas.FindMinMax(AggFunc::kMin, 2), nullptr);
  EXPECT_EQ(smas.FindMinMax(AggFunc::kSum, 1), nullptr);

  // Count-by-value: grouped solely by column 1.
  EXPECT_EQ(smas.FindCountByValue(1), *smas.Find("cnt_d"));
  EXPECT_EQ(smas.FindCountByValue(3), nullptr);

  // Signature lookup.
  EXPECT_EQ(smas.FindBySignature("sum(v) group by grp"),
            *smas.Find("sum_v"));
  EXPECT_EQ(smas.FindBySignature("sum(v)"), nullptr);

  // Footprint accounting.
  EXPECT_GT(smas.TotalPages(), 0u);
  EXPECT_EQ(smas.TotalSizeBytes(), smas.TotalPages() * storage::kPageSize);
}

TEST_F(SmaBuildTest, UngroupedPreferredOverGrouped) {
  storage::Table* t =
      MakeSyntheticTable(&db, 500, testing::Layout::kClustered);
  SmaSet smas(t);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Min("grouped", d, {3})))));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Min("flat", d)))));
  EXPECT_EQ(smas.FindMinMax(AggFunc::kMin, 1), *smas.Find("flat"));
}

TEST_F(SmaBuildTest, RejectsForeignSma) {
  storage::Table* t1 =
      MakeSyntheticTable(&db, 100, testing::Layout::kClustered, 1, 1, "t1");
  storage::Table* t2 =
      MakeSyntheticTable(&db, 100, testing::Layout::kClustered, 2, 1, "t2");
  SmaSet smas(t1);
  const expr::ExprPtr d = Unwrap(expr::Column(&t2->schema(), "d"));
  EXPECT_FALSE(smas.Add(Unwrap(BuildSma(t2, SmaSpec::Min("m", d)))).ok());
}

// Size-ratio property from the paper's §2.4 table: a grouped sum SMA with
// g groups is g×(8/4) times the size of an ungrouped date-min SMA.
TEST_F(SmaBuildTest, SizeRatiosMatchPaperLayout) {
  storage::Table* t =
      MakeSyntheticTable(&db, 300'000, testing::Layout::kRandom);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  auto min_sma = Unwrap(BuildSma(t, SmaSpec::Min("min", d)));
  auto sum_sma = Unwrap(BuildSma(t, SmaSpec::Sum("sum", v, {3})));  // 3 grp
  // Entries: equal (one per bucket per group file). Bytes: sum uses 8-byte
  // entries in 3 files vs one 4-byte file -> 6x the pages (+- rounding).
  const double ratio = static_cast<double>(sum_sma->TotalPages()) /
                       static_cast<double>(min_sma->TotalPages());
  EXPECT_NEAR(ratio, 6.0, 0.75);
}

}  // namespace
}  // namespace smadb::sma
