// Tests for the grade procedure (paper §3.1): the atom rules, the boolean
// combination rules, count-by-value grading, and randomized soundness
// properties of BucketGrader against brute force.

#include <gtest/gtest.h>

#include "sma/grade.h"
#include "tests/test_util.h"

namespace smadb::sma {
namespace {

using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using testing::AddMinMaxSmas;
using testing::ExpectGradeSound;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

// ---------------------------------------------------- combination tables --

TEST(GradeCombineTest, AndTableMatchesPaper) {
  using enum Grade;
  // BUq = BUq1 ∩ BUq2; BUd = BUd1 ∪ BUd2; rest ambivalent.
  EXPECT_EQ(CombineAnd(kQualifies, kQualifies), kQualifies);
  EXPECT_EQ(CombineAnd(kQualifies, kAmbivalent), kAmbivalent);
  EXPECT_EQ(CombineAnd(kQualifies, kDisqualifies), kDisqualifies);
  EXPECT_EQ(CombineAnd(kAmbivalent, kAmbivalent), kAmbivalent);
  EXPECT_EQ(CombineAnd(kAmbivalent, kDisqualifies), kDisqualifies);
  EXPECT_EQ(CombineAnd(kDisqualifies, kDisqualifies), kDisqualifies);
}

TEST(GradeCombineTest, OrTableMatchesPaper) {
  using enum Grade;
  // BUq = BUq1 ∪ BUq2; BUd = BUd1 ∩ BUd2; rest ambivalent.
  EXPECT_EQ(CombineOr(kQualifies, kQualifies), kQualifies);
  EXPECT_EQ(CombineOr(kQualifies, kAmbivalent), kQualifies);
  EXPECT_EQ(CombineOr(kQualifies, kDisqualifies), kQualifies);
  EXPECT_EQ(CombineOr(kAmbivalent, kAmbivalent), kAmbivalent);
  EXPECT_EQ(CombineOr(kAmbivalent, kDisqualifies), kAmbivalent);
  EXPECT_EQ(CombineOr(kDisqualifies, kDisqualifies), kDisqualifies);
}

TEST(GradeCombineTest, CommutativityProperty) {
  const Grade all[] = {Grade::kQualifies, Grade::kDisqualifies,
                       Grade::kAmbivalent};
  for (Grade a : all) {
    for (Grade b : all) {
      EXPECT_EQ(CombineAnd(a, b), CombineAnd(b, a));
      EXPECT_EQ(CombineOr(a, b), CombineOr(b, a));
    }
  }
}

// ------------------------------------------------------------ atom rules --

// Paper §3.1, A <= c: max <= c -> qualifies; min > c -> disqualifies.
TEST(GradeAtomTest, LeRules) {
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, 5, 10, 10), Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, 5, 10, 4), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, 5, 10, 7), Grade::kAmbivalent);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, 5, 10, 5), Grade::kAmbivalent);
}

TEST(GradeAtomTest, LtRules) {
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLt, 5, 10, 11), Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLt, 5, 10, 10), Grade::kAmbivalent);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLt, 5, 10, 5), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLt, 5, 10, 4), Grade::kDisqualifies);
}

TEST(GradeAtomTest, GeGtRules) {
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kGe, 5, 10, 5), Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kGe, 5, 10, 11), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kGe, 5, 10, 7), Grade::kAmbivalent);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kGt, 5, 10, 4), Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kGt, 5, 10, 10), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kGt, 5, 10, 5), Grade::kAmbivalent);
}

TEST(GradeAtomTest, EqRulesWithRefinement) {
  // Paper: c outside [min, max] -> disqualifies, else ambivalent.
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kEq, 5, 10, 4), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kEq, 5, 10, 11), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kEq, 5, 10, 7), Grade::kAmbivalent);
  // Refinement: min == max == c qualifies.
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kEq, 7, 7, 7), Grade::kQualifies);
}

TEST(GradeAtomTest, NeDualRules) {
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kNe, 5, 10, 4), Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kNe, 5, 10, 11), Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kNe, 7, 7, 7), Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kNe, 5, 10, 7), Grade::kAmbivalent);
}

TEST(GradeAtomTest, MissingSidesLimitConclusions) {
  // With only max: A <= c can still qualify, never disqualify.
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, std::nullopt, 10, 12),
            Grade::kQualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, std::nullopt, 10, 4),
            Grade::kAmbivalent);
  // With only min: A <= c can disqualify, never qualify.
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, 5, std::nullopt, 4),
            Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxConst(CmpOp::kLe, 5, std::nullopt, 100),
            Grade::kAmbivalent);
  // With neither, always ambivalent.
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    EXPECT_EQ(GradeMinMaxConst(op, std::nullopt, std::nullopt, 0),
              Grade::kAmbivalent);
  }
}

// Exhaustive soundness of the const rules over small ranges: for every
// [mn, mx] ⊆ [0,6] and c in [-1, 7], a qualifying grade must hold for every
// possible value in the range and a disqualifying one for none.
TEST(GradeAtomTest, ExhaustiveSoundnessSmallDomain) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    for (int64_t mn = 0; mn <= 6; ++mn) {
      for (int64_t mx = mn; mx <= 6; ++mx) {
        for (int64_t c = -1; c <= 7; ++c) {
          const Grade g = GradeMinMaxConst(op, mn, mx, c);
          bool all = true, any = false;
          for (int64_t v = mn; v <= mx; ++v) {
            const bool sat = expr::CompareInt(v, op, c);
            all &= sat;
            any |= sat;
          }
          if (g == Grade::kQualifies) {
            EXPECT_TRUE(all) << "op=" << static_cast<int>(op) << " [" << mn
                             << "," << mx << "] c=" << c;
          }
          if (g == Grade::kDisqualifies) {
            EXPECT_FALSE(any) << "op=" << static_cast<int>(op) << " [" << mn
                              << "," << mx << "] c=" << c;
          }
        }
      }
    }
  }
}

// Same exhaustive soundness for the two-column rules. The hidden semantics:
// each tuple has a pair (a, b) with a in [mn_a, mx_a], b in [mn_b, mx_b];
// qualification must hold for ALL pairs, disqualification for NONE.
TEST(GradeAtomTest, ExhaustiveTwoColsSoundness) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    for (int64_t mn_a = 0; mn_a <= 4; ++mn_a) {
      for (int64_t mx_a = mn_a; mx_a <= 4; ++mx_a) {
        for (int64_t mn_b = 0; mn_b <= 4; ++mn_b) {
          for (int64_t mx_b = mn_b; mx_b <= 4; ++mx_b) {
            const Grade g = GradeMinMaxTwoCols(op, mn_a, mx_a, mn_b, mx_b);
            bool all = true, any = false;
            for (int64_t a = mn_a; a <= mx_a; ++a) {
              for (int64_t b = mn_b; b <= mx_b; ++b) {
                const bool sat = expr::CompareInt(a, op, b);
                all &= sat;
                any |= sat;
              }
            }
            if (g == Grade::kQualifies) {
              EXPECT_TRUE(all);
            }
            if (g == Grade::kDisqualifies) {
              EXPECT_FALSE(any);
            }
          }
        }
      }
    }
  }
}

// Paper's exact A <= B rules.
TEST(GradeAtomTest, TwoColsPaperRules) {
  // max(A) <= min(B) -> qualifies
  EXPECT_EQ(GradeMinMaxTwoCols(CmpOp::kLe, 1, 5, 5, 9), Grade::kQualifies);
  // min(A) > max(B) -> disqualifies
  EXPECT_EQ(GradeMinMaxTwoCols(CmpOp::kLe, 10, 12, 5, 9),
            Grade::kDisqualifies);
  EXPECT_EQ(GradeMinMaxTwoCols(CmpOp::kLe, 4, 8, 5, 9), Grade::kAmbivalent);
}

// ----------------------------------------------------- BucketGrader e2e --

struct GraderTest : ::testing::Test {
  GraderTest() : db(8192) {}
  TestDb db;
};

TEST_F(GraderTest, StreamedGradesAreSoundOnAllLayouts) {
  for (auto layout : {testing::Layout::kClustered, testing::Layout::kNoisy,
                      testing::Layout::kRandom}) {
    storage::Table* t = MakeSyntheticTable(
        &db, 3000, layout, /*seed=*/17,
        /*bucket_pages=*/1,
        "t" + std::to_string(static_cast<int>(layout)));
    SmaSet smas(t);
    AddMinMaxSmas(t, &smas, "d");

    util::Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
      const CmpOp op = static_cast<CmpOp>(rng.Uniform(0, 5));
      const int32_t c = static_cast<int32_t>(rng.Uniform(-10, 3000 / 8 + 10));
      const PredicatePtr pred = Unwrap(Predicate::AtomConst(
          &t->schema(), "d", op, Value::MakeDate(util::Date(c))));
      auto grader = BucketGrader::Create(pred, &smas);
      EXPECT_TRUE(grader->has_sma_support());
      for (uint32_t b = 0; b < t->num_buckets(); ++b) {
        ExpectGradeSound(t, b, *pred, Unwrap(grader->GradeBucket(b)));
      }
    }
  }
}

TEST_F(GraderTest, ClusteredLayoutActuallyPrunes) {
  storage::Table* t =
      MakeSyntheticTable(&db, 5000, testing::Layout::kClustered);
  SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(100))));
  auto grader = BucketGrader::Create(pred, &smas);
  uint64_t q = 0, d = 0, a = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    switch (Unwrap(grader->GradeBucket(b))) {
      case Grade::kQualifies:
        ++q;
        break;
      case Grade::kDisqualifies:
        ++d;
        break;
      case Grade::kAmbivalent:
        ++a;
        break;
    }
  }
  EXPECT_GT(q, 0u);
  EXPECT_GT(d, 0u);
  EXPECT_LE(a, 2u);  // clustered: at most the boundary bucket is ambivalent
}

TEST_F(GraderTest, WithoutSmasEverythingAmbivalent) {
  storage::Table* t =
      MakeSyntheticTable(&db, 500, testing::Layout::kClustered);
  SmaSet smas(t);  // empty
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(10))));
  auto grader = BucketGrader::Create(pred, &smas);
  EXPECT_FALSE(grader->has_sma_support());
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    EXPECT_EQ(Unwrap(grader->GradeBucket(b)), Grade::kAmbivalent);
  }
}

TEST_F(GraderTest, TruePredicateAlwaysQualifies) {
  storage::Table* t =
      MakeSyntheticTable(&db, 200, testing::Layout::kClustered);
  SmaSet smas(t);
  auto grader = BucketGrader::Create(Predicate::True(), &smas);
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    EXPECT_EQ(Unwrap(grader->GradeBucket(b)), Grade::kQualifies);
  }
}

TEST_F(GraderTest, GroupedMinMaxAlsoPrunes) {
  // §3.1: grouped min/max SMAs are exploitable by taking the extreme over
  // all groups.
  storage::Table* t =
      MakeSyntheticTable(&db, 3000, testing::Layout::kClustered);
  SmaSet smas(t);
  const expr::ExprPtr d = Unwrap(expr::Column(&t->schema(), "d"));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Min("gmin", d, {3})))));
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Max("gmax", d, {3})))));
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(150))));
  auto grader = BucketGrader::Create(pred, &smas);
  EXPECT_TRUE(grader->has_sma_support());
  uint64_t pruned = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    const Grade g = Unwrap(grader->GradeBucket(b));
    ExpectGradeSound(t, b, *pred, g);
    pruned += g != Grade::kAmbivalent;
  }
  EXPECT_GT(pruned, 0u);
}

TEST_F(GraderTest, CountByValueGrading) {
  // A count SMA grouped solely by a low-cardinality column can grade
  // equality predicates on it even without min/max SMAs.
  storage::Table* t =
      MakeSyntheticTable(&db, 2000, testing::Layout::kClustered);
  SmaSet smas(t);
  // Count by date value: column 1. Dates repeat ~8x, clustered.
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Count("cbv", {1})))));
  const PredicatePtr eq = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kEq, Value::MakeDate(util::Date(3))));
  auto grader = BucketGrader::Create(eq, &smas);
  EXPECT_TRUE(grader->has_sma_support());
  uint64_t disq = 0, qual = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    const Grade g = Unwrap(grader->GradeBucket(b));
    ExpectGradeSound(t, b, *eq, g);
    disq += g == Grade::kDisqualifies;
    qual += g == Grade::kQualifies;
  }
  // Most buckets have no tuple with d == 3 -> disqualified via counts.
  EXPECT_GT(disq, t->num_buckets() / 2);
  (void)qual;
}

TEST_F(GraderTest, BooleanPredicatesSound) {
  storage::Table* t =
      MakeSyntheticTable(&db, 4000, testing::Layout::kNoisy);
  SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  util::Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    auto atom = [&]() {
      const CmpOp op = static_cast<CmpOp>(rng.Uniform(0, 5));
      const int32_t c = static_cast<int32_t>(rng.Uniform(0, 4000 / 8));
      return Unwrap(Predicate::AtomConst(&t->schema(), "d", op,
                                         Value::MakeDate(util::Date(c))));
    };
    PredicatePtr pred = rng.NextBool(0.5)
                            ? Predicate::And(atom(), atom())
                            : Predicate::Or(atom(), atom());
    if (rng.NextBool(0.3)) pred = Predicate::And(pred, atom());
    auto grader = BucketGrader::Create(pred, &smas);
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      ExpectGradeSound(t, b, *pred, Unwrap(grader->GradeBucket(b)));
    }
  }
}

TEST_F(GraderTest, TwoColumnAtomSound) {
  // Compare k-derived decimal v against itself... use columns d (date) is
  // incompatible with v (decimal); build a dedicated two-int table.
  storage::Schema s({storage::Field::Int64("a"), storage::Field::Int64("b")});
  storage::Table* t = Unwrap(db.catalog.CreateTable("two", s, {}));
  util::Rng rng(5);
  storage::TupleBuffer buf(&s);
  for (int i = 0; i < 3000; ++i) {
    buf.SetInt64(0, i / 4);                 // a grows 0..749 with position
    buf.SetInt64(1, rng.Uniform(400, 420)); // b stays in a narrow band
    ExpectOk(t->Append(buf));
  }
  SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "a");
  AddMinMaxSmas(t, &smas, "b");
  for (CmpOp op : {CmpOp::kLe, CmpOp::kLt, CmpOp::kGe, CmpOp::kGt, CmpOp::kEq,
                   CmpOp::kNe}) {
    const PredicatePtr pred =
        Unwrap(Predicate::AtomTwoCols(&s, "a", op, "b"));
    auto grader = BucketGrader::Create(pred, &smas);
    EXPECT_TRUE(grader->has_sma_support());
    uint64_t settled = 0;
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      const Grade g = Unwrap(grader->GradeBucket(b));
      ExpectGradeSound(t, b, *pred, g);
      settled += g != Grade::kAmbivalent;
    }
    if (op == CmpOp::kLe || op == CmpOp::kGt) {
      EXPECT_GT(settled, 0u);  // a grows past b's range: prunable
    }
  }
}

TEST_F(GraderTest, StringAtomsGradeThroughCountByValue) {
  storage::Table* t =
      MakeSyntheticTable(&db, 2000, testing::Layout::kClustered);
  // Make group membership position-dependent so count-by-value can prune:
  // first half of the table becomes group "X".
  for (uint32_t p = 0; p < t->num_pages() / 2; ++p) {
    auto guard = Unwrap(t->FetchPage(p));
    const uint16_t n = storage::Table::PageTupleCount(*guard.page());
    guard.Release();
    for (uint16_t s = 0; s < n; ++s) {
      ExpectOk(t->UpdateColumn(storage::Rid{p, s}, 3,
                               Value::String("X")));
    }
  }
  SmaSet smas(t);
  ExpectOk(smas.Add(Unwrap(BuildSma(t, SmaSpec::Count("cbv", {3})))));

  const PredicatePtr eq = Unwrap(expr::Predicate::AtomString(
      &t->schema(), "grp", CmpOp::kEq, "X"));
  auto grader = BucketGrader::Create(eq, &smas);
  EXPECT_TRUE(grader->has_sma_support());
  uint64_t q = 0, d = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    const Grade g = Unwrap(grader->GradeBucket(b));
    ExpectGradeSound(t, b, *eq, g);
    q += g == Grade::kQualifies;
    d += g == Grade::kDisqualifies;
  }
  // The first half qualifies wholesale, the second half disqualifies.
  EXPECT_GT(q, 0u);
  EXPECT_GT(d, 0u);

  // The negation is also sound (and prunes the other way).
  const PredicatePtr ne = Unwrap(expr::Predicate::AtomString(
      &t->schema(), "grp", CmpOp::kNe, "X"));
  auto grader_ne = BucketGrader::Create(ne, &smas);
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectGradeSound(t, b, *ne, Unwrap(grader_ne->GradeBucket(b)));
  }

  // Without a count-by-value SMA there is no support.
  SmaSet empty(t);
  auto no_support = BucketGrader::Create(eq, &empty);
  EXPECT_FALSE(no_support->has_sma_support());
}

TEST_F(GraderTest, StaleSmaCoverageGradesAmbivalent) {
  storage::Table* t =
      MakeSyntheticTable(&db, 1000, testing::Layout::kClustered);
  SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  // Append more tuples AFTER building the SMAs (no maintenance).
  storage::TupleBuffer buf(&t->schema());
  buf.SetInt64(0, 999999);
  buf.SetDate(1, util::Date(0));
  buf.SetDecimal(2, util::Decimal(1));
  buf.SetString(3, "A");
  buf.SetString(4, "MAIL");
  const uint32_t old_buckets = t->num_buckets();
  for (int i = 0; i < 500; ++i) ExpectOk(t->Append(buf));
  ASSERT_GT(t->num_buckets(), old_buckets);

  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kGe, Value::MakeDate(util::Date(1000))));
  auto grader = BucketGrader::Create(pred, &smas);
  for (uint32_t b = old_buckets; b < t->num_buckets(); ++b) {
    EXPECT_EQ(Unwrap(grader->GradeBucket(b)), Grade::kAmbivalent);
  }
}

}  // namespace
}  // namespace smadb::sma
