// Tests for plan choice and end-to-end execution through the planner.

#include <gtest/gtest.h>

#include "planner/planner.h"
#include "tests/test_util.h"

namespace smadb::plan {
namespace {

using exec::AggSpec;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using sma::SmaSpec;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

struct PlannerTest : ::testing::Test {
  PlannerTest() : db(16384) {}

  // Builds the synthetic table + a full SMA complement for group column 3.
  void Setup(testing::Layout layout, const std::string& name) {
    table = MakeSyntheticTable(&db, 4000, layout, 13, 1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, SmaSpec::Count("cnt", {3})))));
    query.table = table;
    query.group_by = {3};
    query.aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt")};
  }

  PredicatePtr DatePred(CmpOp op, int32_t day) {
    return Unwrap(Predicate::AtomConst(&table->schema(), "d", op,
                                       Value::MakeDate(util::Date(day))));
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  AggQuery query;
};

TEST_F(PlannerTest, SelectiveQueryOnClusteredDataPicksSmaGAggr) {
  Setup(testing::Layout::kClustered, "p1");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const PlanChoice choice = Unwrap(planner.Choose(query));
  EXPECT_EQ(choice.kind, PlanKind::kSmaGAggr);
  EXPECT_LT(choice.fetch_fraction, 0.25);
  EXPECT_EQ(choice.total_buckets(), table->num_buckets());
}

TEST_F(PlannerTest, ShuffledDataFallsBackToScan) {
  Setup(testing::Layout::kRandom, "p2");
  query.pred = DatePred(CmpOp::kLe, 250);  // mid-range: everything ambivalent
  Planner planner(smas.get());
  const PlanChoice choice = Unwrap(planner.Choose(query));
  EXPECT_EQ(choice.kind, PlanKind::kScanAggr);
  EXPECT_DOUBLE_EQ(choice.fetch_fraction, 1.0);
}

TEST_F(PlannerTest, NoSmasMeansScan) {
  Setup(testing::Layout::kClustered, "p3");
  query.pred = DatePred(CmpOp::kLe, 40);
  sma::SmaSet empty(table);
  Planner planner(&empty);
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kScanAggr);
  Planner null_planner(nullptr);
  EXPECT_EQ(Unwrap(null_planner.Choose(query)).kind, PlanKind::kScanAggr);
}

TEST_F(PlannerTest, MissingAggregateSmaDowngradesToSmaScanAggr) {
  Setup(testing::Layout::kClustered, "p4");
  // Ask for an aggregate no SMA covers (max v); selection SMAs still help.
  const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
  query.aggs.push_back(AggSpec::Max(v, "max_v"));
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const PlanChoice choice = Unwrap(planner.Choose(query));
  EXPECT_EQ(choice.kind, PlanKind::kSmaScanAggr);
}

TEST_F(PlannerTest, ForceSmaOverridesBreakEven) {
  Setup(testing::Layout::kRandom, "p5");
  query.pred = DatePred(CmpOp::kLe, 250);
  PlannerOptions options;
  options.force_sma = true;
  Planner planner(smas.get(), options);
  const PlanChoice choice = Unwrap(planner.Choose(query));
  EXPECT_EQ(choice.kind, PlanKind::kSmaGAggr);
}

TEST_F(PlannerTest, BreakevenKnobRespected) {
  Setup(testing::Layout::kNoisy, "p6");
  query.pred = DatePred(CmpOp::kLe, 100);
  PlannerOptions strict;
  strict.breakeven_fraction = 1e-9;  // nothing is ever cheap enough
  Planner planner(smas.get(), strict);
  EXPECT_EQ(Unwrap(planner.Choose(query)).kind, PlanKind::kScanAggr);
}

TEST_F(PlannerTest, AllPlansProduceIdenticalResults) {
  Setup(testing::Layout::kNoisy, "p7");
  query.pred = DatePred(CmpOp::kLe, 120);
  Planner planner(smas.get());
  std::string reference;
  for (PlanKind kind : {PlanKind::kScanAggr, PlanKind::kSmaScanAggr,
                        PlanKind::kSmaGAggr}) {
    auto op = Unwrap(planner.Build(query, kind));
    const QueryResult result = Unwrap(RunToCompletion(op.get()));
    if (reference.empty()) {
      reference = result.ToString();
      EXPECT_FALSE(result.rows.empty());
    } else {
      EXPECT_EQ(result.ToString(), reference)
          << "plan " << PlanKindToString(kind);
    }
  }
}

TEST_F(PlannerTest, ExecuteEndToEnd) {
  Setup(testing::Layout::kClustered, "p8");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const QueryResult result = Unwrap(planner.Execute(query));
  EXPECT_EQ(result.plan.kind, PlanKind::kSmaGAggr);
  EXPECT_FALSE(result.rows.empty());
  // Header + one line per row.
  const std::string text = result.ToString();
  EXPECT_EQ(static_cast<size_t>(std::count(text.begin(), text.end(), '\n')),
            result.rows.size() + 1);
}

TEST_F(PlannerTest, SelectQueryPlanChoice) {
  Setup(testing::Layout::kClustered, "p9");
  SelectQuery sel;
  sel.table = table;
  sel.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  const PlanChoice choice = Unwrap(planner.ChooseSelect(sel));
  EXPECT_EQ(choice.kind, PlanKind::kSmaScan);

  // Both select plans agree.
  auto a = Unwrap(planner.BuildSelect(sel, PlanKind::kScan));
  auto b = Unwrap(planner.BuildSelect(sel, PlanKind::kSmaScan));
  EXPECT_EQ(Unwrap(RunToCompletion(a.get())).rows.size(),
            Unwrap(RunToCompletion(b.get())).rows.size());
}

TEST_F(PlannerTest, SelectQueryUnselectiveFallsBack) {
  Setup(testing::Layout::kClustered, "p10");
  SelectQuery sel;
  sel.table = table;
  sel.pred = DatePred(CmpOp::kGe, 0);  // everything qualifies
  Planner planner(smas.get());
  EXPECT_EQ(Unwrap(planner.ChooseSelect(sel)).kind, PlanKind::kScan);
}

TEST_F(PlannerTest, BuildRejectsMismatchedKinds) {
  Setup(testing::Layout::kClustered, "p11");
  query.pred = DatePred(CmpOp::kLe, 40);
  Planner planner(smas.get());
  EXPECT_FALSE(planner.Build(query, PlanKind::kSmaScan).ok());
  SelectQuery sel;
  sel.table = table;
  sel.pred = query.pred;
  EXPECT_FALSE(planner.BuildSelect(sel, PlanKind::kSmaGAggr).ok());
}

}  // namespace
}  // namespace smadb::plan
