// Tests for the expression/predicate parser and the `define sma` language.

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "sma/parser.h"
#include "tests/test_util.h"

namespace smadb {
namespace {

using expr::ParseExpr;
using expr::ParsePredicate;
using sma::AggFunc;
using sma::ParseSmaDefinition;
using storage::Schema;
using storage::TupleBuffer;
using testing::ExpectOk;
using testing::SyntheticSchema;
using testing::TestDb;
using testing::Unwrap;
using util::Date;
using util::Decimal;

struct ParserTest : ::testing::Test {
  ParserTest() : schema(SyntheticSchema()), tuple(&schema) {
    tuple.SetInt64(0, 7);                 // k
    tuple.SetDate(1, Date(100));          // d
    tuple.SetDecimal(2, Decimal(250));    // v = 2.50
    tuple.SetString(3, "B");
    tuple.SetString(4, "RAIL");
  }

  Schema schema;
  TupleBuffer tuple;
};

// ------------------------------------------------------------ expressions --

TEST_F(ParserTest, ParsesColumn) {
  auto e = Unwrap(ParseExpr(&schema, "k"));
  EXPECT_EQ(e->EvalInt(tuple.AsRef()), 7);
}

TEST_F(ParserTest, ParsesLiterals) {
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "42"))->EvalInt(tuple.AsRef()), 42);
  // Decimal literal: two-digit fixed point.
  auto dec = Unwrap(ParseExpr(&schema, "0.06"));
  EXPECT_EQ(dec->type(), util::TypeId::kDecimal);
  EXPECT_EQ(dec->EvalInt(tuple.AsRef()), 6);
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "1.5"))->EvalInt(tuple.AsRef()), 150);
}

TEST_F(ParserTest, ParsesArithmeticWithPrecedence) {
  // 1 + 2 * 3 = 7 (multiplication binds tighter)
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "1 + 2 * 3"))->EvalInt(tuple.AsRef()),
            7);
  // (1 + 2) * 3 = 9
  EXPECT_EQ(
      Unwrap(ParseExpr(&schema, "(1 + 2) * 3"))->EvalInt(tuple.AsRef()), 9);
  // Left associativity: 10 - 2 - 3 = 5
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "10 - 2 - 3"))->EvalInt(tuple.AsRef()),
            5);
}

TEST_F(ParserTest, ParsesThePaperExpression) {
  // The Q1 money expression, exactly as the paper writes it.
  auto e = Unwrap(ParseExpr(&schema, "v * (1.00 - v) * (1.00 + v)"));
  // 2.50 * (-1.50) * 3.50 = -13.13 (with per-step cent rounding: -3.75
  // then -13.13).
  EXPECT_EQ(e->EvalInt(tuple.AsRef()),
            ((Decimal(250) * (Decimal(100) - Decimal(250))) *
             (Decimal(100) + Decimal(250)))
                .cents());
  // Canonical form matches the builder API's ToString.
  EXPECT_EQ(e->ToString(), "((v * (1.00 - v)) * (1.00 + v))");
}

TEST_F(ParserTest, NegativeLiterals) {
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "-5"))->EvalInt(tuple.AsRef()), -5);
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "-0.25"))->EvalInt(tuple.AsRef()),
            -25);
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "3 - -2"))->EvalInt(tuple.AsRef()), 5);
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "-k"))->EvalInt(tuple.AsRef()), -7);
  // Predicates with negative constants (k == 7 in the fixture).
  EXPECT_TRUE(
      Unwrap(ParsePredicate(&schema, "k > -1"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(
      Unwrap(ParsePredicate(&schema, "v >= -10.26"))->Eval(tuple.AsRef()));
  // Int literal promoted against decimal column even when negative.
  EXPECT_TRUE(
      Unwrap(ParsePredicate(&schema, "v > -3"))->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, CaseInsensitiveColumns) {
  EXPECT_EQ(Unwrap(ParseExpr(&schema, "K"))->EvalInt(tuple.AsRef()), 7);
}

TEST_F(ParserTest, ExprErrors) {
  EXPECT_FALSE(ParseExpr(&schema, "").ok());
  EXPECT_FALSE(ParseExpr(&schema, "nosuchcol").ok());
  EXPECT_FALSE(ParseExpr(&schema, "1 +").ok());
  EXPECT_FALSE(ParseExpr(&schema, "(1 + 2").ok());
  EXPECT_FALSE(ParseExpr(&schema, "1 2").ok());         // trailing token
  EXPECT_FALSE(ParseExpr(&schema, "0.123").ok());        // 3 fraction digits
  EXPECT_FALSE(ParseExpr(&schema, "1 ? 2").ok());        // bad char
  EXPECT_FALSE(ParseExpr(&schema, "tag + 1").ok());      // string arithmetic
}

// ------------------------------------------------------------- predicates --

TEST_F(ParserTest, ParsesDatePredicate) {
  auto p = Unwrap(ParsePredicate(&schema, "d <= date '1970-04-11'"));
  EXPECT_TRUE(p->Eval(tuple.AsRef()));  // day 100 == 1970-04-11
  auto q = Unwrap(ParsePredicate(&schema, "d < '1970-04-11'"));  // bare quote
  EXPECT_FALSE(q->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, ParsesAllComparisons) {
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k = 7"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k != 8"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k <> 8"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k < 8"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k <= 7"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k > 6"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "k >= 7"))->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, MirrorsLiteralOnLeft) {
  // 8 > k  ==  k < 8.
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "8 > k"))->Eval(tuple.AsRef()));
  EXPECT_FALSE(Unwrap(ParsePredicate(&schema, "7 > k"))->Eval(tuple.AsRef()));
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "7 = k"))->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, PromotesIntLiteralsForDecimalColumns) {
  // The Q6 idiom "l_quantity < 24" with a decimal quantity column.
  auto p = Unwrap(ParsePredicate(&schema, "v < 24"));
  EXPECT_TRUE(p->Eval(tuple.AsRef()));  // 2.50 < 24.00
  auto q = Unwrap(ParsePredicate(&schema, "v < 2"));
  EXPECT_FALSE(q->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, BooleanStructureAndParens) {
  auto p = Unwrap(ParsePredicate(
      &schema, "k >= 5 and k <= 9 or d > '1999-01-01'"));
  EXPECT_TRUE(p->Eval(tuple.AsRef()));
  // Parentheses change grouping: and binds tighter than or by default.
  auto q = Unwrap(ParsePredicate(
      &schema, "k >= 5 and (k > 100 or d <= '1970-04-11')"));
  EXPECT_TRUE(q->Eval(tuple.AsRef()));
  auto r = Unwrap(ParsePredicate(&schema, "(k > 100 or k < 3) and d > '1970-01-01'"));
  EXPECT_FALSE(r->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, TwoColumnAtom) {
  Schema two({storage::Field::Int64("a"), storage::Field::Int64("b")});
  TupleBuffer t(&two);
  t.SetInt64(0, 3);
  t.SetInt64(1, 5);
  EXPECT_TRUE(Unwrap(ParsePredicate(&two, "a <= b"))->Eval(t.AsRef()));
  EXPECT_FALSE(Unwrap(ParsePredicate(&two, "a = b"))->Eval(t.AsRef()));
}

TEST_F(ParserTest, TruePredicate) {
  EXPECT_TRUE(Unwrap(ParsePredicate(&schema, "true"))->Eval(tuple.AsRef()));
}

TEST_F(ParserTest, PredicateErrors) {
  EXPECT_FALSE(ParsePredicate(&schema, "k").ok());
  EXPECT_FALSE(ParsePredicate(&schema, "k = ").ok());
  EXPECT_FALSE(ParsePredicate(&schema, "1 = 2").ok());  // no column
  EXPECT_FALSE(ParsePredicate(&schema, "k = 1 k = 2").ok());
  EXPECT_FALSE(ParsePredicate(&schema, "tag = 1").ok());  // string column
  EXPECT_FALSE(ParsePredicate(&schema, "d <= '1998-99-99'").ok());
}

// --------------------------------------------------------- SMA definitions --

TEST_F(ParserTest, ParsesUngroupedMin) {
  auto def = Unwrap(ParseSmaDefinition(
      &schema, "define sma min select min(d) from t"));
  EXPECT_EQ(def.table, "t");
  EXPECT_EQ(def.spec.name, "min");
  EXPECT_EQ(def.spec.func, AggFunc::kMin);
  EXPECT_EQ(def.spec.arg->ToString(), "d");
  EXPECT_TRUE(def.spec.group_by.empty());
}

TEST_F(ParserTest, ParsesGroupedSumOfExpression) {
  auto def = Unwrap(ParseSmaDefinition(
      &schema,
      "define sma extdis select sum(v * (1.00 - v)) from t "
      "group by grp, tag"));
  EXPECT_EQ(def.spec.func, AggFunc::kSum);
  EXPECT_EQ(def.spec.arg->ToString(), "(v * (1.00 - v))");
  EXPECT_EQ(def.spec.group_by, (std::vector<size_t>{3, 4}));
}

TEST_F(ParserTest, ParsesCountStar) {
  auto def = Unwrap(ParseSmaDefinition(
      &schema, "define sma count select count(*) from t group by grp"));
  EXPECT_EQ(def.spec.func, AggFunc::kCount);
  EXPECT_EQ(def.spec.arg, nullptr);
  EXPECT_EQ(def.spec.group_by, (std::vector<size_t>{3}));
}

TEST_F(ParserTest, MultilineDefinitionLikeThePaper) {
  auto def = Unwrap(ParseSmaDefinition(&schema,
                                       "define sma qty\n"
                                       "select   sum(v)\n"
                                       "from     t\n"
                                       "group by grp, tag\n"));
  EXPECT_EQ(def.spec.name, "qty");
}

TEST_F(ParserTest, RejectsPaperRestrictions) {
  // Joins: "we allow only for a single entry within the from clause".
  EXPECT_EQ(ParseSmaDefinition(&schema,
                               "define sma x select min(d) from t, s")
                .status()
                .code(),
            util::StatusCode::kNotSupported);
  // Multiple select entries: "the select clause may contain only a single
  // entry".
  EXPECT_EQ(ParseSmaDefinition(&schema,
                               "define sma x select sum(v, k) from t")
                .status()
                .code(),
            util::StatusCode::kNotSupported);
  // Order specification is not allowed.
  EXPECT_EQ(ParseSmaDefinition(
                &schema, "define sma x select min(d) from t order by d")
                .status()
                .code(),
            util::StatusCode::kNotSupported);
  // avg is not a SMA aggregate (it is derived at query time).
  EXPECT_FALSE(
      ParseSmaDefinition(&schema, "define sma x select avg(v) from t").ok());
}

TEST_F(ParserTest, DefinitionErrors) {
  EXPECT_FALSE(ParseSmaDefinition(&schema, "").ok());
  EXPECT_FALSE(ParseSmaDefinition(&schema, "define sma").ok());
  EXPECT_FALSE(
      ParseSmaDefinition(&schema, "define sma x select min(d)").ok());
  EXPECT_FALSE(ParseSmaDefinition(
                   &schema, "define sma x select min(zz) from t")
                   .ok());
  EXPECT_FALSE(ParseSmaDefinition(
                   &schema, "define sma x select min(d) from t group by zz")
                   .ok());
  EXPECT_FALSE(ParseSmaDefinition(
                   &schema, "define sma x select count(d) from t")
                   .ok());
}

// ----------------------------------------------------- end-to-end DefineSma --

TEST(DefineSmaTest, BuildsAndRegistersThroughCatalog) {
  TestDb db;
  storage::Table* t =
      testing::MakeSyntheticTable(&db, 2000, testing::Layout::kClustered);
  sma::SmaSet smas(t);
  ExpectOk(sma::DefineSma(&db.catalog, &smas,
                          "define sma min select min(d) from t"));
  ExpectOk(sma::DefineSma(&db.catalog, &smas,
                          "define sma max select max(d) from t"));
  ExpectOk(sma::DefineSma(
      &db.catalog, &smas,
      "define sma sums select sum(v * (1.00 - v)) from t group by grp"));
  EXPECT_EQ(smas.size(), 3u);
  EXPECT_NE(smas.FindMinMax(sma::AggFunc::kMin, 1), nullptr);

  // Textually-defined SMA matches a textually-parsed query expression.
  const sma::Sma* sums = *smas.Find("sums");
  EXPECT_EQ(sums->spec().Signature(t->schema()),
            "sum((v * (1.00 - v))) group by grp");

  // Unknown table / mismatched set.
  EXPECT_FALSE(sma::DefineSma(&db.catalog, &smas,
                              "define sma y select min(d) from nope")
                   .ok());
}

}  // namespace
}  // namespace smadb
