// Crash-recovery torture tests for the file backend (DESIGN.md §12).
//
// The contract under test: a mutation acknowledged after a WAL sync is
// COMMITTED — it survives any crash (CrashForTesting models kill-9: staged
// WAL bytes and dirty pages vanish) and reappears after Open() replays the
// log. Un-synced tails are lost *cleanly* (a prefix of operations, never a
// torn record), and SMAs whose maintenance the crash swallowed are detected
// as stale at recovery — demoted by the planner, repaired by Rebuild() —
// never silently served.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "sma/maintenance.h"
#include "storage/file_disk.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace smadb::db {
namespace {

using storage::BackendKind;
using storage::FileId;
using storage::Rid;
using testing::ExpectOk;
using testing::ScopedTempDir;
using testing::Unwrap;
using util::FaultKind;
using util::Status;
using util::StatusCode;

// Aggregate over the first month of synthetic dates; touches SMA plans when
// min/max SMAs on d exist.
constexpr char kAggQuery[] =
    "select grp, sum(v), count(*) from t where d <= '1970-01-31' group by grp";
constexpr char kSumQuery[] = "select sum(k), count(*) from t";

struct DurabilityTest : ::testing::Test {
  ~DurabilityTest() override { util::fault::DisarmAll(); }

  DatabaseOptions FileOptions(size_t wal_sync_interval = 1) const {
    DatabaseOptions o;
    o.storage_backend = BackendKind::kFile;
    o.storage_path = tmpdir.path;
    o.wal_sync_interval = wal_sync_interval;
    return o;
  }

  std::unique_ptr<Database> OpenDb(size_t wal_sync_interval = 1) const {
    return Unwrap(Database::Open(FileOptions(wal_sync_interval)));
  }

  /// Inserts rows [from, to) of the synthetic distribution through the
  /// durable Insert path (d = i/8 days, v = 3i cents, grp cycles A..C).
  static void Append(Database* db, int64_t from, int64_t to) {
    storage::Table* t = Unwrap(db->GetTable("t"));
    storage::TupleBuffer buf(&t->schema());
    for (int64_t i = from; i < to; ++i) {
      FillRow(&buf, i);
      ExpectOk(db->Insert("t", buf));
    }
  }

  static void FillRow(storage::TupleBuffer* buf, int64_t i) {
    buf->SetInt64(0, i);
    buf->SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
    buf->SetDecimal(2, util::Decimal(i * 3));
    const char grp = static_cast<char>('A' + (i % 3));
    buf->SetString(3, std::string_view(&grp, 1));
    buf->SetString(4, "MAIL");
  }

  /// Creates table "t" with the synthetic schema and loads `n` rows.
  static void Load(Database* db, int64_t n) {
    Unwrap(db->CreateTable("t", testing::SyntheticSchema()));
    Append(db, 0, n);
  }

  static std::string Answer(Database* db, const std::string& sql) {
    return Unwrap(db->Query(sql)).ToString();
  }

  static uint64_t Tuples(Database* db) {
    return Unwrap(db->GetTable("t"))->num_tuples();
  }

  ScopedTempDir tmpdir;
};

// ---------------------------------------------------------------------------
// Clean shutdown: Close() checkpoints, so recovery replays nothing and the
// SMAs come back from the manifest fully trusted.

TEST_F(DurabilityTest, CleanCloseReopenPreservesAnswersAndSmaTrust) {
  std::string expected;
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 200);
    ExpectOk(db->Execute("define sma mn select min(d) from t"));
    ExpectOk(db->Execute("define sma mx select max(d) from t"));
    expected = Answer(db.get(), kAggQuery);
    ExpectOk(db->Close());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(db->durability().recovered_tables, 1u);
  EXPECT_EQ(db->durability().replayed_records, 0u);
  EXPECT_EQ(db->durability().stale_smas, 0u);
  EXPECT_EQ(Tuples(db.get()), 200u);
  EXPECT_EQ(Answer(db.get(), kAggQuery), expected);
  for (const sma::Sma* s : Unwrap(db->Smas("t"))->all()) {
    EXPECT_TRUE(s->trusted()) << s->spec().name;
    EXPECT_FALSE(s->stale()) << s->spec().name;
  }
}

// A scoped Database (no explicit Close) checkpoints from the destructor.
TEST_F(DurabilityTest, DestructorIsACleanShutdown) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 64);
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(db->durability().replayed_records, 0u);
  EXPECT_EQ(Tuples(db.get()), 64u);
}

// ---------------------------------------------------------------------------
// Crash + replay: with per-commit syncing every acknowledged mutation —
// inserts, updates, deletes — reappears at the same Rid after recovery.

TEST_F(DurabilityTest, CrashReplayRestoresCommittedMutations) {
  std::string expected;
  {
    std::unique_ptr<Database> db = OpenDb();
    Unwrap(db->CreateTable("t", testing::SyntheticSchema()));
    storage::Table* t = Unwrap(db->GetTable("t"));
    storage::TupleBuffer buf(&t->schema());
    Rid victim{}, doomed{};
    for (int64_t i = 0; i < 120; ++i) {
      FillRow(&buf, i);
      Rid rid{};
      ExpectOk(db->Insert("t", buf, &rid));
      if (i == 5) victim = rid;
      if (i == 7) doomed = rid;
    }
    ExpectOk(db->Update("t", victim, 0, util::Value::Int64(424242)));
    ExpectOk(db->Delete("t", doomed));
    expected = Answer(db.get(), kSumQuery);
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  // create + 120 inserts + update + delete, all committed before the crash.
  EXPECT_EQ(db->durability().replayed_records, 123u);
  EXPECT_EQ(Tuples(db.get()), 120u);
  EXPECT_EQ(Unwrap(db->GetTable("t"))->num_live_tuples(), 119u);
  EXPECT_EQ(Answer(db.get(), kSumQuery), expected);
}

// Replay is idempotent against a crash landing *between* manifest write and
// WAL reset: records below the checkpoint horizon are skipped, the tail
// after it replays exactly once.
TEST_F(DurabilityTest, CheckpointTruncatesWalAndReplayCoversOnlyTheTail) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 100);
    ExpectOk(db->Execute("define sma mn select min(d) from t"));
    ExpectOk(db->Checkpoint());
    EXPECT_GT(db->wal()->base_lsn(), 1u);
    EXPECT_EQ(db->durability().checkpoints, 1u);
    Append(db.get(), 100, 110);  // the post-checkpoint tail
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(db->durability().recovered_tables, 1u);
  EXPECT_EQ(db->durability().replayed_records, 10u);
  EXPECT_EQ(Tuples(db.get()), 110u);
  // The replayed tail outran the checkpointed SMA: stale, not wrong.
  EXPECT_GE(db->durability().stale_smas, 1u);
}

// A crash inside Wal::Reset can persist the ftruncate but not the fresh
// header, so the next Open lays down a header whose LSNs restart at 1 while
// the manifest horizon stays at the old value. Recover must re-seat the log
// at the horizon; otherwise every commit synced after that reopen lands
// below the horizon and the *next* Recover silently drops it.
TEST_F(DurabilityTest, TornCheckpointTruncationKeepsLaterCommitsVisible) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 50);
    ExpectOk(db->Checkpoint());
    EXPECT_GT(db->wal()->base_lsn(), 1u);
    ExpectOk(db->CrashForTesting());
  }
  // Tear the checkpoint truncation: the log vanishes, the manifest keeps
  // its large checkpoint_lsn.
  std::filesystem::resize_file(tmpdir.path + "/wal.smadb", 0);
  {
    std::unique_ptr<Database> db = OpenDb();
    EXPECT_EQ(Tuples(db.get()), 50u);  // the checkpoint carries the data
    // The reconciled log must continue at the manifest horizon.
    EXPECT_GE(db->wal()->base_lsn(), 1u + 50u);
    Append(db.get(), 50, 60);  // synced (interval 1): acknowledged commits
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(db->durability().replayed_records, 10u);
  EXPECT_EQ(Tuples(db.get()), 60u);
}

// A crash between the fresh header's pwrite and its fdatasync can leave a
// header-sized file of garbage. That log never held a record, so Open must
// treat it as an empty log, not fail with Corruption.
TEST_F(DurabilityTest, TornFreshWalHeaderIsTreatedAsEmptyLog) {
  {
    std::ofstream out(tmpdir.path + "/wal.smadb", std::ios::binary);
    out << std::string(20, 'x');  // header-sized garbage
  }
  std::unique_ptr<Database> db = OpenDb();
  Load(db.get(), 5);
  ExpectOk(db->CrashForTesting());
  db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 5u);
  // A log that actually held records stays a hard error on bad magic.
  {
    std::ofstream out(tmpdir.path + "/wal.smadb",
                      std::ios::binary | std::ios::trunc);
    out << std::string(64, 'x');
  }
  auto r = Database::Open(FileOptions());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
}

// ---------------------------------------------------------------------------
// Failed applies must not replay: the staged WAL record is rolled back (or,
// if it already escaped to the file, covered by an abort record).

TEST_F(DurabilityTest, FailedApplyRollsBackTheStagedWalRecord) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 10);
    // An update aimed at a nonexistent Rid passes the WAL-stage validation
    // (column + type family) but fails the in-memory apply; its staged
    // record must not survive to replay a mutation this instance rejected.
    const Status s = db->Update("t", Rid{9999, 0}, 0, util::Value::Int64(1));
    EXPECT_FALSE(s.ok()) << s.ToString();
    Append(db.get(), 10, 11);  // a later commit flushes the WAL buffer
    ExpectOk(db->CrashForTesting());
  }
  // Recovery must neither fail on nor materialize the rejected update.
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(db->durability().replayed_records, 12u);  // create + 11 inserts
  EXPECT_EQ(Tuples(db.get()), 11u);
}

TEST_F(DurabilityTest, AbortRecordsSuppressReplayOfFailedApplies) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 20);
    // Model the already-flushed case (an eviction barrier ran between the
    // append and the apply failure): the record is in the file, so the
    // rollback path covers it with a kAbort instead of unstaging it.
    storage::Wal* wal = db->wal();
    std::string payload;
    storage::WalPutString(&payload, "t");
    storage::WalPutString(&payload, "define sma ab select min(d) from t");
    const uint64_t lsn =
        Unwrap(wal->Append(storage::WalRecordType::kDefineSma, payload));
    ExpectOk(wal->Sync());  // the doomed record is now durable
    std::string abort_payload;
    storage::WalPutU64(&abort_payload, lsn);
    ExpectOk(
        wal->Append(storage::WalRecordType::kAbort, abort_payload).status());
    ExpectOk(wal->Sync());
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 20u);
  // The aborted define must not have replayed.
  EXPECT_FALSE(Unwrap(db->Smas("t"))->Find("ab").ok());
}

// Wal::TryRollback: staged-only records unstage; flushed records refuse (the
// caller then logs an abort).
TEST_F(DurabilityTest, WalTryRollbackUnstagesOnlyBufferedRecords) {
  std::unique_ptr<storage::Wal> wal =
      Unwrap(storage::Wal::Open(tmpdir.path + "/wal.smadb"));
  const storage::Wal::AppendMark staged = wal->Mark();
  ExpectOk(wal->Append(storage::WalRecordType::kDelete, "x").status());
  EXPECT_TRUE(wal->TryRollback(staged));
  EXPECT_EQ(wal->next_lsn(), staged.lsn);
  EXPECT_EQ(wal->stats().appends, 0u);
  const storage::Wal::AppendMark flushed = wal->Mark();
  ExpectOk(wal->Append(storage::WalRecordType::kDelete, "x").status());
  ExpectOk(wal->Flush());
  EXPECT_FALSE(wal->TryRollback(flushed));
  EXPECT_EQ(wal->next_lsn(), flushed.lsn + 1);  // the log is untouched
}

// ---------------------------------------------------------------------------
// Tail-loss semantics: what a crash may take is exactly the un-synced
// suffix, as a clean prefix of operations.

TEST_F(DurabilityTest, UnsyncedTailIsLostCleanly) {
  {
    std::unique_ptr<Database> db = OpenDb(/*wal_sync_interval=*/0);  // manual
    Load(db.get(), 50);
    ExpectOk(db->SyncWal());     // commit the prefix: create + 50 inserts
    Append(db.get(), 50, 80);    // staged only — never synced
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 50u);
  EXPECT_EQ(db->durability().replayed_records, 51u);
}

TEST_F(DurabilityTest, GroupCommitLosesAtMostTheWindow) {
  constexpr size_t kInterval = 8;
  {
    std::unique_ptr<Database> db = OpenDb(kInterval);
    Load(db.get(), 20);  // ops: 1 create + 20 inserts; syncs at op 8 and 16
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  const uint64_t recovered = Tuples(db.get());
  EXPECT_EQ(recovered, 15u);  // synced through op 16 = create + 15 inserts
  EXPECT_LE(20u - recovered, kInterval - 1)
      << "group commit must bound tail loss to the sync window";
}

// ---------------------------------------------------------------------------
// Kill-points on the durability spine itself.

TEST_F(DurabilityTest, WalAppendKillPointRejectsTheOpWithoutSideEffects) {
  std::unique_ptr<Database> db = OpenDb();
  Load(db.get(), 10);
  storage::TupleBuffer buf(&Unwrap(db->GetTable("t"))->schema());
  FillRow(&buf, 10);
  util::fault::Arm("wal.append", {.count = 1, .kind = FaultKind::kPermanent});
  const Status s = db->Insert("t", buf);
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
  // Log-before-apply: the rejected insert never reached the table.
  EXPECT_EQ(Tuples(db.get()), 10u);
  util::fault::DisarmAll();
  ExpectOk(db->Insert("t", buf));  // the failpoint left no residue
  ExpectOk(db->CrashForTesting());
  db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 11u);
}

TEST_F(DurabilityTest, WalSyncKillPointMeansNotCommitted) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 10);
    storage::TupleBuffer buf(&Unwrap(db->GetTable("t"))->schema());
    FillRow(&buf, 10);
    util::fault::Arm("wal.sync", {.count = 1, .kind = FaultKind::kPermanent});
    const Status s = db->Insert("t", buf);
    EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
    util::fault::DisarmAll();
    // The op failed its durability barrier; a crash now must erase it.
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 10u);
}

TEST_F(DurabilityTest, DiskWriteKillPointSurfacesFromCheckpoint) {
  std::unique_ptr<Database> db = OpenDb();
  Load(db.get(), 200);
  util::fault::Arm("disk.write",
                   {.count = 1,
                    .kind = FaultKind::kPermanent,
                    .file_filter = "tbl."});
  const Status s = db->Checkpoint();
  EXPECT_EQ(s.code(), StatusCode::kIOError) << s.ToString();
  util::fault::DisarmAll();
  // The failed checkpoint must not have truncated the log: a crash + reopen
  // still recovers everything from the WAL.
  ExpectOk(db->CrashForTesting());
  db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 200u);
}

// ---------------------------------------------------------------------------
// Torn and corrupt on-disk state.

TEST_F(DurabilityTest, TornWalTailStopsReplayAtTheIntactPrefix) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 30);
    ExpectOk(db->CrashForTesting());
  }
  // Shear a few bytes off the last record — a torn append at power loss.
  const std::string wal_path = tmpdir.path + "/wal.smadb";
  const uintmax_t size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 3);
  std::unique_ptr<Database> db = OpenDb();
  // create + 29 intact inserts; the torn 30th is cleanly dropped.
  EXPECT_EQ(db->durability().replayed_records, 30u);
  EXPECT_EQ(Tuples(db.get()), 29u);
}

TEST_F(DurabilityTest, CorruptStoredPageSurfacesAsTypedCorruption) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 100);
    ExpectOk(db->Close());
  }
  std::unique_ptr<Database> db = OpenDb();
  const FileId file = Unwrap(db->disk()->FindFile("tbl.t"));
  ExpectOk(db->disk()->CorruptPageForTesting(file, 0, 0xff));
  auto r = db->Query(kSumQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
}

// Corrupt numbers in the persistence files surface as typed Corruption,
// never as an uncaught exception (std::stoul) or a silently wrapped value.
TEST_F(DurabilityTest, CorruptSuperblockNumberSurfacesAsCorruption) {
  {
    std::ofstream out(tmpdir.path + "/superblock.smadb", std::ios::trunc);
    out << "smadb-superblock v1\nfile zzz t\n";
  }
  auto r = storage::FileDiskManager::Open(tmpdir.path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
}

TEST_F(DurabilityTest, OverflowingManifestNumberSurfacesAsCorruption) {
  const std::string path = tmpdir.path + "/manifest.smadb";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "smadb-manifest v1\ncheckpoint_lsn 99999999999999999999999\n";
  }
  auto r = ReadManifest(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
}

// ---------------------------------------------------------------------------
// SMA trust across recovery: replay redoes base data only, so SMAs whose
// maintenance the crash swallowed come back stale — demoted by the planner,
// never silently used — and Rebuild() repairs them.

TEST_F(DurabilityTest, RecoveryFlagsStaleSmasAndRebuildRepairs) {
  std::string expected;
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 160);
    ExpectOk(db->Execute("define sma mn select min(d) from t"));
    ExpectOk(db->Execute("define sma mx select max(d) from t"));
    Append(db.get(), 160, 200);  // maintained live, but replay won't redo SMAs
    expected = Answer(db.get(), kAggQuery);
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_GE(db->durability().stale_smas, 2u);
  // The crash left both SMA-files on disk without a manifest entry; the
  // orphan sweep must have removed them so the replayed defines could
  // re-create them from base data.
  EXPECT_EQ(db->durability().orphan_sma_files, 2u);
  sma::SmaSet* smas = Unwrap(db->Smas("t"));
  EXPECT_TRUE(Unwrap(smas->Find("mn"))->stale());
  // Stale SMAs are detected, not served: the query still answers correctly
  // (the planner demotes to a base-data scan under a stale SMA set).
  EXPECT_EQ(Answer(db.get(), kAggQuery), expected);
  // Rebuild() pays off the recovery debt and restores SMA trust.
  ExpectOk(Unwrap(db->Maintainer("t"))->Rebuild());
  EXPECT_FALSE(Unwrap(smas->Find("mn"))->stale());
  EXPECT_TRUE(Unwrap(smas->Find("mn"))->trusted());
  EXPECT_EQ(Answer(db.get(), kAggQuery), expected);
}

// RemoveFile is the primitive the orphan sweep stands on: the tombstone must
// survive a reopen of the directory (as a superblock "free" line), keep the
// surviving files' ids stable, and hand the slot back to the next create.
TEST_F(DurabilityTest, RemoveFileTombstoneSurvivesReopen) {
  using storage::FileDiskManager;
  using storage::Page;
  FileId kept = 0;
  {
    std::unique_ptr<FileDiskManager> disk =
        Unwrap(FileDiskManager::Open(tmpdir.path));
    FileId doomed = Unwrap(disk->CreateFile("doomed"));
    kept = Unwrap(disk->CreateFile("kept"));
    ExpectOk(disk->AllocatePage(doomed).status());
    ExpectOk(disk->AllocatePage(kept).status());
    Page p;
    p.Zero();
    p.WriteAt<uint64_t>(0, 0xC0FFEEull);
    ExpectOk(disk->WritePage(kept, 0, p));
    ExpectOk(disk->RemoveFile(doomed));
    ExpectOk(disk->Sync());
  }
  std::unique_ptr<FileDiskManager> disk =
      Unwrap(FileDiskManager::Open(tmpdir.path));
  EXPECT_EQ(disk->FindFile("doomed").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(Unwrap(disk->FindFile("kept")), kept);
  storage::Page p;
  ExpectOk(disk->ReadPage(kept, 0, &p));
  EXPECT_EQ(p.ReadAt<uint64_t>(0), 0xC0FFEEull);
  // The tombstoned id is handed back before the id space grows.
  EXPECT_EQ(Unwrap(disk->CreateFile("replacement")), 0u);
  EXPECT_EQ(*disk->NumPages(0), 0u);
}

// ---------------------------------------------------------------------------
// Statement surface: `set storage`, `set storage_path`, `show storage`.

TEST_F(DurabilityTest, StorageStatementsSwitchBackendsAndReport) {
  Database db;  // plain constructor = simulated backend
  EXPECT_NE(Unwrap(db.Query("show storage")).ToString().find("sim"),
            std::string::npos);
  ExpectOk(db.Execute("set storage_path = '" + tmpdir.path + "'"));
  ExpectOk(db.Execute("set storage = file"));
  const std::string shown = Unwrap(db.Query("show storage")).ToString();
  EXPECT_NE(shown.find("file"), std::string::npos) << shown;
  EXPECT_NE(shown.find(tmpdir.path), std::string::npos) << shown;
  ExpectOk(db.Execute("set wal_sync_interval = 8"));
  EXPECT_EQ(db.options().wal_sync_interval, 8u);
  // Re-pointing the path while the file backend is live is refused.
  EXPECT_FALSE(db.Execute("set storage_path = '/tmp/elsewhere'").ok());
  // Switching backends under existing tables is refused (no silent drop).
  Unwrap(db.CreateTable("t", testing::SyntheticSchema()));
  const Status s = db.Execute("set storage = sim");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
}

// `set storage = file` against a directory holding an earlier database is an
// attach: it runs the same recovery as Open().
TEST_F(DurabilityTest, SetStorageFileAttachesAndRecoversExistingDirectory) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 40);
    ExpectOk(db->Close());
  }
  Database db;
  ExpectOk(db.Execute("set storage_path = '" + tmpdir.path + "'"));
  ExpectOk(db.Execute("set storage = file"));
  EXPECT_EQ(Unwrap(db.GetTable("t"))->num_tuples(), 40u);
  EXPECT_EQ(db.durability().recovered_tables, 1u);
}

// ---------------------------------------------------------------------------
// WAL torn-tail and bit-flip fuzz: Replay must stop cleanly at the first
// damaged byte — never crash, never yield a record past the corruption.

// A 4-record log with distinct payload sizes {5, 1, 9, 3}, synced to disk.
// Layout: header 20 bytes, frame 17 bytes per record => record end offsets
// 42, 60, 86, 106.
std::string BuildFuzzLog(const std::string& dir) {
  const std::string path = dir + "/fuzz-src.wal";
  std::unique_ptr<storage::Wal> wal = Unwrap(storage::Wal::Open(path));
  for (const std::string& payload :
       {std::string(5, 'a'), std::string(1, 'b'), std::string(9, 'c'),
        std::string(3, 'd')}) {
    ExpectOk(wal->Append(storage::WalRecordType::kInsert, payload).status());
  }
  ExpectOk(wal->Sync());
  return path;
}

std::string FuzzCopy(const std::string& src, const std::string& dir) {
  const std::string victim = dir + "/fuzz-victim.wal";
  std::filesystem::copy_file(src, victim,
                             std::filesystem::copy_options::overwrite_existing);
  return victim;
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char b = 0;
  f.get(b);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(b ^ 0xFF));
}

/// Replays `wal`, counting records and asserting LSNs stay dense from 1.
size_t ReplayCount(storage::Wal* wal) {
  size_t got = 0;
  uint64_t last_lsn = 0;
  ExpectOk(wal->Replay(
      [&](uint64_t lsn, storage::WalRecordType, std::string_view) {
        ++got;
        EXPECT_EQ(lsn, last_lsn + 1);
        last_lsn = lsn;
        return Status::OK();
      }));
  return got;
}

TEST_F(DurabilityTest, TornTailFuzzTruncateAtEveryByteOffset) {
  const std::string src = BuildFuzzLog(tmpdir.path);
  const uintmax_t size = std::filesystem::file_size(src);
  ASSERT_EQ(size, 106u);  // shape drifted? update kEnds below
  constexpr uint64_t kEnds[] = {42, 60, 86, 106};
  for (uintmax_t t = 0; t <= size; ++t) {
    const std::string victim = FuzzCopy(src, tmpdir.path);
    std::filesystem::resize_file(victim, t);
    auto opened = storage::Wal::Open(victim);
    if (!opened.ok()) {
      // A file shorter than a header is refused as typed Corruption (it
      // cannot be a torn header write of THIS log: those are header-sized).
      EXPECT_LT(t, 20u) << opened.status().ToString();
      EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
          << opened.status().ToString();
      continue;
    }
    size_t want = 0;
    for (const uint64_t end : kEnds) want += end <= t ? 1 : 0;
    EXPECT_EQ(ReplayCount(opened->get()), want) << "truncated at " << t;
  }
}

TEST_F(DurabilityTest, HeaderBitFlipFuzzRefusesOrReplaysNothing) {
  const std::string src = BuildFuzzLog(tmpdir.path);
  for (uint64_t off = 0; off < 20; ++off) {
    const std::string victim = FuzzCopy(src, tmpdir.path);
    FlipByteAt(victim, off);
    auto opened = storage::Wal::Open(victim);
    if (!opened.ok()) {
      // Magic/version damage on a log that held records: hard typed error.
      EXPECT_EQ(opened.status().code(), StatusCode::kCorruption)
          << "offset " << off << ": " << opened.status().ToString();
      continue;
    }
    // base_lsn damage: every record now fails the dense-LSN check, so the
    // intact-looking records after it must NOT replay.
    EXPECT_EQ(ReplayCount(opened->get()), 0u) << "offset " << off;
  }
}

TEST_F(DurabilityTest, FrameHeaderBitFlipFuzzStopsAtThePriorRecord) {
  const std::string src = BuildFuzzLog(tmpdir.path);
  // Record 2's frame header spans [42, 59): payload_len, crc, lsn, type.
  // Whichever field is hit, replay must yield exactly record 1 — a flipped
  // length is caught by bounds or by the CRC over the mis-framed payload.
  for (uint64_t off = 42; off < 59; ++off) {
    const std::string victim = FuzzCopy(src, tmpdir.path);
    FlipByteAt(victim, off);
    auto opened = storage::Wal::Open(victim);
    ASSERT_TRUE(opened.ok()) << "offset " << off << ": "
                             << opened.status().ToString();
    EXPECT_EQ(ReplayCount(opened->get()), 1u) << "offset " << off;
  }
}

// ---------------------------------------------------------------------------
// Group-commit parameterization: the committed-prefix contract holds at
// every sync interval; only the size of the lossable window changes.

class DurabilitySyncTest : public DurabilityTest,
                           public ::testing::WithParamInterface<size_t> {};

TEST_P(DurabilitySyncTest, CrashKeepsExactlyTheSyncedPrefix) {
  const size_t interval = GetParam();
  {
    std::unique_ptr<Database> db = OpenDb(interval);
    Load(db.get(), 20);  // 21 ops: create + 20 inserts
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  const uint64_t synced_ops = (21 / interval) * interval;
  if (synced_ops == 0) {
    // Not even the create survived: the table must be absent, not partial.
    EXPECT_FALSE(db->GetTable("t").ok());
  } else {
    EXPECT_EQ(db->durability().replayed_records, synced_ops);
    EXPECT_EQ(Tuples(db.get()), synced_ops - 1);  // minus the create
  }
}

TEST_P(DurabilitySyncTest, ExplicitSyncWalCommitsRegardlessOfInterval) {
  const size_t interval = GetParam();
  {
    std::unique_ptr<Database> db = OpenDb(interval);
    Load(db.get(), 20);
    ExpectOk(db->SyncWal());   // manual barrier: all 21 ops committed
    Append(db.get(), 20, 25);  // 5 trailing ops ride the group window
    ExpectOk(db->CrashForTesting());
  }
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_EQ(Tuples(db.get()), 20u + (5 / interval) * interval);
}

INSTANTIATE_TEST_SUITE_P(SyncIntervals, DurabilitySyncTest,
                         ::testing::Values(size_t{1}, size_t{4}, size_t{64}));

// ---------------------------------------------------------------------------
// `show storage` output shape: tools parse these lines; pin the field order
// so additions are deliberate.

void CheckLinePrefixes(const std::string& shown,
                       const std::vector<std::string>& prefixes) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos < shown.size()) {
    const std::string::size_type nl = shown.find('\n', pos);
    lines.push_back(shown.substr(pos, nl - pos));
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), prefixes.size()) << shown;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    EXPECT_EQ(lines[i].rfind(prefixes[i], 0), 0u)
        << "line " << i << " = '" << lines[i] << "', want prefix '"
        << prefixes[i] << "'";
  }
}

TEST_F(DurabilityTest, ShowStorageShapeIsPinned) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 8);
    const std::string shown = Answer(db.get(), "show storage");
    CheckLinePrefixes(
        shown,
        {"storage",  // header row: the single text column's name
         "backend: file", "path: " + tmpdir.path, "mode: read-write",
         "pages: reads=", "wal: size_bytes=",
         "sync_policy: every 1 mutation(s)", "checkpoint: last_lsn=",
         "recovery: tables="});
    // The WAL line carries the log position (next/synced LSN).
    EXPECT_NE(shown.find("next_lsn="), std::string::npos) << shown;
    EXPECT_NE(shown.find("synced_lsn="), std::string::npos) << shown;
  }
  // Simulated backend: no durable spine, and says so.
  Database db;
  CheckLinePrefixes(Unwrap(db.Query("show storage")).ToString(),
                    {"storage", "backend: sim", "path: (in-memory)",
                     "mode: read-write", "pages: reads=",
                     "wal: (none; simulated backend is not durable)"});
}

// ---------------------------------------------------------------------------
// Disk-full / EIO degradation: a failed durability barrier flips the
// instance into sticky read-only mode. Reads keep serving; mutations are
// refused as typed kUnavailable; a reopen (fresh fds, recovery) resets it.

TEST_F(DurabilityTest, DiskFullOnWalSyncDegradesToStickyReadOnly) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 30);
    storage::TupleBuffer buf(&Unwrap(db->GetTable("t"))->schema());
    FillRow(&buf, 30);
    util::fault::Arm("wal.sync", {.count = 1, .kind = FaultKind::kDiskFull});
    const Status s = db->Insert("t", buf);
    EXPECT_EQ(s.code(), StatusCode::kDiskFull) << s.ToString();
    util::fault::DisarmAll();
    // Sticky even after the fault clears: a failed fsync may have dropped
    // dirty kernel state, so the instance never retries it (fsyncgate).
    ASSERT_TRUE(db->read_only());
    const Status again = db->Insert("t", buf);
    EXPECT_EQ(again.code(), StatusCode::kUnavailable) << again.ToString();
    EXPECT_EQ(db->SyncWal().code(), StatusCode::kUnavailable);
    // Reads keep serving — including the applied-but-unacknowledged row.
    EXPECT_EQ(Tuples(db.get()), 31u);
    ExpectOk(db->Query(kSumQuery).status());
    EXPECT_NE(Answer(db.get(), "show storage").find("mode: read-only"),
              std::string::npos);
    EXPECT_NE(
        Answer(db.get(), "show metrics").find("smadb_storage_read_only = 1"),
        std::string::npos);
    // Close skips the checkpoint (it would need the refused barrier) but
    // still succeeds: shutting down a degraded instance is not an error.
    ExpectOk(db->Close());
  }
  std::unique_ptr<Database> db = OpenDb();
  // Degradation is per-instance; recovery starts writable again, with the
  // unacknowledged 31st insert gone (its sync barrier never succeeded).
  EXPECT_FALSE(db->read_only());
  EXPECT_EQ(Tuples(db.get()), 30u);
  EXPECT_NE(Answer(db.get(), "show metrics").find("smadb_storage_read_only = 0"),
            std::string::npos);
}

TEST_F(DurabilityTest, DiskFullOnCheckpointDegradesTheFileBackend) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 50);
    util::fault::Arm("disk.write", {.count = 1,
                                    .kind = FaultKind::kDiskFull,
                                    .file_filter = "tbl."});
    EXPECT_EQ(db->Checkpoint().code(), StatusCode::kDiskFull);
    util::fault::DisarmAll();
    ASSERT_TRUE(db->read_only());
    storage::TupleBuffer buf(&Unwrap(db->GetTable("t"))->schema());
    FillRow(&buf, 50);
    EXPECT_EQ(db->Insert("t", buf).code(), StatusCode::kUnavailable);
    ExpectOk(db->Query(kAggQuery).status());
    ExpectOk(db->Close());
  }
  // The failed checkpoint never truncated the WAL: everything replays.
  std::unique_ptr<Database> db = OpenDb();
  EXPECT_FALSE(db->read_only());
  EXPECT_EQ(Tuples(db.get()), 50u);
}

TEST_F(DurabilityTest, DiskFullDegradesTheSimulatedBackendToo) {
  Database db;  // simulated backend: same contract, no WAL involved
  Unwrap(db.CreateTable("t", testing::SyntheticSchema()));
  Append(&db, 0, 10);
  util::fault::Arm("disk.write", {.count = 1, .kind = FaultKind::kDiskFull});
  EXPECT_EQ(db.Checkpoint().code(), StatusCode::kDiskFull);
  util::fault::DisarmAll();
  ASSERT_TRUE(db.read_only());
  storage::TupleBuffer buf(&Unwrap(db.GetTable("t"))->schema());
  FillRow(&buf, 10);
  EXPECT_EQ(db.Insert("t", buf).code(), StatusCode::kUnavailable);
  ExpectOk(db.Query(kSumQuery).status());
  EXPECT_NE(Unwrap(db.Query("show storage")).ToString().find("read-only"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Online scrubber: at-rest CRC sweep + SMA verification + repair.

TEST_F(DurabilityTest, CleanScrubReportsZeroFindings) {
  std::unique_ptr<Database> db = OpenDb();
  Load(db.get(), 100);
  ExpectOk(db->Execute("define sma mn select min(d) from t"));
  ExpectOk(db->Execute("define sma mx select max(d) from t"));
  ExpectOk(db->Checkpoint());
  const Database::ScrubReport r = Unwrap(db->Scrub());
  EXPECT_GT(r.files_scanned, 0u);
  EXPECT_GT(r.pages_scanned, 0u);
  EXPECT_EQ(r.corrupt_pages, 0u);
  EXPECT_TRUE(r.corrupt_files.empty());
  EXPECT_EQ(r.smas_verified, 2u);
  EXPECT_EQ(r.smas_distrusted, 0u);
  EXPECT_EQ(r.smas_repaired, 0u);
  EXPECT_TRUE(r.notes.empty()) << r.notes.front();
  EXPECT_NE(Answer(db.get(), "scrub").find("result: clean"),
            std::string::npos);
}

TEST_F(DurabilityTest, ScrubDetectsADeliveredBitFlipAndReportsMetrics) {
  std::unique_ptr<Database> db = OpenDb();
  Load(db.get(), 100);
  ExpectOk(db->Checkpoint());
  // One read of a table page is served with a flipped bit; the scrub's
  // direct backend read catches the CRC mismatch against the sidecar.
  util::fault::Arm("disk.page_bitflip", {.count = 1,
                                         .kind = FaultKind::kBitFlip,
                                         .file_filter = "tbl."});
  const Database::ScrubReport r = Unwrap(db->Scrub());
  util::fault::DisarmAll();
  EXPECT_EQ(r.corrupt_pages, 1u);
  ASSERT_EQ(r.corrupt_files.size(), 1u);
  EXPECT_EQ(r.corrupt_files[0].first, "tbl.t");
  EXPECT_EQ(r.corrupt_files[0].second, 1u);
  const std::string metrics = Answer(db.get(), "show metrics");
  EXPECT_NE(metrics.find("smadb_scrub_runs_total = 1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("smadb_scrub_corrupt_pages_total = 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("smadb_scrub_corrupt_pages{file=\"tbl.t\"} = 1"),
            std::string::npos);
}

TEST_F(DurabilityTest, ScrubRepairsAtRestSmaCorruption) {
  std::string expected;
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 200);
    ExpectOk(db->Execute("define sma mn select min(d) from t"));
    ExpectOk(db->Execute("define sma mx select max(d) from t"));
    expected = Answer(db.get(), kAggQuery);
    ExpectOk(db->Close());
  }
  std::unique_ptr<Database> db = OpenDb();
  // Rot a stored SMA page while the pool is still cold.
  bool found = false;
  FileId sma_file = 0;
  for (size_t f = 0; f < db->disk()->NumFiles(); ++f) {
    const FileId id = static_cast<FileId>(f);
    if (db->disk()->FileName(id).rfind("sma.", 0) == 0 &&
        Unwrap(db->disk()->NumPages(id)) > 0) {
      sma_file = id;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ExpectOk(db->disk()->CorruptPageForTesting(sma_file, 0, 0x3));
  const Database::ScrubReport r = Unwrap(db->Scrub());
  EXPECT_GE(r.corrupt_pages, 1u);
  EXPECT_GE(r.smas_distrusted, 1u);
  EXPECT_GE(r.smas_repaired, 1u);
  EXPECT_FALSE(r.repairs_skipped_read_only);
  // Repair = rebuild from base data; trust is restored in place.
  for (const sma::Sma* s : Unwrap(db->Smas("t"))->all()) {
    EXPECT_TRUE(s->trusted()) << s->spec().name;
    EXPECT_FALSE(s->stale()) << s->spec().name;
  }
  // The rebuilt entries are dirty in the pool; checkpoint them to at-rest
  // state, after which a second scrub must come back clean.
  ExpectOk(db->Checkpoint());
  EXPECT_NE(Answer(db.get(), "scrub").find("result: clean"),
            std::string::npos);
  EXPECT_EQ(Answer(db.get(), kAggQuery), expected);
}

TEST_F(DurabilityTest, ScrubInReadOnlyModeReportsButSkipsRepairs) {
  {
    std::unique_ptr<Database> db = OpenDb();
    Load(db.get(), 100);
    ExpectOk(db->Execute("define sma mn select min(d) from t"));
    ExpectOk(db->Close());
  }
  std::unique_ptr<Database> db = OpenDb();
  bool found = false;
  FileId sma_file = 0;
  for (size_t f = 0; f < db->disk()->NumFiles(); ++f) {
    const FileId id = static_cast<FileId>(f);
    if (db->disk()->FileName(id).rfind("sma.", 0) == 0 &&
        Unwrap(db->disk()->NumPages(id)) > 0) {
      sma_file = id;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  ExpectOk(db->disk()->CorruptPageForTesting(sma_file, 0, 0x3));
  // Degrade first: a read-only instance must still scrub (detection is a
  // read path) but must not attempt repairs (Rebuild mutates).
  util::fault::Arm("wal.sync", {.count = 1, .kind = FaultKind::kDiskFull});
  EXPECT_EQ(db->SyncWal().code(), StatusCode::kDiskFull);
  util::fault::DisarmAll();
  ASSERT_TRUE(db->read_only());
  const Database::ScrubReport r = Unwrap(db->Scrub());
  EXPECT_GE(r.corrupt_pages, 1u);
  EXPECT_GE(r.smas_distrusted, 1u);
  EXPECT_EQ(r.smas_repaired, 0u);
  EXPECT_TRUE(r.repairs_skipped_read_only);
  EXPECT_NE(Answer(db.get(), "scrub").find("repairs skipped: read-only"),
            std::string::npos);
}

}  // namespace
}  // namespace smadb::db
