// Unit tests for the TPC-D data generator and loader: cardinalities, the
// distribution clauses the experiments rely on, string-capacity safety, and
// the clustering modes.

#include <gtest/gtest.h>

#include <algorithm>

#include <unistd.h>

#include <cstdio>

#include "tests/test_util.h"
#include "tpch/dbgen.h"
#include "tpch/loader.h"
#include "tpch/schemas.h"
#include "tpch/tbl_io.h"
#include "tpch/text.h"
#include "util/string_util.h"

namespace smadb::tpch {
namespace {

using testing::ExpectOk;
using testing::TestDb;
using testing::Unwrap;
using util::Date;

TEST(DbgenTest, CardinalitiesScaleWithSf) {
  Dbgen gen({0.01, 1});
  EXPECT_EQ(gen.num_orders(), 15000);
  EXPECT_EQ(gen.num_customers(), 1500);
  EXPECT_EQ(gen.num_parts(), 2000);
  EXPECT_EQ(gen.num_suppliers(), 100);
}

TEST(DbgenTest, Deterministic) {
  Dbgen a({0.001, 42}), b({0.001, 42});
  std::vector<OrderRow> oa, ob;
  std::vector<LineItemRow> la, lb;
  a.GenOrdersAndLineItems(&oa, &la);
  b.GenOrdersAndLineItems(&ob, &lb);
  ASSERT_EQ(la.size(), lb.size());
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].orderkey, lb[i].orderkey);
    EXPECT_EQ(la[i].shipdate.days(), lb[i].shipdate.days());
    EXPECT_EQ(la[i].extendedprice.cents(), lb[i].extendedprice.cents());
    EXPECT_EQ(la[i].comment, lb[i].comment);
  }
}

struct GeneratedData : ::testing::Test {
  static void SetUpTestSuite() {
    orders = new std::vector<OrderRow>();
    lineitems = new std::vector<LineItemRow>();
    Dbgen gen({0.002, 7});
    gen.GenOrdersAndLineItems(orders, lineitems);
  }
  static void TearDownTestSuite() {
    delete orders;
    delete lineitems;
    orders = nullptr;
    lineitems = nullptr;
  }

  static std::vector<OrderRow>* orders;
  static std::vector<LineItemRow>* lineitems;
};

std::vector<OrderRow>* GeneratedData::orders = nullptr;
std::vector<LineItemRow>* GeneratedData::lineitems = nullptr;

TEST_F(GeneratedData, LineItemsPerOrderWithinSpec) {
  std::map<int64_t, int> per_order;
  for (const auto& li : *lineitems) ++per_order[li.orderkey];
  EXPECT_EQ(per_order.size(), orders->size());
  for (const auto& [k, n] : per_order) {
    EXPECT_GE(n, 1);
    EXPECT_LE(n, 7);
  }
  // Mean should be near 4.
  const double mean =
      static_cast<double>(lineitems->size()) /
      static_cast<double>(orders->size());
  EXPECT_NEAR(mean, 4.0, 0.3);
}

TEST_F(GeneratedData, DateRelationsFollowSpec) {
  for (const auto& li : *lineitems) {
    const OrderRow& o = (*orders)[static_cast<size_t>(li.orderkey - 1)];
    ASSERT_EQ(o.orderkey, li.orderkey);
    // shipdate = orderdate + [1, 121]
    const int ship_lag = li.shipdate - o.orderdate;
    EXPECT_GE(ship_lag, 1);
    EXPECT_LE(ship_lag, 121);
    // commitdate = orderdate + [30, 90]
    const int commit_lag = li.commitdate - o.orderdate;
    EXPECT_GE(commit_lag, 30);
    EXPECT_LE(commit_lag, 90);
    // receiptdate = shipdate + [1, 30]
    const int receipt_lag = li.receiptdate - li.shipdate;
    EXPECT_GE(receipt_lag, 1);
    EXPECT_LE(receipt_lag, 30);
    // Everything within the 1992..1998 calendar.
    EXPECT_GE(o.orderdate, kStartDate);
    EXPECT_LE(li.receiptdate, kEndDate);
  }
}

TEST_F(GeneratedData, ReturnFlagAndLineStatusRules) {
  int n_flags = 0, r_flags = 0, a_flags = 0;
  for (const auto& li : *lineitems) {
    if (li.receiptdate <= kCurrentDate) {
      EXPECT_TRUE(li.returnflag == 'R' || li.returnflag == 'A');
      (li.returnflag == 'R' ? r_flags : a_flags) += 1;
    } else {
      EXPECT_EQ(li.returnflag, 'N');
      ++n_flags;
    }
    EXPECT_EQ(li.linestatus, li.shipdate > kCurrentDate ? 'O' : 'F');
  }
  // All three flags occur, R/A split roughly even.
  EXPECT_GT(n_flags, 0);
  EXPECT_GT(r_flags, 0);
  EXPECT_GT(a_flags, 0);
  EXPECT_NEAR(static_cast<double>(r_flags) / (r_flags + a_flags), 0.5, 0.05);
}

TEST_F(GeneratedData, MoneyColumnsWithinSpec) {
  for (const auto& li : *lineitems) {
    EXPECT_GE(li.quantity.cents(), 100);
    EXPECT_LE(li.quantity.cents(), 5000);
    EXPECT_GE(li.discount.cents(), 0);
    EXPECT_LE(li.discount.cents(), 10);
    EXPECT_GE(li.tax.cents(), 0);
    EXPECT_LE(li.tax.cents(), 8);
    // extendedprice = quantity * retailprice(partkey)
    EXPECT_EQ(li.extendedprice.cents(),
              Dbgen::RetailPrice(li.partkey).cents() *
                  (li.quantity.cents() / 100));
  }
}

TEST_F(GeneratedData, OrderStatusConsistentWithLineStatus) {
  std::map<int64_t, std::pair<int, int>> fo;  // orderkey -> (F count, total)
  for (const auto& li : *lineitems) {
    auto& [f, total] = fo[li.orderkey];
    f += li.linestatus == 'F';
    ++total;
  }
  for (const auto& o : *orders) {
    const auto& [f, total] = fo[o.orderkey];
    if (f == total) {
      EXPECT_EQ(o.orderstatus, 'F');
    } else if (f == 0) {
      EXPECT_EQ(o.orderstatus, 'O');
    } else {
      EXPECT_EQ(o.orderstatus, 'P');
    }
  }
}

// Every generated string must fit its storage column — the Release build
// memcpys without bounds checks, so this is the regression test for the
// o_comment overflow class of bug.
TEST_F(GeneratedData, AllStringsFitTheirColumns) {
  const storage::Schema li_schema = LineItemSchema();
  for (const auto& li : *lineitems) {
    EXPECT_LE(li.shipinstruct.size(),
              li_schema.field(lineitem::kShipInstruct).capacity);
    EXPECT_LE(li.shipmode.size(),
              li_schema.field(lineitem::kShipMode).capacity);
    EXPECT_LE(li.comment.size(),
              li_schema.field(lineitem::kComment).capacity);
  }
  const storage::Schema o_schema = OrdersSchema();
  for (const auto& o : *orders) {
    EXPECT_LE(o.orderpriority.size(),
              o_schema.field(orders::kOrderPriority).capacity);
    EXPECT_LE(o.clerk.size(), o_schema.field(orders::kClerk).capacity);
    EXPECT_LE(o.comment.size(), o_schema.field(orders::kComment).capacity);
  }
}

TEST(DbgenDimensionsTest, AllStringsFitTheirColumns) {
  Dbgen gen({0.002, 7});
  const storage::Schema c_schema = CustomerSchema();
  for (const auto& c : gen.GenCustomers()) {
    EXPECT_LE(c.name.size(), c_schema.field(customer::kName).capacity);
    EXPECT_LE(c.address.size(), c_schema.field(customer::kAddress).capacity);
    EXPECT_LE(c.phone.size(), c_schema.field(customer::kPhone).capacity);
    EXPECT_LE(c.mktsegment.size(),
              c_schema.field(customer::kMktSegment).capacity);
    EXPECT_LE(c.comment.size(), c_schema.field(customer::kComment).capacity);
  }
  const storage::Schema p_schema = PartSchema();
  for (const auto& p : gen.GenParts()) {
    EXPECT_LE(p.name.size(), p_schema.field(part::kName).capacity);
    EXPECT_LE(p.mfgr.size(), p_schema.field(part::kMfgr).capacity);
    EXPECT_LE(p.brand.size(), p_schema.field(part::kBrand).capacity);
    EXPECT_LE(p.type.size(), p_schema.field(part::kType).capacity);
    EXPECT_LE(p.container.size(), p_schema.field(part::kContainer).capacity);
    EXPECT_LE(p.comment.size(), p_schema.field(part::kComment).capacity);
  }
  const storage::Schema s_schema = SupplierSchema();
  for (const auto& s : gen.GenSuppliers()) {
    EXPECT_LE(s.name.size(), s_schema.field(supplier::kName).capacity);
    EXPECT_LE(s.address.size(), s_schema.field(supplier::kAddress).capacity);
    EXPECT_LE(s.comment.size(), s_schema.field(supplier::kComment).capacity);
  }
  const storage::Schema ps_schema = PartSuppSchema();
  for (const auto& ps : gen.GenPartSupps()) {
    EXPECT_LE(ps.comment.size(),
              ps_schema.field(partsupp::kComment).capacity);
    EXPECT_GE(ps.suppkey, 1);
    EXPECT_LE(ps.suppkey, gen.num_suppliers());
  }
}

TEST(DbgenDimensionsTest, NationsAndRegionsFixed) {
  Dbgen gen({0.001, 7});
  const auto nations = gen.GenNations();
  const auto regions = gen.GenRegions();
  ASSERT_EQ(nations.size(), 25u);
  ASSERT_EQ(regions.size(), 5u);
  EXPECT_EQ(nations[0].name, "ALGERIA");
  EXPECT_EQ(regions[2].name, "ASIA");
  for (const auto& n : nations) {
    EXPECT_GE(n.regionkey, 0);
    EXPECT_LE(n.regionkey, 4);
  }
}

TEST(TextTest, RandomTextRespectsBounds) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string s = RandomText(&rng, 10, 43);
    EXPECT_GE(s.size(), 1u);   // trailing-space trim may shave a little
    EXPECT_LE(s.size(), 43u);
  }
}

TEST(TextTest, NumberedNameFormat) {
  EXPECT_EQ(NumberedName("Customer", 42), "Customer#000000042");
  EXPECT_EQ(NumberedName("Supplier", 123456789), "Supplier#123456789");
}

TEST(TextTest, PartNameHasFiveDistinctColors) {
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::string name = RandomPartName(&rng);
    auto words = util::Split(name, ' ');
    ASSERT_EQ(words.size(), 5u);
    std::sort(words.begin(), words.end());
    EXPECT_EQ(std::unique(words.begin(), words.end()), words.end());
  }
}

// ----------------------------------------------------------------- Loader --

TEST(LoaderTest, ShipdateSortedIsSorted) {
  TestDb db;
  tpch::LoadOptions load;
  load.mode = ClusterMode::kShipdateSorted;
  storage::Table* t =
      Unwrap(GenerateAndLoadLineItem(&db.catalog, {0.002, 3}, load));
  int32_t prev = INT32_MIN;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, storage::Rid) {
          const int32_t d =
              static_cast<int32_t>(tup.GetRawInt(lineitem::kShipDate));
          EXPECT_GE(d, prev);
          prev = d;
        }));
  }
}

TEST(LoaderTest, ModesPreserveMultiset) {
  Dbgen gen({0.001, 3});
  std::vector<OrderRow> orders;
  std::vector<LineItemRow> lis;
  gen.GenOrdersAndLineItems(&orders, &lis);

  auto keysum = [](storage::Table* t) {
    int64_t sum = 0;
    uint64_t n = 0;
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      EXPECT_TRUE(t->ForEachTupleInBucket(
                       b,
                       [&](const storage::TupleRef& tup, storage::Rid) {
                         sum += tup.GetInt64(lineitem::kOrderKey) * 31 +
                                tup.GetRawInt(lineitem::kShipDate);
                         ++n;
                       })
                      .ok());
    }
    return std::make_pair(sum, n);
  };

  TestDb db;
  LoadOptions l1;
  l1.mode = ClusterMode::kOrderKey;
  LoadOptions l2;
  l2.mode = ClusterMode::kShuffled;
  LoadOptions l3;
  l3.mode = ClusterMode::kDiagonal;
  auto a = keysum(Unwrap(LoadLineItem(&db.catalog, lis, l1, "a")));
  auto b = keysum(Unwrap(LoadLineItem(&db.catalog, lis, l2, "b")));
  auto c = keysum(Unwrap(LoadLineItem(&db.catalog, lis, l3, "c")));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a.second, lis.size());
}

TEST(LoaderTest, DiagonalClusteringIsExploitable) {
  // The diagonal layout should leave far fewer ambivalent buckets than the
  // shuffled one for a narrow date predicate.
  Dbgen gen({0.005, 3});
  std::vector<OrderRow> orders;
  std::vector<LineItemRow> lis;
  gen.GenOrdersAndLineItems(&orders, &lis);

  auto ambivalent_count = [&](ClusterMode mode) {
    TestDb db;
    LoadOptions load;
    load.mode = mode;
    load.lag_stddev_days = 10.0;
    storage::Table* t = Unwrap(LoadLineItem(
        &db.catalog, lis, load, "t"));
    sma::SmaSet smas(t);
    testing::AddMinMaxSmas(t, &smas, "l_shipdate");
    auto pred = Unwrap(expr::Predicate::AtomConst(
        &t->schema(), "l_shipdate", expr::CmpOp::kLe,
        util::Value::MakeDate(Date::FromYmd(1994, 1, 1))));
    auto grader = sma::BucketGrader::Create(pred, &smas);
    uint64_t ambiv = 0;
    for (uint64_t b = 0; b < t->num_buckets(); ++b) {
      ambiv += Unwrap(grader->GradeBucket(b)) == sma::Grade::kAmbivalent;
    }
    return ambiv;
  };

  const uint64_t diagonal = ambivalent_count(ClusterMode::kDiagonal);
  const uint64_t shuffled = ambivalent_count(ClusterMode::kShuffled);
  EXPECT_LT(diagonal * 5, shuffled);  // at least 5x fewer ambivalent
}

TEST(LoaderTest, LoadAllDimensionTables) {
  TestDb db;
  Dbgen gen({0.002, 3});
  EXPECT_GT(Unwrap(LoadCustomers(&db.catalog, gen.GenCustomers()))
                ->num_tuples(),
            0u);
  EXPECT_GT(Unwrap(LoadParts(&db.catalog, gen.GenParts()))->num_tuples(), 0u);
  EXPECT_GT(
      Unwrap(LoadSuppliers(&db.catalog, gen.GenSuppliers()))->num_tuples(),
      0u);
  EXPECT_GT(
      Unwrap(LoadPartSupps(&db.catalog, gen.GenPartSupps()))->num_tuples(),
      0u);
  EXPECT_EQ(Unwrap(LoadNations(&db.catalog, gen.GenNations()))->num_tuples(),
            25u);
  EXPECT_EQ(Unwrap(LoadRegions(&db.catalog, gen.GenRegions()))->num_tuples(),
            5u);
}

TEST(LoaderTest, RoundTripThroughStorage) {
  TestDb db;
  Dbgen gen({0.001, 9});
  std::vector<OrderRow> orders;
  std::vector<LineItemRow> lis;
  gen.GenOrdersAndLineItems(&orders, &lis);
  LoadOptions load;  // orderkey order: storage order == generation order
  storage::Table* t = Unwrap(LoadLineItem(&db.catalog, lis, load, "t"));
  size_t i = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, storage::Rid) {
          const LineItemRow& row = lis[i++];
          EXPECT_EQ(tup.GetInt64(lineitem::kOrderKey), row.orderkey);
          EXPECT_EQ(tup.GetDecimal(lineitem::kExtendedPrice).cents(),
                    row.extendedprice.cents());
          EXPECT_EQ(tup.GetDate(lineitem::kShipDate), row.shipdate);
          EXPECT_EQ(tup.GetString(lineitem::kShipMode), row.shipmode);
          EXPECT_EQ(tup.GetString(lineitem::kComment), row.comment);
        }));
  }
  EXPECT_EQ(i, lis.size());
}

// ----------------------------------------------------------------- tbl_io --

struct TblIoTest : ::testing::Test {
  TblIoTest() {
    std::snprintf(path, sizeof(path), "/tmp/smadb_tbl_test_%d.tbl",
                  static_cast<int>(::getpid()));
  }
  ~TblIoTest() override { std::remove(path); }

  char path[64];
};

TEST_F(TblIoTest, ParseAndFormatLine) {
  const storage::Schema schema = testing::SyntheticSchema();
  storage::TupleBuffer buf(&schema);
  ASSERT_TRUE(
      ParseTblLine(schema, "42|1995-06-17|-3.07|A|MAIL|", &buf).ok());
  EXPECT_EQ(buf.AsRef().GetInt64(0), 42);
  EXPECT_EQ(buf.AsRef().GetDate(1).ToString(), "1995-06-17");
  EXPECT_EQ(buf.AsRef().GetDecimal(2).cents(), -307);
  EXPECT_EQ(buf.AsRef().GetString(3), "A");
  EXPECT_EQ(FormatTblLine(buf.AsRef()), "42|1995-06-17|-3.07|A|MAIL|");
}

TEST_F(TblIoTest, ParseErrors) {
  const storage::Schema schema = testing::SyntheticSchema();
  storage::TupleBuffer buf(&schema);
  // Missing field.
  EXPECT_FALSE(ParseTblLine(schema, "42|1995-06-17|-3.07|A|", &buf).ok());
  // Trailing junk.
  EXPECT_FALSE(
      ParseTblLine(schema, "42|1995-06-17|-3.07|A|MAIL|x", &buf).ok());
  // Bad number / date / oversized string.
  EXPECT_FALSE(
      ParseTblLine(schema, "4x|1995-06-17|-3.07|A|MAIL|", &buf).ok());
  EXPECT_FALSE(
      ParseTblLine(schema, "42|1995-13-17|-3.07|A|MAIL|", &buf).ok());
  EXPECT_FALSE(
      ParseTblLine(schema, "42|1995-06-17|-3.071|A|MAIL|", &buf).ok());
  EXPECT_FALSE(
      ParseTblLine(schema, "42|1995-06-17|-3.07|AB|MAIL|", &buf).ok());
  EXPECT_FALSE(
      ParseTblLine(schema, "42|1995-06-17|-3.07|A|TOOLONG|", &buf).ok());
}

TEST_F(TblIoTest, DecimalEdgeCases) {
  const storage::Schema schema = testing::SyntheticSchema();
  storage::TupleBuffer buf(&schema);
  ASSERT_TRUE(ParseTblLine(schema, "1|1970-01-01|-0.45|A|X|", &buf).ok());
  EXPECT_EQ(buf.AsRef().GetDecimal(2).cents(), -45);
  ASSERT_TRUE(ParseTblLine(schema, "1|1970-01-01|7.5|A|X|", &buf).ok());
  EXPECT_EQ(buf.AsRef().GetDecimal(2).cents(), 750);
  ASSERT_TRUE(ParseTblLine(schema, "1|1970-01-01|12|A|X|", &buf).ok());
  EXPECT_EQ(buf.AsRef().GetDecimal(2).cents(), 1200);
}

TEST_F(TblIoTest, LineItemRoundTripsThroughFile) {
  TestDb db(16384);
  tpch::LoadOptions load;
  storage::Table* original = Unwrap(GenerateAndLoadLineItem(
      &db.catalog, {0.001, 5}, load, nullptr, "li_orig"));
  ExpectOk(WriteTbl(original, path));
  storage::Table* reloaded = Unwrap(
      LoadTbl(&db.catalog, "li_reload", LineItemSchema(), path));
  ASSERT_EQ(reloaded->num_tuples(), original->num_tuples());
  // Byte-identical tuples in identical order.
  std::vector<std::string> a, b;
  for (uint32_t bkt = 0; bkt < original->num_buckets(); ++bkt) {
    ExpectOk(original->ForEachTupleInBucket(
        bkt, [&](const storage::TupleRef& t, storage::Rid) {
          a.push_back(FormatTblLine(t));
        }));
  }
  for (uint32_t bkt = 0; bkt < reloaded->num_buckets(); ++bkt) {
    ExpectOk(reloaded->ForEachTupleInBucket(
        bkt, [&](const storage::TupleRef& t, storage::Rid) {
          b.push_back(FormatTblLine(t));
        }));
  }
  EXPECT_EQ(a, b);
}

TEST_F(TblIoTest, LoadErrorsCarryLineNumbers) {
  {
    std::FILE* f = std::fopen(path, "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1|1970-01-01|0.50|A|MAIL|\n", f);
    std::fputs("oops|1970-01-01|0.50|A|MAIL|\n", f);
    std::fclose(f);
  }
  TestDb db;
  auto result = LoadTbl(&db.catalog, "bad", testing::SyntheticSchema(), path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2:"), std::string::npos)
      << result.status().ToString();
}

TEST_F(TblIoTest, MissingFileIsIOError) {
  TestDb db;
  EXPECT_EQ(LoadTbl(&db.catalog, "x", testing::SyntheticSchema(),
                    "/nonexistent/no.tbl")
                .status()
                .code(),
            util::StatusCode::kIOError);
}

}  // namespace
}  // namespace smadb::tpch
