// Vectorized-execution tests (ctest label `vector`):
//
//   * SelVector unit behaviour — dense fast path, Filter refinement,
//     UnionWith merge.
//   * EvalBatch ≡ Eval — every predicate shape agrees row-for-row with
//     tuple-at-a-time evaluation, including AND/OR trees and string atoms.
//   * NextBatch ≡ Next — every migrated operator (TableScan, SmaScan,
//     Filter, the generic default adapter, RowAdapter) returns exactly the
//     row-path tuples across predicates × batch sizes × bucket sizes.
//   * Aggregation equality — GAggr / SmaGAggr / ParallelScanAggr produce
//     bit-identical results in row and batch mode across DOPs.
//   * Filter copying semantics — the yielded TupleRef stays valid until the
//     next Next() (regression for the contract documented in filter.h).
//   * Fault injection — the degradation ladder demotes correctly with the
//     vectorized engine: runs return the fault-free rows exactly or a typed
//     error, and mid-run demotion reruns (vectorized) from base data.

#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/filter.h"
#include "exec/gaggr.h"
#include "exec/parallel_aggr.h"
#include "exec/row_adapter.h"
#include "exec/sma_gaggr.h"
#include "exec/sma_scan.h"
#include "exec/table_scan.h"
#include "planner/planner.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace smadb {
namespace {

using exec::AggSpec;
using exec::Batch;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using storage::ColumnBatch;
using storage::SelVector;
using storage::TupleRef;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::Layout;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::FaultKind;
using util::StatusCode;
using util::Value;

// Serializes a full run through the row interface.
std::vector<std::string> DrainRows(exec::Operator* op) {
  ExpectOk(op->Init());
  std::vector<std::string> rows;
  TupleRef t;
  while (true) {
    auto has = op->Next(&t);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!has.ok() || !*has) break;
    std::string row;
    for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
      row += t.GetValue(c).ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// Serializes a full run through the batch interface (full projection).
std::vector<std::string> DrainBatches(exec::Operator* op, size_t batch_size) {
  ExpectOk(op->Init());
  std::vector<std::string> rows;
  Batch batch;
  batch.Configure(&op->output_schema(), batch_size);
  while (true) {
    auto has = op->NextBatch(&batch);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!has.ok() || !*has) break;
    for (size_t k = 0; k < batch.sel.count(); ++k) {
      const uint32_t r = batch.sel.row(k);
      std::string row;
      for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
        row += batch.cols.GetValue(c, r).ToString();
        row += '|';
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// ------------------------------------------------------- SelVector units --

TEST(SelVectorTest, DenseStateAndAccessors) {
  SelVector sel;
  EXPECT_TRUE(sel.empty());
  sel.SelectAll(5);
  EXPECT_TRUE(sel.dense());
  EXPECT_EQ(sel.count(), 5u);
  EXPECT_EQ(sel.row(3), 3u);
  sel.SelectNone();
  EXPECT_TRUE(sel.empty());
}

TEST(SelVectorTest, FilterKeepingEverythingStaysDense) {
  SelVector sel;
  sel.SelectAll(100);
  sel.Filter([](uint32_t) { return true; });
  EXPECT_TRUE(sel.dense());
  EXPECT_EQ(sel.count(), 100u);
}

TEST(SelVectorTest, FilterMaterializesOnFirstRejection) {
  SelVector sel;
  sel.SelectAll(10);
  sel.Filter([](uint32_t r) { return r % 3 == 0; });  // 0 3 6 9
  EXPECT_FALSE(sel.dense());
  ASSERT_EQ(sel.count(), 4u);
  EXPECT_EQ(sel.row(0), 0u);
  EXPECT_EQ(sel.row(3), 9u);
  sel.Filter([](uint32_t r) { return r >= 3; });  // 3 6 9
  EXPECT_EQ(sel.indices(), (std::vector<uint32_t>{3, 6, 9}));
}

TEST(SelVectorTest, UnionMergesSortedAndDedups) {
  SelVector a;
  a.SelectAll(10);
  a.Filter([](uint32_t r) { return r % 2 == 0; });  // 0 2 4 6 8
  SelVector b;
  b.SelectAll(10);
  b.Filter([](uint32_t r) { return r % 3 == 0; });  // 0 3 6 9
  a.UnionWith(b);
  EXPECT_EQ(a.indices(), (std::vector<uint32_t>{0, 2, 3, 4, 6, 8, 9}));

  SelVector dense;
  dense.SelectAll(10);
  b.UnionWith(dense);  // a dense side absorbs the explicit one
  EXPECT_TRUE(dense.dense());
  EXPECT_TRUE(b.dense());
  EXPECT_EQ(b.count(), 10u);
}

// --------------------------------------------------- EvalBatch ≡ Eval ----

// Builds a ColumnBatch over the first `n` tuples of `t` (full projection)
// and checks that EvalBatch's surviving rows are exactly the rows Eval
// keeps.
void ExpectEvalAgrees(storage::Table* t, int64_t n, const PredicatePtr& pred) {
  ColumnBatch batch;
  batch.Configure(&t->schema(), static_cast<size_t>(n));
  std::vector<bool> want;
  ExpectOk(t->ForEachTupleInBucket(0, [&](const TupleRef& tup, storage::Rid) {
    if (batch.full()) return;
    batch.AppendRow(tup);
    want.push_back(pred->Eval(tup));
  }));
  SelVector sel;
  sel.SelectAll(static_cast<uint32_t>(batch.num_rows()));
  pred->EvalBatch(batch, &sel);
  std::vector<bool> got(batch.num_rows(), false);
  for (size_t k = 0; k < sel.count(); ++k) got[sel.row(k)] = true;
  EXPECT_EQ(got, want) << pred->ToString(&t->schema());
}

TEST(EvalBatchTest, AtomsAndCompositesAgreeWithScalarEval) {
  TestDb db(16384);
  storage::Table* t =
      MakeSyntheticTable(&db, 400, Layout::kRandom, /*seed=*/3,
                         /*bucket_pages=*/16);
  const auto& schema = t->schema();
  const PredicatePtr d_le = Unwrap(Predicate::AtomConst(
      &schema, "d", CmpOp::kLe, Value::MakeDate(util::Date(25))));
  const PredicatePtr k_gt = Unwrap(Predicate::AtomConst(
      &schema, "k", CmpOp::kGt, Value::Int64(100)));
  const PredicatePtr grp_eq =
      Unwrap(Predicate::AtomString(&schema, "grp", CmpOp::kEq, "B"));
  const PredicatePtr tag_ne =
      Unwrap(Predicate::AtomString(&schema, "tag", CmpOp::kNe, "MAIL"));

  ExpectEvalAgrees(t, 400, Predicate::True());
  ExpectEvalAgrees(t, 400, d_le);
  ExpectEvalAgrees(t, 400, k_gt);
  ExpectEvalAgrees(t, 400, grp_eq);
  ExpectEvalAgrees(t, 400, tag_ne);
  ExpectEvalAgrees(t, 400, Predicate::And(d_le, grp_eq));
  ExpectEvalAgrees(t, 400, Predicate::Or(k_gt, grp_eq));
  ExpectEvalAgrees(t, 400, Predicate::Or(Predicate::And(d_le, tag_ne),
                                         Predicate::And(k_gt, grp_eq)));
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    ExpectEvalAgrees(t, 400,
                     Unwrap(Predicate::AtomConst(
                         &schema, "d", op, Value::MakeDate(util::Date(20)))));
  }
}

TEST(EvalBatchTest, TwoColumnAtomAgreesWithScalarEval) {
  TestDb db;
  storage::Table* t = Unwrap(db.catalog.CreateTable(
      "two", storage::Schema({storage::Field::Int64("a"),
                              storage::Field::Int64("b")}),
      {}));
  storage::TupleBuffer buf(&t->schema());
  util::Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    buf.SetInt64(0, rng.Uniform(0, 50));
    buf.SetInt64(1, rng.Uniform(0, 50));
    ExpectOk(t->Append(buf));
  }
  for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq}) {
    ExpectEvalAgrees(t, 300,
                     Unwrap(Predicate::AtomTwoCols(&t->schema(), "a", op,
                                                   "b")));
  }
}

// -------------------------------------------------- NextBatch ≡ Next -----

using ScanParam = std::tuple<size_t /*batch_size*/, uint32_t /*bucket_pages*/>;

class BatchScanEquivalenceP : public ::testing::TestWithParam<ScanParam> {};

TEST_P(BatchScanEquivalenceP, EveryOperatorReturnsTheRowPathTuples) {
  const auto [batch_size, bucket_pages] = GetParam();
  TestDb db(16384);
  storage::Table* t = MakeSyntheticTable(&db, 2000, Layout::kNoisy,
                                         /*seed=*/21, bucket_pages);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const auto& schema = t->schema();

  const std::vector<PredicatePtr> preds = {
      Predicate::True(),
      Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                  Value::MakeDate(util::Date(125)))),
      Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kGt,
                                  Value::MakeDate(util::Date(500)))),
      Predicate::And(
          Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                      Value::MakeDate(util::Date(125)))),
          Unwrap(Predicate::AtomString(&schema, "grp", CmpOp::kEq, "A"))),
      Predicate::Or(
          Unwrap(Predicate::AtomConst(&schema, "k", CmpOp::kLt,
                                      Value::Int64(64))),
          Unwrap(Predicate::AtomString(&schema, "tag", CmpOp::kEq, "RAIL"))),
  };

  for (size_t p = 0; p < preds.size(); ++p) {
    SCOPED_TRACE(::testing::Message() << "pred " << p);
    const PredicatePtr& pred = preds[p];
    {
      exec::TableScan row_scan(t, pred);
      exec::TableScan batch_scan(t, pred);
      EXPECT_EQ(DrainRows(&row_scan), DrainBatches(&batch_scan, batch_size));
    }
    {
      exec::SmaScan row_scan(t, pred, &smas);
      exec::SmaScan batch_scan(t, pred, &smas);
      EXPECT_EQ(DrainRows(&row_scan), DrainBatches(&batch_scan, batch_size));
    }
    {
      // Filter over an unrestricted scan: native batch path refines the
      // child's selection in place.
      exec::Filter row_f(std::make_unique<exec::TableScan>(t,
                                                           Predicate::True()),
                         pred);
      exec::Filter batch_f(
          std::make_unique<exec::TableScan>(t, Predicate::True()), pred);
      EXPECT_EQ(DrainRows(&row_f), DrainBatches(&batch_f, batch_size));
    }
    {
      // RowAdapter inverts NextBatch back to rows.
      exec::TableScan row_scan(t, pred);
      exec::RowAdapter adapted(std::make_unique<exec::SmaScan>(t, pred, &smas),
                               batch_size);
      EXPECT_EQ(DrainRows(&row_scan), DrainRows(&adapted));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchScanEquivalenceP,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{3}, size_t{64},
                                         size_t{1024}),
                       ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<ScanParam>& info) {
      return "Bs" + std::to_string(std::get<0>(info.param)) + "Bp" +
             std::to_string(std::get<1>(info.param));
    });

// The default Operator::NextBatch adapter (no override) must agree with the
// row interface too: GAggr overrides neither, so pulling batches from it
// exercises the generic row -> batch loop.
TEST(BatchDefaultAdapterTest, PipelineBreakerServesBatchesViaDefaultAdapter) {
  TestDb db(16384);
  storage::Table* t = MakeSyntheticTable(&db, 1500, Layout::kNoisy, 31);
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  const std::vector<AggSpec> aggs = {AggSpec::Sum(v, "sum_v"),
                                     AggSpec::Count("cnt")};
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(100))));
  auto rows = Unwrap(exec::GAggr::Make(
      std::make_unique<exec::TableScan>(t, pred), {3}, aggs));
  auto batches = Unwrap(exec::GAggr::Make(
      std::make_unique<exec::TableScan>(t, pred), {3}, aggs));
  EXPECT_EQ(DrainRows(rows.get()), DrainBatches(batches.get(), 7));
}

// Projection pushdown: a consumer-built mask unioned with the producer's
// requirements decodes only those columns, and the decoded values match.
TEST(BatchProjectionTest, PartialProjectionDecodesRequestedColumns) {
  TestDb db(16384);
  storage::Table* t = MakeSyntheticTable(&db, 500, Layout::kClustered, 41);
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(30))));
  exec::TableScan scan(t, pred);
  std::vector<bool> mask(t->schema().num_fields(), false);
  mask[0] = true;  // consumer reads k
  scan.AddRequiredBatchColumns(&mask);
  EXPECT_TRUE(mask[1]);  // the predicate's column d joined the projection

  ExpectOk(scan.Init());
  Batch batch;
  batch.Configure(&t->schema(), 128, mask);
  exec::TableScan ref(t, pred);
  const std::vector<std::string> expected = DrainRows(&ref);
  size_t row_no = 0;
  while (true) {
    auto has = scan.NextBatch(&batch);
    ExpectOk(has.status());
    if (!*has) break;
    EXPECT_TRUE(batch.cols.decoded(0));
    EXPECT_TRUE(batch.cols.decoded(1));
    EXPECT_FALSE(batch.cols.decoded(2));
    for (size_t k = 0; k < batch.sel.count(); ++k, ++row_no) {
      ASSERT_LT(row_no, expected.size());
      // expected rows are "k|d|v|grp|tag|"; compare the leading k field.
      const std::string k_str =
          batch.cols.GetValue(0, batch.sel.row(k)).ToString();
      EXPECT_EQ(expected[row_no].substr(0, k_str.size() + 1), k_str + "|");
    }
  }
  EXPECT_EQ(row_no, expected.size());
}

// ------------------------------------------- aggregation row ≡ batch -----

using AggrParam = std::tuple<size_t /*batch_size*/, size_t /*dop*/>;

class BatchAggrEquivalenceP : public ::testing::TestWithParam<AggrParam> {};

TEST_P(BatchAggrEquivalenceP, RowAndBatchModesProduceIdenticalGroups) {
  const auto [batch_size, dop] = GetParam();
  TestDb db(16384);
  storage::Table* t = MakeSyntheticTable(&db, 3000, Layout::kNoisy, 17);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  const expr::ExprPtr v1 = Unwrap(expr::OnePlus(v));  // ArithExpr batch path
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, sma::SmaSpec::Sum("s", v, {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, sma::SmaSpec::Count("c", {3})))));
  const std::vector<AggSpec> aggs = {
      AggSpec::Sum(v, "sum_v"),  AggSpec::Count("cnt"),
      AggSpec::Avg(v, "avg_v"),  AggSpec::Min(v, "min_v"),
      AggSpec::Max(v, "max_v"),  AggSpec::Sum(v1, "sum_v1")};
  const std::vector<AggSpec> sma_aggs = {AggSpec::Sum(v, "sum_v"),
                                         AggSpec::Count("cnt")};
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(188))));

  {
    auto row_op = Unwrap(exec::GAggr::Make(
        std::make_unique<exec::TableScan>(t, pred), {3}, aggs));
    auto batch_op = Unwrap(exec::GAggr::Make(
        std::make_unique<exec::TableScan>(t, pred), {3}, aggs, batch_size));
    EXPECT_EQ(DrainRows(row_op.get()), DrainRows(batch_op.get()));
  }
  {
    auto row_op = Unwrap(exec::GAggr::Make(
        std::make_unique<exec::SmaScan>(t, pred, &smas), {3}, aggs));
    auto batch_op = Unwrap(exec::GAggr::Make(
        std::make_unique<exec::SmaScan>(t, pred, &smas), {3}, aggs,
        batch_size));
    EXPECT_EQ(DrainRows(row_op.get()), DrainRows(batch_op.get()));
  }
  {
    // SmaGAggr: qualifying buckets come from SMA entries in both modes;
    // only the ambivalent remainder is vectorized.
    exec::SmaGAggrOptions row_opts;
    row_opts.degree_of_parallelism = dop;
    exec::SmaGAggrOptions batch_opts = row_opts;
    batch_opts.batch_size = batch_size;
    auto row_op = Unwrap(
        exec::SmaGAggr::Make(t, pred, {3}, sma_aggs, &smas, row_opts));
    auto batch_op = Unwrap(
        exec::SmaGAggr::Make(t, pred, {3}, sma_aggs, &smas, batch_opts));
    EXPECT_EQ(DrainRows(row_op.get()), DrainRows(batch_op.get()));
  }
  {
    auto row_op = Unwrap(exec::ParallelScanAggr::Make(t, pred, {3}, aggs,
                                                      &smas, dop));
    auto batch_op = Unwrap(exec::ParallelScanAggr::Make(t, pred, {3}, aggs,
                                                        &smas, dop,
                                                        batch_size));
    EXPECT_EQ(DrainRows(row_op.get()), DrainRows(batch_op.get()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchAggrEquivalenceP,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{64}, size_t{1024}),
                       ::testing::Values(size_t{1}, size_t{2}, size_t{4})),
    [](const ::testing::TestParamInfo<AggrParam>& info) {
      return "Bs" + std::to_string(std::get<0>(info.param)) + "Dop" +
             std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------- Filter copying semantics ------

// Regression for the contract documented in filter.h: the TupleRef yielded
// by Filter::Next() must stay valid (same bytes) until the *next* Next(),
// even when the child internally skipped non-matching tuples in between.
TEST(FilterSemanticsTest, FilterRefStaysValidAcrossCalls) {
  TestDb db(16384);
  storage::Table* t = MakeSyntheticTable(&db, 1200, Layout::kNoisy, 51);
  // ~1-in-4 selectivity so most Next() calls skip several child tuples.
  const PredicatePtr pred =
      Unwrap(Predicate::AtomString(&t->schema(), "tag", CmpOp::kEq, "SHIP"));
  exec::Filter filter(std::make_unique<exec::TableScan>(t, Predicate::True()),
                      pred);
  ExpectOk(filter.Init());
  TupleRef held;
  std::string held_snapshot;
  size_t n = 0;
  while (true) {
    TupleRef next;
    auto has = filter.Next(&next);
    ExpectOk(has.status());
    if (*has && n > 0) {
      // The previously yielded view must not have been clobbered while the
      // child scanned forward to find `next`.
      std::string now;
      for (size_t c = 0; c < t->schema().num_fields(); ++c) {
        now += held.GetValue(c).ToString() + "|";
      }
      EXPECT_EQ(now, held_snapshot) << "row " << n - 1;
    }
    if (!*has) break;
    held = next;
    held_snapshot.clear();
    for (size_t c = 0; c < t->schema().num_fields(); ++c) {
      held_snapshot += held.GetValue(c).ToString() + "|";
    }
    ++n;
  }
  EXPECT_GT(n, 0u);
}

// ------------------------------------------------ session batch knob -----

TEST(DatabaseBatchSizeTest, SetBatchSizeStatementControlsSessionMode) {
  db::Database database;
  ExpectOk(database.CreateTable("t", testing::SyntheticSchema()).status());
  storage::TupleBuffer tuple(&Unwrap(database.GetTable("t"))->schema());
  for (int64_t i = 0; i < 600; ++i) {
    tuple.SetInt64(0, i);
    tuple.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
    tuple.SetDecimal(2, util::Decimal(i * 3));
    tuple.SetString(3, i % 2 == 0 ? "A" : "B");
    tuple.SetString(4, "MAIL");
    ExpectOk(database.Insert("t", tuple));
  }
  const std::string sql =
      "select grp, count(*), sum(v) from t where d <= '1970-02-10' "
      "group by grp";

  // Vectorized by default; the plan explanation says so.
  EXPECT_EQ(database.batch_size(), exec::kDefaultBatchSize);
  const plan::QueryResult vectorized = Unwrap(database.Query(sql));
  EXPECT_NE(vectorized.plan.explanation.find("vectorized(batch=1024)"),
            std::string::npos)
      << vectorized.plan.explanation;

  ExpectOk(database.Execute("set batch_size = 0"));
  EXPECT_EQ(database.batch_size(), 0u);
  const plan::QueryResult rowmode = Unwrap(database.Query(sql));
  EXPECT_NE(rowmode.plan.explanation.find("row-mode"), std::string::npos)
      << rowmode.plan.explanation;
  EXPECT_EQ(vectorized.ToString(), rowmode.ToString());

  ExpectOk(database.Execute("set batch_size = 64"));
  EXPECT_EQ(database.batch_size(), 64u);
  const plan::QueryResult small = Unwrap(database.Query(sql));
  EXPECT_EQ(vectorized.ToString(), small.ToString());

  EXPECT_FALSE(database.Execute("set batch_size = -5").ok());
  EXPECT_FALSE(database.Execute("set batch_size to 8").ok());
}

// ------------------------------------------------ faults in batch mode ---

struct VectorFaultTest : ::testing::Test {
  VectorFaultTest() : db(16384) {}
  ~VectorFaultTest() override { util::fault::DisarmAll(); }

  void Setup(const std::string& name) {
    table = MakeSyntheticTable(&db, 4000, Layout::kNoisy, 13, 1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, sma::SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, sma::SmaSpec::Count("cnt", {3})))));
    query.table = table;
    query.pred = Unwrap(Predicate::AtomConst(
        &table->schema(), "d", CmpOp::kLe,
        Value::MakeDate(util::Date(120))));
    query.group_by = {3};
    query.aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt")};
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  plan::AggQuery query;
};

// The fault matrix of fault_test.cc rerun with the vectorized engine at
// several batch sizes: every run returns the fault-free rows exactly or the
// scenario's typed error — never silently-wrong rows.
TEST_F(VectorFaultTest, BatchedRunsReturnExactRowsOrTypedError) {
  Setup("vf");
  plan::PlannerOptions row_options;
  row_options.batch_size = 0;
  plan::Planner row_planner(smas.get(), row_options);
  auto ref_op =
      Unwrap(row_planner.Build(query, plan::PlanKind::kScanAggr, 1));
  const std::string expected =
      Unwrap(plan::RunToCompletion(ref_op.get())).ToString();

  struct Scenario {
    const char* label;
    const char* point;
    util::FaultSpec spec;
    StatusCode allowed;
  };
  const Scenario scenarios[] = {
      {"transient-read", "disk.read",
       {.probability = 0.3, .kind = FaultKind::kTransient},
       StatusCode::kIOError},
      {"permanent-read", "disk.read",
       {.probability = 0.3, .kind = FaultKind::kPermanent},
       StatusCode::kIOError},
      {"bitflip-read", "disk.page_bitflip",
       {.probability = 0.25, .kind = FaultKind::kBitFlip},
       StatusCode::kCorruption},
  };
  const plan::PlanKind kinds[] = {plan::PlanKind::kScanAggr,
                                  plan::PlanKind::kSmaScanAggr,
                                  plan::PlanKind::kSmaGAggr};
  uint64_t seed = 40;
  for (size_t batch_size : {size_t{7}, size_t{1024}}) {
    plan::PlannerOptions options;
    options.batch_size = batch_size;
    plan::Planner planner(smas.get(), options);
    for (const Scenario& s : scenarios) {
      for (plan::PlanKind kind : kinds) {
        for (size_t dop : {size_t{1}, size_t{4}}) {
          SCOPED_TRACE(::testing::Message()
                       << s.label << " / " << plan::PlanKindToString(kind)
                       << " / dop=" << dop << " / batch=" << batch_size);
          util::fault::DisarmAll();
          ExpectOk(db.pool.DropAll());
          util::fault::Seed(seed++);
          util::fault::Arm(s.point, s.spec);
          auto op = Unwrap(planner.Build(query, kind, dop));
          auto run = plan::RunToCompletion(op.get());
          util::fault::DisarmAll();
          if (run.ok()) {
            EXPECT_EQ(run->ToString(), expected);
          } else {
            EXPECT_EQ(run.status().code(), s.allowed)
                << run.status().ToString();
          }
        }
      }
    }
  }
}

// The degradation ladder under the vectorized engine: unreadable SMA-files
// demote the plan, the rerun stays vectorized, and the rows are exact.
TEST_F(VectorFaultTest, DegradationLadderDemotesCorrectlyInBatchMode) {
  Setup("vd");
  plan::Planner planner(smas.get());  // defaults: vectorized
  const plan::QueryResult healthy = Unwrap(planner.Execute(query));
  EXPECT_NE(healthy.plan.explanation.find("vectorized"), std::string::npos);

  ExpectOk(db.pool.DropAll());
  util::fault::Arm("disk.read", {.kind = FaultKind::kPermanent,
                                 .file_filter = "sma."});
  const plan::QueryResult demoted = Unwrap(planner.Execute(query));
  util::fault::DisarmAll();
  EXPECT_EQ(demoted.plan.kind, plan::PlanKind::kScanAggr);
  EXPECT_NE(demoted.plan.explanation.find("demoted"), std::string::npos)
      << demoted.plan.explanation;
  EXPECT_NE(demoted.plan.explanation.find("vectorized"), std::string::npos)
      << demoted.plan.explanation;
  EXPECT_EQ(demoted.ToString(), healthy.ToString());
}

}  // namespace
}  // namespace smadb
