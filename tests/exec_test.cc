// Tests for the physical operators: TableScan, SMA_Scan (Fig. 6), GAggr,
// SMA_GAggr (Fig. 7). The central properties: SMA_Scan ≡ TableScan and
// SMA_GAggr ≡ GAggr on every layout and predicate.

#include <gtest/gtest.h>

#include <map>

#include "exec/gaggr.h"
#include "exec/sma_gaggr.h"
#include "exec/sma_scan.h"
#include "exec/sort.h"
#include "exec/table_scan.h"
#include "tests/test_util.h"

namespace smadb::exec {
namespace {

using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using sma::SmaSpec;
using storage::TupleRef;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

// Runs an operator and returns all rows serialized (order-preserving).
std::vector<std::string> Collect(Operator* op) {
  ExpectOk(op->Init());
  std::vector<std::string> rows;
  TupleRef t;
  while (true) {
    auto has = op->Next(&t);
    EXPECT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    std::string row;
    for (size_t c = 0; c < op->output_schema().num_fields(); ++c) {
      row += t.GetValue(c).ToString();
      row += '|';
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

struct ExecTest : ::testing::Test {
  ExecTest() : db(16384) {}
  TestDb db;
};

// ------------------------------------------------------------- TableScan --

TEST_F(ExecTest, TableScanSeesAllTuples) {
  storage::Table* t =
      MakeSyntheticTable(&db, 1234, testing::Layout::kRandom);
  TableScan scan(t, Predicate::True());
  EXPECT_EQ(Collect(&scan).size(), 1234u);
}

TEST_F(ExecTest, TableScanEmptyTable) {
  storage::Table* t = Unwrap(
      db.catalog.CreateTable("empty", testing::SyntheticSchema(), {}));
  TableScan scan(t, Predicate::True());
  EXPECT_TRUE(Collect(&scan).empty());
}

TEST_F(ExecTest, TableScanFiltersExactly) {
  storage::Table* t =
      MakeSyntheticTable(&db, 1000, testing::Layout::kRandom);
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "k", CmpOp::kLt, Value::Int64(100)));
  TableScan scan(t, pred);
  EXPECT_EQ(Collect(&scan).size(), 100u);
}

TEST_F(ExecTest, TableScanRestartable) {
  storage::Table* t =
      MakeSyntheticTable(&db, 300, testing::Layout::kRandom);
  TableScan scan(t, Predicate::True());
  EXPECT_EQ(Collect(&scan).size(), 300u);
  EXPECT_EQ(Collect(&scan).size(), 300u);  // Init() resets
}

// --------------------------------------------------------------- SmaScan --

TEST_F(ExecTest, SmaScanEquivalentToTableScan) {
  for (auto layout : {testing::Layout::kClustered, testing::Layout::kNoisy,
                      testing::Layout::kRandom}) {
    storage::Table* t = MakeSyntheticTable(
        &db, 3000, layout, 23, 1,
        "sst" + std::to_string(static_cast<int>(layout)));
    sma::SmaSet smas(t);
    AddMinMaxSmas(t, &smas, "d");
    util::Rng rng(9);
    for (int trial = 0; trial < 10; ++trial) {
      const CmpOp op = static_cast<CmpOp>(rng.Uniform(0, 5));
      const int32_t c = static_cast<int32_t>(rng.Uniform(0, 3000 / 8));
      const PredicatePtr pred = Unwrap(Predicate::AtomConst(
          &t->schema(), "d", op, Value::MakeDate(util::Date(c))));
      TableScan plain(t, pred);
      SmaScan pruned(t, pred, &smas);
      EXPECT_EQ(Collect(&plain), Collect(&pruned))
          << "layout " << static_cast<int>(layout) << " trial " << trial;
    }
  }
}

TEST_F(ExecTest, SmaScanSkipsDisqualifiedBuckets) {
  storage::Table* t =
      MakeSyntheticTable(&db, 4000, testing::Layout::kClustered);
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(50))));

  ExpectOk(db.pool.DropAll());
  db.disk.ResetStats();
  SmaScan scan(t, pred, &smas);
  const size_t rows = Collect(&scan).size();
  EXPECT_GT(rows, 0u);
  EXPECT_GT(scan.stats().disqualifying_buckets, 0u);
  // Page reads must be far below the table size (SMA files + fetched
  // buckets only).
  EXPECT_LT(db.disk.stats().page_reads, t->num_pages() / 2);
  // Stats partition the buckets.
  EXPECT_EQ(scan.stats().BucketsTotal(), t->num_buckets());
}

TEST_F(ExecTest, SmaScanWithMultiPageBuckets) {
  storage::Table* t = MakeSyntheticTable(&db, 5000,
                                         testing::Layout::kClustered, 7,
                                         /*bucket_pages=*/4, "mpb");
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kGe, Value::MakeDate(util::Date(300))));
  TableScan plain(t, pred);
  SmaScan pruned(t, pred, &smas);
  EXPECT_EQ(Collect(&plain), Collect(&pruned));
}

TEST_F(ExecTest, SmaScanOnEmptyTable) {
  storage::Table* t = Unwrap(
      db.catalog.CreateTable("empty2", testing::SyntheticSchema(), {}));
  sma::SmaSet smas(t);
  SmaScan scan(t, Predicate::True(), &smas);
  EXPECT_TRUE(Collect(&scan).empty());
}

// ----------------------------------------------------------------- GAggr --

TEST_F(ExecTest, GAggrMatchesBruteForce) {
  storage::Table* t =
      MakeSyntheticTable(&db, 2500, testing::Layout::kRandom);
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  std::vector<AggSpec> aggs = {AggSpec::Sum(v, "sum_v"),
                               AggSpec::Count("cnt"),
                               AggSpec::Avg(v, "avg_v"),
                               AggSpec::Min(v, "min_v"),
                               AggSpec::Max(v, "max_v")};
  auto scan = std::make_unique<TableScan>(t, Predicate::True());
  auto aggr = Unwrap(GAggr::Make(std::move(scan), {3}, aggs));

  // Brute force.
  struct Ref {
    int64_t sum = 0, cnt = 0, mn = INT64_MAX, mx = INT64_MIN;
  };
  std::map<std::string, Ref> ref;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const TupleRef& tup, storage::Rid) {
          Ref& r = ref[std::string(tup.GetString(3))];
          const int64_t x = tup.GetRawInt(2);
          r.sum += x;
          ++r.cnt;
          r.mn = std::min(r.mn, x);
          r.mx = std::max(r.mx, x);
        }));
  }

  ExpectOk(aggr->Init());
  size_t groups_seen = 0;
  TupleRef row;
  while (*aggr->Next(&row)) {
    ++groups_seen;
    const std::string key(row.GetString(0));
    ASSERT_TRUE(ref.count(key));
    const Ref& r = ref[key];
    EXPECT_EQ(row.GetDecimal(1).cents(), r.sum);
    EXPECT_EQ(row.GetInt64(2), r.cnt);
    EXPECT_NEAR(row.GetDouble(3),
                (static_cast<double>(r.sum) / 100.0) /
                    static_cast<double>(r.cnt),
                1e-9);
    EXPECT_EQ(row.GetDecimal(4).cents(), r.mn);
    EXPECT_EQ(row.GetDecimal(5).cents(), r.mx);
  }
  EXPECT_EQ(groups_seen, ref.size());
}

TEST_F(ExecTest, GAggrGlobalAggregation) {
  storage::Table* t =
      MakeSyntheticTable(&db, 777, testing::Layout::kRandom);
  auto scan = std::make_unique<TableScan>(t, Predicate::True());
  auto aggr =
      Unwrap(GAggr::Make(std::move(scan), {}, {AggSpec::Count("n")}));
  ExpectOk(aggr->Init());
  TupleRef row;
  ASSERT_TRUE(*aggr->Next(&row));
  EXPECT_EQ(row.GetInt64(0), 777);
  EXPECT_FALSE(*aggr->Next(&row));
}

TEST_F(ExecTest, GAggrOutputSortedByGroupKey) {
  storage::Table* t =
      MakeSyntheticTable(&db, 900, testing::Layout::kRandom);
  auto scan = std::make_unique<TableScan>(t, Predicate::True());
  auto aggr =
      Unwrap(GAggr::Make(std::move(scan), {3}, {AggSpec::Count("n")}));
  const auto rows = Collect(aggr.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST_F(ExecTest, GAggrValidation) {
  storage::Table* t =
      MakeSyntheticTable(&db, 10, testing::Layout::kRandom);
  auto scan = std::make_unique<TableScan>(t, Predicate::True());
  // No aggregates.
  EXPECT_FALSE(GAggr::Make(std::move(scan), {3}, {}).ok());
  // Aggregate over a string column.
  auto scan2 = std::make_unique<TableScan>(t, Predicate::True());
  const expr::ExprPtr tag = Unwrap(expr::Column(&t->schema(), "tag"));
  EXPECT_FALSE(
      GAggr::Make(std::move(scan2), {}, {AggSpec::Sum(tag, "s")}).ok());
}

// -------------------------------------------------------------- SmaGAggr --

struct Q1LikeSetup {
  storage::Table* table;
  std::unique_ptr<sma::SmaSet> smas;
  std::vector<AggSpec> aggs;
  std::vector<size_t> group_by{3};

  Q1LikeSetup(TestDb* db, testing::Layout layout, const std::string& name,
              int64_t rows = 4000) {
    table = MakeSyntheticTable(db, rows, layout, 31, 1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(Unwrap(
        sma::BuildSma(table, SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(Unwrap(
        sma::BuildSma(table, SmaSpec::Count("cnt", {3})))));
    ExpectOk(smas->Add(Unwrap(
        sma::BuildSma(table, SmaSpec::Min("min_v", v, {3})))));
    ExpectOk(smas->Add(Unwrap(
        sma::BuildSma(table, SmaSpec::Max("max_v", v, {3})))));
    aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt"),
            AggSpec::Avg(v, "avg_v"), AggSpec::Min(v, "min_v"),
            AggSpec::Max(v, "max_v")};
  }
};

TEST_F(ExecTest, SmaGAggrEquivalentToGAggrAllLayoutsAndOps) {
  int tid = 0;
  for (auto layout : {testing::Layout::kClustered, testing::Layout::kNoisy,
                      testing::Layout::kRandom}) {
    Q1LikeSetup setup(&db, layout, "qg" + std::to_string(tid++));
    util::Rng rng(41);
    for (int trial = 0; trial < 8; ++trial) {
      const CmpOp op = static_cast<CmpOp>(rng.Uniform(0, 5));
      const int32_t c = static_cast<int32_t>(rng.Uniform(0, 4000 / 8));
      const PredicatePtr pred = Unwrap(Predicate::AtomConst(
          &setup.table->schema(), "d", op,
          Value::MakeDate(util::Date(c))));

      auto scan = std::make_unique<TableScan>(setup.table, pred);
      auto ref =
          Unwrap(GAggr::Make(std::move(scan), setup.group_by, setup.aggs));
      auto smag = Unwrap(SmaGAggr::Make(setup.table, pred, setup.group_by,
                                        setup.aggs, setup.smas.get()));
      EXPECT_EQ(Collect(ref.get()), Collect(smag.get()))
          << "layout " << static_cast<int>(layout) << " op "
          << static_cast<int>(op) << " c=" << c;
    }
  }
}

TEST_F(ExecTest, SmaGAggrUsesSummariesNotTuples) {
  // Large enough that the table dwarfs the (14-page) SMA complement.
  Q1LikeSetup setup(&db, testing::Layout::kClustered, "qgsum", 16000);
  // Predicate selecting ~everything: almost all buckets qualify.
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &setup.table->schema(), "d", CmpOp::kGe,
      Value::MakeDate(util::Date(0))));
  ExpectOk(db.pool.DropAll());
  db.disk.ResetStats();
  auto smag = Unwrap(SmaGAggr::Make(setup.table, pred, setup.group_by,
                                    setup.aggs, setup.smas.get()));
  Collect(smag.get());
  EXPECT_GT(smag->stats().qualifying_buckets,
            setup.table->num_buckets() - 3);
  // Only SMA pages read; base table untouched except ambivalent buckets.
  EXPECT_LT(db.disk.stats().page_reads, setup.table->num_pages() / 4);
}

TEST_F(ExecTest, SmaGAggrRequiresCountSma) {
  storage::Table* t =
      MakeSyntheticTable(&db, 500, testing::Layout::kClustered, 3, 1, "nocnt");
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Sum("s", v, {3})))));
  auto r = SmaGAggr::Make(t, Predicate::True(), {3},
                          {AggSpec::Sum(v, "s")}, &smas);
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotSupported);
}

TEST_F(ExecTest, SmaGAggrRequiresMatchingAggregates) {
  storage::Table* t = MakeSyntheticTable(&db, 500,
                                         testing::Layout::kClustered, 3, 1,
                                         "nomatch");
  sma::SmaSet smas(t);
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Count("c", {3})))));
  // sum(v) has no SMA -> NotSupported.
  auto r = SmaGAggr::Make(t, Predicate::True(), {3},
                          {AggSpec::Sum(v, "s")}, &smas);
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotSupported);
}

TEST_F(ExecTest, SmaGAggrFinerGroupingRefinesQuery) {
  // SMA grouped by (grp, tag) answers a query grouped by (grp) — §2.3's
  // "or a finer grouping".
  storage::Table* t = MakeSyntheticTable(&db, 3000,
                                         testing::Layout::kClustered, 5, 1,
                                         "finer");
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(
      Unwrap(sma::BuildSma(t, SmaSpec::Sum("s", v, {3, 4})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Count("c", {3, 4})))));

  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(200))));
  std::vector<AggSpec> aggs = {AggSpec::Sum(v, "sum_v"),
                               AggSpec::Count("cnt")};
  auto smag = Unwrap(SmaGAggr::Make(t, pred, {3}, aggs, &smas));
  auto scan = std::make_unique<TableScan>(t, pred);
  auto ref = Unwrap(GAggr::Make(std::move(scan), {3}, aggs));
  EXPECT_EQ(Collect(ref.get()), Collect(smag.get()));
}

TEST_F(ExecTest, SmaGAggrDropsGroupsWithNoQualifyingTuples) {
  // Put group "Z" only in the first bucket, then disqualify that bucket.
  storage::Table* t = MakeSyntheticTable(&db, 2000,
                                         testing::Layout::kClustered, 5, 1,
                                         "dropz");
  // First tuple of bucket 0 becomes group Z (d stays small).
  ExpectOk(t->UpdateColumn(storage::Rid{0, 0}, 3, Value::String("Z")));
  sma::SmaSet smas(t);
  AddMinMaxSmas(t, &smas, "d");
  const expr::ExprPtr v = Unwrap(expr::Column(&t->schema(), "v"));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Sum("s", v, {3})))));
  ExpectOk(smas.Add(Unwrap(sma::BuildSma(t, SmaSpec::Count("c", {3})))));

  // Predicate excludes the low dates (bucket 0 disqualifies).
  const PredicatePtr pred = Unwrap(Predicate::AtomConst(
      &t->schema(), "d", CmpOp::kGe, Value::MakeDate(util::Date(100))));
  std::vector<AggSpec> aggs = {AggSpec::Sum(v, "s"), AggSpec::Count("c")};
  auto smag = Unwrap(SmaGAggr::Make(t, pred, {3}, aggs, &smas));
  for (const std::string& row : Collect(smag.get())) {
    EXPECT_EQ(row.find("Z|"), std::string::npos)
        << "group Z has no qualifying tuples but appeared: " << row;
  }
}

// ------------------------------------------------------------------ Sort --

TEST_F(ExecTest, SortOrdersAscendingAndDescending) {
  storage::Table* t =
      MakeSyntheticTable(&db, 500, testing::Layout::kRandom, 3, 1, "sorted");
  auto asc = Unwrap(Sort::Make(
      std::make_unique<TableScan>(t, Predicate::True()),
      {SortKey{1, false}}));
  ExpectOk(asc->Init());
  TupleRef row;
  int32_t prev = INT32_MIN;
  size_t n = 0;
  while (*asc->Next(&row)) {
    const int32_t d = static_cast<int32_t>(row.GetRawInt(1));
    EXPECT_GE(d, prev);
    prev = d;
    ++n;
  }
  EXPECT_EQ(n, 500u);

  auto desc = Unwrap(Sort::Make(
      std::make_unique<TableScan>(t, Predicate::True()),
      {SortKey{1, true}}));
  ExpectOk(desc->Init());
  prev = INT32_MAX;
  while (*desc->Next(&row)) {
    const int32_t d = static_cast<int32_t>(row.GetRawInt(1));
    EXPECT_LE(d, prev);
    prev = d;
  }
}

TEST_F(ExecTest, SortSecondaryKeyAndLimit) {
  storage::Table* t = MakeSyntheticTable(&db, 300, testing::Layout::kRandom,
                                         5, 1, "sorted2");
  auto sorted = Unwrap(Sort::Make(
      std::make_unique<TableScan>(t, Predicate::True()),
      {SortKey{3, false}, SortKey{0, true}}, /*limit=*/20));
  ExpectOk(sorted->Init());
  TupleRef row;
  size_t n = 0;
  std::string prev_grp;
  int64_t prev_k = INT64_MAX;
  while (*sorted->Next(&row)) {
    const std::string grp(row.GetString(3));
    const int64_t k = row.GetInt64(0);
    if (!prev_grp.empty()) {
      EXPECT_GE(grp, prev_grp);
      if (grp == prev_grp) {
        EXPECT_LE(k, prev_k);
      }
    }
    prev_grp = grp;
    prev_k = k;
    ++n;
  }
  EXPECT_EQ(n, 20u);
}

TEST_F(ExecTest, SortValidation) {
  storage::Table* t = MakeSyntheticTable(&db, 10, testing::Layout::kRandom,
                                         9, 1, "sorted3");
  EXPECT_FALSE(
      Sort::Make(std::make_unique<TableScan>(t, Predicate::True()), {}).ok());
  EXPECT_FALSE(Sort::Make(std::make_unique<TableScan>(t, Predicate::True()),
                          {SortKey{99, false}})
                   .ok());
}

}  // namespace
}  // namespace smadb::exec
