// Network serving layer tests: the socket-facing contract of DESIGN.md §15.
//
// The contract under test: a client — cooperative, slow, dead, or actively
// hostile — can make the server refuse it with a typed `ERR` line, but never
// make it hang, leak a session, grow a buffer without bound, or crash. Every
// test ends with the same invariants: connections_active() back to 0,
// Database::sessions_active() back to 0, and a fresh connection served.
//
// The suite runs under ThreadSanitizer in CI (the I/O-thread/worker hand-off
// is exactly the kind of code TSan referees); keep iteration counts modest.

#include <poll.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "net/server.h"
#include "tests/test_util.h"
#include "util/fault.h"
#include "util/rng.h"

namespace smadb {
namespace {

using testing::ExpectOk;
using testing::SyntheticSchema;
using testing::Unwrap;

using Clock = std::chrono::steady_clock;

/// Spins until `cond` holds or `timeout` elapses; true when it held.
template <typename Cond>
bool WaitFor(Cond cond, std::chrono::milliseconds timeout =
                            std::chrono::milliseconds(5000)) {
  const Clock::time_point deadline = Clock::now() + timeout;
  while (!cond()) {
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

/// A deliberately low-level test client: raw fd, poll-based reads with
/// deadlines, and the ability to misbehave (half-close, vanish, stall).
class TestClient {
 public:
  TestClient() = default;
  ~TestClient() { Close(); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  bool Connect(uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool SendRaw(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendLine(const std::string& line) { return SendRaw(line + "\n"); }

  /// Next '\n'-terminated line, or nullopt on EOF/timeout.
  std::optional<std::string> ReadLine(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000)) {
    const Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      const int64_t left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count();
      if (left <= 0) return std::nullopt;
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, static_cast<int>(left));
      if (pr <= 0) {
        if (pr < 0 && errno == EINTR) continue;
        return std::nullopt;  // timeout
      }
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return std::nullopt;  // EOF / reset
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads lines until the `OK`/`ERR ...` terminator; returns the
  /// terminator ("" on EOF/timeout) and collects body lines into `body`.
  std::string ReadResponse(std::vector<std::string>* body = nullptr) {
    for (;;) {
      auto line = ReadLine();
      if (!line.has_value()) return "";
      if (*line == "OK" || line->rfind("ERR", 0) == 0) return *line;
      if (body != nullptr) body->push_back(*line);
    }
  }

  /// True when the server has closed the connection (recv sees EOF within
  /// the timeout, with no stray bytes other than `allow_line` responses).
  bool WaitForClose(std::chrono::milliseconds timeout =
                        std::chrono::milliseconds(5000)) {
    const Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
      const int64_t left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                Clock::now())
              .count();
      if (left <= 0) return false;
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, static_cast<int>(left));
      if (pr <= 0) {
        if (pr < 0 && errno == EINTR) continue;
        return false;
      }
      char chunk[4096];
      ssize_t n;
      do {
        n = ::recv(fd_, chunk, sizeof(chunk), 0);
      } while (n < 0 && errno == EINTR);
      if (n == 0) return true;   // orderly EOF
      if (n < 0) return true;    // reset also counts as closed
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buf_.clear();
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;
};

/// One in-memory database (4000 synthetic rows) plus a server on an
/// ephemeral port, torn down and invariant-checked after every test.
class NetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = Unwrap(database_.CreateTable("t", SyntheticSchema()));
    storage::TupleBuffer buf(&table_->schema());
    util::Rng rng(7);
    static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
    for (int64_t i = 0; i < 4000; ++i) {
      buf.SetInt64(0, i);
      buf.SetDate(1, util::Date(static_cast<int32_t>(rng.Uniform(0, 500))));
      buf.SetDecimal(2, util::Decimal(i * 3));
      const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 2)), 0};
      buf.SetString(3, grp);
      buf.SetString(4, kTags[rng.Uniform(0, 3)]);
      ExpectOk(database_.Insert("t", buf));
    }
  }

  void TearDown() override {
    util::fault::DisarmAll();
    if (server_ != nullptr) {
      ExpectOk(server_->Shutdown());
      // The end-state invariants every scenario must restore.
      EXPECT_EQ(server_->connections_active(), 0u);
      EXPECT_EQ(database_.sessions_active(), 0u);
    }
  }

  net::Server* StartServer(net::ServerOptions options = {}) {
    options.port = 0;  // ephemeral; server_->port() is the real one
    options.checkpoint_on_drain = false;  // in-memory db, nothing to flush
    server_ = std::make_unique<net::Server>(&database_, options);
    ExpectOk(server_->Start());
    return server_.get();
  }

  /// Connects and fails the test if the server is unreachable.
  void Connect(TestClient* c, int rcvbuf_bytes = 0) {
    ASSERT_TRUE(c->Connect(server_->port(), rcvbuf_bytes));
  }

  db::Database database_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<net::Server> server_;
};

// ---------------------------------------------------------------------------
// Request/response matrix: every protocol verb over a live socket.

TEST_F(NetTest, RequestResponseMatrix) {
  StartServer();
  TestClient c;
  Connect(&c);

  // ping -> bare OK.
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");

  // health -> one status line + OK.
  ASSERT_TRUE(c.SendLine("health"));
  std::vector<std::string> health;
  EXPECT_EQ(c.ReadResponse(&health), "OK");
  ASSERT_EQ(health.size(), 1u);
  EXPECT_NE(health[0].find("health: ok"), std::string::npos) << health[0];
  EXPECT_NE(health[0].find("read_only=0"), std::string::npos);
  EXPECT_NE(health[0].find("draining=0"), std::string::npos);

  // A query -> result table then OK, identical to the in-process answer.
  const std::string sql = "select grp, sum(v) as total from t group by grp";
  const std::string want = Unwrap(database_.Query(sql)).ToString();
  ASSERT_TRUE(c.SendLine(sql));
  std::vector<std::string> body;
  EXPECT_EQ(c.ReadResponse(&body), "OK");
  std::string got;
  for (const std::string& line : body) got += line + "\n";
  EXPECT_EQ(got, want);

  // A statement -> OK; a bad statement -> ERR with the engine status.
  ASSERT_TRUE(c.SendLine("define sma mind select min(d) from t"));
  EXPECT_EQ(c.ReadResponse(), "OK");
  ASSERT_TRUE(c.SendLine("select nonsense"));
  EXPECT_EQ(c.ReadResponse().rfind("ERR ", 0), 0u);
  ASSERT_TRUE(c.SendLine("set no_such_knob = 1"));
  EXPECT_EQ(c.ReadResponse().rfind("ERR ", 0), 0u);

  // The connection survived every error above.
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");

  // quit -> orderly close.
  ASSERT_TRUE(c.SendLine("quit"));
  EXPECT_TRUE(c.WaitForClose());
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));
}

TEST_F(NetTest, SessionScopedSetStaysPerConnection) {
  StartServer();
  TestClient a, b;
  Connect(&a);
  Connect(&b);
  ASSERT_TRUE(a.SendLine("set dop = 1"));
  EXPECT_EQ(a.ReadResponse(), "OK");
  // B's session still has the default; the set above was session-scoped.
  ASSERT_TRUE(b.SendLine("select grp, count(*) as n from t group by grp"));
  EXPECT_EQ(b.ReadResponse(), "OK");
  ASSERT_TRUE(a.SendLine("select grp, count(*) as n from t group by grp"));
  EXPECT_EQ(a.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Bounded input: oversized lines get a typed error, never an OOM.

TEST_F(NetTest, OversizedLineGetsTypedErrorAndConnectionSurvives) {
  net::ServerOptions options;
  options.max_line_bytes = 1024;
  StartServer(options);
  TestClient c;
  Connect(&c);

  // A complete line over the cap.
  ASSERT_TRUE(c.SendLine(std::string(4096, 'x')));
  EXPECT_EQ(c.ReadResponse(), "ERR request too long");

  // The same connection keeps working afterwards.
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");

  // An *unterminated* flood: the typed error arrives while bytes are still
  // streaming in (the server must not wait for the newline to bound its
  // buffer), and the eventual newline plus a real request still works.
  ASSERT_TRUE(c.SendRaw(std::string(16 * 1024, 'y')));
  EXPECT_EQ(c.ReadResponse(), "ERR request too long");
  ASSERT_TRUE(c.SendRaw(std::string(8 * 1024, 'y') + "\nping\n"));
  EXPECT_EQ(c.ReadResponse(), "OK");

  EXPECT_GE(server_->stats().overflows, 2u);
}

// ---------------------------------------------------------------------------
// Torn lines and pipelining: the framing layer vs. TCP's stream-ness.

TEST_F(NetTest, TornAndPipelinedRequestsAreReassembled) {
  StartServer();
  TestClient c;
  Connect(&c);

  // One request dribbled in four pieces.
  ASSERT_TRUE(c.SendRaw("pi"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(c.SendRaw("ng"));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(c.SendRaw("\nhea"));
  EXPECT_EQ(c.ReadResponse(), "OK");  // the ping completed on its newline
  ASSERT_TRUE(c.SendRaw("lth\n"));
  std::vector<std::string> health;
  EXPECT_EQ(c.ReadResponse(&health), "OK");
  ASSERT_EQ(health.size(), 1u);

  // Three requests in one write: served in order, one at a time.
  ASSERT_TRUE(c.SendRaw("ping\nping\nping\n"));
  EXPECT_EQ(c.ReadResponse(), "OK");
  EXPECT_EQ(c.ReadResponse(), "OK");
  EXPECT_EQ(c.ReadResponse(), "OK");

  // CRLF and surrounding blank lines are tolerated.
  ASSERT_TRUE(c.SendRaw("\r\n\r\nping\r\n"));
  EXPECT_EQ(c.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Protocol fuzz: seeded garbage must never crash, hang, or leak sessions.

TEST_F(NetTest, SeededProtocolFuzzNeverCrashesOrLeaks) {
  net::ServerOptions options;
  options.max_line_bytes = 2048;
  options.worker_threads = 2;
  StartServer(options);
  util::Rng rng(0xF422);

  for (int round = 0; round < 24; ++round) {
    TestClient c;
    Connect(&c);
    const int pieces = static_cast<int>(rng.Uniform(1, 6));
    for (int p = 0; p < pieces; ++p) {
      std::string blob;
      const size_t len = static_cast<size_t>(rng.Uniform(1, 3000));
      blob.reserve(len);
      for (size_t i = 0; i < len; ++i) {
        // Mostly printable noise, sprinkled newlines (torn framing), and
        // raw bytes including NUL — the parser must treat it all as data.
        const uint64_t roll = rng.Uniform(0, 99);
        if (roll < 8) {
          blob += '\n';
        } else if (roll < 16) {
          blob += static_cast<char>(rng.Uniform(0, 255));
        } else {
          blob += static_cast<char>(' ' + rng.Uniform(0, 94));
        }
      }
      if (!c.SendRaw(blob)) break;  // server closed on us mid-blob: fine
      // Drain whatever responses accumulated so the server is never the
      // one blocked on a full socket.
      while (c.ReadLine(std::chrono::milliseconds(1)).has_value()) {
      }
    }
    if (rng.Uniform(0, 1) == 0) {
      c.Close();  // vanish abruptly half the time
    } else {
      (void)c.SendLine("quit");
      c.Close();
    }
  }

  // Whatever the garbage did, every connection unwinds...
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return database_.sessions_active() == 0; }));
  // ...and the server still serves.
  TestClient fresh;
  Connect(&fresh);
  ASSERT_TRUE(fresh.SendLine("ping"));
  EXPECT_EQ(fresh.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Shed at the cap: connection max_connections+1 gets `ERR busy`.

TEST_F(NetTest, ConnectionsBeyondCapAreShedWithTypedError) {
  net::ServerOptions options;
  options.max_connections = 2;
  StartServer(options);

  TestClient a, b;
  Connect(&a);
  Connect(&b);
  // Ensure both are registered server-side before the third knocks.
  ASSERT_TRUE(a.SendLine("ping"));
  EXPECT_EQ(a.ReadResponse(), "OK");
  ASSERT_TRUE(b.SendLine("ping"));
  EXPECT_EQ(b.ReadResponse(), "OK");

  TestClient shed;
  ASSERT_TRUE(shed.Connect(server_->port()));  // TCP accept still succeeds
  EXPECT_EQ(shed.ReadResponse(), "ERR busy");  // ...then the typed shed
  EXPECT_TRUE(shed.WaitForClose());
  EXPECT_GE(server_->stats().shed, 1u);

  // A slot freed by quitting is immediately reusable.
  ASSERT_TRUE(a.SendLine("quit"));
  EXPECT_TRUE(a.WaitForClose());
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 1; }));
  TestClient again;
  Connect(&again);
  ASSERT_TRUE(again.SendLine("ping"));
  EXPECT_EQ(again.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Deadlines: idle connections are reaped; stalled readers are dropped.

TEST_F(NetTest, IdleConnectionTimesOutWithTypedError) {
  net::ServerOptions options;
  options.idle_timeout_ms = 150;
  StartServer(options);
  TestClient c;
  Connect(&c);
  // Say nothing; the server reaps us with the typed line, then EOF.
  const auto line = c.ReadLine(std::chrono::milliseconds(5000));
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ERR idle timeout");
  EXPECT_TRUE(c.WaitForClose());
  EXPECT_GE(server_->stats().idle_timeouts, 1u);

  // Activity resets the clock: a chatty client is never reaped.
  TestClient chatty;
  Connect(&chatty);
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(chatty.SendLine("ping"));
    EXPECT_EQ(chatty.ReadResponse(), "OK");
  }
}

TEST_F(NetTest, StalledReaderTripsWriteDeadlineNotUnboundedBuffering) {
  net::ServerOptions options;
  options.write_timeout_ms = 200;
  options.sndbuf_bytes = 4096;   // tiny kernel buffers so the big result
  StartServer(options);          // actually blocks instead of being absorbed
  TestClient c;
  Connect(&c, /*rcvbuf_bytes=*/4096);

  // Ask for every row, then refuse to read the response. The server must
  // not queue the overflow — it blocks with a deadline, then disconnects.
  ASSERT_TRUE(c.SendLine("select * from t"));
  EXPECT_TRUE(
      WaitFor([&] { return server_->stats().write_timeouts >= 1; }));
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));

  // The worker that was stuck is free again.
  TestClient fresh;
  Connect(&fresh);
  ASSERT_TRUE(fresh.SendLine("ping"));
  EXPECT_EQ(fresh.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Dead-client cancellation: a vanished client's request is cancelled, its
// connection and session unwound, while other clients keep working.

TEST_F(NetTest, VanishedClientCancelsItsInFlightRequest) {
  net::ServerOptions options;
  options.sndbuf_bytes = 4096;
  options.write_timeout_ms = 30'000;  // the cancel must win, not this
  StartServer(options);

  TestClient victim;
  Connect(&victim, /*rcvbuf_bytes=*/4096);
  // A request whose response cannot fit the socket buffers keeps the
  // request in flight for as long as we refuse to read...
  ASSERT_TRUE(victim.SendLine("select * from t"));
  EXPECT_TRUE(WaitFor([&] { return server_->stats().requests_total >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...and then we vanish. The I/O thread must notice the hangup, trip the
  // request's CancelToken, and unwind without waiting for any deadline.
  victim.Close();

  EXPECT_TRUE(WaitFor([&] {
    return server_->stats().peer_disconnect_cancels >= 1 ||
           server_->connections_active() == 0;
  }));
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return database_.sessions_active() == 0; }));

  // An unrelated client was never disturbed.
  TestClient bystander;
  Connect(&bystander);
  ASSERT_TRUE(bystander.SendLine("ping"));
  EXPECT_EQ(bystander.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Graceful drain: SIGTERM semantics, exercised via RequestShutdown().

TEST_F(NetTest, DrainUnderLoadFinishesWithinDeadlineAndUnwindsEverything) {
  net::ServerOptions options;
  options.drain_timeout_ms = 500;
  options.write_timeout_ms = 30'000;  // the drain deadline must win
  options.sndbuf_bytes = 4096;
  StartServer(options);

  // Load: one stuck in-flight request (stalled reader), several idle
  // connections, and one mid-request well-behaved client.
  TestClient stuck;
  Connect(&stuck, /*rcvbuf_bytes=*/4096);
  ASSERT_TRUE(stuck.SendLine("select * from t"));
  EXPECT_TRUE(WaitFor([&] { return server_->stats().requests_total >= 1; }));

  std::vector<std::unique_ptr<TestClient>> idle;
  for (int i = 0; i < 4; ++i) {
    idle.push_back(std::make_unique<TestClient>());
    ASSERT_TRUE(idle.back()->Connect(server_->port()));
    ASSERT_TRUE(idle.back()->SendLine("ping"));
    EXPECT_EQ(idle.back()->ReadResponse(), "OK");
  }

  const Clock::time_point t0 = Clock::now();
  server_->RequestShutdown();

  // Idle connections are told why and closed.
  for (auto& c : idle) {
    const auto line = c->ReadLine();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "ERR server draining");
    EXPECT_TRUE(c->WaitForClose());
  }

  // New connections are refused outright (the listener is gone).
  TestClient late;
  EXPECT_FALSE(late.Connect(server_->port()));

  // The stuck request is cancelled at the drain deadline; Wait() returns
  // within the budget plus slack, with everything unwound.
  server_->Wait();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            t0);
  EXPECT_LT(elapsed.count(), 5000) << "drain overran its deadline";
  EXPECT_EQ(server_->connections_active(), 0u);
  EXPECT_EQ(database_.sessions_active(), 0u);
  EXPECT_GE(server_->stats().drain_cancels, 1u);
  ExpectOk(server_->Shutdown());
}

TEST_F(NetTest, DrainOfQuietServerIsImmediate) {
  StartServer();
  TestClient c;
  Connect(&c);
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");
  const Clock::time_point t0 = Clock::now();
  server_->RequestShutdown();
  server_->Wait();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            t0);
  EXPECT_LT(elapsed.count(), 2000);
  ExpectOk(server_->Shutdown());  // idempotent after Wait()
}

// ---------------------------------------------------------------------------
// Socket chaos: the net.* failpoint family.

TEST_F(NetTest, ChaosAcceptFailureDropsOneConnectionServerSurvives) {
  StartServer();
  {
    util::fault::ScopedFault f("net.accept", {.count = 1});
    TestClient doomed;
    ASSERT_TRUE(doomed.Connect(server_->port()));  // TCP-level connect wins
    EXPECT_TRUE(doomed.WaitForClose());            // ...then the injected kill
  }
  TestClient fine;
  Connect(&fine);
  ASSERT_TRUE(fine.SendLine("ping"));
  EXPECT_EQ(fine.ReadResponse(), "OK");
  EXPECT_TRUE(WaitFor([&] { return database_.sessions_active() <= 1; }));
}

TEST_F(NetTest, ChaosRecvFailureClosesConnectionAndFreesSession) {
  StartServer();
  TestClient c;
  Connect(&c);
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");  // the connection is established & live
  {
    util::fault::ScopedFault f("net.recv", {.count = 1});
    ASSERT_TRUE(c.SendLine("ping"));
    EXPECT_TRUE(c.WaitForClose());  // injected read death: orderly close
  }
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return database_.sessions_active() == 0; }));
  TestClient fresh;
  Connect(&fresh);
  ASSERT_TRUE(fresh.SendLine("ping"));
  EXPECT_EQ(fresh.ReadResponse(), "OK");
}

TEST_F(NetTest, ChaosBitFlipCorruptsRequestIntoTypedErrorNotCrash) {
  StartServer();
  TestClient c;
  Connect(&c);
  {
    util::fault::ScopedFault f(
        "net.recv", {.count = 1, .kind = util::FaultKind::kBitFlip});
    // The first byte is flipped in flight: "ping" arrives as "qing".
    ASSERT_TRUE(c.SendLine("ping"));
    EXPECT_EQ(c.ReadResponse().rfind("ERR ", 0), 0u);
  }
  // The connection survived the corruption; the next request is clean.
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");
}

TEST_F(NetTest, ChaosSendFailureClosesConnectionNeverTruncatesSilently) {
  StartServer();
  TestClient c;
  Connect(&c);
  {
    util::fault::ScopedFault f("net.send", {.count = 1});
    // The response send fails; the server must close rather than let us
    // mistake a truncated stream for a complete answer.
    ASSERT_TRUE(c.SendLine("select grp, count(*) as n from t group by grp"));
    EXPECT_TRUE(c.WaitForClose());
  }
  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));
  TestClient fresh;
  Connect(&fresh);
  ASSERT_TRUE(fresh.SendLine("ping"));
  EXPECT_EQ(fresh.ReadResponse(), "OK");
}

TEST_F(NetTest, ChaosRecvStormUnderConcurrencyNeverLeaks) {
  // Many clients, a probabilistic recv killer, all under TSan in CI: the
  // acceptance shape for "chaos matrix green, sessions return to zero".
  net::ServerOptions options;
  options.worker_threads = 3;
  StartServer(options);
  util::fault::Seed(11);
  util::fault::Arm("net.recv", {.probability = 0.3, .count = -1});

  std::vector<std::thread> clients;
  clients.reserve(6);
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([this, t] {
      util::Rng rng(100 + t);
      for (int i = 0; i < 8; ++i) {
        TestClient c;
        if (!c.Connect(server_->port())) continue;
        for (int r = 0; r < 4; ++r) {
          const uint64_t pick = rng.Uniform(0, 2);
          const char* req = pick == 0 ? "ping"
                            : pick == 1
                                ? "health"
                                : "select grp, count(*) as n from t group by grp";
          if (!c.SendLine(req)) break;
          if (c.ReadResponse().empty()) break;  // killed mid-request: fine
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  util::fault::DisarmAll();

  EXPECT_TRUE(WaitFor([&] { return server_->connections_active() == 0; }));
  EXPECT_TRUE(WaitFor([&] { return database_.sessions_active() == 0; }));
  TestClient fresh;
  Connect(&fresh);
  ASSERT_TRUE(fresh.SendLine("ping"));
  EXPECT_EQ(fresh.ReadResponse(), "OK");
}

// ---------------------------------------------------------------------------
// Metrics: the smadb_net_* instruments mirror the stats the tests watch.

TEST_F(NetTest, MetricsRegistryMirrorsServerCounters) {
  StartServer();
  TestClient c;
  Connect(&c);
  ASSERT_TRUE(c.SendLine("ping"));
  EXPECT_EQ(c.ReadResponse(), "OK");

  obs::MetricsRegistry* r = database_.metrics();
  EXPECT_EQ(r->GetGauge("smadb_net_connections_active", "")->value(), 1);
  EXPECT_GE(r->GetCounter("smadb_net_connections_total", "")->value(), 1);
  EXPECT_GE(r->GetCounter("smadb_net_requests_total", "")->value(), 1);
  EXPECT_GT(r->GetCounter("smadb_net_bytes_in_total", "")->value(), 0);
  EXPECT_GT(r->GetCounter("smadb_net_bytes_out_total", "")->value(), 0);
  // Latency is observed by the I/O thread when it processes the request's
  // completion — after the worker sent `OK` — so wait rather than assert.
  EXPECT_TRUE(WaitFor([&] {
    return r->GetHistogram("smadb_net_request_latency_us", "")->count() >= 1;
  }));

  ASSERT_TRUE(c.SendLine("quit"));
  EXPECT_TRUE(c.WaitForClose());
  EXPECT_TRUE(WaitFor([&] {
    return r->GetGauge("smadb_net_connections_active", "")->value() == 0;
  }));
}

// ---------------------------------------------------------------------------
// Telemetry plane (DESIGN.md §16): trace ids, request logging, the HTTP
// endpoint, and the wire routing of show/scrub/kill.

/// GETs `path` from the HTTP observability port and returns the raw
/// response (status line + headers + body), or "" when unreachable.
std::string HttpGet(uint16_t port, const std::string& request) {
  TestClient c;
  if (!c.Connect(port)) return "";
  if (!c.SendRaw(request)) return "";
  std::string resp;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(5000);
  for (;;) {
    const int64_t left =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                              Clock::now())
            .count();
    if (left <= 0) break;
    pollfd p{c.fd(), POLLIN, 0};
    const int pr = ::poll(&p, 1, static_cast<int>(left));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) break;
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(c.fd(), chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) break;  // server closes after the response
    resp.append(chunk, static_cast<size_t>(n));
  }
  return resp;
}

std::string SimpleGet(uint16_t port, const std::string& path) {
  return HttpGet(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n"
                                       "Connection: close\r\n\r\n");
}

/// NetTest with a ring-buffer debug logger (no stderr noise) so tests can
/// assert on the structured request log.
class TelemetryTest : public ::testing::Test {
 protected:
  TelemetryTest() : database_(QuietDebugOptions()) {}

  static db::DatabaseOptions QuietDebugOptions() {
    db::DatabaseOptions o;
    o.log.min_level = obs::LogLevel::kDebug;
    o.log.sink = nullptr;
    o.log.max_per_sec = 1'000'000;
    o.log.ring_capacity = 1024;
    return o;
  }

  void SetUp() override {
    table_ = Unwrap(database_.CreateTable("t", SyntheticSchema()));
    storage::TupleBuffer buf(&table_->schema());
    util::Rng rng(7);
    static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
    for (int64_t i = 0; i < 4000; ++i) {
      buf.SetInt64(0, i);
      buf.SetDate(1, util::Date(static_cast<int32_t>(rng.Uniform(0, 500))));
      buf.SetDecimal(2, util::Decimal(i * 3));
      const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 2)), 0};
      buf.SetString(3, grp);
      buf.SetString(4, kTags[rng.Uniform(0, 3)]);
      ExpectOk(database_.Insert("t", buf));
    }
  }

  void TearDown() override {
    if (server_ != nullptr) {
      ExpectOk(server_->Shutdown());
      EXPECT_EQ(server_->connections_active(), 0u);
      EXPECT_EQ(database_.sessions_active(), 0u);
    }
  }

  net::Server* StartServer(net::ServerOptions options = {}) {
    options.port = 0;
    options.http_port = 0;
    options.checkpoint_on_drain = false;
    server_ = std::make_unique<net::Server>(&database_, options);
    ExpectOk(server_->Start());
    return server_.get();
  }

  /// The ring, newest-last, joined for simple substring asserts.
  std::string LogTail() {
    std::string joined;
    for (const std::string& line : database_.logger()->Tail(1024)) {
      joined += line;
      joined += '\n';
    }
    return joined;
  }

  db::Database database_;
  storage::Table* table_ = nullptr;
  std::unique_ptr<net::Server> server_;
};

// The acceptance path: one client-supplied trace id observably links the
// TCP request to the request log, the trace spans, and the profile.
TEST_F(TelemetryTest, TraceIdLinksRequestLogSpansAndProfile) {
  StartServer();
  TestClient c;
  ASSERT_TRUE(c.Connect(server_->port()));
  ASSERT_TRUE(c.SendLine(
      "trace deadbeef explain analyze select grp, sum(v) from t group by "
      "grp"));
  std::vector<std::string> body;
  ASSERT_EQ(c.ReadResponse(&body), "OK");

  // 1. The returned profile carries the id.
  std::string profile;
  for (const std::string& line : body) profile += line + "\n";
  EXPECT_NE(profile.find("trace=deadbeef"), std::string::npos) << profile;

  // 2. The structured request log carries it (logged after the response,
  // so wait for the worker to get there).
  EXPECT_TRUE(WaitFor([&] {
    const std::string log = LogTail();
    return log.find("event=request") != std::string::npos &&
           log.find("trace=deadbeef") != std::string::npos;
  })) << LogTail();

  // 3. The trace spans carry it — parse/execute at minimum.
  const std::string trace = database_.DumpTrace();
  EXPECT_NE(trace.find("\"trace\": \"deadbeef\""), std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"span\": \"execute\""), std::string::npos);
}

TEST_F(TelemetryTest, MintedTraceIdsAreFreshAndReachTheTraceSink) {
  StartServer();
  TestClient c;
  ASSERT_TRUE(c.Connect(server_->port()));
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(c.SendLine("select count(*) from t"));
    ASSERT_EQ(c.ReadResponse(), "OK");
  }
  // Two request log lines, each with a fresh nonzero trace id.
  ASSERT_TRUE(WaitFor([&] {
    const std::string log = LogTail();
    size_t n = 0;
    for (size_t at = log.find("event=request"); at != std::string::npos;
         at = log.find("event=request", at + 1)) {
      ++n;
    }
    return n >= 2;
  }));
  std::vector<std::string> ids;
  const std::string log = LogTail();
  for (size_t at = log.find("trace="); at != std::string::npos;
       at = log.find("trace=", at + 6)) {
    const size_t start = at + 6;
    size_t end = start;
    while (end < log.size() && std::isxdigit(log[end])) ++end;
    if (end > start) ids.push_back(log.substr(start, end - start));
  }
  ASSERT_GE(ids.size(), 2u) << log;
  EXPECT_NE(ids[0], "0");
  EXPECT_NE(ids[1], "0");
  EXPECT_NE(ids[0], ids[1]);
  // The minted id reached the engine's trace spans too.
  EXPECT_NE(database_.DumpTrace().find("\"trace\": \"" + ids.back() + "\""),
            std::string::npos);
}

TEST_F(TelemetryTest, ShowScrubAndKillRouteOverTheWire) {
  StartServer();
  TestClient c;
  ASSERT_TRUE(c.Connect(server_->port()));

  // `show ...` lines produce tables, not `ERR unknown statement`.
  ASSERT_TRUE(c.SendLine("show metrics"));
  std::vector<std::string> metrics;
  EXPECT_EQ(c.ReadResponse(&metrics), "OK");
  EXPECT_FALSE(metrics.empty());

  ASSERT_TRUE(c.SendLine("show queries"));
  std::vector<std::string> queries;
  EXPECT_EQ(c.ReadResponse(&queries), "OK");
  ASSERT_FALSE(queries.empty());
  EXPECT_NE(queries.back().find("no queries in flight"), std::string::npos);

  ASSERT_TRUE(c.SendLine("scrub"));
  std::vector<std::string> scrub;
  EXPECT_EQ(c.ReadResponse(&scrub), "OK");
  EXPECT_FALSE(scrub.empty());

  // `kill query` is a statement; unknown ids come back as a typed error.
  ASSERT_TRUE(c.SendLine("kill query 999999"));
  const std::string kill = c.ReadResponse();
  EXPECT_EQ(kill.rfind("ERR ", 0), 0u) << kill;
  EXPECT_NE(kill.find("no in-flight query"), std::string::npos) << kill;
}

TEST_F(TelemetryTest, HttpEndpointsServeMetricsHealthStatusAndDebug) {
  StartServer();
  ASSERT_NE(server_->http_port(), 0);

  // A query first so the scrape has content.
  TestClient c;
  ASSERT_TRUE(c.Connect(server_->port()));
  ASSERT_TRUE(c.SendLine("select count(*) from t"));
  ASSERT_EQ(c.ReadResponse(), "OK");

  const std::string metrics = SimpleGet(server_->http_port(), "/metrics");
  EXPECT_EQ(metrics.rfind("HTTP/1.1 200 OK", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE smadb_queries_total counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("smadb_net_http_requests_total"),
            std::string::npos);

  const std::string health = SimpleGet(server_->http_port(), "/healthz");
  EXPECT_EQ(health.rfind("HTTP/1.1 200 OK", 0), 0u) << health;
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);

  const std::string status = SimpleGet(server_->http_port(), "/statusz");
  EXPECT_EQ(status.rfind("HTTP/1.1 200 OK", 0), 0u) << status;
  EXPECT_NE(status.find("\"knobs\""), std::string::npos);
  EXPECT_NE(status.find("\"uptime_us\""), std::string::npos);
  EXPECT_NE(status.find("\"version\": \"1.0.0\""), std::string::npos);

  const std::string queries =
      SimpleGet(server_->http_port(), "/debug/queries");
  EXPECT_EQ(queries.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(queries.find("Content-Type: application/json"),
            std::string::npos);

  const std::string trace = SimpleGet(server_->http_port(), "/debug/trace");
  EXPECT_EQ(trace.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(trace.find("\"span\""), std::string::npos) << trace;

  const std::string index = SimpleGet(server_->http_port(), "/");
  EXPECT_EQ(index.rfind("HTTP/1.1 200 OK", 0), 0u);
  EXPECT_NE(index.find("/metrics"), std::string::npos);

  EXPECT_EQ(SimpleGet(server_->http_port(), "/nope")
                .rfind("HTTP/1.1 404 Not Found", 0),
            0u);
  const std::string post =
      HttpGet(server_->http_port(),
              "POST /metrics HTTP/1.1\r\nHost: x\r\n"
              "Connection: close\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405", 0), 0u) << post;

  EXPECT_GE(server_->stats().http_requests, 8u);
}

TEST_F(TelemetryTest, HttpScrapesStayCleanUnderConcurrentQueryLoad) {
  StartServer();
  std::atomic<bool> stop{false};
  std::atomic<int> bad_scrapes{0};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 2; ++i) {
    scrapers.emplace_back([&] {
      while (!stop.load()) {
        const std::string m = SimpleGet(server_->http_port(), "/metrics");
        if (m.rfind("HTTP/1.1 200 OK", 0) != 0) bad_scrapes.fetch_add(1);
        const std::string q =
            SimpleGet(server_->http_port(), "/debug/queries");
        if (q.rfind("HTTP/1.1 200 OK", 0) != 0) bad_scrapes.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&] {
      TestClient c;
      if (!c.Connect(server_->port())) return;
      for (int j = 0; j < 25; ++j) {
        if (!c.SendLine("select grp, count(*) from t group by grp")) break;
        if (c.ReadResponse() != "OK") break;
      }
      c.SendLine("quit");
    });
  }
  for (auto& t : clients) t.join();
  stop.store(true);
  for (auto& t : scrapers) t.join();
  EXPECT_EQ(bad_scrapes.load(), 0);
}

TEST_F(TelemetryTest, HealthzReports503WhileDraining) {
  net::ServerOptions options;
  options.sndbuf_bytes = 4096;
  options.drain_timeout_ms = 10'000;  // hold the drain open for the scrape
  options.write_timeout_ms = 30'000;
  StartServer(options);

  // Healthy first.
  const std::string before = SimpleGet(server_->http_port(), "/healthz");
  EXPECT_EQ(before.rfind("HTTP/1.1 200 OK", 0), 0u);

  // A stuck in-flight request keeps the server draining (not drained).
  TestClient stuck;
  ASSERT_TRUE(stuck.Connect(server_->port(), /*rcvbuf_bytes=*/4096));
  ASSERT_TRUE(stuck.SendLine("select * from t"));
  EXPECT_TRUE(WaitFor([&] { return server_->stats().requests_total >= 1; }));

  server_->RequestShutdown();
  // The SQL listener is gone but the telemetry plane still answers, now
  // with 503 + "draining" — load balancers stop routing, humans see why.
  const std::string during = SimpleGet(server_->http_port(), "/healthz");
  EXPECT_EQ(during.rfind("HTTP/1.1 503", 0), 0u) << during;
  EXPECT_NE(during.find("\"draining\": true"), std::string::npos) << during;

  stuck.Close();  // peer-gone cancels the request; the drain completes
  server_->Wait();
  ExpectOk(server_->Shutdown());
}

}  // namespace
}  // namespace smadb
