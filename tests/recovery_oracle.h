// Recovery oracle + torture-case driver shared by tests/torture_test.cc and
// bench/bench_x12_torture.cc (gtest-free on purpose: failures come back as
// strings in TortureResult.error).
//
// One torture case = arm one durable-path failpoint with a kCrash fault on
// its k-th hit, run a fixed scripted workload (create / define SMAs / insert
// / checkpoint / update / delete / query) against a file-backed database
// until the simulated power loss fires, kill the instance, reopen the
// directory, and check the *recovery oracle*:
//
//   the recovered state equals the shadow model at exactly L = the WAL's
//   flushed LSN at the crash. In-process crashes drop staged WAL bytes and
//   dirty pages but keep flushed file bytes (pwrites are atomic here), so
//   "flushed prefix" is the precise survival boundary — it includes every
//   synced commit (synced <= flushed is asserted) and excludes every
//   unflushed suffix.
//
// The oracle also re-derives the Q1/Q3 answers from the shadow state through
// a scratch in-memory database and compares them (sorted row text, since
// group-by output order is not canonical), checks SMA presence against the
// defines' LSNs, and finally pays off the recovery debt with Rebuild() and
// re-checks answers with restored trust.

#ifndef SMADB_TESTS_RECOVERY_ORACLE_H_
#define SMADB_TESTS_RECOVERY_ORACLE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "db/database.h"
#include "sma/maintenance.h"
#include "util/fault.h"
#include "util/stopwatch.h"

namespace smadb::testing {

/// Every durable-path failpoint the torture sweep covers. wal.append and
/// wal.sync hit on every committed mutation; disk.write / disk.sync /
/// manifest.write / manifest.rename / wal.reset.* hit inside Checkpoint.
inline const std::vector<std::string>& TortureFailpoints() {
  static const std::vector<std::string> kPoints = {
      "wal.append",     "wal.sync",        "wal.reset.truncate",
      "wal.reset.header", "disk.write",    "disk.sync",
      "manifest.write", "manifest.rename",
  };
  return kPoints;
}

struct TortureResult {
  std::string failpoint;
  int k = 0;                 ///< the hit index the crash was armed on
  bool crashed = false;      ///< false = the failpoint never reached hit k
  int step_reached = -1;     ///< workload step index at the crash (-1 = end)
  uint64_t flushed_lsn = 0;  ///< survival boundary L at the crash
  uint64_t synced_lsn = 0;
  uint64_t replayed = 0;     ///< records the reopen replayed
  double recover_ms = 0.0;   ///< wall time of the reopen (Open + Recover)
  std::string error;         ///< empty = every oracle invariant held
};

namespace oracle_internal {

// --- shadow model ----------------------------------------------------------

/// The synthetic row of tests/durability_test.cc: k=i, d=i/8 days, v=3i
/// cents, grp cycles A..C, tag "MAIL".
inline void FillRow(storage::TupleBuffer* buf, int64_t i) {
  buf->SetInt64(0, i);
  buf->SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
  buf->SetDecimal(2, util::Decimal(i * 3));
  const char grp = static_cast<char>('A' + (i % 3));
  buf->SetString(3, std::string_view(&grp, 1));
  buf->SetString(4, "MAIL");
}

inline storage::Schema OracleSchema() {
  return storage::Schema({
      storage::Field::Int64("k"),
      storage::Field::Date("d"),
      storage::Field::Decimal("v"),
      storage::Field::String("grp", 1),
      storage::Field::String("tag", 4),
  });
}

constexpr char kQ1[] =
    "select grp, sum(v), count(*) from t where d <= '1970-01-31' group by grp";
constexpr char kQ3[] = "select sum(k), count(*) from t";

/// One logged mutation, keyed by the LSN it consumed.
struct ShadowOp {
  enum Kind { kCreate, kDefine, kInsert, kUpdate, kDelete };
  uint64_t lsn = 0;
  Kind kind = kCreate;
  int64_t row = 0;    ///< insert order index (kInsert/kUpdate/kDelete)
  int64_t value = 0;  ///< new k value (kUpdate)
  std::string name;   ///< SMA name (kDefine)

  static ShadowOp Create() { return Make(kCreate, 0, 0, ""); }
  static ShadowOp Define(std::string n) {
    return Make(kDefine, 0, 0, std::move(n));
  }
  static ShadowOp Insert(int64_t row) { return Make(kInsert, row, 0, ""); }
  static ShadowOp Update(int64_t row, int64_t value) {
    return Make(kUpdate, row, value, "");
  }
  static ShadowOp Delete(int64_t row) { return Make(kDelete, row, 0, ""); }

 private:
  static ShadowOp Make(Kind kind, int64_t row, int64_t value,
                       std::string name) {
    ShadowOp op;
    op.kind = kind;
    op.row = row;
    op.value = value;
    op.name = std::move(name);
    return op;
  }
};

/// The state the shadow predicts at WAL horizon L: table presence, per-row
/// liveness and final k value (rows indexed by insert order), SMA names.
struct ShadowState {
  bool table = false;
  struct Row {
    int64_t origin = 0;  ///< the i FillRow was called with
    int64_t k = 0;       ///< possibly rewritten by an update
    bool live = true;
  };
  std::vector<Row> rows;
  std::vector<std::string> smas;

  uint64_t live_rows() const {
    uint64_t n = 0;
    for (const Row& r : rows) n += r.live ? 1 : 0;
    return n;
  }
};

class Shadow {
 public:
  void Record(ShadowOp op) { ops_.push_back(std::move(op)); }

  ShadowState At(uint64_t horizon) const {
    ShadowState s;
    for (const ShadowOp& op : ops_) {
      if (op.lsn > horizon) continue;  // did not survive the crash
      switch (op.kind) {
        case ShadowOp::kCreate:
          s.table = true;
          break;
        case ShadowOp::kDefine:
          s.smas.push_back(op.name);
          break;
        case ShadowOp::kInsert:
          s.rows.push_back({op.row, op.row, true});
          break;
        case ShadowOp::kUpdate:
          s.rows[static_cast<size_t>(op.row)].k = op.value;
          break;
        case ShadowOp::kDelete:
          s.rows[static_cast<size_t>(op.row)].live = false;
          break;
      }
    }
    return s;
  }

  uint64_t max_lsn() const { return ops_.empty() ? 0 : ops_.back().lsn; }

 private:
  std::vector<ShadowOp> ops_;
};

// --- answer comparison -----------------------------------------------------

/// Rows of a query result as sorted text (group-by output order is a hash
/// artifact, never part of the contract).
inline std::string SortedAnswer(db::Database* db, const std::string& sql,
                                std::string* error) {
  util::Result<plan::QueryResult> r = db->Query(sql);
  if (!r.ok()) {
    *error += "query '" + sql + "' failed: " + r.status().ToString() + "; ";
    return "";
  }
  std::vector<std::string> lines;
  std::istringstream in(r->ToString());
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

/// The oracle's own recomputation: replays the shadow state into a scratch
/// in-memory database (live rows only, final k values) and answers the same
/// queries through the identical engine path.
inline std::string ExpectedAnswer(const ShadowState& state,
                                  const std::string& sql,
                                  std::string* error) {
  db::Database scratch;  // simulated backend, no WAL
  util::Result<storage::Table*> t = scratch.CreateTable("t", OracleSchema());
  if (!t.ok()) {
    *error += "scratch create failed: " + t.status().ToString() + "; ";
    return "";
  }
  storage::TupleBuffer buf(&(*t)->schema());
  for (const ShadowState::Row& row : state.rows) {
    if (!row.live) continue;
    FillRow(&buf, row.origin);
    buf.SetInt64(0, row.k);
    if (util::Status st = scratch.Insert("t", buf); !st.ok()) {
      *error += "scratch insert failed: " + st.ToString() + "; ";
      return "";
    }
  }
  return SortedAnswer(&scratch, sql, error);
}

// --- the oracle ------------------------------------------------------------

/// Asserts the recovered database equals the shadow state at `horizon`.
/// Violations append to result->error.
inline void CheckRecovered(db::Database* db, const Shadow& shadow,
                           uint64_t horizon, TortureResult* result) {
  std::string& err = result->error;
  const ShadowState want = shadow.At(horizon);
  util::Result<storage::Table*> table = db->GetTable("t");
  if (!want.table) {
    if (table.ok()) err += "table survived although its create was lost; ";
    return;
  }
  if (!table.ok()) {
    err += "committed create lost: " + table.status().ToString() + "; ";
    return;
  }
  if ((*table)->num_tuples() != want.rows.size()) {
    err += "tuples: recovered " + std::to_string((*table)->num_tuples()) +
           " want " + std::to_string(want.rows.size()) + "; ";
  }
  if ((*table)->num_live_tuples() != want.live_rows()) {
    err += "live tuples: recovered " +
           std::to_string((*table)->num_live_tuples()) + " want " +
           std::to_string(want.live_rows()) + "; ";
  }
  // SMA presence tracks the defines' LSNs; trust may be stale (replay redoes
  // base data only) — staleness is legal, wrong answers are not.
  util::Result<sma::SmaSet*> smas = db->Smas("t");
  if (!smas.ok()) {
    err += "SmaSet: " + smas.status().ToString() + "; ";
    return;
  }
  for (const std::string& name : want.smas) {
    if (!(*smas)->Find(name).ok()) {
      err += "committed SMA '" + name + "' lost; ";
    }
  }
  if ((*smas)->all().size() != want.smas.size()) {
    err += "SMA count: recovered " + std::to_string((*smas)->all().size()) +
           " want " + std::to_string(want.smas.size()) + "; ";
  }
  for (const std::string& sql : {std::string(kQ1), std::string(kQ3)}) {
    const std::string got = SortedAnswer(db, sql, &err);
    const std::string expect = ExpectedAnswer(want, sql, &err);
    if (got != expect) {
      err += "answer mismatch for '" + sql + "': got [" + got + "] want [" +
             expect + "]; ";
    }
  }
  // Pay off the recovery debt: Rebuild restores full trust and must not
  // change any answer.
  if (!want.smas.empty()) {
    util::Result<sma::SmaMaintainer*> maint = db->Maintainer("t");
    if (!maint.ok()) {
      err += "maintainer: " + maint.status().ToString() + "; ";
      return;
    }
    if (util::Status st = (*maint)->Rebuild(); !st.ok()) {
      err += "rebuild: " + st.ToString() + "; ";
      return;
    }
    for (const sma::Sma* s : (*smas)->all()) {
      if (!s->trusted() || s->stale()) {
        err += "SMA '" + s->spec().name + "' untrusted after Rebuild; ";
      }
    }
    for (const std::string& sql : {std::string(kQ1), std::string(kQ3)}) {
      if (SortedAnswer(db, sql, &err) != ExpectedAnswer(want, sql, &err)) {
        err += "answer mismatch after Rebuild for '" + sql + "'; ";
      }
    }
  }
}

// --- workload driver -------------------------------------------------------

/// Runs one scripted mutation, recording it in the shadow iff it consumed a
/// WAL LSN and succeeded. Returns false when the scripted run must stop (the
/// crash fired).
template <typename Op>
bool Step(db::Database* db, Shadow* shadow, ShadowOp op, int* step,
          TortureResult* result, Op&& body) {
  ++*step;
  const uint64_t lsn = db->wal()->next_lsn();
  const util::Status st = body();
  if (util::fault::CrashFired()) {
    result->crashed = true;
    result->step_reached = *step;
    return false;
  }
  if (st.ok()) {
    if (db->wal()->next_lsn() == lsn + 1) {
      op.lsn = lsn;
      shadow->Record(std::move(op));
    }
  } else {
    // Without a crash the torture workload expects every op to succeed.
    result->error += "step " + std::to_string(*step) +
                     " failed without a crash: " + st.ToString() + "; ";
  }
  return result->error.empty();
}

}  // namespace oracle_internal

/// Runs one torture case in `dir` (a fresh directory per case): arm
/// `failpoint` to crash on hit `k`, run the scripted workload, kill, reopen,
/// check the oracle. Deterministic: same (dir contents, failpoint, k,
/// wal_sync_interval) always yields the same TortureResult fields.
inline TortureResult RunTortureCase(const std::string& dir,
                                    const std::string& failpoint, int k,
                                    size_t wal_sync_interval = 1) {
  namespace oi = oracle_internal;
  using oi::ShadowOp;

  TortureResult result;
  result.failpoint = failpoint;
  result.k = k;

  util::fault::DisarmAll();
  util::fault::Seed(0xD15EA5E);  // p == 1.0 throughout; fixed for hygiene

  db::DatabaseOptions options;
  options.storage_backend = storage::BackendKind::kFile;
  options.storage_path = dir;
  options.wal_sync_interval = wal_sync_interval;
  // A big pool keeps eviction write-back out of the picture: "disk.write"
  // then fires only inside Checkpoint's FlushAll, which the scripted
  // checkpoints reach deterministically.
  options.pool_pages = 2048;

  oi::Shadow shadow;
  {
    util::Result<std::unique_ptr<db::Database>> opened =
        db::Database::Open(options);
    if (!opened.ok()) {
      result.error = "initial open failed: " + opened.status().ToString();
      util::fault::DisarmAll();
      return result;
    }
    db::Database* db = opened->get();
    util::fault::Arm(failpoint, {.count = 1,
                                 .kind = util::FaultKind::kCrash,
                                 .skip = k - 1});

    int step = -1;
    std::vector<storage::Rid> rids;
    const auto insert = [&](int64_t i) {
      return oi::Step(db, &shadow, ShadowOp::Insert(i), &step, &result, [&] {
                        storage::TupleBuffer row(
                            &(*db->GetTable("t"))->schema());
                        oi::FillRow(&row, i);
                        storage::Rid rid{};
                        const util::Status st = db->Insert("t", row, &rid);
                        if (st.ok()) rids.push_back(rid);
                        return st;
                      });
    };
    const auto checkpoint = [&] {
      // Checkpoint consumes no LSN; only the crash outcome matters.
      ++step;
      const util::Status st = db->Checkpoint();
      if (util::fault::CrashFired()) {
        result.crashed = true;
        result.step_reached = step;
        return false;
      }
      if (!st.ok()) {
        result.error += "checkpoint failed without a crash: " + st.ToString() +
                        "; ";
      }
      return result.error.empty();
    };
    const auto queries = [&] {
      // Mid-run reads must keep serving whatever happens later.
      ++step;
      std::string err;
      oi::SortedAnswer(db, oi::kQ1, &err);
      oi::SortedAnswer(db, oi::kQ3, &err);
      if (!err.empty()) result.error += "mid-run " + err;
      return result.error.empty();
    };

    const bool completed = [&] {
      if (!oi::Step(db, &shadow, ShadowOp::Create(), &step, &result, [&] {
            return db->CreateTable("t", oi::OracleSchema()).status();
          })) {
        return false;
      }
      if (!oi::Step(db, &shadow, ShadowOp::Define("mn"), &step, &result, [&] {
            return db->Execute("define sma mn select min(d) from t");
          })) {
        return false;
      }
      if (!oi::Step(db, &shadow, ShadowOp::Define("mx"), &step, &result, [&] {
            return db->Execute("define sma mx select max(d) from t");
          })) {
        return false;
      }
      for (int64_t i = 0; i < 40; ++i) {
        if (!insert(i)) return false;
      }
      if (!checkpoint()) return false;
      for (int64_t i = 40; i < 60; ++i) {
        if (!insert(i)) return false;
      }
      if (!oi::Step(db, &shadow, ShadowOp::Update(5, 424242), &step, &result,
                    [&] {
                      return db->Update("t", rids[5], 0,
                                        util::Value::Int64(424242));
                    })) {
        return false;
      }
      if (!oi::Step(db, &shadow, ShadowOp::Delete(7), &step, &result,
                    [&] { return db->Delete("t", rids[7]); })) {
        return false;
      }
      if (!queries()) return false;
      if (!checkpoint()) return false;
      for (int64_t i = 60; i < 70; ++i) {
        if (!insert(i)) return false;
      }
      return queries();
    }();
    if (!result.error.empty()) {
      util::fault::DisarmAll();
      return result;
    }

    if (completed) {
      // The failpoint never reached hit k. A clean close must preserve
      // everything; the oracle then runs at the full horizon.
      util::fault::DisarmAll();
      if (util::Status st = db->Close(); !st.ok()) {
        result.error = "clean close failed: " + st.ToString();
        return result;
      }
      result.flushed_lsn = shadow.max_lsn();
      result.synced_lsn = shadow.max_lsn();
    } else {
      // Kill -9: staged WAL bytes and dirty pages vanish; flushed file
      // bytes survive. flushed_lsn is the exact survival boundary.
      if (util::Status st = db->CrashForTesting(); !st.ok()) {
        result.error = "crash teardown failed: " + st.ToString();
        util::fault::DisarmAll();
        return result;
      }
      result.flushed_lsn = db->wal()->flushed_lsn();
      result.synced_lsn = db->wal()->synced_lsn();
      if (result.synced_lsn > result.flushed_lsn) {
        result.error += "synced_lsn > flushed_lsn; ";
      }
      util::fault::DisarmAll();  // also clears the sticky crashed state
    }
  }

  util::Stopwatch recover_watch;
  util::Result<std::unique_ptr<db::Database>> reopened =
      db::Database::Open(options);
  result.recover_ms = recover_watch.ElapsedSeconds() * 1e3;
  if (!reopened.ok()) {
    result.error +=
        "reopen after crash failed: " + reopened.status().ToString() + "; ";
    return result;
  }
  result.replayed = (*reopened)->durability().replayed_records;
  oracle_internal::CheckRecovered(reopened->get(), shadow, result.flushed_lsn,
                                  &result);
  return result;
}

}  // namespace smadb::testing

#endif  // SMADB_TESTS_RECOVERY_ORACLE_H_
