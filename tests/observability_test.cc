// Observability suite (DESIGN.md §11): metrics registry units, trace-ring
// semantics, and — the load-bearing part — explain-analyze bucket censuses
// checked against grade ground truth across the vectorized predicate
// matrix, in row and batch mode, serial and parallel, including the
// degradation-ladder rerun where the pre-fix code double-counted.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "exec/bucket_source.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "planner/planner.h"
#include "sma/builder.h"
#include "tests/test_util.h"
#include "util/query_context.h"

namespace smadb {
namespace {

using exec::AggSpec;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using plan::AggQuery;
using plan::Planner;
using plan::PlannerOptions;
using plan::PlanKind;
using plan::RunToCompletion;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::Layout;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::QueryContext;
using util::StatusCode;
using util::Value;

// ------------------------------------------------------- metrics units ---

TEST(MetricsTest, CounterSumsAcrossThreads) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::Gauge g;
  g.Set(42);
  g.Add(-2);
  EXPECT_EQ(g.value(), 40);
}

TEST(MetricsTest, HistogramCountSumAndQuantiles) {
  obs::Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.sum(), 500500);
  // Power-of-two buckets: the interpolated median lands inside [256, 1024)
  // (the buckets holding ranks around 500), p99 at the top of the range.
  EXPECT_GE(h.Quantile(0.5), 256.0);
  EXPECT_LE(h.Quantile(0.5), 1024.0);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.99), 1024.0);
  // Empty histogram: quantiles are 0, not NaN.
  obs::Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(MetricsTest, RegistryRegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x_total", "a counter");
  obs::Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  const auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "x_total");
  EXPECT_EQ(snaps[0].value, 3);
}

TEST(MetricsTest, CallbackGaugeSampledAtSnapshot) {
  obs::MetricsRegistry reg;
  std::atomic<int64_t> source{7};
  reg.RegisterCallback("cb", "callback gauge",
                       [&source] { return source.load(); });
  EXPECT_EQ(reg.Snapshot()[0].value, 7);
  source = 9;
  EXPECT_EQ(reg.Snapshot()[0].value, 9);
}

TEST(MetricsTest, RenderPrometheusEmitsTypedSeries) {
  obs::MetricsRegistry reg;
  reg.GetCounter("c_total", "help c")->Add(5);
  reg.GetGauge("g", "help g")->Set(-2);
  reg.GetHistogram("h_us", "help h")->Observe(100);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE c_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("c_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge"), std::string::npos);
  EXPECT_NE(text.find("g -2"), std::string::npos);
  EXPECT_NE(text.find("h_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile"), std::string::npos);
}

// ---------------------------------------------------------- trace ring ---

TEST(TraceTest, RingOverwritesOldestAndKeepsOrder) {
  obs::TraceSink sink(/*capacity=*/4);
  for (uint64_t q = 1; q <= 6; ++q) {
    obs::TraceSpan span(&sink, q, "span" + std::to_string(q));
  }
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "span3");  // 1 and 2 overwritten
  EXPECT_EQ(events.back().name, "span6");
}

TEST(TraceTest, DumpJsonIsAnArrayOfSpans) {
  obs::TraceSink sink(8);
  {
    obs::TraceSpan span(&sink, 1, "parse");
    span.set_note("with \"quotes\"");
  }
  const std::string json = sink.DumpJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"span\": \"parse\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos) << json;
}

TEST(TraceTest, NullSinkSpanIsANoop) {
  obs::TraceSpan span(nullptr, 1, "nothing");  // must not crash
}

// ------------------------------------- census vs grade ground truth ------

struct Census {
  uint64_t q = 0, d = 0, a = 0;
  bool operator==(const Census& o) const {
    return q == o.q && d == o.d && a == o.a;
  }
};

// Independent grade walk — the same machinery the planner's Census uses,
// exercised directly so the profile is checked against first principles.
Census GroundTruth(storage::Table* table, const PredicatePtr& pred,
                   const sma::SmaSet* smas) {
  exec::BucketSource source(table, pred, smas);
  exec::BucketUnit unit;
  Census c;
  while (Unwrap(source.NextGraded(&unit))) {
    switch (unit.grade) {
      case sma::Grade::kQualifies: ++c.q; break;
      case sma::Grade::kDisqualifies: ++c.d; break;
      case sma::Grade::kAmbivalent: ++c.a; break;
    }
  }
  return c;
}

const obs::OperatorProfile* FindCensusNode(const obs::OperatorProfile* node) {
  if (node->qualifying() + node->disqualifying() + node->ambivalent() > 0) {
    return node;
  }
  for (const obs::OperatorProfile* child : node->children()) {
    if (const auto* hit = FindCensusNode(child)) return hit;
  }
  return nullptr;
}

const obs::OperatorProfile* FindCensusNode(const obs::QueryProfile& profile) {
  for (const obs::OperatorProfile* root : profile.roots()) {
    if (const auto* hit = FindCensusNode(root)) return hit;
  }
  return nullptr;
}

struct ProfileCensusTest : ::testing::Test {
  void Setup(const std::string& name) {
    table = MakeSyntheticTable(&db, 2000, Layout::kNoisy, 21, 1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, sma::SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, sma::SmaSpec::Count("cnt", {3})))));
    query.table = table;
    query.group_by = {3};
    query.aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt")};
  }

  std::vector<PredicatePtr> PredicateMatrix() const {
    const auto& schema = table->schema();
    return {
        Predicate::True(),
        Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                    Value::MakeDate(util::Date(125)))),
        Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kGt,
                                    Value::MakeDate(util::Date(500)))),
        Predicate::And(
            Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                        Value::MakeDate(util::Date(125)))),
            Unwrap(Predicate::AtomString(&schema, "grp", CmpOp::kEq, "A"))),
        Predicate::Or(
            Unwrap(Predicate::AtomConst(&schema, "k", CmpOp::kLt,
                                        Value::Int64(64))),
            Unwrap(
                Predicate::AtomString(&schema, "tag", CmpOp::kEq, "RAIL"))),
    };
  }

  TestDb db{16384};
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  AggQuery query;
};

// The tentpole invariant: for every predicate shape, execution mode, and
// degree of parallelism, the profile's q/d/a counts equal the independent
// grade walk, and q+d+a covers every bucket exactly once.
TEST_F(ProfileCensusTest, EveryPlanShapeMatchesGradeGroundTruth) {
  Setup("pc1");
  const auto preds = PredicateMatrix();
  for (size_t p = 0; p < preds.size(); ++p) {
    query.pred = preds[p];
    const Census want = GroundTruth(table, query.pred, smas.get());
    ASSERT_EQ(want.q + want.d + want.a, table->num_buckets());
    for (const size_t batch_size : {size_t{0}, size_t{256}}) {
      for (const size_t dop : {size_t{1}, size_t{4}}) {
        for (const PlanKind kind :
             {PlanKind::kSmaScanAggr, PlanKind::kSmaGAggr}) {
          SCOPED_TRACE(::testing::Message()
                       << "pred " << p << " batch=" << batch_size
                       << " dop=" << dop << " kind "
                       << plan::PlanKindToString(kind));
          PlannerOptions options;
          options.batch_size = batch_size;
          Planner planner(smas.get(), options);
          auto op = Unwrap(planner.Build(query, kind, dop));
          obs::QueryProfile profile;
          QueryContext ctx;
          ctx.set_profile(&profile);
          op->BindContext(&ctx);
          Unwrap(RunToCompletion(op.get(), &ctx));
          const obs::OperatorProfile* node = FindCensusNode(profile);
          ASSERT_NE(node, nullptr);
          const Census got{node->qualifying(), node->disqualifying(),
                           node->ambivalent()};
          EXPECT_EQ(got.q, want.q) << node->name();
          EXPECT_EQ(got.d, want.d) << node->name();
          EXPECT_EQ(got.a, want.a) << node->name();
        }
      }
    }
  }
}

// Satellite-2 regression: a vectorized attempt that dies on its memory
// budget merges each worker's partial census exactly once into the FAILED
// node, and the row-mode rerun registers a fresh node whose census again
// equals ground truth — no double counting across the ladder.
TEST_F(ProfileCensusTest, DegradedRerunCountsEachAttemptOnce) {
  Setup("pc2");
  query.pred = Unwrap(Predicate::AtomConst(
      &table->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(125))));
  const Census want = GroundTruth(table, query.pred, smas.get());
  for (const size_t dop : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(::testing::Message() << "dop " << dop);
    PlannerOptions options;
    options.degree_of_parallelism = dop;
    ASSERT_GT(options.batch_size, 0u) << "rung 2 needs a vectorized plan";
    Planner planner(smas.get(), options);
    obs::QueryProfile profile;
    // Budget too small for a ColumnBatch, fine for row-mode group state.
    QueryContext ctx(/*global_memory=*/nullptr, /*memory_limit=*/6 * 1024);
    ctx.set_profile(&profile);
    const auto run = planner.Execute(query, &ctx);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_NE(run->plan.explanation.find("row mode"), std::string::npos)
        << run->plan.explanation;
    // The ladder left a demotion event in the profile.
    bool saw_event = false;
    for (const std::string& e : profile.events()) {
      saw_event |= e.find("row mode") != std::string::npos;
    }
    EXPECT_TRUE(saw_event);
    // Exactly one failed attempt and one successful one, each with its own
    // node; the successful node's census equals ground truth exactly.
    size_t failed_nodes = 0, exact_nodes = 0;
    for (const obs::OperatorProfile* root : profile.roots()) {
      if (const obs::OperatorProfile* node = FindCensusNode(root)) {
        const Census got{node->qualifying(), node->disqualifying(),
                         node->ambivalent()};
        EXPECT_LE(got.q + got.d + got.a, table->num_buckets())
            << node->name() << " over-counted";
        if (node->failed()) {
          ++failed_nodes;
        } else if (got == want) {
          ++exact_nodes;
        }
      } else if (root->failed()) {
        ++failed_nodes;  // died before tallying any bucket
      }
    }
    EXPECT_GE(failed_nodes, 1u);
    EXPECT_EQ(exact_nodes, 1u);
  }
}

// ------------------------------------------------------ Database level ---

db::Database* MakeDatabase(db::DatabaseOptions options = {}) {
  auto* database = new db::Database(options);
  auto* table = Unwrap(database->CreateTable("t", testing::SyntheticSchema()));
  util::Rng rng(11);
  static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
  storage::TupleBuffer t(&table->schema());
  for (int64_t i = 0; i < 2000; ++i) {
    t.SetInt64(0, i);
    t.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
    t.SetDecimal(2, util::Decimal(i * 3));
    const char grp = static_cast<char>('A' + rng.Uniform(0, 2));
    t.SetString(3, std::string_view(&grp, 1));
    t.SetString(4, kTags[rng.Uniform(0, 3)]);
    ExpectOk(database->Insert("t", t));
  }
  ExpectOk(database->Execute("define sma mind select min(d) from t"));
  ExpectOk(database->Execute("define sma maxd select max(d) from t"));
  return database;
}

TEST(DatabaseObsTest, ExplainAnalyzeCensusCoversTheTableAndPoolAgrees) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  storage::Table* table = Unwrap(database->GetTable("t"));
  const storage::PoolStats before = database->pool()->stats();
  // Day 14 of 0..250: selective enough that Choose picks an SMA plan
  // (the census only exists when buckets are graded).
  const auto result = Unwrap(database->Query(
      "explain analyze select count(*) from t where d <= '1970-01-15'"));
  const storage::PoolStats after = database->pool()->stats();

  ASSERT_FALSE(result.rows.empty());
  std::string report;
  for (const auto& row : result.rows) {
    report += row.AsRef().GetValue(0).AsString();
    report += '\n';
  }
  EXPECT_NE(report.find("operators:"), std::string::npos) << report;
  EXPECT_NE(report.find("wall="), std::string::npos) << report;
  EXPECT_NE(report.find("phases:"), std::string::npos) << report;

  const obs::QueryProfile* profile = database->last_profile();
  ASSERT_NE(profile, nullptr);
  const obs::OperatorProfile* node = FindCensusNode(*profile);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->qualifying() + node->disqualifying() + node->ambivalent(),
            table->num_buckets());
  EXPECT_GT(node->wall_ns(), 0u);
  // The profile's pool figures are the same deltas we observe outside.
  EXPECT_EQ(profile->pool_hits(), after.hits - before.hits);
  EXPECT_EQ(profile->pool_misses(), after.misses - before.misses);
  EXPECT_GT(profile->pool_hits() + profile->pool_misses(), 0u);

  // And `show profile` replays the same report.
  const auto replay = Unwrap(database->Query("show profile"));
  EXPECT_EQ(replay.rows.size(), result.rows.size());
}

TEST(DatabaseObsTest, QueryCountersAndLatencyHistogramAdvance) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  Unwrap(database->Query("select count(*) from t"));
  EXPECT_FALSE(database->Query("select count(*) from missing").ok());
  int64_t total = -1, failed = -1, hist_count = -1;
  for (const auto& s : database->metrics()->Snapshot()) {
    if (s.name == "smadb_queries_total") total = s.value;
    if (s.name == "smadb_queries_failed_total") failed = s.value;
    if (s.name == "smadb_query_latency_us") hist_count = s.count;
  }
  EXPECT_EQ(total, 2);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(hist_count, 2);
  const std::string prom = database->ExportMetrics();
  EXPECT_NE(prom.find("# TYPE smadb_queries_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("smadb_pool_hits"), std::string::npos);
}

TEST(DatabaseObsTest, ShowStatementsAndTrace) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  Unwrap(database->Query("select count(*) from t"));

  const auto metrics = Unwrap(database->Query("show metrics"));
  ASSERT_FALSE(metrics.rows.empty());
  std::string joined;
  for (const auto& row : metrics.rows) {
    joined += row.AsRef().GetValue(0).AsString();
    joined += '\n';
  }
  EXPECT_NE(joined.find("smadb_queries_total = 1"), std::string::npos)
      << joined;

  const auto trace = Unwrap(database->Query("show trace"));
  ASSERT_FALSE(trace.rows.empty());
  const std::string first = trace.rows[0].AsRef().GetValue(0).AsString();
  EXPECT_NE(first.find("[q"), std::string::npos) << first;
  EXPECT_NE(database->DumpTrace().find("\"span\": \"execute\""),
            std::string::npos);

  // `show profile` before any explain analyze: a friendly hint, not rows.
  std::unique_ptr<db::Database> fresh(new db::Database());
  const auto none = Unwrap(fresh->Query("show profile"));
  ASSERT_EQ(none.rows.size(), 1u);
  EXPECT_NE(none.rows[0].AsRef().GetValue(0).AsString().find("no profiled"),
            std::string::npos);

  EXPECT_FALSE(database->Query("show nonsense").ok());
}

TEST(DatabaseObsTest, DisabledMetricsLeaveRegistryAndTraceEmpty) {
  db::DatabaseOptions options;
  options.enable_metrics = false;
  std::unique_ptr<db::Database> database(MakeDatabase(options));
  Unwrap(database->Query("select count(*) from t"));
  EXPECT_TRUE(database->metrics()->Snapshot().empty());
  EXPECT_TRUE(database->trace()->Events().empty());
  // explain analyze still profiles — opt-in per statement, not per DB.
  const auto result =
      Unwrap(database->Query("explain analyze select count(*) from t"));
  EXPECT_FALSE(result.rows.empty());
  EXPECT_NE(database->last_profile(), nullptr);
}

TEST(DatabaseObsTest, SharedRegistryIsFedInstead) {
  obs::MetricsRegistry shared;
  db::DatabaseOptions options;
  options.metrics_registry = &shared;
  {
    std::unique_ptr<db::Database> database(MakeDatabase(options));
    Unwrap(database->Query("select count(*) from t"));
    bool found = false;
    for (const auto& s : shared.Snapshot()) {
      found |= s.name == "smadb_queries_total" && s.value == 1;
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace smadb
