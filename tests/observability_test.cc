// Observability suite (DESIGN.md §11): metrics registry units, trace-ring
// semantics, and — the load-bearing part — explain-analyze bucket censuses
// checked against grade ground truth across the vectorized predicate
// matrix, in row and batch mode, serial and parallel, including the
// degradation-ladder rerun where the pre-fix code double-counted.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "exec/bucket_source.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "planner/planner.h"
#include "sma/builder.h"
#include "tests/test_util.h"
#include "util/query_context.h"
#include "util/string_util.h"

namespace smadb {
namespace {

using exec::AggSpec;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using plan::AggQuery;
using plan::Planner;
using plan::PlannerOptions;
using plan::PlanKind;
using plan::RunToCompletion;
using testing::AddMinMaxSmas;
using testing::ExpectOk;
using testing::Layout;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::QueryContext;
using util::StatusCode;
using util::Value;

// ------------------------------------------------------- metrics units ---

TEST(MetricsTest, CounterSumsAcrossThreads) {
  obs::Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 80000);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::Gauge g;
  g.Set(42);
  g.Add(-2);
  EXPECT_EQ(g.value(), 40);
}

TEST(MetricsTest, HistogramCountSumAndQuantiles) {
  obs::Histogram h;
  for (int64_t v = 1; v <= 1000; ++v) h.Observe(v);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_EQ(h.sum(), 500500);
  // Power-of-two buckets: the interpolated median lands inside [256, 1024)
  // (the buckets holding ranks around 500), p99 at the top of the range.
  EXPECT_GE(h.Quantile(0.5), 256.0);
  EXPECT_LE(h.Quantile(0.5), 1024.0);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.99), 1024.0);
  // Empty histogram: quantiles are 0, not NaN.
  obs::Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);
}

TEST(MetricsTest, RegistryRegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x_total", "a counter");
  obs::Counter* b = reg.GetCounter("x_total");
  EXPECT_EQ(a, b);
  a->Add(3);
  const auto snaps = reg.Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "x_total");
  EXPECT_EQ(snaps[0].value, 3);
}

TEST(MetricsTest, CallbackGaugeSampledAtSnapshot) {
  obs::MetricsRegistry reg;
  std::atomic<int64_t> source{7};
  reg.RegisterCallback("cb", "callback gauge",
                       [&source] { return source.load(); });
  EXPECT_EQ(reg.Snapshot()[0].value, 7);
  source = 9;
  EXPECT_EQ(reg.Snapshot()[0].value, 9);
}

TEST(MetricsTest, RenderPrometheusEmitsTypedSeries) {
  obs::MetricsRegistry reg;
  reg.GetCounter("c_total", "help c")->Add(5);
  reg.GetGauge("g", "help g")->Set(-2);
  reg.GetHistogram("h_us", "help h")->Observe(100);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE c_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("c_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge"), std::string::npos);
  EXPECT_NE(text.find("g -2"), std::string::npos);
  EXPECT_NE(text.find("h_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("quantile"), std::string::npos);
}

// ---------------------------------------------------------- trace ring ---

TEST(TraceTest, RingOverwritesOldestAndKeepsOrder) {
  obs::TraceSink sink(/*capacity=*/4);
  for (uint64_t q = 1; q <= 6; ++q) {
    obs::TraceSpan span(&sink, q, "span" + std::to_string(q));
  }
  const auto events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "span3");  // 1 and 2 overwritten
  EXPECT_EQ(events.back().name, "span6");
}

TEST(TraceTest, DumpJsonIsAnArrayOfSpans) {
  obs::TraceSink sink(8);
  {
    obs::TraceSpan span(&sink, 1, "parse");
    span.set_note("with \"quotes\"");
  }
  const std::string json = sink.DumpJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"span\": \"parse\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos) << json;
}

TEST(TraceTest, NullSinkSpanIsANoop) {
  obs::TraceSpan span(nullptr, 1, "nothing");  // must not crash
}

// ------------------------------------- census vs grade ground truth ------

struct Census {
  uint64_t q = 0, d = 0, a = 0;
  bool operator==(const Census& o) const {
    return q == o.q && d == o.d && a == o.a;
  }
};

// Independent grade walk — the same machinery the planner's Census uses,
// exercised directly so the profile is checked against first principles.
Census GroundTruth(storage::Table* table, const PredicatePtr& pred,
                   const sma::SmaSet* smas) {
  exec::BucketSource source(table, pred, smas);
  exec::BucketUnit unit;
  Census c;
  while (Unwrap(source.NextGraded(&unit))) {
    switch (unit.grade) {
      case sma::Grade::kQualifies: ++c.q; break;
      case sma::Grade::kDisqualifies: ++c.d; break;
      case sma::Grade::kAmbivalent: ++c.a; break;
    }
  }
  return c;
}

const obs::OperatorProfile* FindCensusNode(const obs::OperatorProfile* node) {
  if (node->qualifying() + node->disqualifying() + node->ambivalent() > 0) {
    return node;
  }
  for (const obs::OperatorProfile* child : node->children()) {
    if (const auto* hit = FindCensusNode(child)) return hit;
  }
  return nullptr;
}

const obs::OperatorProfile* FindCensusNode(const obs::QueryProfile& profile) {
  for (const obs::OperatorProfile* root : profile.roots()) {
    if (const auto* hit = FindCensusNode(root)) return hit;
  }
  return nullptr;
}

struct ProfileCensusTest : ::testing::Test {
  void Setup(const std::string& name) {
    table = MakeSyntheticTable(&db, 2000, Layout::kNoisy, 21, 1, name);
    smas = std::make_unique<sma::SmaSet>(table);
    AddMinMaxSmas(table, smas.get(), "d");
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, sma::SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(smas->Add(
        Unwrap(sma::BuildSma(table, sma::SmaSpec::Count("cnt", {3})))));
    query.table = table;
    query.group_by = {3};
    query.aggs = {AggSpec::Sum(v, "sum_v"), AggSpec::Count("cnt")};
  }

  std::vector<PredicatePtr> PredicateMatrix() const {
    const auto& schema = table->schema();
    return {
        Predicate::True(),
        Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                    Value::MakeDate(util::Date(125)))),
        Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kGt,
                                    Value::MakeDate(util::Date(500)))),
        Predicate::And(
            Unwrap(Predicate::AtomConst(&schema, "d", CmpOp::kLe,
                                        Value::MakeDate(util::Date(125)))),
            Unwrap(Predicate::AtomString(&schema, "grp", CmpOp::kEq, "A"))),
        Predicate::Or(
            Unwrap(Predicate::AtomConst(&schema, "k", CmpOp::kLt,
                                        Value::Int64(64))),
            Unwrap(
                Predicate::AtomString(&schema, "tag", CmpOp::kEq, "RAIL"))),
    };
  }

  TestDb db{16384};
  storage::Table* table = nullptr;
  std::unique_ptr<sma::SmaSet> smas;
  AggQuery query;
};

// The tentpole invariant: for every predicate shape, execution mode, and
// degree of parallelism, the profile's q/d/a counts equal the independent
// grade walk, and q+d+a covers every bucket exactly once.
TEST_F(ProfileCensusTest, EveryPlanShapeMatchesGradeGroundTruth) {
  Setup("pc1");
  const auto preds = PredicateMatrix();
  for (size_t p = 0; p < preds.size(); ++p) {
    query.pred = preds[p];
    const Census want = GroundTruth(table, query.pred, smas.get());
    ASSERT_EQ(want.q + want.d + want.a, table->num_buckets());
    for (const size_t batch_size : {size_t{0}, size_t{256}}) {
      for (const size_t dop : {size_t{1}, size_t{4}}) {
        for (const PlanKind kind :
             {PlanKind::kSmaScanAggr, PlanKind::kSmaGAggr}) {
          SCOPED_TRACE(::testing::Message()
                       << "pred " << p << " batch=" << batch_size
                       << " dop=" << dop << " kind "
                       << plan::PlanKindToString(kind));
          PlannerOptions options;
          options.batch_size = batch_size;
          Planner planner(smas.get(), options);
          auto op = Unwrap(planner.Build(query, kind, dop));
          obs::QueryProfile profile;
          QueryContext ctx;
          ctx.set_profile(&profile);
          op->BindContext(&ctx);
          Unwrap(RunToCompletion(op.get(), &ctx));
          const obs::OperatorProfile* node = FindCensusNode(profile);
          ASSERT_NE(node, nullptr);
          const Census got{node->qualifying(), node->disqualifying(),
                           node->ambivalent()};
          EXPECT_EQ(got.q, want.q) << node->name();
          EXPECT_EQ(got.d, want.d) << node->name();
          EXPECT_EQ(got.a, want.a) << node->name();
        }
      }
    }
  }
}

// Satellite-2 regression: a vectorized attempt that dies on its memory
// budget merges each worker's partial census exactly once into the FAILED
// node, and the row-mode rerun registers a fresh node whose census again
// equals ground truth — no double counting across the ladder.
TEST_F(ProfileCensusTest, DegradedRerunCountsEachAttemptOnce) {
  Setup("pc2");
  query.pred = Unwrap(Predicate::AtomConst(
      &table->schema(), "d", CmpOp::kLe, Value::MakeDate(util::Date(125))));
  const Census want = GroundTruth(table, query.pred, smas.get());
  for (const size_t dop : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(::testing::Message() << "dop " << dop);
    PlannerOptions options;
    options.degree_of_parallelism = dop;
    ASSERT_GT(options.batch_size, 0u) << "rung 2 needs a vectorized plan";
    Planner planner(smas.get(), options);
    obs::QueryProfile profile;
    // Budget too small for a ColumnBatch, fine for row-mode group state.
    QueryContext ctx(/*global_memory=*/nullptr, /*memory_limit=*/6 * 1024);
    ctx.set_profile(&profile);
    const auto run = planner.Execute(query, &ctx);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_NE(run->plan.explanation.find("row mode"), std::string::npos)
        << run->plan.explanation;
    // The ladder left a demotion event in the profile.
    bool saw_event = false;
    for (const std::string& e : profile.events()) {
      saw_event |= e.find("row mode") != std::string::npos;
    }
    EXPECT_TRUE(saw_event);
    // Exactly one failed attempt and one successful one, each with its own
    // node; the successful node's census equals ground truth exactly.
    size_t failed_nodes = 0, exact_nodes = 0;
    for (const obs::OperatorProfile* root : profile.roots()) {
      if (const obs::OperatorProfile* node = FindCensusNode(root)) {
        const Census got{node->qualifying(), node->disqualifying(),
                         node->ambivalent()};
        EXPECT_LE(got.q + got.d + got.a, table->num_buckets())
            << node->name() << " over-counted";
        if (node->failed()) {
          ++failed_nodes;
        } else if (got == want) {
          ++exact_nodes;
        }
      } else if (root->failed()) {
        ++failed_nodes;  // died before tallying any bucket
      }
    }
    EXPECT_GE(failed_nodes, 1u);
    EXPECT_EQ(exact_nodes, 1u);
  }
}

// ------------------------------------------------------ Database level ---

db::Database* MakeDatabase(db::DatabaseOptions options = {}) {
  auto* database = new db::Database(options);
  auto* table = Unwrap(database->CreateTable("t", testing::SyntheticSchema()));
  util::Rng rng(11);
  static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
  storage::TupleBuffer t(&table->schema());
  for (int64_t i = 0; i < 2000; ++i) {
    t.SetInt64(0, i);
    t.SetDate(1, util::Date(static_cast<int32_t>(i / 8)));
    t.SetDecimal(2, util::Decimal(i * 3));
    const char grp = static_cast<char>('A' + rng.Uniform(0, 2));
    t.SetString(3, std::string_view(&grp, 1));
    t.SetString(4, kTags[rng.Uniform(0, 3)]);
    ExpectOk(database->Insert("t", t));
  }
  ExpectOk(database->Execute("define sma mind select min(d) from t"));
  ExpectOk(database->Execute("define sma maxd select max(d) from t"));
  return database;
}

TEST(DatabaseObsTest, ExplainAnalyzeCensusCoversTheTableAndPoolAgrees) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  storage::Table* table = Unwrap(database->GetTable("t"));
  const storage::PoolStats before = database->pool()->stats();
  // Day 14 of 0..250: selective enough that Choose picks an SMA plan
  // (the census only exists when buckets are graded).
  const auto result = Unwrap(database->Query(
      "explain analyze select count(*) from t where d <= '1970-01-15'"));
  const storage::PoolStats after = database->pool()->stats();

  ASSERT_FALSE(result.rows.empty());
  std::string report;
  for (const auto& row : result.rows) {
    report += row.AsRef().GetValue(0).AsString();
    report += '\n';
  }
  EXPECT_NE(report.find("operators:"), std::string::npos) << report;
  EXPECT_NE(report.find("wall="), std::string::npos) << report;
  EXPECT_NE(report.find("phases:"), std::string::npos) << report;

  const obs::QueryProfile* profile = database->last_profile();
  ASSERT_NE(profile, nullptr);
  const obs::OperatorProfile* node = FindCensusNode(*profile);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->qualifying() + node->disqualifying() + node->ambivalent(),
            table->num_buckets());
  EXPECT_GT(node->wall_ns(), 0u);
  // The profile's pool figures are the same deltas we observe outside.
  EXPECT_EQ(profile->pool_hits(), after.hits - before.hits);
  EXPECT_EQ(profile->pool_misses(), after.misses - before.misses);
  EXPECT_GT(profile->pool_hits() + profile->pool_misses(), 0u);

  // And `show profile` replays the same report.
  const auto replay = Unwrap(database->Query("show profile"));
  EXPECT_EQ(replay.rows.size(), result.rows.size());
}

TEST(DatabaseObsTest, QueryCountersAndLatencyHistogramAdvance) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  Unwrap(database->Query("select count(*) from t"));
  EXPECT_FALSE(database->Query("select count(*) from missing").ok());
  int64_t total = -1, failed = -1, hist_count = -1;
  for (const auto& s : database->metrics()->Snapshot()) {
    if (s.name == "smadb_queries_total") total = s.value;
    if (s.name == "smadb_queries_failed_total") failed = s.value;
    if (s.name == "smadb_query_latency_us") hist_count = s.count;
  }
  EXPECT_EQ(total, 2);
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(hist_count, 2);
  const std::string prom = database->ExportMetrics();
  EXPECT_NE(prom.find("# TYPE smadb_queries_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("smadb_pool_hits"), std::string::npos);
}

TEST(DatabaseObsTest, ShowStatementsAndTrace) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  Unwrap(database->Query("select count(*) from t"));

  const auto metrics = Unwrap(database->Query("show metrics"));
  ASSERT_FALSE(metrics.rows.empty());
  std::string joined;
  for (const auto& row : metrics.rows) {
    joined += row.AsRef().GetValue(0).AsString();
    joined += '\n';
  }
  EXPECT_NE(joined.find("smadb_queries_total = 1"), std::string::npos)
      << joined;

  const auto trace = Unwrap(database->Query("show trace"));
  ASSERT_FALSE(trace.rows.empty());
  const std::string first = trace.rows[0].AsRef().GetValue(0).AsString();
  EXPECT_NE(first.find("[q"), std::string::npos) << first;
  EXPECT_NE(database->DumpTrace().find("\"span\": \"execute\""),
            std::string::npos);

  // `show profile` before any explain analyze: a friendly hint, not rows.
  std::unique_ptr<db::Database> fresh(new db::Database());
  const auto none = Unwrap(fresh->Query("show profile"));
  ASSERT_EQ(none.rows.size(), 1u);
  EXPECT_NE(none.rows[0].AsRef().GetValue(0).AsString().find("no profiled"),
            std::string::npos);

  EXPECT_FALSE(database->Query("show nonsense").ok());
}

TEST(DatabaseObsTest, DisabledMetricsLeaveRegistryAndTraceEmpty) {
  db::DatabaseOptions options;
  options.enable_metrics = false;
  std::unique_ptr<db::Database> database(MakeDatabase(options));
  Unwrap(database->Query("select count(*) from t"));
  EXPECT_TRUE(database->metrics()->Snapshot().empty());
  EXPECT_TRUE(database->trace()->Events().empty());
  // explain analyze still profiles — opt-in per statement, not per DB.
  const auto result =
      Unwrap(database->Query("explain analyze select count(*) from t"));
  EXPECT_FALSE(result.rows.empty());
  EXPECT_NE(database->last_profile(), nullptr);
}

TEST(DatabaseObsTest, SharedRegistryIsFedInstead) {
  obs::MetricsRegistry shared;
  db::DatabaseOptions options;
  options.metrics_registry = &shared;
  {
    std::unique_ptr<db::Database> database(MakeDatabase(options));
    Unwrap(database->Query("select count(*) from t"));
    bool found = false;
    for (const auto& s : shared.Snapshot()) {
      found |= s.name == "smadb_queries_total" && s.value == 1;
    }
    EXPECT_TRUE(found);
  }
}

// -------------------------------------------------- structured logging ---

/// A ring-only logger (no stderr noise from tests).
obs::Logger::Options QuietLog(obs::LogLevel min_level = obs::LogLevel::kDebug,
                              int max_per_sec = 1'000'000) {
  obs::Logger::Options o;
  o.min_level = min_level;
  o.max_per_sec = max_per_sec;
  o.sink = nullptr;
  return o;
}

TEST(LoggerTest, LogfmtLineHasTimestampLevelEventAndEscapedFields) {
  obs::Logger log(QuietLog());
  log.Info("checkpoint", {{"file", "wal.log"},
                          {"bytes", int64_t{4096}},
                          {"note", "has space and \"quote\""},
                          {"ratio", 0.5}});
  const auto tail = log.Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  const std::string& line = tail[0];
  EXPECT_NE(line.find("ts="), std::string::npos) << line;
  EXPECT_NE(line.find("level=info"), std::string::npos) << line;
  EXPECT_NE(line.find("event=checkpoint"), std::string::npos) << line;
  EXPECT_NE(line.find("file=wal.log"), std::string::npos) << line;
  EXPECT_NE(line.find("bytes=4096"), std::string::npos) << line;
  // Values with spaces/quotes are quoted with escapes, logfmt-style.
  EXPECT_NE(line.find("note=\"has space and \\\"quote\\\"\""),
            std::string::npos)
      << line;
}

TEST(LoggerTest, JsonModeEmitsOneObjectPerLine) {
  auto opts = QuietLog();
  opts.json = true;
  obs::Logger log(opts);
  log.Warn("slow_query", {{"query", uint64_t{7}}, {"sql", "select \"x\""}});
  const auto tail = log.Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  const std::string& line = tail[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\": \"warn\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"event\": \"slow_query\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"sql\": \"select \\\"x\\\"\""), std::string::npos)
      << line;
}

TEST(LoggerTest, LevelGateDropsBelowMinAndIsRuntimeAdjustable) {
  obs::Logger log(QuietLog(obs::LogLevel::kWarn));
  log.Debug("d", {});
  log.Info("i", {});
  log.Warn("w", {});
  EXPECT_EQ(log.emitted(), 1u);
  log.set_min_level(obs::LogLevel::kDebug);
  log.Debug("d2", {});
  EXPECT_EQ(log.emitted(), 2u);
  const auto tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_NE(tail[0].find("event=w"), std::string::npos);
  EXPECT_NE(tail[1].find("event=d2"), std::string::npos);
}

TEST(LoggerTest, RateLimitDropsInfoButNeverWarn) {
  obs::Logger log(QuietLog(obs::LogLevel::kDebug, /*max_per_sec=*/5));
  for (int i = 0; i < 50; ++i) log.Info("chatty", {{"i", i}});
  // The 50 emits may straddle one second boundary, so at most two windows'
  // worth can get through.
  EXPECT_LE(log.emitted(), 10u);
  EXPECT_GE(log.dropped(), 40u);
  // WARN and above bypass the limiter: operators must see every one.
  const uint64_t before = log.emitted();
  for (int i = 0; i < 20; ++i) log.Warn("important", {{"i", i}});
  EXPECT_EQ(log.emitted(), before + 20);
}

TEST(LoggerTest, RingIsBoundedAndKeepsTheNewest) {
  auto opts = QuietLog();
  opts.ring_capacity = 4;
  obs::Logger log(opts);
  for (int i = 0; i < 10; ++i) log.Info("e", {{"i", i}});
  const auto tail = log.Tail(100);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_NE(tail.back().find("i=9"), std::string::npos);
  EXPECT_NE(tail.front().find("i=6"), std::string::npos);
}

// ------------------------------------------------ live query registry ---

TEST(QueryRegistryTest, RegisterSnapshotKillUnregister) {
  obs::QueryRegistry reg;
  auto token = std::make_shared<util::CancelToken>();
  reg.Register(7, 0xdeadbeef, 3, "select 1", token, nullptr);
  EXPECT_EQ(reg.size(), 1u);

  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].query_id, 7u);
  EXPECT_EQ(snap[0].trace_id, 0xdeadbeefu);
  EXPECT_EQ(snap[0].session_id, 3u);
  EXPECT_EQ(snap[0].sql, "select 1");
  EXPECT_EQ(snap[0].phase, "admission");
  EXPECT_FALSE(snap[0].cancel_requested);

  reg.SetPhase(7, "execute");
  EXPECT_EQ(reg.Snapshot()[0].phase, "execute");

  // Kill trips the shared token; the registry keeps the entry until the
  // query unwinds and unregisters itself.
  EXPECT_TRUE(reg.Kill(7));
  EXPECT_TRUE(token->cancel_requested());
  EXPECT_TRUE(reg.Snapshot()[0].cancel_requested);

  reg.Unregister(7);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_FALSE(reg.Kill(7));  // gone: kill reports not-found
}

TEST(QueryRegistryTest, KillIsSafeAfterQueryFinishes) {
  // The registry holds a shared_ptr to the token, so a Kill racing the
  // query's exit either finds the entry (and cancels a token that nothing
  // reads anymore — harmless) or misses it (returns false). Simulate the
  // "snapshot taken, query exits, kill fires" interleaving.
  obs::QueryRegistry reg;
  auto token = std::make_shared<util::CancelToken>();
  reg.Register(1, 0, 0, "select 1", token, nullptr);
  auto snap = reg.Snapshot();
  reg.Unregister(1);
  token.reset();  // the query's context is gone too
  EXPECT_FALSE(reg.Kill(snap[0].query_id));
}

TEST(QueryRegistryTest, GuardRegistersAndUnregistersRaii) {
  obs::QueryRegistry reg;
  auto token = std::make_shared<util::CancelToken>();
  {
    obs::QueryRegistry::Guard live(&reg, 42, 0xabc, 1, "select g from t",
                                   token, nullptr);
    EXPECT_EQ(reg.size(), 1u);
    live.SetPhase("execute");
    EXPECT_EQ(reg.Snapshot()[0].phase, "execute");
  }
  EXPECT_EQ(reg.size(), 0u);
  {
    obs::QueryRegistry::Guard noop(nullptr, 1, 0, 0, "x", token, nullptr);
    noop.SetPhase("parse");  // must not crash
  }
}

TEST(QueryRegistryTest, DumpJsonEscapesSqlAndListsEveryEntry) {
  obs::QueryRegistry reg;
  auto token = std::make_shared<util::CancelToken>();
  reg.Register(1, 0x1f, 2, "select \"g\"\nfrom t", token, nullptr);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"query\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace\": \"1f\""), std::string::npos) << json;
  EXPECT_NE(json.find("select \\\"g\\\"\\nfrom t"), std::string::npos)
      << json;
  reg.Unregister(1);
  EXPECT_EQ(reg.DumpJson(), "[]");
}

// ---------------------------------------------- end-to-end trace ids ---

TEST(TraceIdTest, SpanProfileAndDumpJsonCarryTheId) {
  obs::TraceSink sink(8);
  { obs::TraceSpan span(&sink, 3, "execute", 0xdeadbeef); }
  const std::string json = sink.DumpJson();
  EXPECT_NE(json.find("\"trace\": \"deadbeef\""), std::string::npos) << json;

  obs::QueryProfile profile(3, 0xdeadbeef);
  EXPECT_EQ(profile.trace_id(), 0xdeadbeefu);
  bool saw = false;
  for (const std::string& line : profile.Render()) {
    saw |= line.find("trace=deadbeef") != std::string::npos;
  }
  EXPECT_TRUE(saw);
}

TEST(TraceIdTest, TracePrefixThreadsThroughProfileSpansAndShowTrace) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  const auto result = Unwrap(database->Query(
      "trace deadbeef explain analyze select count(*) from t"));
  std::string report;
  for (const auto& row : result.rows) {
    report += row.AsRef().GetValue(0).AsString();
    report += '\n';
  }
  EXPECT_NE(report.find("trace=deadbeef"), std::string::npos) << report;
  EXPECT_NE(database->DumpTrace().find("\"trace\": \"deadbeef\""),
            std::string::npos);
  const auto trace = Unwrap(database->Query("show trace"));
  bool saw = false;
  for (const auto& row : trace.rows) {
    saw |= row.AsRef().GetValue(0).AsString().find("tdeadbeef") !=
           std::string::npos;
  }
  EXPECT_TRUE(saw);

  // Malformed prefixes are rejected with a typed error, never half-parsed.
  EXPECT_EQ(database->Query("trace xyz select 1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(database->Query("trace deadbeef").status().code(),
            StatusCode::kInvalidArgument);
}

/// Pins the /debug/trace (and show trace json) schema: an array of objects
/// with exactly query / trace / span / start_us / duration_us [/ note], in
/// that order. The dashboards parse this; drift is a break.
void ExpectTraceJsonSchema(const std::string& json) {
  ASSERT_GE(json.size(), 2u) << json;
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  size_t at = 1;
  int entries = 0;
  while (true) {
    const size_t open = json.find('{', at);
    if (open == std::string::npos) break;
    const size_t close = json.find('}', open);
    ASSERT_NE(close, std::string::npos) << json;
    const std::string obj = json.substr(open, close - open + 1);
    const size_t q = obj.find("\"query\": ");
    const size_t t = obj.find("\"trace\": \"");
    const size_t s = obj.find("\"span\": \"");
    const size_t st = obj.find("\"start_us\": ");
    const size_t d = obj.find("\"duration_us\": ");
    ASSERT_NE(q, std::string::npos) << obj;
    ASSERT_NE(t, std::string::npos) << obj;
    ASSERT_NE(s, std::string::npos) << obj;
    ASSERT_NE(st, std::string::npos) << obj;
    ASSERT_NE(d, std::string::npos) << obj;
    EXPECT_TRUE(q < t && t < s && s < st && st < d) << obj;
    ++entries;
    at = close + 1;
  }
  EXPECT_GT(entries, 0) << json;
}

TEST(TraceIdTest, DumpTraceJsonSchemaIsPinned) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  Unwrap(database->Query("trace abc123 select count(*) from t"));
  Unwrap(database->Query("select grp, count(*) from t group by grp"));
  ExpectTraceJsonSchema(database->DumpTrace());
}

// ----------------------------------------- show queries / kill query ---

TEST(DatabaseObsTest, ShowQueriesAndKillQueryStatements) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  const auto none = Unwrap(database->Query("show queries"));
  ASSERT_EQ(none.rows.size(), 1u);
  EXPECT_NE(
      none.rows[0].AsRef().GetValue(0).AsString().find("no queries"),
      std::string::npos);
  EXPECT_EQ(database->DumpQueries(), "[]");

  EXPECT_EQ(database->Execute("kill query 424242").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(database->Execute("kill query").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(database->Execute("kill query abc").code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseObsTest, KillQueryCancelsAConcurrentScan) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  // Hold the victim query open deterministically: its cancel checkpoint
  // spins until the killer has fired. The failpoint delivers a cancel at
  // the first governor checkpoint, but we want the *registry* path, so we
  // instead park the query by making it wait for the kill through a flag
  // checked in a second thread issuing `kill query` as soon as the entry
  // shows up in `show queries`.
  std::atomic<bool> killed{false};
  std::thread killer([&] {
    // Poll the registry until a victim registers, then kill it. A kNotFound
    // means the query drained between snapshot and kill — exactly the race
    // the shared-token design absorbs — so just try the next one.
    for (int i = 0; i < 5'000; ++i) {
      const auto snap = database->query_registry()->Snapshot();
      if (!snap.empty()) {
        const util::Status st = database->Execute(
            util::Format("kill query %llu",
                         static_cast<unsigned long long>(snap[0].query_id)));
        if (st.ok()) {
          killed.store(true);
          return;
        }
        EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
        continue;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // The victim: a query whose first governor checkpoint waits for the
  // killer. "governor.cancel" can't help here (it would cancel by itself),
  // so instead run a long-enough loop of queries until one is killed.
  util::Status victim_status = util::Status::OK();
  for (int i = 0; i < 5'000 && !killed.load(); ++i) {
    const auto r = database->Query("select grp, sum(v) from t group by grp");
    if (!r.ok()) {
      victim_status = r.status();
      break;
    }
  }
  killer.join();
  EXPECT_TRUE(killed.load());
  // Either a query died with kCancelled (the kill landed mid-flight) or
  // the kill landed between checkpoints of a query that then completed —
  // both are correct kill semantics; what must hold afterwards is a clean
  // registry and a working database.
  if (!victim_status.ok()) {
    EXPECT_EQ(victim_status.code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(database->query_registry()->size(), 0u);
  Unwrap(database->Query("select count(*) from t"));
}

// ------------------------------------------------- slow-query logging ---

TEST(DatabaseObsTest, SlowQueryThresholdLogsWarnWithProfile) {
  db::DatabaseOptions options;
  options.log = QuietLog();
  options.slow_query_ms = 1;  // everything beyond 1 ms is "slow"
  std::unique_ptr<db::Database> database(MakeDatabase(options));
  // Row-mode, serial, over an inflated table: comfortably beyond 1 ms on
  // any machine; repeat a few times in case the first run is unexpectedly
  // fast anyway.
  {
    storage::Table* table = Unwrap(database->GetTable("t"));
    storage::TupleBuffer t(&table->schema());
    util::Rng rng(13);
    static const char* kTags[] = {"MAIL", "RAIL", "SHIP", "AIR"};
    for (int64_t i = 0; i < 40'000; ++i) {
      t.SetInt64(0, 2000 + i);
      t.SetDate(1, util::Date(static_cast<int32_t>(250 + i / 8)));
      t.SetDecimal(2, util::Decimal(i * 3));
      const char grp = static_cast<char>('A' + rng.Uniform(0, 2));
      t.SetString(3, std::string_view(&grp, 1));
      t.SetString(4, kTags[rng.Uniform(0, 3)]);
      ExpectOk(database->Insert("t", t));
    }
  }
  ExpectOk(database->Execute("set batch_size = 0"));
  ExpectOk(database->Execute("set dop = 1"));
  bool saw = false;
  for (int i = 0; i < 50 && !saw; ++i) {
    Unwrap(database->Query(
        "trace cafe01 select grp, tag, sum(v), count(*) from t group by grp, "
        "tag"));
    for (const std::string& line : database->logger()->Tail(10)) {
      saw |= line.find("event=slow_query") != std::string::npos &&
             line.find("trace=cafe01") != std::string::npos &&
             line.find("profile=") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw) << "no slow_query WARN line after 50 attempts";

  // The slow-query profile is internal: `show profile` still replays the
  // last *explain analyze*, not the slow-query capture.
  const auto replay = Unwrap(database->Query("show profile"));
  ASSERT_EQ(replay.rows.size(), 1u);
  EXPECT_NE(
      replay.rows[0].AsRef().GetValue(0).AsString().find("no profiled"),
      std::string::npos);

  // The knob is runtime-adjustable and 0 disarms it.
  ExpectOk(database->Execute("set slow_query_ms = 0"));
  EXPECT_EQ(database->slow_query_ms(), 0);
}

// ------------------------------------- Prometheus exposition linting ---

/// A strict line-level parser for the Prometheus text exposition format:
/// every line must be a HELP/TYPE comment or a well-formed sample, TYPE
/// must precede its family's samples, families must not interleave, and
/// label values must use only the \" \\ \n escapes. This is the same
/// contract tools/promlint.py enforces on live scrapes in CI.
void LintPrometheus(const std::string& text) {
  std::vector<std::string> lines;
  size_t at = 0;
  while (at < text.size()) {
    size_t nl = text.find('\n', at);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(at, nl - at));
    at = nl + 1;
  }
  auto is_name = [](const std::string& s) {
    if (s.empty()) return false;
    for (size_t i = 0; i < s.size(); ++i) {
      const char ch = s[i];
      const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      ch == '_' || ch == ':' ||
                      (i > 0 && ch >= '0' && ch <= '9');
      if (!ok) return false;
    }
    return true;
  };
  std::vector<std::string> family_order;  // distinct, in first-seen order
  std::string open_family;                // family whose block we're inside
  std::set<std::string> typed;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      std::string rest = line.substr(7);
      const size_t sp = rest.find(' ');
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string fam = rest.substr(0, sp);
      ASSERT_TRUE(is_name(fam)) << line;
      if (is_type) {
        const std::string kind = rest.substr(sp + 1);
        ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                    kind == "summary")
            << line;
        // A `_total` name promises counter semantics (callback gauges over
        // monotonic totals must still expose as counters).
        if (fam.size() > 6 &&
            fam.compare(fam.size() - 6, 6, "_total") == 0) {
          ASSERT_EQ(kind, "counter") << line;
        }
        ASSERT_EQ(typed.count(fam), 0u) << "duplicate TYPE for " << fam;
        typed.insert(fam);
      }
      if (open_family != fam) {
        for (const std::string& seen : family_order) {
          ASSERT_NE(seen, fam) << "family " << fam << " interleaved";
        }
        family_order.push_back(fam);
        open_family = fam;
      }
      continue;
    }
    // A sample: name[{labels}] value
    const size_t brace = line.find('{');
    const size_t name_end = brace != std::string::npos
                                ? brace
                                : line.find(' ');
    ASSERT_NE(name_end, std::string::npos) << line;
    const std::string name = line.substr(0, name_end);
    ASSERT_TRUE(is_name(name)) << line;
    // The sample's family must be the open block (name itself, or a
    // histogram-derived name_sum / name_count / quantile series).
    const bool in_family =
        name == open_family ||
        name == open_family + "_sum" || name == open_family + "_count";
    ASSERT_TRUE(in_family) << "sample " << name << " outside family block "
                           << open_family;
    ASSERT_EQ(typed.count(open_family), 1u)
        << "sample before TYPE: " << line;
    size_t value_at = name_end;
    if (brace != std::string::npos) {
      // Parse the label set with escape handling.
      size_t i = brace + 1;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '}') {
          closed = true;
          ++i;
          break;
        }
        const size_t eq = line.find('=', i);
        ASSERT_NE(eq, std::string::npos) << line;
        ASSERT_TRUE(is_name(line.substr(i, eq - i))) << line;
        ASSERT_EQ(line[eq + 1], '"') << line;
        size_t v = eq + 2;
        for (; v < line.size() && line[v] != '"'; ++v) {
          if (line[v] == '\\') {
            ASSERT_LT(v + 1, line.size()) << line;
            const char esc = line[v + 1];
            ASSERT_TRUE(esc == '\\' || esc == '"' || esc == 'n') << line;
            ++v;
          }
        }
        ASSERT_LT(v, line.size()) << "unterminated label value: " << line;
        i = v + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      ASSERT_TRUE(closed) << "unterminated label set: " << line;
      value_at = i;
    }
    ASSERT_LT(value_at, line.size()) << line;
    ASSERT_EQ(line[value_at], ' ') << line;
    const std::string value = line.substr(value_at + 1);
    ASSERT_FALSE(value.empty()) << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    ASSERT_EQ(*end, '\0') << "unparseable value: " << line;
  }
}

TEST(MetricsTest, RenderPrometheusPassesFormatLint) {
  std::unique_ptr<db::Database> database(MakeDatabase());
  Unwrap(database->Query("select count(*) from t"));
  Unwrap(database->Query("scrub"));  // emits per-file labeled gauges
  const std::string prom = database->ExportMetrics();
  LintPrometheus(prom);
  // HELP/TYPE really are present for core families.
  EXPECT_NE(prom.find("# TYPE smadb_queries_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# HELP smadb_queries_total"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE smadb_query_latency_us summary"),
            std::string::npos);
}

TEST(MetricsTest, LabeledGaugeEscapesHostileLabelValues) {
  obs::MetricsRegistry registry;
  obs::Gauge* g = registry.GetLabeledGauge(
      "smadb_scrub_corrupt_pages",
      {{"file", "we\"ird\\dir\nname.dat"}}, "Corrupt pages per file");
  g->Set(3);
  // Same name + labels = same instrument (idempotent, like GetGauge).
  EXPECT_EQ(registry.GetLabeledGauge("smadb_scrub_corrupt_pages",
                                     {{"file", "we\"ird\\dir\nname.dat"}}),
            g);
  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(
      prom.find(
          "smadb_scrub_corrupt_pages{file=\"we\\\"ird\\\\dir\\nname.dat\"} "
          "3"),
      std::string::npos)
      << prom;
  LintPrometheus(prom);
}

TEST(MetricsTest, ConcurrentScrapesWhileQueriesRunAreClean) {
  // The TSan referee for the scrape path: /metrics, /debug/queries and
  // show-trace renderers race live queries. Correctness here is "no data
  // race and every render parses", not specific values.
  std::unique_ptr<db::Database> database(MakeDatabase());
  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 3; ++i) {
    scrapers.emplace_back([&] {
      while (!stop.load()) {
        LintPrometheus(database->ExportMetrics());
        const std::string queries = database->DumpQueries();
        EXPECT_EQ(queries.front(), '[');
        const std::string trace = database->DumpTrace();
        EXPECT_EQ(trace.front(), '[');
      }
    });
  }
  std::vector<std::thread> queriers;
  for (int i = 0; i < 2; ++i) {
    queriers.emplace_back([&] {
      for (int j = 0; j < 40; ++j) {
        Unwrap(database->Query("select grp, count(*) from t group by grp"));
      }
    });
  }
  for (auto& t : queriers) t.join();
  stop.store(true);
  for (auto& t : scrapers) t.join();
}

}  // namespace
}  // namespace smadb
