// Tests for the baseline structures: B+-tree, projection index, data cube.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "baseline/bptree.h"
#include "baseline/datacube.h"
#include "baseline/projection_index.h"
#include "exec/gaggr.h"
#include "exec/table_scan.h"
#include "tests/test_util.h"

namespace smadb::baseline {
namespace {

using expr::CmpOp;
using storage::Rid;
using testing::ExpectOk;
using testing::MakeSyntheticTable;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

// ---------------------------------------------------------------- B+tree --

struct BPlusTreeTest : ::testing::Test {
  BPlusTreeTest() : db(16384) {}
  TestDb db;
};

std::vector<BPlusTree::Entry> MakeEntries(int n, uint64_t seed,
                                          int64_t key_range) {
  util::Rng rng(seed);
  std::vector<BPlusTree::Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    entries.push_back(BPlusTree::Entry{
        rng.Uniform(0, key_range),
        Rid{static_cast<uint32_t>(i / 100), static_cast<uint16_t>(i % 100)}});
  }
  return entries;
}

TEST_F(BPlusTreeTest, BulkBuildAndPointLookup) {
  auto entries = MakeEntries(20000, 5, 5000);
  std::vector<BPlusTree::Entry> sorted = entries;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.key < b.key; });
  auto tree = Unwrap(BPlusTree::BulkBuild(&db.pool, "t", sorted));
  EXPECT_EQ(tree->num_entries(), entries.size());
  EXPECT_GE(tree->height(), 2);

  std::map<int64_t, size_t> key_counts;
  for (const auto& e : entries) ++key_counts[e.key];
  for (int64_t key : {int64_t{0}, int64_t{17}, int64_t{2500}, int64_t{5000},
                      int64_t{12345}}) {
    const auto rids = Unwrap(tree->Lookup(key));
    const auto it = key_counts.find(key);
    EXPECT_EQ(rids.size(), it == key_counts.end() ? 0 : it->second)
        << "key " << key;
  }
}

TEST_F(BPlusTreeTest, RangeLookupMatchesBruteForce) {
  auto entries = MakeEntries(8000, 9, 2000);
  std::vector<BPlusTree::Entry> sorted = entries;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.key < b.key; });
  auto tree = Unwrap(BPlusTree::BulkBuild(&db.pool, "t", sorted));
  util::Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t lo = rng.Uniform(-100, 2100);
    int64_t hi = rng.Uniform(-100, 2100);
    if (lo > hi) std::swap(lo, hi);
    size_t expected = 0;
    for (const auto& e : entries) expected += e.key >= lo && e.key <= hi;
    EXPECT_EQ(Unwrap(tree->RangeLookup(lo, hi)).size(), expected)
        << "[" << lo << ", " << hi << "]";
  }
  // Degenerate ranges.
  EXPECT_TRUE(Unwrap(tree->RangeLookup(10, 5)).empty());
}

TEST_F(BPlusTreeTest, EmptyTree) {
  auto tree = Unwrap(BPlusTree::Create(&db.pool, "t"));
  EXPECT_TRUE(Unwrap(tree->Lookup(5)).empty());
  EXPECT_TRUE(Unwrap(tree->RangeLookup(0, 100)).empty());
  EXPECT_EQ(tree->num_entries(), 0u);
}

TEST_F(BPlusTreeTest, InsertsWithSplitsMatchBruteForce) {
  auto tree = Unwrap(BPlusTree::Create(&db.pool, "t"));
  util::Rng rng(13);
  std::map<int64_t, size_t> key_counts;
  // Enough inserts to force leaf and internal splits (capacity 255/340).
  for (int i = 0; i < 30000; ++i) {
    const int64_t key = rng.Uniform(0, 3000);
    ExpectOk(tree->Insert(
        key, Rid{static_cast<uint32_t>(i), static_cast<uint16_t>(i % 7)}));
    ++key_counts[key];
  }
  EXPECT_GE(tree->height(), 2);
  for (int64_t key = 0; key <= 3000; key += 111) {
    const auto it = key_counts.find(key);
    EXPECT_EQ(Unwrap(tree->Lookup(key)).size(),
              it == key_counts.end() ? 0 : it->second);
  }
  // Full range returns everything in key order.
  const auto all = Unwrap(tree->RangeLookup(INT64_MIN + 1, INT64_MAX));
  EXPECT_EQ(all.size(), 30000u);
}

TEST_F(BPlusTreeTest, MixedBulkThenInserts) {
  auto sorted = MakeEntries(5000, 21, 1000);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.key < b.key; });
  auto tree = Unwrap(BPlusTree::BulkBuild(&db.pool, "t", sorted));
  for (int i = 0; i < 5000; ++i) {
    ExpectOk(tree->Insert(i % 1000, Rid{0, 0}));
  }
  EXPECT_EQ(tree->num_entries(), 10000u);
  EXPECT_EQ(Unwrap(tree->RangeLookup(INT64_MIN + 1, INT64_MAX)).size(),
            10000u);
}

TEST_F(BPlusTreeTest, BuildForColumnAndSizeComparison) {
  storage::Table* t =
      MakeSyntheticTable(&db, 20000, testing::Layout::kRandom);
  auto tree = Unwrap(BPlusTree::BuildForColumn(t, 1, "d_idx"));
  EXPECT_EQ(tree->num_entries(), 20000u);
  // The paper's observation: the B+-tree dwarfs min/max SMAs.
  sma::SmaSet smas(t);
  testing::AddMinMaxSmas(t, &smas, "d");
  EXPECT_GT(tree->SizeBytes(), smas.TotalSizeBytes() * 10);
}

TEST_F(BPlusTreeTest, RejectsBadFillFactor) {
  EXPECT_FALSE(BPlusTree::BulkBuild(&db.pool, "t", {}, 0.0).ok());
  EXPECT_FALSE(BPlusTree::BulkBuild(&db.pool, "t2", {}, 1.5).ok());
}

// ------------------------------------------------------- ProjectionIndex --

struct ProjectionIndexTest : ::testing::Test {
  ProjectionIndexTest() : db(8192) {}
  TestDb db;
};

TEST_F(ProjectionIndexTest, ValuesMatchTable) {
  storage::Table* t =
      MakeSyntheticTable(&db, 3000, testing::Layout::kRandom);
  auto idx = Unwrap(ProjectionIndex::Build(t, 1));
  EXPECT_EQ(idx->num_values(), 3000u);
  // Spot-check positional agreement.
  uint64_t i = 0;
  for (uint32_t b = 0; b < t->num_buckets(); ++b) {
    ExpectOk(t->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, Rid) {
          EXPECT_EQ(Unwrap(idx->Get(i)), tup.GetRawInt(1));
          ++i;
        }));
  }
}

TEST_F(ProjectionIndexTest, CountsMatchScan) {
  storage::Table* t =
      MakeSyntheticTable(&db, 2000, testing::Layout::kRandom);
  auto idx = Unwrap(ProjectionIndex::Build(t, 2));
  for (CmpOp op : {CmpOp::kLe, CmpOp::kGt, CmpOp::kEq}) {
    const int64_t c = 3000;
    uint64_t expected = 0;
    for (uint32_t b = 0; b < t->num_buckets(); ++b) {
      ExpectOk(t->ForEachTupleInBucket(
          b, [&](const storage::TupleRef& tup, Rid) {
            expected += expr::CompareInt(tup.GetRawInt(2), op, c);
          }));
    }
    EXPECT_EQ(Unwrap(idx->CountMatching(op, c)), expected);
    EXPECT_EQ(Unwrap(idx->MatchingPositions(op, c)).Count(), expected);
  }
}

TEST_F(ProjectionIndexTest, IsSmallerThanBaseData) {
  storage::Table* t =
      MakeSyntheticTable(&db, 10000, testing::Layout::kRandom);
  auto idx = Unwrap(ProjectionIndex::Build(t, 1));  // 4-byte dates
  EXPECT_LT(idx->SizeBytes(), t->SizeBytes() / 5);
}

TEST_F(ProjectionIndexTest, RejectsStringColumns) {
  storage::Table* t =
      MakeSyntheticTable(&db, 10, testing::Layout::kRandom);
  EXPECT_FALSE(ProjectionIndex::Build(t, 3).ok());
  EXPECT_FALSE(ProjectionIndex::Build(t, 99).ok());
}

// -------------------------------------------------------------- DataCube --

TEST(CubeSizingTest, ReproducesPaperNumbers) {
  CubeSizing sizing;  // 4 flag combos, 2556 days, 48-byte entries
  // §2.4: 479.25 KB / 1196.25 MB / 2985.95 GB for 1/2/3 date dimensions.
  EXPECT_NEAR(sizing.SizeBytes(1) / 1024.0, 479.25, 0.01);
  EXPECT_NEAR(sizing.SizeBytes(2) / (1024.0 * 1024.0), 1196.25, 0.26);
  EXPECT_NEAR(sizing.SizeBytes(3) / (1024.0 * 1024.0 * 1024.0), 2985.95,
              0.7);
}

struct DataCubeTest : ::testing::Test {
  DataCubeTest() : db(8192) {
    table = MakeSyntheticTable(&db, 3000, testing::Layout::kRandom);
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    aggs = {exec::AggSpec::Sum(v, "sum_v"), exec::AggSpec::Count("cnt")};
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::vector<exec::AggSpec> aggs;
};

TEST_F(DataCubeTest, CellAggregatesMatchGAggr) {
  auto cube = Unwrap(DataCube::Build(table, {3, 4}, aggs));
  // Reference via GAggr on the same grouping.
  auto scan = std::make_unique<exec::TableScan>(table,
                                                expr::Predicate::True());
  auto ref = Unwrap(exec::GAggr::Make(std::move(scan), {3, 4}, aggs));
  ExpectOk(ref->Init());
  storage::TupleRef row;
  size_t cells = 0;
  while (*ref->Next(&row)) {
    ++cells;
    const auto got = Unwrap(cube->CellAggregates(
        {row.GetValue(0), row.GetValue(1)}));
    EXPECT_EQ(got[0].AsDecimal().cents(), row.GetDecimal(2).cents());
    EXPECT_EQ(got[1].AsInt64(), row.GetInt64(3));
  }
  EXPECT_EQ(cube->num_cells(), cells);
}

TEST_F(DataCubeTest, MissingCellIsNotFound) {
  auto cube = Unwrap(DataCube::Build(table, {3}, aggs));
  EXPECT_EQ(cube->CellAggregates({Value::String("ZZZ")}).status().code(),
            util::StatusCode::kNotFound);
  EXPECT_FALSE(cube->CellAggregates({}).ok());  // arity mismatch
}

TEST_F(DataCubeTest, SliceAggregatesMatchScan) {
  auto cube = Unwrap(DataCube::Build(table, {1}, aggs));  // dim = date
  const int64_t c = 150;
  int64_t ref_sum = 0, ref_cnt = 0;
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    ExpectOk(table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, Rid) {
          if (tup.GetRawInt(1) <= c) {
            ref_sum += tup.GetRawInt(2);
            ++ref_cnt;
          }
        }));
  }
  const auto got = Unwrap(cube->SliceAggregates(0, CmpOp::kLe, c));
  EXPECT_EQ(got[0].AsDecimal().cents(), ref_sum);
  EXPECT_EQ(got[1].AsInt64(), ref_cnt);
}

TEST_F(DataCubeTest, InflexibilityIsExplicit) {
  // The paper's core criticism: a cube over (grp) cannot answer queries
  // restricting the date column.
  auto cube = Unwrap(DataCube::Build(table, {3}, aggs));
  EXPECT_TRUE(cube->CheckApplicable(3).ok());
  EXPECT_EQ(cube->CheckApplicable(1).code(),
            util::StatusCode::kNotSupported);
}

TEST_F(DataCubeTest, ValidatesInput) {
  EXPECT_FALSE(DataCube::Build(table, {}, aggs).ok());
  EXPECT_FALSE(DataCube::Build(table, {99}, aggs).ok());
  EXPECT_FALSE(DataCube::Build(table, {3}, {}).ok());
}

}  // namespace
}  // namespace smadb::baseline
