// Tests for incremental SMA maintenance (paper §2.1): after any sequence of
// maintained inserts and updates, every SMA must equal what a fresh bulk
// build over the final table state would produce.

#include <gtest/gtest.h>

#include "sma/maintenance.h"
#include "tests/test_util.h"

namespace smadb::sma {
namespace {

using storage::Rid;
using storage::TupleBuffer;
using testing::ExpectOk;
using testing::SyntheticSchema;
using testing::TestDb;
using testing::Unwrap;
using util::Value;

using testing::ExpectSmaEqualsRebuild;

TupleBuffer MakeRow(const storage::Schema* schema, int64_t k, int32_t day,
                    int64_t cents, const char* grp, const char* tag) {
  TupleBuffer t(schema);
  t.SetInt64(0, k);
  t.SetDate(1, util::Date(day));
  t.SetDecimal(2, util::Decimal(cents));
  t.SetString(3, grp);
  t.SetString(4, tag);
  return t;
}

struct MaintenanceTest : ::testing::Test {
  MaintenanceTest() : db(4096) {
    table = Unwrap(db.catalog.CreateTable("m", SyntheticSchema(), {}));
    smas = std::make_unique<SmaSet>(table);
    const expr::ExprPtr d = Unwrap(expr::Column(&table->schema(), "d"));
    const expr::ExprPtr v = Unwrap(expr::Column(&table->schema(), "v"));
    ExpectOk(smas->Add(Unwrap(BuildSma(table, SmaSpec::Min("min_d", d)))));
    ExpectOk(smas->Add(Unwrap(BuildSma(table, SmaSpec::Max("max_d", d)))));
    ExpectOk(
        smas->Add(Unwrap(BuildSma(table, SmaSpec::Sum("sum_v", v, {3})))));
    ExpectOk(
        smas->Add(Unwrap(BuildSma(table, SmaSpec::Count("cnt", {3})))));
    maintainer = std::make_unique<SmaMaintainer>(table, smas.get());
  }

  void ExpectAllSmasConsistent() {
    for (const Sma* sma : smas->all()) {
      ExpectSmaEqualsRebuild(table, *sma);
    }
  }

  TestDb db;
  storage::Table* table = nullptr;
  std::unique_ptr<SmaSet> smas;
  std::unique_ptr<SmaMaintainer> maintainer;
};

TEST_F(MaintenanceTest, InsertsIntoEmptyTable) {
  ExpectOk(maintainer->Insert(
      MakeRow(&table->schema(), 1, 10, 100, "A", "MAIL")));
  ExpectOk(maintainer->Insert(
      MakeRow(&table->schema(), 2, 5, 250, "B", "RAIL")));
  EXPECT_EQ(table->num_tuples(), 2u);
  for (const Sma* sma : smas->all()) {
    EXPECT_EQ(sma->num_buckets(), 1u);
  }
  EXPECT_EQ(Unwrap(Unwrap(smas->Find("min_d"))->group_file(0)->Get(0)), 5);
  EXPECT_EQ(Unwrap(Unwrap(smas->Find("max_d"))->group_file(0)->Get(0)), 10);
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, ManyInsertsSpanningBuckets) {
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 3)), 0};
    ExpectOk(maintainer->Insert(MakeRow(
        &table->schema(), i, static_cast<int32_t>(rng.Uniform(0, 400)),
        rng.Uniform(0, 10000), grp, "MAIL")));
  }
  EXPECT_GT(table->num_buckets(), 3u);
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, InsertDiscoversNewGroupWithBackfill) {
  for (int i = 0; i < 500; ++i) {
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, i / 8, i, "A", "MAIL")));
  }
  const size_t groups_before = Unwrap(smas->Find("cnt"))->num_groups();
  // A brand-new group arrives late; earlier buckets must be backfilled.
  ExpectOk(maintainer->Insert(
      MakeRow(&table->schema(), 999, 60, 1, "Q", "MAIL")));
  const Sma* cnt = Unwrap(smas->Find("cnt"));
  EXPECT_EQ(cnt->num_groups(), groups_before + 1);
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, UpdateAggregatedColumnRecomputes) {
  for (int i = 0; i < 1000; ++i) {
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, i / 8, i, "A", "MAIL")));
  }
  // Shrink a date that was the bucket minimum: only recompute can fix it.
  ExpectOk(maintainer->UpdateColumn(Rid{3, 0}, 1,
                                    Value::MakeDate(util::Date(9999))));
  ExpectOk(maintainer->UpdateColumn(Rid{5, 2}, 1,
                                    Value::MakeDate(util::Date(-50))));
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, UpdateGroupingColumnMovesTupleBetweenGroups) {
  for (int i = 0; i < 1000; ++i) {
    const char* grp = i % 2 == 0 ? "A" : "B";
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, i / 8, i, grp, "MAIL")));
  }
  ExpectOk(maintainer->UpdateColumn(Rid{0, 1}, 3, Value::String("C")));
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, UpdateUnrelatedColumnTouchesNothing) {
  for (int i = 0; i < 300; ++i) {
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, i / 8, i, "A", "MAIL")));
  }
  db.disk.ResetStats();
  // Column k (0) is not aggregated and not a group key: the update must not
  // rewrite any SMA pages. (tag (4) is also unrelated but k is cheapest.)
  ExpectOk(maintainer->UpdateColumn(Rid{0, 0}, 0, Value::Int64(424242)));
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, MixedWorkloadStaysConsistent) {
  util::Rng rng(77);
  for (int step = 0; step < 1500; ++step) {
    if (table->num_tuples() == 0 || rng.NextBool(0.7)) {
      const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 4)), 0};
      ExpectOk(maintainer->Insert(MakeRow(
          &table->schema(), step, static_cast<int32_t>(rng.Uniform(0, 300)),
          rng.Uniform(-500, 5000), grp, "SHIP")));
    } else {
      const uint32_t page = static_cast<uint32_t>(
          rng.Uniform(0, table->num_pages() - 1));
      auto guard = Unwrap(table->FetchPage(page));
      const uint16_t count = storage::Table::PageTupleCount(*guard.page());
      guard.Release();
      if (count == 0) continue;
      const Rid rid{page,
                    static_cast<uint16_t>(rng.Uniform(0, count - 1))};
      switch (rng.Uniform(0, 2)) {
        case 0:
          ExpectOk(maintainer->UpdateColumn(
              rid, 1,
              Value::MakeDate(
                  util::Date(static_cast<int32_t>(rng.Uniform(0, 300))))));
          break;
        case 1:
          ExpectOk(maintainer->UpdateColumn(
              rid, 2, Value::MakeDecimal(
                          util::Decimal(rng.Uniform(-500, 5000)))));
          break;
        default: {
          const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 4)),
                               0};
          ExpectOk(maintainer->UpdateColumn(rid, 3, Value::String(grp)));
          break;
        }
      }
    }
  }
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, DeleteRecomputesAllSmas) {
  for (int i = 0; i < 1000; ++i) {
    const char* grp = i % 3 == 0 ? "A" : "B";
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, i / 8, i, grp, "MAIL")));
  }
  // Delete the bucket minimum and a few arbitrary tuples.
  ExpectOk(maintainer->Delete(Rid{0, 0}));
  ExpectOk(maintainer->Delete(Rid{2, 5}));
  ExpectOk(maintainer->Delete(Rid{4, 1}));
  ExpectAllSmasConsistent();
  // Double delete propagates the storage error.
  EXPECT_EQ(maintainer->Delete(Rid{0, 0}).code(),
            util::StatusCode::kNotFound);
}

TEST_F(MaintenanceTest, DeleteWholeGroupFromBucket) {
  // Removing every tuple of a group from a bucket must leave identity /
  // undefined entries behind.
  for (int i = 0; i < 200; ++i) {
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, 5, 10, i < 100 ? "A" : "B", "MAIL")));
  }
  // Delete all "A" rows (they came first).
  uint64_t deleted = 0;
  for (uint32_t p = 0; p < table->num_pages(); ++p) {
    auto guard = Unwrap(table->FetchPage(p));
    const uint16_t n = storage::Table::PageTupleCount(*guard.page());
    std::vector<Rid> to_delete;
    for (uint16_t s = 0; s < n; ++s) {
      if (table->PageTuple(*guard.page(), s).GetString(3) == "A") {
        to_delete.push_back(Rid{p, s});
      }
    }
    guard.Release();
    for (Rid rid : to_delete) {
      ExpectOk(maintainer->Delete(rid));
      ++deleted;
    }
  }
  EXPECT_EQ(deleted, 100u);
  const Sma* cnt = Unwrap(smas->Find("cnt"));
  const int64_t ga = cnt->FindGroup({util::Value::String("A")});
  ASSERT_GE(ga, 0);
  for (uint64_t b = 0; b < cnt->num_buckets(); ++b) {
    EXPECT_EQ(Unwrap(cnt->group_file(static_cast<size_t>(ga))->Get(b)), 0);
  }
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, VacuumPreservesSmaCorrespondence) {
  // In-page compaction keeps every page (hence bucket) in place, so the
  // SMAs must stay exactly consistent without any repair.
  util::Rng rng(21);
  for (int i = 0; i < 1200; ++i) {
    const char grp[2] = {static_cast<char>('A' + rng.Uniform(0, 2)), 0};
    ExpectOk(maintainer->Insert(MakeRow(
        &table->schema(), i, static_cast<int32_t>(rng.Uniform(0, 200)),
        rng.Uniform(0, 999), grp, "MAIL")));
  }
  for (int i = 0; i < 150; ++i) {
    const uint32_t page =
        static_cast<uint32_t>(rng.Uniform(0, table->num_pages() - 1));
    auto guard = Unwrap(table->FetchPage(page));
    const uint16_t count = storage::Table::PageTupleCount(*guard.page());
    const uint16_t slot =
        static_cast<uint16_t>(rng.Uniform(0, count - 1));
    const bool deleted =
        storage::Table::PageSlotDeleted(*guard.page(), slot);
    guard.Release();
    if (deleted) continue;
    ExpectOk(maintainer->Delete(Rid{page, slot}));
  }
  ExpectOk(table->Vacuum());
  ExpectAllSmasConsistent();
}

TEST_F(MaintenanceTest, InsertCostIsBounded) {
  // §2.1: "At most one additional page access is needed for an updated
  // tuple" — per SMA-file. Measure page I/O of one insert into a warm pool.
  for (int i = 0; i < 500; ++i) {
    ExpectOk(maintainer->Insert(
        MakeRow(&table->schema(), i, i / 8, i, "A", "MAIL")));
  }
  ExpectOk(db.pool.FlushAll());
  db.disk.ResetStats();
  ExpectOk(maintainer->Insert(
      MakeRow(&table->schema(), 9999, 62, 77, "A", "MAIL")));
  // Everything is buffer-resident: no disk reads at all.
  EXPECT_EQ(db.disk.stats().page_reads, 0u);
}

}  // namespace
}  // namespace smadb::sma
