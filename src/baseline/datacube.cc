#include "baseline/datacube.h"

#include <algorithm>

#include "util/string_util.h"

namespace smadb::baseline {

using exec::AggKind;
using exec::AggSpec;
using util::Result;
using util::Status;
using util::TypeId;
using util::Value;

namespace {

std::string SerializeKey(const std::vector<Value>& key) {
  std::string out;
  for (const Value& v : key) {
    out += v.ToString();
    out += '\x1f';
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<DataCube>> DataCube::Build(
    storage::Table* table, std::vector<size_t> dims,
    std::vector<AggSpec> aggs) {
  SMADB_RETURN_NOT_OK(exec::ValidateAggs(aggs));
  if (dims.empty()) {
    return Status::InvalidArgument("cube needs at least one dimension");
  }
  for (size_t d : dims) {
    if (d >= table->schema().num_fields()) {
      return Status::OutOfRange("dimension column out of range");
    }
  }
  std::unique_ptr<DataCube> cube(
      new DataCube(table, std::move(dims), std::move(aggs)));

  std::vector<Value> key(cube->dims_.size());
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    SMADB_RETURN_NOT_OK(table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& t, storage::Rid) {
          for (size_t i = 0; i < cube->dims_.size(); ++i) {
            key[i] = t.GetValue(cube->dims_[i]);
          }
          const std::string skey = SerializeKey(key);
          auto it = cube->cells_.find(skey);
          if (it == cube->cells_.end()) {
            Cell cell;
            cell.key = key;
            cell.acc.assign(cube->aggs_.size(), 0);
            cell.defined.assign(cube->aggs_.size(), false);
            it = cube->cells_.emplace(skey, std::move(cell)).first;
          }
          Cell& cell = it->second;
          ++cell.count;
          for (size_t i = 0; i < cube->aggs_.size(); ++i) {
            const AggSpec& a = cube->aggs_[i];
            if (a.kind == AggKind::kCount) continue;
            const int64_t v = a.arg->EvalInt(t);
            switch (a.kind) {
              case AggKind::kSum:
              case AggKind::kAvg:
                cell.acc[i] += v;
                break;
              case AggKind::kMin:
                cell.acc[i] = cell.defined[i] ? std::min(cell.acc[i], v) : v;
                cell.defined[i] = true;
                break;
              case AggKind::kMax:
                cell.acc[i] = cell.defined[i] ? std::max(cell.acc[i], v) : v;
                cell.defined[i] = true;
                break;
              case AggKind::kCount:
                break;
            }
          }
        }));
  }
  return cube;
}

std::vector<Value> DataCube::FinalizeCell(const Cell& cell) const {
  std::vector<Value> out;
  out.reserve(aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    switch (a.kind) {
      case AggKind::kCount:
        out.push_back(Value::Int64(cell.count));
        break;
      case AggKind::kSum:
        if (a.OutputType() == TypeId::kDecimal) {
          out.push_back(Value::MakeDecimal(util::Decimal(cell.acc[i])));
        } else {
          out.push_back(Value::Int64(cell.acc[i]));
        }
        break;
      case AggKind::kAvg: {
        double sum = static_cast<double>(cell.acc[i]);
        if (a.arg->type() == TypeId::kDecimal) sum /= 100.0;
        out.push_back(Value::MakeDouble(
            cell.count == 0 ? 0.0 : sum / static_cast<double>(cell.count)));
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax:
        out.push_back(Value::Int64(cell.acc[i]));
        break;
    }
  }
  return out;
}

Result<std::vector<Value>> DataCube::CellAggregates(
    const std::vector<Value>& dim_values) const {
  if (dim_values.size() != dims_.size()) {
    return Status::InvalidArgument("wrong number of dimension values");
  }
  auto it = cells_.find(SerializeKey(dim_values));
  if (it == cells_.end()) {
    return Status::NotFound("no tuples for this dimension combination");
  }
  return FinalizeCell(it->second);
}

Result<std::vector<Value>> DataCube::SliceAggregates(size_t dim_idx,
                                                     expr::CmpOp op,
                                                     int64_t c) const {
  if (dim_idx >= dims_.size()) {
    return Status::OutOfRange("dimension index out of range");
  }
  Cell total;
  total.acc.assign(aggs_.size(), 0);
  total.defined.assign(aggs_.size(), false);
  for (const auto& [skey, cell] : cells_) {
    const Value& dim_value = cell.key[dim_idx];
    if (dim_value.type() == TypeId::kString) {
      return Status::NotSupported("slice over a string dimension");
    }
    if (!expr::CompareInt(dim_value.RawInt(), op, c)) continue;
    total.count += cell.count;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      switch (aggs_[i].kind) {
        case AggKind::kCount:
          break;
        case AggKind::kSum:
        case AggKind::kAvg:
          total.acc[i] += cell.acc[i];
          break;
        case AggKind::kMin:
          if (cell.defined[i]) {
            total.acc[i] = total.defined[i]
                               ? std::min(total.acc[i], cell.acc[i])
                               : cell.acc[i];
            total.defined[i] = true;
          }
          break;
        case AggKind::kMax:
          if (cell.defined[i]) {
            total.acc[i] = total.defined[i]
                               ? std::max(total.acc[i], cell.acc[i])
                               : cell.acc[i];
            total.defined[i] = true;
          }
          break;
      }
    }
  }
  return FinalizeCell(total);
}

Status DataCube::CheckApplicable(size_t column) const {
  if (std::find(dims_.begin(), dims_.end(), column) == dims_.end()) {
    return Status::NotSupported(util::Format(
        "column '%s' is not a cube dimension; the data cube cannot answer "
        "queries restricting it",
        table_->schema().field(column).name.c_str()));
  }
  return Status::OK();
}

uint64_t DataCube::MaterializedSizeBytes() const {
  // Key bytes + accumulator bytes per cell (hash-map organization).
  uint64_t bytes = 0;
  for (const auto& [skey, cell] : cells_) {
    bytes += skey.size() + cell.acc.size() * 8 + 8;
  }
  return bytes;
}

}  // namespace smadb::baseline
