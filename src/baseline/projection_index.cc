#include "baseline/projection_index.h"

namespace smadb::baseline {

using util::Result;
using util::Status;
using util::TypeId;

Result<std::unique_ptr<ProjectionIndex>> ProjectionIndex::Build(
    storage::Table* table, size_t col) {
  if (col >= table->schema().num_fields()) {
    return Status::OutOfRange("column out of range");
  }
  const TypeId t = table->schema().field(col).type;
  if (t == TypeId::kDouble || t == TypeId::kString) {
    return Status::NotSupported(
        "projection index supports the integral family only");
  }
  const uint32_t width =
      (t == TypeId::kInt32 || t == TypeId::kDate) ? 4 : 8;
  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<sma::SmaFile> file,
      sma::SmaFile::Create(table->pool(),
                           "proj." + table->name() + "." +
                               table->schema().field(col).name,
                           width));
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    Status status = Status::OK();
    SMADB_RETURN_NOT_OK(table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& tup, storage::Rid) {
          if (!status.ok()) return;
          status = file->Append(tup.GetRawInt(col));
        }));
    SMADB_RETURN_NOT_OK(status);
  }
  return std::unique_ptr<ProjectionIndex>(
      new ProjectionIndex(std::move(file), col));
}

Result<int64_t> ProjectionIndex::Get(uint64_t i) const { return file_->Get(i); }

Result<uint64_t> ProjectionIndex::CountMatching(expr::CmpOp op,
                                                int64_t c) const {
  uint64_t count = 0;
  sma::SmaFile::Cursor cur = file_->NewCursor();
  const uint64_t n = file_->num_entries();
  for (uint64_t i = 0; i < n; ++i) {
    SMADB_ASSIGN_OR_RETURN(int64_t v, cur.Get(i));
    if (expr::CompareInt(v, op, c)) ++count;
  }
  return count;
}

Result<util::BitVector> ProjectionIndex::MatchingPositions(expr::CmpOp op,
                                                           int64_t c) const {
  const uint64_t n = file_->num_entries();
  util::BitVector out(n);
  sma::SmaFile::Cursor cur = file_->NewCursor();
  for (uint64_t i = 0; i < n; ++i) {
    SMADB_ASSIGN_OR_RETURN(int64_t v, cur.Get(i));
    if (expr::CompareInt(v, op, c)) out.Set(i);
  }
  return out;
}

}  // namespace smadb::baseline
