// Materialized data cube: the alternative SMAs are pitched against.
//
// Two parts mirror the paper's §2.4 comparison:
//  * CubeSizing — the analytic storage formula of [5, 18]: one entry per
//    combination of dimension values, Π|dim_i| × entry bytes. This is what
//    produces the paper's 479.25 KB / 1196.25 MB / 2985.95 GB series.
//  * DataCube — an actual (dense-keyed, hash-backed) cube implementation
//    over discrete dimension columns, demonstrating both its lookup speed
//    and its inflexibility (a query restricting a non-dimension column
//    cannot use it — Status::NotSupported, exactly the paper's argument).

#ifndef SMADB_BASELINE_DATACUBE_H_
#define SMADB_BASELINE_DATACUBE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/aggregate.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace smadb::baseline {

/// Analytic cube sizing (§2.4).
struct CubeSizing {
  /// Combinations of the non-date grouping attributes (4 for Q1's
  /// returnflag × linestatus).
  uint64_t flag_combinations = 4;
  /// Cardinality of each date dimension (2556 days = 7 years).
  uint64_t date_range_days = 2556;
  /// Entry width: aggregates per cell × bytes (6 × 8 = 48 for Q1).
  uint64_t entry_bytes = 48;

  /// Bytes for a cube over `num_date_dims` date dimensions.
  double SizeBytes(int num_date_dims) const {
    double cells = static_cast<double>(flag_combinations);
    for (int i = 0; i < num_date_dims; ++i) {
      cells *= static_cast<double>(date_range_days);
    }
    return cells * static_cast<double>(entry_bytes);
  }
};

/// A materialized cube: per combination of dimension values, the requested
/// aggregates. Storage is per *existing* combination (hash map), but
/// ReportedSizeBytes() also gives the dense allocation a real system would
/// reserve — the number the paper's formula computes.
class DataCube {
 public:
  /// Builds the cube over `dims` (column ordinals; values must be discrete)
  /// computing `aggs`. One full scan.
  static util::Result<std::unique_ptr<DataCube>> Build(
      storage::Table* table, std::vector<size_t> dims,
      std::vector<exec::AggSpec> aggs);

  /// Point query: aggregates of one cell. NotFound when the combination has
  /// no tuples.
  util::Result<std::vector<util::Value>> CellAggregates(
      const std::vector<util::Value>& dim_values) const;

  /// Slice query: total aggregates over all cells whose dimension `dim_idx`
  /// satisfies `op c` (other dims unrestricted). Supports exactly the
  /// queries the cube was designed for.
  util::Result<std::vector<util::Value>> SliceAggregates(
      size_t dim_idx, expr::CmpOp op, int64_t c) const;

  /// The inflexibility check: NotSupported when `column` is not one of the
  /// cube's dimensions — "as soon as an additional selection condition
  /// occurs in the query, the data cube might not be applicable any more."
  util::Status CheckApplicable(size_t column) const;

  size_t num_cells() const { return cells_.size(); }
  uint64_t MaterializedSizeBytes() const;
  const std::vector<size_t>& dims() const { return dims_; }

 private:
  struct Cell {
    std::vector<util::Value> key;
    std::vector<int64_t> acc;
    std::vector<bool> defined;
    int64_t count = 0;
  };

  DataCube(storage::Table* table, std::vector<size_t> dims,
           std::vector<exec::AggSpec> aggs)
      : table_(table), dims_(std::move(dims)), aggs_(std::move(aggs)) {}

  std::vector<util::Value> FinalizeCell(const Cell& cell) const;

  storage::Table* table_;
  std::vector<size_t> dims_;
  std::vector<exec::AggSpec> aggs_;
  std::map<std::string, Cell> cells_;
};

}  // namespace smadb::baseline

#endif  // SMADB_BASELINE_DATACUBE_H_
