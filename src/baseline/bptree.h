// Disk-paged B+-tree: the "traditional index structure" the paper compares
// against ("a B+ tree on shipdate (though of no use for Query 1) consumes
// about 230 MB. Its creation time is far beyond the 15 minutes needed to
// create all SMAs.", §2.4).
//
// Non-clustered secondary index: int64 keys (the raw integral payload of the
// indexed column) → Rids. Supports bottom-up bulk build from sorted input,
// top-down insert with node splits, point and range lookups.

#ifndef SMADB_BASELINE_BPTREE_H_
#define SMADB_BASELINE_BPTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "util/status.h"

namespace smadb::baseline {

class BPlusTree {
 public:
  /// Key → tuple address pair.
  struct Entry {
    int64_t key;
    storage::Rid rid;
  };

  /// Creates an empty tree backed by disk file "idx.<name>".
  static util::Result<std::unique_ptr<BPlusTree>> Create(
      storage::BufferPool* pool, const std::string& name);

  /// Bottom-up bulk build from entries sorted by key (ties allowed).
  /// `fill_factor` in (0,1] controls leaf occupancy.
  static util::Result<std::unique_ptr<BPlusTree>> BulkBuild(
      storage::BufferPool* pool, const std::string& name,
      std::vector<Entry> sorted_entries, double fill_factor = 1.0);

  /// Convenience: extract (column value, rid) of every tuple of `table`,
  /// sort, and bulk build — i.e. "create index on table(col)".
  static util::Result<std::unique_ptr<BPlusTree>> BuildForColumn(
      storage::Table* table, size_t col, const std::string& name);

  /// Inserts one entry (top-down, splitting full nodes).
  util::Status Insert(int64_t key, storage::Rid rid);

  /// All rids with exactly `key`.
  util::Result<std::vector<storage::Rid>> Lookup(int64_t key) const;

  /// All rids with lo <= key <= hi, in key order (leaf chain walk).
  util::Result<std::vector<storage::Rid>> RangeLookup(int64_t lo,
                                                      int64_t hi) const;

  uint64_t num_entries() const { return num_entries_; }
  uint32_t num_pages() const;
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(num_pages()) * storage::kPageSize;
  }
  int height() const { return height_; }

  /// Entries per leaf / per internal node (16 B and 12 B slots).
  static constexpr uint32_t kLeafCapacity =
      static_cast<uint32_t>((storage::kPageSize - 16) / 16);
  static constexpr uint32_t kInternalCapacity =
      static_cast<uint32_t>((storage::kPageSize - 16) / 12);

 private:
  BPlusTree(storage::BufferPool* pool, storage::FileId file)
      : pool_(pool), file_(file) {}

  /// Descends to the leaf that should contain `key`.
  util::Result<uint32_t> FindLeaf(int64_t key) const;

  /// Recursive insert; on split reports (separator key, new page) upward.
  struct SplitInfo {
    bool split = false;
    int64_t separator = 0;
    uint32_t new_page = 0;
  };
  util::Result<SplitInfo> InsertInto(uint32_t page_no, int64_t key,
                                     storage::Rid rid);

  storage::BufferPool* pool_;
  storage::FileId file_;
  uint32_t root_ = 0;
  int height_ = 0;  // 0 = empty, 1 = root is leaf
  uint64_t num_entries_ = 0;
};

}  // namespace smadb::baseline

#endif  // SMADB_BASELINE_BPTREE_H_
