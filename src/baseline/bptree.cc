#include "baseline/bptree.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace smadb::baseline {

using storage::Page;
using storage::PageGuard;
using storage::Rid;
using util::Result;
using util::Status;

namespace {

// Node layout:
//   0: uint16 count      2: uint8 is_leaf     4: uint32 next (leaf chain)
//   16...: entries — leaf: {int64 key, uint32 page, uint16 slot, pad2} (16B)
//                  internal: {int64 sep_key, uint32 child} (12B)
constexpr size_t kHeader = 16;
constexpr uint32_t kNoNext = UINT32_MAX;

uint16_t Count(const Page& p) { return p.ReadAt<uint16_t>(0); }
void SetCount(Page* p, uint16_t c) { p->WriteAt<uint16_t>(0, c); }
bool IsLeaf(const Page& p) { return p.ReadAt<uint8_t>(2) != 0; }
void SetIsLeaf(Page* p, bool leaf) {
  p->WriteAt<uint8_t>(2, leaf ? 1 : 0);
}
uint32_t NextLeaf(const Page& p) { return p.ReadAt<uint32_t>(4); }
void SetNextLeaf(Page* p, uint32_t n) { p->WriteAt<uint32_t>(4, n); }

int64_t LeafKey(const Page& p, uint32_t i) {
  return p.ReadAt<int64_t>(kHeader + i * 16);
}
Rid LeafRid(const Page& p, uint32_t i) {
  Rid r;
  r.page_no = p.ReadAt<uint32_t>(kHeader + i * 16 + 8);
  r.slot = p.ReadAt<uint16_t>(kHeader + i * 16 + 12);
  return r;
}
void SetLeafEntry(Page* p, uint32_t i, int64_t key, Rid rid) {
  p->WriteAt<int64_t>(kHeader + i * 16, key);
  p->WriteAt<uint32_t>(kHeader + i * 16 + 8, rid.page_no);
  p->WriteAt<uint16_t>(kHeader + i * 16 + 12, rid.slot);
}

int64_t InternalKey(const Page& p, uint32_t i) {
  return p.ReadAt<int64_t>(kHeader + i * 12);
}
uint32_t InternalChild(const Page& p, uint32_t i) {
  return p.ReadAt<uint32_t>(kHeader + i * 12 + 8);
}
void SetInternalEntry(Page* p, uint32_t i, int64_t key, uint32_t child) {
  p->WriteAt<int64_t>(kHeader + i * 12, key);
  p->WriteAt<uint32_t>(kHeader + i * 12 + 8, child);
}

// Index of the child to descend into on the *insert* path: last entry whose
// separator <= key (append after duplicates). Entry 0's separator acts as
// -infinity.
uint32_t ChildIndexFor(const Page& p, int64_t key) {
  const uint16_t n = Count(p);
  uint32_t lo = 0;
  for (uint32_t i = 1; i < n; ++i) {
    if (InternalKey(p, i) <= key) {
      lo = i;
    } else {
      break;
    }
  }
  return lo;
}

// Index of the child to descend into on the *read* path: last entry whose
// separator is strictly below key. With duplicate keys straddling a leaf
// boundary, the first occurrence of `key` may live in the leaf left of the
// separator equal to it; starting there and walking the leaf chain forward
// (which RangeLookup does) sees every occurrence.
uint32_t ChildIndexForFirst(const Page& p, int64_t key) {
  const uint16_t n = Count(p);
  uint32_t lo = 0;
  for (uint32_t i = 1; i < n; ++i) {
    if (InternalKey(p, i) < key) {
      lo = i;
    } else {
      break;
    }
  }
  return lo;
}

}  // namespace

Result<std::unique_ptr<BPlusTree>> BPlusTree::Create(
    storage::BufferPool* pool, const std::string& name) {
  SMADB_ASSIGN_OR_RETURN(storage::FileId file,
                         pool->disk()->CreateFile("idx." + name));
  return std::unique_ptr<BPlusTree>(new BPlusTree(pool, file));
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::BulkBuild(
    storage::BufferPool* pool, const std::string& name,
    std::vector<Entry> sorted_entries, double fill_factor) {
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<BPlusTree> tree, Create(pool, name));
  if (sorted_entries.empty()) return tree;

  const uint32_t leaf_fill = std::max<uint32_t>(
      1, static_cast<uint32_t>(kLeafCapacity * fill_factor));
  const uint32_t internal_fill = std::max<uint32_t>(
      2, static_cast<uint32_t>(kInternalCapacity * fill_factor));

  // Level 0: pack leaves, remembering each leaf's first key.
  std::vector<std::pair<int64_t, uint32_t>> level;  // (first key, page)
  {
    size_t i = 0;
    uint32_t prev_leaf = kNoNext;
    PageGuard prev_guard;
    while (i < sorted_entries.size()) {
      uint32_t page_no;
      SMADB_ASSIGN_OR_RETURN(PageGuard guard,
                             pool->NewPage(tree->file_, &page_no));
      Page* p = guard.MutablePage();
      SetIsLeaf(p, true);
      SetNextLeaf(p, kNoNext);
      uint16_t n = 0;
      while (i < sorted_entries.size() && n < leaf_fill) {
        SetLeafEntry(p, n, sorted_entries[i].key, sorted_entries[i].rid);
        ++n;
        ++i;
      }
      SetCount(p, n);
      level.emplace_back(LeafKey(*p, 0), page_no);
      if (prev_leaf != kNoNext) {
        SetNextLeaf(prev_guard.MutablePage(), page_no);
      }
      prev_leaf = page_no;
      prev_guard = std::move(guard);
    }
  }
  tree->num_entries_ = sorted_entries.size();
  tree->height_ = 1;

  // Upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::pair<int64_t, uint32_t>> next_level;
    size_t i = 0;
    while (i < level.size()) {
      uint32_t page_no;
      SMADB_ASSIGN_OR_RETURN(PageGuard guard,
                             pool->NewPage(tree->file_, &page_no));
      Page* p = guard.MutablePage();
      SetIsLeaf(p, false);
      uint16_t n = 0;
      while (i < level.size() && n < internal_fill) {
        SetInternalEntry(p, n, level[i].first, level[i].second);
        ++n;
        ++i;
      }
      SetCount(p, n);
      next_level.emplace_back(InternalKey(*p, 0), page_no);
    }
    level = std::move(next_level);
    ++tree->height_;
  }
  tree->root_ = level[0].second;
  return tree;
}

Result<std::unique_ptr<BPlusTree>> BPlusTree::BuildForColumn(
    storage::Table* table, size_t col, const std::string& name) {
  std::vector<Entry> entries;
  entries.reserve(table->num_tuples());
  for (uint32_t b = 0; b < table->num_buckets(); ++b) {
    SMADB_RETURN_NOT_OK(table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& t, Rid rid) {
          entries.push_back(Entry{t.GetRawInt(col), rid});
        }));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.key < b.key; });
  return BulkBuild(table->pool(), name, std::move(entries));
}

Result<uint32_t> BPlusTree::FindLeaf(int64_t key) const {
  if (height_ == 0) return Status::NotFound("empty tree");
  uint32_t page_no = root_;
  while (true) {
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, page_no));
    if (IsLeaf(*guard.page())) return page_no;
    page_no =
        InternalChild(*guard.page(), ChildIndexForFirst(*guard.page(), key));
  }
}

Result<std::vector<Rid>> BPlusTree::Lookup(int64_t key) const {
  return RangeLookup(key, key);
}

Result<std::vector<Rid>> BPlusTree::RangeLookup(int64_t lo, int64_t hi) const {
  std::vector<Rid> out;
  if (height_ == 0 || lo > hi) return out;
  SMADB_ASSIGN_OR_RETURN(uint32_t page_no, FindLeaf(lo));
  while (page_no != kNoNext) {
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, page_no));
    const Page& p = *guard.page();
    const uint16_t n = Count(p);
    for (uint16_t i = 0; i < n; ++i) {
      const int64_t k = LeafKey(p, i);
      if (k > hi) return out;
      if (k >= lo) out.push_back(LeafRid(p, i));
    }
    page_no = NextLeaf(p);
  }
  return out;
}

Result<BPlusTree::SplitInfo> BPlusTree::InsertInto(uint32_t page_no,
                                                   int64_t key, Rid rid) {
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, page_no));
  SplitInfo info;

  if (IsLeaf(*guard.page())) {
    Page* p = guard.MutablePage();
    uint16_t n = Count(*p);
    // Position: first index with key greater (insert after duplicates).
    uint16_t pos = 0;
    while (pos < n && LeafKey(*p, pos) <= key) ++pos;
    if (n < kLeafCapacity) {
      for (uint16_t i = n; i > pos; --i) {
        SetLeafEntry(p, i, LeafKey(*p, i - 1), LeafRid(*p, i - 1));
      }
      SetLeafEntry(p, pos, key, rid);
      SetCount(p, static_cast<uint16_t>(n + 1));
      return info;
    }
    // Split: move the upper half to a fresh leaf, then insert.
    uint32_t new_page;
    SMADB_ASSIGN_OR_RETURN(PageGuard new_guard,
                           pool_->NewPage(file_, &new_page));
    Page* np = new_guard.MutablePage();
    SetIsLeaf(np, true);
    const uint16_t mid = n / 2;
    uint16_t moved = 0;
    for (uint16_t i = mid; i < n; ++i, ++moved) {
      SetLeafEntry(np, moved, LeafKey(*p, i), LeafRid(*p, i));
    }
    SetCount(np, moved);
    SetCount(p, mid);
    SetNextLeaf(np, NextLeaf(*p));
    SetNextLeaf(p, new_page);
    // Insert into the proper half.
    Page* target = key < LeafKey(*np, 0) ? p : np;
    uint16_t tn = Count(*target);
    pos = 0;
    while (pos < tn && LeafKey(*target, pos) <= key) ++pos;
    for (uint16_t i = tn; i > pos; --i) {
      SetLeafEntry(target, i, LeafKey(*target, i - 1), LeafRid(*target, i - 1));
    }
    SetLeafEntry(target, pos, key, rid);
    SetCount(target, static_cast<uint16_t>(tn + 1));
    if (target == np) new_guard.MutablePage();
    info.split = true;
    info.separator = LeafKey(*np, 0);
    info.new_page = new_page;
    return info;
  }

  // Internal node: descend, then absorb a child split if one happened.
  const uint32_t child_idx = ChildIndexFor(*guard.page(), key);
  const uint32_t child = InternalChild(*guard.page(), child_idx);
  guard.Release();  // avoid holding pins across the recursive descent
  SMADB_ASSIGN_OR_RETURN(SplitInfo child_split, InsertInto(child, key, rid));
  if (!child_split.split) return info;

  SMADB_ASSIGN_OR_RETURN(guard, pool_->Fetch(file_, page_no));
  Page* p = guard.MutablePage();
  uint16_t n = Count(*p);
  uint16_t pos = 0;
  while (pos < n && InternalKey(*p, pos) <= child_split.separator) ++pos;
  if (n < kInternalCapacity) {
    for (uint16_t i = n; i > pos; --i) {
      SetInternalEntry(p, i, InternalKey(*p, i - 1), InternalChild(*p, i - 1));
    }
    SetInternalEntry(p, pos, child_split.separator, child_split.new_page);
    SetCount(p, static_cast<uint16_t>(n + 1));
    return info;
  }
  // Split the internal node.
  uint32_t new_page;
  SMADB_ASSIGN_OR_RETURN(PageGuard new_guard, pool_->NewPage(file_, &new_page));
  Page* np = new_guard.MutablePage();
  SetIsLeaf(np, false);
  const uint16_t mid = n / 2;
  uint16_t moved = 0;
  for (uint16_t i = mid; i < n; ++i, ++moved) {
    SetInternalEntry(np, moved, InternalKey(*p, i), InternalChild(*p, i));
  }
  SetCount(np, moved);
  SetCount(p, mid);
  Page* target = child_split.separator < InternalKey(*np, 0) ? p : np;
  uint16_t tn = Count(*target);
  pos = 0;
  while (pos < tn && InternalKey(*target, pos) <= child_split.separator) ++pos;
  for (uint16_t i = tn; i > pos; --i) {
    SetInternalEntry(target, i, InternalKey(*target, i - 1),
                     InternalChild(*target, i - 1));
  }
  SetInternalEntry(target, pos, child_split.separator, child_split.new_page);
  SetCount(target, static_cast<uint16_t>(tn + 1));
  info.split = true;
  info.separator = InternalKey(*np, 0);
  info.new_page = new_page;
  return info;
}

Status BPlusTree::Insert(int64_t key, Rid rid) {
  if (height_ == 0) {
    uint32_t page_no;
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage(file_, &page_no));
    Page* p = guard.MutablePage();
    SetIsLeaf(p, true);
    SetNextLeaf(p, kNoNext);
    SetLeafEntry(p, 0, key, rid);
    SetCount(p, 1);
    root_ = page_no;
    height_ = 1;
    num_entries_ = 1;
    return Status::OK();
  }
  SMADB_ASSIGN_OR_RETURN(SplitInfo split, InsertInto(root_, key, rid));
  if (split.split) {
    // Grow a new root above the two halves.
    uint32_t page_no;
    SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage(file_, &page_no));
    Page* p = guard.MutablePage();
    SetIsLeaf(p, false);
    // The old root's smallest key separates nothing; entry 0 is -infinity.
    SetInternalEntry(p, 0, INT64_MIN, root_);
    SetInternalEntry(p, 1, split.separator, split.new_page);
    SetCount(p, 2);
    root_ = page_no;
    ++height_;
  }
  ++num_entries_;
  return Status::OK();
}

uint32_t BPlusTree::num_pages() const {
  auto pages = pool_->disk()->NumPages(file_);
  return pages.ok() ? *pages : 0;
}

}  // namespace smadb::baseline
