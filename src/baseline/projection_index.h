// Projection index (O'Neil & Quass [16]): "In a projection index on a
// certain attribute, for all tuples in the relation to index, the attribute
// value is stored sequentially in a file."
//
// The paper positions SMAs as a generalization of projection indexes — a
// SMA whose bucket holds exactly one tuple degenerates to one. Implemented
// here as a baseline for selection-heavy workloads: the predicate is
// evaluated over the (narrow) value file instead of the (wide) relation.

#ifndef SMADB_BASELINE_PROJECTION_INDEX_H_
#define SMADB_BASELINE_PROJECTION_INDEX_H_

#include <memory>

#include "expr/predicate.h"
#include "sma/sma_file.h"
#include "storage/table.h"
#include "util/bitvector.h"

namespace smadb::baseline {

class ProjectionIndex {
 public:
  /// Materializes column `col` of `table` into a sequential value file.
  static util::Result<std::unique_ptr<ProjectionIndex>> Build(
      storage::Table* table, size_t col);

  /// Value of tuple `i` (positional).
  util::Result<int64_t> Get(uint64_t i) const;

  /// Counts tuples with value `op c` by scanning only the value file.
  util::Result<uint64_t> CountMatching(expr::CmpOp op, int64_t c) const;

  /// Marks matching tuple positions (for rid-list style consumption).
  util::Result<util::BitVector> MatchingPositions(expr::CmpOp op,
                                                  int64_t c) const;

  uint64_t num_values() const { return file_->num_entries(); }
  uint32_t num_pages() const { return file_->num_pages(); }
  uint64_t SizeBytes() const { return file_->SizeBytes(); }
  size_t column() const { return col_; }

 private:
  ProjectionIndex(std::unique_ptr<sma::SmaFile> file, size_t col)
      : file_(std::move(file)), col_(col) {}

  // Reuses the headerless packed-entry file format: a projection index *is*
  // a SMA-file with one entry per tuple.
  std::unique_ptr<sma::SmaFile> file_;
  size_t col_;
};

}  // namespace smadb::baseline

#endif  // SMADB_BASELINE_PROJECTION_INDEX_H_
