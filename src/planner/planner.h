// Plan generation in the presence of SMAs (paper §3).
//
// The optimizer's job here is the one the paper flags as the "slight
// disadvantage" of SMAs: deciding *when* they pay off. The cost model is
// the empirical break-even of Fig. 5: SMA plans win while the fraction of
// buckets that must still be fetched stays below ~25%; beyond that a plain
// sequential scan is faster (and the erroneous-SMA overhead stays ~2%
// because grading reads only the tiny SMA-files).
//
// Plans for an aggregation query, best first:
//   SMA_GAggr            — aggregates from SMAs; fetches only ambivalent
//                          buckets. Needs matching aggregate SMAs.
//   GAggr ∘ SMA_Scan     — selection pruning only; fetches qualifying +
//                          ambivalent buckets.
//   GAggr ∘ TableScan    — the fallback the paper measures against.
//
// Degradation: SMA plans are only eligible while every SMA of the table is
// trusted and epoch-fresh (SmaSet::TrustIssue). A corrupt, stale, or
// verification-failed SMA demotes the plan to the sequential-scan form —
// queries keep answering correctly from base data, just slower — and the
// demotion is recorded in the plan explanation. Corruption discovered while
// grading or mid-run additionally condemns the owning SMA so the next
// SmaMaintainer::Rebuild() repairs it.

#ifndef SMADB_PLANNER_PLANNER_H_
#define SMADB_PLANNER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/gaggr.h"
#include "exec/sma_gaggr.h"
#include "exec/sma_scan.h"
#include "exec/table_scan.h"
#include "sma/sma_set.h"
#include "util/query_context.h"

namespace smadb::plan {

/// A grouping-aggregation query block (select aggs ... where pred group by).
struct AggQuery {
  storage::Table* table = nullptr;
  expr::PredicatePtr pred;  // Predicate::True() when unrestricted
  std::vector<size_t> group_by;
  std::vector<exec::AggSpec> aggs;
};

/// A pure selection query block (select * ... where pred).
struct SelectQuery {
  storage::Table* table = nullptr;
  expr::PredicatePtr pred;
};

enum class PlanKind { kScanAggr, kSmaScanAggr, kSmaGAggr, kScan, kSmaScan };

std::string_view PlanKindToString(PlanKind k);

/// The chosen plan plus the bucket census that justified it.
struct PlanChoice {
  PlanKind kind = PlanKind::kScanAggr;
  uint64_t qualifying = 0;
  uint64_t disqualifying = 0;
  uint64_t ambivalent = 0;
  /// Fraction of buckets the chosen plan will fetch.
  double fetch_fraction = 1.0;
  /// Workers the plan will run with (1 = serial; chosen per plan so that
  /// small bucket counts never pay thread overhead).
  size_t dop = 1;
  /// Set when the answer is a degraded SMA-only partial result (ambivalent
  /// buckets skipped under deadline/budget pressure, DESIGN.md §10). A
  /// degraded answer is a lower bound, never silently passed off as exact —
  /// consumers must surface this marker.
  bool degraded = false;
  std::string explanation;

  uint64_t total_buckets() const {
    return qualifying + disqualifying + ambivalent;
  }
};

/// Fully materialized query result. The schema lives behind a shared_ptr
/// because each row's TupleBuffer refers to it; the indirection keeps those
/// references valid across moves of the QueryResult.
struct QueryResult {
  std::shared_ptr<const storage::Schema> schema;
  std::vector<storage::TupleBuffer> rows;
  PlanChoice plan;

  /// Formatted as a text table (column header + rows).
  std::string ToString() const;
};

struct PlannerOptions {
  /// Fig. 5 break-even: SMA plans are only chosen while the fraction of
  /// buckets they would fetch stays below this.
  double breakeven_fraction = 0.25;
  /// Force a plan regardless of cost (for experiments like Fig. 5's
  /// "erroneously applied" curve). kScanAggr means "no forcing".
  bool force_sma = false;
  /// Requested degree of parallelism for aggregation plans. 0 = auto
  /// (hardware concurrency), 1 = serial. The planner may lower it per plan:
  /// each worker should own a few buckets of real work, so tiny tables and
  /// highly pruned plans stay serial.
  size_t degree_of_parallelism = 0;
  /// Rows per batch for aggregation plans. > 0 (the default) runs the
  /// vectorized engine: scans decode buckets into column batches, bucket
  /// grades map onto selection vectors, and aggregation uses the fused
  /// BatchAggregator kernels. 0 reverts to tuple-at-a-time. Results are
  /// identical either way; selection (select *) plans always return rows.
  size_t batch_size = exec::kDefaultBatchSize;
  /// Allow the bottom rung of the degradation ladder: when a SMA_GAggr plan
  /// runs out of deadline or memory, answer from SMAs alone (skipping
  /// ambivalent buckets) with an explicit `degraded` marker instead of
  /// failing. Off = the typed error propagates.
  bool allow_degraded = true;
};

class Planner {
 public:
  /// `smas` may be null (no SMAs on the table).
  explicit Planner(const sma::SmaSet* smas, PlannerOptions options = {})
      : smas_(smas), options_(options) {}

  /// Grades all buckets (cheap: SMA-files only) and picks a plan. `ctx`
  /// (optional) governs the grading pass itself — a deadline that expires
  /// during the census is observed per bucket.
  util::Result<PlanChoice> Choose(const AggQuery& query,
                                  const util::QueryContext* ctx = nullptr)
      const;
  util::Result<PlanChoice> ChooseSelect(
      const SelectQuery& query,
      const util::QueryContext* ctx = nullptr) const;

  /// Instantiates the operator tree for a choice. `dop` > 1 swaps in the
  /// morsel-parallel forms (ParallelScanAggr, parallel SMA_GAggr); the
  /// default keeps the serial operators and every existing call site.
  util::Result<std::unique_ptr<exec::Operator>> Build(const AggQuery& query,
                                                      PlanKind kind,
                                                      size_t dop = 1) const;
  util::Result<std::unique_ptr<exec::Operator>> BuildSelect(
      const SelectQuery& query, PlanKind kind) const;

  /// Choose + Build + run to completion. `ctx` (optional) is the query's
  /// runtime governor; when bound, failures walk the degradation ladder
  /// (DESIGN.md §10): a vectorized plan that exhausts its memory budget is
  /// demoted to row mode, and a SMA_GAggr plan that still cannot finish
  /// under the deadline/budget answers from SMAs alone with the result
  /// marked `degraded`. Typed errors (kCancelled, kDeadlineExceeded,
  /// kResourceExhausted) propagate when no rung applies — never a hang,
  /// never a silent wrong answer.
  util::Result<QueryResult> Execute(const AggQuery& query,
                                    util::QueryContext* ctx = nullptr) const;
  util::Result<QueryResult> ExecuteSelect(
      const SelectQuery& query, util::QueryContext* ctx = nullptr) const;

 private:
  /// Bucket census for a predicate: fills q/d/a of `choice`.
  util::Status Census(storage::Table* table, const expr::PredicatePtr& pred,
                      PlanChoice* choice,
                      const util::QueryContext* ctx) const;

  /// The bottom rung of the degradation ladder: a full-scan choice whose
  /// explanation records why the SMA plan was demoted.
  PlanChoice Demoted(uint64_t total_buckets, bool select,
                     const std::string& reason) const;

  /// Condemns every SMA owning a file named in `s`'s message (checksum
  /// failures name the file), so the next Rebuild() repairs it.
  void DistrustCorrupted(const util::Status& s) const;

  /// Per-plan DOP: the requested (or hardware) worker count, lowered so
  /// every worker owns at least a handful of fetchable buckets.
  size_t PlanDop(uint64_t fetch_buckets) const;

  const sma::SmaSet* smas_;
  PlannerOptions options_;
};

/// Runs any operator to completion, copying its output rows. `ctx`
/// (optional) adds a cooperative checkpoint to the result-copy loop.
util::Result<QueryResult> RunToCompletion(exec::Operator* op,
                                          const util::QueryContext* ctx =
                                              nullptr);

}  // namespace smadb::plan

#endif  // SMADB_PLANNER_PLANNER_H_
