#include "planner/planner.h"

#include "exec/parallel_aggr.h"
#include "obs/profile.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace smadb::plan {

using exec::GAggr;
using exec::Operator;
using exec::ParallelScanAggr;
using exec::SmaGAggr;
using exec::SmaScan;
using exec::TableScan;
using sma::Grade;
using storage::TupleBuffer;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::StatusCode;

namespace {

// Execution-mode suffix for aggregate-plan explanations.
std::string BatchNote(size_t batch_size) {
  if (batch_size == 0) return ", row-mode";
  return util::Format(", vectorized(batch=%zu)", batch_size);
}

// Appends the governor's budget/deadline summary and any degradation
// decisions to the plan explanation — same style as the fallback reasons
// (`explain` surfaces this verbatim).
void AnnotateGovernor(PlanChoice* plan, const util::QueryContext* ctx) {
  if (ctx == nullptr) return;
  const std::string gov = ctx->GovernorNote();
  if (!gov.empty()) plan->explanation += "; governor: " + gov;
  const std::string notes = ctx->DegradationNotes();
  if (!notes.empty()) plan->explanation += "; " + notes;
}

}  // namespace

std::string_view PlanKindToString(PlanKind k) {
  switch (k) {
    case PlanKind::kScanAggr:
      return "GAggr(TableScan)";
    case PlanKind::kSmaScanAggr:
      return "GAggr(SMA_Scan)";
    case PlanKind::kSmaGAggr:
      return "SMA_GAggr";
    case PlanKind::kScan:
      return "TableScan";
    case PlanKind::kSmaScan:
      return "SMA_Scan";
  }
  return "?";
}

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t c = 0; c < schema->num_fields(); ++c) {
    if (c > 0) out += " | ";
    out += schema->field(c).name;
  }
  out += '\n';
  for (const TupleBuffer& row : rows) {
    const TupleRef ref = row.AsRef();
    for (size_t c = 0; c < schema->num_fields(); ++c) {
      if (c > 0) out += " | ";
      out += ref.GetValue(c).ToString();
    }
    out += '\n';
  }
  return out;
}

Status Planner::Census(storage::Table* table, const expr::PredicatePtr& pred,
                       PlanChoice* choice,
                       const util::QueryContext* ctx) const {
  exec::BucketSource source(table, pred, smas_);
  if (!source.has_sma_support()) {
    // No SMA grades anything; report everything ambivalent without reading.
    choice->ambivalent = table->num_buckets();
    return Status::OK();
  }
  exec::SmaScanStats stats;
  exec::BucketUnit unit;
  while (true) {
    SMADB_RETURN_NOT_OK(util::QueryContext::Check(ctx, "Census"));
    SMADB_ASSIGN_OR_RETURN(bool has, source.NextGraded(&unit));
    if (!has) break;
    stats.Tally(unit.grade);
  }
  choice->qualifying = stats.qualifying_buckets;
  choice->disqualifying = stats.disqualifying_buckets;
  choice->ambivalent = stats.ambivalent_buckets;
  return Status::OK();
}

PlanChoice Planner::Demoted(uint64_t total_buckets, bool select,
                            const std::string& reason) const {
  PlanChoice choice;
  choice.kind = select ? PlanKind::kScan : PlanKind::kScanAggr;
  choice.ambivalent = total_buckets;
  choice.fetch_fraction = 1.0;
  choice.dop = select ? 1 : PlanDop(total_buckets);
  choice.explanation = "demoted to sequential scan: " + reason;
  if (!select) {
    choice.explanation += util::Format(", dop=%zu", choice.dop);
    choice.explanation += BatchNote(options_.batch_size);
  }
  return choice;
}

void Planner::DistrustCorrupted(const Status& s) const {
  if (smas_ == nullptr) return;
  for (const sma::Sma* sma : smas_->all()) {
    for (size_t g = 0; g < sma->num_groups(); ++g) {
      const std::string name =
          sma->pool()->disk()->FileName(sma->group_file(g)->file());
      if (!name.empty() &&
          s.message().find("'" + name + "'") != std::string::npos) {
        sma->MarkDistrusted(s.message());
      }
    }
  }
}

size_t Planner::PlanDop(uint64_t fetch_buckets) const {
  size_t requested = options_.degree_of_parallelism;
  if (requested == 0) requested = util::ThreadPool::DefaultDop();
  if (requested <= 1) return 1;
  // Each worker should own at least a handful of fetchable buckets;
  // otherwise thread startup dwarfs the per-morsel work.
  constexpr uint64_t kMinBucketsPerWorker = 4;
  const uint64_t cap =
      std::max<uint64_t>(1, fetch_buckets / kMinBucketsPerWorker);
  return static_cast<size_t>(
      std::min<uint64_t>(static_cast<uint64_t>(requested), cap));
}

Result<PlanChoice> Planner::Choose(const AggQuery& query,
                                   const util::QueryContext* ctx) const {
  PlanChoice choice;
  if (smas_ == nullptr || smas_->size() == 0) {
    choice.kind = PlanKind::kScanAggr;
    choice.ambivalent = query.table->num_buckets();
    choice.fetch_fraction = 1.0;
    choice.dop = PlanDop(choice.ambivalent);
    choice.explanation =
        util::Format("no SMAs available, dop=%zu", choice.dop) +
        BatchNote(options_.batch_size);
    return choice;
  }
  const std::string trust_issue = smas_->TrustIssue();
  if (!trust_issue.empty()) {
    return Demoted(query.table->num_buckets(), /*select=*/false, trust_issue);
  }
  const Status census = Census(query.table, query.pred, &choice, ctx);
  if (!census.ok()) {
    if (census.code() == StatusCode::kCorruption) DistrustCorrupted(census);
    if (census.code() == StatusCode::kCorruption ||
        census.code() == StatusCode::kIOError) {
      // Grading failed reading a SMA-file; base data is still authoritative.
      return Demoted(query.table->num_buckets(), /*select=*/false,
                     "grading failed (" + census.message() + ")");
    }
    return census;
  }
  const double total =
      std::max<double>(1.0, static_cast<double>(choice.total_buckets()));
  const double ambivalent_frac =
      static_cast<double>(choice.ambivalent) / total;
  const double processed_frac =
      static_cast<double>(choice.qualifying + choice.ambivalent) / total;

  // Can SMA_GAggr be bound at all? (Probe construction; cheap.)
  const bool gaggr_available =
      SmaGAggr::Make(query.table, query.pred, query.group_by, query.aggs,
                     smas_)
          .ok();

  if (gaggr_available &&
      (options_.force_sma || ambivalent_frac < options_.breakeven_fraction)) {
    choice.kind = PlanKind::kSmaGAggr;
    choice.fetch_fraction = ambivalent_frac;
    choice.dop = PlanDop(choice.qualifying + choice.ambivalent);
    choice.explanation = util::Format(
        "SMA_GAggr fetches %.1f%% of buckets (break-even %.0f%%)",
        ambivalent_frac * 100.0, options_.breakeven_fraction * 100.0);
  } else if (choice.disqualifying > 0 &&
             (options_.force_sma ||
              processed_frac < options_.breakeven_fraction)) {
    choice.kind = PlanKind::kSmaScanAggr;
    choice.fetch_fraction = processed_frac;
    choice.dop = PlanDop(choice.qualifying + choice.ambivalent);
    choice.explanation = util::Format(
        "SMA_Scan fetches %.1f%% of buckets%s", processed_frac * 100.0,
        gaggr_available ? "" : " (no matching aggregate SMAs)");
  } else {
    choice.kind = PlanKind::kScanAggr;
    choice.fetch_fraction = 1.0;
    choice.dop = PlanDop(choice.total_buckets());
    choice.explanation = util::Format(
        "sequential scan: SMA plan would fetch %.1f%% of buckets "
        "(break-even %.0f%%)",
        (gaggr_available ? ambivalent_frac : processed_frac) * 100.0,
        options_.breakeven_fraction * 100.0);
  }
  choice.explanation += util::Format(", dop=%zu", choice.dop);
  choice.explanation += BatchNote(options_.batch_size);
  return choice;
}

Result<PlanChoice> Planner::ChooseSelect(const SelectQuery& query,
                                         const util::QueryContext* ctx) const {
  PlanChoice choice;
  if (smas_ == nullptr || smas_->size() == 0) {
    choice.kind = PlanKind::kScan;
    choice.ambivalent = query.table->num_buckets();
    choice.fetch_fraction = 1.0;
    choice.explanation = "no SMAs available";
    return choice;
  }
  const std::string trust_issue = smas_->TrustIssue();
  if (!trust_issue.empty()) {
    return Demoted(query.table->num_buckets(), /*select=*/true, trust_issue);
  }
  const Status census = Census(query.table, query.pred, &choice, ctx);
  if (!census.ok()) {
    if (census.code() == StatusCode::kCorruption) DistrustCorrupted(census);
    if (census.code() == StatusCode::kCorruption ||
        census.code() == StatusCode::kIOError) {
      return Demoted(query.table->num_buckets(), /*select=*/true,
                     "grading failed (" + census.message() + ")");
    }
    return census;
  }
  const double total =
      std::max<double>(1.0, static_cast<double>(choice.total_buckets()));
  const double processed_frac =
      static_cast<double>(choice.qualifying + choice.ambivalent) / total;
  if (choice.disqualifying > 0 &&
      (options_.force_sma || processed_frac < options_.breakeven_fraction)) {
    choice.kind = PlanKind::kSmaScan;
    choice.fetch_fraction = processed_frac;
    choice.explanation =
        util::Format("SMA_Scan fetches %.1f%% of buckets",
                     processed_frac * 100.0);
  } else {
    choice.kind = PlanKind::kScan;
    choice.fetch_fraction = 1.0;
    choice.explanation = "sequential scan";
  }
  return choice;
}

Result<std::unique_ptr<Operator>> Planner::Build(const AggQuery& query,
                                                 PlanKind kind,
                                                 size_t dop) const {
  dop = std::max<size_t>(1, dop);
  switch (kind) {
    case PlanKind::kSmaGAggr: {
      exec::SmaGAggrOptions options;
      options.degree_of_parallelism = dop;
      options.batch_size = options_.batch_size;
      SMADB_ASSIGN_OR_RETURN(
          std::unique_ptr<SmaGAggr> op,
          SmaGAggr::Make(query.table, query.pred, query.group_by, query.aggs,
                         smas_, options));
      return std::unique_ptr<Operator>(std::move(op));
    }
    case PlanKind::kSmaScanAggr: {
      if (dop > 1) {
        SMADB_ASSIGN_OR_RETURN(
            std::unique_ptr<ParallelScanAggr> op,
            ParallelScanAggr::Make(query.table, query.pred, query.group_by,
                                   query.aggs, smas_, dop,
                                   options_.batch_size));
        return std::unique_ptr<Operator>(std::move(op));
      }
      auto scan = std::make_unique<SmaScan>(query.table, query.pred, smas_);
      SMADB_ASSIGN_OR_RETURN(
          std::unique_ptr<GAggr> aggr,
          GAggr::Make(std::move(scan), query.group_by, query.aggs,
                      options_.batch_size));
      return std::unique_ptr<Operator>(std::move(aggr));
    }
    case PlanKind::kScanAggr: {
      if (dop > 1) {
        SMADB_ASSIGN_OR_RETURN(
            std::unique_ptr<ParallelScanAggr> op,
            ParallelScanAggr::Make(query.table, query.pred, query.group_by,
                                   query.aggs, /*smas=*/nullptr, dop,
                                   options_.batch_size));
        return std::unique_ptr<Operator>(std::move(op));
      }
      auto scan = std::make_unique<TableScan>(query.table, query.pred);
      SMADB_ASSIGN_OR_RETURN(
          std::unique_ptr<GAggr> aggr,
          GAggr::Make(std::move(scan), query.group_by, query.aggs,
                      options_.batch_size));
      return std::unique_ptr<Operator>(std::move(aggr));
    }
    default:
      return Status::InvalidArgument(
          "selection plan kind passed to aggregate Build");
  }
}

Result<std::unique_ptr<Operator>> Planner::BuildSelect(
    const SelectQuery& query, PlanKind kind) const {
  switch (kind) {
    case PlanKind::kSmaScan:
      return std::unique_ptr<Operator>(
          std::make_unique<SmaScan>(query.table, query.pred, smas_));
    case PlanKind::kScan:
      return std::unique_ptr<Operator>(
          std::make_unique<TableScan>(query.table, query.pred));
    default:
      return Status::InvalidArgument(
          "aggregate plan kind passed to BuildSelect");
  }
}

Result<QueryResult> RunToCompletion(Operator* op,
                                    const util::QueryContext* ctx) {
  SMADB_RETURN_NOT_OK(op->Init());
  QueryResult result;
  result.schema = std::make_shared<storage::Schema>(op->output_schema());
  TupleRef t;
  size_t rows_since_check = 0;
  while (true) {
    if (++rows_since_check >= 512) {
      rows_since_check = 0;
      SMADB_RETURN_NOT_OK(util::QueryContext::Check(ctx, "RunToCompletion"));
    }
    SMADB_ASSIGN_OR_RETURN(bool has, op->Next(&t));
    if (!has) break;
    TupleBuffer row(result.schema.get());
    for (size_t c = 0; c < result.schema->num_fields(); ++c) {
      row.SetValue(c, t.GetValue(c));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

namespace {

// A plan can be retried from base data iff it depended on SMA-files and the
// failure is typed as bad/unreadable storage (a demotion cannot outrun an
// InvalidArgument, and rerunning on kResourceExhausted would just re-pin).
bool DemotableFailure(const Status& s) {
  return s.code() == util::StatusCode::kCorruption ||
         s.code() == util::StatusCode::kIOError;
}

}  // namespace

namespace {

uint64_t ElapsedNs(const util::Stopwatch& w) {
  return static_cast<uint64_t>(w.ElapsedSeconds() * 1e9);
}

}  // namespace

Result<QueryResult> Planner::Execute(const AggQuery& query,
                                     util::QueryContext* ctx) const {
  obs::QueryProfile* prof = ctx != nullptr ? ctx->profile() : nullptr;
  util::Stopwatch plan_watch;
  SMADB_ASSIGN_OR_RETURN(PlanChoice choice, Choose(query, ctx));
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<Operator> op,
                         Build(query, choice.kind, choice.dop));
  if (ctx != nullptr) op->BindContext(ctx);
  // Phases accumulate: a degradation-ladder rerun adds its own planning and
  // execution time into the same rows, so the report covers the whole query.
  obs::QueryProfile::Phase(prof, "plan", ElapsedNs(plan_watch));
  util::Stopwatch exec_watch;
  Result<QueryResult> run = RunToCompletion(op.get(), ctx);
  obs::QueryProfile::Phase(prof, "execute", ElapsedNs(exec_watch));
  if (run.ok()) {
    run->plan = choice;
    AnnotateGovernor(&run->plan, ctx);
    return run;
  }
  const bool sma_plan = choice.kind == PlanKind::kSmaGAggr ||
                        choice.kind == PlanKind::kSmaScanAggr;
  if (sma_plan && DemotableFailure(run.status())) {
    // The SMA plan died mid-run on bad storage. Base data is authoritative:
    // rerun as a sequential scan (which still surfaces base-table errors).
    if (run.status().code() == StatusCode::kCorruption) {
      DistrustCorrupted(run.status());
    }
    PlanChoice fallback =
        Demoted(query.table->num_buckets(), /*select=*/false,
                std::string(PlanKindToString(choice.kind)) +
                    " failed mid-run (" + run.status().message() + ")");
    obs::QueryProfile::Event(prof, "demoted to sequential scan: " +
                                       fallback.explanation);
    SMADB_ASSIGN_OR_RETURN(std::unique_ptr<Operator> rerun,
                           Build(query, PlanKind::kScanAggr, fallback.dop));
    if (ctx != nullptr) rerun->BindContext(ctx);
    util::Stopwatch rerun_watch;
    SMADB_ASSIGN_OR_RETURN(QueryResult result,
                           RunToCompletion(rerun.get(), ctx));
    obs::QueryProfile::Phase(prof, "execute", ElapsedNs(rerun_watch));
    result.plan = fallback;
    AnnotateGovernor(&result.plan, ctx);
    return result;
  }
  // Degradation ladder rung 2 (DESIGN.md §10): a vectorized plan that blew
  // its memory budget reruns in row mode — the column batches were the
  // incremental cost, and the row path produces bit-identical results. The
  // budget is reset for the rerun (monotone per-run charges start over).
  if (ctx != nullptr &&
      run.status().code() == StatusCode::kResourceExhausted &&
      options_.batch_size > 0) {
    ctx->BeginDegradedRun("demoted vectorized plan to row mode (" +
                          run.status().message() + ")");
    obs::QueryProfile::Event(prof, "demoted vectorized plan to row mode (" +
                                       run.status().message() + ")");
    PlannerOptions row_options = options_;
    row_options.batch_size = 0;
    Planner row_planner(smas_, row_options);
    return row_planner.Execute(query, ctx);
  }
  // Rung 3: a SMA_GAggr plan that cannot finish under its deadline or
  // budget still answers from the SMA-files alone — qualifying buckets
  // only, ambivalent buckets skipped, result explicitly marked degraded.
  // The deadline is lifted as grace: the SMA-only pass reads tiny files.
  if (ctx != nullptr && options_.allow_degraded &&
      choice.kind == PlanKind::kSmaGAggr &&
      (run.status().code() == StatusCode::kResourceExhausted ||
       run.status().code() == StatusCode::kDeadlineExceeded)) {
    ctx->BeginDegradedRun("degraded to SMA-only partial answer (" +
                          run.status().message() + ")");
    obs::QueryProfile::Event(prof, "degraded to SMA-only partial answer (" +
                                       run.status().message() + ")");
    exec::SmaGAggrOptions sma_options;
    sma_options.degree_of_parallelism = choice.dop;
    sma_options.sma_only = true;  // never decodes bucket data
    SMADB_ASSIGN_OR_RETURN(
        std::unique_ptr<SmaGAggr> sma_op,
        SmaGAggr::Make(query.table, query.pred, query.group_by, query.aggs,
                       smas_, sma_options));
    sma_op->BindContext(ctx);
    util::Stopwatch degraded_watch;
    SMADB_ASSIGN_OR_RETURN(QueryResult result,
                           RunToCompletion(sma_op.get(), ctx));
    obs::QueryProfile::Phase(prof, "execute", ElapsedNs(degraded_watch));
    result.plan = choice;
    result.plan.degraded = true;
    result.plan.explanation += util::Format(
        "; partial: %llu ambivalent buckets skipped",
        static_cast<unsigned long long>(sma_op->buckets_skipped()));
    AnnotateGovernor(&result.plan, ctx);
    return result;
  }
  return run.status();
}

Result<QueryResult> Planner::ExecuteSelect(const SelectQuery& query,
                                           util::QueryContext* ctx) const {
  obs::QueryProfile* prof = ctx != nullptr ? ctx->profile() : nullptr;
  util::Stopwatch plan_watch;
  SMADB_ASSIGN_OR_RETURN(PlanChoice choice, ChooseSelect(query, ctx));
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<Operator> op,
                         BuildSelect(query, choice.kind));
  if (ctx != nullptr) op->BindContext(ctx);
  obs::QueryProfile::Phase(prof, "plan", ElapsedNs(plan_watch));
  util::Stopwatch exec_watch;
  Result<QueryResult> run = RunToCompletion(op.get(), ctx);
  obs::QueryProfile::Phase(prof, "execute", ElapsedNs(exec_watch));
  if (run.ok()) {
    run->plan = choice;
    AnnotateGovernor(&run->plan, ctx);
    return run;
  }
  if (choice.kind != PlanKind::kSmaScan || !DemotableFailure(run.status())) {
    // Selections have no SMA-only partial form (rows cannot be conjured
    // from summaries), so governor errors propagate typed.
    return run.status();
  }
  if (run.status().code() == StatusCode::kCorruption) {
    DistrustCorrupted(run.status());
  }
  PlanChoice fallback =
      Demoted(query.table->num_buckets(), /*select=*/true,
              std::string(PlanKindToString(choice.kind)) +
                  " failed mid-run (" + run.status().message() + ")");
  obs::QueryProfile::Event(prof, "demoted to sequential scan: " +
                                     fallback.explanation);
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<Operator> rerun,
                         BuildSelect(query, PlanKind::kScan));
  if (ctx != nullptr) rerun->BindContext(ctx);
  util::Stopwatch rerun_watch;
  SMADB_ASSIGN_OR_RETURN(QueryResult result, RunToCompletion(rerun.get(), ctx));
  obs::QueryProfile::Phase(prof, "execute", ElapsedNs(rerun_watch));
  result.plan = fallback;
  AnnotateGovernor(&result.plan, ctx);
  return result;
}

}  // namespace smadb::plan
