#include "workloads/q1.h"

#include "expr/expr.h"
#include "expr/predicate.h"
#include "sma/builder.h"
#include "tpch/schemas.h"
#include "util/date.h"

namespace smadb::workloads {

using exec::AggSpec;
using expr::CmpOp;
using expr::ExprPtr;
using expr::Predicate;
using sma::SmaSpec;
using storage::Table;
using util::Result;
using util::Status;
using util::Value;

namespace {

// Canonical Q1 expressions; built identically for SMA specs and queries so
// signature matching succeeds.
struct Q1Exprs {
  ExprPtr shipdate;
  ExprPtr quantity;
  ExprPtr extendedprice;
  ExprPtr discount;
  ExprPtr tax;
  ExprPtr disc_price;  // l_extendedprice * (1 - l_discount)
  ExprPtr charge;      // l_extendedprice * (1 - l_discount) * (1 + l_tax)
};

Result<Q1Exprs> MakeQ1Exprs(const storage::Schema* schema) {
  Q1Exprs e;
  SMADB_ASSIGN_OR_RETURN(e.shipdate, expr::Column(schema, "l_shipdate"));
  SMADB_ASSIGN_OR_RETURN(e.quantity, expr::Column(schema, "l_quantity"));
  SMADB_ASSIGN_OR_RETURN(e.extendedprice,
                         expr::Column(schema, "l_extendedprice"));
  SMADB_ASSIGN_OR_RETURN(e.discount, expr::Column(schema, "l_discount"));
  SMADB_ASSIGN_OR_RETURN(e.tax, expr::Column(schema, "l_tax"));
  SMADB_ASSIGN_OR_RETURN(ExprPtr one_minus_disc, expr::OneMinus(e.discount));
  SMADB_ASSIGN_OR_RETURN(
      e.disc_price,
      expr::Arith(expr::ArithOp::kMul, e.extendedprice, one_minus_disc));
  SMADB_ASSIGN_OR_RETURN(ExprPtr one_plus_tax, expr::OnePlus(e.tax));
  SMADB_ASSIGN_OR_RETURN(
      e.charge, expr::Arith(expr::ArithOp::kMul, e.disc_price, one_plus_tax));
  return e;
}

}  // namespace

Result<std::vector<SmaSpec>> MakeQ1SmaSpecs(const Table* lineitem) {
  const storage::Schema* schema = &lineitem->schema();
  SMADB_ASSIGN_OR_RETURN(Q1Exprs e, MakeQ1Exprs(schema));
  const std::vector<size_t> flags = {tpch::lineitem::kReturnFlag,
                                     tpch::lineitem::kLineStatus};
  std::vector<SmaSpec> specs;
  // Paper Fig. 4, in its order: max, min ungrouped; the rest grouped by
  // L_RETFLAG, L_LINESTAT.
  specs.push_back(SmaSpec::Max("max", e.shipdate));
  specs.push_back(SmaSpec::Min("min", e.shipdate));
  specs.push_back(SmaSpec::Count("count", flags));
  specs.push_back(SmaSpec::Sum("qty", e.quantity, flags));
  specs.push_back(SmaSpec::Sum("dis", e.discount, flags));
  specs.push_back(SmaSpec::Sum("ext", e.extendedprice, flags));
  specs.push_back(SmaSpec::Sum("extdis", e.disc_price, flags));
  specs.push_back(SmaSpec::Sum("extdistax", e.charge, flags));
  return specs;
}

Status BuildQ1Smas(Table* lineitem, sma::SmaSet* smas) {
  SMADB_ASSIGN_OR_RETURN(std::vector<SmaSpec> specs,
                         MakeQ1SmaSpecs(lineitem));
  for (SmaSpec& spec : specs) {
    SMADB_ASSIGN_OR_RETURN(auto sma, sma::BuildSma(lineitem, std::move(spec)));
    SMADB_RETURN_NOT_OK(smas->Add(std::move(sma)));
  }
  return Status::OK();
}

Result<plan::AggQuery> MakeQ1Query(Table* lineitem, int delta_days) {
  const storage::Schema* schema = &lineitem->schema();
  SMADB_ASSIGN_OR_RETURN(Q1Exprs e, MakeQ1Exprs(schema));

  plan::AggQuery q;
  q.table = lineitem;
  const util::Date cutoff =
      util::Date::FromYmd(1998, 12, 1).AddDays(-delta_days);
  SMADB_ASSIGN_OR_RETURN(
      q.pred, Predicate::AtomConst(schema, "l_shipdate", CmpOp::kLe,
                                   Value::MakeDate(cutoff)));
  q.group_by = {tpch::lineitem::kReturnFlag, tpch::lineitem::kLineStatus};
  q.aggs = {
      AggSpec::Sum(e.quantity, "sum_qty"),
      AggSpec::Sum(e.extendedprice, "sum_base_price"),
      AggSpec::Sum(e.disc_price, "sum_disc_price"),
      AggSpec::Sum(e.charge, "sum_charge"),
      AggSpec::Avg(e.quantity, "avg_qty"),
      AggSpec::Avg(e.extendedprice, "avg_price"),
      AggSpec::Avg(e.discount, "avg_disc"),
      AggSpec::Count("count_order"),
  };
  return q;
}

Result<plan::AggQuery> MakeQ6Query(Table* lineitem, int year,
                                   int64_t discount_cents, int64_t quantity) {
  const storage::Schema* schema = &lineitem->schema();
  SMADB_ASSIGN_OR_RETURN(Q1Exprs e, MakeQ1Exprs(schema));

  plan::AggQuery q;
  q.table = lineitem;
  const util::Date lo = util::Date::FromYmd(year, 1, 1);
  const util::Date hi = util::Date::FromYmd(year + 1, 1, 1);
  SMADB_ASSIGN_OR_RETURN(
      expr::PredicatePtr p_lo,
      Predicate::AtomConst(schema, "l_shipdate", CmpOp::kGe,
                           Value::MakeDate(lo)));
  SMADB_ASSIGN_OR_RETURN(
      expr::PredicatePtr p_hi,
      Predicate::AtomConst(schema, "l_shipdate", CmpOp::kLt,
                           Value::MakeDate(hi)));
  SMADB_ASSIGN_OR_RETURN(
      expr::PredicatePtr p_dlo,
      Predicate::AtomConst(schema, "l_discount", CmpOp::kGe,
                           Value::MakeDecimal(
                               util::Decimal(discount_cents - 1))));
  SMADB_ASSIGN_OR_RETURN(
      expr::PredicatePtr p_dhi,
      Predicate::AtomConst(schema, "l_discount", CmpOp::kLe,
                           Value::MakeDecimal(
                               util::Decimal(discount_cents + 1))));
  SMADB_ASSIGN_OR_RETURN(
      expr::PredicatePtr p_qty,
      Predicate::AtomConst(schema, "l_quantity", CmpOp::kLt,
                           Value::MakeDecimal(
                               util::Decimal(quantity * 100))));
  q.pred = Predicate::And(
      Predicate::And(p_lo, p_hi), Predicate::And(Predicate::And(p_dlo, p_dhi),
                                                 p_qty));
  SMADB_ASSIGN_OR_RETURN(
      ExprPtr revenue,
      expr::Arith(expr::ArithOp::kMul, e.extendedprice, e.discount));
  q.aggs = {AggSpec::Sum(revenue, "revenue"), AggSpec::Count("count")};
  return q;
}

Status BuildQ6Smas(Table* lineitem, sma::SmaSet* smas) {
  const storage::Schema* schema = &lineitem->schema();
  SMADB_ASSIGN_OR_RETURN(Q1Exprs e, MakeQ1Exprs(schema));
  SMADB_ASSIGN_OR_RETURN(
      ExprPtr revenue,
      expr::Arith(expr::ArithOp::kMul, e.extendedprice, e.discount));

  // Reuse min/max(shipdate) when the Fig. 4 set is already registered.
  if (!smas->Find("min").ok()) {
    SMADB_ASSIGN_OR_RETURN(
        auto min_sma,
        sma::BuildSma(lineitem, SmaSpec::Min("min", e.shipdate)));
    SMADB_RETURN_NOT_OK(smas->Add(std::move(min_sma)));
  }
  if (!smas->Find("max").ok()) {
    SMADB_ASSIGN_OR_RETURN(
        auto max_sma,
        sma::BuildSma(lineitem, SmaSpec::Max("max", e.shipdate)));
    SMADB_RETURN_NOT_OK(smas->Add(std::move(max_sma)));
  }
  SMADB_ASSIGN_OR_RETURN(
      auto rev_sma, sma::BuildSma(lineitem, SmaSpec::Sum("q6rev", revenue)));
  SMADB_RETURN_NOT_OK(smas->Add(std::move(rev_sma)));
  SMADB_ASSIGN_OR_RETURN(auto cnt_sma,
                         sma::BuildSma(lineitem, SmaSpec::Count("q6count")));
  SMADB_RETURN_NOT_OK(smas->Add(std::move(cnt_sma)));
  return Status::OK();
}

}  // namespace smadb::workloads
