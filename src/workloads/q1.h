// TPC-D Query 1 and Query 6 workload definitions, shared by examples,
// tests, and the benchmark harness.
//
// Q1 is the paper's headline experiment (Fig. 3): low selectivity (95–97%
// qualify), grouping on returnflag/linestatus, eight aggregates. Fig. 4
// lists the eight SMAs that answer it; MakeQ1SmaSpecs reproduces them
// verbatim (min/max ungrouped, six grouped SMAs → 26 SMA-files).
//
// Q6 is the complementary selection-heavy query (small conjunctive range
// predicate, single sum) used in the selectivity-sweep experiments.

#ifndef SMADB_WORKLOADS_Q1_H_
#define SMADB_WORKLOADS_Q1_H_

#include <vector>

#include "planner/planner.h"
#include "sma/sma_def.h"
#include "sma/sma_set.h"
#include "storage/table.h"

namespace smadb::workloads {

/// The eight SMA definitions of paper Fig. 4 for a LINEITEM table.
util::Result<std::vector<sma::SmaSpec>> MakeQ1SmaSpecs(
    const storage::Table* lineitem);

/// Builds all Fig. 4 SMAs into `smas`.
util::Status BuildQ1Smas(storage::Table* lineitem, sma::SmaSet* smas);

/// Query 1 with `delta` days (spec default 90):
///   where l_shipdate <= date '1998-12-01' - interval 'delta' day.
util::Result<plan::AggQuery> MakeQ1Query(storage::Table* lineitem,
                                         int delta_days = 90);

/// Query 6 for `year` (1993..1997), discount ± 0.01 around `discount_cents`
/// and quantity < `quantity`:
///   select sum(l_extendedprice * l_discount) ...
util::Result<plan::AggQuery> MakeQ6Query(storage::Table* lineitem,
                                         int year = 1994,
                                         int64_t discount_cents = 6,
                                         int64_t quantity = 24);

/// The SMAs Q6 exploits: min/max(shipdate) reused from Fig. 4 plus
/// sum(l_extendedprice * l_discount) and count(*), both ungrouped.
util::Status BuildQ6Smas(storage::Table* lineitem, sma::SmaSet* smas);

}  // namespace smadb::workloads

#endif  // SMADB_WORKLOADS_Q1_H_
