// TPC-D Query 3 ("shipping priority"): the multi-table workload, showing
// that SMAs keep paying off inside join pipelines — the date-restricted
// scans of ORDERS and LINEITEM are SMA-prunable even though the query as a
// whole is a 3-way join.
//
//   select l_orderkey, sum(l_extendedprice*(1-l_discount)) as revenue,
//          o_orderdate, o_shippriority
//   from customer, orders, lineitem
//   where c_mktsegment = 'BUILDING' and c_custkey = o_custkey
//     and l_orderkey = o_orderkey and o_orderdate < date '1995-03-15'
//     and l_shipdate > date '1995-03-15'
//   group by l_orderkey, o_orderdate, o_shippriority
//   order by revenue desc, o_orderdate
//   limit 10

#ifndef SMADB_WORKLOADS_Q3_H_
#define SMADB_WORKLOADS_Q3_H_

#include <memory>

#include "exec/operator.h"
#include "sma/sma_set.h"
#include "storage/table.h"

namespace smadb::workloads {

struct Q3Tables {
  storage::Table* customer = nullptr;
  storage::Table* orders = nullptr;
  storage::Table* lineitem = nullptr;
  /// Optional selection SMAs; null pointers disable pruning on that table.
  const sma::SmaSet* orders_smas = nullptr;
  const sma::SmaSet* lineitem_smas = nullptr;
};

/// Builds the Q3 operator tree. With SMA sets supplied, the ORDERS and
/// LINEITEM leaves are SMA_Scans; otherwise plain TableScans.
util::Result<std::unique_ptr<exec::Operator>> MakeQ3Plan(
    const Q3Tables& tables, std::string_view segment = "BUILDING",
    std::string_view cutoff_date = "1995-03-15", size_t limit = 10);

/// Builds the selection SMAs Q3 exploits: min/max(o_orderdate) on ORDERS
/// and min/max(l_shipdate) on LINEITEM (the latter may already exist from
/// the Fig. 4 set; reuse is automatic).
util::Status BuildQ3Smas(storage::Table* orders, sma::SmaSet* orders_smas,
                         storage::Table* lineitem,
                         sma::SmaSet* lineitem_smas);

/// TPC-D Query 4 ("order priority checking") — an EXISTS query realized as
/// the §4 SMA semi-join:
///
///   select o_orderpriority, count(*) as order_count
///   from orders
///   where o_orderdate >= date 'start' and o_orderdate < start + 3 months
///     and exists (select * from lineitem
///                 where l_orderkey = o_orderkey
///                   and l_commitdate < l_receiptdate)
///   group by o_orderpriority
///
/// The date restriction is graded against ORDERS' SMAs inside the semi-join
/// operator; the EXISTS side filters LINEITEM with the two-column atom
/// l_commitdate < l_receiptdate.
util::Result<std::unique_ptr<exec::Operator>> MakeQ4Plan(
    storage::Table* orders, storage::Table* lineitem,
    const sma::SmaSet* orders_smas, std::string_view start_date = "1993-07-01");

}  // namespace smadb::workloads

#endif  // SMADB_WORKLOADS_Q3_H_
