#include "workloads/q3.h"

#include "exec/filter.h"
#include "exec/gaggr.h"
#include "exec/join.h"
#include "exec/sma_scan.h"
#include "exec/sort.h"
#include "exec/table_scan.h"
#include "expr/parser.h"
#include "sma/builder.h"
#include "tpch/schemas.h"
#include "util/date.h"

namespace smadb::workloads {

using exec::AggSpec;
using exec::Operator;
using expr::CmpOp;
using expr::Predicate;
using expr::PredicatePtr;
using storage::Table;
using util::Result;
using util::Status;
using util::Value;

Status BuildQ3Smas(Table* orders, sma::SmaSet* orders_smas, Table* lineitem,
                   sma::SmaSet* lineitem_smas) {
  const auto ensure = [](Table* table, sma::SmaSet* smas,
                         const char* col) -> Status {
    const std::string min_name = std::string("min_") + col;
    const std::string max_name = std::string("max_") + col;
    SMADB_ASSIGN_OR_RETURN(size_t idx, table->schema().FieldIndex(col));
    if (smas->FindMinMax(sma::AggFunc::kMin, idx) == nullptr) {
      SMADB_ASSIGN_OR_RETURN(
          auto sma,
          sma::BuildSma(table, sma::SmaSpec::Min(
                                   min_name,
                                   expr::ColumnAt(&table->schema(), idx))));
      SMADB_RETURN_NOT_OK(smas->Add(std::move(sma)));
    }
    if (smas->FindMinMax(sma::AggFunc::kMax, idx) == nullptr) {
      SMADB_ASSIGN_OR_RETURN(
          auto sma,
          sma::BuildSma(table, sma::SmaSpec::Max(
                                   max_name,
                                   expr::ColumnAt(&table->schema(), idx))));
      SMADB_RETURN_NOT_OK(smas->Add(std::move(sma)));
    }
    return Status::OK();
  };
  SMADB_RETURN_NOT_OK(ensure(orders, orders_smas, "o_orderdate"));
  SMADB_RETURN_NOT_OK(ensure(lineitem, lineitem_smas, "l_shipdate"));
  return Status::OK();
}

Result<std::unique_ptr<Operator>> MakeQ3Plan(const Q3Tables& tables,
                                             std::string_view segment,
                                             std::string_view cutoff_date,
                                             size_t limit) {
  SMADB_ASSIGN_OR_RETURN(util::Date cutoff, util::Date::Parse(cutoff_date));

  // customer: mktsegment = '<segment>'
  SMADB_ASSIGN_OR_RETURN(
      PredicatePtr cust_pred,
      Predicate::AtomString(&tables.customer->schema(), "c_mktsegment",
                            CmpOp::kEq, std::string(segment)));
  std::unique_ptr<Operator> cust =
      std::make_unique<exec::TableScan>(tables.customer, cust_pred);

  // orders: o_orderdate < cutoff (SMA-pruned when SMAs are supplied).
  SMADB_ASSIGN_OR_RETURN(
      PredicatePtr ord_pred,
      Predicate::AtomConst(&tables.orders->schema(), "o_orderdate",
                           CmpOp::kLt, Value::MakeDate(cutoff)));
  std::unique_ptr<Operator> ord;
  if (tables.orders_smas != nullptr) {
    ord = std::make_unique<exec::SmaScan>(tables.orders, ord_pred,
                                          tables.orders_smas);
  } else {
    ord = std::make_unique<exec::TableScan>(tables.orders, ord_pred);
  }

  // lineitem: l_shipdate > cutoff.
  SMADB_ASSIGN_OR_RETURN(
      PredicatePtr li_pred,
      Predicate::AtomConst(&tables.lineitem->schema(), "l_shipdate",
                           CmpOp::kGt, Value::MakeDate(cutoff)));
  std::unique_ptr<Operator> li;
  if (tables.lineitem_smas != nullptr) {
    li = std::make_unique<exec::SmaScan>(tables.lineitem, li_pred,
                                         tables.lineitem_smas);
  } else {
    li = std::make_unique<exec::TableScan>(tables.lineitem, li_pred);
  }

  // orders ⋈ customer on custkey (small build side: filtered customers).
  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::HashJoin> oc,
      exec::HashJoin::Make(std::move(ord), tpch::orders::kCustKey,
                           std::move(cust), tpch::customer::kCustKey));

  // lineitem ⋈ (orders ⋈ customer) on orderkey.
  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::HashJoin> loc,
      exec::HashJoin::Make(std::move(li), tpch::lineitem::kOrderKey,
                           std::move(oc), tpch::orders::kOrderKey));

  // Aggregate: group by l_orderkey, o_orderdate, o_shippriority.
  const storage::Schema& js = loc->output_schema();
  const size_t li_fields = tables.lineitem->schema().num_fields();
  const size_t orderkey_col = tpch::lineitem::kOrderKey;
  const size_t orderdate_col = li_fields + tpch::orders::kOrderDate;
  const size_t shipprio_col = li_fields + tpch::orders::kShipPriority;
  SMADB_ASSIGN_OR_RETURN(
      expr::ExprPtr revenue,
      expr::ParseExpr(&js, "l_extendedprice * (1.00 - l_discount)"));
  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::GAggr> aggr,
      exec::GAggr::Make(std::move(loc),
                        {orderkey_col, orderdate_col, shipprio_col},
                        {AggSpec::Sum(revenue, "revenue")}));

  // order by revenue desc, o_orderdate; limit.
  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::Sort> sorted,
      exec::Sort::Make(std::move(aggr),
                       {exec::SortKey{3, /*descending=*/true},
                        exec::SortKey{1, /*descending=*/false}},
                       limit));
  return std::unique_ptr<Operator>(std::move(sorted));
}

Result<std::unique_ptr<Operator>> MakeQ4Plan(Table* orders, Table* lineitem,
                                             const sma::SmaSet* orders_smas,
                                             std::string_view start_date) {
  SMADB_ASSIGN_OR_RETURN(util::Date start, util::Date::Parse(start_date));
  const util::Date end = start.AddDays(91);  // "+ interval '3' month"

  SMADB_ASSIGN_OR_RETURN(
      PredicatePtr lo,
      Predicate::AtomConst(&orders->schema(), "o_orderdate", CmpOp::kGe,
                           Value::MakeDate(start)));
  SMADB_ASSIGN_OR_RETURN(
      PredicatePtr hi,
      Predicate::AtomConst(&orders->schema(), "o_orderdate", CmpOp::kLt,
                           Value::MakeDate(end)));
  const PredicatePtr r_pred = Predicate::And(lo, hi);

  SMADB_ASSIGN_OR_RETURN(
      PredicatePtr s_pred,
      Predicate::AtomTwoCols(&lineitem->schema(), "l_commitdate", CmpOp::kLt,
                             "l_receiptdate"));

  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::SmaSemiJoin> semi,
      exec::SmaSemiJoin::Make(orders, tpch::orders::kOrderKey, CmpOp::kEq,
                              lineitem, tpch::lineitem::kOrderKey,
                              orders_smas, /*s_smas=*/nullptr, r_pred,
                              s_pred));

  SMADB_ASSIGN_OR_RETURN(
      std::unique_ptr<exec::GAggr> aggr,
      exec::GAggr::Make(std::move(semi), {tpch::orders::kOrderPriority},
                        {AggSpec::Count("order_count")}));
  return std::unique_ptr<Operator>(std::move(aggr));
}

}  // namespace smadb::workloads
