#include "sma/sma_set.h"

#include "util/string_util.h"

namespace smadb::sma {

using util::Result;
using util::Status;

Status SmaSet::Add(std::unique_ptr<Sma> sma) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sma->table() != table_) {
    return Status::InvalidArgument("SMA belongs to a different table");
  }
  for (const auto& existing : smas_) {
    if (existing->spec().name == sma->spec().name) {
      return Status::AlreadyExists("SMA '" + sma->spec().name +
                                   "' already registered");
    }
  }
  smas_.push_back(std::move(sma));
  return Status::OK();
}

Result<Sma*> SmaSet::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sma : smas_) {
    if (sma->spec().name == name) return sma.get();
  }
  return Status::NotFound("no SMA named '" + std::string(name) + "'");
}

const Sma* SmaSet::FindMinMax(AggFunc func, size_t col) const {
  if (func != AggFunc::kMin && func != AggFunc::kMax) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& col_name = table_->schema().field(col).name;
  const Sma* grouped_fallback = nullptr;
  for (const auto& sma : smas_) {
    const SmaSpec& spec = sma->spec();
    if (spec.func != func || spec.arg == nullptr) continue;
    if (spec.arg->ToString() != col_name) continue;
    if (spec.group_by.empty()) return sma.get();
    if (grouped_fallback == nullptr) grouped_fallback = sma.get();
  }
  return grouped_fallback;
}

const Sma* SmaSet::FindCountByValue(size_t col) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sma : smas_) {
    const SmaSpec& spec = sma->spec();
    if (spec.func == AggFunc::kCount && spec.group_by.size() == 1 &&
        spec.group_by[0] == col) {
      return sma.get();
    }
  }
  return nullptr;
}

const Sma* SmaSet::FindBySignature(std::string_view signature) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sma : smas_) {
    if (sma->spec().Signature(table_->schema()) == signature) {
      return sma.get();
    }
  }
  return nullptr;
}

std::vector<const Sma*> SmaSet::all() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Sma*> out;
  out.reserve(smas_.size());
  for (const auto& sma : smas_) out.push_back(sma.get());
  return out;
}

std::vector<Sma*> SmaSet::mutable_all() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sma*> out;
  out.reserve(smas_.size());
  for (const auto& sma : smas_) out.push_back(sma.get());
  return out;
}

std::string SmaSet::TrustIssue() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& sma : smas_) {
    if (!sma->trusted()) {
      return "SMA '" + sma->spec().name +
             "' distrusted: " + sma->distrust_reason();
    }
    if (sma->stale()) {
      return util::Format(
          "SMA '%s' is stale (built at table epoch %llu, table now at %llu)",
          sma->spec().name.c_str(),
          static_cast<unsigned long long>(sma->built_epoch()),
          static_cast<unsigned long long>(table_->epoch()));
    }
  }
  return {};
}

uint64_t SmaSet::TotalPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pages = 0;
  for (const auto& sma : smas_) pages += sma->TotalPages();
  return pages;
}

uint64_t SmaSet::TotalSizeBytes() const {
  return TotalPages() * storage::kPageSize;
}

}  // namespace smadb::sma
