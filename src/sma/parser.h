// Parser for the paper's SMA definition language (§2.1/§2.3):
//
//     define sma qty
//     select   sum(l_quantity)
//     from     lineitem
//     group by l_returnflag, l_linestatus
//
// Restrictions enforced exactly as in the paper: the select clause contains
// a single aggregate (min/max/sum/count), a single relation in the from
// clause (no joins), no order specification.

#ifndef SMADB_SMA_PARSER_H_
#define SMADB_SMA_PARSER_H_

#include <string>
#include <string_view>

#include "sma/sma_def.h"
#include "sma/sma_set.h"
#include "storage/catalog.h"

namespace smadb::sma {

/// A parsed definition: the spec plus the target table name.
struct ParsedSmaDefinition {
  std::string table;
  SmaSpec spec;
};

/// Parses a `define sma` statement against `schema` (the schema of the
/// table the statement's from-clause names; the caller resolves the name —
/// use ParseAndBuildSma for the catalog-driven one-step version).
util::Result<ParsedSmaDefinition> ParseSmaDefinition(
    const storage::Schema* schema, std::string_view text);

/// One-step convenience: parse `text`, resolve the table in `catalog`,
/// bulk-build the SMA, and register it in `smas` (which must belong to the
/// same table the statement names).
util::Status DefineSma(storage::Catalog* catalog, SmaSet* smas,
                       std::string_view text);

}  // namespace smadb::sma

#endif  // SMADB_SMA_PARSER_H_
