#include "sma/parser.h"

#include "expr/parser.h"
#include "sma/builder.h"
#include "util/string_util.h"

namespace smadb::sma {

using expr::internal::Token;
using expr::internal::TokKind;
using storage::Schema;
using util::Result;
using util::Status;

namespace {

// Cursor over the token stream with keyword helpers.
struct Cursor {
  const std::vector<Token>* tokens;
  size_t pos = 0;

  const Token& Peek() const { return (*tokens)[pos]; }
  Token Take() { return (*tokens)[pos++]; }

  Status ExpectKeyword(std::string_view kw) {
    if (Peek().kind != TokKind::kIdent || Peek().text != kw) {
      return Status::InvalidArgument("expected keyword '" + std::string(kw) +
                                     "'");
    }
    ++pos;
    return Status::OK();
  }

  bool TryKeyword(std::string_view kw) {
    if (Peek().kind == TokKind::kIdent && Peek().text == kw) {
      ++pos;
      return true;
    }
    return false;
  }
};

Result<AggFunc> ParseAggFunc(std::string_view name) {
  if (name == "min") return AggFunc::kMin;
  if (name == "max") return AggFunc::kMax;
  if (name == "sum") return AggFunc::kSum;
  if (name == "count") return AggFunc::kCount;
  return Status::InvalidArgument(
      "aggregate must be min, max, sum, or count; got '" + std::string(name) +
      "'");
}

}  // namespace

Result<ParsedSmaDefinition> ParseSmaDefinition(const Schema* schema,
                                               std::string_view text) {
  SMADB_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         expr::internal::Tokenize(text));
  Cursor cur{&tokens};

  // define sma <name>
  SMADB_RETURN_NOT_OK(cur.ExpectKeyword("define"));
  SMADB_RETURN_NOT_OK(cur.ExpectKeyword("sma"));
  if (cur.Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected SMA name after 'define sma'");
  }
  ParsedSmaDefinition def;
  def.spec.name = cur.Take().text;

  // select <func> ( <arg> | * )
  SMADB_RETURN_NOT_OK(cur.ExpectKeyword("select"));
  if (cur.Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected aggregate function");
  }
  SMADB_ASSIGN_OR_RETURN(def.spec.func, ParseAggFunc(cur.Take().text));
  if (cur.Peek().kind != TokKind::kLParen) {
    return Status::InvalidArgument("expected '(' after aggregate function");
  }
  cur.Take();
  if (def.spec.func == AggFunc::kCount) {
    if (cur.Peek().kind != TokKind::kStar) {
      return Status::InvalidArgument("count SMA must be count(*)");
    }
    cur.Take();
    if (cur.Peek().kind != TokKind::kRParen) {
      return Status::InvalidArgument("expected ')' after count(*)");
    }
    cur.Take();
  } else {
    // Find the matching close paren; everything between is the argument.
    const size_t begin = cur.pos;
    size_t depth = 1;
    size_t end = begin;
    while (depth > 0) {
      const TokKind k = tokens[end].kind;
      if (k == TokKind::kEnd) {
        return Status::InvalidArgument("unbalanced parentheses in aggregate");
      }
      if (k == TokKind::kLParen) ++depth;
      if (k == TokKind::kRParen) --depth;
      if (depth > 0) ++end;
    }
    const std::string arg_text =
        expr::internal::TokensToText(tokens, begin, end);
    // The paper forbids a second select entry; a top-level comma would
    // indicate one.
    for (size_t i = begin, d = 0; i < end; ++i) {
      if (tokens[i].kind == TokKind::kLParen) ++d;
      if (tokens[i].kind == TokKind::kRParen) --d;
      if (d == 0 && tokens[i].kind == TokKind::kComma) {
        return Status::NotSupported(
            "the select clause may contain only a single entry (§2.1)");
      }
    }
    SMADB_ASSIGN_OR_RETURN(def.spec.arg,
                           expr::ParseExpr(schema, arg_text));
    cur.pos = end + 1;  // past the ')'
  }

  // from <table>
  SMADB_RETURN_NOT_OK(cur.ExpectKeyword("from"));
  if (cur.Peek().kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected table name after 'from'");
  }
  def.table = cur.Take().text;
  if (cur.Peek().kind == TokKind::kComma) {
    return Status::NotSupported(
        "joins are not allowed in SMA definitions (§2.1; see semijoin.h "
        "for the §4 generalization)");
  }

  // [group by col (, col)*]
  if (cur.TryKeyword("group")) {
    SMADB_RETURN_NOT_OK(cur.ExpectKeyword("by"));
    while (true) {
      if (cur.Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected column in group by");
      }
      SMADB_ASSIGN_OR_RETURN(size_t col,
                             schema->FieldIndex(cur.Take().text));
      def.spec.group_by.push_back(col);
      if (cur.Peek().kind != TokKind::kComma) break;
      cur.Take();
    }
  }

  if (cur.TryKeyword("order")) {
    return Status::NotSupported(
        "SMA definitions do not allow an order specification (§2.1)");
  }
  if (cur.Peek().kind != TokKind::kEnd) {
    return Status::InvalidArgument("trailing tokens after SMA definition");
  }
  SMADB_RETURN_NOT_OK(def.spec.Validate(*schema));
  return def;
}

Status DefineSma(storage::Catalog* catalog, SmaSet* smas,
                 std::string_view text) {
  // Two-pass: first locate the from-clause to resolve the schema, then
  // parse for real.
  SMADB_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         expr::internal::Tokenize(text));
  std::string table_name;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kIdent && tokens[i].text == "from" &&
        tokens[i + 1].kind == TokKind::kIdent) {
      table_name = tokens[i + 1].text;
      break;
    }
  }
  if (table_name.empty()) {
    return Status::InvalidArgument("SMA definition has no from clause");
  }
  SMADB_ASSIGN_OR_RETURN(storage::Table * table,
                         catalog->GetTable(table_name));
  SMADB_ASSIGN_OR_RETURN(ParsedSmaDefinition def,
                         ParseSmaDefinition(&table->schema(), text));
  if (smas->table() != table) {
    return Status::InvalidArgument(
        "SmaSet belongs to a different table than the definition's from "
        "clause");
  }
  SMADB_ASSIGN_OR_RETURN(auto sma, BuildSma(table, std::move(def.spec)));
  return smas->Add(std::move(sma));
}

}  // namespace smadb::sma
