#include "sma/sma_def.h"

#include "util/string_util.h"

namespace smadb::sma {

using util::Status;
using util::TypeId;

std::string_view AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
  }
  return "?";
}

Status SmaSpec::Validate(const storage::Schema& schema) const {
  if (name.empty()) return Status::InvalidArgument("SMA needs a name");
  if (func == AggFunc::kCount) {
    if (arg != nullptr) {
      return Status::InvalidArgument("count(*) SMA must not have an argument");
    }
  } else {
    if (arg == nullptr) {
      return Status::InvalidArgument(
          util::Format("%s SMA needs an argument expression",
                       std::string(AggFuncToString(func)).c_str()));
    }
    const TypeId t = arg->type();
    if (t == TypeId::kDouble || t == TypeId::kString) {
      return Status::NotSupported(
          "SMA aggregation is restricted to the exact integral family "
          "(int/date/decimal); got " +
          std::string(util::TypeIdToString(t)));
    }
  }
  for (size_t col : group_by) {
    if (col >= schema.num_fields()) {
      return Status::OutOfRange(
          util::Format("group-by column %zu out of range", col));
    }
  }
  return Status::OK();
}

std::string SmaSpec::Signature(const storage::Schema& schema) const {
  std::string sig(AggFuncToString(func));
  sig += '(';
  sig += arg != nullptr ? arg->ToString() : "*";
  sig += ')';
  if (!group_by.empty()) {
    sig += " group by ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) sig += ',';
      sig += schema.field(group_by[i]).name;
    }
  }
  return sig;
}

uint32_t SmaSpec::EntryWidth() const {
  if (func == AggFunc::kCount) return 4;
  if ((func == AggFunc::kMin || func == AggFunc::kMax) && arg != nullptr) {
    const TypeId t = arg->type();
    if (t == TypeId::kDate || t == TypeId::kInt32) return 4;
  }
  return 8;
}

}  // namespace smadb::sma
