#include "sma/sma_file.h"

#include <cassert>

#include "util/string_util.h"

namespace smadb::sma {

using storage::Page;
using storage::PageGuard;
using util::Result;
using util::Status;

Result<std::unique_ptr<SmaFile>> SmaFile::Create(storage::BufferPool* pool,
                                                 const std::string& file_name,
                                                 uint32_t entry_width) {
  if (entry_width != 4 && entry_width != 8) {
    return Status::InvalidArgument(
        util::Format("SMA entry width must be 4 or 8, got %u", entry_width));
  }
  SMADB_ASSIGN_OR_RETURN(storage::FileId file, pool->disk()->CreateFile(file_name));
  return std::unique_ptr<SmaFile>(new SmaFile(pool, file, entry_width));
}

Result<std::unique_ptr<SmaFile>> SmaFile::Open(storage::BufferPool* pool,
                                               const std::string& file_name,
                                               uint32_t entry_width,
                                               uint64_t num_entries) {
  if (entry_width != 4 && entry_width != 8) {
    return Status::InvalidArgument(
        util::Format("SMA entry width must be 4 or 8, got %u", entry_width));
  }
  SMADB_ASSIGN_OR_RETURN(storage::FileId file, pool->disk()->FindFile(file_name));
  auto sma = std::unique_ptr<SmaFile>(new SmaFile(pool, file, entry_width));
  const uint32_t pages = static_cast<uint32_t>(
      (num_entries + sma->entries_per_page_ - 1) / sma->entries_per_page_);
  sma->num_entries_.store(num_entries, std::memory_order_relaxed);
  sma->num_pages_.store(pages, std::memory_order_relaxed);
  SMADB_ASSIGN_OR_RETURN(uint32_t disk_pages, pool->disk()->NumPages(file));
  if (disk_pages < pages) {
    return Status::Corruption(util::Format(
        "SMA-file '%s': manifest says %u pages but file holds %u",
        file_name.c_str(), pages, disk_pages));
  }
  return sma;
}

int64_t SmaFile::DecodeAt(const Page& page, uint64_t idx) const {
  const size_t off = (idx % entries_per_page_) * entry_width_;
  if (entry_width_ == 4) {
    return page.ReadAt<int32_t>(off);
  }
  return page.ReadAt<int64_t>(off);
}

void SmaFile::EncodeAt(Page* page, uint64_t idx, int64_t value) const {
  const size_t off = (idx % entries_per_page_) * entry_width_;
  if (entry_width_ == 4) {
    assert(value >= INT32_MIN && value <= INT32_MAX);
    page->WriteAt<int32_t>(off, static_cast<int32_t>(value));
  } else {
    page->WriteAt<int64_t>(off, value);
  }
}

Status SmaFile::Append(int64_t value) {
  const uint64_t idx = num_entries_.load(std::memory_order_relaxed);
  const uint32_t pages = num_pages_.load(std::memory_order_relaxed);
  PageGuard guard;
  if (idx % entries_per_page_ == 0) {
    SMADB_ASSIGN_OR_RETURN(guard, pool_->NewPage(file_, nullptr));
    num_pages_.store(pages + 1, std::memory_order_release);
  } else {
    SMADB_ASSIGN_OR_RETURN(guard, pool_->Fetch(file_, pages - 1));
  }
  EncodeAt(guard.MutablePage(), idx, value);
  // Publish AFTER the entry bytes: a concurrent cursor that acquire-loads
  // the new count is guaranteed to see the encoded value.
  num_entries_.store(idx + 1, std::memory_order_release);
  return Status::OK();
}

Status SmaFile::Clear() {
  SMADB_RETURN_NOT_OK(pool_->DiscardFile(file_));
  SMADB_RETURN_NOT_OK(pool_->disk()->TruncateFile(file_));
  num_entries_.store(0, std::memory_order_relaxed);
  num_pages_.store(0, std::memory_order_relaxed);
  return Status::OK();
}

Result<int64_t> SmaFile::Get(uint64_t idx) const {
  const uint64_t n = num_entries_.load(std::memory_order_acquire);
  if (idx >= n) {
    return Status::OutOfRange(util::Format(
        "SMA entry %llu out of range (%llu entries)",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(n)));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, PageOfEntry(idx)));
  return DecodeAt(*guard.page(), idx);
}

Status SmaFile::Set(uint64_t idx, int64_t value) {
  const uint64_t n = num_entries_.load(std::memory_order_acquire);
  if (idx >= n) {
    return Status::OutOfRange(util::Format(
        "SMA entry %llu out of range (%llu entries)",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(n)));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, PageOfEntry(idx)));
  EncodeAt(guard.MutablePage(), idx, value);
  return Status::OK();
}

Result<int64_t> SmaFile::Cursor::Get(uint64_t idx) {
  const uint64_t n = file_->num_entries_.load(std::memory_order_acquire);
  if (idx >= n) {
    return Status::OutOfRange(util::Format(
        "SMA entry %llu out of range (%llu entries)",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(n)));
  }
  const int64_t page = file_->PageOfEntry(idx);
  if (page != cached_page_) {
    SMADB_ASSIGN_OR_RETURN(
        guard_, file_->pool_->Fetch(file_->file_, static_cast<uint32_t>(page)));
    cached_page_ = page;
  }
  return file_->DecodeAt(*guard_.page(), idx);
}

}  // namespace smadb::sma
