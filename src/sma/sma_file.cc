#include "sma/sma_file.h"

#include <cassert>

#include "util/string_util.h"

namespace smadb::sma {

using storage::Page;
using storage::PageGuard;
using util::Result;
using util::Status;

Result<std::unique_ptr<SmaFile>> SmaFile::Create(storage::BufferPool* pool,
                                                 const std::string& file_name,
                                                 uint32_t entry_width) {
  if (entry_width != 4 && entry_width != 8) {
    return Status::InvalidArgument(
        util::Format("SMA entry width must be 4 or 8, got %u", entry_width));
  }
  SMADB_ASSIGN_OR_RETURN(storage::FileId file, pool->disk()->CreateFile(file_name));
  return std::unique_ptr<SmaFile>(new SmaFile(pool, file, entry_width));
}

Result<std::unique_ptr<SmaFile>> SmaFile::Open(storage::BufferPool* pool,
                                               const std::string& file_name,
                                               uint32_t entry_width,
                                               uint64_t num_entries) {
  if (entry_width != 4 && entry_width != 8) {
    return Status::InvalidArgument(
        util::Format("SMA entry width must be 4 or 8, got %u", entry_width));
  }
  SMADB_ASSIGN_OR_RETURN(storage::FileId file, pool->disk()->FindFile(file_name));
  auto sma = std::unique_ptr<SmaFile>(new SmaFile(pool, file, entry_width));
  sma->num_entries_ = num_entries;
  sma->num_pages_ = static_cast<uint32_t>(
      (num_entries + sma->entries_per_page_ - 1) / sma->entries_per_page_);
  SMADB_ASSIGN_OR_RETURN(uint32_t disk_pages, pool->disk()->NumPages(file));
  if (disk_pages < sma->num_pages_) {
    return Status::Corruption(util::Format(
        "SMA-file '%s': manifest says %u pages but file holds %u",
        file_name.c_str(), sma->num_pages_, disk_pages));
  }
  return sma;
}

int64_t SmaFile::DecodeAt(const Page& page, uint64_t idx) const {
  const size_t off = (idx % entries_per_page_) * entry_width_;
  if (entry_width_ == 4) {
    return page.ReadAt<int32_t>(off);
  }
  return page.ReadAt<int64_t>(off);
}

void SmaFile::EncodeAt(Page* page, uint64_t idx, int64_t value) const {
  const size_t off = (idx % entries_per_page_) * entry_width_;
  if (entry_width_ == 4) {
    assert(value >= INT32_MIN && value <= INT32_MAX);
    page->WriteAt<int32_t>(off, static_cast<int32_t>(value));
  } else {
    page->WriteAt<int64_t>(off, value);
  }
}

Status SmaFile::Append(int64_t value) {
  const uint64_t idx = num_entries_;
  PageGuard guard;
  if (idx % entries_per_page_ == 0) {
    SMADB_ASSIGN_OR_RETURN(guard, pool_->NewPage(file_, nullptr));
    ++num_pages_;
  } else {
    SMADB_ASSIGN_OR_RETURN(guard, pool_->Fetch(file_, num_pages_ - 1));
  }
  EncodeAt(guard.MutablePage(), idx, value);
  ++num_entries_;
  return Status::OK();
}

Status SmaFile::Clear() {
  SMADB_RETURN_NOT_OK(pool_->DiscardFile(file_));
  SMADB_RETURN_NOT_OK(pool_->disk()->TruncateFile(file_));
  num_entries_ = 0;
  num_pages_ = 0;
  return Status::OK();
}

Result<int64_t> SmaFile::Get(uint64_t idx) const {
  if (idx >= num_entries_) {
    return Status::OutOfRange(util::Format(
        "SMA entry %llu out of range (%llu entries)",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(num_entries_)));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, PageOfEntry(idx)));
  return DecodeAt(*guard.page(), idx);
}

Status SmaFile::Set(uint64_t idx, int64_t value) {
  if (idx >= num_entries_) {
    return Status::OutOfRange(util::Format(
        "SMA entry %llu out of range (%llu entries)",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(num_entries_)));
  }
  SMADB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(file_, PageOfEntry(idx)));
  EncodeAt(guard.MutablePage(), idx, value);
  return Status::OK();
}

Result<int64_t> SmaFile::Cursor::Get(uint64_t idx) {
  if (idx >= file_->num_entries_) {
    return Status::OutOfRange(util::Format(
        "SMA entry %llu out of range (%llu entries)",
        static_cast<unsigned long long>(idx),
        static_cast<unsigned long long>(file_->num_entries_)));
  }
  const int64_t page = file_->PageOfEntry(idx);
  if (page != cached_page_) {
    SMADB_ASSIGN_OR_RETURN(
        guard_, file_->pool_->Fetch(file_->file_, static_cast<uint32_t>(page)));
    cached_page_ = page;
  }
  return file_->DecodeAt(*guard_.page(), idx);
}

}  // namespace smadb::sma
