#include "sma/sma.h"

#include <algorithm>

#include "util/string_util.h"

namespace smadb::sma {

using util::Result;
using util::Status;
using util::Value;

Result<std::unique_ptr<Sma>> Sma::Create(storage::BufferPool* pool,
                                         const storage::Table* table,
                                         SmaSpec spec) {
  SMADB_RETURN_NOT_OK(spec.Validate(table->schema()));
  std::unique_ptr<Sma> sma(new Sma(pool, table, std::move(spec)));
  if (sma->spec_.group_by.empty()) {
    // Ungrouped SMAs have exactly one (key-less) file, created eagerly.
    SMADB_ASSIGN_OR_RETURN(size_t g, sma->GetOrCreateGroup({}));
    (void)g;
  }
  return sma;
}

Result<std::unique_ptr<Sma>> Sma::Restore(
    storage::BufferPool* pool, const storage::Table* table, SmaSpec spec,
    const std::vector<std::vector<Value>>& group_keys, uint64_t num_buckets,
    uint64_t built_epoch, bool trusted, std::string distrust_reason) {
  SMADB_RETURN_NOT_OK(spec.Validate(table->schema()));
  std::unique_ptr<Sma> sma(new Sma(pool, table, std::move(spec)));
  for (size_t g = 0; g < group_keys.size(); ++g) {
    std::string file_name = "sma." + table->name() + "." + sma->spec_.name;
    if (!sma->spec_.group_by.empty()) {
      file_name += util::Format(".g%zu", g);
    }
    SMADB_ASSIGN_OR_RETURN(
        std::unique_ptr<SmaFile> file,
        SmaFile::Open(pool, file_name, sma->spec_.EntryWidth(), num_buckets));
    sma->group_index_[SerializeKey(group_keys[g])] = g;
    sma->groups_.push_back(Group{group_keys[g], std::move(file)});
  }
  sma->num_groups_.store(sma->groups_.size(), std::memory_order_release);
  sma->num_buckets_ = num_buckets;
  sma->built_epoch_ = built_epoch;
  sma->trusted_ = trusted;
  sma->distrust_reason_ = std::move(distrust_reason);
  return sma;
}

std::string Sma::SerializeKey(const std::vector<Value>& key) {
  std::string out;
  for (const Value& v : key) {
    out += v.ToString();
    out += '\x1f';  // unit separator: cannot appear in our data
  }
  return out;
}

int64_t Sma::FindGroup(const std::vector<Value>& key) const {
  auto it = group_index_.find(SerializeKey(key));
  return it == group_index_.end() ? -1 : static_cast<int64_t>(it->second);
}

Result<size_t> Sma::GetOrCreateGroup(const std::vector<Value>& key) {
  const std::string skey = SerializeKey(key);
  auto it = group_index_.find(skey);
  if (it != group_index_.end()) return it->second;

  std::string file_name =
      "sma." + table_->name() + "." + spec_.name;
  if (!spec_.group_by.empty()) {
    file_name += util::Format(".g%zu", groups_.size());
  }
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<SmaFile> file,
                         SmaFile::Create(pool_, file_name, spec_.EntryWidth()));
  // Backfill identity entries for the buckets this group missed.
  const int64_t identity = IdentityEntry();
  const uint64_t buckets = num_buckets();
  for (uint64_t b = 0; b < buckets; ++b) {
    SMADB_RETURN_NOT_OK(file->Append(identity));
  }
  const size_t g = groups_.size();
  groups_.push_back(Group{key, std::move(file)});
  group_index_[skey] = g;
  // Publish only after the file is complete: readers index up to here.
  num_groups_.store(g + 1, std::memory_order_release);
  return g;
}

Status Sma::EnsureBuckets(uint64_t n) {
  const uint64_t have = num_buckets();
  if (n <= have) return Status::OK();
  const int64_t identity = IdentityEntry();
  for (Group& g : groups_) {
    for (uint64_t b = have; b < n; ++b) {
      SMADB_RETURN_NOT_OK(g.file->Append(identity));
    }
  }
  num_buckets_.store(n, std::memory_order_release);
  return Status::OK();
}

Status Sma::AppendBucket(const std::map<size_t, int64_t>& acc) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    auto it = acc.find(g);
    const int64_t entry = it == acc.end() ? IdentityEntry() : it->second;
    SMADB_RETURN_NOT_OK(groups_[g].file->Append(entry));
  }
  num_buckets_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status Sma::AccumulateBucket(uint64_t bucket, std::map<size_t, int64_t>* acc) {
  acc->clear();
  Status status = Status::OK();
  SMADB_RETURN_NOT_OK(table_->ForEachTupleInBucket(
      static_cast<uint32_t>(bucket),
      [&](const storage::TupleRef& t, storage::Rid) {
        if (!status.ok()) return;
        auto group = GetOrCreateGroup(GroupKeyOf(t));
        if (!group.ok()) {
          status = group.status();
          return;
        }
        const int64_t v = ArgOf(t);
        auto it = acc->find(*group);
        if (it == acc->end()) {
          acc->emplace(*group, Merge(IdentityEntry(), v));
        } else {
          it->second = Merge(it->second, v);
        }
      }));
  return status;
}

void Sma::MarkTrusted(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(trust_mu_);
  built_epoch_.store(epoch, std::memory_order_release);
  distrust_reason_.clear();
  trusted_.store(true, std::memory_order_release);
}

void Sma::MarkDistrusted(std::string reason) const {
  std::lock_guard<std::mutex> lock(trust_mu_);
  // Keep the first diagnosis; later failures are usually consequences.
  if (!trusted_.load(std::memory_order_relaxed)) return;
  distrust_reason_ = std::move(reason);
  trusted_.store(false, std::memory_order_release);
}

Status Sma::Verify(uint64_t max_sample_buckets) const {
  if (max_sample_buckets == 0) max_sample_buckets = 1;
  const uint64_t buckets = num_buckets();
  const uint64_t step = std::max<uint64_t>(1, buckets / max_sample_buckets);
  for (uint64_t b = 0; b < buckets; b += step) {
    std::map<size_t, int64_t> acc;
    Status walk = Status::OK();
    SMADB_RETURN_NOT_OK(table_->ForEachTupleInBucket(
        static_cast<uint32_t>(b),
        [&](const storage::TupleRef& t, storage::Rid) {
          if (!walk.ok()) return;
          const int64_t g = FindGroup(GroupKeyOf(t));
          if (g < 0) {
            walk = Status::Corruption(util::Format(
                "SMA '%s': bucket %llu holds a group key absent from the SMA",
                spec_.name.c_str(), static_cast<unsigned long long>(b)));
            return;
          }
          const int64_t v = ArgOf(t);
          auto it = acc.find(static_cast<size_t>(g));
          if (it == acc.end()) {
            acc.emplace(static_cast<size_t>(g), Merge(IdentityEntry(), v));
          } else {
            it->second = Merge(it->second, v);
          }
        }));
    if (!walk.ok()) {
      MarkDistrusted(walk.message());
      return walk;
    }
    for (size_t g = 0; g < num_groups(); ++g) {
      auto it = acc.find(g);
      const int64_t expected = it == acc.end() ? IdentityEntry() : it->second;
      util::Result<int64_t> stored = groups_[g].file->Get(b);
      if (!stored.ok()) {
        if (stored.status().code() == util::StatusCode::kCorruption) {
          MarkDistrusted(stored.status().message());
        }
        return stored.status();
      }
      if (*stored != expected) {
        Status bad = Status::Corruption(util::Format(
            "SMA '%s' failed verification: bucket %llu group %zu stores "
            "%lld but base data yields %lld",
            spec_.name.c_str(), static_cast<unsigned long long>(b), g,
            static_cast<long long>(*stored),
            static_cast<long long>(expected)));
        MarkDistrusted(bad.message());
        return bad;
      }
    }
  }
  return Status::OK();
}

Status Sma::Rebuild() {
  for (Group& g : groups_) {
    SMADB_RETURN_NOT_OK(g.file->Clear());
  }
  num_buckets_.store(0, std::memory_order_release);
  const uint64_t buckets = table_->num_buckets();
  std::map<size_t, int64_t> acc;
  for (uint64_t b = 0; b < buckets; ++b) {
    SMADB_RETURN_NOT_OK(AccumulateBucket(b, &acc));
    SMADB_RETURN_NOT_OK(AppendBucket(acc));
  }
  MarkTrusted(table_->epoch());
  return Status::OK();
}

int64_t Sma::IdentityEntry() const {
  const bool narrow = spec_.EntryWidth() == 4;
  switch (spec_.func) {
    case AggFunc::kSum:
    case AggFunc::kCount:
      return 0;
    case AggFunc::kMin:
      return narrow ? kUndefinedMin32 : kUndefinedMin64;
    case AggFunc::kMax:
      return narrow ? kUndefinedMax32 : kUndefinedMax64;
  }
  return 0;
}

bool Sma::IsUndefined(int64_t entry) const {
  if (spec_.func == AggFunc::kSum || spec_.func == AggFunc::kCount) {
    return false;
  }
  return entry == IdentityEntry();
}

int64_t Sma::Merge(int64_t entry, int64_t v) const {
  switch (spec_.func) {
    case AggFunc::kSum:
      return entry + v;
    case AggFunc::kCount:
      return entry + 1;
    case AggFunc::kMin:
      return IsUndefined(entry) ? v : std::min(entry, v);
    case AggFunc::kMax:
      return IsUndefined(entry) ? v : std::max(entry, v);
  }
  return entry;
}

std::vector<Value> Sma::GroupKeyOf(const storage::TupleRef& t) const {
  std::vector<Value> key;
  key.reserve(spec_.group_by.size());
  for (size_t col : spec_.group_by) key.push_back(t.GetValue(col));
  return key;
}

uint64_t Sma::TotalPages() const {
  // Index loop: deque iterators (unlike references) are invalidated by a
  // concurrent group creation.
  uint64_t pages = 0;
  for (size_t g = 0; g < num_groups(); ++g) {
    pages += groups_[g].file->num_pages();
  }
  return pages;
}

uint64_t Sma::SizeBytes() const {
  return TotalPages() * storage::kPageSize;
}

Result<std::optional<int64_t>> Sma::BucketExtreme(uint64_t bucket) const {
  if (spec_.func != AggFunc::kMin && spec_.func != AggFunc::kMax) {
    return Status::InvalidArgument("BucketExtreme needs a min/max SMA");
  }
  std::optional<int64_t> extreme;
  for (size_t gi = 0; gi < num_groups(); ++gi) {
    const Group& g = groups_[gi];
    SMADB_ASSIGN_OR_RETURN(int64_t e, g.file->Get(bucket));
    if (IsUndefined(e)) continue;
    if (!extreme.has_value()) {
      extreme = e;
    } else if (spec_.func == AggFunc::kMin) {
      extreme = std::min(*extreme, e);
    } else {
      extreme = std::max(*extreme, e);
    }
  }
  return extreme;
}

}  // namespace smadb::sma
