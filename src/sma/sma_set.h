// SmaSet: the SMAs materialized over one table, with the discovery queries
// the grader and planner need ("whenever we have a selection predicate
// involving an attribute A ... and a SMA-definition in which A occurs, we
// can compute a partitioning", §3.1).

#ifndef SMADB_SMA_SMA_SET_H_
#define SMADB_SMA_SMA_SET_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sma/sma.h"

namespace smadb::sma {

/// Thread-safe: `define sma` (Add) is serialized by the database writer
/// lock but races planner lookups from query sessions, so the registry is
/// guarded internally. The Sma objects themselves synchronize their own
/// trust/extent state.
class SmaSet {
 public:
  explicit SmaSet(const storage::Table* table) : table_(table) {}

  SmaSet(const SmaSet&) = delete;
  SmaSet& operator=(const SmaSet&) = delete;

  const storage::Table* table() const { return table_; }

  /// Registers a SMA (unique name per set).
  util::Status Add(std::unique_ptr<Sma> sma);

  /// Lookup by SMA name.
  util::Result<Sma*> Find(std::string_view name) const;

  /// A min (or max) SMA whose argument is exactly column `col` — grouped or
  /// ungrouped, both are exploitable for selections (§3.1). Prefers
  /// ungrouped (fewer files to read). Null when none exists.
  const Sma* FindMinMax(AggFunc func, size_t col) const;

  /// A count SMA grouped solely by column `col` (the per-bucket value
  /// histogram of §3.1's count rules). Null when none exists.
  const Sma* FindCountByValue(size_t col) const;

  /// A SMA with exactly this signature (see SmaSpec::Signature); used by
  /// SMA_GAggr to match query aggregates. Null when none exists.
  const Sma* FindBySignature(std::string_view signature) const;

  std::vector<const Sma*> all() const;
  /// Mutable view for maintenance.
  std::vector<Sma*> mutable_all();
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return smas_.size();
  }

  /// First trust problem across the set — a distrusted SMA or one whose
  /// built-epoch lags the table's modification epoch. Empty string when
  /// every SMA is usable. The planner demotes to a plain scan otherwise: a
  /// wrong SMA entry silently mis-grades buckets, so one bad SMA poisons
  /// every SMA plan over the table until SmaMaintainer::Rebuild() runs.
  std::string TrustIssue() const;

  /// Accumulated footprint across all SMAs (paper §2.4 space accounting).
  uint64_t TotalPages() const;
  uint64_t TotalSizeBytes() const;

 private:
  const storage::Table* table_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Sma>> smas_;
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_SMA_SET_H_
