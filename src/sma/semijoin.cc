#include "sma/semijoin.h"

#include <algorithm>

namespace smadb::sma {

using expr::CmpOp;
using storage::Table;
using util::Result;
using util::Status;

Result<std::pair<std::optional<int64_t>, std::optional<int64_t>>> ColumnMinMax(
    Table* s_table, size_t s_col, const SmaSet* s_smas) {
  std::optional<int64_t> mn, mx;

  const Sma* min_sma =
      s_smas != nullptr ? s_smas->FindMinMax(AggFunc::kMin, s_col) : nullptr;
  const Sma* max_sma =
      s_smas != nullptr ? s_smas->FindMinMax(AggFunc::kMax, s_col) : nullptr;

  if (min_sma != nullptr && max_sma != nullptr &&
      min_sma->num_buckets() >= s_table->num_buckets() &&
      max_sma->num_buckets() >= s_table->num_buckets()) {
    // Fold the SMA-files: reads ~0.1% of the pages a scan would. Each
    // bucket's entries are read under its shared latch so a concurrent
    // maintainer folding an append can't be observed mid-write; the result
    // is read-committed (a widened range is sound — grading stays
    // conservative).
    for (const Sma* sma : {min_sma, max_sma}) {
      const bool is_min = sma == min_sma;
      for (size_t g = 0; g < sma->num_groups(); ++g) {
        SmaFile::Cursor cur = sma->group_file(g)->NewCursor();
        for (uint64_t b = 0; b < sma->num_buckets(); ++b) {
          auto latch = s_table->latches()->LockShared(b);
          SMADB_ASSIGN_OR_RETURN(int64_t e, cur.Get(b));
          latch.Release();
          if (sma->IsUndefined(e)) continue;
          if (is_min) {
            mn = mn.has_value() ? std::min(*mn, e) : e;
          } else {
            mx = mx.has_value() ? std::max(*mx, e) : e;
          }
        }
      }
    }
    return std::make_pair(mn, mx);
  }

  // No SMA coverage: sequential scan of S, bucket-latched against page
  // writers.
  for (uint32_t b = 0; b < s_table->num_buckets(); ++b) {
    auto latch = s_table->latches()->LockShared(b);
    SMADB_RETURN_NOT_OK(s_table->ForEachTupleInBucket(
        b, [&](const storage::TupleRef& t, storage::Rid) {
          const int64_t v = t.GetRawInt(s_col);
          mn = mn.has_value() ? std::min(*mn, v) : v;
          mx = mx.has_value() ? std::max(*mx, v) : v;
        }));
  }
  return std::make_pair(mn, mx);
}

Result<SemiJoinReduction> ReduceSemiJoin(const SmaSet* r_smas, size_t r_col,
                                         CmpOp op, Table* s_table,
                                         size_t s_col, const SmaSet* s_smas) {
  SMADB_ASSIGN_OR_RETURN(auto s_range, ColumnMinMax(s_table, s_col, s_smas));
  return ReduceSemiJoinWithRange(r_smas, r_col, op, s_range.first,
                                 s_range.second);
}

Result<SemiJoinReduction> ReduceSemiJoinWithRange(
    const SmaSet* r_smas, size_t r_col, CmpOp op, std::optional<int64_t> s_min,
    std::optional<int64_t> s_max) {
  SemiJoinReduction out;
  const Table* r_table = r_smas->table();
  const uint64_t buckets = r_table->num_buckets();
  out.candidates = util::BitVector(buckets, true);
  out.all_match = util::BitVector(buckets, false);

  out.s_min = s_min;
  out.s_max = s_max;
  if (!out.s_min.has_value()) {
    // Empty S: nothing joins.
    out.candidates = util::BitVector(buckets, false);
    return out;
  }

  const Sma* min_sma = r_smas->FindMinMax(AggFunc::kMin, r_col);
  const Sma* max_sma = r_smas->FindMinMax(AggFunc::kMax, r_col);
  if (min_sma == nullptr && max_sma == nullptr) {
    return out;  // no pruning possible; all buckets stay candidates
  }

  std::vector<SmaFile::Cursor> min_curs, max_curs;
  if (min_sma != nullptr) {
    for (size_t g = 0; g < min_sma->num_groups(); ++g) {
      min_curs.push_back(min_sma->group_file(g)->NewCursor());
    }
  }
  if (max_sma != nullptr) {
    for (size_t g = 0; g < max_sma->num_groups(); ++g) {
      max_curs.push_back(max_sma->group_file(g)->NewCursor());
    }
  }

  for (uint64_t b = 0; b < buckets; ++b) {
    std::optional<int64_t> mn, mx;
    // Shared latch: entry reads must not observe a maintainer's fold
    // mid-write. Grading from the (possibly newer) entries is
    // superset-sound for skip and all-match decisions alike.
    auto latch = r_table->latches()->LockShared(b);
    if (min_sma != nullptr && b < min_sma->num_buckets()) {
      for (auto& cur : min_curs) {
        SMADB_ASSIGN_OR_RETURN(int64_t e, cur.Get(b));
        if (min_sma->IsUndefined(e)) continue;
        mn = mn.has_value() ? std::min(*mn, e) : e;
      }
    }
    if (max_sma != nullptr && b < max_sma->num_buckets()) {
      for (auto& cur : max_curs) {
        SMADB_ASSIGN_OR_RETURN(int64_t e, cur.Get(b));
        if (max_sma->IsUndefined(e)) continue;
        mx = mx.has_value() ? std::max(*mx, e) : e;
      }
    }
    latch.Release();
    // The semi-join predicate is existential: a tuple with value a matches
    // iff ∃ b ∈ S.B with a θ b. For the order comparisons that collapses to
    // a single constant comparison against S's extreme value:
    //   a <= b for some b  ⇔  a <= max(S.B)      (similarly <, >=, >)
    //   a  = b for some b  ⇒  min(S.B) <= a <= max(S.B)   (necessary only)
    //   a != b for some b  ⇔  ¬(S.B = {a})
    Grade g = Grade::kAmbivalent;
    switch (op) {
      case CmpOp::kLe:
        g = GradeMinMaxConst(CmpOp::kLe, mn, mx, *out.s_max);
        break;
      case CmpOp::kLt:
        g = GradeMinMaxConst(CmpOp::kLt, mn, mx, *out.s_max);
        break;
      case CmpOp::kGe:
        g = GradeMinMaxConst(CmpOp::kGe, mn, mx, *out.s_min);
        break;
      case CmpOp::kGt:
        g = GradeMinMaxConst(CmpOp::kGt, mn, mx, *out.s_min);
        break;
      case CmpOp::kEq:
        // Outside [min(S.B), max(S.B)] nothing can match; equality inside
        // the range stays ambivalent unless both sides are singletons.
        g = GradeMinMaxTwoCols(CmpOp::kEq, mn, mx, out.s_min, out.s_max);
        break;
      case CmpOp::kNe:
        if (*out.s_min < *out.s_max) {
          g = Grade::kQualifies;  // S has two distinct values; any a matches
        } else {
          g = GradeMinMaxConst(CmpOp::kNe, mn, mx, *out.s_min);
        }
        break;
    }
    if (g == Grade::kDisqualifies) out.candidates.Set(b, false);
    if (g == Grade::kQualifies) out.all_match.Set(b, true);
  }
  return out;
}

}  // namespace smadb::sma
