// SMA-file: the materialized, sequentially organized aggregate file.
//
// "For all buckets, the resulting values are materialized in a separate
// SMA-file. The SMA-file is sequentially organized: the value for the first
// bucket is the first value in the SMA-file, the second value is the second
// value in the SMA-file and so on. Contrary to traditional index structures,
// a SMA-file does not contain any other additional information." (§2.1)
//
// Pages are fully packed with fixed-width entries (4 or 8 bytes) and carry
// no header, which reproduces the paper's file sizes exactly: one 4-byte
// entry per 4K bucket => SMA-file = 1/1024 of the data.

#ifndef SMADB_SMA_SMA_FILE_H_
#define SMADB_SMA_SMA_FILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "util/status.h"

namespace smadb::sma {

/// One sequential aggregate file. Entry i holds the aggregate of bucket i
/// (for one group, if the owning SMA is grouped).
class SmaFile {
 public:
  /// Creates an empty SMA-file backed by disk file `file_name`.
  static util::Result<std::unique_ptr<SmaFile>> Create(
      storage::BufferPool* pool, const std::string& file_name,
      uint32_t entry_width);

  /// Re-attaches to an existing disk file holding `num_entries` entries
  /// (recovery path; the entries themselves stay wherever they are).
  static util::Result<std::unique_ptr<SmaFile>> Open(
      storage::BufferPool* pool, const std::string& file_name,
      uint32_t entry_width, uint64_t num_entries);

  uint32_t entry_width() const { return entry_width_; }
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_acquire);
  }
  uint32_t num_pages() const {
    return num_pages_.load(std::memory_order_acquire);
  }
  storage::FileId file() const { return file_; }

  /// Entries that fit on one page (1024 for 4-byte, 512 for 8-byte).
  uint32_t entries_per_page() const { return entries_per_page_; }

  /// Appends one entry at the tail (bulk-load path).
  util::Status Append(int64_t value);

  /// Reads entry `idx` (random access through the buffer pool).
  util::Result<int64_t> Get(uint64_t idx) const;

  /// Overwrites entry `idx` in place (maintenance path; at most one page
  /// access, §2.1).
  util::Status Set(uint64_t idx, int64_t value);

  /// Discards all entries: evicts cached pages *without* write-back (they
  /// may be corrupt) and truncates the disk file. The rebuild path starts
  /// from here.
  util::Status Clear();

  /// Page that holds entry `idx`.
  uint32_t PageOfEntry(uint64_t idx) const {
    return static_cast<uint32_t>(idx / entries_per_page_);
  }

  /// Sequential reader that keeps the current page pinned so that a
  /// bucket-ordered scan touches each SMA page exactly once.
  class Cursor {
   public:
    explicit Cursor(const SmaFile* file) : file_(file) {}

    /// Reads entry `idx`. Amortized zero page faults for non-decreasing idx.
    util::Result<int64_t> Get(uint64_t idx);

   private:
    const SmaFile* file_;
    storage::PageGuard guard_;
    int64_t cached_page_ = -1;
  };

  Cursor NewCursor() const { return Cursor(this); }

  /// Total bytes occupied on the simulated disk.
  uint64_t SizeBytes() const {
    return static_cast<uint64_t>(num_pages()) * storage::kPageSize;
  }

 private:
  SmaFile(storage::BufferPool* pool, storage::FileId file,
          uint32_t entry_width)
      : pool_(pool),
        file_(file),
        entry_width_(entry_width),
        entries_per_page_(
            static_cast<uint32_t>(storage::kPageSize / entry_width)) {}

  int64_t DecodeAt(const storage::Page& page, uint64_t idx) const;
  void EncodeAt(storage::Page* page, uint64_t idx, int64_t value) const;

  storage::BufferPool* pool_;
  storage::FileId file_;
  uint32_t entry_width_;
  uint32_t entries_per_page_;
  // Appends are single-writer (the engine's write path is serialized above
  // us), but graders read concurrently under OTHER buckets' latches, so the
  // tail counters follow the publish discipline used by Table::append_state:
  // entry bytes land first, then num_entries_ is store-released; readers
  // acquire-load it and never index past what they loaded.
  std::atomic<uint64_t> num_entries_{0};
  std::atomic<uint32_t> num_pages_{0};
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_SMA_FILE_H_
