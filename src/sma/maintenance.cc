#include "sma/maintenance.h"

namespace smadb::sma {

using storage::Rid;
using storage::TupleBuffer;
using util::Result;
using util::Status;
using util::StatusCode;
using util::Value;

Status SmaMaintainer::Insert(const TupleBuffer& tuple, Rid* rid_out) {
  // Latch the target bucket exclusively BEFORE the page write: the tuple
  // bytes, the SMA folds, and the trust stamps form one atomic unit with
  // respect to readers of that bucket. The target is stable because appends
  // are single-writer (Database::write_mu_).
  const uint64_t bucket = table_->AppendTargetBucket();
  auto latch = table_->latches()->LockExclusive(bucket);
  Rid rid;
  SMADB_RETURN_NOT_OK(table_->Append(tuple, &rid));
  if (rid_out != nullptr) *rid_out = rid;
  const storage::TupleRef ref = tuple.AsRef();
  const uint64_t epoch = table_->epoch();
  for (Sma* sma : smas_->mutable_all()) {
    if (!sma->trusted()) continue;  // repaired wholesale by Rebuild()
    // Pre-stamp the post-mutation epoch before folding: a planner checking
    // staleness latch-free never transiently demotes, and graders serialize
    // on the bucket latch so they cannot read the entry before the fold
    // below lands. A failed fold revokes the stamp via MarkDistrusted.
    const Status s = [&]() -> Status {
      SMADB_RETURN_NOT_OK(sma->EnsureBuckets(bucket + 1));
      sma->MarkTrusted(epoch);
      SMADB_ASSIGN_OR_RETURN(size_t g,
                             sma->GetOrCreateGroup(sma->GroupKeyOf(ref)));
      SmaFile* file = sma->group_file(g);
      SMADB_ASSIGN_OR_RETURN(int64_t entry, file->Get(bucket));
      return file->Set(bucket, sma->Merge(entry, sma->ArgOf(ref)));
    }();
    if (!s.ok()) {
      sma->MarkDistrusted("maintenance fold failed: " + s.ToString());
      return s;
    }
  }
  return Status::OK();
}

Status SmaMaintainer::Delete(Rid rid) {
  const uint64_t bucket = table_->BucketOfPage(rid.page_no);
  auto latch = table_->latches()->LockExclusive(bucket);
  SMADB_RETURN_NOT_OK(table_->DeleteTuple(rid));
  const uint64_t epoch = table_->epoch();
  for (Sma* sma : smas_->mutable_all()) {
    if (!sma->trusted()) continue;
    const Status s = [&]() -> Status {
      SMADB_RETURN_NOT_OK(sma->EnsureBuckets(bucket + 1));
      sma->MarkTrusted(epoch);
      return RecomputeBucket(table_, sma, bucket);
    }();
    if (!s.ok()) {
      sma->MarkDistrusted("maintenance recompute failed: " + s.ToString());
      return s;
    }
  }
  return Status::OK();
}

Status SmaMaintainer::UpdateColumn(Rid rid, size_t col, const Value& v) {
  const uint64_t bucket = table_->BucketOfPage(rid.page_no);
  auto latch = table_->latches()->LockExclusive(bucket);
  SMADB_RETURN_NOT_OK(table_->UpdateColumn(rid, col, v));
  const uint64_t epoch = table_->epoch();
  for (Sma* sma : smas_->mutable_all()) {
    if (!sma->trusted()) continue;
    const SmaSpec& spec = sma->spec();
    bool affected =
        spec.arg != nullptr && spec.arg->ReferencesColumn(col);
    for (size_t gcol : spec.group_by) affected |= gcol == col;
    const Status s = [&]() -> Status {
      if (affected) {
        SMADB_RETURN_NOT_OK(sma->EnsureBuckets(bucket + 1));
        sma->MarkTrusted(epoch);
        return RecomputeBucket(table_, sma, bucket);
      }
      // Unaffected SMAs stay valid across this mutation; stamp them too so
      // the planner's staleness check keeps them usable.
      sma->MarkTrusted(epoch);
      return Status::OK();
    }();
    if (!s.ok()) {
      sma->MarkDistrusted("maintenance recompute failed: " + s.ToString());
      return s;
    }
  }
  return Status::OK();
}

Result<size_t> SmaMaintainer::VerifyAll(uint64_t max_sample_buckets) {
  // Whole-table exclusive hold: verification compares SMA entries against
  // the base data bucket by bucket; mutations mid-census would produce
  // false corruption verdicts.
  auto all = table_->latches()->LockAllExclusive();
  size_t failed = 0;
  for (Sma* sma : smas_->mutable_all()) {
    const Status s = sma->Verify(max_sample_buckets);
    if (s.ok()) continue;
    if (s.code() == StatusCode::kCorruption) {
      ++failed;  // Verify already marked it distrusted
      continue;
    }
    return s;
  }
  return failed;
}

Status SmaMaintainer::Rebuild() {
  // Whole-table exclusive hold (ascending shard order, see latch.h): a
  // rebuild tears groups down and re-materializes them from the base data.
  auto all = table_->latches()->LockAllExclusive();
  for (Sma* sma : smas_->mutable_all()) {
    if (sma->trusted() && !sma->stale()) continue;
    SMADB_RETURN_NOT_OK(sma->Rebuild());
  }
  return Status::OK();
}

}  // namespace smadb::sma
