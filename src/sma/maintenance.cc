#include "sma/maintenance.h"

namespace smadb::sma {

using storage::Rid;
using storage::TupleBuffer;
using util::Result;
using util::Status;
using util::StatusCode;
using util::Value;

Status SmaMaintainer::Insert(const TupleBuffer& tuple, Rid* rid_out) {
  Rid rid;
  SMADB_RETURN_NOT_OK(table_->Append(tuple, &rid));
  if (rid_out != nullptr) *rid_out = rid;
  const uint64_t bucket = table_->BucketOfPage(rid.page_no);
  const storage::TupleRef ref = tuple.AsRef();
  for (Sma* sma : smas_->mutable_all()) {
    if (!sma->trusted()) continue;  // repaired wholesale by Rebuild()
    SMADB_RETURN_NOT_OK(sma->EnsureBuckets(bucket + 1));
    SMADB_ASSIGN_OR_RETURN(size_t g,
                           sma->GetOrCreateGroup(sma->GroupKeyOf(ref)));
    SmaFile* file = sma->group_file(g);
    SMADB_ASSIGN_OR_RETURN(int64_t entry, file->Get(bucket));
    SMADB_RETURN_NOT_OK(
        file->Set(bucket, sma->Merge(entry, sma->ArgOf(ref))));
    sma->MarkTrusted(table_->epoch());
  }
  return Status::OK();
}

Status SmaMaintainer::Delete(Rid rid) {
  SMADB_RETURN_NOT_OK(table_->DeleteTuple(rid));
  const uint64_t bucket = table_->BucketOfPage(rid.page_no);
  for (Sma* sma : smas_->mutable_all()) {
    if (!sma->trusted()) continue;
    SMADB_RETURN_NOT_OK(sma->EnsureBuckets(bucket + 1));
    SMADB_RETURN_NOT_OK(RecomputeBucket(table_, sma, bucket));
    sma->MarkTrusted(table_->epoch());
  }
  return Status::OK();
}

Status SmaMaintainer::UpdateColumn(Rid rid, size_t col, const Value& v) {
  SMADB_RETURN_NOT_OK(table_->UpdateColumn(rid, col, v));
  const uint64_t bucket = table_->BucketOfPage(rid.page_no);
  for (Sma* sma : smas_->mutable_all()) {
    if (!sma->trusted()) continue;
    const SmaSpec& spec = sma->spec();
    bool affected =
        spec.arg != nullptr && spec.arg->ReferencesColumn(col);
    for (size_t gcol : spec.group_by) affected |= gcol == col;
    if (affected) {
      SMADB_RETURN_NOT_OK(sma->EnsureBuckets(bucket + 1));
      SMADB_RETURN_NOT_OK(RecomputeBucket(table_, sma, bucket));
    }
    // Unaffected SMAs stay valid across this mutation; stamp them too so
    // the planner's staleness check keeps them usable.
    sma->MarkTrusted(table_->epoch());
  }
  return Status::OK();
}

Result<size_t> SmaMaintainer::VerifyAll(uint64_t max_sample_buckets) {
  size_t failed = 0;
  for (Sma* sma : smas_->mutable_all()) {
    const Status s = sma->Verify(max_sample_buckets);
    if (s.ok()) continue;
    if (s.code() == StatusCode::kCorruption) {
      ++failed;  // Verify already marked it distrusted
      continue;
    }
    return s;
  }
  return failed;
}

Status SmaMaintainer::Rebuild() {
  for (Sma* sma : smas_->mutable_all()) {
    if (sma->trusted() && !sma->stale()) continue;
    SMADB_RETURN_NOT_OK(sma->Rebuild());
  }
  return Status::OK();
}

}  // namespace smadb::sma
