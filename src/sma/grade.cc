#include "sma/grade.h"

#include <cassert>

namespace smadb::sma {

using expr::CmpOp;
using expr::Predicate;
using util::Result;
using util::Status;

std::string_view GradeToString(Grade g) {
  switch (g) {
    case Grade::kQualifies:
      return "qualifies";
    case Grade::kDisqualifies:
      return "disqualifies";
    case Grade::kAmbivalent:
      return "ambivalent";
  }
  return "?";
}

Grade CombineAnd(Grade a, Grade b) {
  if (a == Grade::kDisqualifies || b == Grade::kDisqualifies) {
    return Grade::kDisqualifies;
  }
  if (a == Grade::kQualifies && b == Grade::kQualifies) {
    return Grade::kQualifies;
  }
  return Grade::kAmbivalent;
}

Grade CombineOr(Grade a, Grade b) {
  if (a == Grade::kQualifies || b == Grade::kQualifies) {
    return Grade::kQualifies;
  }
  if (a == Grade::kDisqualifies && b == Grade::kDisqualifies) {
    return Grade::kDisqualifies;
  }
  return Grade::kAmbivalent;
}

Grade GradeMinMaxConst(CmpOp op, std::optional<int64_t> mn,
                       std::optional<int64_t> mx, int64_t c) {
  switch (op) {
    case CmpOp::kEq:
      if (mx.has_value() && *mx < c) return Grade::kDisqualifies;
      if (mn.has_value() && *mn > c) return Grade::kDisqualifies;
      if (mn.has_value() && mx.has_value() && *mn == c && *mx == c) {
        return Grade::kQualifies;  // refinement, see header
      }
      return Grade::kAmbivalent;
    case CmpOp::kNe:
      if (mx.has_value() && *mx < c) return Grade::kQualifies;
      if (mn.has_value() && *mn > c) return Grade::kQualifies;
      if (mn.has_value() && mx.has_value() && *mn == c && *mx == c) {
        return Grade::kDisqualifies;
      }
      return Grade::kAmbivalent;
    case CmpOp::kLe:
      if (mx.has_value() && *mx <= c) return Grade::kQualifies;
      if (mn.has_value() && *mn > c) return Grade::kDisqualifies;
      return Grade::kAmbivalent;
    case CmpOp::kLt:
      if (mx.has_value() && *mx < c) return Grade::kQualifies;
      if (mn.has_value() && *mn >= c) return Grade::kDisqualifies;
      return Grade::kAmbivalent;
    case CmpOp::kGe:
      if (mn.has_value() && *mn >= c) return Grade::kQualifies;
      if (mx.has_value() && *mx < c) return Grade::kDisqualifies;
      return Grade::kAmbivalent;
    case CmpOp::kGt:
      if (mn.has_value() && *mn > c) return Grade::kQualifies;
      if (mx.has_value() && *mx <= c) return Grade::kDisqualifies;
      return Grade::kAmbivalent;
  }
  return Grade::kAmbivalent;
}

Grade GradeMinMaxTwoCols(CmpOp op, std::optional<int64_t> mn_a,
                         std::optional<int64_t> mx_a,
                         std::optional<int64_t> mn_b,
                         std::optional<int64_t> mx_b) {
  switch (op) {
    case CmpOp::kLe:
      if (mx_a.has_value() && mn_b.has_value() && *mx_a <= *mn_b) {
        return Grade::kQualifies;
      }
      if (mn_a.has_value() && mx_b.has_value() && *mn_a > *mx_b) {
        return Grade::kDisqualifies;
      }
      return Grade::kAmbivalent;
    case CmpOp::kLt:
      if (mx_a.has_value() && mn_b.has_value() && *mx_a < *mn_b) {
        return Grade::kQualifies;
      }
      if (mn_a.has_value() && mx_b.has_value() && *mn_a >= *mx_b) {
        return Grade::kDisqualifies;
      }
      return Grade::kAmbivalent;
    case CmpOp::kGe:
      return GradeMinMaxTwoCols(CmpOp::kLe, mn_b, mx_b, mn_a, mx_a);
    case CmpOp::kGt:
      return GradeMinMaxTwoCols(CmpOp::kLt, mn_b, mx_b, mn_a, mx_a);
    case CmpOp::kEq: {
      // Disjoint ranges disqualify; both ranges pinned to the same single
      // value qualify.
      if (mx_a.has_value() && mn_b.has_value() && *mx_a < *mn_b) {
        return Grade::kDisqualifies;
      }
      if (mn_a.has_value() && mx_b.has_value() && *mn_a > *mx_b) {
        return Grade::kDisqualifies;
      }
      if (mn_a.has_value() && mx_a.has_value() && mn_b.has_value() &&
          mx_b.has_value() && *mn_a == *mx_a && *mn_b == *mx_b &&
          *mn_a == *mn_b) {
        return Grade::kQualifies;
      }
      return Grade::kAmbivalent;
    }
    case CmpOp::kNe: {
      if (mx_a.has_value() && mn_b.has_value() && *mx_a < *mn_b) {
        return Grade::kQualifies;
      }
      if (mn_a.has_value() && mx_b.has_value() && *mn_a > *mx_b) {
        return Grade::kQualifies;
      }
      if (mn_a.has_value() && mx_a.has_value() && mn_b.has_value() &&
          mx_b.has_value() && *mn_a == *mx_a && *mn_b == *mx_b &&
          *mn_a == *mn_b) {
        return Grade::kDisqualifies;
      }
      return Grade::kAmbivalent;
    }
  }
  return Grade::kAmbivalent;
}

BucketGrader::BucketGrader(expr::PredicatePtr pred, const SmaSet* smas)
    : pred_(std::move(pred)), smas_(smas) {}

std::unique_ptr<BucketGrader> BucketGrader::Create(expr::PredicatePtr pred,
                                                   const SmaSet* smas) {
  std::unique_ptr<BucketGrader> grader(
      new BucketGrader(std::move(pred), smas));
  grader->root_ = grader->Bind(grader->pred_.get());
  return grader;
}

namespace {

void BindMinMax(const SmaSet* smas, size_t col, const Sma** min_sma,
                const Sma** max_sma, std::vector<SmaFile::Cursor>* min_cursors,
                std::vector<SmaFile::Cursor>* max_cursors) {
  *min_sma = smas->FindMinMax(AggFunc::kMin, col);
  *max_sma = smas->FindMinMax(AggFunc::kMax, col);
  if (*min_sma != nullptr) {
    for (size_t g = 0; g < (*min_sma)->num_groups(); ++g) {
      min_cursors->push_back((*min_sma)->group_file(g)->NewCursor());
    }
  }
  if (*max_sma != nullptr) {
    for (size_t g = 0; g < (*max_sma)->num_groups(); ++g) {
      max_cursors->push_back((*max_sma)->group_file(g)->NewCursor());
    }
  }
}

}  // namespace

std::unique_ptr<BucketGrader::Node> BucketGrader::Bind(const Predicate* pred) {
  auto node = std::make_unique<Node>();
  node->pred = pred;
  switch (pred->kind()) {
    case Predicate::Kind::kTrue:
      break;
    case Predicate::Kind::kAtomConst: {
      BindMinMax(smas_, pred->column(), &node->min_sma, &node->max_sma,
                 &node->min_cursors, &node->max_cursors);
      node->count_sma = smas_->FindCountByValue(pred->column());
      if (node->count_sma != nullptr) {
        for (size_t g = 0; g < node->count_sma->num_groups(); ++g) {
          node->count_cursors.push_back(
              node->count_sma->group_file(g)->NewCursor());
        }
      }
      if (node->min_sma != nullptr || node->max_sma != nullptr ||
          node->count_sma != nullptr) {
        has_sma_support_ = true;
      }
      break;
    }
    case Predicate::Kind::kAtomTwoCols: {
      BindMinMax(smas_, pred->column(), &node->min_sma, &node->max_sma,
                 &node->min_cursors, &node->max_cursors);
      BindMinMax(smas_, pred->rhs_column(), &node->rhs_min_sma,
                 &node->rhs_max_sma, &node->rhs_min_cursors,
                 &node->rhs_max_cursors);
      if ((node->min_sma != nullptr || node->max_sma != nullptr) &&
          (node->rhs_min_sma != nullptr || node->rhs_max_sma != nullptr)) {
        has_sma_support_ = true;
      }
      break;
    }
    case Predicate::Kind::kAtomString: {
      // String equality grades through a count-by-value SMA only.
      node->count_sma = smas_->FindCountByValue(pred->column());
      if (node->count_sma != nullptr) {
        for (size_t g = 0; g < node->count_sma->num_groups(); ++g) {
          node->count_cursors.push_back(
              node->count_sma->group_file(g)->NewCursor());
        }
        has_sma_support_ = true;
      }
      break;
    }
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      node->left = Bind(pred->left());
      node->right = Bind(pred->right());
      break;
  }
  return node;
}

Result<std::optional<int64_t>> BucketGrader::Extreme(
    const Sma* sma, std::vector<SmaFile::Cursor>* cursors, uint64_t b) {
  std::optional<int64_t> extreme;
  if (sma == nullptr || b >= sma->num_buckets()) return extreme;
  for (size_t g = 0; g < cursors->size(); ++g) {
    SMADB_ASSIGN_OR_RETURN(int64_t e, (*cursors)[g].Get(b));
    if (sma->IsUndefined(e)) continue;
    if (!extreme.has_value()) {
      extreme = e;
    } else if (sma->spec().func == AggFunc::kMin) {
      extreme = std::min(*extreme, e);
    } else {
      extreme = std::max(*extreme, e);
    }
  }
  return extreme;
}

Result<Grade> BucketGrader::GradeAtom(Node* node, uint64_t b) {
  const Predicate* pred = node->pred;

  if (pred->kind() == Predicate::Kind::kAtomString) {
    // §3.1 count rules applied to the string domain: a bucket qualifies
    // when every present value satisfies the equality, disqualifies when
    // none does.
    if (node->count_sma == nullptr || b >= node->count_sma->num_buckets()) {
      return Grade::kAmbivalent;
    }
    bool any_present = false;
    bool all_satisfy = true;
    bool none_satisfy = true;
    for (size_t g = 0; g < node->count_cursors.size(); ++g) {
      SMADB_ASSIGN_OR_RETURN(int64_t count, node->count_cursors[g].Get(b));
      if (count <= 0) continue;
      any_present = true;
      const util::Value& x = node->count_sma->group_key(g)[0];
      const bool eq = x.AsString() == pred->string_constant();
      const bool sat = pred->op() == expr::CmpOp::kEq ? eq : !eq;
      all_satisfy &= sat;
      none_satisfy &= !sat;
    }
    if (!any_present) return Grade::kAmbivalent;
    if (all_satisfy) return Grade::kQualifies;
    if (none_satisfy) return Grade::kDisqualifies;
    return Grade::kAmbivalent;
  }

  SMADB_ASSIGN_OR_RETURN(std::optional<int64_t> mn,
                         Extreme(node->min_sma, &node->min_cursors, b));
  SMADB_ASSIGN_OR_RETURN(std::optional<int64_t> mx,
                         Extreme(node->max_sma, &node->max_cursors, b));

  Grade grade = Grade::kAmbivalent;
  if (pred->kind() == Predicate::Kind::kAtomConst) {
    grade = GradeMinMaxConst(pred->op(), mn, mx, pred->constant());

    // Count-by-value source (§3.1 count rules, intended semantics).
    if (grade == Grade::kAmbivalent && node->count_sma != nullptr &&
        b < node->count_sma->num_buckets()) {
      bool any_present = false;
      bool all_satisfy = true;
      bool none_satisfy = true;
      for (size_t g = 0; g < node->count_cursors.size(); ++g) {
        SMADB_ASSIGN_OR_RETURN(int64_t count, node->count_cursors[g].Get(b));
        if (count <= 0) continue;
        any_present = true;
        // Group key is the attribute value x.
        const util::Value& x = node->count_sma->group_key(g)[0];
        const bool sat = expr::CompareInt(x.RawInt(), pred->op(),
                                          pred->constant());
        all_satisfy &= sat;
        none_satisfy &= !sat;
      }
      if (any_present) {
        if (all_satisfy) {
          grade = Grade::kQualifies;
        } else if (none_satisfy) {
          grade = Grade::kDisqualifies;
        }
      }
    }
  } else {
    SMADB_ASSIGN_OR_RETURN(
        std::optional<int64_t> rhs_mn,
        Extreme(node->rhs_min_sma, &node->rhs_min_cursors, b));
    SMADB_ASSIGN_OR_RETURN(
        std::optional<int64_t> rhs_mx,
        Extreme(node->rhs_max_sma, &node->rhs_max_cursors, b));
    grade = GradeMinMaxTwoCols(pred->op(), mn, mx, rhs_mn, rhs_mx);
  }
  return grade;
}

Result<Grade> BucketGrader::GradeNode(Node* node, uint64_t b) {
  switch (node->pred->kind()) {
    case Predicate::Kind::kTrue:
      return Grade::kQualifies;
    case Predicate::Kind::kAtomConst:
    case Predicate::Kind::kAtomTwoCols:
    case Predicate::Kind::kAtomString:
      return GradeAtom(node, b);
    case Predicate::Kind::kAnd: {
      SMADB_ASSIGN_OR_RETURN(Grade l, GradeNode(node->left.get(), b));
      // Short-circuit: a disqualifying conjunct settles the bucket.
      if (l == Grade::kDisqualifies) return Grade::kDisqualifies;
      SMADB_ASSIGN_OR_RETURN(Grade r, GradeNode(node->right.get(), b));
      return CombineAnd(l, r);
    }
    case Predicate::Kind::kOr: {
      SMADB_ASSIGN_OR_RETURN(Grade l, GradeNode(node->left.get(), b));
      if (l == Grade::kQualifies) return Grade::kQualifies;
      SMADB_ASSIGN_OR_RETURN(Grade r, GradeNode(node->right.get(), b));
      return CombineOr(l, r);
    }
  }
  return Grade::kAmbivalent;
}

Result<Grade> BucketGrader::GradeBucket(uint64_t b) {
  return GradeNode(root_.get(), b);
}

}  // namespace smadb::sma
