// SMA definitions (paper §2.1, §2.3).
//
// A SMA is declared like
//
//     define sma qty
//     select   sum(L_QUANTITY)
//     from     L_LINEITEM
//     group by L_RETURNFLAG, L_LINESTATUS
//
// i.e. one aggregate function over one expression, optionally grouped. The
// select clause may contain only a single entry; joins and order-by are
// disallowed (the semi-join generalization of §4 lives in semijoin.h).

#ifndef SMADB_SMA_SMA_DEF_H_
#define SMADB_SMA_SMA_DEF_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/schema.h"
#include "util/status.h"

namespace smadb::sma {

/// The aggregate functions a SMA may materialize (paper §2.1: "Besides min,
/// we allow for the aggregate functions max, sum, and count").
enum class AggFunc { kMin, kMax, kSum, kCount };

std::string_view AggFuncToString(AggFunc f);

/// One SMA declaration, bound to a table schema.
struct SmaSpec {
  /// Name of the SMA ("min", "qty", ...). Unique per table.
  std::string name;
  AggFunc func = AggFunc::kCount;
  /// Aggregated expression; null exactly when func == kCount (count(*)).
  expr::ExprPtr arg;
  /// Grouping column ordinals (empty = ungrouped). String columns allowed.
  std::vector<size_t> group_by;

  /// "select min(l_shipdate) from t [group by ...]" shorthand constructors.
  static SmaSpec Min(std::string name, expr::ExprPtr arg,
                     std::vector<size_t> group_by = {}) {
    return SmaSpec{std::move(name), AggFunc::kMin, std::move(arg),
                   std::move(group_by)};
  }
  static SmaSpec Max(std::string name, expr::ExprPtr arg,
                     std::vector<size_t> group_by = {}) {
    return SmaSpec{std::move(name), AggFunc::kMax, std::move(arg),
                   std::move(group_by)};
  }
  static SmaSpec Sum(std::string name, expr::ExprPtr arg,
                     std::vector<size_t> group_by = {}) {
    return SmaSpec{std::move(name), AggFunc::kSum, std::move(arg),
                   std::move(group_by)};
  }
  static SmaSpec Count(std::string name, std::vector<size_t> group_by = {}) {
    return SmaSpec{std::move(name), AggFunc::kCount, nullptr,
                   std::move(group_by)};
  }

  /// Validates the spec against a schema: count has no argument, other
  /// functions need an integral-family argument, group columns exist.
  util::Status Validate(const storage::Schema& schema) const;

  /// Canonical "func(arg) group by c1,c2" form used for matching.
  std::string Signature(const storage::Schema& schema) const;

  /// Bytes of one materialized entry: 4 for counts and for min/max of
  /// 4-byte-typed expressions (dates, int32), else 8 — the paper's §2.4
  /// layout ("For counts and dates, 4 bytes are needed. For all other
  /// aggregate values we used 8 bytes.").
  uint32_t EntryWidth() const;
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_SMA_DEF_H_
