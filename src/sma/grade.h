// grade: partitioning the buckets of a relation into qualifying,
// disqualifying and ambivalent buckets for a selection predicate (paper
// §3.1), given the SMAs available on the table.
//
// Atom rules implemented exactly as in the paper for
//   A = c, A <= c, A < c, A >= c, A > c, A <= B, A < B  (min/max SMAs)
// and the count-by-value rules for count SMAs grouped solely by A —
// with two documented refinements:
//   * A = c additionally *qualifies* when min = max = c (the paper only
//     ever disqualifies for equality; the refinement is sound and strictly
//     more precise).
//   * the paper's literal ∩-over-all-x combination for count SMAs yields an
//     empty qualifying set; we implement the evident intent: a bucket
//     qualifies when every value present in it satisfies the predicate and
//     disqualifies when none does.
// A != c / A != B are supported as extensions with the dual rules.

#ifndef SMADB_SMA_GRADE_H_
#define SMADB_SMA_GRADE_H_

#include <memory>
#include <optional>
#include <vector>

#include "expr/predicate.h"
#include "sma/sma_set.h"

namespace smadb::sma {

/// The three-way bucket classification of §2.2/§3.1.
enum class Grade { kQualifies, kDisqualifies, kAmbivalent };

std::string_view GradeToString(Grade g);

/// Conjunctive combination (paper §3.1):
///   BUq = BUq1 ∩ BUq2,  BUd = BUd1 ∪ BUd2.
Grade CombineAnd(Grade a, Grade b);

/// Disjunctive combination (paper §3.1):
///   BUq = BUq1 ∪ BUq2,  BUd = BUd1 ∩ BUd2.
Grade CombineOr(Grade a, Grade b);

/// Grades `A op c` from the bucket's min/max of A. Either side may be
/// unknown (no SMA, or aggregate undefined), in which case only the
/// conclusions that do not need it are drawn.
Grade GradeMinMaxConst(expr::CmpOp op, std::optional<int64_t> mn,
                       std::optional<int64_t> mx, int64_t c);

/// Grades `A op B` (both attributes of the tuple) from both columns'
/// bucket min/max.
Grade GradeMinMaxTwoCols(expr::CmpOp op, std::optional<int64_t> mn_a,
                         std::optional<int64_t> mx_a,
                         std::optional<int64_t> mn_b,
                         std::optional<int64_t> mx_b);

/// Streams grades for the buckets of a table, one predicate, binding each
/// atom to whatever SMAs the set offers (min/max — grouped or not — and
/// count-by-value). Buckets beyond the SMAs' coverage grade ambivalent.
///
/// Grading is designed to run "in sync" with a sequential scan (§2.3):
/// all SMA-files are read through cursors, so non-decreasing bucket numbers
/// touch each SMA page exactly once.
class BucketGrader {
 public:
  /// Binds `pred` against `smas`. Never fails on missing SMAs — atoms
  /// without a usable SMA simply grade ambivalent.
  static std::unique_ptr<BucketGrader> Create(expr::PredicatePtr pred,
                                              const SmaSet* smas);

  /// Grade of bucket `b`. Most efficient when called with non-decreasing b.
  util::Result<Grade> GradeBucket(uint64_t b);

  /// True when at least one atom is backed by a SMA — otherwise every
  /// bucket will grade ambivalent and a plain scan is the better plan.
  bool has_sma_support() const { return has_sma_support_; }

 private:
  struct Node {
    const expr::Predicate* pred = nullptr;
    // min/max sources for the lhs column (one cursor per group file).
    const Sma* min_sma = nullptr;
    const Sma* max_sma = nullptr;
    std::vector<SmaFile::Cursor> min_cursors;
    std::vector<SmaFile::Cursor> max_cursors;
    // min/max sources for the rhs column (two-column atoms).
    const Sma* rhs_min_sma = nullptr;
    const Sma* rhs_max_sma = nullptr;
    std::vector<SmaFile::Cursor> rhs_min_cursors;
    std::vector<SmaFile::Cursor> rhs_max_cursors;
    // count-by-value source (count SMA grouped solely by the lhs column).
    const Sma* count_sma = nullptr;
    std::vector<SmaFile::Cursor> count_cursors;
    // children for and/or.
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  BucketGrader(expr::PredicatePtr pred, const SmaSet* smas);

  std::unique_ptr<Node> Bind(const expr::Predicate* pred);
  util::Result<Grade> GradeNode(Node* node, uint64_t b);
  util::Result<Grade> GradeAtom(Node* node, uint64_t b);

  /// Bucket-level extreme across a min/max SMA's groups via cursors.
  static util::Result<std::optional<int64_t>> Extreme(
      const Sma* sma, std::vector<SmaFile::Cursor>* cursors, uint64_t b);

  expr::PredicatePtr pred_;
  const SmaSet* smas_;
  std::unique_ptr<Node> root_;
  bool has_sma_support_ = false;
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_GRADE_H_
