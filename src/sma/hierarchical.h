// Hierarchical (two-level) SMAs, paper §4.
//
// "Every SMA-file is again partitioned into buckets and for each bucket a
// second level SMA is computed. ... If a second level bucket qualifies or
// disqualifies, the first level SMA-file need not to be accessed, which
// saves some I/O. If the second level bucket is ambivalent, then the first
// level SMA-file can be exploited to inspect the situation at a finer
// grain. Since second level SMA-files will be very small we do not think
// that higher levels are useful."
//
// We summarize each *page* of the first-level min (resp. max) SMA-file by
// its minimum (resp. maximum): one level-2 entry covers up to 1024 buckets.

#ifndef SMADB_SMA_HIERARCHICAL_H_
#define SMADB_SMA_HIERARCHICAL_H_

#include <memory>
#include <vector>

#include "expr/predicate.h"
#include "sma/grade.h"
#include "sma/sma.h"

namespace smadb::sma {

/// Two-level min/max pair over one column. Built from existing ungrouped
/// min & max SMAs; the second level lives in its own (tiny) SMA-files.
class HierarchicalMinMax {
 public:
  /// `min_sma` / `max_sma` must be ungrouped min/max SMAs of one table.
  static util::Result<std::unique_ptr<HierarchicalMinMax>> Build(
      const Sma* min_sma, const Sma* max_sma);

  /// Grades every bucket for the atom `column op c`, reading first-level
  /// SMA pages only where the second level is ambivalent. Returns the
  /// number of first-level pages actually read via `l1_pages_read` (the
  /// quantity §4's argument is about).
  util::Status GradeAll(expr::CmpOp op, int64_t c, std::vector<Grade>* grades,
                        uint64_t* l1_pages_read) const;

  /// Single-level reference: grades every bucket reading all L1 pages.
  util::Status GradeAllFlat(expr::CmpOp op, int64_t c,
                            std::vector<Grade>* grades,
                            uint64_t* l1_pages_read) const;

  const SmaFile* level2_min() const { return l2_min_.get(); }
  const SmaFile* level2_max() const { return l2_max_.get(); }
  uint64_t num_buckets() const { return min_sma_->num_buckets(); }

 private:
  HierarchicalMinMax(const Sma* min_sma, const Sma* max_sma)
      : min_sma_(min_sma), max_sma_(max_sma) {}

  const Sma* min_sma_;
  const Sma* max_sma_;
  std::unique_ptr<SmaFile> l2_min_;
  std::unique_ptr<SmaFile> l2_max_;
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_HIERARCHICAL_H_
