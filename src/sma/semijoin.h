// Semi-join SMAs, paper §4.
//
// For queries of the pattern
//     select R.*  from R, S  where R.A θ S.B
// "if we can associate a minimax value of the S.B values with each bucket
// of R, SMAs can be used to decrease the input to the semi-join."
//
// The minimax of S.B is the same for every R bucket (it summarizes S as a
// whole), so the reducer computes [min(S.B), max(S.B)] once — from S's SMAs
// when available, else by scanning S — and then grades each R bucket's
// [min(A), max(A)] against it with the two-sided rules of §3.1. Buckets
// graded `disqualifies` cannot contain any tuple joining with S and are
// dropped from the semi-join input.

#ifndef SMADB_SMA_SEMIJOIN_H_
#define SMADB_SMA_SEMIJOIN_H_

#include <optional>

#include "expr/predicate.h"
#include "sma/grade.h"
#include "sma/sma_set.h"
#include "util/bitvector.h"

namespace smadb::sma {

/// Result of a semi-join reduction: which R buckets may contain matches.
struct SemiJoinReduction {
  /// candidate.Get(b) == true  ⇔  bucket b must be fed to the semi-join.
  util::BitVector candidates;
  /// Buckets proven to contain only matching tuples (every tuple of such a
  /// bucket joins; the per-tuple probe can be skipped for them).
  util::BitVector all_match;
  std::optional<int64_t> s_min;
  std::optional<int64_t> s_max;
};

/// Computes the global min/max of column `s_col` of `s_table`, preferring
/// SMAs from `s_smas` (may be null). Returns nullopt extremes for an empty
/// table.
util::Result<std::pair<std::optional<int64_t>, std::optional<int64_t>>>
ColumnMinMax(storage::Table* s_table, size_t s_col, const SmaSet* s_smas);

/// Grades R's buckets for `R.r_col op S.s_col` and returns the reduced
/// semi-join input. Requires min/max SMAs on R.r_col in `r_smas` to prune
/// anything; without them every bucket stays a candidate.
util::Result<SemiJoinReduction> ReduceSemiJoin(const SmaSet* r_smas,
                                               size_t r_col, expr::CmpOp op,
                                               storage::Table* s_table,
                                               size_t s_col,
                                               const SmaSet* s_smas);

/// Same, against an already-known S.B range (e.g. computed over a
/// *filtered* S, or supplied by a remote site). The != case concludes
/// "all match" only when the range itself proves two distinct values.
util::Result<SemiJoinReduction> ReduceSemiJoinWithRange(
    const SmaSet* r_smas, size_t r_col, expr::CmpOp op,
    std::optional<int64_t> s_min, std::optional<int64_t> s_max);

}  // namespace smadb::sma

#endif  // SMADB_SMA_SEMIJOIN_H_
