// Incremental SMA maintenance (paper §2.1: "due to the direct correspondence
// between SMA-file entries and buckets ... SMA-files are easy to update. The
// algorithms behind are simple and very efficient. At most one additional
// page access is needed for an updated tuple.").
//
// Inserts fold the new tuple into each SMA entry in place (sum/count add,
// min/max widen) — one SMA page per affected group file. Updates cannot
// shrink a min/max incrementally, so affected SMAs recompute the bucket's
// entries from the bucket itself (one bucket + one SMA page per group).
//
// Trust: every maintained SMA is stamped with the table's new modification
// epoch, so planner staleness checks stay green. Distrusted SMAs (condemned
// by a checksum failure or a failed Verify()) are skipped — incremental
// folding into corrupt entries is wasted work — and repaired wholesale by
// the next Rebuild() call.

#ifndef SMADB_SMA_MAINTENANCE_H_
#define SMADB_SMA_MAINTENANCE_H_

#include "sma/builder.h"
#include "sma/sma_set.h"
#include "storage/table.h"

namespace smadb::sma {

/// Couples a table with its SmaSet so mutations keep both consistent.
class SmaMaintainer {
 public:
  SmaMaintainer(storage::Table* table, SmaSet* smas)
      : table_(table), smas_(smas) {}

  /// Appends `tuple` to the table and folds it into every SMA. New buckets
  /// extend each SMA-file by one identity entry first; unseen group keys
  /// create a new (backfilled) SMA-file.
  util::Status Insert(const storage::TupleBuffer& tuple,
                      storage::Rid* rid = nullptr);

  /// Updates one column of one tuple, then repairs every SMA whose argument
  /// or grouping references that column by recomputing the affected
  /// bucket's entries.
  util::Status UpdateColumn(storage::Rid rid, size_t col,
                            const util::Value& v);

  /// Tombstones one tuple and recomputes the affected bucket's entries in
  /// every SMA (a removed tuple can shrink counts/sums and move min/max,
  /// so all SMAs are affected).
  util::Status Delete(storage::Rid rid);

  /// Self-check every SMA against the base data (sampled; see Sma::Verify).
  /// Failing SMAs are marked distrusted; returns how many failed. Non-
  /// corruption errors (e.g. base-table I/O) surface immediately.
  util::Result<size_t> VerifyAll(uint64_t max_sample_buckets = 16);

  /// The maintenance hook of the degradation ladder: re-materializes every
  /// distrusted or stale SMA from the base data. Healthy SMAs are untouched.
  util::Status Rebuild();

 private:
  storage::Table* table_;
  SmaSet* smas_;
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_MAINTENANCE_H_
