#include "sma/builder.h"

#include <map>

namespace smadb::sma {

using storage::Table;
using storage::TupleRef;
using util::Result;
using util::Status;
using util::Value;

Result<std::unique_ptr<Sma>> BuildSma(Table* table, SmaSpec spec) {
  SMADB_ASSIGN_OR_RETURN(std::unique_ptr<Sma> sma,
                         Sma::Create(table->pool(), table, std::move(spec)));
  const uint64_t buckets = table->num_buckets();
  std::map<size_t, int64_t> acc;
  for (uint64_t b = 0; b < buckets; ++b) {
    // Per-bucket accumulator: group ordinal -> folded entry; std::map keeps
    // the pass deterministic.
    SMADB_RETURN_NOT_OK(sma->AccumulateBucket(b, &acc));
    // One entry per group file (identity when the group is absent from the
    // bucket). GetOrCreateGroup already backfilled identity entries for
    // groups discovered mid-scan.
    SMADB_RETURN_NOT_OK(sma->AppendBucket(acc));
  }
  // A freshly built SMA reflects the table as of right now.
  sma->MarkTrusted(table->epoch());
  return sma;
}

Status RecomputeBucket(Table* table, Sma* sma, uint64_t bucket) {
  (void)table;
  if (bucket >= sma->num_buckets()) {
    return Status::OutOfRange("bucket beyond SMA coverage");
  }
  std::map<size_t, int64_t> acc;
  SMADB_RETURN_NOT_OK(sma->AccumulateBucket(bucket, &acc));
  for (size_t g = 0; g < sma->num_groups(); ++g) {
    auto it = acc.find(g);
    const int64_t entry = it == acc.end() ? sma->IdentityEntry() : it->second;
    SMADB_RETURN_NOT_OK(sma->group_file(g)->Set(bucket, entry));
  }
  return Status::OK();
}

}  // namespace smadb::sma
