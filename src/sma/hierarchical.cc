#include "sma/hierarchical.h"

#include <algorithm>

namespace smadb::sma {

using expr::CmpOp;
using util::Result;
using util::Status;

Result<std::unique_ptr<HierarchicalMinMax>> HierarchicalMinMax::Build(
    const Sma* min_sma, const Sma* max_sma) {
  if (min_sma == nullptr || max_sma == nullptr ||
      min_sma->spec().func != AggFunc::kMin ||
      max_sma->spec().func != AggFunc::kMax ||
      !min_sma->spec().group_by.empty() || !max_sma->spec().group_by.empty()) {
    return Status::InvalidArgument(
        "hierarchical SMA needs ungrouped min and max SMAs");
  }
  if (min_sma->table() != max_sma->table() ||
      min_sma->num_buckets() != max_sma->num_buckets()) {
    return Status::InvalidArgument("min/max SMAs must cover the same table");
  }

  std::unique_ptr<HierarchicalMinMax> h(
      new HierarchicalMinMax(min_sma, max_sma));
  storage::BufferPool* pool = min_sma->pool();

  // Level-2 entries inherit the level-1 entry width so the sentinel space
  // matches.
  SMADB_ASSIGN_OR_RETURN(
      h->l2_min_,
      SmaFile::Create(pool,
                      "sma2." + min_sma->table()->name() + "." +
                          min_sma->spec().name,
                      min_sma->spec().EntryWidth()));
  SMADB_ASSIGN_OR_RETURN(
      h->l2_max_,
      SmaFile::Create(pool,
                      "sma2." + max_sma->table()->name() + "." +
                          max_sma->spec().name,
                      max_sma->spec().EntryWidth()));

  // One pass per level-1 file; each level-2 entry summarizes one L1 page.
  const auto summarize = [&](const Sma* sma, SmaFile* l2,
                             bool is_min) -> Status {
    const SmaFile* l1 = sma->group_file(0);
    SmaFile::Cursor cursor = l1->NewCursor();
    const uint64_t n = l1->num_entries();
    const uint32_t per_page = l1->entries_per_page();
    uint64_t i = 0;
    while (i < n) {
      const uint64_t end = std::min<uint64_t>(n, i + per_page);
      int64_t agg = sma->IdentityEntry();
      for (; i < end; ++i) {
        SMADB_ASSIGN_OR_RETURN(int64_t e, cursor.Get(i));
        if (sma->IsUndefined(e)) continue;
        if (sma->IsUndefined(agg)) {
          agg = e;
        } else {
          agg = is_min ? std::min(agg, e) : std::max(agg, e);
        }
      }
      SMADB_RETURN_NOT_OK(l2->Append(agg));
    }
    return Status::OK();
  };
  SMADB_RETURN_NOT_OK(summarize(min_sma, h->l2_min_.get(), /*is_min=*/true));
  SMADB_RETURN_NOT_OK(summarize(max_sma, h->l2_max_.get(), /*is_min=*/false));
  return h;
}

Status HierarchicalMinMax::GradeAll(CmpOp op, int64_t c,
                                    std::vector<Grade>* grades,
                                    uint64_t* l1_pages_read) const {
  const SmaFile* l1_min = min_sma_->group_file(0);
  const SmaFile* l1_max = max_sma_->group_file(0);
  const uint64_t buckets = num_buckets();
  const uint32_t per_page = l1_min->entries_per_page();
  grades->assign(buckets, Grade::kAmbivalent);
  uint64_t pages = 0;

  SmaFile::Cursor l2_min_cur = l2_min_->NewCursor();
  SmaFile::Cursor l2_max_cur = l2_max_->NewCursor();
  SmaFile::Cursor l1_min_cur = l1_min->NewCursor();
  SmaFile::Cursor l1_max_cur = l1_max->NewCursor();

  for (uint64_t l2 = 0; l2 < l2_min_->num_entries(); ++l2) {
    SMADB_ASSIGN_OR_RETURN(int64_t mn_raw, l2_min_cur.Get(l2));
    SMADB_ASSIGN_OR_RETURN(int64_t mx_raw, l2_max_cur.Get(l2));
    std::optional<int64_t> mn, mx;
    if (!min_sma_->IsUndefined(mn_raw)) mn = mn_raw;
    if (!max_sma_->IsUndefined(mx_raw)) mx = mx_raw;
    const Grade coarse = GradeMinMaxConst(op, mn, mx, c);
    const uint64_t first = l2 * per_page;
    const uint64_t end = std::min<uint64_t>(buckets, first + per_page);
    if (coarse != Grade::kAmbivalent) {
      // Whole L1 page settled without reading it.
      std::fill(grades->begin() + static_cast<ptrdiff_t>(first),
                grades->begin() + static_cast<ptrdiff_t>(end), coarse);
      continue;
    }
    // Ambivalent at level 2: refine from the L1 page (min + max files).
    pages += 2;
    for (uint64_t b = first; b < end; ++b) {
      SMADB_ASSIGN_OR_RETURN(int64_t bmn_raw, l1_min_cur.Get(b));
      SMADB_ASSIGN_OR_RETURN(int64_t bmx_raw, l1_max_cur.Get(b));
      std::optional<int64_t> bmn, bmx;
      if (!min_sma_->IsUndefined(bmn_raw)) bmn = bmn_raw;
      if (!max_sma_->IsUndefined(bmx_raw)) bmx = bmx_raw;
      (*grades)[b] = GradeMinMaxConst(op, bmn, bmx, c);
    }
  }
  if (l1_pages_read != nullptr) *l1_pages_read = pages;
  return Status::OK();
}

Status HierarchicalMinMax::GradeAllFlat(CmpOp op, int64_t c,
                                        std::vector<Grade>* grades,
                                        uint64_t* l1_pages_read) const {
  const SmaFile* l1_min = min_sma_->group_file(0);
  const SmaFile* l1_max = max_sma_->group_file(0);
  const uint64_t buckets = num_buckets();
  grades->assign(buckets, Grade::kAmbivalent);
  SmaFile::Cursor min_cur = l1_min->NewCursor();
  SmaFile::Cursor max_cur = l1_max->NewCursor();
  for (uint64_t b = 0; b < buckets; ++b) {
    SMADB_ASSIGN_OR_RETURN(int64_t mn_raw, min_cur.Get(b));
    SMADB_ASSIGN_OR_RETURN(int64_t mx_raw, max_cur.Get(b));
    std::optional<int64_t> mn, mx;
    if (!min_sma_->IsUndefined(mn_raw)) mn = mn_raw;
    if (!max_sma_->IsUndefined(mx_raw)) mx = mx_raw;
    (*grades)[b] = GradeMinMaxConst(op, mn, mx, c);
  }
  if (l1_pages_read != nullptr) {
    *l1_pages_read =
        static_cast<uint64_t>(l1_min->num_pages()) + l1_max->num_pages();
  }
  return Status::OK();
}

}  // namespace smadb::sma
