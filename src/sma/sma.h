// Sma: one SMA definition materialized over one table — a set of SMA-files,
// one per group ("For every possible group, there will be a single SMA-file
// containing the aggregated values for this group", §2.3).

#ifndef SMADB_SMA_SMA_H_
#define SMADB_SMA_SMA_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sma/sma_def.h"
#include "sma/sma_file.h"
#include "storage/table.h"
#include "util/value.h"

namespace smadb::sma {

/// Sentinel entry values marking "aggregate not defined" for min/max
/// (group absent from a bucket, §3.1 "the else case is also applied if the
/// max/min aggregates are not defined"). The extreme representable values
/// are reserved for this purpose.
inline constexpr int64_t kUndefinedMin64 = std::numeric_limits<int64_t>::max();
inline constexpr int64_t kUndefinedMax64 = std::numeric_limits<int64_t>::min();
inline constexpr int64_t kUndefinedMin32 = std::numeric_limits<int32_t>::max();
inline constexpr int64_t kUndefinedMax32 = std::numeric_limits<int32_t>::min();

/// A materialized SMA. Create empty via Create(), fill via SmaBuilder or
/// SmaMaintainer; both keep the invariant that every group file has exactly
/// `num_buckets()` entries, positionally aligned with the table's buckets.
class Sma {
 public:
  static util::Result<std::unique_ptr<Sma>> Create(storage::BufferPool* pool,
                                                   const storage::Table* table,
                                                   SmaSpec spec);

  /// Re-attaches a SMA to its existing group files (recovery path). Group
  /// file names are deterministic ("sma.<table>.<name>[.g<i>]"), so the
  /// manifest only has to record the keys in ordinal order. Trust state is
  /// restored as recorded; the caller decides whether a replayed table epoch
  /// invalidates it.
  static util::Result<std::unique_ptr<Sma>> Restore(
      storage::BufferPool* pool, const storage::Table* table, SmaSpec spec,
      const std::vector<std::vector<util::Value>>& group_keys,
      uint64_t num_buckets, uint64_t built_epoch, bool trusted,
      std::string distrust_reason);

  const SmaSpec& spec() const { return spec_; }
  const storage::Table* table() const { return table_; }
  storage::BufferPool* pool() const { return pool_; }

  /// Buckets covered so far (entries per group file).
  uint64_t num_buckets() const {
    return num_buckets_.load(std::memory_order_acquire);
  }

  /// Groups visible to readers. Published AFTER the group's file is fully
  /// constructed, so indexing any g < num_groups() is always safe even while
  /// a maintainer concurrently creates groups (the deque keeps references
  /// stable).
  size_t num_groups() const {
    return num_groups_.load(std::memory_order_acquire);
  }
  const std::vector<util::Value>& group_key(size_t g) const {
    return groups_[g].key;
  }
  const SmaFile* group_file(size_t g) const { return groups_[g].file.get(); }
  SmaFile* group_file(size_t g) { return groups_[g].file.get(); }

  /// Group ordinal for `key`, or -1 when no such group exists yet.
  int64_t FindGroup(const std::vector<util::Value>& key) const;

  /// Group ordinal for `key`, creating the group (and backfilling
  /// `num_buckets()` identity entries) when absent.
  util::Result<size_t> GetOrCreateGroup(const std::vector<util::Value>& key);

  /// Appends identity entries to every group file until `n` buckets are
  /// covered.
  util::Status EnsureBuckets(uint64_t n);

  /// Appends one new bucket's entries: `acc` maps group ordinal → folded
  /// entry; groups absent from the bucket receive the identity. Increments
  /// num_buckets(). (Bulk-load path.)
  util::Status AppendBucket(const std::map<size_t, int64_t>& acc);

  /// Folds every live tuple of `bucket` into `*acc` (group ordinal → entry),
  /// creating unseen groups. Shared by bulk load, bucket recompute, and
  /// Rebuild().
  util::Status AccumulateBucket(uint64_t bucket,
                                std::map<size_t, int64_t>* acc);

  // --- trust ---------------------------------------------------------------
  // A SMA is *usable* iff it is trusted and its built-epoch matches the
  // table's modification epoch. The planner demotes to a plain scan
  // otherwise; SmaMaintainer::Rebuild() repairs unusable SMAs.

  /// Table modification epoch this SMA was built/maintained at.
  uint64_t built_epoch() const {
    return built_epoch_.load(std::memory_order_acquire);
  }

  /// False once corruption or a failed Verify() condemned this SMA.
  bool trusted() const { return trusted_.load(std::memory_order_acquire); }
  std::string distrust_reason() const {
    std::lock_guard<std::mutex> lock(trust_mu_);
    return distrust_reason_;
  }

  /// Records that the SMA reflects the table at `epoch` and clears any
  /// distrust.
  void MarkTrusted(uint64_t epoch);

  /// Condemns the SMA (const: the planner discovers corruption through
  /// const pointers; trust is bookkeeping, not SMA content).
  void MarkDistrusted(std::string reason) const;

  /// True when the table changed behind this SMA's back. Strictly-less:
  /// the maintainer pre-stamps the built epoch to the post-mutation value
  /// *before* folding the mutation in (both under the bucket latch), so a
  /// concurrent planner never observes a transiently "stale" SMA mid-fold.
  bool stale() const { return built_epoch() < table_->epoch(); }

  /// Self-check: recomputes up to `max_sample_buckets` evenly spaced bucket
  /// aggregates from the base data and compares them with the stored
  /// entries. A mismatch (or a checksum failure reading a SMA page) marks
  /// the SMA distrusted and returns kCorruption; base-table read errors
  /// propagate unchanged.
  util::Status Verify(uint64_t max_sample_buckets = 16) const;

  /// Discards every group file and re-materializes the SMA from the base
  /// data, then marks it trusted at the table's current epoch. The repair
  /// path for corrupt or stale SMAs.
  util::Status Rebuild();

  /// Initial entry value before any tuple contributed: 0 for sum/count,
  /// the undefined sentinel for min/max.
  int64_t IdentityEntry() const;

  /// True if `entry` is the min/max undefined sentinel (always false for
  /// sum/count).
  bool IsUndefined(int64_t entry) const;

  /// Folds one tuple's argument value `v` into an entry.
  int64_t Merge(int64_t entry, int64_t v) const;

  /// Argument value of a tuple (cents/days/ints); 0 for count(*).
  int64_t ArgOf(const storage::TupleRef& t) const {
    return spec_.arg != nullptr ? spec_.arg->EvalInt(t) : 0;
  }

  /// Group key of a tuple (empty for ungrouped SMAs).
  std::vector<util::Value> GroupKeyOf(const storage::TupleRef& t) const;

  /// Pages / bytes over all group files.
  uint64_t TotalPages() const;
  uint64_t SizeBytes() const;

  /// Bucket-level min/max of the argument across *all* groups, skipping
  /// undefined entries; nullopt when every group is undefined. Only valid
  /// for min/max SMAs. Random access; grading uses cursors instead.
  util::Result<std::optional<int64_t>> BucketExtreme(uint64_t bucket) const;

 private:
  struct Group {
    std::vector<util::Value> key;
    std::unique_ptr<SmaFile> file;
  };

  Sma(storage::BufferPool* pool, const storage::Table* table, SmaSpec spec)
      : pool_(pool), table_(table), spec_(std::move(spec)) {}

  static std::string SerializeKey(const std::vector<util::Value>& key);

  storage::BufferPool* pool_;
  const storage::Table* table_;
  SmaSpec spec_;
  // Deque: group creation must not invalidate references readers hold.
  std::deque<Group> groups_;
  // Readers' view of groups_.size(); see num_groups().
  std::atomic<size_t> num_groups_{0};
  // Writer-side only (mutations are serialized by the database writer lock).
  std::unordered_map<std::string, size_t> group_index_;
  std::atomic<uint64_t> num_buckets_{0};
  std::atomic<uint64_t> built_epoch_{0};
  // Trust is mutable: corruption is discovered on read-only paths (planner,
  // Verify) that hold const pointers.
  mutable std::atomic<bool> trusted_{true};
  mutable std::mutex trust_mu_;  ///< guards distrust_reason_
  mutable std::string distrust_reason_;
};

}  // namespace smadb::sma

#endif  // SMADB_SMA_SMA_H_
