// Bulk-loading SMAs (paper §2.1: "bulkloading a SMA-file requires only
// simple algorithms and is very efficient ... only one page access is needed
// for 1000 pages of tuples").

#ifndef SMADB_SMA_BUILDER_H_
#define SMADB_SMA_BUILDER_H_

#include <memory>

#include "sma/sma.h"
#include "storage/table.h"

namespace smadb::sma {

/// Builds a SMA over the current contents of `table` with one sequential
/// scan. Each bucket's summary is computed independently, so creation cost
/// is linear in the bucket count (§2.4).
util::Result<std::unique_ptr<Sma>> BuildSma(storage::Table* table,
                                            SmaSpec spec);

/// Recomputes every group's entry of `bucket` from the base data (used after
/// in-place updates/deletes, where incremental min/max maintenance is
/// impossible). Touches exactly the bucket's pages plus one SMA page per
/// group file.
util::Status RecomputeBucket(storage::Table* table, Sma* sma, uint64_t bucket);

}  // namespace smadb::sma

#endif  // SMADB_SMA_BUILDER_H_
