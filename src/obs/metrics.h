// Process-wide metrics registry (DESIGN.md §11): named counters, gauges,
// and fixed-bucket latency histograms, cheap enough for the query hot path.
//
// Design points:
//   * Counter — sharded across cache-line-padded atomics (thread id picks
//     the shard), so concurrent morsel workers never contend on one line.
//   * Gauge — a single atomic, Set/Add semantics; callback gauges sample a
//     `std::function<int64_t()>` at snapshot time, which is how the
//     pre-existing stat structs (PoolStats, IoStats, MemoryTracker) fold
//     into the registry without a second bookkeeping path.
//   * Histogram — power-of-two buckets (bucket i holds values in
//     [2^(i-1), 2^i)), quantiles by linear interpolation inside the hit
//     bucket. Observe() is two relaxed fetch_adds; good for latencies in
//     microseconds where 2x resolution is plenty.
//   * Registration is idempotent by name and instruments are never
//     deallocated while the registry lives, so callers cache the returned
//     pointer once and update it lock-free forever after.
//
// Snapshot() walks everything under the registration mutex and returns a
// consistent-enough view (each instrument is read atomically; cross-metric
// skew is bounded by the walk). RenderPrometheus() emits the text
// exposition format for Database::ExportMetrics().

#ifndef SMADB_OBS_METRICS_H_
#define SMADB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace smadb::obs {

/// Escapes a Prometheus label value per the exposition format: backslash,
/// double quote, and newline get backslash-escaped. ("a\"b" → "a\\\"b".)
std::string EscapeLabelValue(std::string_view v);

/// Escapes HELP text: backslash and newline (quotes are legal in HELP).
std::string EscapeHelpText(std::string_view v);

/// Monotonic counter, sharded to keep concurrent writers off one cache line.
class Counter {
 public:
  void Add(int64_t delta) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  int64_t value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  static constexpr size_t kShards = 8;

  static size_t ShardIndex() {
    // Hash of the thread id, computed once per thread.
    static thread_local const size_t shard =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
    return shard;
  }

  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed power-of-two-bucket histogram; values are expected non-negative
/// (negative observations land in bucket 0).
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;  // covers up to ~2^39 ≈ 9 minutes ns→μs scale

  void Observe(int64_t v) {
    counts_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
  }

  int64_t count() const {
    int64_t n = 0;
    for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
    return n;
  }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// q in [0,1]; linear interpolation inside the bucket holding the rank.
  /// Returns 0 when empty.
  double Quantile(double q) const;

 private:
  static size_t BucketIndex(int64_t v) {
    if (v <= 0) return 0;
    size_t i = 0;
    while (i + 1 < kBuckets && (int64_t{1} << i) <= v) ++i;
    return i;
  }

  std::atomic<int64_t> counts_[kBuckets] = {};
  std::atomic<int64_t> sum_{0};
};

/// One metric's state at snapshot time.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;    // family name (no label block)
  std::string labels;  // rendered, escaped `key="value",...`; empty = none
  std::string help;
  Kind kind = Kind::kCounter;
  int64_t value = 0;          // counter / gauge (incl. callback gauges)
  int64_t count = 0;          // histogram observations
  int64_t sum = 0;            // histogram sum
  double p50 = 0, p95 = 0, p99 = 0;
};

/// Name-keyed instrument registry. Get* registration is idempotent: the
/// first caller creates the instrument, later callers (any thread) get the
/// same pointer. Pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, std::string help = "");
  Gauge* GetGauge(const std::string& name, std::string help = "");
  Histogram* GetHistogram(const std::string& name, std::string help = "");

  /// A gauge sample inside the family `name`, distinguished by `labels`
  /// (raw key/value pairs — values are escaped here, never by the caller).
  /// Registration is idempotent on (name, labels). All samples of a family
  /// share one HELP/TYPE block in the rendered output, per the exposition
  /// format. This is how per-file instruments (`smadb_scrub_corrupt_pages
  /// {file="..."}`) stay well-formed for arbitrary paths.
  Gauge* GetLabeledGauge(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels,
      std::string help = "");

  /// Registers (or replaces) a gauge whose value is sampled at snapshot
  /// time — the bridge from existing stat structs (PoolStats, IoStats,
  /// MemoryTracker) into the registry.
  void RegisterCallback(const std::string& name, std::string help,
                        std::function<int64_t()> fn);

  /// Every instrument, sorted by name. Callback gauges are sampled here.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Prometheus text exposition format (counters/gauges plus histogram
  /// count/sum/quantile series).
  std::string RenderPrometheus() const;

  /// Process-wide default registry (benchmarks and ad-hoc callers; each
  /// Database defaults to a private registry so tests stay isolated).
  static MetricsRegistry* Default();

 private:
  struct Entry {
    MetricSnapshot::Kind kind;
    std::string family;  // sample name without the label block
    std::string labels;  // rendered, escaped; empty for unlabeled
    std::string help;
    // Exactly one of these is live, per kind. deque-stored so pointers are
    // stable across registrations.
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    std::function<int64_t()> callback;  // callback gauges only
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // map: deterministic render order
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace smadb::obs

#endif  // SMADB_OBS_METRICS_H_
