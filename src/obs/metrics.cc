#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace smadb::obs {

std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeHelpText(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  int64_t counts[kBuckets];
  int64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Rank of the q-th observation (1-based), then walk to its bucket.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(total) + 0.5));
  int64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      // Interpolate between the bucket's bounds [lo, hi) by the rank's
      // position among this bucket's observations.
      const double lo = i == 0 ? 0.0 : static_cast<double>(int64_t{1} << (i - 1));
      const double hi = static_cast<double>(int64_t{1} << i);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return static_cast<double>(int64_t{1} << (kBuckets - 1));
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.counter;
  counters_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kCounter;
  e.family = name;
  e.help = std::move(help);
  e.counter = &counters_.back();
  entries_.emplace(name, std::move(e));
  return &counters_.back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.gauge;
  gauges_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kGauge;
  e.family = name;
  e.help = std::move(help);
  e.gauge = &gauges_.back();
  entries_.emplace(name, std::move(e));
  return &gauges_.back();
}

Gauge* MetricsRegistry::GetLabeledGauge(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels,
    std::string help) {
  std::string rendered;
  for (const auto& [k, v] : labels) {
    if (!rendered.empty()) rendered += ',';
    rendered += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  const std::string key =
      rendered.empty() ? name : name + "{" + rendered + "}";
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.gauge;
  gauges_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kGauge;
  e.family = name;
  e.labels = std::move(rendered);
  e.help = std::move(help);
  e.gauge = &gauges_.back();
  entries_.emplace(key, std::move(e));
  return &gauges_.back();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.histogram;
  histograms_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kHistogram;
  e.family = name;
  e.help = std::move(help);
  e.histogram = &histograms_.back();
  entries_.emplace(name, std::move(e));
  return &histograms_.back();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::string help,
                                       std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];  // replaces an existing callback under the name
  e.kind = MetricSnapshot::Kind::kGauge;
  e.family = name;
  e.help = std::move(help);
  e.callback = std::move(fn);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot s;
    s.name = e.family.empty() ? name : e.family;
    s.labels = e.labels;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = e.counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = e.callback ? e.callback() : e.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        s.p50 = e.histogram->Quantile(0.50);
        s.p95 = e.histogram->Quantile(0.95);
        s.p99 = e.histogram->Quantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  // Group samples by family: the exposition format requires exactly one
  // HELP/TYPE block per family with all its samples adjacent, and map
  // iteration order alone cannot guarantee that ("name_total" sorts
  // between "name" and "name{...}").
  std::map<std::string, std::vector<MetricSnapshot>> families;
  for (MetricSnapshot& s : Snapshot()) {
    families[s.name].push_back(std::move(s));
  }

  std::string out;
  char buf[256];
  for (const auto& [family, samples] : families) {
    std::string help;
    for (const MetricSnapshot& s : samples) {
      if (!s.help.empty()) {
        help = s.help;
        break;
      }
    }
    if (!help.empty()) {
      out += "# HELP " + family + " " + EscapeHelpText(help) + "\n";
    }
    const MetricSnapshot::Kind kind = samples.front().kind;
    // A `_total` name promises counter semantics to Prometheus no matter
    // which instrument backs it — several monotonic totals (WAL appends,
    // checkpoints, log lines) are surfaced through callback *gauges*, and
    // exposing them as `TYPE gauge` trips exposition linters.
    const bool total_name =
        family.size() > 6 &&
        family.compare(family.size() - 6, 6, "_total") == 0;
    switch (kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + family + " counter\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + family + (total_name ? " counter\n" : " gauge\n");
        break;
      case MetricSnapshot::Kind::kHistogram:
        out += "# TYPE " + family + " summary\n";
        break;
    }
    for (const MetricSnapshot& s : samples) {
      const std::string label_block =
          s.labels.empty() ? "" : "{" + s.labels + "}";
      switch (s.kind) {
        case MetricSnapshot::Kind::kCounter:
        case MetricSnapshot::Kind::kGauge:
          std::snprintf(buf, sizeof(buf), " %lld\n",
                        static_cast<long long>(s.value));
          out += family + label_block + buf;
          break;
        case MetricSnapshot::Kind::kHistogram: {
          // Quantile label joins any pre-existing labels on the sample.
          const std::string joiner = s.labels.empty() ? "" : s.labels + ",";
          const std::pair<const char*, double> quantiles[] = {
              {"0.5", s.p50}, {"0.95", s.p95}, {"0.99", s.p99}};
          for (const auto& [q, v] : quantiles) {
            std::snprintf(buf, sizeof(buf), "{%squantile=\"%s\"} %.1f\n",
                          joiner.c_str(), q, v);
            out += family + buf;
          }
          std::snprintf(buf, sizeof(buf), " %lld\n",
                        static_cast<long long>(s.sum));
          out += family + "_sum" + label_block + buf;
          std::snprintf(buf, sizeof(buf), " %lld\n",
                        static_cast<long long>(s.count));
          out += family + "_count" + label_block + buf;
          break;
        }
      }
    }
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace smadb::obs
