#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace smadb::obs {

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  int64_t counts[kBuckets];
  int64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Rank of the q-th observation (1-based), then walk to its bucket.
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(q * static_cast<double>(total) + 0.5));
  int64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      // Interpolate between the bucket's bounds [lo, hi) by the rank's
      // position among this bucket's observations.
      const double lo = i == 0 ? 0.0 : static_cast<double>(int64_t{1} << (i - 1));
      const double hi = static_cast<double>(int64_t{1} << i);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return static_cast<double>(int64_t{1} << (kBuckets - 1));
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.counter;
  counters_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kCounter;
  e.help = std::move(help);
  e.counter = &counters_.back();
  entries_.emplace(name, std::move(e));
  return &counters_.back();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.gauge;
  gauges_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kGauge;
  e.help = std::move(help);
  e.gauge = &gauges_.back();
  entries_.emplace(name, std::move(e));
  return &gauges_.back();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) return it->second.histogram;
  histograms_.emplace_back();
  Entry e;
  e.kind = MetricSnapshot::Kind::kHistogram;
  e.help = std::move(help);
  e.histogram = &histograms_.back();
  entries_.emplace(name, std::move(e));
  return &histograms_.back();
}

void MetricsRegistry::RegisterCallback(const std::string& name,
                                       std::string help,
                                       std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];  // replaces an existing callback under the name
  e.kind = MetricSnapshot::Kind::kGauge;
  e.help = std::move(help);
  e.callback = std::move(fn);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSnapshot s;
    s.name = name;
    s.help = e.help;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricSnapshot::Kind::kCounter:
        s.value = e.counter->value();
        break;
      case MetricSnapshot::Kind::kGauge:
        s.value = e.callback ? e.callback() : e.gauge->value();
        break;
      case MetricSnapshot::Kind::kHistogram:
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        s.p50 = e.histogram->Quantile(0.50);
        s.p95 = e.histogram->Quantile(0.95);
        s.p99 = e.histogram->Quantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  char buf[256];
  for (const MetricSnapshot& s : Snapshot()) {
    if (!s.help.empty()) {
      out += "# HELP " + s.name + " " + s.help + "\n";
    }
    switch (s.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + s.name + " counter\n";
        std::snprintf(buf, sizeof(buf), "%s %lld\n", s.name.c_str(),
                      static_cast<long long>(s.value));
        out += buf;
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + s.name + " gauge\n";
        std::snprintf(buf, sizeof(buf), "%s %lld\n", s.name.c_str(),
                      static_cast<long long>(s.value));
        out += buf;
        break;
      case MetricSnapshot::Kind::kHistogram:
        out += "# TYPE " + s.name + " summary\n";
        std::snprintf(buf, sizeof(buf), "%s{quantile=\"0.5\"} %.1f\n",
                      s.name.c_str(), s.p50);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s{quantile=\"0.95\"} %.1f\n",
                      s.name.c_str(), s.p95);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s{quantile=\"0.99\"} %.1f\n",
                      s.name.c_str(), s.p99);
        out += buf;
        std::snprintf(buf, sizeof(buf), "%s_sum %lld\n%s_count %lld\n",
                      s.name.c_str(), static_cast<long long>(s.sum),
                      s.name.c_str(), static_cast<long long>(s.count));
        out += buf;
        break;
    }
  }
  return out;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

}  // namespace smadb::obs
