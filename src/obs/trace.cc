#include "obs/trace.h"

#include "util/string_util.h"

namespace smadb::obs {

void TraceSink::Record(uint64_t query_id, std::string name,
                       std::chrono::steady_clock::time_point start,
                       std::string note, uint64_t trace_id) {
  const auto now = std::chrono::steady_clock::now();
  TraceEvent e;
  e.query_id = query_id;
  e.trace_id = trace_id;
  e.name = std::move(name);
  e.start_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start - epoch_)
          .count());
  e.duration_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - start)
          .count());
  e.note = std::move(note);

  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    next_ = ring_.size() % capacity_;
  } else {
    ring_[next_] = std::move(e);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: from next_ when full, from 0 while filling.
  const size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string TraceSink::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : Events()) {
    if (!first) out += ",";
    first = false;
    out += util::Format(
        "\n  {\"query\": %llu, \"trace\": \"%llx\", \"span\": \"%s\", "
        "\"start_us\": %llu, \"duration_us\": %llu",
        static_cast<unsigned long long>(e.query_id),
        static_cast<unsigned long long>(e.trace_id),
        JsonEscape(e.name).c_str(),
        static_cast<unsigned long long>(e.start_us),
        static_cast<unsigned long long>(e.duration_us));
    if (!e.note.empty()) {
      out += ", \"note\": \"" + JsonEscape(e.note) + "\"";
    }
    out += "}";
  }
  out += first ? "]" : "\n]";
  return out;
}

}  // namespace smadb::obs
