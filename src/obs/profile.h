// Per-query execution profile (DESIGN.md §11): a tree of OperatorProfile
// nodes mirroring the operator tree, filled in during the run and rendered
// as the `explain analyze` report.
//
// Lifecycle: Database creates a QueryProfile for `explain analyze`
// statements and hangs it off the QueryContext. Operators register a node
// at BindContext time via ProfileScope (serial — binding walks the tree
// top-down, so a simple current-parent pointer gives correct nesting) and
// feed it during execution via relaxed atomics (parallel morsel workers
// write concurrently). A null profile costs one pointer test per feed site;
// profiling is strictly opt-in.
//
// Wall-time semantics are *inclusive*: a pipeline breaker's Init consumes
// its children, so the parent's wall time contains the children's. This
// matches the pull model — exclusive times would need per-edge clocks for
// no diagnostic gain.
//
// The degradation ladder builds a fresh operator tree per rung; each
// attempt registers fresh nodes (failed attempts stay in the report, marked
// failed), so per-worker SmaScanStats merge into exactly one node exactly
// once per attempt.

#ifndef SMADB_OBS_PROFILE_H_
#define SMADB_OBS_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smadb::obs {

class QueryProfile;

/// One operator's runtime tallies. Feed methods are thread-safe (relaxed
/// atomics); structure (children) is built serially at bind time.
class OperatorProfile {
 public:
  explicit OperatorProfile(std::string name) : name_(std::move(name)) {}
  OperatorProfile(const OperatorProfile&) = delete;
  OperatorProfile& operator=(const OperatorProfile&) = delete;

  void AddRows(uint64_t n) { rows_.fetch_add(n, std::memory_order_relaxed); }
  void AddBatches(uint64_t n) {
    batches_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddWallNs(uint64_t ns) {
    wall_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddPagesRead(uint64_t n) {
    pages_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBuckets(uint64_t qualifying, uint64_t disqualifying,
                  uint64_t ambivalent) {
    qualifying_.fetch_add(qualifying, std::memory_order_relaxed);
    disqualifying_.fetch_add(disqualifying, std::memory_order_relaxed);
    ambivalent_.fetch_add(ambivalent, std::memory_order_relaxed);
  }
  void AddBucketsSkipped(uint64_t n) {
    buckets_skipped_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Records a memory high-water mark (max, not sum).
  void NotePeakBytes(uint64_t bytes) {
    uint64_t cur = peak_bytes_.load(std::memory_order_relaxed);
    while (bytes > cur && !peak_bytes_.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed)) {
    }
  }
  /// Free-form per-operator annotation ("groups=4 dop=8").
  void SetDetail(std::string detail);
  /// Marks this attempt's node failed (degradation ladder reruns register
  /// a fresh node; the failed one keeps its partial census).
  void MarkFailed(std::string why);

  const std::string& name() const { return name_; }
  uint64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t wall_ns() const { return wall_ns_.load(std::memory_order_relaxed); }
  uint64_t pages_read() const {
    return pages_read_.load(std::memory_order_relaxed);
  }
  uint64_t qualifying() const {
    return qualifying_.load(std::memory_order_relaxed);
  }
  uint64_t disqualifying() const {
    return disqualifying_.load(std::memory_order_relaxed);
  }
  uint64_t ambivalent() const {
    return ambivalent_.load(std::memory_order_relaxed);
  }
  uint64_t buckets_skipped() const {
    return buckets_skipped_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  bool failed() const { return failed_.load(std::memory_order_relaxed); }
  std::string detail() const;
  const std::vector<OperatorProfile*>& children() const { return children_; }

 private:
  friend class QueryProfile;

  const std::string name_;
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> wall_ns_{0};
  std::atomic<uint64_t> pages_read_{0};
  std::atomic<uint64_t> qualifying_{0};
  std::atomic<uint64_t> disqualifying_{0};
  std::atomic<uint64_t> ambivalent_{0};
  std::atomic<uint64_t> buckets_skipped_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<bool> failed_{false};
  mutable std::mutex mu_;  // guards detail_
  std::string detail_;
  std::vector<OperatorProfile*> children_;  // bind-time only
};

/// The whole query's profile: operator tree + lifecycle phase timings +
/// notable events (degradation, cancellation) + query-level storage deltas.
class QueryProfile {
 public:
  explicit QueryProfile(uint64_t query_id = 0, uint64_t trace_id = 0)
      : query_id_(query_id), trace_id_(trace_id) {}
  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  /// Creates a node under the current parent (bind-time; see ProfileScope).
  OperatorProfile* NewNode(std::string name);

  /// Adds elapsed time to a named lifecycle phase (admission/parse/plan/
  /// execute); repeated phases (ladder reruns) accumulate.
  void AddPhaseNs(std::string_view phase, uint64_t ns);
  /// Records a notable event ("demoted to row mode: ...").
  void AddEvent(std::string note);
  /// One-line plan summary shown at the top of the report.
  void SetSummary(std::string summary);
  /// Buffer-pool / disk activity attributed to this query (deltas captured
  /// by Database around the run, so they are consistent with PoolStats).
  void SetStorageDelta(uint64_t pool_hits, uint64_t pool_misses,
                       uint64_t pages_read);

  uint64_t query_id() const { return query_id_; }
  uint64_t trace_id() const { return trace_id_; }
  const std::vector<OperatorProfile*>& roots() const { return roots_; }
  /// Rows produced so far by the root operators — safe to call from another
  /// thread mid-run (locks the structure mutex, reads relaxed atomics).
  /// This is the "rows so far" column of `show queries`.
  uint64_t RootRows() const;
  uint64_t pool_hits() const { return pool_hits_; }
  uint64_t pool_misses() const { return pool_misses_; }
  uint64_t pages_read() const { return pages_read_; }
  /// Accumulated ns for `phase`; 0 when the phase never ran.
  uint64_t PhaseNs(std::string_view phase) const;
  std::vector<std::string> events() const;

  /// The `explain analyze` report, one line per vector entry.
  std::vector<std::string> Render() const;

  // --- null-safe helpers (profile == nullptr means unprofiled) -------------
  static void Event(QueryProfile* p, std::string note) {
    if (p != nullptr) p->AddEvent(std::move(note));
  }
  static void Phase(QueryProfile* p, std::string_view phase, uint64_t ns) {
    if (p != nullptr) p->AddPhaseNs(phase, ns);
  }

 private:
  friend class ProfileScope;

  const uint64_t query_id_;
  const uint64_t trace_id_;
  mutable std::mutex mu_;  // guards nodes_/roots_/phases_/events_/summary_
  std::deque<OperatorProfile> nodes_;  // stable addresses
  std::vector<OperatorProfile*> roots_;
  OperatorProfile* current_parent_ = nullptr;
  std::vector<std::pair<std::string, uint64_t>> phases_;
  std::vector<std::string> events_;
  std::string summary_;
  uint64_t pool_hits_ = 0;
  uint64_t pool_misses_ = 0;
  uint64_t pages_read_ = 0;
};

/// Bind-time RAII: registers a node for one operator and makes it the
/// parent of nodes registered while the scope lives, so children bound
/// inside the scope nest beneath it. Null profile → no-op, *out = nullptr.
class ProfileScope {
 public:
  ProfileScope(QueryProfile* profile, const char* name, OperatorProfile** out);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  QueryProfile* profile_;
  OperatorProfile* saved_parent_ = nullptr;
};

/// Adds the scope's elapsed wall time to a node (null-safe, ~two clock
/// reads when profiled, one branch when not).
class OpTimer {
 public:
  explicit OpTimer(OperatorProfile* node) : node_(node) {
    if (node_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~OpTimer() {
    if (node_ != nullptr) {
      node_->AddWallNs(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start_)
              .count()));
    }
  }
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  OperatorProfile* node_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smadb::obs

#endif  // SMADB_OBS_PROFILE_H_
