// Live query introspection (DESIGN.md §16): a registry of in-flight
// queries, the backing store for `show queries`, `/debug/queries`, and
// `kill query <id>`.
//
// Each query registers on entry to Database::QueryWithKnobs (RAII Guard,
// declared after the profile so it unregisters first) and carries:
//   * identity — query id, request trace id, session id, the SQL text;
//   * liveness — the lifecycle phase ("admission"/"parse"/"execute"),
//     elapsed wall time, rows produced so far (summed from the profile's
//     root operators when the query is profiled; 0 otherwise);
//   * control — a shared_ptr to the query's CancelToken, which is what
//     makes `kill query` safe: the token outlives the registry entry even
//     if the query finishes while the killer holds the snapshot.
//
// The registry is a single small mutex-guarded map. Queries touch it twice
// (register/unregister) plus once per phase change — a handful of
// acquisitions per query, invisible next to parse + execute.

#ifndef SMADB_OBS_QUERY_REGISTRY_H_
#define SMADB_OBS_QUERY_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/query_context.h"

namespace smadb::obs {

class QueryProfile;

/// One in-flight query's externally visible state at snapshot time.
struct QueryInfo {
  uint64_t query_id = 0;
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  std::string sql;
  std::string phase;
  uint64_t elapsed_us = 0;
  uint64_t rows = 0;             // rows so far (profiled queries only)
  bool cancel_requested = false; // killed / deadline-tripped already
};

class QueryRegistry {
 public:
  QueryRegistry() = default;
  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Registers a query. `cancel` must be the query's live token (shared so
  /// Kill can trip it after the query drains). `profile` may be null and
  /// must outlive the registration (the Guard's declaration order in
  /// QueryWithKnobs guarantees it).
  void Register(uint64_t query_id, uint64_t trace_id, uint64_t session_id,
                std::string sql, std::shared_ptr<util::CancelToken> cancel,
                const QueryProfile* profile);
  void SetPhase(uint64_t query_id, std::string phase);
  void Unregister(uint64_t query_id);

  /// Trips the query's CancelToken. False when no such query is in flight.
  bool Kill(uint64_t query_id);

  /// All in-flight queries, ordered by query id.
  std::vector<QueryInfo> Snapshot() const;

  /// JSON array, schema pinned by observability_test and DESIGN.md §16:
  ///   [{"query": <u64>, "trace": "<hex>", "session": <u64>,
  ///     "sql": "<text>", "phase": "<name>", "elapsed_us": <u64>,
  ///     "rows": <u64>, "cancel_requested": <bool>}, ...]
  std::string DumpJson() const;

  size_t size() const;

  /// RAII registration for QueryWithKnobs.
  class Guard {
   public:
    /// Null registry → no-op guard (metrics disabled).
    Guard(QueryRegistry* registry, uint64_t query_id, uint64_t trace_id,
          uint64_t session_id, std::string sql,
          std::shared_ptr<util::CancelToken> cancel,
          const QueryProfile* profile)
        : registry_(registry), query_id_(query_id) {
      if (registry_ != nullptr) {
        registry_->Register(query_id, trace_id, session_id, std::move(sql),
                            std::move(cancel), profile);
      }
    }
    ~Guard() {
      if (registry_ != nullptr) registry_->Unregister(query_id_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    void SetPhase(std::string phase) {
      if (registry_ != nullptr) {
        registry_->SetPhase(query_id_, std::move(phase));
      }
    }

   private:
    QueryRegistry* registry_;
    uint64_t query_id_;
  };

 private:
  struct Entry {
    uint64_t trace_id = 0;
    uint64_t session_id = 0;
    std::string sql;
    std::string phase;
    std::chrono::steady_clock::time_point start;
    std::shared_ptr<util::CancelToken> cancel;
    const QueryProfile* profile = nullptr;
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
};

}  // namespace smadb::obs

#endif  // SMADB_OBS_QUERY_REGISTRY_H_
