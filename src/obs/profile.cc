#include "obs/profile.h"

#include "util/string_util.h"

namespace smadb::obs {

void OperatorProfile::SetDetail(std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  detail_ = std::move(detail);
}

void OperatorProfile::MarkFailed(std::string why) {
  failed_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (!detail_.empty()) detail_ += " ";
  detail_ += "error=" + why;
}

std::string OperatorProfile::detail() const {
  std::lock_guard<std::mutex> lock(mu_);
  return detail_;
}

OperatorProfile* QueryProfile::NewNode(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_.emplace_back(std::move(name));
  OperatorProfile* node = &nodes_.back();
  if (current_parent_ != nullptr) {
    current_parent_->children_.push_back(node);
  } else {
    roots_.push_back(node);
  }
  return node;
}

void QueryProfile::AddPhaseNs(std::string_view phase, uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, total] : phases_) {
    if (name == phase) {
      total += ns;
      return;
    }
  }
  phases_.emplace_back(std::string(phase), ns);
}

void QueryProfile::AddEvent(std::string note) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(note));
}

void QueryProfile::SetSummary(std::string summary) {
  std::lock_guard<std::mutex> lock(mu_);
  summary_ = std::move(summary);
}

void QueryProfile::SetStorageDelta(uint64_t pool_hits, uint64_t pool_misses,
                                   uint64_t pages_read) {
  std::lock_guard<std::mutex> lock(mu_);
  pool_hits_ = pool_hits;
  pool_misses_ = pool_misses;
  pages_read_ = pages_read;
}

uint64_t QueryProfile::PhaseNs(std::string_view phase) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, total] : phases_) {
    if (name == phase) return total;
  }
  return 0;
}

std::vector<std::string> QueryProfile::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

uint64_t QueryProfile::RootRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t rows = 0;
  for (const OperatorProfile* root : roots_) rows += root->rows();
  return rows;
}

namespace {

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void RenderNode(const OperatorProfile* node, size_t depth,
                std::vector<std::string>* out) {
  std::string line(2 * depth + 2, ' ');
  line += node->name();
  line += util::Format("  wall=%.3fms rows=%llu", Ms(node->wall_ns()),
                       static_cast<unsigned long long>(node->rows()));
  if (node->batches() > 0) {
    line += util::Format(" batches=%llu",
                         static_cast<unsigned long long>(node->batches()));
  }
  if (node->qualifying() + node->disqualifying() + node->ambivalent() > 0) {
    line += util::Format(
        " buckets[q=%llu d=%llu a=%llu]",
        static_cast<unsigned long long>(node->qualifying()),
        static_cast<unsigned long long>(node->disqualifying()),
        static_cast<unsigned long long>(node->ambivalent()));
  }
  if (node->buckets_skipped() > 0) {
    line += util::Format(
        " skipped=%llu",
        static_cast<unsigned long long>(node->buckets_skipped()));
  }
  if (node->pages_read() > 0) {
    line += util::Format(
        " pages=%llu", static_cast<unsigned long long>(node->pages_read()));
  }
  if (node->peak_bytes() > 0) {
    line += " peak=" + util::HumanBytes(node->peak_bytes());
  }
  if (node->failed()) line += " FAILED";
  const std::string detail = node->detail();
  if (!detail.empty()) line += " [" + detail + "]";
  out->push_back(std::move(line));
  for (const OperatorProfile* child : node->children()) {
    RenderNode(child, depth + 1, out);
  }
}

}  // namespace

std::vector<std::string> QueryProfile::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  std::string head =
      util::Format("query %llu", static_cast<unsigned long long>(query_id_));
  if (trace_id_ != 0) {
    head += util::Format(" trace=%llx",
                         static_cast<unsigned long long>(trace_id_));
  }
  out.push_back(std::move(head));
  if (!summary_.empty()) out.push_back("plan: " + summary_);
  if (!phases_.empty()) {
    std::string line = "phases:";
    uint64_t total = 0;
    for (const auto& [name, ns] : phases_) {
      line += util::Format(" %s=%.3fms", name.c_str(), Ms(ns));
      total += ns;
    }
    line += util::Format(" total=%.3fms", Ms(total));
    out.push_back(std::move(line));
  }
  out.push_back(util::Format(
      "buffer pool: hits=%llu misses=%llu; disk pages read=%llu",
      static_cast<unsigned long long>(pool_hits_),
      static_cast<unsigned long long>(pool_misses_),
      static_cast<unsigned long long>(pages_read_)));
  out.push_back("operators:");
  for (const OperatorProfile* root : roots_) {
    RenderNode(root, 0, &out);
  }
  if (!events_.empty()) {
    out.push_back("events:");
    for (const std::string& e : events_) out.push_back("  - " + e);
  }
  return out;
}

ProfileScope::ProfileScope(QueryProfile* profile, const char* name,
                           OperatorProfile** out)
    : profile_(profile) {
  if (profile_ == nullptr) {
    *out = nullptr;
    return;
  }
  OperatorProfile* node = profile_->NewNode(name);
  *out = node;
  std::lock_guard<std::mutex> lock(profile_->mu_);
  saved_parent_ = profile_->current_parent_;
  profile_->current_parent_ = node;
}

ProfileScope::~ProfileScope() {
  if (profile_ == nullptr) return;
  std::lock_guard<std::mutex> lock(profile_->mu_);
  profile_->current_parent_ = saved_parent_;
}

}  // namespace smadb::obs
