// Structured, leveled, rate-limited logging (DESIGN.md §16): the log plane
// of the telemetry triad (metrics / traces / logs).
//
// Design points:
//   * Structured only — every entry is an event name plus key=value fields.
//     Rendered either logfmt-style (`ts=... level=warn event=slow_query
//     query=12 ms=850`) or as one JSON object per line, switchable at
//     construction. No printf-style free text: a log a human greps at
//     3 a.m. must also be machine-parseable the next morning.
//   * Leveled — kDebug < kInfo < kWarn < kError; entries below `min_level`
//     are dropped before formatting (one branch, no allocation).
//   * Rate-limited — a per-second token budget applies to kInfo and below
//     so a misbehaving client cannot turn the log into the bottleneck.
//     kWarn/kError always pass (they are rare by contract). Dropped lines
//     are counted, never silently lost: `dropped()` is exported as a gauge.
//   * Dual sink — lines go to a FILE* (stderr by default, null to mute) and
//     into a bounded in-memory ring that tests and `/debug` surfaces can
//     read back without scraping the process's stderr.
//
// The logger is process-agnostic: Database owns one (options via
// DatabaseOptions) and net::Server logs through the database's instance so
// a request's wire-level line and its query-level lines land in one stream.

#ifndef SMADB_OBS_LOG_H_
#define SMADB_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace smadb::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// One key=value field. Values are strings at the API boundary; the
/// convenience constructors format integers so call sites stay terse.
struct LogField {
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, int64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, uint64_t v)
      : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, int v) : key(std::move(k)), value(std::to_string(v)) {}
  LogField(std::string k, double v);

  std::string key;
  std::string value;
};

class Logger {
 public:
  struct Options {
    LogLevel min_level = LogLevel::kInfo;
    bool json = false;          // logfmt (key=value) by default
    size_t ring_capacity = 256; // in-memory tail kept for tests / /debug
    int max_per_sec = 200;      // rate limit for kInfo and below; 0 = off
    std::FILE* sink = stderr;   // null mutes the stream sink (ring still fills)
  };

  Logger() : Logger(Options{}) {}
  explicit Logger(Options opts)
      : opts_(opts), min_level_(static_cast<int>(opts.min_level)) {}
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Emits one entry. Thread-safe. Below-min-level entries cost one branch;
  /// rate-limited drops cost one mutex acquisition and bump dropped().
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields) {
    Log(level, event, std::vector<LogField>(fields));
  }
  void Log(LogLevel level, std::string_view event, std::vector<LogField> fields);

  void Debug(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kDebug, event, fields);
  }
  void Info(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kInfo, event, fields);
  }
  void Warn(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kWarn, event, fields);
  }
  void Error(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kError, event, fields);
  }

  /// Last `n` rendered lines, oldest first.
  std::vector<std::string> Tail(size_t n) const;

  /// Entries dropped by the rate limiter since construction.
  uint64_t dropped() const;

  /// Entries emitted (stream + ring) since construction.
  uint64_t emitted() const;

  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

 private:
  Options opts_;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  mutable std::mutex mu_;
  std::deque<std::string> ring_;
  uint64_t dropped_ = 0;
  uint64_t emitted_ = 0;
  // Rate-limit window: tokens remaining in the second that began at
  // window_start_ (steady-clock seconds).
  int64_t window_start_s_ = -1;
  int tokens_ = 0;
};

}  // namespace smadb::obs

#endif  // SMADB_OBS_LOG_H_
