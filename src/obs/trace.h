// Query-lifecycle trace spans (DESIGN.md §11): a bounded ring of
// {query_id, name, start, duration, note} records covering admission wait,
// parse, plan, execute, degradation events, and cancel/deadline trips.
//
// The sink is deliberately minimal: one mutex, a fixed-capacity ring that
// overwrites the oldest span, and a JSON dump for offline inspection
// (`show trace` / Database::DumpTrace()). Spans are recorded at query
// granularity (a handful per query), so the mutex is never on a hot path.

#ifndef SMADB_OBS_TRACE_H_
#define SMADB_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace smadb::obs {

struct TraceEvent {
  uint64_t query_id = 0;
  uint64_t trace_id = 0;     // request-scoped id (hex on the wire); 0 = none
  std::string name;          // "admission", "parse", "plan", "execute", ...
  uint64_t start_us = 0;     // steady-clock µs since the sink was created
  uint64_t duration_us = 0;
  std::string note;          // optional ("degraded: ...", "cancelled at ...")
};

/// Fixed-capacity overwrite-oldest span sink.
class TraceSink {
 public:
  explicit TraceSink(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity),
        epoch_(std::chrono::steady_clock::now()) {}
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Records a span that started at `start` and just ended. `trace_id`
  /// links the span to the request that minted it (0 = no request scope).
  void Record(uint64_t query_id, std::string name,
              std::chrono::steady_clock::time_point start,
              std::string note = "", uint64_t trace_id = 0);

  /// Oldest-first copy of the ring.
  std::vector<TraceEvent> Events() const;

  /// JSON array of span objects, oldest first. The schema is pinned by a
  /// golden test (observability_test) and documented in DESIGN.md §16 —
  /// `/debug/trace` and `show trace` both serve exactly this output:
  ///   [{"query": <u64>, "trace": "<hex>", "span": "<name>",
  ///     "start_us": <u64>, "duration_us": <u64>[, "note": "<text>"]}, ...]
  std::string DumpJson() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;               // ring_ slot the next span lands in
};

/// RAII span: records into the sink at destruction (null sink → no-op).
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, uint64_t query_id, std::string name,
            uint64_t trace_id = 0)
      : sink_(sink),
        query_id_(query_id),
        trace_id_(trace_id),
        name_(std::move(name)) {
    if (sink_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan() {
    if (sink_ != nullptr) {
      sink_->Record(query_id_, std::move(name_), start_, std::move(note_),
                    trace_id_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void set_note(std::string note) { note_ = std::move(note); }

 private:
  TraceSink* sink_;
  uint64_t query_id_;
  uint64_t trace_id_;
  std::string name_;
  std::string note_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smadb::obs

#endif  // SMADB_OBS_TRACE_H_
