#include "obs/query_registry.h"

#include "obs/profile.h"
#include "util/string_util.h"

namespace smadb::obs {

void QueryRegistry::Register(uint64_t query_id, uint64_t trace_id,
                             uint64_t session_id, std::string sql,
                             std::shared_ptr<util::CancelToken> cancel,
                             const QueryProfile* profile) {
  Entry e;
  e.trace_id = trace_id;
  e.session_id = session_id;
  e.sql = std::move(sql);
  e.phase = "admission";
  e.start = std::chrono::steady_clock::now();
  e.cancel = std::move(cancel);
  e.profile = profile;
  std::lock_guard<std::mutex> lock(mu_);
  entries_[query_id] = std::move(e);
}

void QueryRegistry::SetPhase(uint64_t query_id, std::string phase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query_id);
  if (it != entries_.end()) it->second.phase = std::move(phase);
}

void QueryRegistry::Unregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(query_id);
}

bool QueryRegistry::Kill(uint64_t query_id) {
  std::shared_ptr<util::CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(query_id);
    if (it == entries_.end()) return false;
    token = it->second.cancel;
  }
  // Trip outside the registry mutex: Cancel() is cheap, but keeping the
  // lock footprint minimal means a stuck killer can never delay
  // register/unregister on the query path.
  if (token != nullptr) token->Cancel();
  return true;
}

std::vector<QueryInfo> QueryRegistry::Snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    QueryInfo info;
    info.query_id = id;
    info.trace_id = e.trace_id;
    info.session_id = e.session_id;
    info.sql = e.sql;
    info.phase = e.phase;
    info.elapsed_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - e.start)
            .count());
    if (e.profile != nullptr) info.rows = e.profile->RootRows();
    if (e.cancel != nullptr) info.cancel_requested = e.cancel->ShouldStop();
    out.push_back(std::move(info));
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string QueryRegistry::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (const QueryInfo& q : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += util::Format(
        "\n  {\"query\": %llu, \"trace\": \"%llx\", \"session\": %llu, "
        "\"sql\": \"%s\", \"phase\": \"%s\", \"elapsed_us\": %llu, "
        "\"rows\": %llu, \"cancel_requested\": %s}",
        static_cast<unsigned long long>(q.query_id),
        static_cast<unsigned long long>(q.trace_id),
        static_cast<unsigned long long>(q.session_id),
        JsonEscape(q.sql).c_str(), JsonEscape(q.phase).c_str(),
        static_cast<unsigned long long>(q.elapsed_us),
        static_cast<unsigned long long>(q.rows),
        q.cancel_requested ? "true" : "false");
  }
  out += first ? "]" : "\n]";
  return out;
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace smadb::obs
