#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <ctime>

namespace smadb::obs {

namespace {

/// True when a logfmt value can be emitted bare (no quoting needed).
bool IsBareValue(const std::string& v) {
  if (v.empty()) return false;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '\\' || c == '=' || c == '\n') return false;
  }
  return true;
}

void AppendEscaped(std::string* out, const std::string& v) {
  for (char c : v) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
}

/// "2026-08-08T12:34:56.789Z" — wall clock, UTC, millisecond resolution.
std::string WallTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  ::gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  value = buf;
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::vector<LogField> fields) {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }

  // Render outside the mutex; the line is self-contained.
  std::string line;
  line.reserve(96);
  if (opts_.json) {
    line += "{\"ts\": \"";
    line += WallTimestamp();
    line += "\", \"level\": \"";
    line += LogLevelName(level);
    line += "\", \"event\": \"";
    AppendEscaped(&line, std::string(event));
    line += "\"";
    for (const LogField& f : fields) {
      line += ", \"";
      AppendEscaped(&line, f.key);
      line += "\": \"";
      AppendEscaped(&line, f.value);
      line += "\"";
    }
    line += "}";
  } else {
    line += "ts=";
    line += WallTimestamp();
    line += " level=";
    line += LogLevelName(level);
    line += " event=";
    line += event;
    for (const LogField& f : fields) {
      line += ' ';
      line += f.key;
      line += '=';
      if (IsBareValue(f.value)) {
        line += f.value;
      } else {
        line += '"';
        AppendEscaped(&line, f.value);
        line += '"';
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Rate limit kInfo and below; warnings and errors are rare by contract
    // and always pass (a saturated limiter must not eat the one line that
    // explains the outage).
    if (opts_.max_per_sec > 0 && level < LogLevel::kWarn) {
      const int64_t now_s =
          std::chrono::duration_cast<std::chrono::seconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      if (now_s != window_start_s_) {
        window_start_s_ = now_s;
        tokens_ = opts_.max_per_sec;
      }
      if (tokens_ <= 0) {
        ++dropped_;
        return;
      }
      --tokens_;
    }
    ++emitted_;
    ring_.push_back(line);
    while (ring_.size() > opts_.ring_capacity) ring_.pop_front();
    if (opts_.sink != nullptr) {
      std::fprintf(opts_.sink, "%s\n", line.c_str());
      std::fflush(opts_.sink);
    }
  }
}

std::vector<std::string> Logger::Tail(size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  const size_t start = ring_.size() > n ? ring_.size() - n : 0;
  out.reserve(ring_.size() - start);
  for (size_t i = start; i < ring_.size(); ++i) out.push_back(ring_[i]);
  return out;
}

uint64_t Logger::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t Logger::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

}  // namespace smadb::obs
