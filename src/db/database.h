// Database: the top-level facade a downstream user works with — one object
// owning the simulated disk, buffer pool, catalog, the SMA sets of every
// table, and a planner per query. Accepts the paper's textual SMA
// definitions and a SQL-ish query dialect:
//
//   Database db;
//   db.CreateTable("shipments", schema);
//   ... load ...
//   db.Execute("define sma min select min(shipdate) from shipments");
//   db.Execute("define sma max select max(shipdate) from shipments");
//   auto result = db.Query(
//       "select count(*) from shipments where shipdate <= '1997-04-30'");
//
// Queries are planned against the table's SMAs with the Fig. 5 break-even
// cost model; result.plan reports which plan ran.

#ifndef SMADB_DB_DATABASE_H_
#define SMADB_DB_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "planner/planner.h"
#include "sma/maintenance.h"
#include "sma/sma_set.h"
#include "storage/catalog.h"

namespace smadb::db {

struct DatabaseOptions {
  /// Buffer pool capacity in 4 KiB frames (default 8 MB — the paper's).
  size_t pool_pages = 2048;
  /// Verify page checksums on every buffer-pool miss (see BufferPoolOptions;
  /// off only for overhead experiments, EXPERIMENTS.md X7).
  bool verify_checksums = true;
  plan::PlannerOptions planner;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- schema & data -------------------------------------------------------
  util::Result<storage::Table*> CreateTable(
      std::string name, storage::Schema schema,
      storage::TableOptions options = {});

  util::Result<storage::Table*> GetTable(std::string_view name) const {
    return catalog_->GetTable(name);
  }

  /// Appends a tuple, keeping the table's SMAs maintained.
  util::Status Insert(std::string_view table,
                      const storage::TupleBuffer& tuple,
                      storage::Rid* rid = nullptr);

  /// Updates / deletes through the maintainer.
  util::Status Update(std::string_view table, storage::Rid rid, size_t col,
                      const util::Value& v);
  util::Status Delete(std::string_view table, storage::Rid rid);

  // --- SMAs ----------------------------------------------------------------
  /// The SMA set of a table (created lazily, initially empty).
  util::Result<sma::SmaSet*> Smas(std::string_view table);

  /// The maintainer of a table, for the fault-repair hooks: VerifyAll()
  /// self-checks the SMAs, Rebuild() re-materializes distrusted/stale ones.
  util::Result<sma::SmaMaintainer*> Maintainer(std::string_view table);

  // --- statements ----------------------------------------------------------
  /// Executes a DDL-ish statement. Currently: `define sma ...` (§2.1) and
  /// the session settings `set dop = <n>` (0 = auto/hardware, 1 = serial)
  /// and `set batch_size = <n>` (0 = tuple-at-a-time).
  util::Status Execute(std::string_view statement);

  /// Session degree of parallelism for subsequent queries; equivalent to
  /// `set dop = <n>`. 0 = auto (hardware concurrency), 1 = serial.
  void set_degree_of_parallelism(size_t dop) {
    options_.planner.degree_of_parallelism = dop;
  }
  size_t degree_of_parallelism() const {
    return options_.planner.degree_of_parallelism;
  }

  /// Session batch size for aggregation plans; equivalent to
  /// `set batch_size = <n>`. 0 = tuple-at-a-time (row mode).
  void set_batch_size(size_t batch_size) {
    options_.planner.batch_size = batch_size;
  }
  size_t batch_size() const { return options_.planner.batch_size; }

  /// Runs a query:
  ///   select <aggregates and group columns> from <table>
  ///     [where <predicate>] [group by <columns>]
  /// or a pure selection:
  ///   select * from <table> [where <predicate>]
  /// Aggregates: sum/avg/min/max(expr), count(*); `as alias` supported.
  util::Result<plan::QueryResult> Query(std::string_view sql);

  // --- plumbing ------------------------------------------------------------
  storage::SimulatedDisk* disk() { return &disk_; }
  storage::BufferPool* pool() { return pool_.get(); }
  storage::Catalog* catalog() { return catalog_.get(); }
  const DatabaseOptions& options() const { return options_; }

 private:
  struct TableState {
    std::unique_ptr<sma::SmaSet> smas;
    std::unique_ptr<sma::SmaMaintainer> maintainer;
  };

  util::Result<TableState*> StateFor(std::string_view table);

  DatabaseOptions options_;
  storage::SimulatedDisk disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unordered_map<std::string, TableState> states_;
};

}  // namespace smadb::db

#endif  // SMADB_DB_DATABASE_H_
