// Database: the top-level facade a downstream user works with — one object
// owning the storage backend (simulated or durable files + WAL), buffer
// pool, catalog, the SMA sets of every table, and a planner per query.
// Accepts the paper's textual SMA definitions and a SQL-ish query dialect:
//
//   Database db;
//   db.CreateTable("shipments", schema);
//   ... load ...
//   db.Execute("define sma min select min(shipdate) from shipments");
//   db.Execute("define sma max select max(shipdate) from shipments");
//   auto result = db.Query(
//       "select count(*) from shipments where shipdate <= '1997-04-30'");
//
// Queries are planned against the table's SMAs with the Fig. 5 break-even
// cost model; result.plan reports which plan ran.

#ifndef SMADB_DB_DATABASE_H_
#define SMADB_DB_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/admission.h"
#include "db/manifest.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_registry.h"
#include "obs/trace.h"
#include "planner/planner.h"
#include "sma/maintenance.h"
#include "sma/sma_set.h"
#include "storage/catalog.h"
#include "storage/disk.h"
#include "storage/wal.h"
#include "util/query_context.h"

namespace smadb::db {

class Session;

/// Per-session execution/governor knobs — the subset of `set` statements
/// that scope to one session instead of the whole database. A Session gets
/// a copy of the database defaults at creation; its `set` statements mutate
/// only the copy.
struct SessionKnobs {
  size_t dop = 0;               ///< 0 = auto (hardware concurrency)
  size_t batch_size = 0;        ///< 0 = row mode (filled from planner default)
  int64_t timeout_ms = 0;       ///< 0 = no deadline
  size_t query_memory_limit = 0;  ///< 0 = bounded only by the global budget
  bool allow_degraded = true;
};

struct DatabaseOptions {
  /// Buffer pool capacity in 4 KiB frames (default 8 MB — the paper's).
  size_t pool_pages = 2048;
  /// Verify page checksums on every buffer-pool miss (see BufferPoolOptions;
  /// off only for overhead experiments, EXPERIMENTS.md X7).
  bool verify_checksums = true;
  plan::PlannerOptions planner;

  // --- durable storage (DESIGN.md §12) -------------------------------------
  /// Where pages live: kSimulated (in-memory, the paper's measurement rig)
  /// or kFile (real files + WAL + checkpoints). The plain constructor always
  /// builds the simulated backend; the file backend needs the fallible
  /// Database::Open() path, which also runs crash recovery.
  storage::BackendKind storage_backend = storage::BackendKind::kSimulated;
  /// Directory of the file backend (segments, wal.smadb, manifest.smadb).
  /// Required when storage_backend == kFile; ignored otherwise.
  std::string storage_path;
  /// WAL group-commit knob: Sync (fdatasync) the log every N logged
  /// mutations. 1 = per-commit durability (default), N > 1 = group commit
  /// (a crash can lose up to N-1 trailing un-synced mutations), 0 = manual
  /// (SyncWal / Checkpoint / page write-back only).
  size_t wal_sync_interval = 1;

  // --- resource governance (DESIGN.md §10) ---------------------------------
  /// Global memory budget in bytes shared by all queries (and buffer-pool
  /// pins, which are charged against it when set). 0 = unlimited, and the
  /// hot paths skip the tracker entirely.
  size_t global_memory_limit = 0;
  /// Per-query memory budget in bytes (child of the global tracker).
  /// 0 = bounded only by the global budget.
  size_t query_memory_limit = 0;
  /// Deadline applied to every query, in milliseconds. 0 = none.
  int64_t timeout_ms = 0;
  /// Queries allowed to run at once; 0 disables admission control.
  size_t max_concurrent_queries = 0;
  /// Admission FIFO depth and wait budget (see AdmissionController).
  size_t admission_max_queued = 16;
  int64_t admission_max_wait_ms = 1000;

  // --- observability (DESIGN.md §11) ---------------------------------------
  /// Feed the metrics registry and trace ring on every query (counters,
  /// latency histogram, lifecycle spans). Off = the query path touches no
  /// registry state at all.
  bool enable_metrics = true;
  /// Registry to feed. Null = a private per-Database registry, so embedded
  /// uses and tests stay isolated; pass obs::MetricsRegistry::Default() to
  /// share one process-wide. A caller-supplied registry holds callback
  /// gauges that read this Database — it must not be snapshotted after the
  /// Database is destroyed.
  obs::MetricsRegistry* metrics_registry = nullptr;
  /// Query-lifecycle trace ring capacity, in spans (overwrite-oldest).
  size_t trace_capacity = 256;

  // --- telemetry plane (DESIGN.md §16) -------------------------------------
  /// Structured-log configuration (level, logfmt/JSON, rate limit, sink).
  /// Set log.sink = nullptr to mute the stream (the in-memory ring still
  /// fills — tests read it back via logger()->Tail()).
  obs::Logger::Options log;
  /// Queries slower than this (milliseconds, end to end) are logged at WARN
  /// with their full profile attached. 0 = off. Also settable at runtime
  /// via `set slow_query_ms = <n>`.
  int64_t slow_query_ms = 0;
};

class Database {
 public:
  /// Constructs an in-memory database over the simulated backend (the
  /// storage_backend option is ignored here — backend selection is fallible,
  /// so the file backend goes through Open()).
  explicit Database(DatabaseOptions options = {});

  /// Opens a database honoring options.storage_backend. For kFile this
  /// attaches the storage directory (creating it when new), replays the WAL
  /// against the last checkpoint manifest, and flags SMAs whose built-epoch
  /// the replay left behind — the crash-recovery entry point (DESIGN.md §12).
  static util::Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- durability lifecycle ------------------------------------------------
  /// Flushes dirty pages, syncs the backend, writes the checkpoint manifest,
  /// and truncates the WAL (file backend; on the simulated backend just a
  /// flush + sync). After a clean Checkpoint, recovery replays nothing.
  util::Status Checkpoint();

  /// Checkpoint + mark closed (idempotent). The destructor calls this as a
  /// best-effort for the file backend, so a scoped Database is cleanly
  /// durable; call explicitly to observe failures.
  util::Status Close();

  /// Makes everything logged so far durable (fdatasync). No-op without a
  /// WAL. Group-commit tails call this; the buffer pool's WAL-before-data
  /// barrier calls it before any dirty page write-back.
  util::Status SyncWal();

  /// Simulates kill-9: staged-but-unsynced WAL bytes and every dirty page
  /// still in the pool are dropped, exactly the state a power loss leaves on
  /// disk. The instance is dead afterwards (Close/destructor write nothing);
  /// reopen the directory with Open() to exercise recovery.
  util::Status CrashForTesting();

  // --- degraded mode -------------------------------------------------------
  /// True once a durable-write failure (EIO/ENOSPC on a WAL fsync, segment
  /// write-back, or checkpoint step) flipped the database into sticky
  /// read-only mode: reads keep serving, mutations return kUnavailable, and
  /// the failed fsync is never retried as if it had succeeded (the
  /// "fsyncgate" rule — the kernel may have dropped the dirty pages the
  /// failure covered). The only way out is reopening the directory, which
  /// recovers exactly the acknowledged prefix.
  bool read_only() const { return read_only_.load(std::memory_order_acquire); }
  /// Why the database is read-only (empty while writable).
  std::string read_only_reason() const {
    std::lock_guard<std::mutex> lock(read_only_mu_);
    return read_only_reason_;
  }

  // --- scrubbing -----------------------------------------------------------
  /// What one Database::Scrub() pass found (also rendered by the `scrub`
  /// statement and mirrored into the metrics registry).
  struct ScrubReport {
    uint64_t files_scanned = 0;
    uint64_t pages_scanned = 0;
    uint64_t corrupt_pages = 0;
    uint64_t smas_verified = 0;
    uint64_t smas_distrusted = 0;  ///< distrusted/stale after verification
    uint64_t smas_repaired = 0;    ///< rebuilt by the repair pass
    /// Repairs need writes; in read-only mode findings are reported only.
    bool repairs_skipped_read_only = false;
    /// (file name, corrupt page count) for every file with findings.
    std::vector<std::pair<std::string, uint64_t>> corrupt_files;
    /// Non-fatal anomalies hit along the way (unreadable pages, failed
    /// verifies/rebuilds) — the scrub itself keeps going.
    std::vector<std::string> notes;
  };

  /// Online scrubber: re-reads every page of every backend file and checks
  /// its CRC-32C against the out-of-band sidecar, distrusts SMAs whose files
  /// hold corrupt pages, runs SmaMaintainer::VerifyAll, and (unless
  /// read-only) repairs distrusted/stale SMAs via Rebuild. Reads the at-rest
  /// bytes straight from the backend, so dirty pool pages cause no false
  /// positives (the sidecar always covers the stored bytes).
  util::Result<ScrubReport> Scrub();

  // --- schema & data -------------------------------------------------------
  util::Result<storage::Table*> CreateTable(
      std::string name, storage::Schema schema,
      storage::TableOptions options = {});

  util::Result<storage::Table*> GetTable(std::string_view name) const {
    return catalog_->GetTable(name);
  }

  /// Appends a tuple, keeping the table's SMAs maintained.
  util::Status Insert(std::string_view table,
                      const storage::TupleBuffer& tuple,
                      storage::Rid* rid = nullptr);

  /// Updates / deletes through the maintainer.
  util::Status Update(std::string_view table, storage::Rid rid, size_t col,
                      const util::Value& v);
  util::Status Delete(std::string_view table, storage::Rid rid);

  // --- SMAs ----------------------------------------------------------------
  /// The SMA set of a table (created lazily, initially empty).
  util::Result<sma::SmaSet*> Smas(std::string_view table);

  /// The maintainer of a table, for the fault-repair hooks: VerifyAll()
  /// self-checks the SMAs, Rebuild() re-materializes distrusted/stale ones.
  util::Result<sma::SmaMaintainer*> Maintainer(std::string_view table);

  // --- statements ----------------------------------------------------------
  /// Executes a DDL-ish statement. Currently: `define sma ...` (§2.1), the
  /// session settings `set <knob> = <n>` for the knobs dop, batch_size,
  /// timeout_ms, memory_limit, max_concurrent_queries, allow_degraded, and
  /// wal_sync_interval, plus the storage selectors `set storage = sim|file`
  /// (only while no tables exist) and `set storage_path = '<dir>'`.
  util::Status Execute(std::string_view statement);

  /// Default degree of parallelism for subsequent queries; equivalent to
  /// `set dop = <n>` at database scope. 0 = auto (hardware concurrency),
  /// 1 = serial. Sessions copy this default at creation.
  void set_degree_of_parallelism(size_t dop) {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    options_.planner.degree_of_parallelism = dop;
  }
  size_t degree_of_parallelism() const {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.planner.degree_of_parallelism;
  }

  /// Default batch size for aggregation plans; equivalent to
  /// `set batch_size = <n>`. 0 = tuple-at-a-time (row mode).
  void set_batch_size(size_t batch_size) {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    options_.planner.batch_size = batch_size;
  }
  size_t batch_size() const {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.planner.batch_size;
  }

  /// Default query deadline; equivalent to `set timeout_ms = <n>`. 0 = none.
  void set_timeout_ms(int64_t ms) {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    options_.timeout_ms = ms;
  }
  int64_t timeout_ms() const {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.timeout_ms;
  }

  /// Default per-query memory budget; equivalent to
  /// `set memory_limit = <bytes>`. 0 = bounded only by the global budget.
  void set_query_memory_limit(size_t bytes) {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    options_.query_memory_limit = bytes;
  }
  size_t query_memory_limit() const {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.query_memory_limit;
  }

  /// Concurrency cap; equivalent to `set max_concurrent_queries = <n>`.
  /// 0 = admission control off.
  void set_max_concurrent_queries(size_t n);
  size_t max_concurrent_queries() const { return admission_.max_concurrent(); }

  /// The global memory tracker (budget from global_memory_limit; unlimited
  /// when that is 0). Per-query trackers are children of this one.
  util::MemoryTracker* global_memory() { return &global_memory_; }
  AdmissionController* admission() { return &admission_; }

  /// Runs a query:
  ///   select <aggregates and group columns> from <table>
  ///     [where <predicate>] [group by <columns>]
  /// or a pure selection:
  ///   select * from <table> [where <predicate>]
  /// Aggregates: sum/avg/min/max(expr), count(*); `as alias` supported.
  /// `explain select ...` runs the (governed) query and returns one text
  /// column describing the plan, governor state, and any degradation —
  /// instead of the query's own rows.
  ///
  /// Every query runs under a QueryContext built from the session governor
  /// knobs: an optional caller-supplied cancel token, the session deadline,
  /// the per-query memory budget (child of the global tracker), and the
  /// admission controller. Typed failures (kCancelled, kDeadlineExceeded,
  /// kResourceExhausted) surface unless the planner's degradation ladder
  /// absorbs them (DESIGN.md §10).
  ///
  /// `explain analyze select ...` additionally profiles the run (per-
  /// operator wall time, row/batch/bucket/page tallies, phase timings,
  /// degradation events) and returns the report as one text column.
  /// `show metrics`, `show profile`, and `show trace` return the registry
  /// snapshot, the most recent `explain analyze` report, and the trace
  /// ring, each as one text column.
  util::Result<plan::QueryResult> Query(std::string_view sql);
  util::Result<plan::QueryResult> Query(
      std::string_view sql, std::shared_ptr<util::CancelToken> cancel);

  // --- sessions ------------------------------------------------------------
  /// Opens a client session: a lightweight handle with its own copy of the
  /// execution knobs (dop, batch_size, timeout_ms, memory_limit,
  /// allow_degraded) whose `set` statements scope to the session, and whose
  /// queries are admitted session-aware (a session already running a query
  /// is never starved behind — or deadlocked on — its own admission slot).
  /// Sessions are cheap; open one per client thread. The Database must
  /// outlive every Session it created.
  std::unique_ptr<Session> CreateSession();

  /// Sessions currently open (the smadb_sessions_active gauge).
  size_t sessions_active() const {
    return sessions_active_.load(std::memory_order_acquire);
  }

  // --- observability -------------------------------------------------------
  /// The metrics registry this database feeds (the private one unless
  /// DatabaseOptions.metrics_registry was supplied).
  obs::MetricsRegistry* metrics() { return registry_; }

  /// Prometheus text exposition of every registered metric.
  std::string ExportMetrics() const { return registry_->RenderPrometheus(); }

  /// The query-lifecycle trace ring and its JSON dump.
  obs::TraceSink* trace() { return &trace_; }
  std::string DumpTrace() const { return trace_.DumpJson(); }

  /// The structured logger (DESIGN.md §16). net::Server logs through this
  /// instance so wire-level request lines and query-level lines land in one
  /// stream.
  obs::Logger* logger() { return &logger_; }

  /// In-flight queries: the registry behind `show queries`, `kill query`,
  /// and `/debug/queries`. DumpQueries() is the endpoint's JSON body.
  obs::QueryRegistry* query_registry() { return &query_registry_; }
  std::string DumpQueries() const { return query_registry_.DumpJson(); }

  /// Trips the CancelToken of an in-flight query (the `kill query <id>`
  /// statement funnels here). kNotFound when no such query is running.
  /// Deliberately lock-free with respect to write_mu_: a wedged writer must
  /// still be killable.
  util::Status KillQuery(uint64_t query_id);

  /// Microseconds since this Database was constructed (statusz uptime).
  uint64_t uptime_us() const;

  /// The slow-query threshold (`set slow_query_ms = <n>`); 0 = off.
  int64_t slow_query_ms() const {
    std::lock_guard<std::mutex> lock(knobs_mu_);
    return options_.slow_query_ms;
  }

  /// The report of the most recent `explain analyze` query (empty before
  /// the first one). Also surfaced by `show profile`.
  std::vector<std::string> LastProfile() const;

  /// The structured profile behind LastProfile(), for programmatic
  /// inspection (nullptr before the first `explain analyze`). Valid until
  /// the next `explain analyze` replaces it.
  const obs::QueryProfile* last_profile() const {
    std::lock_guard<std::mutex> lock(profile_mu_);
    return last_profile_.get();
  }

  // --- plumbing ------------------------------------------------------------
  storage::DiskBackend* disk() { return disk_.get(); }
  /// The write-ahead log (null on the simulated backend).
  storage::Wal* wal() { return wal_.get(); }
  storage::BufferPool* pool() { return pool_.get(); }
  storage::Catalog* catalog() { return catalog_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// Recovery/checkpoint counters for `show storage` and the registry.
  struct DurabilityStats {
    uint64_t checkpoints = 0;
    uint64_t recovered_tables = 0;
    uint64_t replayed_records = 0;
    uint64_t stale_smas = 0;  ///< SMAs left behind by replay (need Rebuild)
    uint64_t orphan_sma_files = 0;  ///< unmanifested SMA-files swept at open
    uint64_t recovery_us = 0;
  };
  const DurabilityStats& durability() const { return durability_; }

 private:
  friend class Session;

  struct TableState {
    std::unique_ptr<sma::SmaSet> smas;
    std::unique_ptr<sma::SmaMaintainer> maintainer;
  };

  Database(DatabaseOptions options,
           std::unique_ptr<storage::DiskBackend> disk,
           std::unique_ptr<storage::Wal> wal);

  util::Result<TableState*> StateFor(std::string_view table);

  /// Snapshot of the database-default session knobs (knobs_mu_).
  SessionKnobs DefaultKnobs() const;

  /// The full governed query path: admission (session-aware via
  /// `session_id`; 0 = anonymous), context built from `knobs`, metrics,
  /// tracing. Both Query() overloads and Session::Query funnel here.
  util::Result<plan::QueryResult> QueryWithKnobs(
      std::string_view sql, std::shared_ptr<util::CancelToken> cancel,
      const SessionKnobs& knobs, uint64_t session_id);

  /// Checkpoint body; caller holds write_mu_.
  util::Status CheckpointLocked();

  /// Hooks a freshly created/attached table's latch table up to the
  /// latch-wait histogram (no-op with metrics off).
  void AttachLatchMetrics(storage::Table* table);

  // --- durability internals ------------------------------------------------
  std::string ManifestPath() const;
  /// Group-commit tail: counts one logged mutation and syncs per the
  /// wal_sync_interval policy.
  util::Status MaybeSyncWal();
  /// Snapshot of catalog + SMA registries for the checkpoint manifest.
  Manifest BuildManifest(uint64_t checkpoint_lsn) const;
  /// Rebuilds tables/SMAs from the manifest, replays the WAL, and flags
  /// SMAs the replay left stale. Called once by Open() on the file backend.
  util::Status Recover();
  util::Status ApplyWalRecord(storage::WalRecordType type,
                              std::string_view payload);
  /// Unwinds the record staged at `mark` after its in-memory apply failed:
  /// unstages it when still buffered, otherwise (it escaped to the file via
  /// an eviction barrier inside the apply) logs and syncs a kAbort record so
  /// recovery never redoes a mutation this instance reported as failed.
  /// Returns `cause` so call sites can `return RollbackWalRecord(mark, st)`.
  util::Status RollbackWalRecord(const storage::Wal::AppendMark& mark,
                                 util::Status cause);
  /// `set storage = sim|file`: tears down the (empty) storage stack and
  /// rebuilds it over the requested backend, recovering from storage_path
  /// when switching to kFile. Refused when tables exist.
  util::Status SetStorageBackend(storage::BackendKind kind);
  /// Handles `show storage`.
  util::Result<plan::QueryResult> ShowStorage() const;

  // --- degraded-mode internals ---------------------------------------------
  /// kUnavailable (with the degradation reason) while read-only; OK
  /// otherwise. Every mutating entry point checks this first.
  util::Status CheckWritable() const;
  /// Flips the database into sticky read-only mode.
  void EnterReadOnly(std::string reason);
  /// Routes a durability-barrier result: environmental failures (kIOError /
  /// kDiskFull) enter read-only mode; the status passes through unchanged.
  util::Status NoteDurableFailure(util::Status st);
  /// Same, but only for the typed kDiskFull failures that can surface from
  /// a mutation's apply path (eviction write-back hitting ENOSPC) — plain
  /// kIOError there may be a transient read fault and must not degrade.
  util::Status NoteDiskFull(util::Status st);

  /// The governed body of Query(): parse, run under `ctx` with the given
  /// per-query planner options (a stable copy — session knobs must not read
  /// the mutable defaults mid-flight); `query_id` keys the trace spans
  /// (sink may be null = tracing off).
  util::Result<plan::QueryResult> RunQuery(std::string_view sql,
                                           util::QueryContext* ctx,
                                           const plan::PlannerOptions& popts,
                                           uint64_t query_id,
                                           obs::TraceSink* sink,
                                           uint64_t trace_id,
                                           obs::QueryRegistry::Guard* live);

  /// Registers the per-query instruments and the callback gauges folding
  /// PoolStats / IoStats / MemoryTracker into the registry.
  void InitMetrics();

  /// Handles `show metrics` / `show profile` / `show trace`.
  util::Result<plan::QueryResult> RunShow(std::string_view what);

  DatabaseOptions options_;
  util::MemoryTracker global_memory_;
  AdmissionController admission_;
  std::unique_ptr<storage::DiskBackend> disk_;
  std::unique_ptr<storage::Wal> wal_;  // file backend only
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::Catalog> catalog_;
  std::unordered_map<std::string, TableState> states_;
  DurabilityStats durability_;

  // --- concurrency (DESIGN.md §14) -----------------------------------------
  /// Serializes every mutating entry point (Insert/Update/Delete/
  /// CreateTable/define sma/Checkpoint/Close/Scrub/backend swap): smadb is
  /// single-writer by design — concurrency comes from readers overlapping
  /// the writer via bucket latches, not from concurrent writers. First in
  /// the lock order: write_mu_ -> bucket latch -> pool mutex -> WAL mutex.
  mutable std::mutex write_mu_;
  /// Guards the mutable session-default knobs inside options_ (planner
  /// dop/batch_size/allow_degraded, timeout_ms, query_memory_limit,
  /// wal_sync_interval, max_concurrent_queries). Leaf lock.
  mutable std::mutex knobs_mu_;
  /// Guards the states_ map itself (find/emplace). Values are stable across
  /// rehash (unordered_map), so TableState pointers outlive the lock.
  mutable std::mutex states_mu_;
  /// Logged mutations since the last WAL sync (group-commit window). Atomic:
  /// the pool's pre-writeback barrier resets it from reader threads.
  std::atomic<size_t> ops_since_sync_{0};
  /// Set by CrashForTesting: Close/destructor must not write anything.
  bool crashed_ = false;
  bool closed_ = false;
  /// Sticky degraded mode (see read_only()). The flag is checked lock-free
  /// on every mutation and durable barrier; the reason string has its own
  /// mutex (written once, on the failing thread).
  std::atomic<bool> read_only_{false};
  mutable std::mutex read_only_mu_;
  std::string read_only_reason_;
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<size_t> sessions_active_{0};

  // --- observability state -------------------------------------------------
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* registry_;  // == own_registry_ unless supplied
  obs::TraceSink trace_;
  obs::Logger logger_;
  obs::QueryRegistry query_registry_;
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::atomic<uint64_t> next_query_id_{1};
  // Cached instrument pointers; all null when enable_metrics is false.
  struct {
    obs::Counter* queries_total = nullptr;
    obs::Counter* queries_failed = nullptr;
    obs::Counter* queries_cancelled = nullptr;
    obs::Counter* queries_deadline = nullptr;
    obs::Counter* queries_degraded = nullptr;
    obs::Counter* rows_returned = nullptr;
    obs::Counter* appends = nullptr;
    obs::Counter* buckets_qualifying = nullptr;
    obs::Counter* buckets_disqualifying = nullptr;
    obs::Counter* buckets_ambivalent = nullptr;
    obs::Histogram* query_latency_us = nullptr;
    obs::Histogram* latch_wait_ns = nullptr;
    obs::Counter* scrub_runs = nullptr;
    obs::Counter* scrub_pages_scanned = nullptr;
    obs::Counter* scrub_corrupt_pages = nullptr;
    obs::Counter* scrub_smas_repaired = nullptr;
  } m_;
  /// Per-file corruption gauges a scrub has registered, so a later clean
  /// scrub can zero them.
  std::unordered_map<std::string, obs::Gauge*> scrub_gauges_;
  mutable std::mutex profile_mu_;  // guards last_profile_
  std::unique_ptr<obs::QueryProfile> last_profile_;
};

/// Renders a finished plan as an `explain` result: one String("explain")
/// column, one row per line (plan kind, bucket census, dop, degradation
/// marker, and the full explanation incl. governor notes).
plan::QueryResult ExplainResult(const plan::PlanChoice& plan);

/// One text column named `column`, one row per line (wrapped at the column
/// width) — the carrier for explain analyze / show statements.
plan::QueryResult TextResult(const std::string& column,
                             const std::vector<std::string>& lines);

}  // namespace smadb::db

#endif  // SMADB_DB_DATABASE_H_
