#include "db/admission.h"

#include <algorithm>

#include "util/string_util.h"

namespace smadb::db {

using util::Result;
using util::Status;

void AdmissionController::Slot::Release() {
  if (c_ != nullptr) c_->ReleaseSlot(session_id_);
  c_ = nullptr;
}

void AdmissionController::ReleaseSlot(uint64_t session_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (session_id != 0) {
      auto it = session_slots_.find(session_id);
      if (it != session_slots_.end() && --it->second == 0) {
        session_slots_.erase(it);
        if (running_ > 0) --running_;
      }
    } else if (running_ > 0) {
      --running_;
    }
  }
  cv_.notify_all();  // FIFO head re-checks its turn
}

Result<AdmissionController::Slot> AdmissionController::Admit(
    uint64_t session_id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.max_concurrent == 0) return Slot();  // admission off: inert

  // Re-entrant grant: a session already occupying a running_ unit admits
  // its next query immediately — it cannot queue behind (and deadlock on)
  // its own held slot, and it cannot be starved by the FIFO it is ahead of.
  if (session_id != 0) {
    auto it = session_slots_.find(session_id);
    if (it != session_slots_.end()) {
      ++it->second;
      ++admitted_;
      return Slot(this, session_id);
    }
  }

  // Fast path: free slot and nobody queued ahead of us.
  if (running_ < options_.max_concurrent && queue_.empty()) {
    ++running_;
    ++admitted_;
    if (session_id != 0) session_slots_[session_id] = 1;
    return Slot(this, session_id);
  }

  // Load shedding: a full queue rejects immediately rather than piling up
  // unbounded waiters (fail promptly, never hang).
  if (queue_.size() >= options_.max_queued) {
    ++shed_;
    return Status::ResourceExhausted(util::Format(
        "admission rejected (load shed): %zu queries running, %zu queued "
        "(max_concurrent=%zu, max_queued=%zu)",
        running_, queue_.size(), options_.max_concurrent,
        options_.max_queued));
  }

  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  const auto deadline = std::chrono::steady_clock::now() + options_.max_wait;
  while (true) {
    // A concurrent query of the same session may have won a slot while we
    // queued — piggyback on it (re-entrant grant) instead of waiting for a
    // second one the cap may never allow.
    if (session_id != 0) {
      auto it = session_slots_.find(session_id);
      if (it != session_slots_.end()) {
        queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
        ++it->second;
        ++admitted_;
        cv_.notify_all();  // our ticket may have been blocking the head
        return Slot(this, session_id);
      }
    }
    // FIFO: only the head ticket may claim a freed slot.
    if (running_ < options_.max_concurrent && !queue_.empty() &&
        queue_.front() == ticket) {
      queue_.pop_front();
      ++running_;
      ++admitted_;
      if (session_id != 0) session_slots_[session_id] = 1;
      cv_.notify_all();  // the next head may also fit
      return Slot(this, session_id);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
      ++timed_out_;
      cv_.notify_all();  // we may have been blocking the ticket behind us
      return Status::ResourceExhausted(util::Format(
          "admission timed out after %lld ms: %zu queries running, %zu still "
          "queued (max_concurrent=%zu)",
          static_cast<long long>(options_.max_wait.count()), running_,
          queue_.size(), options_.max_concurrent));
    }
    // Jittered backoff: base quantum plus up to one quantum of deterministic
    // jitter, so synchronized waiters spread their wakeups.
    const auto quantum = options_.wait_quantum;
    const auto jitter = std::chrono::microseconds(static_cast<int64_t>(
        jitter_.NextDouble() * 1000.0 *
        static_cast<double>(std::max<int64_t>(1, quantum.count()))));
    cv_.wait_for(lock, std::min<std::chrono::steady_clock::duration>(
                           quantum + jitter, deadline - now));
  }
}

void AdmissionController::SetMaxConcurrent(size_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_.max_concurrent = n;
  }
  cv_.notify_all();
}

void AdmissionController::SetMaxQueued(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.max_queued = n;
}

void AdmissionController::SetMaxWait(std::chrono::milliseconds wait) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.max_wait = wait;
}

size_t AdmissionController::max_concurrent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.max_concurrent;
}
size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}
size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}
uint64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}
uint64_t AdmissionController::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}
uint64_t AdmissionController::timed_out_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timed_out_;
}

}  // namespace smadb::db
