// Parser for the query dialect of db::Database:
//
//   select sum(l_quantity) as sum_qty, count(*), l_returnflag
//   from lineitem
//   where l_shipdate <= date '1998-09-02'
//   group by l_returnflag, l_linestatus
//
// and the pure-selection form `select * from t [where ...]`.

#ifndef SMADB_DB_SQL_H_
#define SMADB_DB_SQL_H_

#include <optional>
#include <string>
#include <variant>

#include "planner/planner.h"
#include "storage/schema.h"

namespace smadb::db {

/// A parsed query: either an aggregation block or a pure selection. The
/// table is identified by name; predicates/expressions are bound against
/// the schema supplied by the caller.
struct ParsedQuery {
  std::string table;
  bool select_star = false;
  expr::PredicatePtr pred;              // never null (Predicate::True())
  std::vector<size_t> group_by;         // empty for global aggregates
  std::vector<exec::AggSpec> aggs;      // empty iff select_star
  /// Group-by columns that appear in the select list, in select order
  /// (checked to be ⊆ group_by).
  std::vector<size_t> selected_columns;
};

/// Parses `sql` against `schema`. The from-clause table name is returned in
/// the result; callers resolve it (Database does the two-pass dance).
util::Result<ParsedQuery> ParseQuery(const storage::Schema* schema,
                                     std::string_view sql);

/// Extracts just the from-clause table name (first pass, schema-free).
util::Result<std::string> ExtractTableName(std::string_view sql);

}  // namespace smadb::db

#endif  // SMADB_DB_SQL_H_
