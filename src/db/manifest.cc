#include "db/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/fault.h"
#include "util/string_util.h"

namespace smadb::db {

using util::Result;
using util::Status;
using util::Value;

namespace {

constexpr const char kManifestMagic[] = "smadb-manifest v1";

// EscapeToken of an empty string is empty, which would vanish between the
// spaces of a manifest line; a lone '%' (never produced by EscapeToken,
// which writes '%25' for a percent sign) marks it instead.
std::string Enc(const std::string& s) {
  return s.empty() ? std::string("%") : util::EscapeToken(s);
}

Result<std::string> Dec(const std::string& token) {
  if (token == "%") return std::string();
  return util::UnescapeToken(token);
}

Result<uint64_t> ParseU64(const std::string& token) {
  return util::ParseU64(token, "manifest");
}

Status ErrnoError(const std::string& op, const std::string& path) {
  const std::string msg = op + " '" + path + "': " + std::strerror(errno);
  if (errno == ENOSPC || errno == EDQUOT) return Status::DiskFull(msg);
  return Status::IOError(msg);
}

}  // namespace

std::string EncodeManifestValue(const Value& v) {
  switch (v.type()) {
    case util::TypeId::kString:
      return Enc(v.AsString());
    case util::TypeId::kDouble:
      return util::Format("b%llu", static_cast<unsigned long long>(
                                       std::bit_cast<uint64_t>(v.AsDouble())));
    default: {
      const long long raw = static_cast<long long>(v.RawInt());
      return util::Format("i%lld", raw);
    }
  }
}

Result<Value> DecodeManifestValue(util::TypeId type,
                                  const std::string& token) {
  if (type == util::TypeId::kString) {
    SMADB_ASSIGN_OR_RETURN(std::string s, Dec(token));
    return Value::String(std::move(s));
  }
  if (token.empty()) return Status::Corruption("empty value token");
  const std::string digits = token.substr(1);
  if (type == util::TypeId::kDouble) {
    if (token[0] != 'b') {
      return Status::Corruption("bad double token '" + token + "'");
    }
    SMADB_ASSIGN_OR_RETURN(uint64_t bits, ParseU64(digits));
    return Value::MakeDouble(std::bit_cast<double>(bits));
  }
  if (token[0] != 'i') {
    return Status::Corruption("bad value token '" + token + "'");
  }
  const bool neg = !digits.empty() && digits[0] == '-';
  SMADB_ASSIGN_OR_RETURN(uint64_t mag, ParseU64(neg ? digits.substr(1) : digits));
  const int64_t raw = neg ? -static_cast<int64_t>(mag)
                          : static_cast<int64_t>(mag);
  switch (type) {
    case util::TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(raw));
    case util::TypeId::kInt64:
      return Value::Int64(raw);
    case util::TypeId::kDecimal:
      return Value::MakeDecimal(util::Decimal::FromCents(raw));
    case util::TypeId::kDate:
      return Value::MakeDate(util::Date(static_cast<int32_t>(raw)));
    default:
      return Status::Corruption("unhandled value type in manifest");
  }
}

Status WriteManifest(const std::string& path, const Manifest& m) {
  std::ostringstream out;
  out << kManifestMagic << "\n";
  out << "checkpoint_lsn " << m.checkpoint_lsn << "\n";
  for (const ManifestTable& t : m.tables) {
    out << "table " << Enc(t.name) << " " << t.bucket_pages << " "
        << t.num_tuples << " " << t.num_deleted << " " << t.num_pages << " "
        << t.epoch << "\n";
    for (const ManifestField& f : t.fields) {
      out << "field " << Enc(f.name) << " " << f.type << " " << f.capacity
          << "\n";
    }
    for (const ManifestSma& s : t.smas) {
      out << "sma " << Enc(s.name) << " " << s.func << " " << Enc(s.arg)
          << " " << s.num_buckets << " " << s.built_epoch << " "
          << (s.trusted ? 1 : 0) << " " << Enc(s.distrust_reason) << " "
          << s.group_by.size();
      for (uint32_t c : s.group_by) out << " " << c;
      out << "\n";
      for (const std::vector<std::string>& key : s.groups) {
        out << "group";
        for (const std::string& tok : key) out << " " << tok;
        out << "\n";
      }
    }
  }
  const std::string text = out.str();

  const std::string tmp = path + ".tmp";
  // Kill-point before any byte of the new manifest exists (the old manifest
  // must win recovery).
  if (auto fk = util::fault::Hit("manifest.write", path)) {
    return util::InjectedFaultStatus(*fk, "manifest.write '" + path + "'");
  }
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open", tmp);
  Status st = Status::OK();
  size_t done = 0;
  while (done < text.size()) {
    const ssize_t r = ::write(fd, text.data() + done, text.size() - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      st = ErrnoError("write", tmp);
      break;
    }
    done += static_cast<size_t>(r);
  }
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoError("fsync", tmp);
  ::close(fd);
  SMADB_RETURN_NOT_OK(st);
  // Kill-point between the synced tmp file and the atomic publish: recovery
  // must still see the old manifest.
  if (auto fk = util::fault::Hit("manifest.rename", path)) {
    return util::InjectedFaultStatus(*fk, "manifest.rename '" + path + "'");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return ErrnoError("rename", tmp);
  }
  // Make the rename itself durable.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

Result<Manifest> ReadManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("no manifest at '" + path + "'");
  }
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::Corruption("bad manifest magic in '" + path + "'");
  }
  Manifest m;
  ManifestTable* table = nullptr;
  ManifestSma* sma = nullptr;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> tok = util::Split(line, ' ');
    const std::string& kw = tok[0];
    if (kw == "checkpoint_lsn") {
      if (tok.size() != 2) return Status::Corruption("bad line: " + line);
      SMADB_ASSIGN_OR_RETURN(m.checkpoint_lsn, ParseU64(tok[1]));
    } else if (kw == "table") {
      if (tok.size() != 7) return Status::Corruption("bad line: " + line);
      ManifestTable t;
      SMADB_ASSIGN_OR_RETURN(t.name, Dec(tok[1]));
      SMADB_ASSIGN_OR_RETURN(uint64_t bp, ParseU64(tok[2]));
      t.bucket_pages = static_cast<uint32_t>(bp);
      SMADB_ASSIGN_OR_RETURN(t.num_tuples, ParseU64(tok[3]));
      SMADB_ASSIGN_OR_RETURN(t.num_deleted, ParseU64(tok[4]));
      SMADB_ASSIGN_OR_RETURN(uint64_t np, ParseU64(tok[5]));
      t.num_pages = static_cast<uint32_t>(np);
      SMADB_ASSIGN_OR_RETURN(t.epoch, ParseU64(tok[6]));
      m.tables.push_back(std::move(t));
      table = &m.tables.back();
      sma = nullptr;
    } else if (kw == "field") {
      if (table == nullptr || tok.size() != 4) {
        return Status::Corruption("bad line: " + line);
      }
      ManifestField f;
      SMADB_ASSIGN_OR_RETURN(f.name, Dec(tok[1]));
      f.type = tok[2];
      SMADB_ASSIGN_OR_RETURN(uint64_t cap, ParseU64(tok[3]));
      f.capacity = static_cast<uint16_t>(cap);
      table->fields.push_back(std::move(f));
    } else if (kw == "sma") {
      if (table == nullptr || tok.size() < 9) {
        return Status::Corruption("bad line: " + line);
      }
      ManifestSma s;
      SMADB_ASSIGN_OR_RETURN(s.name, Dec(tok[1]));
      s.func = tok[2];
      SMADB_ASSIGN_OR_RETURN(s.arg, Dec(tok[3]));
      SMADB_ASSIGN_OR_RETURN(s.num_buckets, ParseU64(tok[4]));
      SMADB_ASSIGN_OR_RETURN(s.built_epoch, ParseU64(tok[5]));
      SMADB_ASSIGN_OR_RETURN(uint64_t trusted, ParseU64(tok[6]));
      s.trusted = trusted != 0;
      SMADB_ASSIGN_OR_RETURN(s.distrust_reason, Dec(tok[7]));
      SMADB_ASSIGN_OR_RETURN(uint64_t ncols, ParseU64(tok[8]));
      if (tok.size() != 9 + ncols) {
        return Status::Corruption("bad line: " + line);
      }
      for (size_t i = 0; i < ncols; ++i) {
        SMADB_ASSIGN_OR_RETURN(uint64_t c, ParseU64(tok[9 + i]));
        s.group_by.push_back(static_cast<uint32_t>(c));
      }
      table->smas.push_back(std::move(s));
      sma = &table->smas.back();
    } else if (kw == "group") {
      if (sma == nullptr) return Status::Corruption("bad line: " + line);
      sma->groups.emplace_back(tok.begin() + 1, tok.end());
    } else {
      return Status::Corruption("unknown manifest keyword '" + kw + "'");
    }
  }
  return m;
}

}  // namespace smadb::db
