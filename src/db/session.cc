#include "db/session.h"

#include "expr/parser.h"

namespace smadb::db {

using util::Result;
using util::Status;

Session::~Session() {
  db_->sessions_active_.fetch_sub(1, std::memory_order_acq_rel);
}

Result<plan::QueryResult> Session::Query(std::string_view sql) {
  return db_->QueryWithKnobs(sql, nullptr, knobs_, id_);
}

Result<plan::QueryResult> Session::Query(
    std::string_view sql, std::shared_ptr<util::CancelToken> cancel) {
  return db_->QueryWithKnobs(sql, std::move(cancel), knobs_, id_);
}

Status Session::Execute(std::string_view statement) {
  // Intercept exactly the session-scoped knobs; every other statement —
  // including malformed `set`s, which the Database rejects with its full
  // knob list — forwards unchanged.
  SMADB_ASSIGN_OR_RETURN(auto tokens, expr::internal::Tokenize(statement));
  const bool is_set_int =
      tokens.size() == 5 &&  // set <knob> = <value> + kEnd sentinel
      tokens[0].kind == expr::internal::TokKind::kIdent &&
      tokens[0].text == "set" &&
      tokens[1].kind == expr::internal::TokKind::kIdent &&
      tokens[2].kind == expr::internal::TokKind::kCmp &&
      tokens[2].text == "=" &&
      tokens[3].kind == expr::internal::TokKind::kInt && tokens[3].value >= 0;
  if (is_set_int) {
    const int64_t n = tokens[3].value;
    if (tokens[1].text == "dop") {
      set_degree_of_parallelism(static_cast<size_t>(n));
      return Status::OK();
    }
    if (tokens[1].text == "batch_size") {
      set_batch_size(static_cast<size_t>(n));
      return Status::OK();
    }
    if (tokens[1].text == "timeout_ms") {
      set_timeout_ms(n);
      return Status::OK();
    }
    if (tokens[1].text == "memory_limit") {
      set_query_memory_limit(static_cast<size_t>(n));
      return Status::OK();
    }
    if (tokens[1].text == "allow_degraded") {
      set_allow_degraded(n != 0);
      return Status::OK();
    }
  }
  return db_->Execute(statement);
}

Status Session::Insert(std::string_view table,
                       const storage::TupleBuffer& tuple, storage::Rid* rid) {
  return db_->Insert(table, tuple, rid);
}

Status Session::Update(std::string_view table, storage::Rid rid, size_t col,
                       const util::Value& v) {
  return db_->Update(table, rid, col, v);
}

Status Session::Delete(std::string_view table, storage::Rid rid) {
  return db_->Delete(table, rid);
}

}  // namespace smadb::db
