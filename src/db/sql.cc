#include "db/sql.h"

#include <algorithm>

#include "expr/parser.h"
#include "util/string_util.h"

namespace smadb::db {

using exec::AggKind;
using exec::AggSpec;
using expr::internal::Token;
using expr::internal::TokensToText;
using expr::internal::TokKind;
using storage::Schema;
using util::Result;
using util::Status;

namespace {

bool IsIdent(const Token& t, std::string_view kw) {
  return t.kind == TokKind::kIdent && t.text == kw;
}

Result<AggKind> ParseAggKind(std::string_view name) {
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  if (name == "count") return AggKind::kCount;
  return Status::InvalidArgument("unknown aggregate function '" +
                                 std::string(name) + "'");
}

// Index of the matching ')' for the '(' at tokens[open].
Result<size_t> MatchParen(const std::vector<Token>& tokens, size_t open) {
  size_t depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kLParen) ++depth;
    if (tokens[i].kind == TokKind::kRParen) {
      if (--depth == 0) return i;
    }
    if (tokens[i].kind == TokKind::kEnd) break;
  }
  return Status::InvalidArgument("unbalanced parentheses");
}

}  // namespace

Result<std::string> ExtractTableName(std::string_view sql) {
  SMADB_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         expr::internal::Tokenize(sql));
  size_t depth = 0;
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind == TokKind::kLParen) ++depth;
    if (tokens[i].kind == TokKind::kRParen) --depth;
    if (depth == 0 && IsIdent(tokens[i], "from")) {
      if (tokens[i + 1].kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected table name after 'from'");
      }
      return tokens[i + 1].text;
    }
  }
  return Status::InvalidArgument("query has no from clause");
}

Result<ParsedQuery> ParseQuery(const Schema* schema, std::string_view sql) {
  SMADB_ASSIGN_OR_RETURN(std::vector<Token> tokens,
                         expr::internal::Tokenize(sql));
  ParsedQuery q;
  q.pred = expr::Predicate::True();

  size_t pos = 0;
  if (!IsIdent(tokens[pos], "select")) {
    return Status::InvalidArgument("query must start with 'select'");
  }
  ++pos;

  // Locate 'from' at depth 0 to bound the select list.
  size_t from_pos = pos;
  {
    size_t depth = 0;
    while (tokens[from_pos].kind != TokKind::kEnd) {
      if (tokens[from_pos].kind == TokKind::kLParen) ++depth;
      if (tokens[from_pos].kind == TokKind::kRParen) --depth;
      if (depth == 0 && IsIdent(tokens[from_pos], "from")) break;
      ++from_pos;
    }
    if (tokens[from_pos].kind == TokKind::kEnd) {
      return Status::InvalidArgument("query has no from clause");
    }
  }

  // --- select list ---------------------------------------------------------
  if (pos < from_pos && tokens[pos].kind == TokKind::kStar &&
      pos + 1 == from_pos) {
    q.select_star = true;
    pos = from_pos;
  }
  size_t agg_ordinal = 0;
  while (pos < from_pos) {
    // One item: up to a depth-0 comma or from_pos.
    size_t item_end = pos;
    size_t depth = 0;
    while (item_end < from_pos) {
      if (tokens[item_end].kind == TokKind::kLParen) ++depth;
      if (tokens[item_end].kind == TokKind::kRParen) --depth;
      if (depth == 0 && tokens[item_end].kind == TokKind::kComma) break;
      ++item_end;
    }
    if (item_end == pos) {
      return Status::InvalidArgument("empty select item");
    }

    // Optional trailing "as alias".
    std::string alias;
    size_t expr_end = item_end;
    if (expr_end - pos >= 2 && IsIdent(tokens[expr_end - 2], "as") &&
        tokens[expr_end - 1].kind == TokKind::kIdent) {
      alias = tokens[expr_end - 1].text;
      expr_end -= 2;
    }

    const Token& first = tokens[pos];
    const bool is_agg =
        first.kind == TokKind::kIdent && expr_end > pos + 1 &&
        tokens[pos + 1].kind == TokKind::kLParen &&
        ParseAggKind(first.text).ok();
    if (is_agg) {
      SMADB_ASSIGN_OR_RETURN(AggKind kind, ParseAggKind(first.text));
      SMADB_ASSIGN_OR_RETURN(size_t close, MatchParen(tokens, pos + 1));
      if (close + 1 != expr_end) {
        return Status::InvalidArgument(
            "unexpected tokens after aggregate in select item");
      }
      AggSpec spec;
      spec.kind = kind;
      if (kind == AggKind::kCount) {
        if (close != pos + 3 || tokens[pos + 2].kind != TokKind::kStar) {
          return Status::NotSupported("count takes '*' only");
        }
        spec.arg = nullptr;
      } else {
        if (close == pos + 2) {
          return Status::InvalidArgument("aggregate needs an argument");
        }
        SMADB_ASSIGN_OR_RETURN(
            spec.arg, expr::ParseExpr(
                          schema, TokensToText(tokens, pos + 2, close)));
      }
      spec.name = !alias.empty()
                      ? alias
                      : util::Format(
                            "%s_%zu",
                            std::string(AggKindToString(kind)).c_str(),
                            ++agg_ordinal);
      q.aggs.push_back(std::move(spec));
    } else {
      // A bare column: must be a group-by column (checked below).
      if (expr_end != pos + 1 || first.kind != TokKind::kIdent) {
        return Status::NotSupported(
            "select items must be aggregates or plain group-by columns");
      }
      SMADB_ASSIGN_OR_RETURN(size_t col, schema->FieldIndex(first.text));
      q.selected_columns.push_back(col);
    }
    pos = item_end < from_pos ? item_end + 1 : from_pos;
  }

  if (!q.select_star && q.aggs.empty()) {
    return Status::NotSupported(
        "non-aggregate projections are select * only");
  }

  // --- from ----------------------------------------------------------------
  pos = from_pos + 1;
  if (tokens[pos].kind != TokKind::kIdent) {
    return Status::InvalidArgument("expected table name after 'from'");
  }
  q.table = tokens[pos].text;
  ++pos;
  if (tokens[pos].kind == TokKind::kComma) {
    return Status::NotSupported(
        "joins are not supported in the SQL facade; use the exec operators");
  }

  // --- where ---------------------------------------------------------------
  if (IsIdent(tokens[pos], "where")) {
    ++pos;
    size_t end = pos;
    size_t depth = 0;
    while (tokens[end].kind != TokKind::kEnd) {
      if (tokens[end].kind == TokKind::kLParen) ++depth;
      if (tokens[end].kind == TokKind::kRParen) --depth;
      if (depth == 0 && IsIdent(tokens[end], "group")) break;
      ++end;
    }
    if (end == pos) return Status::InvalidArgument("empty where clause");
    SMADB_ASSIGN_OR_RETURN(
        q.pred,
        expr::ParsePredicate(schema, TokensToText(tokens, pos, end)));
    pos = end;
  }

  // --- group by ------------------------------------------------------------
  if (IsIdent(tokens[pos], "group")) {
    ++pos;
    if (!IsIdent(tokens[pos], "by")) {
      return Status::InvalidArgument("expected 'by' after 'group'");
    }
    ++pos;
    while (true) {
      if (tokens[pos].kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected column in group by");
      }
      SMADB_ASSIGN_OR_RETURN(size_t col,
                             schema->FieldIndex(tokens[pos].text));
      q.group_by.push_back(col);
      ++pos;
      if (tokens[pos].kind != TokKind::kComma) break;
      ++pos;
    }
  }

  if (tokens[pos].kind != TokKind::kEnd) {
    return Status::InvalidArgument("trailing tokens after query");
  }

  if (q.select_star && !q.group_by.empty()) {
    return Status::InvalidArgument("select * cannot be grouped");
  }
  // Every selected bare column must be a group-by column.
  for (size_t col : q.selected_columns) {
    if (std::find(q.group_by.begin(), q.group_by.end(), col) ==
        q.group_by.end()) {
      return Status::InvalidArgument(
          "column '" + schema->field(col).name +
          "' appears in select but not in group by");
    }
  }
  return q;
}

}  // namespace smadb::db
