// AdmissionController: caps the number of concurrently running queries
// (DESIGN.md §10). Queries beyond the cap wait in a bounded FIFO —
// first-come first-served by ticket, polled with a jittered backoff so
// synchronized waiters don't stampede the mutex — and are shed with
// kResourceExhausted when either the queue is full on arrival (load
// shedding) or the bounded wait elapses. With max_concurrent == 0 the
// controller is disabled and admission is free.
//
// The paper's premise is predictable query latency; admission control is
// what keeps that promise under concurrency: a bounded queue plus a bounded
// wait means a query either runs promptly or fails promptly, never hangs.
//
// Admission is *session-aware*: the unit the cap counts is the session, not
// the query. A session that already holds a slot is granted re-entrant
// admission immediately (refcounted), so a session running its Nth query
// cannot deadlock against — or be starved behind — its own earlier slot in
// the FIFO. session_id 0 means "anonymous": every such call competes as its
// own session (the pre-session behavior).

#ifndef SMADB_DB_ADMISSION_H_
#define SMADB_DB_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "util/rng.h"
#include "util/status.h"

namespace smadb::db {

class AdmissionController {
 public:
  struct Options {
    /// Queries allowed to run at once; 0 disables admission control.
    size_t max_concurrent = 0;
    /// Waiters beyond this are shed immediately (bounded FIFO).
    size_t max_queued = 16;
    /// A waiter gives up with kResourceExhausted after this long.
    std::chrono::milliseconds max_wait{1000};
    /// Base poll interval while waiting; each round adds up to one quantum
    /// of deterministic jitter so waiters desynchronize.
    std::chrono::milliseconds wait_quantum{2};
    uint64_t jitter_seed = 0x5eed;
  };

  /// RAII admission slot: releasing (or destroying) it wakes the FIFO head.
  /// A default-constructed slot is inert (admission control disabled).
  class Slot {
   public:
    Slot() = default;
    Slot(AdmissionController* c, uint64_t session_id)
        : c_(c), session_id_(session_id) {}
    Slot(Slot&& o) noexcept : c_(o.c_), session_id_(o.session_id_) {
      o.c_ = nullptr;
    }
    Slot& operator=(Slot&& o) noexcept {
      if (this != &o) {
        Release();
        c_ = o.c_;
        session_id_ = o.session_id_;
        o.c_ = nullptr;
      }
      return *this;
    }
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;
    ~Slot() { Release(); }

    void Release();

   private:
    AdmissionController* c_ = nullptr;
    uint64_t session_id_ = 0;
  };

  AdmissionController() : AdmissionController(Options()) {}
  explicit AdmissionController(Options options)
      : options_(options), jitter_(options.jitter_seed) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks (bounded) until a slot frees up, FIFO order. Fails with
  /// kResourceExhausted when the queue is full on arrival (shed) or the
  /// wait budget elapses (timeout) — never hangs. A non-zero `session_id`
  /// that already holds a slot is admitted immediately (re-entrant grant,
  /// refcounted); its session frees the concurrency slot only when the last
  /// of its Slots releases.
  util::Result<Slot> Admit(uint64_t session_id = 0);

  /// Adjusts the concurrency cap; 0 turns admission control off for
  /// subsequent Admit() calls (already-held slots still release normally).
  void SetMaxConcurrent(size_t n);
  void SetMaxQueued(size_t n);
  void SetMaxWait(std::chrono::milliseconds wait);

  size_t max_concurrent() const;
  size_t running() const;
  size_t queued() const;
  uint64_t admitted_total() const;
  uint64_t shed_total() const;
  uint64_t timed_out_total() const;

 private:
  void ReleaseSlot(uint64_t session_id);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Options options_;
  size_t running_ = 0;  // sessions (or anonymous slots) currently admitted
  uint64_t next_ticket_ = 0;
  std::deque<uint64_t> queue_;  // waiting tickets, FIFO
  // Slots held per non-zero session; a session occupies exactly one
  // running_ unit while its refcount is > 0.
  std::unordered_map<uint64_t, size_t> session_slots_;
  util::Rng jitter_;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t timed_out_ = 0;
};

}  // namespace smadb::db

#endif  // SMADB_DB_ADMISSION_H_
