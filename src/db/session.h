// Session: a per-client handle over one Database (DESIGN.md §14).
//
// A Database is one shared engine; a Session is what a client thread holds.
// Each session carries its own copy of the execution knobs (dop,
// batch_size, timeout_ms, memory_limit, allow_degraded), so `set`
// statements issued through a session change only that session — two
// clients tuning dop never race each other or in-flight queries. Global
// knobs (max_concurrent_queries, wal_sync_interval, storage selectors)
// forward to the Database and stay database-scoped.
//
// Sessions are also the admission unit: Session::Query passes the session
// id to the AdmissionController, so a session already running a query is
// re-entrantly admitted instead of queueing behind its own slot.
//
// Thread model: a Session object is NOT itself thread-safe — open one per
// client thread (they are cheap). Any number of sessions may use the same
// Database concurrently; the engine underneath is bucket-latched and
// snapshot-consistent. The Database must outlive every Session.

#ifndef SMADB_DB_SESSION_H_
#define SMADB_DB_SESSION_H_

#include <memory>
#include <string_view>

#include "db/database.h"

namespace smadb::db {

class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  Database* database() { return db_; }

  /// This session's knob copy (snapshot of the database defaults at
  /// CreateSession time, then mutated only by this session's setters).
  const SessionKnobs& knobs() const { return knobs_; }
  void set_degree_of_parallelism(size_t dop) { knobs_.dop = dop; }
  void set_batch_size(size_t n) { knobs_.batch_size = n; }
  void set_timeout_ms(int64_t ms) { knobs_.timeout_ms = ms; }
  void set_query_memory_limit(size_t bytes) {
    knobs_.query_memory_limit = bytes;
  }
  void set_allow_degraded(bool allow) { knobs_.allow_degraded = allow; }

  /// Runs a query under this session's knobs and session-aware admission.
  /// Same dialect as Database::Query.
  util::Result<plan::QueryResult> Query(std::string_view sql);
  util::Result<plan::QueryResult> Query(
      std::string_view sql, std::shared_ptr<util::CancelToken> cancel);

  /// Executes a statement. `set` statements on the session knobs (dop,
  /// batch_size, timeout_ms, memory_limit, allow_degraded) scope to this
  /// session; everything else — define sma, global governor/durability
  /// knobs, storage selectors — forwards to the Database.
  util::Status Execute(std::string_view statement);

  /// Mutations forward to the Database's single-writer path (serialized on
  /// its writer lock; readers overlap via bucket latches).
  util::Status Insert(std::string_view table,
                      const storage::TupleBuffer& tuple,
                      storage::Rid* rid = nullptr);
  util::Status Update(std::string_view table, storage::Rid rid, size_t col,
                      const util::Value& v);
  util::Status Delete(std::string_view table, storage::Rid rid);

 private:
  friend class Database;
  Session(Database* db, uint64_t id, SessionKnobs knobs)
      : db_(db), id_(id), knobs_(knobs) {}

  Database* db_;
  uint64_t id_;
  SessionKnobs knobs_;
};

}  // namespace smadb::db

#endif  // SMADB_DB_SESSION_H_
