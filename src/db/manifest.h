// Checkpoint manifest: the durable catalog snapshot of one database.
//
// Written atomically (tmp + rename) by Database::Checkpoint after all dirty
// pages are flushed and the backend synced; read by recovery to rebuild
// tables, SMA registries, and trust epochs before replaying the WAL suffix.
// The format is a line-oriented text file (one keyword per line, tokens
// %-escaped via util::EscapeToken) — trivially inspectable with cat, which
// matters more here than density: a manifest holds catalog metadata, not
// data.
//
// The structs below are deliberately *plain* (strings and integers only):
// Database converts to/from live Schema/SmaSpec/Value objects, so this
// module depends on nothing above util and never drifts when the engine's
// in-memory types evolve.

#ifndef SMADB_DB_MANIFEST_H_
#define SMADB_DB_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/value.h"

namespace smadb::db {

struct ManifestField {
  std::string name;
  std::string type;  ///< TypeIdToString form ("int32", "decimal", ...)
  uint16_t capacity = 0;
};

struct ManifestSma {
  std::string name;
  std::string func;  ///< AggFuncToString form ("min", "sum", ...)
  std::string arg;   ///< expression text (Expr::ToString); empty = count(*)
  std::vector<uint32_t> group_by;
  uint64_t num_buckets = 0;
  uint64_t built_epoch = 0;
  bool trusted = true;
  std::string distrust_reason;
  /// Group keys in ordinal order; each key holds one encoded Value token
  /// per group_by column (see EncodeManifestValue).
  std::vector<std::vector<std::string>> groups;
};

struct ManifestTable {
  std::string name;
  uint32_t bucket_pages = 1;
  std::vector<ManifestField> fields;
  uint64_t num_tuples = 0;
  uint64_t num_deleted = 0;
  uint32_t num_pages = 0;
  uint64_t epoch = 0;
  std::vector<ManifestSma> smas;
};

struct Manifest {
  /// LSN the WAL was reset to at this checkpoint: replay covers
  /// [checkpoint_lsn, ...).
  uint64_t checkpoint_lsn = 1;
  std::vector<ManifestTable> tables;
};

/// Writes `m` to `path` atomically (tmp + fsync + rename + directory fsync).
util::Status WriteManifest(const std::string& path, const Manifest& m);

/// Parses the manifest at `path`. Malformed content yields kCorruption;
/// a missing file yields kNotFound.
util::Result<Manifest> ReadManifest(const std::string& path);

/// Typed round-trip encoding of a Value for manifest group keys. Non-string
/// numeric-family values encode their raw integer payload; doubles encode
/// their bit pattern; strings %-escape. The column TypeId (known from the
/// schema) drives decoding.
std::string EncodeManifestValue(const util::Value& v);
util::Result<util::Value> DecodeManifestValue(util::TypeId type,
                                              const std::string& token);

}  // namespace smadb::db

#endif  // SMADB_DB_MANIFEST_H_
